package scads

import (
	"log"
	"sort"
	"time"

	"scads/internal/director"
)

// Observe rolls the SLA monitor's current interval into a
// director.Observation, attaching the replication backlog at risk of
// missing its staleness deadlines (§3.3.2) and the requirement
// contentions since the previous Observe (§3.3.1). This is the
// live-cluster counterpart of the simulator's analytic telemetry — the
// "observe" edge of the Figure 2 loop. margin is how far before a
// deadline an undelivered update counts as at risk.
func (c *Cluster) Observe(margin time.Duration) director.Observation {
	iv := c.monitor.Roll()
	atRisk := c.pump.AtRisk(margin)
	total := c.Contention().Total
	last := c.lastObservedContention.Swap(total)
	return director.Observation{
		Rate:              iv.Rate,
		Latency:           iv.Latency,
		SuccessRate:       iv.SuccessRate,
		SLAMet:            iv.Met,
		ReplicationAtRisk: atRisk,
		Contentions:       int(total - last),
	}
}

// ElasticActuator adapts a LocalCluster into the director's Actuator:
// Request boots real storage nodes and respreads every namespace onto
// them; Release decommissions the newest nodes, migrating their ranges
// to survivors first. Both directions move data through the online
// migration manager (snapshot → delta catch-up → fenced handoff), so
// a scale action under write load never drops an acknowledged write.
// This closes the Figure 2 loop against actual data-bearing nodes
// rather than the abstract cloud simulator.
type ElasticActuator struct {
	lc *LocalCluster
	// OnError receives rebalancing errors (default: log).
	OnError func(error)
}

var _ director.Actuator = (*ElasticActuator)(nil)

// NewElasticActuator returns an actuator managing lc's node set.
func NewElasticActuator(lc *LocalCluster) *ElasticActuator {
	return &ElasticActuator{lc: lc}
}

// Running implements director.Actuator.
func (a *ElasticActuator) Running() int {
	return len(a.lc.Directory().Up())
}

// Booting implements director.Actuator. In-process nodes boot
// instantly.
func (a *ElasticActuator) Booting() int { return 0 }

// Request implements director.Actuator: boot n nodes and move data
// onto them.
func (a *ElasticActuator) Request(n int) {
	for i := 0; i < n; i++ {
		if _, err := a.lc.AddStorageNode(); err != nil {
			a.fail(err)
			return
		}
	}
	if err := a.lc.SpreadAll(); err != nil {
		a.fail(err)
	}
}

// Release implements director.Actuator: decommission the n
// most-recently added serving nodes, draining their data first.
func (a *ElasticActuator) Release(n int) {
	up := a.lc.Directory().Up()
	if len(up)-n < 1 {
		n = len(up) - 1 // never go below one node
	}
	ids := make([]string, len(up))
	for i, m := range up {
		ids[i] = m.ID
	}
	sort.Strings(ids) // node-### sorts by creation order
	for i := 0; i < n; i++ {
		victim := ids[len(ids)-1-i]
		var survivors []string
		for _, id := range ids[:len(ids)-1-i] {
			survivors = append(survivors, id)
		}
		if err := a.lc.DecommissionNode(victim, survivors); err != nil {
			a.fail(err)
			return
		}
		a.lc.Transport.Unregister("local://" + victim)
		a.lc.Directory().Remove(victim)
	}
}

func (a *ElasticActuator) fail(err error) {
	if a.OnError != nil {
		a.OnError(err)
		return
	}
	log.Printf("scads: elastic actuator: %v", err)
}
