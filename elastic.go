package scads

import (
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scads/internal/director"
)

// Observe rolls the SLA monitor's current interval into a
// director.Observation, attaching the replication backlog at risk of
// missing its staleness deadlines (§3.3.2) and the requirement
// contentions since the previous Observe (§3.3.1). This is the
// live-cluster counterpart of the simulator's analytic telemetry — the
// "observe" edge of the Figure 2 loop. margin is how far before a
// deadline an undelivered update counts as at risk.
func (c *Cluster) Observe(margin time.Duration) director.Observation {
	iv := c.monitor.Roll()
	atRisk := c.pump.AtRisk(margin)
	total := c.Contention().Total
	last := c.lastObservedContention.Swap(total)
	committed := 0
	if len(c.router.Namespaces()) > 0 {
		// Committed data needs at least RF distinct nodes to stay fully
		// replicated — the floor below which the director may not size.
		committed = c.cfg.ReplicationFactor
	}
	return director.Observation{
		Rate:              iv.Rate,
		Latency:           iv.Latency,
		SuccessRate:       iv.SuccessRate,
		SLAMet:            iv.Met,
		ReplicationAtRisk: atRisk,
		Contentions:       int(total - last),
		CommittedServers:  committed,
	}
}

// ElasticActuator adapts a LocalCluster into the director's Actuator:
// Request boots real storage nodes and respreads every namespace onto
// them; Release decommissions the newest nodes, migrating their ranges
// to survivors first. Both directions move data through the online
// migration manager (snapshot → delta catch-up → fenced handoff), so
// a scale action under write load never drops an acknowledged write.
// This closes the Figure 2 loop against actual data-bearing nodes
// rather than the abstract cloud simulator.
//
// Request runs asynchronously (booting instances and redistributing
// data can take a while under load, and must not stall the director's
// control loop); Booting reports the requested-but-not-yet-serving
// count, so a control step during the boot window sees running+booting
// instead of double-provisioning — the exact failure mode of a repair
// storm, where migrations back up behind the migration manager's
// parallelism bound. Wait blocks until in-flight requests settle.
type ElasticActuator struct {
	lc *LocalCluster
	// OnError receives rebalancing errors (default: log).
	OnError func(error)

	booting atomic.Int64
	wg      sync.WaitGroup

	// testHookBooting, when set, runs at the start of a Request's
	// asynchronous work, while the requested nodes are still counted
	// as booting.
	testHookBooting func()
	// testHookReleaseWaiting, when set, runs once per victim when
	// Release first observes an in-flight repair touching it and
	// starts waiting for the repair journal to drain.
	testHookReleaseWaiting func(victim string)
}

var _ director.Actuator = (*ElasticActuator)(nil)

// NewElasticActuator returns an actuator managing lc's node set.
func NewElasticActuator(lc *LocalCluster) *ElasticActuator {
	return &ElasticActuator{lc: lc}
}

// Running implements director.Actuator.
func (a *ElasticActuator) Running() int {
	return len(a.lc.Directory().Up())
}

// Booting implements director.Actuator: the number of instances
// requested but not yet registered as serving. The director adds this
// to Running when sizing, so capacity already on its way is never
// requested twice.
func (a *ElasticActuator) Booting() int { return int(a.booting.Load()) }

// Request implements director.Actuator: boot n nodes and move data
// onto them. Returns immediately; the boot and the data spread proceed
// in the background (Wait blocks until they settle). Each node leaves
// the booting count the moment it starts serving — from then on it is
// visible through Running.
func (a *ElasticActuator) Request(n int) {
	if n <= 0 {
		return
	}
	a.booting.Add(int64(n))
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		if a.testHookBooting != nil {
			a.testHookBooting()
		}
		for i := 0; i < n; i++ {
			if _, err := a.lc.AddStorageNode(); err != nil {
				a.booting.Add(int64(i - n))
				a.fail(err)
				return
			}
			a.booting.Add(-1)
		}
		if err := a.lc.SpreadAll(); err != nil {
			a.fail(err)
		}
	}()
}

// Wait blocks until all in-flight Request work (node boots and data
// spreads) has settled.
func (a *ElasticActuator) Wait() { a.wg.Wait() }

// Release implements director.Actuator: decommission the n
// most-recently added serving nodes, draining their data first. It
// waits for in-flight Request work to settle before picking victims —
// releasing a node while a concurrent spread is still migrating data
// onto it would tear down the donor copy of ranges that just landed
// there.
func (a *ElasticActuator) Release(n int) {
	a.Wait()
	up := a.lc.Directory().Up()
	if len(up)-n < 1 {
		n = len(up) - 1 // never go below one node
	}
	ids := make([]string, len(up))
	for i, m := range up {
		ids[i] = m.ID
	}
	sort.Strings(ids) // node-### sorts by creation order
	for i := 0; i < n; i++ {
		victim := ids[len(ids)-1-i]
		var survivors []string
		for _, id := range ids[:len(ids)-1-i] {
			survivors = append(survivors, id)
		}
		// A repair job rebuilding one of the victim's ranges may still
		// be in flight; decommissioning now would race its replacement
		// choice. Repair jobs always terminate, so wait for the journal
		// to drain — bounded, so a wedged job cannot block scale-down
		// forever (the decommission migration itself restores RF).
		waiting := false
		//lint:wallclock-ok the repair-drain interlock waits on a concurrent repair goroutine making real progress, not on modelled time — a virtual clock would deadlock here
		for deadline := time.Now().Add(repairDrainTimeout); a.repairsInFlightOn(victim) && time.Now().Before(deadline); {
			if !waiting {
				waiting = true
				if a.testHookReleaseWaiting != nil {
					a.testHookReleaseWaiting(victim)
				}
			}
			time.Sleep(2 * time.Millisecond) //lint:wallclock-ok paces polling of a concurrent repair goroutine; virtual time would never advance it
		}
		if err := a.lc.DecommissionNode(victim, survivors); err != nil {
			a.fail(err)
			return
		}
		a.lc.Transport.Unregister("local://" + victim)
		a.lc.Directory().Remove(victim)
	}
}

// repairDrainTimeout bounds how long Release waits for in-flight
// repairs of a victim's ranges before decommissioning anyway.
const repairDrainTimeout = 30 * time.Second

// repairsInFlightOn reports whether any range replicated on node has a
// repair job journaled as in flight.
func (a *ElasticActuator) repairsInFlightOn(node string) bool {
	c := a.lc.Cluster
	for _, ns := range c.router.Namespaces() {
		m, ok := c.router.Map(ns)
		if !ok {
			continue
		}
		for _, rng := range m.Ranges() {
			for _, id := range rng.Replicas {
				if id == node && c.repairs.RangeInFlight(ns, rng.Start) {
					return true
				}
			}
		}
	}
	// The node may also be the *destination* of a repair whose flip has
	// not landed in the map yet.
	return c.repairs.InFlightOn(node)
}

func (a *ElasticActuator) fail(err error) {
	if a.OnError != nil {
		a.OnError(err)
		return
	}
	log.Printf("scads: elastic actuator: %v", err)
}
