package advisor

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"scads/internal/analyzer"
	"scads/internal/planner"
	"scads/internal/query"
)

// socialDDL is the paper's §3.2 social network.
const socialDDL = `
ENTITY profiles (
    id string PRIMARY KEY,
    name string,
    birthday int
)
ENTITY friendships (
    f1 string,
    f2 string,
    PRIMARY KEY (f1, f2),
    CARDINALITY f1 5000,
    CARDINALITY f2 5000
)
QUERY getProfile
SELECT * FROM profiles WHERE id = ?user LIMIT 1

QUERY friendBirthdays
SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.id
WHERE f.f1 = ?user ORDER BY p.birthday LIMIT 50
`

func compileSocial(t *testing.T) (*query.Schema, map[string]*analyzer.Result, *planner.Output) {
	t.Helper()
	s, err := query.Parse(socialDDL)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	results, err := analyzer.Analyze(s, analyzer.Config{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	out, err := planner.Compile(s, results)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return s, results, out
}

func socialWorkload() Workload {
	return Workload{
		QueryRates:  map[string]float64{"getProfile": 800, "friendBirthdays": 200},
		UpdateRates: map[string]float64{"profiles": 20, "friendships": 5},
		TableRows:   map[string]int{"profiles": 1_000_000, "friendships": 20_000_000},
	}
}

func analytic() AnalyticCapacity {
	return AnalyticCapacity{PerServer: 500, Base: 2 * time.Millisecond, K: 30 * time.Millisecond}
}

func TestAdviseSocialNetwork(t *testing.T) {
	s, results, out := compileSocial(t)
	rep, err := Advise(s, results, nil, out, socialWorkload(), Config{Capacity: analytic()})
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	if len(rep.Queries) != 2 {
		t.Fatalf("want 2 query advices, got %d", len(rep.Queries))
	}
	for _, q := range rep.Queries {
		if !q.Accepted {
			t.Errorf("query %s unexpectedly rejected: %s", q.Query, q.Reason)
		}
		if q.ServersTouched < 1 {
			t.Errorf("query %s: ServersTouched = %d", q.Query, q.ServersTouched)
		}
		if q.PredictedLatency <= 0 {
			t.Errorf("query %s: no latency prediction", q.Query)
		}
	}
	if len(rep.Indexes) == 0 {
		t.Fatal("expected at least one materialized structure")
	}
	if rep.Cluster.Servers < 1 {
		t.Errorf("Servers = %d, want >= 1", rep.Cluster.Servers)
	}
	if rep.Cluster.MonthlyTotalUSD <= 0 {
		t.Errorf("MonthlyTotalUSD = %v, want > 0", rep.Cluster.MonthlyTotalUSD)
	}
	if rep.Cluster.StorageBytes <= 0 {
		t.Error("no storage estimate")
	}
}

func TestAdviseJoinViewStorageScalesWithFanout(t *testing.T) {
	s, results, out := compileSocial(t)
	w := socialWorkload()
	rep, err := Advise(s, results, nil, out, w, Config{Capacity: analytic()})
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	var joinView *IndexAdvice
	for i := range rep.Indexes {
		if rep.Indexes[i].ServesQuery == "friendBirthdays" {
			joinView = &rep.Indexes[i]
		}
	}
	if joinView == nil {
		t.Fatal("no index serves friendBirthdays")
	}
	// The birthday view holds one entry per friendship edge.
	if joinView.Entries != w.TableRows["friendships"] {
		t.Errorf("join view entries = %d, want %d", joinView.Entries, w.TableRows["friendships"])
	}
	if joinView.StorageBytes <= int64(w.TableRows["friendships"]) {
		t.Errorf("join view storage %d implausibly small", joinView.StorageBytes)
	}
}

func TestAdviseWriteAmplification(t *testing.T) {
	s, results, out := compileSocial(t)
	rep, err := Advise(s, results, nil, out, socialWorkload(), Config{Capacity: analytic()})
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	// Friendship and profile writes both trigger index maintenance, so
	// amplification must exceed 1.
	if rep.Cluster.WriteAmplification <= 1 {
		t.Errorf("WriteAmplification = %v, want > 1", rep.Cluster.WriteAmplification)
	}
	if rep.Cluster.MaintenanceRate <= 0 {
		t.Errorf("MaintenanceRate = %v, want > 0", rep.Cluster.MaintenanceRate)
	}
}

func TestAdviseProfileWriteTouchesBoundedEntries(t *testing.T) {
	s, results, out := compileSocial(t)
	w := socialWorkload()
	rep, err := Advise(s, results, nil, out, w, Config{Capacity: analytic()})
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	// A profile (looked table) update fans out to at most the declared
	// friend cardinality (5000), and the expected-case estimate should
	// use the much smaller average degree (20M edges / 1M users = 20).
	var total float64
	for _, ia := range rep.Indexes {
		total += ia.MaintRatePerSec
	}
	profileRate := w.UpdateRates["profiles"]
	if total > profileRate*5000 {
		t.Errorf("maintenance rate %v exceeds worst-case bound", total)
	}
	if total <= 0 {
		t.Error("maintenance rate should be positive")
	}
}

func TestAdviseRejectedQueryCarriesReason(t *testing.T) {
	// Twitter-style: no cardinality bound on followee -> rejected.
	ddl := `
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY follows (
    follower string,
    followee string,
    PRIMARY KEY (follower, followee),
    CARDINALITY follower 5000
)
QUERY fanOut
SELECT u.* FROM follows f JOIN users u ON f.follower = u.id
WHERE f.followee = ?user LIMIT 100
`
	s, err := query.Parse(ddl)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	results := map[string]*analyzer.Result{}
	rejects := map[string]error{}
	for _, name := range s.QueryOrder {
		res, err := analyzer.AnalyzeQuery(s, s.Queries[name], analyzer.Config{MaxUpdateWork: 5000})
		if err != nil {
			rejects[name] = err
			continue
		}
		results[name] = res
	}
	out, err := planner.Compile(s, results)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep, err := Advise(s, results, rejects, out, Workload{}, Config{Capacity: analytic()})
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	if len(rep.Queries) != 1 {
		t.Fatalf("want 1 advice, got %d", len(rep.Queries))
	}
	q := rep.Queries[0]
	if q.Accepted {
		t.Fatal("unbounded query should be rejected")
	}
	if q.Reason == "" {
		t.Error("rejection should carry the analyzer's reason")
	}
}

func TestAdviseRequiresCapacity(t *testing.T) {
	s, results, out := compileSocial(t)
	if _, err := Advise(s, results, nil, out, socialWorkload(), Config{}); err == nil {
		t.Fatal("want error when Config.Capacity is nil")
	}
}

func TestAnalyticCapacityLatencyMonotone(t *testing.T) {
	c := analytic()
	prev := -1.0
	for rate := 0.0; rate < c.PerServer; rate += 25 {
		l := c.PredictLatency(rate)
		if l < prev {
			t.Fatalf("latency decreased at rate %v: %v < %v", rate, l, prev)
		}
		prev = l
	}
	if sat := c.PredictLatency(c.PerServer * 2); sat < 1 {
		t.Errorf("saturated latency %v should be large", sat)
	}
}

func TestAnalyticCapacityServersNeeded(t *testing.T) {
	c := analytic()
	n1 := c.ServersNeeded(100, 0.1, 0.8, 1)
	n2 := c.ServersNeeded(10_000, 0.1, 0.8, 1)
	if n1 < 1 {
		t.Fatalf("ServersNeeded(100) = %d", n1)
	}
	if n2 <= n1 {
		t.Errorf("100x load needs %d servers vs %d — not increasing", n2, n1)
	}
	// A tighter SLA can never need fewer servers.
	loose := c.ServersNeeded(10_000, 1.0, 0.8, 1)
	tight := c.ServersNeeded(10_000, 0.01, 0.8, 1)
	if tight < loose {
		t.Errorf("tighter SLA needs %d < %d servers", tight, loose)
	}
}

func TestServersNeededMonotoneInLoadQuick(t *testing.T) {
	c := analytic()
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(a)+float64(b)
		return c.ServersNeeded(lo, 0.1, 0.8, 1) <= c.ServersNeeded(hi, 0.1, 0.8, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDowntimeCostCurveShape(t *testing.T) {
	curve := DowntimeCostCurve(CurveInput{
		Servers:      10,
		StorageBytes: 100 << 30,
		MaxReplicas:  5,
		NodeMTBF:     30 * 24 * time.Hour,
		NodeMTTR:     10 * time.Minute,
	})
	if len(curve) != 5 {
		t.Fatalf("want 5 points, got %d", len(curve))
	}
	for i, p := range curve {
		if p.Replicas != i+1 {
			t.Errorf("point %d: replicas %d", i, p.Replicas)
		}
		if p.Availability <= 0 || p.Availability > 1 {
			t.Errorf("availability %v out of range", p.Availability)
		}
		if i > 0 {
			prev := curve[i-1]
			if p.Availability < prev.Availability {
				t.Errorf("availability fell adding a replica: %v -> %v", prev.Availability, p.Availability)
			}
			if p.Durability < prev.Durability {
				t.Errorf("durability fell adding a replica: %v -> %v", prev.Durability, p.Durability)
			}
			if p.MonthlyUSD <= prev.MonthlyUSD {
				t.Errorf("cost did not rise adding a replica: %v -> %v", prev.MonthlyUSD, p.MonthlyUSD)
			}
			if p.DowntimeMinutesPerMonth > prev.DowntimeMinutesPerMonth {
				t.Errorf("downtime rose adding a replica")
			}
		}
	}
}

func TestDowntimeCurveMatchesSteadyState(t *testing.T) {
	mtbf, mttr := 30*24*time.Hour, 10*time.Minute
	curve := DowntimeCostCurve(CurveInput{Servers: 1, MaxReplicas: 1, NodeMTBF: mtbf, NodeMTTR: mttr})
	u := mttr.Seconds() / (mtbf.Seconds() + mttr.Seconds())
	want := 1 - u
	if got := curve[0].Availability; math.Abs(got-want) > 1e-12 {
		t.Errorf("1-replica availability = %v, want %v", got, want)
	}
}

func TestPickReplicas(t *testing.T) {
	curve := DowntimeCostCurve(CurveInput{
		Servers: 4, MaxReplicas: 5,
		NodeMTBF: 30 * 24 * time.Hour, NodeMTTR: 10 * time.Minute,
	})
	p, ok := PickReplicas(curve, 0.99999, 0)
	if !ok {
		t.Fatal("five nines should be reachable within 5 replicas at these rates")
	}
	if p.Replicas < 2 {
		t.Errorf("five nines with one replica is implausible at MTTR=10m (got %d)", p.Replicas)
	}
	// Cheapest point is returned: the previous replica count must miss.
	for _, q := range curve {
		if q.Replicas == p.Replicas-1 && q.Availability >= 0.99999 {
			t.Errorf("replicas=%d already met the target; PickReplicas not cheapest", q.Replicas)
		}
	}
	// Restricting the curve to two replicas makes ten nines
	// unreachable (1 - u² ≈ 0.99999995 at these failure rates).
	if _, ok := PickReplicas(curve[:2], 0.9999999999, 0); ok {
		t.Error("ten nines must be infeasible with two replicas")
	}
}

func TestPickReplicasDurabilityTarget(t *testing.T) {
	curve := DowntimeCostCurve(CurveInput{
		Servers: 4, MaxReplicas: 5,
		NodeMTBF: 30 * 24 * time.Hour, NodeMTTR: 10 * time.Minute,
	})
	p, ok := PickReplicas(curve, 0, 0.99999)
	if !ok {
		t.Fatal("99.999% durability should be reachable")
	}
	if p.Durability < 0.99999 {
		t.Errorf("picked point misses durability: %v", p.Durability)
	}
}

func TestFormatReport(t *testing.T) {
	s, results, out := compileSocial(t)
	rep, err := Advise(s, results, nil, out, socialWorkload(), Config{Capacity: analytic()})
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	text := rep.Format()
	for _, want := range []string{
		"QUERY TEMPLATES", "MATERIALIZED STRUCTURES", "CLUSTER SIZING",
		"EXPECTED DOWNTIME vs COST", "getProfile", "friendBirthdays",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{2048, "2.00KiB"},
		{3 << 20, "3.00MiB"},
		{5 << 30, "5.00GiB"},
		{2 << 40, "2.00TiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestClusterAdviceScalesWithLoadQuick(t *testing.T) {
	s, results, out := compileSocial(t)
	f := func(mult uint8) bool {
		m := float64(mult%50) + 1
		w := socialWorkload()
		for k := range w.QueryRates {
			w.QueryRates[k] *= m
		}
		rep, err := Advise(s, results, nil, out, w, Config{Capacity: analytic()})
		if err != nil {
			return false
		}
		base, err := Advise(s, results, nil, out, socialWorkload(), Config{Capacity: analytic()})
		if err != nil {
			return false
		}
		return rep.Cluster.Servers >= base.Cluster.Servers == (m >= 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAdviseReplicationMultipliesCost(t *testing.T) {
	s, results, out := compileSocial(t)
	r1, err := Advise(s, results, nil, out, socialWorkload(),
		Config{Capacity: analytic(), ReplicationFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Advise(s, results, nil, out, socialWorkload(),
		Config{Capacity: analytic(), ReplicationFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cluster.TotalNodes != 3*r1.Cluster.TotalNodes {
		t.Errorf("nodes: rf3 %d vs rf1 %d", r3.Cluster.TotalNodes, r1.Cluster.TotalNodes)
	}
	if r3.Cluster.ReplicatedBytes != 3*r1.Cluster.ReplicatedBytes {
		t.Errorf("storage: rf3 %d vs rf1 %d", r3.Cluster.ReplicatedBytes, r1.Cluster.ReplicatedBytes)
	}
	if r3.Cluster.MonthlyTotalUSD <= r1.Cluster.MonthlyTotalUSD {
		t.Error("replication should cost more")
	}
}
