package advisor

import (
	"fmt"
	"strings"
	"time"
)

// Format renders the report as the human-readable guidance sheet the
// paper describes showing to developers before deployment.
func (r *Report) Format() string {
	var b strings.Builder

	b.WriteString("QUERY TEMPLATES\n")
	fmt.Fprintf(&b, "  %-32s %-12s %8s %8s %12s %6s\n",
		"query", "shape", "servers", "O(K)", "p-latency", "SLA")
	for _, q := range r.Queries {
		if !q.Accepted {
			fmt.Fprintf(&b, "  %-32s REJECTED: %s\n", q.Query, q.Reason)
			continue
		}
		ok := "ok"
		if !q.MeetsSLA {
			ok = "MISS"
		}
		fmt.Fprintf(&b, "  %-32s %-12s %8d %8d %12s %6s\n",
			q.Query, q.Shape, q.ServersTouched, q.UpdateWork,
			q.PredictedLatency.Round(100*time.Microsecond), ok)
	}

	b.WriteString("\nMATERIALIZED STRUCTURES\n")
	fmt.Fprintf(&b, "  %-40s %12s %10s %12s %14s\n",
		"index", "entries", "entry-B", "storage", "maint-ops/s")
	for _, ia := range r.Indexes {
		name := ia.Name
		if ia.Aux {
			name += " (aux)"
		}
		fmt.Fprintf(&b, "  %-40s %12d %10d %12s %14.1f\n",
			name, ia.Entries, ia.EntryBytes, FormatBytes(ia.StorageBytes), ia.MaintRatePerSec)
	}

	c := r.Cluster
	b.WriteString("\nCLUSTER SIZING\n")
	fmt.Fprintf(&b, "  reads %.0f/s + writes %.0f/s + maintenance %.0f/s (write amplification %.1fx)\n",
		c.ReadRate, c.WriteRate, c.MaintenanceRate, c.WriteAmplification)
	fmt.Fprintf(&b, "  servers %d x replication %d = %d nodes\n",
		c.Servers, c.ReplicationFactor, c.TotalNodes)
	fmt.Fprintf(&b, "  storage %s x %d replicas = %s\n",
		FormatBytes(c.StorageBytes), c.ReplicationFactor, FormatBytes(c.ReplicatedBytes))
	fmt.Fprintf(&b, "  monthly: compute $%.2f + storage $%.2f = $%.2f\n",
		c.MonthlyComputeUSD, c.MonthlyStorageUSD, c.MonthlyTotalUSD)

	b.WriteString("\nEXPECTED DOWNTIME vs COST (per §3.3.1)\n")
	fmt.Fprintf(&b, "  %8s %14s %18s %14s %12s\n",
		"replicas", "availability", "downtime-min/mo", "durability", "$/month")
	for _, p := range r.Curve {
		fmt.Fprintf(&b, "  %8d %13.5f%% %18.3f %13.7f%% %12.2f\n",
			p.Replicas, p.Availability*100, p.DowntimeMinutesPerMonth,
			p.Durability*100, p.MonthlyUSD)
	}
	return b.String()
}

// FormatBytes renders a byte count in human units.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%.2fTiB", float64(n)/(1<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
