// Package advisor implements the cost guidance the paper promises in
// §2.2 and §3.3.1: before a query template is ever deployed, the
// system predicts "the expected cost in terms of storage and
// processing to maintain the index" and shows the developer "expected
// downtime vs. cost" curves so they can choose reasonable consistency
// requirements.
//
// The advisor consumes the same artifacts the execution path uses —
// the analyzer's proof objects (fan-out and update-work bounds), the
// planner's index definitions and maintenance table, and the fitted
// performance models — plus a developer-supplied workload estimate,
// and produces a Report: per-query cost, per-index storage and write
// amplification, a cluster sizing with monthly cost, and the
// durability/availability trade-off curve.
package advisor

import (
	"fmt"
	"math"
	"sort"
	"time"

	"scads/internal/analyzer"
	"scads/internal/mlmodel"
	"scads/internal/planner"
	"scads/internal/query"
	"scads/internal/row"
)

// Workload is the developer's estimate of demand. Rates are steady
// state; the director handles transients.
type Workload struct {
	// QueryRates is expected executions per second per query template.
	QueryRates map[string]float64
	// UpdateRates is expected base-table writes per second per table.
	UpdateRates map[string]float64
	// TableRows is the expected row count per table at the modelled
	// population (e.g. 1e6 users).
	TableRows map[string]int
	// AvgStringBytes sizes string columns in estimates (default 24).
	AvgStringBytes int
}

func (w Workload) withDefaults() Workload {
	if w.AvgStringBytes <= 0 {
		w.AvgStringBytes = 24
	}
	return w
}

// TotalQueryRate sums all query rates.
func (w Workload) TotalQueryRate() float64 {
	var t float64
	for _, r := range w.QueryRates {
		t += r
	}
	return t
}

// TotalUpdateRate sums all base-table update rates.
func (w Workload) TotalUpdateRate() float64 {
	var t float64
	for _, r := range w.UpdateRates {
		t += r
	}
	return t
}

// Pricing describes the utility-computing offer used for $ estimates.
type Pricing struct {
	// PricePerHour per instance (2008 EC2 m1.small: $0.10).
	PricePerHour float64
	// StoragePerGBMonth is the monthly price of one GB of replicated
	// storage (2008 S3/EBS: $0.15).
	StoragePerGBMonth float64
}

func (p Pricing) withDefaults() Pricing {
	if p.PricePerHour <= 0 {
		p.PricePerHour = 0.10
	}
	if p.StoragePerGBMonth <= 0 {
		p.StoragePerGBMonth = 0.15
	}
	return p
}

// Capacity abstracts the performance model that predicts latency and
// sizing. The fitted mlmodel.CapacityModel satisfies it once trained;
// AnalyticCapacity supplies a closed-form fallback for day one, when
// no history exists yet ("based on machine learning models of past
// performance" needs a past).
type Capacity interface {
	// PredictLatency returns the SLA-percentile latency in seconds at
	// the given per-server request rate.
	PredictLatency(ratePerServer float64) float64
	// ServersNeeded returns how many servers keep the predicted
	// latency under slaLatencySeconds at the given total rate, with
	// the given headroom fraction (e.g. 0.8 targets 80% utilisation).
	ServersNeeded(totalRate, slaLatencySeconds, headroom float64, fallback int) int
}

// AnalyticCapacity is an M/M/1-flavoured closed-form capacity model
// used before any observations exist.
type AnalyticCapacity struct {
	// PerServer is the saturation rate of one server (req/s).
	PerServer float64
	// Base is the idle service latency.
	Base time.Duration
	// K scales the queueing term.
	K time.Duration
}

// PredictLatency implements Capacity.
func (a AnalyticCapacity) PredictLatency(ratePerServer float64) float64 {
	rho := ratePerServer / a.PerServer
	if rho >= 0.99 {
		return 10 // saturated: effectively a timeout
	}
	if rho < 0 {
		rho = 0
	}
	return a.Base.Seconds() + a.K.Seconds()*rho/(1-rho)
}

// ServersNeeded implements Capacity.
func (a AnalyticCapacity) ServersNeeded(totalRate, slaLatencySeconds, headroom float64, fallback int) int {
	if a.PerServer <= 0 {
		return fallback
	}
	if headroom <= 0 || headroom > 1 {
		headroom = 0.8
	}
	// Largest per-server rate whose predicted latency meets the SLA.
	usable := a.PerServer * 0.99
	if extra := slaLatencySeconds - a.Base.Seconds(); extra > 0 && a.K > 0 {
		// Base + K*rho/(1-rho) = SLA  =>  rho = extra/(K+extra).
		rho := extra / (a.K.Seconds() + extra)
		if r := a.PerServer * rho; r < usable {
			usable = r
		}
	}
	usable *= headroom
	if usable <= 0 {
		return fallback
	}
	n := int(math.Ceil(totalRate / usable))
	if n < 1 {
		n = 1
	}
	return n
}

var _ Capacity = (*mlmodel.CapacityModel)(nil)
var _ Capacity = AnalyticCapacity{}

// Config parameterises an advisory run.
type Config struct {
	// Pricing for $ estimates.
	Pricing Pricing
	// Capacity predicts latency and sizing. Required.
	Capacity Capacity
	// SLALatency is the latency bound sizing targets (default 100ms).
	SLALatency time.Duration
	// Headroom is the target utilisation fraction (default 0.8).
	Headroom float64
	// ReplicationFactor multiplies serving nodes and storage
	// (default 1; the durability curve explores alternatives).
	ReplicationFactor int
	// NodeMTBF and NodeMTTR parameterise the availability model used
	// by the downtime/cost curve (defaults 30 days / 10 minutes —
	// commodity-node failure rates with automated replacement).
	NodeMTBF time.Duration
	NodeMTTR time.Duration
}

func (c Config) withDefaults() Config {
	c.Pricing = c.Pricing.withDefaults()
	if c.SLALatency <= 0 {
		c.SLALatency = 100 * time.Millisecond
	}
	if c.Headroom <= 0 || c.Headroom > 1 {
		c.Headroom = 0.8
	}
	if c.ReplicationFactor < 1 {
		c.ReplicationFactor = 1
	}
	if c.NodeMTBF <= 0 {
		c.NodeMTBF = 30 * 24 * time.Hour
	}
	if c.NodeMTTR <= 0 {
		c.NodeMTTR = 10 * time.Minute
	}
	return c
}

// IndexAdvice is the predicted cost of maintaining one materialized
// index or join view.
type IndexAdvice struct {
	Name        string
	ServesQuery string
	Aux         bool

	// Entries is the expected number of index entries.
	Entries int
	// EntryBytes is the expected size of one entry (key + stored row).
	EntryBytes int
	// StorageBytes = Entries × EntryBytes (one copy; replication
	// multiplies it).
	StorageBytes int64
	// MaintRatePerSec is the expected index-entry mutations per second
	// caused by base-table writes.
	MaintRatePerSec float64
}

// QueryAdvice is the pre-deployment estimate for one query template —
// the "expected cost ... to maintain the index" of §2.3.
type QueryAdvice struct {
	Query string
	Shape analyzer.Shape

	// Accepted is false when the analyzer rejected the template; the
	// advice then carries only the rejection reason.
	Accepted bool
	Reason   string

	// ServersTouched is the proven worst-case nodes per execution.
	ServersTouched int
	// UpdateWork is the proven O(K) bound on maintenance per write.
	UpdateWork int
	// PredictedLatency is the modelled SLA-percentile latency at the
	// estimated per-server load.
	PredictedLatency time.Duration
	// MeetsSLA reports PredictedLatency ≤ the configured bound.
	MeetsSLA bool
	// Indexes lists the names of structures this query needs.
	Indexes []string
	// StorageBytes is the summed storage of those structures.
	StorageBytes int64
}

// ClusterAdvice is the aggregate sizing and monthly bill.
type ClusterAdvice struct {
	// ReadRate and WriteRate are the workload's foreground rates;
	// MaintenanceRate is the additional asynchronous index-update
	// rate implied by write amplification.
	ReadRate        float64
	WriteRate       float64
	MaintenanceRate float64
	// WriteAmplification = (WriteRate+MaintenanceRate)/WriteRate.
	WriteAmplification float64

	// Servers is the predicted node count (before replication);
	// TotalNodes = Servers × ReplicationFactor.
	Servers           int
	ReplicationFactor int
	TotalNodes        int

	// StorageBytes is total materialized storage for one copy;
	// ReplicatedBytes multiplies by the replication factor.
	StorageBytes    int64
	ReplicatedBytes int64

	// MonthlyComputeUSD, MonthlyStorageUSD and MonthlyTotalUSD are the
	// predicted bill at the modelled workload.
	MonthlyComputeUSD float64
	MonthlyStorageUSD float64
	MonthlyTotalUSD   float64
}

// Report is everything an advisory run produces.
type Report struct {
	Queries []QueryAdvice
	Indexes []IndexAdvice
	Cluster ClusterAdvice
	// Curve is the expected-downtime-vs-cost guidance of §3.3.1.
	Curve []CurvePoint
}

// hoursPerMonth is the billing month used throughout (365.25/12 days).
const hoursPerMonth = 730.5

// Advise produces the full report for a compiled schema under the
// estimated workload. Rejected queries (in rejects) appear in the
// report with their rejection reason, so the developer sees the whole
// picture the paper describes: what will run, what it will cost, and
// what was refused.
func Advise(s *query.Schema, results map[string]*analyzer.Result,
	rejects map[string]error, out *planner.Output, w Workload, cfg Config) (*Report, error) {
	if s == nil || out == nil {
		return nil, fmt.Errorf("advisor: schema and plans are required")
	}
	if cfg.Capacity == nil {
		return nil, fmt.Errorf("advisor: Config.Capacity is required")
	}
	cfg = cfg.withDefaults()
	w = w.withDefaults()

	rep := &Report{}
	idxAdvice := make(map[string]*IndexAdvice, len(out.Indexes))
	for _, def := range out.Indexes {
		ia := estimateIndex(s, def, w)
		idxAdvice[def.Name] = ia
		rep.Indexes = append(rep.Indexes, *ia)
	}

	// Cluster aggregates drive the latency prediction each query sees.
	var storage int64
	var maintRate float64
	for _, ia := range rep.Indexes {
		storage += ia.StorageBytes
		maintRate += ia.MaintRatePerSec
	}
	// Base-table storage participates too.
	for _, tn := range s.TableOrder {
		t := s.Tables[tn]
		rows := w.TableRows[tn]
		storage += int64(rows) * int64(rowBytes(t, allColumns(t), w))
	}

	readRate := w.TotalQueryRate()
	writeRate := w.TotalUpdateRate()
	totalRate := readRate + writeRate + maintRate
	servers := cfg.Capacity.ServersNeeded(totalRate, cfg.SLALatency.Seconds(), cfg.Headroom, 1)
	perServer := totalRate / float64(servers)

	for _, name := range s.QueryOrder {
		if res, ok := results[name]; ok {
			qa := QueryAdvice{
				Query:          name,
				Shape:          res.Shape,
				Accepted:       true,
				ServersTouched: res.ServersTouched,
				UpdateWork:     res.UpdateWork,
			}
			lat := cfg.Capacity.PredictLatency(perServer)
			qa.PredictedLatency = time.Duration(lat * float64(time.Second))
			qa.MeetsSLA = qa.PredictedLatency <= cfg.SLALatency
			if plan := out.Plans[name]; plan != nil && plan.Index != nil {
				qa.Indexes = append(qa.Indexes, plan.Index.Name)
				if ia := idxAdvice[plan.Index.Name]; ia != nil {
					qa.StorageBytes += ia.StorageBytes
				}
			}
			rep.Queries = append(rep.Queries, qa)
			continue
		}
		qa := QueryAdvice{Query: name, Accepted: false}
		if err, ok := rejects[name]; ok && err != nil {
			qa.Reason = err.Error()
		} else {
			qa.Reason = "rejected by analyzer"
		}
		rep.Queries = append(rep.Queries, qa)
	}

	c := ClusterAdvice{
		ReadRate:          readRate,
		WriteRate:         writeRate,
		MaintenanceRate:   maintRate,
		Servers:           servers,
		ReplicationFactor: cfg.ReplicationFactor,
		TotalNodes:        servers * cfg.ReplicationFactor,
		StorageBytes:      storage,
		ReplicatedBytes:   storage * int64(cfg.ReplicationFactor),
	}
	if writeRate > 0 {
		c.WriteAmplification = (writeRate + maintRate) / writeRate
	} else {
		c.WriteAmplification = 1
	}
	c.MonthlyComputeUSD = float64(c.TotalNodes) * cfg.Pricing.PricePerHour * hoursPerMonth
	c.MonthlyStorageUSD = float64(c.ReplicatedBytes) / (1 << 30) * cfg.Pricing.StoragePerGBMonth
	c.MonthlyTotalUSD = c.MonthlyComputeUSD + c.MonthlyStorageUSD
	rep.Cluster = c

	rep.Curve = DowntimeCostCurve(CurveInput{
		Servers:      servers,
		StorageBytes: storage,
		MaxReplicas:  5,
		Pricing:      cfg.Pricing,
		NodeMTBF:     cfg.NodeMTBF,
		NodeMTTR:     cfg.NodeMTTR,
	})
	return rep, nil
}

// estimateIndex predicts entry count, entry size, storage, and
// maintenance rate for one index definition.
func estimateIndex(s *query.Schema, def *planner.IndexDef, w Workload) *IndexAdvice {
	ia := &IndexAdvice{
		Name:        def.Name,
		ServesQuery: def.ServesQuery,
		Aux:         def.Aux,
	}
	driving := s.Tables[def.Driving]
	entries := w.TableRows[def.Driving]
	fan := 1
	if def.Looked != "" && def.LookedFanout > 1 {
		fan = def.LookedFanout
	}
	// A join view holds one entry per (driving row, looked match);
	// full-PK joins (fan=1) hold one entry per driving row.
	ia.Entries = entries * fan
	ia.EntryBytes = entryBytes(s, def, w)
	ia.StorageBytes = int64(ia.Entries) * int64(ia.EntryBytes)

	// Maintenance rate: a driving-table write touches `fan` entries; a
	// looked-table write touches every entry referencing the row —
	// bounded by the driving table's declared cardinality on the join
	// column.
	if r, ok := w.UpdateRates[def.Driving]; ok {
		ia.MaintRatePerSec += r * float64(fan)
	}
	if def.Looked != "" {
		if r, ok := w.UpdateRates[def.Looked]; ok {
			reverse := 1
			if driving != nil {
				if card, ok := driving.Cardinality[def.JoinLeftCol]; ok {
					reverse = card
				}
			}
			// Expected (not worst-case) referencing rows: total driving
			// rows spread over looked rows, capped by the declared bound.
			if looked := w.TableRows[def.Looked]; looked > 0 && entries > 0 {
				avg := int(math.Ceil(float64(entries) / float64(looked)))
				if avg < reverse {
					reverse = avg
				}
			}
			ia.MaintRatePerSec += r * float64(reverse)
		}
	}
	return ia
}

// entryBytes estimates one stored entry: encoded key columns plus the
// stored (projected) row.
func entryBytes(s *query.Schema, def *planner.IndexDef, w Workload) int {
	const keyOverhead = 2  // per-element tag/terminator in keycodec
	const rowOverhead = 12 // row envelope + per-column name bytes

	bytes := rowOverhead
	for _, kc := range def.KeyCols {
		bytes += keyOverhead + columnBytes(s, def, kc.Source, kc.Column, w)
	}
	for _, pc := range def.Project {
		bytes += 4 + columnBytes(s, def, pc.Source, pc.Column, w)
	}
	return bytes
}

// columnBytes sizes one column by its declared type.
func columnBytes(s *query.Schema, def *planner.IndexDef, source, column string, w Workload) int {
	t := tableFor(s, def, source)
	if t == nil {
		return w.AvgStringBytes
	}
	col, ok := t.Column(column)
	if !ok {
		return w.AvgStringBytes
	}
	switch col.Type {
	case row.Int, row.Float, row.Time:
		return 8
	case row.Bool:
		return 1
	default:
		return w.AvgStringBytes
	}
}

// tableFor resolves an effective source name to its table definition.
func tableFor(s *query.Schema, def *planner.IndexDef, source string) *query.TableDef {
	switch source {
	case def.DrivingEff, def.Driving:
		return s.Tables[def.Driving]
	case def.LookedEff:
		if def.Looked != "" {
			return s.Tables[def.Looked]
		}
	}
	if t, ok := s.Tables[source]; ok {
		return t
	}
	return nil
}

// allColumns lists a table's column names.
func allColumns(t *query.TableDef) []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// rowBytes estimates one stored base row.
func rowBytes(t *query.TableDef, cols []string, w Workload) int {
	const rowOverhead = 12
	bytes := rowOverhead
	for _, name := range cols {
		c, ok := t.Column(name)
		if !ok {
			bytes += w.AvgStringBytes
			continue
		}
		switch c.Type {
		case row.Int, row.Float, row.Time:
			bytes += 8 + 4
		case row.Bool:
			bytes += 1 + 4
		default:
			bytes += w.AvgStringBytes + 4
		}
	}
	return bytes
}

// SortIndexes orders index advice alphabetically for stable output.
func SortIndexes(ia []IndexAdvice) {
	sort.Slice(ia, func(i, j int) bool { return ia[i].Name < ia[j].Name })
}
