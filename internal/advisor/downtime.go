package advisor

import (
	"math"
	"time"
)

// CurveInput parameterises the downtime-vs-cost exploration of §3.3.1:
// "The results of these predictions can be shown to the user in the
// form of expected downtime vs. cost for implementing a policy to help
// them develop reasonable requirements."
type CurveInput struct {
	// Servers is the base (unreplicated) node count the capacity model
	// chose; each extra replica multiplies it.
	Servers int
	// StorageBytes is one copy of all materialized data.
	StorageBytes int64
	// MaxReplicas bounds the exploration (default 5).
	MaxReplicas int
	// Pricing prices each point.
	Pricing Pricing
	// NodeMTBF and NodeMTTR describe individual node failures. A node
	// is down MTTR/(MTBF+MTTR) of the time; data is unavailable when
	// all replicas of a range are down simultaneously.
	NodeMTBF time.Duration
	NodeMTTR time.Duration
}

// CurvePoint is one (policy, downtime, cost) choice shown to the
// developer.
type CurvePoint struct {
	// Replicas is the policy: replication factor for every range.
	Replicas int
	// Availability is the predicted fraction of time data is
	// reachable, e.g. 0.99999.
	Availability float64
	// DowntimeMinutesPerMonth is the same prediction in operator
	// units.
	DowntimeMinutesPerMonth float64
	// Durability is the probability a committed write survives a
	// repair window (all-replica loss is the only loss mode).
	Durability float64
	// MonthlyUSD is compute + storage at this replication factor.
	MonthlyUSD float64
}

// DowntimeCostCurve predicts availability, durability and monthly cost
// for replication factors 1..MaxReplicas. The developer (or the
// consistency DSL's durability clause) picks the first point meeting
// their requirement; the director later enforces it.
func DowntimeCostCurve(in CurveInput) []CurvePoint {
	if in.Servers < 1 {
		in.Servers = 1
	}
	if in.MaxReplicas < 1 {
		in.MaxReplicas = 5
	}
	in.Pricing = in.Pricing.withDefaults()
	if in.NodeMTBF <= 0 {
		in.NodeMTBF = 30 * 24 * time.Hour
	}
	if in.NodeMTTR <= 0 {
		in.NodeMTTR = 10 * time.Minute
	}

	// Steady-state probability one node is down.
	u := in.NodeMTTR.Seconds() / (in.NodeMTBF.Seconds() + in.NodeMTTR.Seconds())
	// Probability a node fails at some point within one repair window
	// (the durability loss mode: all replicas fail before re-repair).
	pFailWindow := 1 - math.Exp(-in.NodeMTTR.Seconds()/in.NodeMTBF.Seconds())

	const minutesPerMonth = hoursPerMonth * 60
	out := make([]CurvePoint, 0, in.MaxReplicas)
	for r := 1; r <= in.MaxReplicas; r++ {
		unavailable := math.Pow(u, float64(r))
		p := CurvePoint{
			Replicas:                r,
			Availability:            1 - unavailable,
			DowntimeMinutesPerMonth: unavailable * minutesPerMonth,
			Durability:              1 - math.Pow(pFailWindow, float64(r)),
		}
		nodes := in.Servers * r
		p.MonthlyUSD = float64(nodes)*in.Pricing.PricePerHour*hoursPerMonth +
			float64(in.StorageBytes)*float64(r)/(1<<30)*in.Pricing.StoragePerGBMonth
		out = append(out, p)
	}
	return out
}

// PickReplicas returns the cheapest curve point meeting both targets
// (zero target = unconstrained). The bool is false when no explored
// point satisfies them — the developer's requirement is infeasible at
// the modelled failure rates, which the paper says the system should
// surface rather than silently accept.
func PickReplicas(curve []CurvePoint, availabilityTarget, durabilityTarget float64) (CurvePoint, bool) {
	for _, p := range curve { // curve is ordered by cost (replicas ascending)
		if p.Availability >= availabilityTarget && p.Durability >= durabilityTarget {
			return p, true
		}
	}
	return CurvePoint{}, false
}
