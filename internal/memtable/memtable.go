// Package memtable implements the in-memory ordered write buffer of
// the SCADS storage engine: a skiplist keyed by order-preserving
// encoded keys, holding versioned records (including tombstones) until
// they are flushed to an SSTable.
//
// All mutations use last-write-wins merge semantics on the record
// version, so replaying a WAL or applying replicated writes out of
// order converges to the same state (paper §3.3: "last write wins"
// eventual consistency is the baseline write-conflict policy).
package memtable

import (
	"bytes"
	"math/rand"
	"sync"

	"scads/internal/record"
)

const (
	maxHeight = 12
	branching = 4
)

// Memtable is a concurrent ordered map from encoded key to Record.
// The zero value is not usable; call New.
type Memtable struct {
	mu     sync.RWMutex
	head   *node
	height int
	count  int
	bytes  int64
	rnd    *rand.Rand
}

type node struct {
	rec  record.Record
	next [maxHeight]*node
}

// New returns an empty Memtable. The seed makes skiplist tower heights
// deterministic for reproducible tests; production callers pass any
// value.
func New(seed int64) *Memtable {
	return &Memtable{
		head:   &node{},
		height: 1,
		rnd:    rand.New(rand.NewSource(seed)),
	}
}

// Put merges rec into the table with last-write-wins semantics: if an
// entry with the same key exists and supersedes rec, the table is
// unchanged. It reports whether rec was stored.
func (m *Memtable) Put(rec record.Record) bool {
	m.mu.Lock()
	defer m.mu.Unlock()

	var prev [maxHeight]*node
	n := m.findGreaterOrEqual(rec.Key, &prev)
	if n != nil && bytes.Equal(n.rec.Key, rec.Key) {
		if n.rec.Supersedes(rec) {
			return false
		}
		m.bytes += int64(rec.MemSize() - n.rec.MemSize())
		n.rec = rec
		return true
	}

	h := m.randomHeight()
	if h > m.height {
		for i := m.height; i < h; i++ {
			prev[i] = m.head
		}
		m.height = h
	}
	nn := &node{rec: rec}
	for i := 0; i < h; i++ {
		nn.next[i] = prev[i].next[i]
		prev[i].next[i] = nn
	}
	m.count++
	m.bytes += int64(rec.MemSize())
	return true
}

// DeleteRange physically unlinks every entry with start <= key < end
// (nil bounds are infinite) and returns how many were removed. Unlike
// tombstoning, the records are simply gone — used by online range
// migration teardown, where a versioned tombstone would shadow the
// legitimately re-installed record if the range ever migrates back.
func (m *Memtable) DeleteRange(start, end []byte) int {
	m.mu.Lock()
	defer m.mu.Unlock()

	var prev [maxHeight]*node
	n := m.findGreaterOrEqual(start, &prev)
	removed := 0
	for n != nil && (end == nil || bytes.Compare(n.rec.Key, end) < 0) {
		next := n.next[0]
		for i := 0; i < m.height; i++ {
			if prev[i].next[i] == n {
				prev[i].next[i] = n.next[i]
			}
		}
		m.count--
		m.bytes -= int64(n.rec.MemSize())
		removed++
		n = next
	}
	return removed
}

// Get returns the record stored under key. Tombstones are returned
// with ok=true and Tombstone set; callers decide how to surface them.
func (m *Memtable) Get(key []byte) (record.Record, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := m.findGreaterOrEqual(key, nil)
	if n != nil && bytes.Equal(n.rec.Key, key) {
		return n.rec, true
	}
	return record.Record{}, false
}

// Delete inserts a tombstone for key at the given version. It reports
// whether the tombstone took effect under last-write-wins.
func (m *Memtable) Delete(key []byte, version uint64) bool {
	return m.Put(record.Record{Key: append([]byte(nil), key...), Version: version, Tombstone: true})
}

// Scan visits records with start <= key < end in ascending key order,
// including tombstones, until fn returns false. A nil end means
// unbounded.
func (m *Memtable) Scan(start, end []byte, fn func(record.Record) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := m.findGreaterOrEqual(start, nil)
	for n != nil {
		if end != nil && bytes.Compare(n.rec.Key, end) >= 0 {
			return
		}
		if !fn(n.rec) {
			return
		}
		n = n.next[0]
	}
}

// ScanReverse visits records with start <= key < end in descending
// order. The skiplist is singly linked, so this materialises the range
// first; it is used only by bounded (LIMIT-constrained) plans.
func (m *Memtable) ScanReverse(start, end []byte, fn func(record.Record) bool) {
	var recs []record.Record
	m.Scan(start, end, func(r record.Record) bool {
		recs = append(recs, r)
		return true
	})
	for i := len(recs) - 1; i >= 0; i-- {
		if !fn(recs[i]) {
			return
		}
	}
}

// All returns every record in ascending key order. Used when flushing
// to an SSTable.
func (m *Memtable) All() []record.Record {
	out := make([]record.Record, 0, m.Len())
	m.Scan(nil, nil, func(r record.Record) bool {
		out = append(out, r)
		return true
	})
	return out
}

// Len returns the number of entries (tombstones included).
func (m *Memtable) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.count
}

// Bytes returns the approximate memory footprint of stored records.
func (m *Memtable) Bytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}

// findGreaterOrEqual returns the first node whose key >= key, filling
// prev (when non-nil) with the rightmost node before that position at
// every level. Callers must hold m.mu.
func (m *Memtable) findGreaterOrEqual(key []byte, prev *[maxHeight]*node) *node {
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].rec.Key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

func (m *Memtable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rnd.Intn(branching) == 0 {
		h++
	}
	return h
}
