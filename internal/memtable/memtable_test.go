package memtable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"scads/internal/record"
)

func rec(key, val string, ver uint64) record.Record {
	return record.Record{Key: []byte(key), Value: []byte(val), Version: ver}
}

func TestPutGet(t *testing.T) {
	m := New(1)
	if _, ok := m.Get([]byte("missing")); ok {
		t.Fatal("Get on empty table returned ok")
	}
	m.Put(rec("a", "1", 1))
	got, ok := m.Get([]byte("a"))
	if !ok || string(got.Value) != "1" {
		t.Fatalf("Get = %v,%v", got, ok)
	}
}

func TestLastWriteWins(t *testing.T) {
	m := New(1)
	if !m.Put(rec("k", "old", 5)) {
		t.Fatal("initial put rejected")
	}
	if m.Put(rec("k", "stale", 3)) {
		t.Fatal("stale write accepted")
	}
	got, _ := m.Get([]byte("k"))
	if string(got.Value) != "old" {
		t.Fatalf("stale write overwrote: %q", got.Value)
	}
	if !m.Put(rec("k", "new", 9)) {
		t.Fatal("newer write rejected")
	}
	got, _ = m.Get([]byte("k"))
	if string(got.Value) != "new" || got.Version != 9 {
		t.Fatalf("newer write not applied: %+v", got)
	}
}

func TestDeleteTombstone(t *testing.T) {
	m := New(1)
	m.Put(rec("k", "v", 1))
	if !m.Delete([]byte("k"), 2) {
		t.Fatal("delete rejected")
	}
	got, ok := m.Get([]byte("k"))
	if !ok || !got.Tombstone {
		t.Fatalf("tombstone not visible: %+v ok=%v", got, ok)
	}
	// A write older than the tombstone must not resurrect the key.
	if m.Put(rec("k", "zombie", 1)) {
		t.Fatal("zombie write accepted over newer tombstone")
	}
	got, _ = m.Get([]byte("k"))
	if !got.Tombstone {
		t.Fatal("tombstone lost")
	}
}

func TestScanOrderAndBounds(t *testing.T) {
	m := New(7)
	keys := []string{"d", "b", "a", "c", "e"}
	for i, k := range keys {
		m.Put(rec(k, k, uint64(i+1)))
	}
	var got []string
	m.Scan([]byte("b"), []byte("e"), func(r record.Record) bool {
		got = append(got, string(r.Key))
		return true
	})
	want := []string{"b", "c", "d"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Scan = %v, want %v", got, want)
	}
	// Unbounded scan sees everything in order.
	got = nil
	m.Scan(nil, nil, func(r record.Record) bool {
		got = append(got, string(r.Key))
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint([]string{"a", "b", "c", "d", "e"}) {
		t.Fatalf("full Scan = %v", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	m := New(1)
	for i := 0; i < 10; i++ {
		m.Put(rec(fmt.Sprintf("k%02d", i), "v", 1))
	}
	n := 0
	m.Scan(nil, nil, func(record.Record) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestScanReverse(t *testing.T) {
	m := New(1)
	for i := 0; i < 5; i++ {
		m.Put(rec(fmt.Sprintf("k%d", i), "v", 1))
	}
	var got []string
	m.ScanReverse([]byte("k1"), []byte("k4"), func(r record.Record) bool {
		got = append(got, string(r.Key))
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint([]string{"k3", "k2", "k1"}) {
		t.Fatalf("ScanReverse = %v", got)
	}
}

func TestLenAndBytes(t *testing.T) {
	m := New(1)
	if m.Len() != 0 || m.Bytes() != 0 {
		t.Fatal("empty table has nonzero size")
	}
	m.Put(rec("a", "xx", 1))
	m.Put(rec("b", "yy", 1))
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	b1 := m.Bytes()
	if b1 <= 0 {
		t.Fatal("Bytes not positive")
	}
	// Overwrite with a larger value grows Bytes but not Len.
	m.Put(rec("a", "xxxxxxxxxx", 2))
	if m.Len() != 2 {
		t.Fatalf("Len after overwrite = %d", m.Len())
	}
	if m.Bytes() <= b1 {
		t.Fatal("Bytes did not grow after larger overwrite")
	}
}

func TestAllSorted(t *testing.T) {
	m := New(42)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%06d", r.Intn(100000))
		m.Put(rec(k, "v", uint64(i+1)))
	}
	all := m.All()
	for i := 1; i < len(all); i++ {
		if bytes.Compare(all[i-1].Key, all[i].Key) >= 0 {
			t.Fatalf("All not strictly sorted at %d", i)
		}
	}
	if len(all) != m.Len() {
		t.Fatalf("All returned %d records, Len = %d", len(all), m.Len())
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	m := New(3)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Put(rec(fmt.Sprintf("w%d-k%03d", w, i), "v", uint64(i+1)))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.Scan(nil, nil, func(record.Record) bool { return true })
				m.Get([]byte("w0-k000"))
			}
		}()
	}
	wg.Wait()
	if m.Len() != 4*200 {
		t.Fatalf("Len = %d, want 800", m.Len())
	}
}

// Property: for any set of (key, version) writes, the memtable holds
// exactly the highest-version record per key.
func TestQuickLWWConvergence(t *testing.T) {
	type write struct {
		Key byte
		Ver uint8
	}
	f := func(writes []write) bool {
		m := New(11)
		want := map[byte]uint64{}
		for _, w := range writes {
			ver := uint64(w.Ver) + 1
			m.Put(record.Record{
				Key:     []byte{w.Key},
				Value:   []byte(fmt.Sprintf("v%d", ver)),
				Version: ver,
			})
			if ver > want[w.Key] {
				want[w.Key] = ver
			}
		}
		if m.Len() != len(want) {
			return false
		}
		for k, ver := range want {
			got, ok := m.Get([]byte{k})
			if !ok || got.Version != ver {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: scan output is always sorted and within bounds.
func TestQuickScanSorted(t *testing.T) {
	f := func(keys [][]byte, start, end []byte) bool {
		if bytes.Compare(start, end) > 0 {
			start, end = end, start
		}
		m := New(5)
		for i, k := range keys {
			m.Put(record.Record{Key: k, Value: []byte("v"), Version: uint64(i + 1)})
		}
		var prev []byte
		ok := true
		m.Scan(start, end, func(r record.Record) bool {
			if prev != nil && bytes.Compare(prev, r.Key) >= 0 {
				ok = false
			}
			if bytes.Compare(r.Key, start) < 0 || (end != nil && bytes.Compare(r.Key, end) >= 0) {
				ok = false
			}
			prev = append(prev[:0], r.Key...)
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	m := New(1)
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user:%08d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(record.Record{Key: keys[i%1024], Value: []byte("payload"), Version: uint64(i + 1)})
	}
}

func BenchmarkGet(b *testing.B) {
	m := New(1)
	const n = 10000
	for i := 0; i < n; i++ {
		m.Put(rec(fmt.Sprintf("user:%08d", i), "payload", 1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get([]byte(fmt.Sprintf("user:%08d", i%n)))
	}
}

func BenchmarkScan100(b *testing.B) {
	m := New(1)
	const n = 10000
	for i := 0; i < n; i++ {
		m.Put(rec(fmt.Sprintf("user:%08d", i), "payload", 1))
	}
	start := []byte("user:00005000")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt := 0
		m.Scan(start, nil, func(record.Record) bool {
			cnt++
			return cnt < 100
		})
	}
}

func TestDeleteRangeUnlinksEntries(t *testing.T) {
	m := New(1)
	for i := 0; i < 10; i++ {
		m.Put(rec(fmt.Sprintf("k%02d", i), "v", uint64(i+1)))
	}
	wantBytes := m.Bytes()
	var middle int64
	m.Scan([]byte("k03"), []byte("k07"), func(r record.Record) bool {
		middle += int64(r.MemSize())
		return true
	})

	if removed := m.DeleteRange([]byte("k03"), []byte("k07")); removed != 4 {
		t.Fatalf("removed %d, want 4", removed)
	}
	if m.Len() != 6 {
		t.Fatalf("Len = %d, want 6", m.Len())
	}
	if m.Bytes() != wantBytes-middle {
		t.Fatalf("Bytes = %d, want %d", m.Bytes(), wantBytes-middle)
	}
	var keys []string
	m.Scan(nil, nil, func(r record.Record) bool {
		keys = append(keys, string(r.Key))
		return true
	})
	want := []string{"k00", "k01", "k02", "k07", "k08", "k09"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
	// Removed keys are gone, not shadowed: a lower-versioned record
	// lands again.
	if !m.Put(rec("k04", "back", 1)) {
		t.Fatal("re-insert after DeleteRange rejected")
	}
}

func TestDeleteRangeOpenBounds(t *testing.T) {
	m := New(1)
	for i := 0; i < 6; i++ {
		m.Put(rec(fmt.Sprintf("k%02d", i), "v", uint64(i+1)))
	}
	if removed := m.DeleteRange(nil, nil); removed != 6 {
		t.Fatalf("removed %d, want 6", removed)
	}
	if m.Len() != 0 || m.Bytes() != 0 {
		t.Fatalf("Len=%d Bytes=%d after full-range delete", m.Len(), m.Bytes())
	}
}
