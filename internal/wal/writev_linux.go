//go:build linux

package wal

import (
	"io"
	"os"
	"runtime"
	"syscall"
	"unsafe"
)

// iovMax is the portable ceiling on iovecs per writev call (POSIX
// guarantees at least 16; Linux's IOV_MAX is 1024).
const iovMax = 1024

// writeVectored writes every buffer in bufs to f with as few writev
// syscalls as possible — one for any batch up to iovMax buffers. The
// kernel advances the file offset exactly as a sequence of Writes
// would, so it composes with the Log's positional bookkeeping.
func writeVectored(f *os.File, bufs [][]byte) error {
	iovs := make([]syscall.Iovec, 0, len(bufs))
	total := 0
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		iov := syscall.Iovec{Base: &b[0]}
		iov.SetLen(len(b))
		iovs = append(iovs, iov)
		total += len(b)
	}
	for len(iovs) > 0 {
		n := len(iovs)
		if n > iovMax {
			n = iovMax
		}
		wrote, _, errno := syscall.Syscall(
			syscall.SYS_WRITEV,
			f.Fd(),
			uintptr(unsafe.Pointer(&iovs[0])),
			uintptr(n),
		)
		runtime.KeepAlive(bufs)
		if errno != 0 {
			return errno
		}
		// Consume fully written iovecs; resume a partially written one
		// mid-buffer (rare — page-cache writes normally complete).
		remaining := int(wrote)
		for remaining > 0 && len(iovs) > 0 {
			l := int(iovs[0].Len)
			if remaining < l {
				iovs[0].Base = (*byte)(unsafe.Pointer(uintptr(unsafe.Pointer(iovs[0].Base)) + uintptr(remaining)))
				iovs[0].SetLen(l - remaining)
				remaining = 0
				break
			}
			remaining -= l
			iovs = iovs[1:]
		}
		if wrote == 0 && len(iovs) > 0 {
			return io.ErrShortWrite
		}
	}
	return nil
}
