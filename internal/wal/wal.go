// Package wal implements a segmented write-ahead log. Every mutation
// accepted by a SCADS storage node is appended (and optionally synced)
// here before it is acknowledged, providing the single-machine half of
// the paper's durability story (§3.3.1: the durability SLA further
// requires replication, which internal/replication provides on top).
//
// Layout: a log directory contains numbered segment files
// (000000001.wal, 000000002.wal, ...). Each segment is a sequence of
// CRC-framed records (see internal/record). Recovery replays segments
// in order and stops at the first torn frame, which a crashed append
// can legitimately leave behind.
//
// The log offers three append disciplines, from cheapest to most
// durable:
//
//   - Append / AppendBatch: buffered append, fsync'd only at flush
//     boundaries (or per call when Options.SyncEveryAppend is set —
//     the unbatched baseline).
//   - AppendGroup: group commit. The record is appended without its
//     own fsync, then the writer joins the current commit group via
//     SyncGroup; one leader issues a single fsync on behalf of every
//     writer waiting at that moment. Under concurrency this collapses
//     N fsyncs into one while giving each writer the same durability
//     guarantee as a private sync. This is the seam the storage
//     engine's synchronous write path (storage.Options.SyncWrites)
//     commits through.
//
// AppendBatch writes a whole record group as one buffered write, which
// the batched RPC apply path (rpc.MethodBatch, storage ApplyBatch)
// uses so a replication batch costs one syscall instead of one per
// record.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"scads/internal/record"
)

const segmentSuffix = ".wal"

// Options configure a Log.
type Options struct {
	// SegmentBytes rolls to a new segment once the active one exceeds
	// this size. Default 4 MiB.
	SegmentBytes int64
	// SyncEveryAppend forces an fsync after every append. Default
	// false: SCADS acknowledges on replication, not on fsync, so the
	// engine syncs on flush boundaries instead.
	SyncEveryAppend bool
}

func (o *Options) withDefaults() Options {
	out := Options{SegmentBytes: 4 << 20}
	if o != nil {
		if o.SegmentBytes > 0 {
			out.SegmentBytes = o.SegmentBytes
		}
		out.SyncEveryAppend = o.SyncEveryAppend
	}
	return out
}

// Log is an append-only write-ahead log. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	dirFile   *os.File // directory handle, fsynced on segment create/remove
	active    *os.File
	activeID  uint64
	activeLen int64 // logical tail: bytes appended (segments are preallocated longer)
	closed    bool

	// Group-commit state: writers park on syncWaiters and one leader
	// fsyncs for the whole group (see SyncGroup).
	syncMu      sync.Mutex
	syncWaiters []chan error
	syncLeader  bool

	appends  atomic.Int64 // records appended
	syncs    atomic.Int64 // fsyncs issued through append/sync paths
	groups   atomic.Int64 // commit groups flushed by SyncGroup
	grouped  atomic.Int64 // writers whose durability was covered by a group fsync
	dirSyncs atomic.Int64 // directory fsyncs after segment create/remove

	// testHookBeforeGroupSync, when set, runs in the leader just
	// before each group fsync; tests use it to park the leader so a
	// commit group accumulates deterministically.
	testHookBeforeGroupSync func()
}

// Stats counts append and fsync activity, exposing how much work group
// commit saved: Grouped/Groups is the mean commit-group size.
type Stats struct {
	Appends  int64 // records appended
	Syncs    int64 // fsyncs issued
	Groups   int64 // commit groups flushed by SyncGroup
	Grouped  int64 // writers covered by those group fsyncs
	DirSyncs int64 // directory fsyncs making segment create/remove durable
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:  l.appends.Load(),
		Syncs:    l.syncs.Load(),
		Groups:   l.groups.Load(),
		Grouped:  l.grouped.Load(),
		DirSyncs: l.dirSyncs.Load(),
	}
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Open opens (creating if needed) the log in dir and returns it along
// with all records recovered from existing segments, in append order.
func Open(dir string, opts *Options) (*Log, []record.Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{dir: dir, opts: opts.withDefaults()}
	df, err := os.Open(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open dir: %w", err)
	}
	l.dirFile = df

	ids, err := l.segmentIDs()
	if err != nil {
		df.Close()
		return nil, nil, err
	}
	var recovered []record.Record
	for _, id := range ids {
		recs, err := readSegment(l.segmentPath(id))
		if err != nil {
			df.Close()
			return nil, nil, err
		}
		recovered = append(recovered, recs...)
	}

	nextID := uint64(1)
	if n := len(ids); n > 0 {
		nextID = ids[n-1] + 1
	}
	if err := l.openSegment(nextID); err != nil {
		df.Close()
		return nil, nil, err
	}
	return l, recovered, nil
}

// Append writes rec to the log, rolling segments as needed. With
// Options.SyncEveryAppend it issues a private fsync per call — the
// unbatched durable baseline; prefer AppendGroup under concurrency.
func (l *Log) Append(rec record.Record) error {
	return l.appendRecords([]record.Record{rec}, l.opts.SyncEveryAppend)
}

// AppendBatch writes recs as a single buffered write (one syscall for
// the whole group), rolling segments as needed. With
// Options.SyncEveryAppend the batch is covered by one fsync. An empty
// batch is a no-op.
func (l *Log) AppendBatch(recs []record.Record) error {
	if len(recs) == 0 {
		return nil
	}
	return l.appendRecords(recs, l.opts.SyncEveryAppend)
}

// AppendGroup appends rec and then makes it durable through the
// group-commit path: the append itself is buffered, and the fsync is
// shared with every other writer concurrently inside SyncGroup. When
// AppendGroup returns nil the record is on stable storage.
func (l *Log) AppendGroup(rec record.Record) error {
	if err := l.appendRecords([]record.Record{rec}, false); err != nil {
		return err
	}
	return l.SyncGroup()
}

// encBufPool recycles per-record encode buffers across appends so the
// vectored batch write allocates nothing on the steady path.
var encBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1<<10)
	return &b
}}

func (l *Log) appendRecords(recs []record.Record, sync bool) error {
	// Encode outside the lock: one pooled buffer per record, handed to
	// a single vectored write below, so a batch costs one syscall and
	// no concatenation copy.
	bufs := make([]*[]byte, len(recs))
	iovs := make([][]byte, len(recs))
	total := 0
	for i, rec := range recs {
		bp := encBufPool.Get().(*[]byte)
		*bp = rec.AppendBinary((*bp)[:0])
		bufs[i] = bp
		iovs[i] = *bp
		total += len(*bp)
	}
	defer func() {
		for _, bp := range bufs {
			encBufPool.Put(bp)
		}
	}()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := writeVectored(l.active, iovs); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.activeLen += int64(total)
	l.appends.Add(int64(len(recs)))
	if sync {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		l.syncs.Add(1)
	}
	if l.activeLen >= l.opts.SegmentBytes {
		return l.roll()
	}
	return nil
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.active.Sync(); err != nil {
		return err
	}
	l.syncs.Add(1)
	return nil
}

// SyncGroup blocks until everything appended before the call is on
// stable storage, sharing the fsync with every writer waiting
// concurrently: the first writer to arrive becomes the leader and
// issues one Sync per parked group, so N concurrent committers cost
// ~1 fsync instead of N. This is the group commit of classical
// databases, applied at the WAL seam so the RPC batch path and
// individual writers amortise durability the same way.
func (l *Log) SyncGroup() error {
	done := make(chan error, 1)
	l.syncMu.Lock()
	l.syncWaiters = append(l.syncWaiters, done)
	if l.syncLeader {
		l.syncMu.Unlock()
		return <-done
	}
	l.syncLeader = true
	l.syncMu.Unlock()

	for {
		l.syncMu.Lock()
		waiters := l.syncWaiters
		l.syncWaiters = nil
		if len(waiters) == 0 {
			l.syncLeader = false
			l.syncMu.Unlock()
			break
		}
		l.syncMu.Unlock()

		if l.testHookBeforeGroupSync != nil {
			l.testHookBeforeGroupSync()
		}
		// Every waiter registered before this Sync started, so their
		// appends (which happened-before registration) are covered.
		err := l.Sync()
		l.groups.Add(1)
		l.grouped.Add(int64(len(waiters)))
		for _, w := range waiters {
			w <- err
		}
	}
	return <-done
}

// Truncate removes every segment older than the active one. The engine
// calls this after a memtable flush: everything up to the flush point
// is now durable in an SSTable.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	ids, err := l.segmentIDs()
	if err != nil {
		return err
	}
	removed := false
	for _, id := range ids {
		if id == l.activeID {
			continue
		}
		if err := os.Remove(l.segmentPath(id)); err != nil {
			return fmt.Errorf("wal: truncate segment %d: %w", id, err)
		}
		removed = true
	}
	if removed {
		// Make the removals durable: without a directory fsync a crash
		// can bring the unlinked segments back, and recovery would
		// replay records the engine already considers truncated.
		return l.syncDir()
	}
	return nil
}

// Rotate rolls to a fresh segment, so a following Truncate removes all
// previously appended data. Used at flush boundaries.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.roll()
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.dirFile != nil {
		l.dirFile.Close()
	}
	if err := l.active.Sync(); err != nil {
		l.active.Close()
		return err
	}
	return l.active.Close()
}

// SegmentCount reports how many segment files exist (for tests and
// metrics).
func (l *Log) SegmentCount() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ids, err := l.segmentIDs()
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

func (l *Log) roll() error {
	if err := l.active.Sync(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	return l.openSegment(l.activeID + 1)
}

// openSegment creates a fresh segment file (segment IDs are never
// reused: recovery always starts a new segment past the highest
// existing one). The file is preallocated to SegmentBytes so steady
// appends never grow the inode — the size update would otherwise ride
// along with every fsync — and the write offset starts at 0. Trailing
// preallocated zeroes are harmless to recovery: a zero frame header
// fails validation, terminating replay exactly at the logical tail.
func (l *Log) openSegment(id uint64) error {
	f, err := os.OpenFile(l.segmentPath(id), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment %d: %w", id, err)
	}
	if err := f.Truncate(l.opts.SegmentBytes); err != nil {
		f.Close()
		return fmt.Errorf("wal: preallocate segment %d: %w", id, err)
	}
	l.active, l.activeID, l.activeLen = f, id, 0
	// The segment's directory entry must survive a crash: recovery
	// silently skips a segment whose entry was lost, replaying a hole
	// into the middle of the log.
	return l.syncDir()
}

// syncDir fsyncs the log directory, making segment creates and removes
// durable. Callers hold l.mu.
func (l *Log) syncDir() error {
	if l.dirFile == nil {
		return nil
	}
	if err := l.dirFile.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	l.dirSyncs.Add(1)
	return nil
}

func (l *Log) segmentPath(id uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%09d%s", id, segmentSuffix))
}

func (l *Log) segmentIDs() ([]uint64, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var ids []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 10, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// readSegment decodes records from one segment file. A torn tail
// (truncated final frame or checksum failure at the end) terminates
// recovery of that segment without error: it is the expected signature
// of a crash mid-append.
func readSegment(path string) ([]record.Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: read segment: %w", err)
	}
	var recs []record.Record
	for len(data) > 0 {
		r, rest, err := record.DecodeBinary(data)
		if err != nil {
			// Torn tail: stop replay here.
			return recs, nil
		}
		recs = append(recs, r)
		data = rest
	}
	return recs, nil
}
