//go:build !linux

package wal

import "os"

// writeVectored is the portable fallback: sequential writes, one per
// buffer. Linux builds replace this with a single writev syscall.
func writeVectored(f *os.File, bufs [][]byte) error {
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		if _, err := f.Write(b); err != nil {
			return err
		}
	}
	return nil
}
