package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"scads/internal/record"
)

func rec(k, v string, ver uint64) record.Record {
	return record.Record{Key: []byte(k), Value: []byte(v), Version: ver}
}

func TestAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	l, recovered, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recovered))
	}
	want := []record.Record{
		rec("a", "1", 1),
		rec("b", "2", 2),
		{Key: []byte("a"), Version: 3, Tombstone: true},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, recovered, err = Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recovered), len(want))
	}
	for i, r := range recovered {
		if !bytes.Equal(r.Key, want[i].Key) || r.Version != want[i].Version || r.Tombstone != want[i].Tombstone {
			t.Errorf("record %d: got %+v want %+v", i, r, want[i])
		}
	}
}

func TestSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, &Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := l.Append(rec(fmt.Sprintf("key-%03d", i), "some-payload-data", uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	n, err := l.SegmentCount()
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("expected multiple segments, got %d", n)
	}
	l.Close()

	_, recovered, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 50 {
		t.Fatalf("recovered %d records across segments, want 50", len(recovered))
	}
	for i, r := range recovered {
		if want := fmt.Sprintf("key-%03d", i); string(r.Key) != want {
			t.Fatalf("record %d out of order: %q", i, r.Key)
		}
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(rec(fmt.Sprintf("k%d", i), "v", uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Simulate a crash mid-append: truncate the last few bytes.
	seg := filepath.Join(dir, "000000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	_, recovered, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 4 {
		t.Fatalf("recovered %d records after torn tail, want 4", len(recovered))
	}
}

func TestRotateAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(rec(fmt.Sprintf("k%d", i), "v", uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	n, _ := l.SegmentCount()
	if n != 1 {
		t.Fatalf("after truncate: %d segments, want 1", n)
	}
	l.Close()

	_, recovered, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("recovered %d records after truncate, want 0", len(recovered))
	}
}

func TestClosedLogErrors(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Append(rec("k", "v", 1)); err != ErrClosed {
		t.Fatalf("Append on closed log: %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync on closed log: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "garbage.wal"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, recovered, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recovered) != 0 {
		t.Fatalf("recovered %d records from foreign files", len(recovered))
	}
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, &Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, perWriter = 4, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := l.Append(rec(fmt.Sprintf("w%d-%03d", w, i), "v", uint64(i+1))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	_, recovered, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != writers*perWriter {
		t.Fatalf("recovered %d, want %d", len(recovered), writers*perWriter)
	}
}

func TestSyncEveryAppend(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, &Options{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(rec("k", "v", 1)); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	dir := b.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	r := rec("user:12345:profile", string(bytes.Repeat([]byte("x"), 256)), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Version = uint64(i + 1)
		if err := l.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}
