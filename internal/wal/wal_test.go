package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"scads/internal/record"
)

func rec(k, v string, ver uint64) record.Record {
	return record.Record{Key: []byte(k), Value: []byte(v), Version: ver}
}

// validTail returns the byte offset just past the last decodable frame
// in a segment image. Segments are preallocated, so the file extends
// past the logical tail with zero padding.
func validTail(data []byte) int64 {
	rest := data
	for {
		_, rem, err := record.DecodeBinary(rest)
		if err != nil {
			return int64(len(data) - len(rest))
		}
		rest = rem
	}
}

func TestAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	l, recovered, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recovered))
	}
	want := []record.Record{
		rec("a", "1", 1),
		rec("b", "2", 2),
		{Key: []byte("a"), Version: 3, Tombstone: true},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, recovered, err = Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recovered), len(want))
	}
	for i, r := range recovered {
		if !bytes.Equal(r.Key, want[i].Key) || r.Version != want[i].Version || r.Tombstone != want[i].Tombstone {
			t.Errorf("record %d: got %+v want %+v", i, r, want[i])
		}
	}
}

func TestSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, &Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := l.Append(rec(fmt.Sprintf("key-%03d", i), "some-payload-data", uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	n, err := l.SegmentCount()
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("expected multiple segments, got %d", n)
	}
	l.Close()

	_, recovered, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 50 {
		t.Fatalf("recovered %d records across segments, want 50", len(recovered))
	}
	for i, r := range recovered {
		if want := fmt.Sprintf("key-%03d", i); string(r.Key) != want {
			t.Fatalf("record %d out of order: %q", i, r.Key)
		}
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(rec(fmt.Sprintf("k%d", i), "v", uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Simulate a crash mid-append: truncate the last few bytes of the
	// logical data (segments are preallocated, so the file's tail is
	// zero padding — the torn frame must cut into the final record).
	seg := filepath.Join(dir, "000000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	tail := validTail(data)
	if tail == 0 {
		t.Fatal("segment holds no decodable records")
	}
	if err := os.Truncate(seg, tail-3); err != nil {
		t.Fatal(err)
	}

	_, recovered, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 4 {
		t.Fatalf("recovered %d records after torn tail, want 4", len(recovered))
	}
}

func TestRotateAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(rec(fmt.Sprintf("k%d", i), "v", uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	n, _ := l.SegmentCount()
	if n != 1 {
		t.Fatalf("after truncate: %d segments, want 1", n)
	}
	l.Close()

	_, recovered, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("recovered %d records after truncate, want 0", len(recovered))
	}
}

func TestClosedLogErrors(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Append(rec("k", "v", 1)); err != ErrClosed {
		t.Fatalf("Append on closed log: %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync on closed log: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "garbage.wal"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, recovered, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recovered) != 0 {
		t.Fatalf("recovered %d records from foreign files", len(recovered))
	}
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, &Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, perWriter = 4, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := l.Append(rec(fmt.Sprintf("w%d-%03d", w, i), "v", uint64(i+1))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	_, recovered, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != writers*perWriter {
		t.Fatalf("recovered %d, want %d", len(recovered), writers*perWriter)
	}
}

func TestSyncEveryAppend(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, &Options{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(rec("k", "v", 1)); err != nil {
		t.Fatal(err)
	}
}

func TestAppendBatchRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var batch []record.Record
	for i := 0; i < 10; i++ {
		batch = append(batch, rec(fmt.Sprintf("k%02d", i), "v", uint64(i+1)))
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	st := l.Stats()
	if st.Appends != 10 {
		t.Fatalf("appends = %d, want 10", st.Appends)
	}
	l.Close()

	_, recovered, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 10 {
		t.Fatalf("recovered %d records, want 10", len(recovered))
	}
	for i, r := range recovered {
		if want := fmt.Sprintf("k%02d", i); string(r.Key) != want {
			t.Fatalf("record %d: key %q, want %q", i, r.Key, want)
		}
	}
}

// TestAppendGroupConcurrent drives many concurrent durable writers
// through the group-commit path: every record must survive recovery
// and the group accounting must balance.
func TestAppendGroupConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := l.AppendGroup(rec(fmt.Sprintf("w%d-%03d", w, i), "v", uint64(w*perWriter+i+1))); err != nil {
					t.Errorf("append group: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if st.Grouped != writers*perWriter {
		t.Fatalf("grouped writers = %d, want %d", st.Grouped, writers*perWriter)
	}
	if st.Groups == 0 || st.Groups > st.Grouped {
		t.Fatalf("groups = %d, grouped = %d: inconsistent", st.Groups, st.Grouped)
	}
	if st.Syncs > st.Appends {
		t.Fatalf("syncs = %d exceeds appends = %d", st.Syncs, st.Appends)
	}
	t.Logf("group commit: %d appends, %d fsyncs (%.1f writers/fsync)",
		st.Appends, st.Syncs, float64(st.Grouped)/float64(st.Groups))
	l.Close()

	_, recovered, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != writers*perWriter {
		t.Fatalf("recovered %d, want %d", len(recovered), writers*perWriter)
	}
}

// TestGroupCommitCoalesces proves the fsync-sharing property
// deterministically: while the leader is parked before its group
// fsync, later committers pile into the waiter queue and must all be
// flushed by one further fsync.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const followers = 5
	release := make(chan struct{})
	var parked sync.Once
	l.testHookBeforeGroupSync = func() {
		parked.Do(func() { <-release })
	}

	leaderDone := make(chan error, 1)
	go func() { leaderDone <- l.AppendGroup(rec("leader", "v", 1)) }()

	// Wait until the leader is parked in the hook, then pile on
	// followers and wait until they are all queued.
	waitQueued := func(n int) {
		for i := 0; i < 2000; i++ {
			l.syncMu.Lock()
			queued := len(l.syncWaiters)
			l.syncMu.Unlock()
			if queued >= n {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("timed out waiting for %d queued waiters", n)
	}

	followerDone := make(chan error, followers)
	go func() {
		// The leader drains its own entry from the queue before the
		// hook runs, so the queue is empty while it is parked.
		for w := 0; w < followers; w++ {
			go func(w int) {
				followerDone <- l.AppendGroup(rec(fmt.Sprintf("f%d", w), "v", uint64(w+2)))
			}(w)
		}
	}()
	waitQueued(followers)
	close(release)

	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	for w := 0; w < followers; w++ {
		if err := <-followerDone; err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Groups != 2 {
		t.Fatalf("groups = %d, want 2 (leader alone, then all followers together)", st.Groups)
	}
	if st.Grouped != followers+1 {
		t.Fatalf("grouped = %d, want %d", st.Grouped, followers+1)
	}
	if st.Syncs != 2 {
		t.Fatalf("syncs = %d, want 2: %d committers shared 2 fsyncs", st.Syncs, followers+1)
	}
}

func TestSyncGroupClosed(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.SyncGroup(); err != ErrClosed {
		t.Fatalf("SyncGroup on closed log: %v, want ErrClosed", err)
	}
	if err := l.AppendGroup(rec("k", "v", 1)); err != ErrClosed {
		t.Fatalf("AppendGroup on closed log: %v, want ErrClosed", err)
	}
}

func BenchmarkAppend(b *testing.B) {
	dir := b.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	r := rec("user:12345:profile", string(bytes.Repeat([]byte("x"), 256)), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Version = uint64(i + 1)
		if err := l.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

// Segment creation and removal must be made durable with a directory
// fsync, or a crash can lose a freshly created segment's dirent (losing
// acked writes) or resurrect truncated segments (replaying records the
// engine already considers gone).
func TestDirectoryFsyncOnSegmentLifecycle(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	base := l.Stats().DirSyncs
	if base < 1 {
		t.Fatalf("Open created segment 1 with no directory fsync (DirSyncs = %d)", base)
	}
	if err := l.Append(rec("a", "1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	afterRotate := l.Stats().DirSyncs
	if afterRotate <= base {
		t.Fatalf("Rotate created a segment with no directory fsync (DirSyncs %d -> %d)", base, afterRotate)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	afterTruncate := l.Stats().DirSyncs
	if afterTruncate <= afterRotate {
		t.Fatalf("Truncate removed segments with no directory fsync (DirSyncs %d -> %d)", afterRotate, afterTruncate)
	}
	// A Truncate with nothing to remove must not pay for a sync.
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().DirSyncs; got != afterTruncate {
		t.Fatalf("no-op Truncate issued a directory fsync (DirSyncs %d -> %d)", afterTruncate, got)
	}
}

// Preallocated segments must still recover cleanly: the zero padding
// past the logical tail terminates replay without corrupting records.
func TestPreallocatedSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, &Options{SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(rec(fmt.Sprintf("k%02d", i), "v", uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, "000000001.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 64<<10 {
		t.Fatalf("segment size = %d, want preallocated 64 KiB", st.Size())
	}
	_, recovered, err := Open(dir, &Options{SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 10 {
		t.Fatalf("recovered %d records from preallocated segment, want 10", len(recovered))
	}
}
