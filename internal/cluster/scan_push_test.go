package cluster

import (
	"fmt"
	"testing"

	"scads/internal/keycodec"
	"scads/internal/row"
	"scads/internal/rpc"
)

// seedRows stores n encoded rows under ordered keys and returns the
// keys. Row i is {id: "u<i>", name: "name-<i>", age: i}.
func seedRows(t *testing.T, n *Node, ns string, count int) [][]byte {
	t.Helper()
	keys := make([][]byte, count)
	for i := 0; i < count; i++ {
		key := keycodec.MustEncode(fmt.Sprintf("u%03d", i))
		keys[i] = key
		val, err := row.Encode(row.Row{"id": fmt.Sprintf("u%03d", i), "name": fmt.Sprintf("name-%03d", i), "age": int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		resp := n.Serve(rpc.Request{Method: rpc.MethodPut, Namespace: ns, Key: key, Value: val})
		if resp.Error() != nil {
			t.Fatal(resp.Error())
		}
	}
	return keys
}

func TestNodeScanProjectionPushdown(t *testing.T) {
	n := newTestNode(t, "n1")
	seedRows(t, n, "tbl", 10)

	resp := n.Serve(rpc.Request{Method: rpc.MethodScan, Namespace: "tbl", Limit: 100, Projection: []string{"id", "age"}})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	if len(resp.Records) != 10 {
		t.Fatalf("scan returned %d records", len(resp.Records))
	}
	for i, rec := range resp.Records {
		r, err := row.Decode(rec.Value)
		if err != nil {
			t.Fatal(err)
		}
		if len(r) != 2 || r["id"] != fmt.Sprintf("u%03d", i) || r["age"] != int64(i) {
			t.Fatalf("projected row %d = %v", i, r)
		}
		if _, ok := r["name"]; ok {
			t.Fatalf("projection leaked dropped column: %v", r)
		}
	}
}

func TestNodeScanPredicatePushdown(t *testing.T) {
	n := newTestNode(t, "n1")
	seedRows(t, n, "tbl", 20)

	ge, err := keycodec.Append(nil, int64(5))
	if err != nil {
		t.Fatal(err)
	}
	lt, err := keycodec.Append(nil, int64(9))
	if err != nil {
		t.Fatal(err)
	}
	resp := n.Serve(rpc.Request{Method: rpc.MethodScan, Namespace: "tbl", Limit: 100, Preds: []rpc.ScanPred{
		{Column: "age", Op: rpc.PredGe, Value: ge},
		{Column: "age", Op: rpc.PredLt, Value: lt},
	}})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	if len(resp.Records) != 4 { // ages 5,6,7,8
		t.Fatalf("filtered scan returned %d records, want 4", len(resp.Records))
	}
	for i, rec := range resp.Records {
		r, err := row.Decode(rec.Value)
		if err != nil {
			t.Fatal(err)
		}
		if r["age"] != int64(5+i) {
			t.Fatalf("filtered row %d age = %v", i, r["age"])
		}
	}

	// A filter on a missing column matches nothing rather than erroring.
	resp = n.Serve(rpc.Request{Method: rpc.MethodScan, Namespace: "tbl", Limit: 100, Preds: []rpc.ScanPred{
		{Column: "ghost", Op: rpc.PredGe, Value: ge},
	}})
	if resp.Error() != nil || len(resp.Records) != 0 {
		t.Fatalf("missing-column filter: %v / %d records", resp.Error(), len(resp.Records))
	}
}

func TestNodeScanFilteredRowsDoNotCountAgainstLimit(t *testing.T) {
	n := newTestNode(t, "n1")
	seedRows(t, n, "tbl", 20)

	ge, err := keycodec.Append(nil, int64(10))
	if err != nil {
		t.Fatal(err)
	}
	// Limit 5 with a filter skipping the first 10 rows: the node must
	// return 5 matching rows, not stop after visiting 5.
	resp := n.Serve(rpc.Request{Method: rpc.MethodScan, Namespace: "tbl", Limit: 5, Preds: []rpc.ScanPred{
		{Column: "age", Op: rpc.PredGe, Value: ge},
	}})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	if len(resp.Records) != 5 {
		t.Fatalf("filtered limited scan returned %d records, want 5", len(resp.Records))
	}
	r, _ := row.Decode(resp.Records[0].Value)
	if r["age"] != int64(10) {
		t.Fatalf("first matching row age = %v, want 10", r["age"])
	}
	if !resp.More {
		t.Fatal("limit-stopped scan did not report More")
	}
}

func TestNodeScanResumeCursor(t *testing.T) {
	n := newTestNode(t, "n1")
	keys := seedRows(t, n, "tbl", 10)

	var got [][]byte
	start := []byte(nil)
	pages := 0
	for {
		resp := n.Serve(rpc.Request{Method: rpc.MethodScan, Namespace: "tbl", Start: start, Limit: 3})
		if resp.Error() != nil {
			t.Fatal(resp.Error())
		}
		for _, rec := range resp.Records {
			got = append(got, rec.Key)
		}
		pages++
		if !resp.More {
			break
		}
		start = resp.Resume
	}
	if len(got) != 10 || pages != 4 {
		t.Fatalf("paged scan: %d keys over %d pages", len(got), pages)
	}
	for i, k := range got {
		if string(k) != string(keys[i]) {
			t.Fatalf("page order broken at %d", i)
		}
	}

	// An exact stop at the end bound must not claim More.
	resp := n.Serve(rpc.Request{Method: rpc.MethodScan, Namespace: "tbl", Start: keys[0], End: keys[3], Limit: 3})
	if resp.Error() != nil || len(resp.Records) != 3 {
		t.Fatalf("bounded scan: %v / %d records", resp.Error(), len(resp.Records))
	}
	if resp.More {
		t.Fatal("scan stopping exactly at End reported More")
	}
}

func TestNodeScanBouncesOffFence(t *testing.T) {
	n := newTestNode(t, "n1")
	keys := seedRows(t, n, "tbl", 10)

	// Fence [keys[3], keys[6]): scans overlapping it bounce, scans
	// outside it pass.
	resp := n.Serve(rpc.Request{Method: rpc.MethodRangeFence, Namespace: "tbl", Start: keys[3], End: keys[6], Fence: true})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	resp = n.Serve(rpc.Request{Method: rpc.MethodScan, Namespace: "tbl", Limit: 100})
	if !rpc.IsFenced(resp.Error()) {
		t.Fatalf("scan across fence = %v, want fenced", resp.Error())
	}
	resp = n.Serve(rpc.Request{Method: rpc.MethodScan, Namespace: "tbl", Start: keys[6], Limit: 100})
	if resp.Error() != nil || len(resp.Records) != 4 {
		t.Fatalf("scan outside fence: %v / %d records", resp.Error(), len(resp.Records))
	}
	// Lifting the fence reopens the span.
	resp = n.Serve(rpc.Request{Method: rpc.MethodRangeFence, Namespace: "tbl", Start: keys[3], End: keys[6], Fence: false})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	resp = n.Serve(rpc.Request{Method: rpc.MethodScan, Namespace: "tbl", Limit: 100})
	if resp.Error() != nil || len(resp.Records) != 10 {
		t.Fatalf("scan after unfence: %v / %d records", resp.Error(), len(resp.Records))
	}
}
