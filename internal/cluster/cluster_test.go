package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"scads/internal/clock"
	"scads/internal/record"
	"scads/internal/rpc"
	"scads/internal/storage"
)

func newTestNode(t testing.TB, id string) *Node {
	t.Helper()
	e, err := storage.Open(storage.Options{NodeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return NewNode(id, e)
}

func TestNodeServeCRUD(t *testing.T) {
	n := newTestNode(t, "n1")

	resp := n.Serve(rpc.Request{Method: rpc.MethodPing})
	if !resp.Found || string(resp.Value) != "n1" {
		t.Fatalf("ping = %+v", resp)
	}

	resp = n.Serve(rpc.Request{Method: rpc.MethodPut, Namespace: "users", Key: []byte("alice"), Value: []byte("p")})
	if resp.Error() != nil || resp.Version == 0 {
		t.Fatalf("put = %+v", resp)
	}

	resp = n.Serve(rpc.Request{Method: rpc.MethodGet, Namespace: "users", Key: []byte("alice")})
	if !resp.Found || !bytes.Equal(resp.Value, []byte("p")) {
		t.Fatalf("get = %+v", resp)
	}

	resp = n.Serve(rpc.Request{Method: rpc.MethodDelete, Namespace: "users", Key: []byte("alice")})
	if resp.Error() != nil {
		t.Fatalf("delete = %+v", resp)
	}
	resp = n.Serve(rpc.Request{Method: rpc.MethodGet, Namespace: "users", Key: []byte("alice")})
	if resp.Found {
		t.Fatal("deleted key still found")
	}
}

func TestNodeScanBoundedAndOrdered(t *testing.T) {
	n := newTestNode(t, "n1")
	for i := 0; i < 50; i++ {
		n.Serve(rpc.Request{Method: rpc.MethodPut, Namespace: "ns", Key: []byte(fmt.Sprintf("k-%03d", i)), Value: []byte("v")})
	}
	resp := n.Serve(rpc.Request{
		Method: rpc.MethodScan, Namespace: "ns",
		Start: []byte("k-010"), End: []byte("k-040"), Limit: 10,
	})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	if len(resp.Records) != 10 {
		t.Fatalf("scan returned %d records, want limit 10", len(resp.Records))
	}
	if string(resp.Records[0].Key) != "k-010" {
		t.Fatalf("first key = %q", resp.Records[0].Key)
	}
	for i := 1; i < len(resp.Records); i++ {
		if bytes.Compare(resp.Records[i-1].Key, resp.Records[i].Key) >= 0 {
			t.Fatal("scan out of order")
		}
	}
}

func TestNodeApplyVersioned(t *testing.T) {
	n := newTestNode(t, "n1")
	recs := []record.Record{
		{Key: []byte("k"), Value: []byte("new"), Version: 100},
		{Key: []byte("k"), Value: []byte("stale"), Version: 50},
	}
	resp := n.Serve(rpc.Request{Method: rpc.MethodApply, Namespace: "ns", Records: recs})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	got := n.Serve(rpc.Request{Method: rpc.MethodGet, Namespace: "ns", Key: []byte("k")})
	if string(got.Value) != "new" {
		t.Fatalf("LWW violated over apply: %q", got.Value)
	}
}

func TestNodeDropRange(t *testing.T) {
	n := newTestNode(t, "n1")
	for i := 0; i < 20; i++ {
		n.Serve(rpc.Request{Method: rpc.MethodPut, Namespace: "ns", Key: []byte(fmt.Sprintf("k-%02d", i)), Value: []byte("v")})
	}
	resp := n.Serve(rpc.Request{Method: rpc.MethodDropRange, Namespace: "ns", Start: []byte("k-05"), End: []byte("k-15")})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	if resp.RecordCount != 10 {
		t.Fatalf("dropped %d records, want 10", resp.RecordCount)
	}
	for i := 0; i < 20; i++ {
		got := n.Serve(rpc.Request{Method: rpc.MethodGet, Namespace: "ns", Key: []byte(fmt.Sprintf("k-%02d", i))})
		wantFound := i < 5 || i >= 15
		if got.Found != wantFound {
			t.Fatalf("key %02d found=%v want %v", i, got.Found, wantFound)
		}
	}
}

func TestNodeStatsAndCounters(t *testing.T) {
	n := newTestNode(t, "n1")
	for i := 0; i < 5; i++ {
		n.Serve(rpc.Request{Method: rpc.MethodPut, Namespace: "ns", Key: []byte(fmt.Sprintf("k%d", i)), Value: []byte("v")})
	}
	for i := 0; i < 3; i++ {
		n.Serve(rpc.Request{Method: rpc.MethodGet, Namespace: "ns", Key: []byte("k0")})
	}
	if n.WriteCount() != 5 || n.ReadCount() != 3 {
		t.Fatalf("counters = r%d w%d", n.ReadCount(), n.WriteCount())
	}
	resp := n.Serve(rpc.Request{Method: rpc.MethodStats})
	if resp.RecordCount != 5 {
		t.Fatalf("stats RecordCount = %d", resp.RecordCount)
	}
}

func TestNodeInvalidNamespace(t *testing.T) {
	n := newTestNode(t, "n1")
	resp := n.Serve(rpc.Request{Method: rpc.MethodGet, Namespace: "../bad", Key: []byte("k")})
	if resp.Error() == nil {
		t.Fatal("invalid namespace accepted")
	}
}

func TestNodeOverTCP(t *testing.T) {
	n := newTestNode(t, "n1")
	s := rpc.NewServer(n)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr := rpc.NewTCPTransport()
	defer tr.Close()

	if _, err := tr.Call(addr, rpc.Request{Method: rpc.MethodPut, Namespace: "ns", Key: []byte("k"), Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	resp, err := tr.Call(addr, rpc.Request{Method: rpc.MethodGet, Namespace: "ns", Key: []byte("k")})
	if err != nil || !resp.Found || string(resp.Value) != "v" {
		t.Fatalf("get over TCP: %v %+v", err, resp)
	}
}

func TestDirectoryLifecycle(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	d := NewDirectory(vc)
	d.Join("n1", "addr1")
	d.Join("n2", "addr2")

	if b, u, dn := d.CountByStatus(); b != 2 || u != 0 || dn != 0 {
		t.Fatalf("counts after join = %d %d %d", b, u, dn)
	}
	d.MarkUp("n1")
	d.MarkUp("n2")
	if len(d.Up()) != 2 {
		t.Fatal("MarkUp failed")
	}

	m, ok := d.Get("n1")
	if !ok || m.Addr != "addr1" || m.Status != StatusUp {
		t.Fatalf("Get = %+v %v", m, ok)
	}

	d.MarkDown("n2")
	if up := d.Up(); len(up) != 1 || up[0].ID != "n1" {
		t.Fatalf("Up after MarkDown = %v", up)
	}

	// Heartbeat resurrects a down node.
	d.Heartbeat("n2")
	if len(d.Up()) != 2 {
		t.Fatal("heartbeat did not resurrect")
	}

	d.Remove("n2")
	if _, ok := d.Get("n2"); ok {
		t.Fatal("Remove failed")
	}
}

func TestDirectoryExpireStale(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	d := NewDirectory(vc)
	d.Join("n1", "a1")
	d.Join("n2", "a2")
	d.MarkUp("n1")
	d.MarkUp("n2")

	vc.Advance(5 * time.Second)
	d.Heartbeat("n1") // n2 goes silent

	vc.Advance(6 * time.Second)
	expired := d.ExpireStale(10 * time.Second)
	if len(expired) != 1 || expired[0] != "n2" {
		t.Fatalf("expired = %v, want [n2]", expired)
	}
	if up := d.Up(); len(up) != 1 || up[0].ID != "n1" {
		t.Fatalf("Up after expiry = %v", up)
	}
	// Booting nodes are never expired.
	d.Join("n3", "a3")
	vc.Advance(time.Hour)
	for _, id := range d.ExpireStale(10 * time.Second) {
		if id == "n3" {
			t.Fatal("booting node expired")
		}
	}
}

func TestDirectoryMembersSorted(t *testing.T) {
	d := NewDirectory(clock.NewVirtual(time.Unix(0, 0)))
	for _, id := range []string{"z", "a", "m"} {
		d.Join(id, id+"-addr")
	}
	ms := d.Members()
	if ms[0].ID != "a" || ms[1].ID != "m" || ms[2].ID != "z" {
		t.Fatalf("Members not sorted: %v", ms)
	}
}

func TestStatusString(t *testing.T) {
	if StatusBooting.String() != "booting" || StatusUp.String() != "up" || StatusDown.String() != "down" {
		t.Fatal("Status strings wrong")
	}
	if Status(99).String() == "" {
		t.Fatal("unknown status has empty string")
	}
}

// seedBigValues installs count records of valSize bytes each, totalling
// comfortably past pageByteBudget, via the apply path.
func seedBigValues(t testing.TB, n *Node, count, valSize int) {
	t.Helper()
	recs := make([]record.Record, count)
	for i := range recs {
		recs[i] = record.Record{
			Key:     []byte(fmt.Sprintf("big%04d", i)),
			Value:   bytes.Repeat([]byte{byte('a' + i%26)}, valSize),
			Version: uint64(i + 1),
		}
	}
	resp := n.Serve(rpc.Request{Method: rpc.MethodApply, Namespace: "blobs", Records: recs})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
}

// TestNodeScanByteBudgetPages: record-count limits alone would let a
// scan of large values assemble a response past the wire frame cap;
// the byte budget must cut pages short with the exact More/Resume
// contract, and paging must still visit every record exactly once.
func TestNodeScanByteBudgetPages(t *testing.T) {
	n := newTestNode(t, "n1")
	const count, valSize = 30, 256 << 10 // ~7.5 MiB total, budget 4 MiB
	seedBigValues(t, n, count, valSize)

	var got []string
	pages := 0
	start := []byte(nil)
	for {
		resp := n.Serve(rpc.Request{Method: rpc.MethodScan, Namespace: "blobs", Start: start, Limit: count + 10})
		if resp.Error() != nil {
			t.Fatal(resp.Error())
		}
		pages++
		for _, r := range resp.Records {
			got = append(got, string(r.Key))
			if len(r.Value) != valSize {
				t.Fatalf("record %q value truncated to %d", r.Key, len(r.Value))
			}
		}
		if !resp.More {
			break
		}
		if resp.Resume == nil {
			t.Fatal("More without Resume")
		}
		start = resp.Resume
	}
	if pages < 2 {
		t.Fatalf("scan of %d MiB served in %d page(s); byte budget did not page", count*valSize>>20, pages)
	}
	if len(got) != count {
		t.Fatalf("paged scan returned %d records, want %d", len(got), count)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("paged scan out of order at %d: %q >= %q", i, got[i-1], got[i])
		}
	}
}

// TestNodeRangeSnapshotByteBudgetPages: a snapshot page cut short by
// the byte budget must flag More so the migration manager keeps
// paging instead of declaring the snapshot complete (which would
// silently lose the tail of the range).
func TestNodeRangeSnapshotByteBudgetPages(t *testing.T) {
	n := newTestNode(t, "n1")
	const count, valSize = 30, 256 << 10
	seedBigValues(t, n, count, valSize)

	total := 0
	pages := 0
	cur := []byte(nil)
	for {
		resp := n.Serve(rpc.Request{Method: rpc.MethodRangeSnapshot, Namespace: "blobs", Start: cur, Limit: count + 10})
		if resp.Error() != nil {
			t.Fatal(resp.Error())
		}
		pages++
		total += len(resp.Records)
		if len(resp.Records) < count+10 && !resp.More {
			break
		}
		if len(resp.Records) == 0 {
			t.Fatal("More set on empty page")
		}
		last := resp.Records[len(resp.Records)-1].Key
		cur = append(append([]byte(nil), last...), 0x00)
	}
	if pages < 2 {
		t.Fatalf("snapshot served in %d page(s); byte budget did not page", pages)
	}
	if total != count {
		t.Fatalf("paged snapshot returned %d records, want %d", total, count)
	}
}
