package cluster

import (
	"fmt"
	"testing"

	"scads/internal/record"
	"scads/internal/rpc"
)

func TestFenceRejectsWritesInRangeOnly(t *testing.T) {
	n := newTestNode(t, "n1")
	const ns = "tbl_users"
	put := func(key string) error {
		resp := n.Serve(rpc.Request{Method: rpc.MethodPut, Namespace: ns, Key: []byte(key), Value: []byte("v")})
		return resp.Error()
	}

	resp := n.Serve(rpc.Request{
		Method: rpc.MethodRangeFence, Namespace: ns,
		Start: []byte("b"), End: []byte("d"), Fence: true,
	})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}

	if e := put("c"); !rpc.IsFenced(e) {
		t.Fatalf("in-fence put = %v, want fence rejection", e)
	}
	if e := put("a"); e != nil {
		t.Fatalf("out-of-fence put rejected: %v", e)
	}
	if e := put("d"); e != nil {
		t.Fatalf("put at exclusive end rejected: %v", e)
	}
	// Deletes and applies bounce too.
	resp = n.Serve(rpc.Request{Method: rpc.MethodDelete, Namespace: ns, Key: []byte("bb")})
	if !rpc.IsFenced(resp.Error()) {
		t.Fatalf("in-fence delete = %v", resp.Error())
	}
	resp = n.Serve(rpc.Request{Method: rpc.MethodApply, Namespace: ns, Records: []record.Record{
		{Key: []byte("a"), Value: []byte("x"), Version: 99},
		{Key: []byte("c"), Value: []byte("x"), Version: 99},
	}})
	if !rpc.IsFenced(resp.Error()) {
		t.Fatalf("apply group touching the fence = %v", resp.Error())
	}
	// Another namespace is unaffected.
	resp = n.Serve(rpc.Request{Method: rpc.MethodPut, Namespace: "tbl_other", Key: []byte("c"), Value: []byte("v")})
	if resp.Error() != nil {
		t.Fatalf("other namespace fenced: %v", resp.Error())
	}
	// Reads pass through.
	resp = n.Serve(rpc.Request{Method: rpc.MethodGet, Namespace: ns, Key: []byte("c")})
	if resp.Error() != nil {
		t.Fatalf("read through fence: %v", resp.Error())
	}

	// Batched sub-requests are checked individually.
	resp = n.Serve(rpc.Request{Method: rpc.MethodBatch, Batch: []rpc.Request{
		{Method: rpc.MethodPut, Namespace: ns, Key: []byte("c"), Value: []byte("v")},
		{Method: rpc.MethodPut, Namespace: ns, Key: []byte("e"), Value: []byte("v")},
	}})
	if !rpc.IsFenced(resp.Batch[0].Error()) || resp.Batch[1].Error() != nil {
		t.Fatalf("batch = [%v, %v]", resp.Batch[0].Error(), resp.Batch[1].Error())
	}

	// Lift: writes flow again; lifting twice is harmless.
	for i := 0; i < 2; i++ {
		resp = n.Serve(rpc.Request{
			Method: rpc.MethodRangeFence, Namespace: ns,
			Start: []byte("b"), End: []byte("d"), Fence: false,
		})
		if resp.Error() != nil {
			t.Fatal(resp.Error())
		}
	}
	if e := put("c"); e != nil {
		t.Fatalf("put after unfence: %v", e)
	}
	if st := n.Serve(rpc.Request{Method: rpc.MethodStats}); st.Fenced != 0 {
		t.Fatal("fence count nonzero after lift")
	}
}

func TestRangeSnapshotAndDelta(t *testing.T) {
	n := newTestNode(t, "n1")
	const ns = "tbl_users"
	for i := 0; i < 25; i++ {
		resp := n.Serve(rpc.Request{
			Method: rpc.MethodPut, Namespace: ns,
			Key: []byte(fmt.Sprintf("k%02d", i)), Value: []byte("v"),
		})
		if resp.Error() != nil {
			t.Fatal(resp.Error())
		}
	}
	// Deleted keys ride the snapshot as tombstones.
	if resp := n.Serve(rpc.Request{Method: rpc.MethodDelete, Namespace: ns, Key: []byte("k03")}); resp.Error() != nil {
		t.Fatal(resp.Error())
	}

	// Page the snapshot.
	var got []record.Record
	var epoch, wm uint64
	cur := []byte(nil)
	for page := 0; ; page++ {
		resp := n.Serve(rpc.Request{Method: rpc.MethodRangeSnapshot, Namespace: ns, Start: cur, Limit: 10})
		if resp.Error() != nil {
			t.Fatal(resp.Error())
		}
		if page == 0 {
			epoch, wm = resp.Epoch, resp.Watermark
		}
		got = append(got, resp.Records...)
		if len(resp.Records) < 10 {
			break
		}
		cur = append(resp.Records[len(resp.Records)-1].Key, 0x00)
	}
	if len(got) != 25 {
		t.Fatalf("snapshot carries %d records, want 25 (incl. tombstone)", len(got))
	}
	tombs := 0
	for _, r := range got {
		if r.Tombstone {
			tombs++
		}
	}
	if tombs != 1 {
		t.Fatalf("snapshot carries %d tombstones, want 1", tombs)
	}

	// Writes after the snapshot baseline surface in the delta.
	if resp := n.Serve(rpc.Request{Method: rpc.MethodPut, Namespace: ns, Key: []byte("k01"), Value: []byte("v2")}); resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	resp := n.Serve(rpc.Request{Method: rpc.MethodRangeDelta, Namespace: ns, Epoch: epoch, Since: wm, Limit: 100})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	if len(resp.Records) != 1 || string(resp.Records[0].Value) != "v2" {
		t.Fatalf("delta = %+v", resp.Records)
	}

	// An unusable baseline reports a snapshot gap.
	resp = n.Serve(rpc.Request{Method: rpc.MethodRangeDelta, Namespace: ns, Epoch: epoch + 1, Since: wm})
	if !rpc.IsSnapshotGap(resp.Error()) {
		t.Fatalf("bad epoch delta = %v, want snapshot gap", resp.Error())
	}

	// Limit -1: watermark probe without records (operator tooling).
	resp = n.Serve(rpc.Request{Method: rpc.MethodRangeSnapshot, Namespace: ns, Limit: -1})
	if resp.Error() != nil || len(resp.Records) != 0 || resp.Watermark == 0 {
		t.Fatalf("watermark probe = %+v", resp)
	}
}

func TestUnfenceSubtractsRange(t *testing.T) {
	n := newTestNode(t, "n1")
	const ns = "tbl_users"
	put := func(key string) error {
		resp := n.Serve(rpc.Request{Method: rpc.MethodPut, Namespace: ns, Key: []byte(key), Value: []byte("v")})
		return resp.Error()
	}
	// Fence the whole keyspace, then lift only [b, m): the remainder
	// pieces stay fenced.
	n.Serve(rpc.Request{Method: rpc.MethodRangeFence, Namespace: ns, Fence: true})
	n.Serve(rpc.Request{Method: rpc.MethodRangeFence, Namespace: ns, Start: []byte("b"), End: []byte("m"), Fence: false})

	if e := put("c"); e != nil {
		t.Fatalf("put inside lifted span: %v", e)
	}
	if e := put("a"); !rpc.IsFenced(e) {
		t.Fatalf("left remainder unfenced: %v", e)
	}
	if e := put("x"); !rpc.IsFenced(e) {
		t.Fatalf("right remainder unfenced: %v", e)
	}
	if st := n.Serve(rpc.Request{Method: rpc.MethodStats}); st.Fenced != 2 {
		t.Fatalf("fence count = %d, want 2 remainder pieces", st.Fenced)
	}
	// Lifting the remainders opens everything.
	n.Serve(rpc.Request{Method: rpc.MethodRangeFence, Namespace: ns, End: []byte("b"), Fence: false})
	n.Serve(rpc.Request{Method: rpc.MethodRangeFence, Namespace: ns, Start: []byte("m"), Fence: false})
	if e := put("a"); e != nil {
		t.Fatalf("put after lifting remainders: %v", e)
	}
	if st := n.Serve(rpc.Request{Method: rpc.MethodStats}); st.Fenced != 0 {
		t.Fatalf("fence count = %d after lifting everything", st.Fenced)
	}
}
