package cluster

import (
	"bytes"
	"sync"

	"scads/internal/record"
)

// fenceSet tracks the key ranges a node currently rejects writes for.
// A fence is installed on the donor primary during a migration's final
// delta drain, and stays on any node that loses a range — a straggling
// in-flight write routed before the flip must bounce (the coordinator
// re-reads the map and retries against the new primary) rather than
// land invisibly on a node that no longer serves the range. A node
// that regains a range has its fence lifted by the migration manager
// before the snapshot copy begins.
//
// Fences gate client and replication writes (put, delete, apply) and
// range scans overlapping a fenced span (a fenced loser may already be
// mid-truncation, so a scan served there could silently miss data);
// point reads, snapshots, deltas and droprange cleanup pass through.
type fenceSet struct {
	mu   sync.RWMutex
	byNS map[string][]fenceRange
}

type fenceRange struct {
	start, end []byte // start inclusive (nil = -inf), end exclusive (nil = +inf)
}

func (f fenceRange) contains(key []byte) bool {
	if f.start != nil && bytes.Compare(key, f.start) < 0 {
		return false
	}
	if f.end != nil && bytes.Compare(key, f.end) >= 0 {
		return false
	}
	return true
}

func (f fenceRange) equal(o fenceRange) bool {
	return bytes.Equal(f.start, o.start) && bytes.Equal(f.end, o.end)
}

// add installs a fence over [start, end); installing an identical
// fence twice is a no-op, so retried migrations stay idempotent.
func (fs *fenceSet) add(ns string, start, end []byte) {
	nf := fenceRange{
		start: append([]byte(nil), start...),
		end:   append([]byte(nil), end...),
	}
	if start == nil {
		nf.start = nil
	}
	if end == nil {
		nf.end = nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.byNS == nil {
		fs.byNS = make(map[string][]fenceRange)
	}
	for _, f := range fs.byNS[ns] {
		if f.equal(nf) {
			return
		}
	}
	fs.byNS[ns] = append(fs.byNS[ns], nf)
}

// remove lifts fencing over [start, end) by subtraction: any fence
// overlapping the span is cut down to its remainder outside it. This
// keeps unfencing correct across range splits and merges — a node
// that lost [a,z) and later regains only [a,m) has exactly [a,m)
// unfenced, while [m,z) stays protected. Removing a span no fence
// covers is a no-op, so lifting twice is safe.
func (fs *fenceSet) remove(ns string, start, end []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var kept []fenceRange
	for _, f := range fs.byNS[ns] {
		if !f.overlaps(start, end) {
			kept = append(kept, f)
			continue
		}
		// Left remainder: [f.start, start).
		if start != nil && (f.start == nil || bytes.Compare(f.start, start) < 0) {
			kept = append(kept, fenceRange{start: f.start, end: cloneFenceBound(start)})
		}
		// Right remainder: [end, f.end).
		if end != nil && (f.end == nil || bytes.Compare(end, f.end) < 0) {
			kept = append(kept, fenceRange{start: cloneFenceBound(end), end: f.end})
		}
	}
	if len(kept) == 0 {
		delete(fs.byNS, ns)
	} else {
		fs.byNS[ns] = kept
	}
}

// overlaps reports whether f intersects [start, end) (nil bounds are
// infinite).
func (f fenceRange) overlaps(start, end []byte) bool {
	if f.end != nil && start != nil && bytes.Compare(f.end, start) <= 0 {
		return false
	}
	if f.start != nil && end != nil && bytes.Compare(end, f.start) <= 0 {
		return false
	}
	return true
}

func cloneFenceBound(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// covers reports whether key falls inside any fence of the namespace.
func (fs *fenceSet) covers(ns string, key []byte) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	for _, f := range fs.byNS[ns] {
		if f.contains(key) {
			return true
		}
	}
	return false
}

// intersects reports whether any fence of the namespace overlaps
// [start, end) (nil bounds are infinite). Range scans check this: a
// fence means the span is mid-handoff (or already lost and about to be
// truncated), so a scan must bounce and re-route off the fresh
// partition map rather than risk reading a partially torn-down range.
func (fs *fenceSet) intersects(ns string, start, end []byte) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	for _, f := range fs.byNS[ns] {
		if f.overlaps(start, end) {
			return true
		}
	}
	return false
}

// anyCovered reports whether any record of the group falls inside a
// fence of the namespace; a fenced group is rejected whole and the
// coordinator falls back to per-record routing.
func (fs *fenceSet) anyCovered(ns string, recs []record.Record) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	fences := fs.byNS[ns]
	if len(fences) == 0 {
		return false
	}
	for _, rec := range recs {
		for _, f := range fences {
			if f.contains(rec.Key) {
				return true
			}
		}
	}
	return false
}

// count reports the number of installed fences across namespaces.
func (fs *fenceSet) count() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n := 0
	for _, fences := range fs.byNS {
		n += len(fences)
	}
	return n
}
