// Package cluster provides the storage-node service (the rpc.Handler a
// SCADS data node exposes) and the cluster membership directory with
// heartbeat-based failure detection.
package cluster

import (
	"sync/atomic"

	"scads/internal/keycodec"
	"scads/internal/record"
	"scads/internal/row"
	"scads/internal/rpc"
	"scads/internal/storage"
)

// Node is one SCADS storage node: a storage engine plus the request
// dispatch that makes it reachable over any rpc.Transport.
type Node struct {
	id     string
	engine *storage.Engine

	// fences rejects writes into ranges mid-handoff (see fenceSet).
	fences fenceSet

	// Request counters for capacity modelling.
	reads  atomic.Int64
	writes atomic.Int64
}

// NewNode wraps engine as a servable storage node.
func NewNode(id string, engine *storage.Engine) *Node {
	return &Node{id: id, engine: engine}
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.id }

// Engine exposes the underlying storage engine (used by local tooling
// and tests; remote callers go through Serve).
func (n *Node) Engine() *storage.Engine { return n.engine }

// ReadCount and WriteCount report requests served since start.
func (n *Node) ReadCount() int64  { return n.reads.Load() }
func (n *Node) WriteCount() int64 { return n.writes.Load() }

// Serve implements rpc.Handler.
func (n *Node) Serve(req rpc.Request) rpc.Response {
	switch req.Method {
	case rpc.MethodPing:
		return rpc.Response{Found: true, Value: []byte(n.id)}
	case rpc.MethodGet:
		return n.get(req)
	case rpc.MethodPut:
		return n.put(req)
	case rpc.MethodDelete:
		return n.del(req)
	case rpc.MethodScan:
		return n.scan(req)
	case rpc.MethodApply:
		return n.apply(req)
	case rpc.MethodDropRange:
		return n.dropRange(req)
	case rpc.MethodRangeSnapshot:
		return n.rangeSnapshot(req)
	case rpc.MethodRangeDelta:
		return n.rangeDelta(req)
	case rpc.MethodRangeFence:
		return n.rangeFence(req)
	case rpc.MethodStats:
		return n.stats(req)
	case rpc.MethodBatch:
		return rpc.ServeBatch(n, req)
	default:
		return rpc.Unimplemented(req)
	}
}

func (n *Node) namespace(name string) (*storage.Namespace, rpc.Response, bool) {
	ns, err := n.engine.Namespace(name)
	if err != nil {
		return nil, rpc.Response{Err: rpc.ErrString(err)}, false
	}
	return ns, rpc.Response{}, true
}

func (n *Node) get(req rpc.Request) rpc.Response {
	n.reads.Add(1)
	ns, errResp, ok := n.namespace(req.Namespace)
	if !ok {
		return errResp
	}
	rec, found, err := ns.GetRecord(req.Key)
	if err != nil {
		return rpc.Response{Err: rpc.ErrString(err)}
	}
	if !found || rec.Tombstone {
		return rpc.Response{Found: false}
	}
	return rpc.Response{Found: true, Value: rec.Value, Version: rec.Version}
}

func (n *Node) put(req rpc.Request) rpc.Response {
	n.writes.Add(1)
	if n.fences.covers(req.Namespace, req.Key) {
		return rpc.Response{Err: rpc.ErrString(rpc.ErrFenced)}
	}
	ns, errResp, ok := n.namespace(req.Namespace)
	if !ok {
		return errResp
	}
	ver, err := ns.Put(req.Key, req.Value)
	if err != nil {
		return rpc.Response{Err: rpc.ErrString(err)}
	}
	return rpc.Response{Found: true, Version: ver}
}

func (n *Node) del(req rpc.Request) rpc.Response {
	n.writes.Add(1)
	if n.fences.covers(req.Namespace, req.Key) {
		return rpc.Response{Err: rpc.ErrString(rpc.ErrFenced)}
	}
	ns, errResp, ok := n.namespace(req.Namespace)
	if !ok {
		return errResp
	}
	ver, err := ns.Delete(req.Key)
	if err != nil {
		return rpc.Response{Err: rpc.ErrString(err)}
	}
	return rpc.Response{Found: true, Version: ver}
}

// scanRawCap bounds how many stored records one scan request may visit
// regardless of how selective its pushed-down filters are — scale
// independence means a node never serves an unbounded scan. A request
// stopped by either cap reports More plus a Resume cursor so the
// coordinator can page on.
const scanRawCap = 10000

// pageByteBudget bounds the encoded payload of one scan or snapshot
// page. Record-count limits alone let 10000 large values assemble a
// response past the wire's frame cap (which would surface as a
// semantic too-big error, not data); stopping at a byte budget turns
// big-value ranges into more, smaller pages through the exact same
// More/Resume (scan) and More (snapshot) continuation contracts.
// One record larger than the budget still travels alone — the budget
// is checked between records, so progress is always made.
const pageByteBudget = 4 << 20

func (n *Node) scan(req rpc.Request) rpc.Response {
	n.reads.Add(1)
	if n.fences.intersects(req.Namespace, req.Start, req.End) {
		// The span is mid-migration handoff — or this node already lost
		// it and teardown may have begun truncating. Serving the scan
		// could silently return a partial range; bounce instead so the
		// coordinator re-reads the partition map and retries against
		// the current holder.
		return rpc.Response{Err: rpc.ErrString(rpc.ErrFenced)}
	}
	ns, errResp, ok := n.namespace(req.Namespace)
	if !ok {
		return errResp
	}
	limit := req.Limit
	if limit <= 0 || limit > scanRawCap {
		limit = scanRawCap
	}
	var (
		recs     []record.Record
		visited  int
		bytes    int
		resume   []byte
		xformErr error
	)
	err := ns.ScanLive(req.Start, req.End, func(r record.Record) bool {
		if len(recs) >= limit || visited >= scanRawCap || bytes >= pageByteBudget {
			// This record proves data remains beyond the page, so More
			// is exact: it is set only when a continuation will find
			// something, and the record itself is the resume point.
			resume = append([]byte(nil), r.Key...)
			return false
		}
		visited++
		out, match, err := scanTransform(r, req.Projection, req.Preds)
		if err != nil {
			xformErr = err
			return false
		}
		if match {
			recs = append(recs, out)
			bytes += out.MarshaledSize()
		}
		return true
	})
	if err == nil {
		err = xformErr
	}
	if err != nil {
		return rpc.Response{Err: rpc.ErrString(err)}
	}
	return rpc.Response{Found: true, Records: recs, More: resume != nil, Resume: resume}
}

// scanTransform applies the pushed-down filter conjuncts and projection
// to one live record. Filters compare keycodec encodings (byte order
// equals value order); a row lacking a filtered column never matches.
// With a projection, the returned record carries the narrowed row
// re-encoded under the original version; without one the stored value
// passes through untouched.
func scanTransform(r record.Record, projection []string, preds []rpc.ScanPred) (record.Record, bool, error) {
	if len(projection) == 0 && len(preds) == 0 {
		return r.Clone(), true, nil
	}
	decoded, err := row.Decode(r.Value)
	if err != nil {
		return record.Record{}, false, err
	}
	for _, p := range preds {
		v, ok := decoded[p.Column]
		if !ok {
			return record.Record{}, false, nil
		}
		enc, err := keycodec.Append(nil, v)
		if err != nil {
			return record.Record{}, false, err
		}
		if !p.Match(enc) {
			return record.Record{}, false, nil
		}
	}
	if len(projection) == 0 {
		return r.Clone(), true, nil
	}
	val, err := row.Encode(row.Project(decoded, projection))
	if err != nil {
		return record.Record{}, false, err
	}
	return record.Record{Key: append([]byte(nil), r.Key...), Value: val, Version: r.Version}, true, nil
}

func (n *Node) apply(req rpc.Request) rpc.Response {
	n.writes.Add(1)
	if n.fences.anyCovered(req.Namespace, req.Records) {
		return rpc.Response{Err: rpc.ErrString(rpc.ErrFenced)}
	}
	ns, errResp, ok := n.namespace(req.Namespace)
	if !ok {
		return errResp
	}
	// The whole record group goes down the batched path: one lock
	// acquisition and one WAL write (one shared fsync when the engine
	// runs with synchronous writes).
	if err := ns.ApplyBatch(req.Records); err != nil {
		return rpc.Response{Err: rpc.ErrString(err)}
	}
	return rpc.Response{Found: true}
}

// dropRange physically truncates [Start, End) — one memtable range
// unlink, per-SSTable exclusions resolved by one compaction, one WAL
// reset. The old implementation tombstoned key by key (one WAL append
// and, under SyncWrites, one fsync each), stalling the donor node
// after every migration; worse, the fresh-versioned teardown
// tombstones would shadow legitimately re-installed records if the
// range ever migrated back. RecordCount reports memtable unlinks.
func (n *Node) dropRange(req rpc.Request) rpc.Response {
	ns, errResp, ok := n.namespace(req.Namespace)
	if !ok {
		return errResp
	}
	removed, err := ns.TruncateRange(req.Start, req.End)
	if err != nil {
		return rpc.Response{Err: rpc.ErrString(err)}
	}
	return rpc.Response{Found: true, RecordCount: int64(removed)}
}

// rangeSnapshot serves one page of a range's records — tombstones
// included, so a deleted key can never resurrect on the recipient —
// together with the apply watermark captured *before* the scan. The
// migration manager keeps the first page's watermark as its delta
// baseline: anything modified after it is re-fetched by
// MethodRangeDelta, so later pages racing with writes are safe
// (last-write-wins applies dedupe re-sent records). Limit < 0 returns
// the watermark alone plus the namespace's highest accepted record
// version (the freshness probe the repair manager ranks failover
// candidates by).
func (n *Node) rangeSnapshot(req rpc.Request) rpc.Response {
	n.reads.Add(1)
	ns, errResp, ok := n.namespace(req.Namespace)
	if !ok {
		return errResp
	}
	epoch, wm := ns.ApplyWatermark()
	resp := rpc.Response{Found: true, Epoch: epoch, Watermark: wm, Version: ns.MaxVersion()}
	if req.Limit < 0 {
		return resp
	}
	limit := req.Limit
	if limit == 0 || limit > 10000 {
		limit = 10000
	}
	// More reports a page cut short by the count limit or the byte
	// budget; the migration manager keeps paging (from the last key)
	// until a page arrives with More unset, so a short-by-bytes page
	// can never be mistaken for the end of the range.
	bytes := 0
	err := ns.ScanAll(req.Start, req.End, func(r record.Record) bool {
		if len(resp.Records) >= limit || bytes >= pageByteBudget {
			resp.More = true
			return false
		}
		c := r.Clone()
		resp.Records = append(resp.Records, c)
		bytes += c.MarshaledSize()
		return true
	})
	if err != nil {
		return rpc.Response{Err: rpc.ErrString(err)}
	}
	return resp
}

// rangeDelta serves the records modified after the caller's watermark.
// A baseline the node cannot serve (restart, or older than the
// retained delta log) returns ErrSnapshotGap and the caller restarts
// from a full snapshot.
func (n *Node) rangeDelta(req rpc.Request) rpc.Response {
	n.reads.Add(1)
	ns, errResp, ok := n.namespace(req.Namespace)
	if !ok {
		return errResp
	}
	limit := req.Limit
	if limit <= 0 || limit > 10000 {
		limit = 10000
	}
	recs, wm, more, ok2, err := ns.ScanSince(req.Epoch, req.Since, req.Start, req.End, limit)
	if err != nil {
		return rpc.Response{Err: rpc.ErrString(err)}
	}
	if !ok2 {
		return rpc.Response{Err: rpc.ErrString(rpc.ErrSnapshotGap)}
	}
	out := make([]record.Record, len(recs))
	for i, r := range recs {
		out[i] = r.Clone()
	}
	// More is the delta continuation contract: retained log entries
	// remain beyond the returned watermark (the page hit its count
	// limit or byte budget), so the caller must page again.
	return rpc.Response{Found: true, Records: out, Epoch: req.Epoch, Watermark: wm, More: more}
}

// rangeFence installs (req.Fence) or lifts a write fence over
// [Start, End). Both directions are idempotent.
func (n *Node) rangeFence(req rpc.Request) rpc.Response {
	if req.Namespace == "" {
		return rpc.Response{Err: "cluster: rangefence needs a namespace"}
	}
	if req.Fence {
		n.fences.add(req.Namespace, req.Start, req.End)
	} else {
		n.fences.remove(req.Namespace, req.Start, req.End)
	}
	return rpc.Response{Found: true}
}

func (n *Node) stats(req rpc.Request) rpc.Response {
	s := n.engine.Stats()
	return rpc.Response{
		Found:       true,
		RecordCount: s.RecordCount,
		Fenced:      n.fences.count(),
	}
}
