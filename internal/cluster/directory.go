package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scads/internal/clock"
)

// Status describes a member's lifecycle state.
type Status int

// Lifecycle states: a node boots (utility-computing instances take
// minutes to come up — paper §2.1), serves while up, and is marked
// down when heartbeats stop or the director decommissions it.
const (
	StatusBooting Status = iota
	StatusUp
	StatusDown
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusBooting:
		return "booting"
	case StatusUp:
		return "up"
	case StatusDown:
		return "down"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Member is one node in the directory.
type Member struct {
	ID            string
	Addr          string
	Status        Status
	LastHeartbeat time.Time
	JoinedAt      time.Time
}

// Directory tracks cluster membership. The SCADS director and routers
// consult it; storage nodes heartbeat into it. Safe for concurrent use.
type Directory struct {
	clk clock.Clock

	mu      sync.RWMutex
	members map[string]*Member
}

// NewDirectory returns an empty directory using clk for timestamps.
func NewDirectory(clk clock.Clock) *Directory {
	return &Directory{clk: clk, members: make(map[string]*Member)}
}

// Join registers (or re-registers) a member in the booting state.
func (d *Directory) Join(id, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clk.Now()
	d.members[id] = &Member{
		ID:            id,
		Addr:          addr,
		Status:        StatusBooting,
		LastHeartbeat: now,
		JoinedAt:      now,
	}
}

// MarkUp transitions a member to serving state.
func (d *Directory) MarkUp(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.members[id]; ok {
		m.Status = StatusUp
		m.LastHeartbeat = d.clk.Now()
	}
}

// MarkDown transitions a member to the down state.
func (d *Directory) MarkDown(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.members[id]; ok {
		m.Status = StatusDown
	}
}

// Remove deletes a member entirely (decommissioned instance).
func (d *Directory) Remove(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.members, id)
}

// Heartbeat records a liveness signal from id. Unknown IDs are
// ignored. A heartbeat from a down node resurrects it to up.
func (d *Directory) Heartbeat(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.members[id]; ok {
		m.LastHeartbeat = d.clk.Now()
		if m.Status == StatusDown {
			m.Status = StatusUp
		}
	}
}

// ExpireStale marks every up member whose last heartbeat is older than
// timeout as down, returning the IDs it transitioned.
func (d *Directory) ExpireStale(timeout time.Duration) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clk.Now()
	var expired []string
	for id, m := range d.members {
		if m.Status == StatusUp && now.Sub(m.LastHeartbeat) > timeout {
			m.Status = StatusDown
			expired = append(expired, id)
		}
	}
	sort.Strings(expired)
	return expired
}

// Get returns a copy of the member with the given ID.
func (d *Directory) Get(id string) (Member, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	m, ok := d.members[id]
	if !ok {
		return Member{}, false
	}
	return *m, true
}

// Members returns copies of all members, sorted by ID.
func (d *Directory) Members() []Member {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Member, 0, len(d.members))
	for _, m := range d.members {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Up returns the members currently serving, sorted by ID.
func (d *Directory) Up() []Member {
	var out []Member
	for _, m := range d.Members() {
		if m.Status == StatusUp {
			out = append(out, m)
		}
	}
	return out
}

// CountByStatus reports how many members are in each state.
func (d *Directory) CountByStatus() (booting, up, down int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, m := range d.members {
		switch m.Status {
		case StatusBooting:
			booting++
		case StatusUp:
			up++
		case StatusDown:
			down++
		}
	}
	return
}
