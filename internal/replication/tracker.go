package replication

import (
	"container/heap"
	"sync"
	"time"

	"scads/internal/clock"
)

// Tracker maintains per-(namespace, replica) staleness watermarks: the
// oldest accepted-but-undelivered write determines how stale a replica
// may be. The consistency layer consults it to decide whether a read
// from a given replica can violate the declared staleness bound — the
// paper's rule that "a client query would stall until the updates can
// be confirmed" when a bound is at risk.
type Tracker struct {
	clk clock.Clock

	mu   sync.Mutex
	keys map[trackKey]*pendingSet
}

type trackKey struct {
	namespace string
	node      string
}

// NewTracker returns an empty tracker.
func NewTracker(clk clock.Clock) *Tracker {
	return &Tracker{clk: clk, keys: make(map[trackKey]*pendingSet)}
}

func (t *Tracker) pending(namespace, node string, enqueuedAt time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := trackKey{namespace, node}
	ps, ok := t.keys[k]
	if !ok {
		ps = &pendingSet{live: make(map[int64]int)}
		t.keys[k] = ps
	}
	ps.add(enqueuedAt)
}

func (t *Tracker) done(namespace, node string, enqueuedAt time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ps, ok := t.keys[trackKey{namespace, node}]; ok {
		ps.remove(enqueuedAt)
	}
}

// Staleness returns an upper bound on how stale reads from node may be
// for the namespace: the age of the oldest undelivered update, or zero
// when the replica is fully caught up.
func (t *Tracker) Staleness(namespace, node string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	ps, ok := t.keys[trackKey{namespace, node}]
	if !ok {
		return 0
	}
	oldest, ok := ps.min()
	if !ok {
		return 0
	}
	d := t.clk.Now().Sub(oldest)
	if d < 0 {
		return 0
	}
	return d
}

// MaxStaleness returns the worst staleness across all replicas of the
// namespace.
func (t *Tracker) MaxStaleness(namespace string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var worst time.Duration
	now := t.clk.Now()
	for k, ps := range t.keys {
		if k.namespace != namespace {
			continue
		}
		if oldest, ok := ps.min(); ok {
			if d := now.Sub(oldest); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// pendingSet is a multiset of enqueue times with O(log n) min via a
// lazily pruned heap.
type pendingSet struct {
	h    timeHeap
	live map[int64]int // unixNano -> outstanding count
}

func (ps *pendingSet) add(t time.Time) {
	n := t.UnixNano()
	ps.live[n]++
	heap.Push(&ps.h, n)
}

func (ps *pendingSet) remove(t time.Time) {
	n := t.UnixNano()
	if c := ps.live[n]; c > 1 {
		ps.live[n] = c - 1
	} else {
		delete(ps.live, n)
	}
}

func (ps *pendingSet) min() (time.Time, bool) {
	for ps.h.Len() > 0 {
		top := ps.h[0]
		if ps.live[top] > 0 {
			return time.Unix(0, top), true
		}
		heap.Pop(&ps.h)
	}
	return time.Time{}, false
}

type timeHeap []int64

func (h timeHeap) Len() int           { return len(h) }
func (h timeHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h timeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timeHeap) Push(x any)        { *h = append(*h, x.(int64)) }
func (h *timeHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
