// Package replication implements SCADS's asynchronous update
// propagation (§3.3.2): every accepted write is enqueued once per
// secondary replica with a deadline derived from the namespace's
// declared staleness bound, and a pump drains the queue in deadline
// order. The deadline priority queue is the paper's central mechanism
// — "not only does the priority queue allow the system to complete
// important updates first, but it allows us to easily detect when it
// is in danger of getting behind schedule."
package replication

import (
	"container/heap"
	"sync"
	"time"

	"scads/internal/record"
)

// Update is one pending propagation of a record to one target replica.
type Update struct {
	Namespace string
	Rec       record.Record
	Target    string // node ID
	// Deadline is when the update must be applied for the namespace's
	// staleness bound to hold.
	Deadline time.Time
	// EnqueuedAt is when the write was accepted; staleness is measured
	// from here.
	EnqueuedAt time.Time

	Attempts int
}

// Order selects the queue discipline.
type Order int

const (
	// ByDeadline pops the most urgent update first (the SCADS design).
	ByDeadline Order = iota
	// FIFO pops in arrival order (the ablation baseline).
	FIFO
)

// Queue is a thread-safe priority queue of updates.
type Queue struct {
	order Order

	mu   sync.Mutex
	h    updateHeap
	seq  int64
	size int
}

// NewQueue returns an empty queue with the given discipline.
func NewQueue(order Order) *Queue {
	return &Queue{order: order}
}

// Push enqueues u.
func (q *Queue) Push(u Update) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	heap.Push(&q.h, queued{u: u, seq: q.seq, byDeadline: q.order == ByDeadline})
	q.size++
}

// Pop removes and returns the most urgent update. ok is false when the
// queue is empty.
func (q *Queue) Pop() (Update, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size == 0 {
		return Update{}, false
	}
	it := heap.Pop(&q.h).(queued)
	q.size--
	return it.u, true
}

// Peek returns the most urgent update without removing it.
func (q *Queue) Peek() (Update, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size == 0 {
		return Update{}, false
	}
	return q.h[0].u, true
}

// Len returns the number of pending updates.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// AtRisk counts pending updates whose deadline falls within margin of
// now — the "in danger of getting behind schedule" signal that feeds
// the director's provisioning decisions.
func (q *Queue) AtRisk(now time.Time, margin time.Duration) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	limit := now.Add(margin)
	n := 0
	for _, it := range q.h {
		if !it.u.Deadline.After(limit) {
			n++
		}
	}
	return n
}

// Overdue counts pending updates whose deadline has already passed.
func (q *Queue) Overdue(now time.Time) int {
	return q.AtRisk(now, 0)
}

// ForEach visits every pending update under the queue lock (heap
// order, not priority order). fn must not call back into the queue.
// The pump's flip-time Rebind uses this to clone in-range updates to
// replicas a migration just added.
func (q *Queue) ForEach(fn func(Update)) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, it := range q.h {
		fn(it.u)
	}
}

type queued struct {
	u          Update
	seq        int64
	byDeadline bool
}

type updateHeap []queued

func (h updateHeap) Len() int { return len(h) }
func (h updateHeap) Less(i, j int) bool {
	if h[i].byDeadline {
		if !h[i].u.Deadline.Equal(h[j].u.Deadline) {
			return h[i].u.Deadline.Before(h[j].u.Deadline)
		}
	}
	return h[i].seq < h[j].seq
}
func (h updateHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *updateHeap) Push(x any)   { *h = append(*h, x.(queued)) }
func (h *updateHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
