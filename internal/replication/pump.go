package replication

import (
	"bytes"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"scads/internal/clock"
	"scads/internal/record"
)

// ApplyFunc delivers pre-versioned records to one node. The router's
// Apply method satisfies this.
type ApplyFunc func(namespace, nodeID string, recs []record.Record) error

// Stats summarise pump activity.
type Stats struct {
	Enqueued   int64
	Delivered  int64
	Violations int64 // delivered after their deadline
	Failures   int64 // delivery attempts that errored
	Dropped    int64 // gave up after MaxAttempts
	Pending    int
}

// Pump drains the update queue, delivering each update to its target
// replica. It can run as a background goroutine pool (Run) or be
// driven synchronously by a simulation loop (Drain).
type Pump struct {
	queue   *Queue
	apply   ApplyFunc
	clk     clock.Clock
	tracker *Tracker

	// MaxAttempts bounds redelivery of a failing update. Default 5.
	MaxAttempts int
	// RetryBackoff delays requeued updates' deadlines by this much so
	// a dead target does not monopolise the queue head. Default 100ms.
	RetryBackoff time.Duration

	enqueued   atomic.Int64
	delivered  atomic.Int64
	violations atomic.Int64
	failures   atomic.Int64
	dropped    atomic.Int64

	mu          sync.Mutex
	parked      []parkedUpdate // failed deliveries awaiting retry
	violationNS map[string]int64
	inflight    map[int64]Update // popped, delivery in progress
	inflightSeq int64
	droppedBy   map[string]int64 // per-target gave-up deliveries
	stopped     bool
	wg          sync.WaitGroup
	stopCh      chan struct{}
}

type parkedUpdate struct {
	u       Update
	retryAt time.Time
}

// NewPump returns a pump draining queue through apply.
func NewPump(queue *Queue, apply ApplyFunc, clk clock.Clock) *Pump {
	return &Pump{
		queue:        queue,
		apply:        apply,
		clk:          clk,
		tracker:      NewTracker(clk),
		MaxAttempts:  5,
		RetryBackoff: 100 * time.Millisecond,
		violationNS:  make(map[string]int64),
		inflight:     make(map[int64]Update),
		droppedBy:    make(map[string]int64),
		stopCh:       make(chan struct{}),
	}
}

// Tracker exposes the pump's staleness tracker.
func (p *Pump) Tracker() *Tracker { return p.tracker }

// Queue exposes the pump's queue (for metrics and the director).
func (p *Pump) Queue() *Queue { return p.queue }

// Enqueue schedules rec for delivery to each target with the given
// staleness bound. The write was accepted now; every target must see
// it by now+bound.
func (p *Pump) Enqueue(namespace string, rec record.Record, targets []string, bound time.Duration) {
	now := p.clk.Now()
	deadline := now.Add(bound)
	for _, target := range targets {
		u := Update{
			Namespace:  namespace,
			Rec:        rec,
			Target:     target,
			Deadline:   deadline,
			EnqueuedAt: now,
		}
		p.queue.Push(u)
		p.tracker.pending(namespace, target, u.EnqueuedAt)
		p.enqueued.Add(1)
	}
}

// Drain synchronously processes up to maxOps updates and returns how
// many it attempted. Simulation loops call this once per tick with the
// tick's delivery budget, which models the replication bandwidth of
// the cluster.
func (p *Pump) Drain(maxOps int) int {
	p.unparkReady()
	n := 0
	for n < maxOps {
		u, id, ok := p.popTracked()
		if !ok {
			return n
		}
		p.deliver(u, id)
		n++
	}
	return n
}

// popTracked pops the next update while registering it as in flight,
// atomically with respect to Rebind: under p.mu every pending update
// is in exactly one of queue, parked, or inflight, so a flip-time
// Rebind scan can never miss one mid-transition.
func (p *Pump) popTracked() (Update, int64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	u, ok := p.queue.Pop()
	if !ok {
		return Update{}, 0, false
	}
	p.inflightSeq++
	p.inflight[p.inflightSeq] = u
	return u, p.inflightSeq, true
}

// unparkReady moves parked retries whose backoff has elapsed back into
// the queue. The queue push happens under p.mu so the update is never
// invisible to a concurrent Rebind scan.
func (p *Pump) unparkReady() {
	now := p.clk.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	var still []parkedUpdate
	for _, pu := range p.parked {
		if pu.retryAt.After(now) {
			still = append(still, pu)
		} else {
			p.queue.Push(pu.u)
		}
	}
	p.parked = still
}

// Run starts workers background goroutines that drain the queue until
// Stop is called. Intended for real (non-simulated) deployments.
func (p *Pump) Run(workers int) {
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case <-p.stopCh:
					return
				default:
				}
				p.unparkReady()
				u, id, ok := p.popTracked()
				if !ok {
					select {
					case <-p.stopCh:
						return
					case <-p.clk.After(5 * time.Millisecond):
					}
					continue
				}
				p.deliver(u, id)
			}
		}()
	}
}

// Stop terminates Run workers and waits for them.
func (p *Pump) Stop() {
	p.mu.Lock()
	if !p.stopped {
		p.stopped = true
		close(p.stopCh)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// deliver attempts one update; id is its inflight-registry token from
// popTracked. The post-delivery bookkeeping (deregister, park, drop)
// happens under p.mu in one step, so the update transitions atomically
// between the states a Rebind scan observes.
func (p *Pump) deliver(u Update, id int64) {
	u.Attempts++
	err := p.apply(u.Namespace, u.Target, []record.Record{u.Rec})
	if err != nil {
		p.failures.Add(1)
		p.mu.Lock()
		delete(p.inflight, id)
		if u.Attempts >= p.MaxAttempts {
			p.dropped.Add(1)
			p.droppedBy[u.Target]++
			p.mu.Unlock()
			p.tracker.done(u.Namespace, u.Target, u.EnqueuedAt)
			return
		}
		// Park the update until its backoff elapses so a dead target
		// cannot monopolise the queue head and starve deliverable
		// updates.
		backoff := p.RetryBackoff * time.Duration(u.Attempts)
		p.parked = append(p.parked, parkedUpdate{u: u, retryAt: p.clk.Now().Add(backoff)})
		p.mu.Unlock()
		return
	}
	p.delivered.Add(1)
	p.mu.Lock()
	delete(p.inflight, id)
	if p.clk.Now().After(u.Deadline) {
		p.violations.Add(1)
		p.violationNS[u.Namespace]++
	}
	p.mu.Unlock()
	p.tracker.done(u.Namespace, u.Target, u.EnqueuedAt)
}

// DroppedTo reports how many deliveries to node the pump has given up
// on (MaxAttempts exhausted). The repair manager samples this at a
// node's down transition and compares on return: an unchanged counter
// means every update that accumulated while the node was away is still
// queued and will converge, so the replica can rejoin as-is; a higher
// counter means it is irrecoverably stale and must be demoted and
// re-replicated through the migration protocol.
func (p *Pump) DroppedTo(node string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.droppedBy[node]
}

// Rebind clones every pending update for a key in [start, end) of the
// namespace to each of the added replicas. The migration manager calls
// this (through the coordinator's OnFlip hook) after flipping routing
// and before lifting the donor's write fence: anything the fenced
// drain could not have shipped — updates still queued, parked, or in
// flight at the coordinator — is duplicated to the replicas that just
// caught up, so a range's new members can never permanently miss a
// write that was acknowledged before the handoff. Duplicate deliveries
// are harmless (applies are last-write-wins by version).
func (p *Pump) Rebind(namespace string, start, end []byte, added []string) int {
	if len(added) == 0 {
		return 0
	}
	inRange := func(u Update) bool {
		if u.Namespace != namespace {
			return false
		}
		if start != nil && bytes.Compare(u.Rec.Key, start) < 0 {
			return false
		}
		if end != nil && bytes.Compare(u.Rec.Key, end) >= 0 {
			return false
		}
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var matches []Update
	seen := make(map[string]bool) // key \x00 version — dedupe multi-target enqueues
	collect := func(u Update) {
		if !inRange(u) {
			return
		}
		k := string(u.Rec.Key) + "\x00" + strconv.FormatUint(u.Rec.Version, 36)
		if seen[k] {
			return
		}
		seen[k] = true
		matches = append(matches, u)
	}
	p.queue.ForEach(collect)
	for _, pu := range p.parked {
		collect(pu.u)
	}
	for _, u := range p.inflight {
		collect(u)
	}
	n := 0
	for _, u := range matches {
		for _, target := range added {
			if u.Target == target {
				continue
			}
			clone := u
			clone.Target = target
			clone.Attempts = 0
			p.queue.Push(clone)
			p.tracker.pending(clone.Namespace, target, clone.EnqueuedAt)
			p.enqueued.Add(1)
			n++
		}
	}
	return n
}

// AtRisk counts undelivered updates — queued or parked awaiting a
// retry — whose deadline falls within margin of now. This is the
// §3.3.2 "in danger of getting behind schedule" signal the director
// consumes; parked updates count because a severed replica link parks
// every delivery while its deadlines keep approaching.
func (p *Pump) AtRisk(margin time.Duration) int {
	now := p.clk.Now()
	n := p.queue.AtRisk(now, margin)
	limit := now.Add(margin)
	p.mu.Lock()
	for _, pu := range p.parked {
		if !pu.u.Deadline.After(limit) {
			n++
		}
	}
	p.mu.Unlock()
	return n
}

// ViolationsFor reports deadline violations for one namespace — the
// per-staleness-class measurement the E8 experiment compares across
// queue disciplines.
func (p *Pump) ViolationsFor(namespace string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.violationNS[namespace]
}

// Stats returns a snapshot of pump counters. Pending includes parked
// retries and deliveries in flight.
func (p *Pump) Stats() Stats {
	p.mu.Lock()
	parked := len(p.parked) + len(p.inflight)
	p.mu.Unlock()
	return Stats{
		Enqueued:   p.enqueued.Load(),
		Delivered:  p.delivered.Load(),
		Violations: p.violations.Load(),
		Failures:   p.failures.Load(),
		Dropped:    p.dropped.Load(),
		Pending:    p.queue.Len() + parked,
	}
}
