package replication

import (
	"sync"
	"sync/atomic"
	"time"

	"scads/internal/clock"
	"scads/internal/record"
)

// ApplyFunc delivers pre-versioned records to one node. The router's
// Apply method satisfies this.
type ApplyFunc func(namespace, nodeID string, recs []record.Record) error

// Stats summarise pump activity.
type Stats struct {
	Enqueued   int64
	Delivered  int64
	Violations int64 // delivered after their deadline
	Failures   int64 // delivery attempts that errored
	Dropped    int64 // gave up after MaxAttempts
	Pending    int
}

// Pump drains the update queue, delivering each update to its target
// replica. It can run as a background goroutine pool (Run) or be
// driven synchronously by a simulation loop (Drain).
type Pump struct {
	queue   *Queue
	apply   ApplyFunc
	clk     clock.Clock
	tracker *Tracker

	// MaxAttempts bounds redelivery of a failing update. Default 5.
	MaxAttempts int
	// RetryBackoff delays requeued updates' deadlines by this much so
	// a dead target does not monopolise the queue head. Default 100ms.
	RetryBackoff time.Duration

	enqueued   atomic.Int64
	delivered  atomic.Int64
	violations atomic.Int64
	failures   atomic.Int64
	dropped    atomic.Int64

	mu          sync.Mutex
	parked      []parkedUpdate // failed deliveries awaiting retry
	violationNS map[string]int64
	stopped     bool
	wg          sync.WaitGroup
	stopCh      chan struct{}
}

type parkedUpdate struct {
	u       Update
	retryAt time.Time
}

// NewPump returns a pump draining queue through apply.
func NewPump(queue *Queue, apply ApplyFunc, clk clock.Clock) *Pump {
	return &Pump{
		queue:        queue,
		apply:        apply,
		clk:          clk,
		tracker:      NewTracker(clk),
		MaxAttempts:  5,
		RetryBackoff: 100 * time.Millisecond,
		violationNS:  make(map[string]int64),
		stopCh:       make(chan struct{}),
	}
}

// Tracker exposes the pump's staleness tracker.
func (p *Pump) Tracker() *Tracker { return p.tracker }

// Queue exposes the pump's queue (for metrics and the director).
func (p *Pump) Queue() *Queue { return p.queue }

// Enqueue schedules rec for delivery to each target with the given
// staleness bound. The write was accepted now; every target must see
// it by now+bound.
func (p *Pump) Enqueue(namespace string, rec record.Record, targets []string, bound time.Duration) {
	now := p.clk.Now()
	deadline := now.Add(bound)
	for _, target := range targets {
		u := Update{
			Namespace:  namespace,
			Rec:        rec,
			Target:     target,
			Deadline:   deadline,
			EnqueuedAt: now,
		}
		p.queue.Push(u)
		p.tracker.pending(namespace, target, u.EnqueuedAt)
		p.enqueued.Add(1)
	}
}

// Drain synchronously processes up to maxOps updates and returns how
// many it attempted. Simulation loops call this once per tick with the
// tick's delivery budget, which models the replication bandwidth of
// the cluster.
func (p *Pump) Drain(maxOps int) int {
	p.unparkReady()
	n := 0
	for n < maxOps {
		u, ok := p.queue.Pop()
		if !ok {
			return n
		}
		p.deliver(u)
		n++
	}
	return n
}

// unparkReady moves parked retries whose backoff has elapsed back into
// the queue.
func (p *Pump) unparkReady() {
	now := p.clk.Now()
	p.mu.Lock()
	var still []parkedUpdate
	var ready []Update
	for _, pu := range p.parked {
		if pu.retryAt.After(now) {
			still = append(still, pu)
		} else {
			ready = append(ready, pu.u)
		}
	}
	p.parked = still
	p.mu.Unlock()
	for _, u := range ready {
		p.queue.Push(u)
	}
}

// Run starts workers background goroutines that drain the queue until
// Stop is called. Intended for real (non-simulated) deployments.
func (p *Pump) Run(workers int) {
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case <-p.stopCh:
					return
				default:
				}
				p.unparkReady()
				u, ok := p.queue.Pop()
				if !ok {
					select {
					case <-p.stopCh:
						return
					case <-p.clk.After(5 * time.Millisecond):
					}
					continue
				}
				p.deliver(u)
			}
		}()
	}
}

// Stop terminates Run workers and waits for them.
func (p *Pump) Stop() {
	p.mu.Lock()
	if !p.stopped {
		p.stopped = true
		close(p.stopCh)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Pump) deliver(u Update) {
	u.Attempts++
	err := p.apply(u.Namespace, u.Target, []record.Record{u.Rec})
	if err != nil {
		p.failures.Add(1)
		if u.Attempts >= p.MaxAttempts {
			p.dropped.Add(1)
			p.tracker.done(u.Namespace, u.Target, u.EnqueuedAt)
			return
		}
		// Park the update until its backoff elapses so a dead target
		// cannot monopolise the queue head and starve deliverable
		// updates.
		backoff := p.RetryBackoff * time.Duration(u.Attempts)
		p.mu.Lock()
		p.parked = append(p.parked, parkedUpdate{u: u, retryAt: p.clk.Now().Add(backoff)})
		p.mu.Unlock()
		return
	}
	p.delivered.Add(1)
	if p.clk.Now().After(u.Deadline) {
		p.violations.Add(1)
		p.mu.Lock()
		p.violationNS[u.Namespace]++
		p.mu.Unlock()
	}
	p.tracker.done(u.Namespace, u.Target, u.EnqueuedAt)
}

// AtRisk counts undelivered updates — queued or parked awaiting a
// retry — whose deadline falls within margin of now. This is the
// §3.3.2 "in danger of getting behind schedule" signal the director
// consumes; parked updates count because a severed replica link parks
// every delivery while its deadlines keep approaching.
func (p *Pump) AtRisk(margin time.Duration) int {
	now := p.clk.Now()
	n := p.queue.AtRisk(now, margin)
	limit := now.Add(margin)
	p.mu.Lock()
	for _, pu := range p.parked {
		if !pu.u.Deadline.After(limit) {
			n++
		}
	}
	p.mu.Unlock()
	return n
}

// ViolationsFor reports deadline violations for one namespace — the
// per-staleness-class measurement the E8 experiment compares across
// queue disciplines.
func (p *Pump) ViolationsFor(namespace string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.violationNS[namespace]
}

// Stats returns a snapshot of pump counters. Pending includes parked
// retries.
func (p *Pump) Stats() Stats {
	p.mu.Lock()
	parked := len(p.parked)
	p.mu.Unlock()
	return Stats{
		Enqueued:   p.enqueued.Load(),
		Delivered:  p.delivered.Load(),
		Violations: p.violations.Load(),
		Failures:   p.failures.Load(),
		Dropped:    p.dropped.Load(),
		Pending:    p.queue.Len() + parked,
	}
}
