package replication

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"scads/internal/clock"
	"scads/internal/record"
)

var t0 = time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)

func upd(ns, target string, deadline time.Time) Update {
	return Update{Namespace: ns, Target: target, Deadline: deadline, EnqueuedAt: t0,
		Rec: record.Record{Key: []byte("k"), Value: []byte("v"), Version: 1}}
}

func TestQueueDeadlineOrder(t *testing.T) {
	q := NewQueue(ByDeadline)
	q.Push(upd("ns", "a", t0.Add(3*time.Second)))
	q.Push(upd("ns", "b", t0.Add(1*time.Second)))
	q.Push(upd("ns", "c", t0.Add(2*time.Second)))

	var got []string
	for {
		u, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, u.Target)
	}
	if fmt.Sprint(got) != fmt.Sprint([]string{"b", "c", "a"}) {
		t.Fatalf("pop order = %v", got)
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	q := NewQueue(FIFO)
	// Deadlines are inverted; FIFO must ignore them.
	q.Push(upd("ns", "a", t0.Add(3*time.Second)))
	q.Push(upd("ns", "b", t0.Add(1*time.Second)))
	q.Push(upd("ns", "c", t0.Add(2*time.Second)))
	var got []string
	for {
		u, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, u.Target)
	}
	if fmt.Sprint(got) != fmt.Sprint([]string{"a", "b", "c"}) {
		t.Fatalf("FIFO pop order = %v", got)
	}
}

func TestQueueTiesAreFIFO(t *testing.T) {
	q := NewQueue(ByDeadline)
	d := t0.Add(time.Second)
	for i := 0; i < 5; i++ {
		q.Push(upd("ns", fmt.Sprintf("t%d", i), d))
	}
	for i := 0; i < 5; i++ {
		u, _ := q.Pop()
		if u.Target != fmt.Sprintf("t%d", i) {
			t.Fatalf("tie order broken at %d: %s", i, u.Target)
		}
	}
}

func TestQueuePeekAndLen(t *testing.T) {
	q := NewQueue(ByDeadline)
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue")
	}
	q.Push(upd("ns", "x", t0.Add(time.Second)))
	q.Push(upd("ns", "y", t0.Add(time.Minute)))
	if u, ok := q.Peek(); !ok || u.Target != "x" {
		t.Fatalf("Peek = %+v %v", u, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestQueueAtRiskAndOverdue(t *testing.T) {
	q := NewQueue(ByDeadline)
	q.Push(upd("ns", "overdue", t0.Add(-time.Second)))
	q.Push(upd("ns", "soon", t0.Add(2*time.Second)))
	q.Push(upd("ns", "later", t0.Add(time.Hour)))
	if got := q.Overdue(t0); got != 1 {
		t.Fatalf("Overdue = %d", got)
	}
	if got := q.AtRisk(t0, 5*time.Second); got != 2 {
		t.Fatalf("AtRisk = %d", got)
	}
}

// applySink records applied records, optionally failing some targets.
type applySink struct {
	mu      sync.Mutex
	applied map[string][]record.Record // target -> records
	fail    map[string]bool
	calls   int
}

func newApplySink() *applySink {
	return &applySink{applied: make(map[string][]record.Record), fail: make(map[string]bool)}
}

func (s *applySink) apply(ns, node string, recs []record.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.fail[node] {
		return errors.New("injected failure")
	}
	s.applied[node] = append(s.applied[node], recs...)
	return nil
}

func (s *applySink) count(node string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.applied[node])
}

func TestPumpDeliversToAllTargets(t *testing.T) {
	vc := clock.NewVirtual(t0)
	sink := newApplySink()
	p := NewPump(NewQueue(ByDeadline), sink.apply, vc)

	rec := record.Record{Key: []byte("k"), Value: []byte("v"), Version: 1}
	p.Enqueue("ns", rec, []string{"n2", "n3"}, 10*time.Second)
	if n := p.Drain(10); n != 2 {
		t.Fatalf("Drain processed %d, want 2", n)
	}
	if sink.count("n2") != 1 || sink.count("n3") != 1 {
		t.Fatalf("targets got %d/%d records", sink.count("n2"), sink.count("n3"))
	}
	st := p.Stats()
	if st.Enqueued != 2 || st.Delivered != 2 || st.Violations != 0 || st.Pending != 0 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestPumpCountsViolations(t *testing.T) {
	vc := clock.NewVirtual(t0)
	sink := newApplySink()
	p := NewPump(NewQueue(ByDeadline), sink.apply, vc)
	p.Enqueue("ns", record.Record{Key: []byte("k"), Version: 1}, []string{"n2"}, time.Second)
	vc.Advance(5 * time.Second) // miss the deadline before draining
	p.Drain(1)
	if st := p.Stats(); st.Violations != 1 {
		t.Fatalf("Violations = %d, want 1", st.Violations)
	}
}

func TestPumpRetriesAndDrops(t *testing.T) {
	vc := clock.NewVirtual(t0)
	sink := newApplySink()
	sink.fail["dead"] = true
	p := NewPump(NewQueue(ByDeadline), sink.apply, vc)
	p.MaxAttempts = 3
	p.Enqueue("ns", record.Record{Key: []byte("k"), Version: 1}, []string{"dead"}, time.Second)

	total := 0
	for i := 0; i < 10; i++ {
		total += p.Drain(10)
		vc.Advance(time.Second) // let retry backoffs elapse
	}
	if total != 3 {
		t.Fatalf("attempted %d deliveries, want MaxAttempts=3", total)
	}
	st := p.Stats()
	if st.Dropped != 1 || st.Failures != 3 || st.Delivered != 0 {
		t.Fatalf("Stats = %+v", st)
	}
	// Tracker must not leak: staleness returns to 0 after drop.
	if d := p.Tracker().Staleness("ns", "dead"); d != 0 {
		t.Fatalf("staleness after drop = %v", d)
	}
}

func TestPumpRetryDoesNotStarve(t *testing.T) {
	vc := clock.NewVirtual(t0)
	sink := newApplySink()
	sink.fail["dead"] = true
	p := NewPump(NewQueue(ByDeadline), sink.apply, vc)
	p.MaxAttempts = 100
	// The dead target's update has the tightest deadline.
	p.Enqueue("ns", record.Record{Key: []byte("k1"), Version: 1}, []string{"dead"}, time.Millisecond)
	p.Enqueue("ns", record.Record{Key: []byte("k2"), Version: 2}, []string{"live"}, time.Hour)
	// A couple of drain rounds must still deliver to the live target.
	p.Drain(4)
	if sink.count("live") != 1 {
		t.Fatal("live target starved by retrying dead target")
	}
}

func TestPumpDeadlineOrderUnderBudget(t *testing.T) {
	// With a tiny drain budget, tight-bound updates must be delivered
	// first — the paper's core argument for the priority queue.
	vc := clock.NewVirtual(t0)
	sink := newApplySink()
	p := NewPump(NewQueue(ByDeadline), sink.apply, vc)
	p.Enqueue("ns", record.Record{Key: []byte("loose"), Version: 1}, []string{"n"}, time.Hour)
	p.Enqueue("ns", record.Record{Key: []byte("tight"), Version: 2}, []string{"n"}, time.Second)
	p.Drain(1)
	sink.mu.Lock()
	first := string(sink.applied["n"][0].Key)
	sink.mu.Unlock()
	if first != "tight" {
		t.Fatalf("first delivered = %q, want tight-bound update", first)
	}
}

func TestTrackerStaleness(t *testing.T) {
	vc := clock.NewVirtual(t0)
	sink := newApplySink()
	p := NewPump(NewQueue(ByDeadline), sink.apply, vc)

	if d := p.Tracker().Staleness("ns", "n2"); d != 0 {
		t.Fatalf("initial staleness = %v", d)
	}
	p.Enqueue("ns", record.Record{Key: []byte("k"), Version: 1}, []string{"n2"}, time.Minute)
	vc.Advance(10 * time.Second)
	if d := p.Tracker().Staleness("ns", "n2"); d != 10*time.Second {
		t.Fatalf("staleness = %v, want 10s", d)
	}
	if d := p.Tracker().MaxStaleness("ns"); d != 10*time.Second {
		t.Fatalf("MaxStaleness = %v", d)
	}
	p.Drain(1)
	if d := p.Tracker().Staleness("ns", "n2"); d != 0 {
		t.Fatalf("staleness after delivery = %v", d)
	}
}

func TestTrackerOldestPendingWins(t *testing.T) {
	vc := clock.NewVirtual(t0)
	sink := newApplySink()
	q := NewQueue(FIFO) // control delivery order precisely
	p := NewPump(q, sink.apply, vc)

	p.Enqueue("ns", record.Record{Key: []byte("old"), Version: 1}, []string{"n"}, time.Hour)
	vc.Advance(30 * time.Second)
	p.Enqueue("ns", record.Record{Key: []byte("new"), Version: 2}, []string{"n"}, time.Hour)

	if d := p.Tracker().Staleness("ns", "n"); d != 30*time.Second {
		t.Fatalf("staleness = %v, want 30s (age of oldest)", d)
	}
	p.Drain(1) // delivers "old"
	if d := p.Tracker().Staleness("ns", "n"); d != 0 {
		t.Fatalf("staleness = %v, want 0 (only newest pending, enqueued now)", d)
	}
}

func TestPumpRunWorkers(t *testing.T) {
	rc := clock.NewReal()
	sink := newApplySink()
	p := NewPump(NewQueue(ByDeadline), sink.apply, rc)
	p.Run(2)
	for i := 0; i < 50; i++ {
		p.Enqueue("ns", record.Record{Key: []byte(fmt.Sprintf("k%d", i)), Version: uint64(i + 1)}, []string{"n"}, time.Minute)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.count("n") < 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	if sink.count("n") != 50 {
		t.Fatalf("workers delivered %d/50", sink.count("n"))
	}
}

// Property: with a deadline queue, pops come out in non-decreasing
// deadline order.
func TestQuickDeadlineOrdering(t *testing.T) {
	f := func(offsets []int16) bool {
		q := NewQueue(ByDeadline)
		for _, off := range offsets {
			q.Push(upd("ns", "t", t0.Add(time.Duration(off)*time.Second)))
		}
		var prev time.Time
		first := true
		for {
			u, ok := q.Pop()
			if !ok {
				break
			}
			if !first && u.Deadline.Before(prev) {
				return false
			}
			prev, first = u.Deadline, false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: tracker staleness is zero exactly when all enqueued
// updates have been delivered.
func TestQuickTrackerBalance(t *testing.T) {
	f := func(nTargets uint8, bounds []uint8) bool {
		vc := clock.NewVirtual(t0)
		sink := newApplySink()
		p := NewPump(NewQueue(ByDeadline), sink.apply, vc)
		targets := []string{"a", "b", "c"}[:nTargets%3+1]
		for i, b := range bounds {
			p.Enqueue("ns", record.Record{Key: []byte{byte(i)}, Version: uint64(i + 1)},
				targets, time.Duration(b)*time.Second)
		}
		vc.Advance(time.Second)
		if len(bounds) > 0 && p.Tracker().MaxStaleness("ns") == 0 {
			return false
		}
		for p.Drain(100) > 0 {
		}
		return p.Tracker().MaxStaleness("ns") == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	q := NewQueue(ByDeadline)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(upd("ns", "t", t0.Add(time.Duration(i%1000)*time.Millisecond)))
		if i%2 == 1 {
			q.Pop()
		}
	}
}

func BenchmarkPumpDrain(b *testing.B) {
	vc := clock.NewVirtual(t0)
	sink := newApplySink()
	p := NewPump(NewQueue(ByDeadline), sink.apply, vc)
	rec := record.Record{Key: []byte("k"), Value: []byte("v"), Version: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Enqueue("ns", rec, []string{"n"}, time.Minute)
		p.Drain(1)
	}
}

func TestPumpAtRiskIncludesParked(t *testing.T) {
	vc := clock.NewVirtual(t0)
	q := NewQueue(ByDeadline)
	fail := func(ns, node string, recs []record.Record) error {
		return errors.New("severed link")
	}
	p := NewPump(q, fail, vc)
	p.Enqueue("ns", record.Record{Key: []byte("k"), Version: 1}, []string{"nodeB"}, 5*time.Second)
	p.Drain(10) // delivery fails, update parks for retry
	if got := q.AtRisk(vc.Now(), 10*time.Second); got != 0 {
		t.Fatalf("queue AtRisk = %d, want 0 (update is parked, not queued)", got)
	}
	if got := p.AtRisk(10 * time.Second); got != 1 {
		t.Fatalf("pump AtRisk = %d, want 1 (parked update within margin)", got)
	}
	// Outside the margin it is not yet at risk.
	if got := p.AtRisk(time.Second); got != 0 {
		t.Fatalf("pump AtRisk(1s) = %d, want 0", got)
	}
}

// TestRebindClonesPendingToAddedReplicas: a flip-time Rebind must
// duplicate every pending in-range update — queued or parked — to the
// replicas a migration just added, deduplicating multi-target
// enqueues, and leave out-of-range updates alone.
func TestRebindClonesPendingToAddedReplicas(t *testing.T) {
	vc := clock.NewVirtual(t0)
	var mu sync.Mutex
	delivered := map[string][]string{} // target -> keys
	failing := map[string]bool{}
	apply := func(ns, node string, recs []record.Record) error {
		mu.Lock()
		defer mu.Unlock()
		if failing[node] {
			return errors.New("down")
		}
		for _, r := range recs {
			delivered[node] = append(delivered[node], string(r.Key))
		}
		return nil
	}
	p := NewPump(NewQueue(ByDeadline), apply, vc)

	rec := func(key string, ver uint64) record.Record {
		return record.Record{Key: []byte(key), Value: []byte("v"), Version: ver}
	}
	// Multi-target enqueue of the same record: must clone once, not
	// once per original target.
	p.Enqueue("ns", rec("b", 1), []string{"n1", "n2"}, time.Minute)
	// Out of [a, c) range: not cloned.
	p.Enqueue("ns", rec("x", 2), []string{"n1"}, time.Minute)
	// Wrong namespace: not cloned.
	p.Enqueue("other", rec("b", 3), []string{"n1"}, time.Minute)
	// Parked update (delivery fails once): still visible to Rebind.
	mu.Lock()
	failing["n2"] = true
	mu.Unlock()
	p.Enqueue("ns", rec("a", 4), []string{"n2"}, time.Minute)
	p.Drain(10) // delivers the others; parks a/4 for n2
	mu.Lock()
	failing["n2"] = false
	mu.Unlock()

	if n := p.Rebind("ns", []byte("a"), []byte("c"), []string{"n3"}); n != 2 {
		t.Fatalf("Rebind cloned %d updates, want 2 (b/1 deduped + parked a/4)", n)
	}
	vc.Advance(time.Second) // backoff elapses
	p.Drain(10)
	mu.Lock()
	defer mu.Unlock()
	got := map[string]bool{}
	for _, k := range delivered["n3"] {
		got[k] = true
	}
	if len(delivered["n3"]) != 2 || !got["a"] || !got["b"] {
		t.Fatalf("n3 deliveries = %v, want exactly {a, b}", delivered["n3"])
	}
	if p.Stats().Pending != 0 {
		t.Fatalf("pending = %d after drain", p.Stats().Pending)
	}
}

// TestRebindSeesInflightUpdates: an update popped and mid-delivery
// during the Rebind scan is still cloned — the pump registers it as in
// flight before releasing the queue.
func TestRebindSeesInflightUpdates(t *testing.T) {
	vc := clock.NewVirtual(t0)
	entered := make(chan struct{})
	release := make(chan struct{})
	var mu sync.Mutex
	delivered := map[string]int{}
	apply := func(ns, node string, recs []record.Record) error {
		if node == "n1" {
			close(entered)
			<-release
		}
		mu.Lock()
		delivered[node]++
		mu.Unlock()
		return nil
	}
	p := NewPump(NewQueue(ByDeadline), apply, vc)
	p.Enqueue("ns", record.Record{Key: []byte("k"), Version: 1}, []string{"n1"}, time.Minute)
	done := make(chan struct{})
	go func() {
		p.Drain(1)
		close(done)
	}()
	<-entered // the update is in flight, the queue is empty
	if n := p.Rebind("ns", nil, nil, []string{"n3"}); n != 1 {
		t.Fatalf("Rebind cloned %d, want the in-flight update", n)
	}
	close(release)
	<-done
	p.Drain(1)
	mu.Lock()
	defer mu.Unlock()
	if delivered["n3"] != 1 {
		t.Fatalf("n3 deliveries = %d", delivered["n3"])
	}
}

// TestDroppedToCountsAbandonedDeliveries: the per-target drop counter
// is the repair manager's staleness criterion for returned nodes.
func TestDroppedToCountsAbandonedDeliveries(t *testing.T) {
	vc := clock.NewVirtual(t0)
	apply := func(ns, node string, recs []record.Record) error { return errors.New("down") }
	p := NewPump(NewQueue(ByDeadline), apply, vc)
	p.MaxAttempts = 1
	p.Enqueue("ns", record.Record{Key: []byte("k"), Version: 1}, []string{"n1", "n2"}, time.Minute)
	p.Drain(10)
	if got := p.DroppedTo("n1"); got != 1 {
		t.Fatalf("DroppedTo(n1) = %d", got)
	}
	if got := p.DroppedTo("n2"); got != 1 {
		t.Fatalf("DroppedTo(n2) = %d", got)
	}
	if got := p.DroppedTo("n3"); got != 0 {
		t.Fatalf("DroppedTo(n3) = %d", got)
	}
}
