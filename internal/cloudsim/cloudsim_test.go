package cloudsim

import (
	"math"
	"testing"
	"time"

	"scads/internal/clock"
)

var t0 = time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)

func TestInstanceLifecycle(t *testing.T) {
	vc := clock.NewVirtual(t0)
	c := New(vc, Options{BootDelay: 90 * time.Second})

	granted := c.Request(3)
	if len(granted) != 3 {
		t.Fatalf("granted %d", len(granted))
	}
	if b, r, s := c.Counts(); b != 3 || r != 0 || s != 0 {
		t.Fatalf("counts = %d %d %d", b, r, s)
	}
	// Nothing ready before boot delay.
	vc.Advance(60 * time.Second)
	if ready := c.Poll(); len(ready) != 0 {
		t.Fatalf("ready early: %v", ready)
	}
	vc.Advance(31 * time.Second)
	ready := c.Poll()
	if len(ready) != 3 {
		t.Fatalf("ready = %v", ready)
	}
	if len(c.Running()) != 3 || len(c.Booting()) != 0 {
		t.Fatal("state transition failed")
	}

	c.Terminate(ready[0])
	inst, ok := c.Get(ready[0])
	if !ok || inst.State != StateTerminated {
		t.Fatalf("terminated instance = %+v", inst)
	}
	// Double terminate is a no-op.
	c.Terminate(ready[0])
	c.Fail(ready[1])
	if inst, _ := c.Get(ready[1]); inst.State != StateFailed {
		t.Fatal("Fail did not mark instance")
	}
	// Fail after terminate is a no-op.
	c.Fail(ready[0])
	if inst, _ := c.Get(ready[0]); inst.State != StateTerminated {
		t.Fatal("Fail overwrote terminated state")
	}
}

func TestMaxInstancesCap(t *testing.T) {
	vc := clock.NewVirtual(t0)
	c := New(vc, Options{MaxInstances: 5})
	if got := len(c.Request(10)); got != 5 {
		t.Fatalf("granted %d with cap 5", got)
	}
	if got := len(c.Request(1)); got != 0 {
		t.Fatalf("granted %d above cap", got)
	}
	// Terminating frees capacity.
	c.Poll()
	ids := c.Booting()
	c.Terminate(ids[0])
	if got := len(c.Request(2)); got != 1 {
		t.Fatalf("granted %d after freeing 1", got)
	}
}

func TestBillingGranularity(t *testing.T) {
	vc := clock.NewVirtual(t0)
	c := New(vc, Options{BootDelay: time.Second, PricePerHour: 0.10, BillingGranularity: time.Hour})
	insts := c.Request(1)
	vc.Advance(90 * time.Minute) // 1.5h -> billed 2h
	c.Terminate(insts[0].ID)
	if got := c.MachineHours(); got != 2 {
		t.Fatalf("MachineHours = %v, want 2 (ceil to hour)", got)
	}
	if got := c.CostUSD(); math.Abs(got-0.20) > 1e-9 {
		t.Fatalf("CostUSD = %v", got)
	}
}

func TestFineGrainedBillingSavesMoney(t *testing.T) {
	// The paper's §1 argument: finer billing granularity means
	// scale-down actually saves money.
	run := func(gran time.Duration) float64 {
		vc := clock.NewVirtual(t0)
		c := New(vc, Options{BillingGranularity: gran, PricePerHour: 0.10})
		insts := c.Request(1)
		vc.Advance(61 * time.Minute)
		c.Terminate(insts[0].ID)
		return c.CostUSD()
	}
	hourly := run(time.Hour)
	perMinute := run(time.Minute)
	if perMinute >= hourly {
		t.Fatalf("per-minute billing (%v) not cheaper than hourly (%v)", perMinute, hourly)
	}
}

func TestRunningInstancesAccrue(t *testing.T) {
	vc := clock.NewVirtual(t0)
	c := New(vc, Options{BillingGranularity: time.Minute})
	c.Request(2)
	vc.Advance(30 * time.Minute)
	if got := c.MachineHours(); math.Abs(got-1.0) > 1e-9 { // 2 × 0.5h
		t.Fatalf("MachineHours = %v, want 1.0", got)
	}
}

func TestServiceModelLatencyCurve(t *testing.T) {
	sm := ServiceModel{CapacityPerServer: 1000, Base: 5 * time.Millisecond, K: 20 * time.Millisecond}
	low := sm.Latency(100, 1)  // 10% utilisation
	mid := sm.Latency(500, 1)  // 50%
	high := sm.Latency(900, 1) // 90%
	if !(low < mid && mid < high) {
		t.Fatalf("latency curve not increasing: %v %v %v", low, mid, high)
	}
	// Saturation: large but finite.
	sat := sm.Latency(2000, 1)
	if sat < time.Second {
		t.Fatalf("saturated latency = %v", sat)
	}
	// More servers -> lower latency at the same aggregate rate.
	if sm.Latency(900, 2) >= high {
		t.Fatal("adding a server did not reduce latency")
	}
	// Zero servers.
	if sm.Latency(1, 0) < time.Second {
		t.Fatal("zero servers should saturate")
	}
}

func TestServiceModelSuccessRate(t *testing.T) {
	sm := ServiceModel{CapacityPerServer: 1000}
	if sm.SuccessRate(500, 1) != 100 {
		t.Fatal("under capacity should be 100%")
	}
	if got := sm.SuccessRate(2000, 1); got != 50 {
		t.Fatalf("2x overload success = %v, want 50", got)
	}
	if sm.SuccessRate(1, 0) != 0 {
		t.Fatal("zero servers should be 0%")
	}
}

func TestInstanceStateString(t *testing.T) {
	for s, want := range map[InstanceState]string{
		StateBooting: "booting", StateRunning: "running",
		StateTerminated: "terminated", StateFailed: "failed",
	} {
		if s.String() != want {
			t.Errorf("%v.String() = %q", s, s.String())
		}
	}
}
