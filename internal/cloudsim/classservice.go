package cloudsim

import (
	"sort"
	"time"
)

// ClassServiceModel is the per-class counterpart of ServiceModel: each
// request class carries its own service demand (server-seconds per
// op), so a read-heavy and a write-heavy mix at the same aggregate
// rate load the fleet differently. It is the synthetic telemetry
// source for autoscaling experiments that track per-class SLOs — the
// analytic ground truth the fleet model is supposed to recover.
//
// The queueing form matches ServiceModel: an M/M/1 server pool where
// latency = Base + (D̄/ (1-ρ)) with D̄ the mix's mean demand and
// ρ = Σ rate_c·D_c / servers. Saturated systems return a large finite
// latency and shed the excess load, mirroring ServiceModel's
// semantics so experiments can swap one for the other.
type ClassServiceModel struct {
	// Demand is the per-op server time in seconds for each class.
	Demand map[string]float64
	// Base is the idle service latency added on top of queueing.
	Base time.Duration
}

// Utilisation returns ρ for the given aggregate per-class rates spread
// over n servers.
func (s ClassServiceModel) Utilisation(classRates map[string]float64, servers int) float64 {
	if servers <= 0 {
		return 1
	}
	var work float64
	for _, c := range sortedClasses(classRates) {
		work += classRates[c] * s.Demand[c]
	}
	return work / float64(servers)
}

// Latency returns the SLA-percentile latency for the mix over n
// servers. Saturated systems (ρ ≥ 0.99) return a large finite value —
// requests time out rather than wait forever.
func (s ClassServiceModel) Latency(classRates map[string]float64, servers int) time.Duration {
	if servers <= 0 {
		return 10 * time.Second
	}
	rho := s.Utilisation(classRates, servers)
	if rho >= 0.99 {
		return 10 * time.Second
	}
	if rho < 0 {
		rho = 0
	}
	var rate, work float64
	for _, c := range sortedClasses(classRates) {
		r := classRates[c]
		rate += r
		work += r * s.Demand[c]
	}
	if rate <= 0 {
		return s.Base
	}
	mean := work / rate // D̄: mean per-op demand of the mix
	return s.Base + time.Duration(mean/(1-rho)*float64(time.Second))
}

// sortedClasses fixes the aggregation order: float sums over map
// iteration would differ in the low bits from run to run (map order
// is randomized, float addition is not associative), and this model
// feeds the e16 gate's bit-identical control metrics.
func sortedClasses(classRates map[string]float64) []string {
	classes := make([]string, 0, len(classRates))
	for c := range classRates {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	return classes
}

// SuccessRate returns the percentage of requests that succeed: 100%
// below saturation, shedding the excess above it (ρ > 1 → only 1/ρ of
// the offered load fits).
func (s ClassServiceModel) SuccessRate(classRates map[string]float64, servers int) float64 {
	if servers <= 0 {
		return 0
	}
	rho := s.Utilisation(classRates, servers)
	if rho <= 1 {
		return 100
	}
	return 100 / rho
}
