// Package cloudsim simulates the utility-computing substrate the paper
// builds on (§1, §2.1): an elastic pool of instances with realistic
// boot delay, per-machine-hour billing, capacity limits, and failure
// injection, all driven by a virtual clock. Every economics experiment
// (Animoto scale-up, diurnal scale-down) runs against this simulator
// with the identical director logic that would drive a real cloud API.
package cloudsim

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"scads/internal/clock"
)

// InstanceState is the lifecycle state of one simulated machine.
type InstanceState int

// Lifecycle: requested instances boot for BootDelay, then run until
// terminated (or failed).
const (
	StateBooting InstanceState = iota
	StateRunning
	StateTerminated
	StateFailed
)

// String implements fmt.Stringer.
func (s InstanceState) String() string {
	switch s {
	case StateBooting:
		return "booting"
	case StateRunning:
		return "running"
	case StateTerminated:
		return "terminated"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Instance is one simulated machine.
type Instance struct {
	ID          string
	State       InstanceState
	RequestedAt time.Time
	ReadyAt     time.Time // when boot completes
	StoppedAt   time.Time // termination or failure time
}

// Options configure the simulated cloud.
type Options struct {
	// BootDelay is how long an instance takes to become ready.
	// Default 90s (EC2-era m1 instances took one to several minutes).
	BootDelay time.Duration
	// PricePerHour is the cost of one machine-hour. Default $0.10
	// (2008 EC2 m1.small).
	PricePerHour float64
	// MaxInstances caps the pool (0 = unlimited).
	MaxInstances int
	// BillingGranularity rounds each instance's billed time up to a
	// multiple of this. Default one hour (EC2's 2008 model); the
	// paper's "hours to minutes" granularity is configurable.
	BillingGranularity time.Duration
}

func (o Options) withDefaults() Options {
	if o.BootDelay <= 0 {
		o.BootDelay = 90 * time.Second
	}
	if o.PricePerHour <= 0 {
		o.PricePerHour = 0.10
	}
	if o.BillingGranularity <= 0 {
		o.BillingGranularity = time.Hour
	}
	return o
}

// Cloud is the simulated provider. Safe for concurrent use.
type Cloud struct {
	clk  clock.Clock
	opts Options

	mu        sync.Mutex
	instances map[string]*Instance
	seq       int
}

// New returns a Cloud on the given clock.
func New(clk clock.Clock, opts Options) *Cloud {
	return &Cloud{clk: clk, opts: opts.withDefaults(), instances: make(map[string]*Instance)}
}

// Request asks for n new instances. It returns the instances actually
// granted (fewer than n when MaxInstances caps the pool).
func (c *Cloud) Request(n int) []*Instance {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clk.Now()
	var granted []*Instance
	for i := 0; i < n; i++ {
		if c.opts.MaxInstances > 0 && c.activeLocked() >= c.opts.MaxInstances {
			break
		}
		c.seq++
		inst := &Instance{
			ID:          fmt.Sprintf("i-%06d", c.seq),
			State:       StateBooting,
			RequestedAt: now,
			ReadyAt:     now.Add(c.opts.BootDelay),
		}
		c.instances[inst.ID] = inst
		granted = append(granted, inst)
	}
	return granted
}

// Poll transitions booting instances whose boot delay has elapsed to
// running, returning the newly running IDs (sorted).
func (c *Cloud) Poll() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clk.Now()
	var ready []string
	for _, inst := range c.instances {
		if inst.State == StateBooting && !inst.ReadyAt.After(now) {
			inst.State = StateRunning
			ready = append(ready, inst.ID)
		}
	}
	sort.Strings(ready)
	return ready
}

// Terminate stops an instance (no-op if already stopped).
func (c *Cloud) Terminate(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.instances[id]
	if !ok || inst.State == StateTerminated || inst.State == StateFailed {
		return
	}
	inst.State = StateTerminated
	inst.StoppedAt = c.clk.Now()
}

// Fail crashes an instance (failure injection for durability and
// availability experiments).
func (c *Cloud) Fail(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.instances[id]
	if !ok || inst.State == StateTerminated || inst.State == StateFailed {
		return
	}
	inst.State = StateFailed
	inst.StoppedAt = c.clk.Now()
}

// Get returns a copy of the instance.
func (c *Cloud) Get(id string) (Instance, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.instances[id]
	if !ok {
		return Instance{}, false
	}
	return *inst, true
}

// Running returns the IDs of running instances, sorted.
func (c *Cloud) Running() []string {
	return c.byState(StateRunning)
}

// Booting returns the IDs of booting instances, sorted.
func (c *Cloud) Booting() []string {
	return c.byState(StateBooting)
}

func (c *Cloud) byState(s InstanceState) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for id, inst := range c.instances {
		if inst.State == s {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Counts returns (booting, running, stopped) instance counts.
func (c *Cloud) Counts() (booting, running, stopped int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, inst := range c.instances {
		switch inst.State {
		case StateBooting:
			booting++
		case StateRunning:
			running++
		default:
			stopped++
		}
	}
	return
}

func (c *Cloud) activeLocked() int {
	n := 0
	for _, inst := range c.instances {
		if inst.State == StateBooting || inst.State == StateRunning {
			n++
		}
	}
	return n
}

// MachineHours returns total billed machine-hours so far: each
// instance's wall time from request to stop (or now), rounded up to
// the billing granularity.
func (c *Cloud) MachineHours() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clk.Now()
	var total time.Duration
	for _, inst := range c.instances {
		end := now
		if inst.State == StateTerminated || inst.State == StateFailed {
			end = inst.StoppedAt
		}
		d := end.Sub(inst.RequestedAt)
		if d < 0 {
			d = 0
		}
		g := c.opts.BillingGranularity
		billed := time.Duration(math.Ceil(float64(d)/float64(g))) * g
		total += billed
	}
	return total.Hours()
}

// CostUSD returns the total bill.
func (c *Cloud) CostUSD() float64 {
	return c.MachineHours() * c.opts.PricePerHour
}

// ServiceModel converts per-server load into latency/success — the
// synthetic service curve experiments use when they do not run a real
// storage cluster. Parameters follow the open queueing form latency =
// Base + K·ρ/(1-ρ).
type ServiceModel struct {
	// CapacityPerServer is the saturation rate of one server (req/s).
	CapacityPerServer float64
	// Base is the idle service latency.
	Base time.Duration
	// K scales the queueing term.
	K time.Duration
}

// Latency returns the SLA-percentile latency at the given aggregate
// rate over n servers. Saturated systems return a large finite value
// (requests time out rather than wait forever).
func (s ServiceModel) Latency(totalRate float64, servers int) time.Duration {
	if servers <= 0 {
		return 10 * time.Second
	}
	rho := totalRate / (s.CapacityPerServer * float64(servers))
	if rho >= 0.99 {
		return 10 * time.Second
	}
	if rho < 0 {
		rho = 0
	}
	return s.Base + time.Duration(float64(s.K)*rho/(1-rho))
}

// SuccessRate returns the fraction (in percent) of requests that
// succeed at the given load: 100% below saturation, degrading with
// overload as the excess is shed.
func (s ServiceModel) SuccessRate(totalRate float64, servers int) float64 {
	if servers <= 0 {
		return 0
	}
	capacity := s.CapacityPerServer * float64(servers)
	if totalRate <= capacity {
		return 100
	}
	return 100 * capacity / totalRate
}
