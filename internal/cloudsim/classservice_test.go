package cloudsim

import (
	"testing"
	"time"
)

func classModel() ClassServiceModel {
	return ClassServiceModel{
		Demand: map[string]float64{"read": 0.002, "write": 0.008},
		Base:   5 * time.Millisecond,
	}
}

func TestClassServiceModelMixMatters(t *testing.T) {
	s := classModel()
	// Same aggregate rate, heavier write mix → higher utilisation and
	// latency — the property the single-curve ServiceModel cannot see.
	readHeavy := map[string]float64{"read": 900, "write": 100}
	writeHeavy := map[string]float64{"read": 100, "write": 900}
	if ur, uw := s.Utilisation(readHeavy, 10), s.Utilisation(writeHeavy, 10); ur >= uw {
		t.Fatalf("write-heavy mix should load harder: read-heavy rho=%v write-heavy rho=%v", ur, uw)
	}
	if lr, lw := s.Latency(readHeavy, 10), s.Latency(writeHeavy, 10); lr >= lw {
		t.Fatalf("write-heavy mix should be slower: %v vs %v", lr, lw)
	}
}

func TestClassServiceModelClosedForm(t *testing.T) {
	s := classModel()
	// rho = (400·0.002 + 100·0.008) / 4 = 0.4; mean demand = 1.6/500 =
	// 0.0032; latency = base + 0.0032/(1-0.4).
	rates := map[string]float64{"read": 400, "write": 100}
	if rho := s.Utilisation(rates, 4); rho != 0.4 {
		t.Fatalf("rho = %v, want 0.4", rho)
	}
	queue := 0.0032 / 0.6
	want := 5*time.Millisecond + time.Duration(queue*float64(time.Second))
	if got := s.Latency(rates, 4); got != want {
		t.Fatalf("latency = %v, want %v", got, want)
	}
	if sr := s.SuccessRate(rates, 4); sr != 100 {
		t.Fatalf("below saturation success = %v, want 100", sr)
	}
}

func TestClassServiceModelSaturation(t *testing.T) {
	s := classModel()
	over := map[string]float64{"read": 1000} // 2 server-seconds/s of work
	if lat := s.Latency(over, 1); lat != 10*time.Second {
		t.Fatalf("saturated latency = %v, want 10s", lat)
	}
	if sr := s.SuccessRate(over, 1); sr != 50 {
		t.Fatalf("shed success at rho=2 = %v, want 50", sr)
	}
	if lat := s.Latency(over, 0); lat != 10*time.Second {
		t.Fatalf("zero servers latency = %v, want 10s", lat)
	}
	if sr := s.SuccessRate(over, 0); sr != 0 {
		t.Fatalf("zero servers success = %v, want 0", sr)
	}
}
