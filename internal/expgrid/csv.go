package expgrid

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Every CSV the grid emits is validated against a declared schema
// before the run is allowed to succeed: a harness that writes a
// malformed artifact has failed exactly as hard as an experiment that
// lost a write, because downstream analysis would silently misread
// the paper's numbers.

// ColumnKind is the value contract of one CSV column.
type ColumnKind int

const (
	// ColString is a non-empty free-form cell.
	ColString ColumnKind = iota
	// ColInt is a base-10 integer cell.
	ColInt
	// ColFloat is a finite float cell (NaN and ±Inf are malformed: a
	// mean of NaN means the aggregation itself is broken).
	ColFloat
)

// Column is one schema column.
type Column struct {
	Name string
	Kind ColumnKind
}

// Schema declares a CSV file's exact shape: header and per-column
// value contracts.
type Schema struct {
	Name    string
	Columns []Column
}

// RunsSchema is the long-format per-repeat file: one line per
// (row, repeat, metric) triple.
var RunsSchema = Schema{
	Name: "runs.csv",
	Columns: []Column{
		{"row", ColString},
		{"experiment", ColString},
		{"repeat", ColInt},
		{"seed", ColInt},
		{"metric", ColString},
		{"value", ColFloat},
	},
}

// GroupedSchema is the grouped summary file: one line per
// (row, metric) with mean/std/min/max over the row's repeats.
var GroupedSchema = Schema{
	Name: "summary_grouped.csv",
	Columns: []Column{
		{"row", ColString},
		{"experiment", ColString},
		{"repeats", ColInt},
		{"metric", ColString},
		{"mean", ColFloat},
		{"std", ColFloat},
		{"min", ColFloat},
		{"max", ColFloat},
	},
}

// Header returns the schema's header record.
func (s Schema) Header() []string {
	h := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		h[i] = c.Name
	}
	return h
}

// Validate reads an entire CSV stream and checks it against the
// schema: exact header, exact column count per record, and every cell
// honoring its column's kind. Errors carry the 1-based line number.
func (s Schema) Validate(r io.Reader) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // count checked per record for a precise error
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("%s: read header: %w", s.Name, err)
	}
	if !equalStrings(header, s.Header()) {
		return fmt.Errorf("%s: header %q does not match schema %q", s.Name, header, s.Header())
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: line %d: %w", s.Name, line+1, err)
		}
		line++
		if len(rec) != len(s.Columns) {
			return fmt.Errorf("%s: line %d: %d fields, schema has %d", s.Name, line, len(rec), len(s.Columns))
		}
		for i, c := range s.Columns {
			if err := validateCell(c.Kind, rec[i]); err != nil {
				return fmt.Errorf("%s: line %d: column %s: %w", s.Name, line, c.Name, err)
			}
		}
	}
}

func validateCell(kind ColumnKind, cell string) error {
	switch kind {
	case ColString:
		if cell == "" {
			return fmt.Errorf("empty cell")
		}
	case ColInt:
		if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
			return fmt.Errorf("%q is not an integer", cell)
		}
	case ColFloat:
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return fmt.Errorf("%q is not a float", cell)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%q is not finite", cell)
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// formatFloat renders a metric value for CSV cells: shortest
// round-trippable representation, so re-parsing reproduces the exact
// float and fixed-seed runs emit bit-identical files.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
