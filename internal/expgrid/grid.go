package expgrid

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// Row is one line of the experiment grid: run Experiment with Params
// overriding its declared defaults, Repeats independent times, with
// repeat r seeded Seed+r. ID names the row's artifacts (runs.csv
// rows, BENCH_<id>.json) and must be unique across the grid.
type Row struct {
	ID         string             `json:"id"`
	Experiment string             `json:"experiment"`
	Params     map[string]float64 `json:"params,omitempty"`
	Repeats    int                `json:"repeats"`
	Seed       int64              `json:"seed"`
	// Note is free-form documentation of why the row exists; it rides
	// into the markdown report.
	Note string `json:"note,omitempty"`
}

// Grid is the parsed, validated experiments.json.
type Grid struct {
	Rows []Row `json:"rows"`
}

// ParseGrid decodes and validates an experiments.json against the
// registry. Every defect is reported (joined), not just the first, so
// one CI failure shows the whole repair list: unknown experiments,
// overrides of undeclared parameters, non-positive repeat counts,
// duplicate or unusable row ids, and unknown JSON fields (a typoed
// knob must fail loudly, not silently run the default).
func ParseGrid(data []byte, reg *Registry) (*Grid, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("expgrid: parse grid: %w", err)
	}
	if len(g.Rows) == 0 {
		return nil, errors.New("expgrid: grid declares no rows")
	}
	var errs []error
	seen := make(map[string]bool, len(g.Rows))
	for i, row := range g.Rows {
		where := fmt.Sprintf("row %d (%q)", i, row.ID)
		if !validRowID(row.ID) {
			errs = append(errs, fmt.Errorf("%s: id must be non-empty [a-zA-Z0-9._-] (it names artifact files)", where))
		} else if seen[row.ID] {
			errs = append(errs, fmt.Errorf("%s: duplicate row id", where))
		}
		seen[row.ID] = true
		exp, ok := reg.Lookup(row.Experiment)
		if !ok {
			errs = append(errs, fmt.Errorf("%s: unknown experiment %q", where, row.Experiment))
		} else {
			declared := make(map[string]bool, len(exp.Params))
			for _, s := range exp.Params {
				declared[s.Name] = true
			}
			for _, name := range sortedKeys(row.Params) {
				if !declared[name] {
					errs = append(errs, fmt.Errorf("%s: experiment %s has no parameter %q (see scads-bench -list)", where, row.Experiment, name))
				}
			}
		}
		if row.Repeats < 1 {
			errs = append(errs, fmt.Errorf("%s: repeats must be >= 1, got %d", where, row.Repeats))
		}
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("expgrid: invalid grid: %w", errors.Join(errs...))
	}
	return &g, nil
}

// validRowID restricts row ids to filename-safe characters: they name
// BENCH_<id>.json artifacts and CSV cells.
func validRowID(id string) bool {
	if id == "" {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}
