package expgrid

import (
	"strings"
	"testing"
)

func TestValidateRunsCSV(t *testing.T) {
	good := "row,experiment,repeat,seed,metric,value\n" +
		"e12,e12,0,1,acked_writes,1800\n" +
		"e12,e12,1,2,fence_pause_p50_us,312.5\n"
	if err := RunsSchema.Validate(strings.NewReader(good)); err != nil {
		t.Fatalf("valid runs.csv rejected: %v", err)
	}

	cases := []struct {
		name, body, want string
	}{
		{"wrong header",
			"row,experiment,repeat,metric,value\na,b,0,m,1\n",
			"does not match schema"},
		{"missing field",
			"row,experiment,repeat,seed,metric,value\ne12,e12,0,1,acked_writes\n",
			"5 fields, schema has 6"},
		{"extra field",
			"row,experiment,repeat,seed,metric,value\ne12,e12,0,1,acked_writes,1,extra\n",
			"7 fields, schema has 6"},
		{"non-integer repeat",
			"row,experiment,repeat,seed,metric,value\ne12,e12,first,1,acked_writes,1\n",
			`"first" is not an integer`},
		{"non-float value",
			"row,experiment,repeat,seed,metric,value\ne12,e12,0,1,acked_writes,lots\n",
			`"lots" is not a float`},
		{"NaN value",
			"row,experiment,repeat,seed,metric,value\ne12,e12,0,1,acked_writes,NaN\n",
			"is not finite"},
		{"empty metric name",
			"row,experiment,repeat,seed,metric,value\ne12,e12,0,1,,1\n",
			"empty cell"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := RunsSchema.Validate(strings.NewReader(tc.body))
			if err == nil {
				t.Fatalf("malformed CSV accepted:\n%s", tc.body)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateGroupedCSV(t *testing.T) {
	good := "row,experiment,repeats,metric,mean,std,min,max\n" +
		"e12,e12,3,acked_writes,1800,12.5,1780,1810\n"
	if err := GroupedSchema.Validate(strings.NewReader(good)); err != nil {
		t.Fatalf("valid summary_grouped.csv rejected: %v", err)
	}
	bad := "row,experiment,repeats,metric,mean,std,min,max\n" +
		"e12,e12,3,acked_writes,1800,+Inf,1780,1810\n"
	if err := GroupedSchema.Validate(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "not finite") {
		t.Fatalf("Inf std accepted: %v", err)
	}
}

func TestValidateErrorCarriesLineNumber(t *testing.T) {
	body := "row,experiment,repeat,seed,metric,value\n" +
		"e12,e12,0,1,acked_writes,1800\n" +
		"e12,e12,1,2,acked_writes,broken\n"
	err := RunsSchema.Validate(strings.NewReader(body))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want a line-3 error, got %v", err)
	}
}
