package expgrid

import (
	"math"
	"reflect"
	"testing"
)

func TestAggregateMath(t *testing.T) {
	reps := []Metrics{
		{"ops": 10, "lost": 0},
		{"ops": 14, "lost": 0},
		{"ops": 12, "lost": 0},
	}
	got := Aggregate(reps)
	ops := got["ops"]
	if ops.N != 3 || ops.Mean != 12 || ops.Min != 10 || ops.Max != 14 {
		t.Fatalf("ops agg: %+v", ops)
	}
	// Sample std of {10, 14, 12}: variance = (4+4+0)/2 = 4, std = 2.
	if ops.Std != 2 {
		t.Fatalf("ops std: got %g, want 2", ops.Std)
	}
	lost := got["lost"]
	if lost.Mean != 0 || lost.Std != 0 || lost.Max != 0 {
		t.Fatalf("lost agg: %+v", lost)
	}
}

func TestAggregateSingleRepeat(t *testing.T) {
	got := Aggregate([]Metrics{{"x": 3.5}})
	if a := got["x"]; a.N != 1 || a.Mean != 3.5 || a.Std != 0 || a.Min != 3.5 || a.Max != 3.5 {
		t.Fatalf("single repeat: %+v", a)
	}
}

func TestAggregateMissingMetricInSomeRepeats(t *testing.T) {
	got := Aggregate([]Metrics{{"x": 1, "y": 5}, {"x": 3}})
	if a := got["x"]; a.N != 2 || a.Mean != 2 {
		t.Fatalf("x: %+v", a)
	}
	if a := got["y"]; a.N != 1 || a.Mean != 5 {
		t.Fatalf("y: %+v", a)
	}
}

// TestAggregateDeterministic: identical inputs must yield bit-identical
// aggregates — accumulation order is repeat order, never map order.
func TestAggregateDeterministic(t *testing.T) {
	mk := func() []Metrics {
		// Values chosen so float addition is order-sensitive: summing
		// in a different order would change the low bits of the mean.
		return []Metrics{
			{"a": 0.1, "b": 1e16},
			{"a": 0.2, "b": 1},
			{"a": 0.3, "b": -1e16},
		}
	}
	first := Aggregate(mk())
	for i := 0; i < 100; i++ {
		if got := Aggregate(mk()); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: aggregation not deterministic:\n%+v\nvs\n%+v", i, got, first)
		}
	}
	// Repeat-order accumulation: 1e16 + 1 rounds back to 1e16, then
	// -1e16 cancels to exactly 0. Summing in any other order gives a
	// nonzero mean.
	if b := first["b"]; b.Mean != 0 {
		t.Fatalf("b mean accumulated out of repeat order: %g", b.Mean)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if got := Aggregate(nil); len(got) != 0 {
		t.Fatalf("empty input: %+v", got)
	}
	if a := aggregate(nil); a.N != 0 || a.Mean != 0 || !reflect.DeepEqual(a, Agg{}) {
		t.Fatalf("zero-value agg: %+v", a)
	}
}

func TestBaselineWithin(t *testing.T) {
	cases := []struct {
		b     Baseline
		got   float64
		want  bool
		bound float64
	}{
		{Baseline{Value: 100, Direction: "higher", Tolerance: 0.1}, 91, true, 90},
		{Baseline{Value: 100, Direction: "higher", Tolerance: 0.1}, 89, false, 90},
		{Baseline{Value: 100, Direction: "lower", Tolerance: 0.5}, 150, true, 150},
		{Baseline{Value: 100, Direction: "lower", Tolerance: 0.5}, 151, false, 150},
		// Hard gate: zero-valued lower-is-better with zero tolerance.
		{Baseline{Value: 0, Direction: "lower"}, 0, true, 0},
		{Baseline{Value: 0, Direction: "lower"}, 0.5, false, 0},
		// Unset direction reads as higher-is-better.
		{Baseline{Value: 10}, 10, true, 10},
		{Baseline{Value: 10}, 9, false, 10},
	}
	for i, tc := range cases {
		ok, bound := tc.b.Within(tc.got)
		if ok != tc.want || math.Abs(bound-tc.bound) > 1e-12 {
			t.Errorf("case %d: Within(%g) = (%v, %g), want (%v, %g)", i, tc.got, ok, bound, tc.want, tc.bound)
		}
	}
}
