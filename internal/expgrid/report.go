package expgrid

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Baseline is one metric's committed regression policy, mirrored from
// the BENCH_*.json baseline files: a reference value, a direction
// ("higher" = bigger is better, anything else conservative-higher;
// "lower" = smaller is better) and a fractional tolerance. A
// zero-valued lower-is-better baseline with zero tolerance is a hard
// gate.
type Baseline struct {
	Value     float64
	Direction string
	Tolerance float64
}

// Within applies the policy to an observed value, returning the
// verdict and the bound that was enforced.
func (b Baseline) Within(got float64) (bool, float64) {
	switch b.Direction {
	case "lower":
		bound := b.Value * (1 + b.Tolerance)
		return got <= bound, bound
	default: // "higher" (and unset, the conservative reading)
		bound := b.Value * (1 - b.Tolerance)
		return got >= bound, bound
	}
}

// WriteReport renders the grid run as a markdown report: one section
// per row with a metric table (mean ± std over the repeats, min/max,
// and — when the row has a committed baseline — the baseline value
// and verdict). baselines maps row id -> metric -> policy, loaded
// from the BENCH_*.json files under cmd/scads-bench/baselines/; rows
// without an entry are reported as ungated. The report is what CI
// publishes to the job summary, so a regression must be readable here
// without downloading any artifact.
func WriteReport(w io.Writer, res *GridResult, baselines map[string]map[string]Baseline) error {
	var b strings.Builder
	b.WriteString("# scads-bench experiment grid\n\n")
	b.WriteString("| row | experiment | repeats | wall time |\n|---|---|---:|---:|\n")
	for _, row := range res.Rows {
		var total float64
		for _, rep := range row.Repeats {
			total += rep.Duration.Seconds()
		}
		fmt.Fprintf(&b, "| %s | %s | %d | %.1fs |\n", row.Row.ID, row.Row.Experiment, len(row.Repeats), total)
	}
	b.WriteString("\n")

	for _, row := range res.Rows {
		base := baselines[row.Row.ID]
		fmt.Fprintf(&b, "## %s (%s, %d repeat(s))\n\n", row.Row.ID, row.Row.Experiment, len(row.Repeats))
		if row.Row.Note != "" {
			fmt.Fprintf(&b, "%s\n\n", row.Row.Note)
		}
		if len(row.Row.Params) > 0 {
			var parts []string
			for _, name := range sortedKeys(row.Row.Params) {
				parts = append(parts, fmt.Sprintf("%s=%s", name, formatFloat(row.Row.Params[name])))
			}
			fmt.Fprintf(&b, "Overrides: `%s` (seed %d)\n\n", strings.Join(parts, " "), row.Row.Seed)
		}
		if base == nil {
			b.WriteString("_No committed baseline: informational row (commit one under cmd/scads-bench/baselines/ to gate it)._\n\n")
		}
		b.WriteString("| metric | mean | std | min | max | baseline | verdict |\n|---|---:|---:|---:|---:|---:|---|\n")
		for _, name := range sortedKeys(row.Grouped) {
			a := row.Grouped[name]
			baseCell, verdict := "—", "—"
			if bm, ok := base[name]; ok {
				baseCell = formatShort(bm.Value)
				if ok, bound := bm.Within(a.Mean); ok {
					verdict = "ok"
				} else {
					verdict = fmt.Sprintf("**REGRESSION** (%s bound %s)", bm.Direction, formatShort(bound))
				}
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s |\n",
				name, formatShort(a.Mean), formatShort(a.Std), formatShort(a.Min), formatShort(a.Max), baseCell, verdict)
		}
		// Baseline metrics the run no longer reports are regressions in
		// the compare gate; surface them here too.
		for _, name := range sortedKeys(base) {
			if _, ok := row.Grouped[name]; !ok {
				fmt.Fprintf(&b, "| %s | — | — | — | — | %s | **REGRESSION** (metric missing from run) |\n",
					name, formatShort(base[name].Value))
			}
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatShort renders a value for the report table: round-trippable
// is unnecessary here, readable is — 4 significant digits.
func formatShort(v float64) string {
	return strconv.FormatFloat(v, 'g', 4, 64)
}
