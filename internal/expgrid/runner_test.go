package expgrid

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scads/internal/clock"
)

// runnerRegistry registers a deterministic fake experiment whose
// metrics are pure functions of its params and seed, so the runner's
// seed-derivation and aggregation can be asserted exactly.
func runnerRegistry() *Registry {
	reg := NewRegistry()
	reg.Register(Experiment{
		ID:   "det",
		Name: "deterministic fake",
		Params: []ParamSpec{
			{Name: "base", Default: 100, Doc: "metric base value"},
		},
		Run: func(p Params) (Metrics, error) {
			return Metrics{
				"value":  p.Get("base") + float64(p.Seed),
				"repeat": float64(p.Repeat),
			}, nil
		},
	})
	return reg
}

func runnerGrid(t *testing.T, reg *Registry, src string) *Grid {
	t.Helper()
	g, err := ParseGrid([]byte(src), reg)
	if err != nil {
		t.Fatalf("ParseGrid: %v", err)
	}
	return g
}

func TestRunnerSeedPolicyAndAggregation(t *testing.T) {
	reg := runnerRegistry()
	g := runnerGrid(t, reg, `{"rows": [
		{"id": "det", "experiment": "det", "repeats": 3, "seed": 10},
		{"id": "det-big", "experiment": "det", "repeats": 1, "seed": 50, "params": {"base": 1000}}
	]}`)
	out := t.TempDir()
	r := &Runner{Registry: reg, OutDir: out, Clock: clock.NewVirtual(time.Unix(0, 0))}
	res, err := r.Run(g, "")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	// Seeds derive as base+repeat: 10, 11, 12.
	row := res.Rows[0]
	for i, rep := range row.Repeats {
		if rep.Seed != int64(10+i) {
			t.Fatalf("repeat %d seed %d, want %d", i, rep.Seed, 10+i)
		}
		if rep.Metrics["value"] != float64(110+i) {
			t.Fatalf("repeat %d metrics %v", i, rep.Metrics)
		}
	}
	// Grouped mean of {110, 111, 112} = 111; std = 1.
	if a := row.Grouped["value"]; a.Mean != 111 || a.Std != 1 || a.Min != 110 || a.Max != 112 || a.N != 3 {
		t.Fatalf("grouped: %+v", a)
	}
	if a := res.Rows[1].Grouped["value"]; a.Mean != 1050 || a.N != 1 || a.Std != 0 {
		t.Fatalf("override row grouped: %+v", a)
	}

	// Both artifacts exist and pass their schemas (Run already
	// validated them; re-check from a clean read).
	for _, name := range []string{RunsSchema.Name, GroupedSchema.Name} {
		b, err := os.ReadFile(filepath.Join(out, name))
		if err != nil {
			t.Fatalf("artifact %s: %v", name, err)
		}
		if name == RunsSchema.Name && !strings.Contains(string(b), "det-big,det,0,50,value,1050") {
			t.Fatalf("runs.csv missing override row:\n%s", b)
		}
	}
}

// TestRunnerBitIdenticalArtifacts: same grid, same seeds, two fresh
// runs — byte-identical CSVs. This is the fixed-seed reproducibility
// contract CI relies on.
func TestRunnerBitIdenticalArtifacts(t *testing.T) {
	reg := runnerRegistry()
	src := `{"rows": [{"id": "det", "experiment": "det", "repeats": 4, "seed": 3}]}`
	read := func(dir string) (string, string) {
		r := &Runner{Registry: reg, OutDir: dir, Clock: clock.NewVirtual(time.Unix(0, 0))}
		if _, err := r.Run(runnerGrid(t, reg, src), ""); err != nil {
			t.Fatalf("Run: %v", err)
		}
		runs, err := os.ReadFile(filepath.Join(dir, RunsSchema.Name))
		if err != nil {
			t.Fatal(err)
		}
		grouped, err := os.ReadFile(filepath.Join(dir, GroupedSchema.Name))
		if err != nil {
			t.Fatal(err)
		}
		return string(runs), string(grouped)
	}
	r1, g1 := read(t.TempDir())
	r2, g2 := read(t.TempDir())
	if r1 != r2 || g1 != g2 {
		t.Fatalf("fixed-seed artifacts differ between runs:\n%s\nvs\n%s\n---\n%s\nvs\n%s", r1, r2, g1, g2)
	}
}

func TestRunnerRowFilterAndMinRepeats(t *testing.T) {
	reg := runnerRegistry()
	g := runnerGrid(t, reg, `{"rows": [
		{"id": "a", "experiment": "det", "repeats": 1, "seed": 1},
		{"id": "b", "experiment": "det", "repeats": 2, "seed": 2}
	]}`)
	r := &Runner{Registry: reg, MinRepeats: 3, Clock: clock.NewVirtual(time.Unix(0, 0))}
	res, err := r.Run(g, "a")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Row.ID != "a" {
		t.Fatalf("filter: %+v", res.Rows)
	}
	if n := len(res.Rows[0].Repeats); n != 3 {
		t.Fatalf("MinRepeats did not raise repeats: got %d", n)
	}
	if _, err := r.Run(g, "absent"); err == nil || !strings.Contains(err.Error(), `no row "absent"`) {
		t.Fatalf("missing -grid-row not rejected: %v", err)
	}
}

func TestRunnerAttributesExperimentError(t *testing.T) {
	reg := NewRegistry()
	reg.Register(Experiment{
		ID: "boom",
		Run: func(p Params) (Metrics, error) {
			if p.Repeat == 1 {
				return nil, os.ErrInvalid
			}
			return Metrics{"x": 1}, nil
		},
	})
	g := runnerGrid(t, reg, `{"rows": [{"id": "boom", "experiment": "boom", "repeats": 2, "seed": 0}]}`)
	r := &Runner{Registry: reg, Clock: clock.NewVirtual(time.Unix(0, 0))}
	_, err := r.Run(g, "")
	if err == nil || !strings.Contains(err.Error(), "row boom repeat 1") {
		t.Fatalf("error not attributed to row/repeat: %v", err)
	}
}

func TestWriteReport(t *testing.T) {
	reg := runnerRegistry()
	g := runnerGrid(t, reg, `{"rows": [
		{"id": "det", "experiment": "det", "repeats": 2, "seed": 10, "note": "baseline row"},
		{"id": "det-free", "experiment": "det", "repeats": 1, "seed": 1, "params": {"base": 5}}
	]}`)
	r := &Runner{Registry: reg, Clock: clock.NewVirtual(time.Unix(0, 0))}
	res, err := r.Run(g, "")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	baselines := map[string]map[string]Baseline{
		"det": {
			"value":  {Value: 110, Direction: "higher", Tolerance: 0.05},
			"gone":   {Value: 1, Direction: "lower"},
			"repeat": {Value: 10, Direction: "higher"}, // mean repeat is 0.5: regression
		},
	}
	var b strings.Builder
	if err := WriteReport(&b, res, baselines); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	report := b.String()
	for _, want := range []string{
		"# scads-bench experiment grid",
		"## det (det, 2 repeat(s))",
		"baseline row",
		"| value | 110.5 |",
		"**REGRESSION** (metric missing from run)",
		"**REGRESSION** (higher bound 10)",
		"_No committed baseline",
		"Overrides: `base=5` (seed 1)",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}
