package expgrid

import "math"

// Agg is the grouped aggregate of one metric across a row's repeats.
// Std is the sample standard deviation (n-1 denominator; 0 when a
// single repeat exists), matching what the paper-style summary tables
// report alongside the mean.
type Agg struct {
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	N    int
}

// Aggregate groups per-repeat metrics into per-metric aggregates. A
// metric missing from some repeats is aggregated over the repeats
// that did report it (N records how many); the runner treats that as
// a schema drift worth surfacing, but the math stays well-defined.
//
// Determinism contract: accumulation runs in repeat order (slice
// order), never in map-iteration order, so the same inputs produce
// bit-identical float results on every run.
func Aggregate(repeats []Metrics) map[string]Agg {
	names := metricNames(repeats)
	out := make(map[string]Agg, len(names))
	for _, name := range names {
		var vals []float64
		for _, m := range repeats { // repeat order: deterministic accumulation
			if v, ok := m[name]; ok {
				vals = append(vals, v)
			}
		}
		out[name] = aggregate(vals)
	}
	return out
}

// metricNames returns the union of metric names across repeats,
// sorted, so downstream iteration never depends on map order.
func metricNames(repeats []Metrics) []string {
	union := make(map[string]bool)
	for _, m := range repeats {
		for name := range m {
			union[name] = true
		}
	}
	return sortedKeys(union)
}

func aggregate(vals []float64) Agg {
	a := Agg{N: len(vals)}
	if a.N == 0 {
		return a
	}
	a.Min, a.Max = vals[0], vals[0]
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	a.Mean = sum / float64(a.N)
	if a.N > 1 {
		ss := 0.0
		for _, v := range vals {
			d := v - a.Mean
			ss += d * d
		}
		a.Std = math.Sqrt(ss / float64(a.N-1))
	}
	return a
}
