package expgrid

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"scads/internal/clock"
)

// RepeatResult is one executed repeat of one grid row.
type RepeatResult struct {
	RowID      string
	Experiment string
	Repeat     int
	Seed       int64
	Metrics    Metrics
	Duration   time.Duration
}

// RowResult is one executed grid row: every repeat plus the grouped
// aggregates.
type RowResult struct {
	Row     Row
	Repeats []RepeatResult
	Grouped map[string]Agg
}

// GridResult is a full grid execution, rows in declaration order.
type GridResult struct {
	Rows []RowResult
}

// Runner executes a parsed grid and writes the summary artifacts.
type Runner struct {
	Registry *Registry
	// OutDir receives runs.csv and summary_grouped.csv; created if
	// missing. Empty disables artifact writing (tests aggregate the
	// returned GridResult directly).
	OutDir string
	// MinRepeats raises every row's repeat count to at least this
	// value — the nightly grid runs the same committed declaration at
	// higher statistical power without editing it.
	MinRepeats int
	// Clock times repeats; nil uses the wall clock. Injected so the
	// aggregation/summary paths stay inside the determinism scope.
	Clock clock.Clock
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (r *Runner) clock() clock.Clock {
	if r.Clock == nil {
		return clock.Real{}
	}
	return r.Clock
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Run executes every grid row (optionally filtered to onlyRow) and,
// when OutDir is set, writes and schema-validates runs.csv and
// summary_grouped.csv. Any repeat error aborts the run attributed to
// its row; artifact validation failures abort the run even though the
// experiments themselves passed.
func (r *Runner) Run(g *Grid, onlyRow string) (*GridResult, error) {
	rows := g.Rows
	if onlyRow != "" {
		rows = nil
		for _, row := range g.Rows {
			if row.ID == onlyRow {
				rows = append(rows, row)
			}
		}
		if len(rows) == 0 {
			return nil, fmt.Errorf("expgrid: grid has no row %q", onlyRow)
		}
	}

	res := &GridResult{}
	clk := r.clock()
	for _, row := range rows {
		exp, ok := r.Registry.Lookup(row.Experiment)
		if !ok {
			// ParseGrid validated against the same registry; reaching
			// here means the caller mixed registries.
			return nil, fmt.Errorf("expgrid: row %s: unknown experiment %q", row.ID, row.Experiment)
		}
		repeats := row.Repeats
		if repeats < r.MinRepeats {
			repeats = r.MinRepeats
		}
		rr := RowResult{Row: row}
		for rep := 0; rep < repeats; rep++ {
			p := NewParams(exp.Params, row.Params, row.Seed+int64(rep), rep)
			r.logf("grid row %s: %s repeat %d/%d (seed %d)", row.ID, exp.ID, rep+1, repeats, p.Seed)
			start := clk.Now()
			m, err := exp.Run(p)
			if err != nil {
				return nil, fmt.Errorf("expgrid: row %s repeat %d: %w", row.ID, rep, err)
			}
			rr.Repeats = append(rr.Repeats, RepeatResult{
				RowID:      row.ID,
				Experiment: row.Experiment,
				Repeat:     rep,
				Seed:       p.Seed,
				Metrics:    m,
				Duration:   clk.Since(start),
			})
		}
		rr.Grouped = Aggregate(metricsOf(rr.Repeats))
		res.Rows = append(res.Rows, rr)
	}

	if r.OutDir != "" {
		if err := r.writeArtifacts(res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func metricsOf(reps []RepeatResult) []Metrics {
	ms := make([]Metrics, len(reps))
	for i, rep := range reps {
		ms[i] = rep.Metrics
	}
	return ms
}

// writeArtifacts emits runs.csv and summary_grouped.csv into OutDir
// and re-reads both through their schemas — the validation runs on
// the bytes on disk, not the in-memory rows, so an encoding bug
// cannot ship a malformed artifact.
func (r *Runner) writeArtifacts(res *GridResult) error {
	if err := os.MkdirAll(r.OutDir, 0o755); err != nil {
		return fmt.Errorf("expgrid: %w", err)
	}
	runsPath := filepath.Join(r.OutDir, RunsSchema.Name)
	if err := writeCSV(runsPath, RunsSchema, runsRecords(res)); err != nil {
		return err
	}
	groupedPath := filepath.Join(r.OutDir, GroupedSchema.Name)
	if err := writeCSV(groupedPath, GroupedSchema, groupedRecords(res)); err != nil {
		return err
	}
	for _, path := range []string{runsPath, groupedPath} {
		if err := validateFile(path); err != nil {
			return err
		}
	}
	r.logf("grid artifacts: %s, %s (schema-validated)", runsPath, groupedPath)
	return nil
}

func runsRecords(res *GridResult) [][]string {
	var recs [][]string
	for _, row := range res.Rows {
		for _, rep := range row.Repeats {
			for _, name := range sortedKeys(rep.Metrics) {
				recs = append(recs, []string{
					row.Row.ID,
					row.Row.Experiment,
					strconv.Itoa(rep.Repeat),
					strconv.FormatInt(rep.Seed, 10),
					name,
					formatFloat(rep.Metrics[name]),
				})
			}
		}
	}
	return recs
}

func groupedRecords(res *GridResult) [][]string {
	var recs [][]string
	for _, row := range res.Rows {
		for _, name := range sortedKeys(row.Grouped) {
			a := row.Grouped[name]
			recs = append(recs, []string{
				row.Row.ID,
				row.Row.Experiment,
				strconv.Itoa(a.N),
				name,
				formatFloat(a.Mean),
				formatFloat(a.Std),
				formatFloat(a.Min),
				formatFloat(a.Max),
			})
		}
	}
	return recs
}

func writeCSV(path string, schema Schema, records [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("expgrid: %w", err)
	}
	w := csv.NewWriter(f)
	if err := w.Write(schema.Header()); err != nil {
		f.Close()
		return fmt.Errorf("expgrid: %s: %w", path, err)
	}
	for _, rec := range records {
		if err := w.Write(rec); err != nil {
			f.Close()
			return fmt.Errorf("expgrid: %s: %w", path, err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return fmt.Errorf("expgrid: %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("expgrid: %s: %w", path, err)
	}
	return nil
}

// validateFile schema-checks an emitted CSV by filename.
func validateFile(path string) error {
	var schema Schema
	switch filepath.Base(path) {
	case RunsSchema.Name:
		schema = RunsSchema
	case GroupedSchema.Name:
		schema = GroupedSchema
	default:
		return fmt.Errorf("expgrid: no schema for %s", path)
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("expgrid: %w", err)
	}
	defer f.Close()
	if err := schema.Validate(f); err != nil {
		return fmt.Errorf("expgrid: emitted artifact failed validation: %w", err)
	}
	return nil
}
