// Package expgrid is the declarative experiment-grid harness behind
// scads-bench. A committed experiments.json declares grid rows — each
// names a registered experiment, its parameter overrides (value
// sizes, skew, replication factor, node counts, cache bytes, ...), a
// repeat count and a base seed — and one runner executes the whole
// grid: every repeat runs through the experiment's Run hook with a
// deterministically derived seed, per-repeat metric rows land in a
// schema-validated runs.csv, and the aggregator groups them into
// mean/std/min/max summaries (summary_grouped.csv plus a markdown
// report diffed against the committed BENCH_*.json baselines).
//
// The package is inside the scads-vet determinism scope: it reads
// time only through an injected clock.Clock, takes randomness only as
// caller-provided seeds, and never lets map iteration order reach an
// output — so a grid run with fixed seeds is bit-identical on its
// control-plane rows.
package expgrid

import (
	"fmt"
	"sort"
)

// ParamSpec declares one grid-overridable knob of an experiment. All
// parameters are float64 on the wire (JSON numbers); integral knobs
// read them back through Params.Int.
type ParamSpec struct {
	Name    string
	Default float64
	Doc     string
}

// Metrics is the typed result of one experiment repeat: gated metric
// name -> value, the same shape BENCH_*.json summaries carry.
type Metrics map[string]float64

// Params carries the resolved parameter values for one repeat:
// experiment defaults overlaid with the grid row's overrides, plus
// the repeat's derived seed. Experiments must draw every random
// stream from Seed (or values derived from it) so a row is
// reproducible from its JSON declaration alone.
type Params struct {
	values map[string]float64
	// Seed is this repeat's RNG seed: the row's base seed plus the
	// zero-based repeat index, so repeats are independent but the
	// whole row replays identically from the same declaration.
	Seed int64
	// Repeat is the zero-based repeat index within the row.
	Repeat int
}

// NewParams builds a resolved parameter set: the specs' defaults
// overlaid with overrides. Unknown override names are rejected by
// grid validation before any run, so this constructor trusts its
// input.
func NewParams(specs []ParamSpec, overrides map[string]float64, seed int64, repeat int) Params {
	v := make(map[string]float64, len(specs))
	for _, s := range specs {
		v[s.Name] = s.Default
	}
	for name, val := range overrides {
		v[name] = val
	}
	return Params{values: v, Seed: seed, Repeat: repeat}
}

// Get returns the resolved value of a declared parameter. Asking for
// an undeclared name is a programming error in the experiment and
// panics: the registry guarantees every declared spec has a value.
func (p Params) Get(name string) float64 {
	v, ok := p.values[name]
	if !ok {
		//lint:panic-ok an experiment reading a parameter it never declared is a compile-time-style registry bug, not dynamic input: grid validation already rejected unknown override names
		panic("expgrid: experiment read undeclared parameter " + name)
	}
	return v
}

// Int returns a declared parameter truncated to int.
func (p Params) Int(name string) int { return int(p.Get(name)) }

// Experiment is one registered, grid-runnable experiment: a stable
// id, a human-readable name, the declared overridable parameters, and
// the run hook (params in, typed metrics out). Run must be
// self-contained — hard invariant gates inside it (lost updates,
// wrong reads) may abort the process, but ordinary failures should
// surface as an error so the runner can attribute them to a row.
type Experiment struct {
	ID     string
	Name   string
	Params []ParamSpec
	Run    func(p Params) (Metrics, error)
}

// Registry holds the grid-runnable experiments in registration order.
type Registry struct {
	ordered []Experiment
	byID    map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]int)}
}

// Register adds an experiment. Duplicate ids, missing run hooks and
// duplicate parameter names are programming errors and panic at
// startup rather than corrupting a grid run later.
func (r *Registry) Register(e Experiment) {
	if e.ID == "" || e.Run == nil {
		panic("expgrid: experiment needs an ID and a Run hook")
	}
	if _, dup := r.byID[e.ID]; dup {
		//lint:panic-ok registration runs at process startup on compiled-in experiment tables; a duplicate id is a programming error that must stop the binary before any grid row runs
		panic("expgrid: duplicate experiment " + e.ID)
	}
	seen := make(map[string]bool, len(e.Params))
	for _, s := range e.Params {
		if s.Name == "" || seen[s.Name] {
			//lint:panic-ok same startup-time registration invariant as duplicate ids: the parameter table is compiled in, never user input
			panic(fmt.Sprintf("expgrid: experiment %s declares duplicate or empty parameter %q", e.ID, s.Name))
		}
		seen[s.Name] = true
	}
	r.byID[e.ID] = len(r.ordered)
	r.ordered = append(r.ordered, e)
}

// Lookup returns the experiment registered under id.
func (r *Registry) Lookup(id string) (Experiment, bool) {
	i, ok := r.byID[id]
	if !ok {
		return Experiment{}, false
	}
	return r.ordered[i], true
}

// List returns every registered experiment in registration order.
func (r *Registry) List() []Experiment {
	return append([]Experiment(nil), r.ordered...)
}

// sortedKeys returns a map's keys in ascending order — the only way
// map contents may reach ordered output or float accumulation in this
// package (the determinism analyzer enforces it).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
