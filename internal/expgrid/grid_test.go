package expgrid

import (
	"strings"
	"testing"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.Register(Experiment{
		ID:   "fake",
		Name: "fake experiment",
		Params: []ParamSpec{
			{Name: "value_size", Default: 64, Doc: "bytes per value"},
			{Name: "nodes", Default: 3, Doc: "cluster size"},
		},
		Run: func(p Params) (Metrics, error) {
			return Metrics{"ops": p.Get("value_size") * float64(p.Seed)}, nil
		},
	})
	return reg
}

func TestParseGridValid(t *testing.T) {
	g, err := ParseGrid([]byte(`{
		"rows": [
			{"id": "fake", "experiment": "fake", "repeats": 2, "seed": 1},
			{"id": "fake-big", "experiment": "fake", "repeats": 1, "seed": 7,
			 "params": {"value_size": 4096}, "note": "large values"}
		]
	}`), testRegistry(t))
	if err != nil {
		t.Fatalf("ParseGrid: %v", err)
	}
	if len(g.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(g.Rows))
	}
	if g.Rows[1].Params["value_size"] != 4096 {
		t.Fatalf("override lost: %+v", g.Rows[1])
	}
}

func TestParseGridErrors(t *testing.T) {
	reg := testRegistry(t)
	cases := []struct {
		name, grid, want string
	}{
		{"unknown experiment",
			`{"rows": [{"id": "x", "experiment": "nope", "repeats": 1}]}`,
			`unknown experiment "nope"`},
		{"unknown param override",
			`{"rows": [{"id": "x", "experiment": "fake", "repeats": 1, "params": {"valuesize": 9}}]}`,
			`no parameter "valuesize"`},
		{"zero repeats",
			`{"rows": [{"id": "x", "experiment": "fake", "repeats": 0}]}`,
			"repeats must be >= 1"},
		{"negative repeats",
			`{"rows": [{"id": "x", "experiment": "fake", "repeats": -3}]}`,
			"repeats must be >= 1"},
		{"duplicate row id",
			`{"rows": [{"id": "x", "experiment": "fake", "repeats": 1}, {"id": "x", "experiment": "fake", "repeats": 1}]}`,
			"duplicate row id"},
		{"empty row id",
			`{"rows": [{"id": "", "experiment": "fake", "repeats": 1}]}`,
			"id must be non-empty"},
		{"filename-hostile row id",
			`{"rows": [{"id": "a/b", "experiment": "fake", "repeats": 1}]}`,
			"id must be non-empty"},
		{"typoed field",
			`{"rows": [{"id": "x", "experiment": "fake", "repeats": 1, "repeat": 3}]}`,
			"unknown field"},
		{"no rows", `{"rows": []}`, "no rows"},
		{"malformed json", `{"rows": [`, "parse grid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseGrid([]byte(tc.grid), reg)
			if err == nil {
				t.Fatalf("ParseGrid accepted %s", tc.grid)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseGridReportsAllDefects(t *testing.T) {
	_, err := ParseGrid([]byte(`{"rows": [
		{"id": "a", "experiment": "nope", "repeats": 1},
		{"id": "b", "experiment": "fake", "repeats": 0}
	]}`), testRegistry(t))
	if err == nil {
		t.Fatal("ParseGrid accepted a doubly-broken grid")
	}
	for _, want := range []string{`unknown experiment "nope"`, "repeats must be >= 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q is missing %q", err, want)
		}
	}
}

func TestParamsResolution(t *testing.T) {
	reg := testRegistry(t)
	exp, _ := reg.Lookup("fake")
	p := NewParams(exp.Params, map[string]float64{"value_size": 1024}, 9, 2)
	if got := p.Get("value_size"); got != 1024 {
		t.Fatalf("override: got %g", got)
	}
	if got := p.Int("nodes"); got != 3 {
		t.Fatalf("default: got %d", got)
	}
	if p.Seed != 9 || p.Repeat != 2 {
		t.Fatalf("seed/repeat: %+v", p)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reading an undeclared parameter did not panic")
		}
	}()
	p.Get("undeclared")
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	reg := testRegistry(t)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Register(Experiment{ID: "fake", Run: func(Params) (Metrics, error) { return nil, nil }})
}
