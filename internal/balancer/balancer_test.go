package balancer

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func nodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%03d", i+1)
	}
	return out
}

func TestPlanBalancedClusterNoActions(t *testing.T) {
	loads := []RangeLoad{
		{Namespace: "tbl_a", Start: nil, Replicas: []string{"node-001"}, Ops: 1000},
		{Namespace: "tbl_a", Start: []byte("m"), Replicas: []string{"node-002"}, Ops: 1000},
		{Namespace: "tbl_b", Start: nil, Replicas: []string{"node-003"}, Ops: 1000},
	}
	if plan := Plan(loads, nodes(3), Config{}); len(plan) != 0 {
		t.Fatalf("balanced cluster produced plan: %v", plan)
	}
}

func TestPlanIdleWindowNoActions(t *testing.T) {
	loads := []RangeLoad{
		{Namespace: "tbl_a", Start: nil, Replicas: []string{"node-001"}, Ops: 50},
	}
	if plan := Plan(loads, nodes(3), Config{MinOps: 100}); len(plan) != 0 {
		t.Fatalf("idle window produced plan: %v", plan)
	}
}

func TestPlanMovesOffHotNode(t *testing.T) {
	// node-001 is the primary of every range; everything else idle.
	loads := []RangeLoad{
		{Namespace: "tbl_a", Start: nil, Replicas: []string{"node-001", "node-002"}, Ops: 600},
		{Namespace: "tbl_a", Start: []byte("h"), Replicas: []string{"node-001", "node-003"}, Ops: 500},
		{Namespace: "tbl_a", Start: []byte("p"), Replicas: []string{"node-001", "node-002"}, Ops: 400},
	}
	plan := Plan(loads, nodes(3), Config{SplitFraction: 10 /* no splits */})
	if len(plan) == 0 {
		t.Fatal("skewed cluster produced empty plan")
	}
	for _, a := range plan {
		if a.Kind != ActionMove {
			t.Fatalf("want only moves, got %v", a)
		}
		if a.Target[0] == "node-001" {
			t.Fatalf("move kept the hot primary: %v", a)
		}
	}
}

func TestPlanMovesReduceImbalance(t *testing.T) {
	loads := []RangeLoad{
		{Namespace: "t", Start: nil, Replicas: []string{"node-001"}, Ops: 500},
		{Namespace: "t", Start: []byte("b"), Replicas: []string{"node-001"}, Ops: 400},
		{Namespace: "t", Start: []byte("c"), Replicas: []string{"node-001"}, Ops: 300},
		{Namespace: "t", Start: []byte("d"), Replicas: []string{"node-002"}, Ops: 100},
	}
	ns := nodes(3)
	plan := Plan(loads, ns, Config{SplitFraction: 10})

	// Apply the plan to a load model and verify the max/mean ratio
	// strictly improves.
	loadOf := func(ls []RangeLoad) map[string]float64 {
		m := map[string]float64{}
		for _, n := range ns {
			m[n] = 0
		}
		for _, rl := range ls {
			m[rl.Replicas[0]] += rl.Ops
		}
		return m
	}
	before := maxLoad(loadOf(loads))
	after := append([]RangeLoad(nil), loads...)
	for _, a := range plan {
		for i := range after {
			if after[i].Namespace == a.Namespace && bytes.Equal(after[i].Start, a.Start) {
				after[i].Replicas = a.Target
			}
		}
	}
	if got := maxLoad(loadOf(after)); got >= before {
		t.Fatalf("plan did not reduce max node load: %v -> %v\nplan: %v", before, got, plan)
	}
}

func maxLoad(m map[string]float64) float64 {
	var max float64
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}

func TestPlanSplitsHotRange(t *testing.T) {
	// One range carries almost everything and has a split candidate.
	loads := []RangeLoad{
		{Namespace: "t", Start: nil, Replicas: []string{"node-001"}, Ops: 5000,
			SplitKey: []byte("celebrity")},
		{Namespace: "t", Start: []byte("x"), Replicas: []string{"node-002"}, Ops: 100},
	}
	plan := Plan(loads, nodes(2), Config{})
	var split *Action
	for i := range plan {
		if plan[i].Kind == ActionSplit {
			split = &plan[i]
		}
	}
	if split == nil {
		t.Fatalf("hot range not split: %v", plan)
	}
	if !bytes.Equal(split.At, []byte("celebrity")) {
		t.Fatalf("split at %q, want the tracker's median", split.At)
	}
}

func TestPlanHotRangeWithoutSplitKeyNotSplit(t *testing.T) {
	// A single-key hotspot cannot be split; the planner must not emit
	// a split without a candidate key.
	loads := []RangeLoad{
		{Namespace: "t", Start: nil, Replicas: []string{"node-001"}, Ops: 5000},
		{Namespace: "t", Start: []byte("x"), Replicas: []string{"node-002"}, Ops: 100},
	}
	for _, a := range Plan(loads, nodes(2), Config{}) {
		if a.Kind == ActionSplit {
			t.Fatalf("split emitted without a candidate key: %v", a)
		}
	}
}

func TestPlanRespectsMaxMoves(t *testing.T) {
	var loads []RangeLoad
	for i := 0; i < 20; i++ {
		loads = append(loads, RangeLoad{
			Namespace: "t", Start: []byte{byte(i)},
			Replicas: []string{"node-001"}, Ops: 100,
		})
	}
	plan := Plan(loads, nodes(4), Config{MaxMoves: 3, SplitFraction: 10})
	moves := 0
	for _, a := range plan {
		if a.Kind == ActionMove {
			moves++
		}
	}
	if moves > 3 {
		t.Fatalf("%d moves, want <= 3", moves)
	}
}

func TestPlanDeterministic(t *testing.T) {
	loads := []RangeLoad{
		{Namespace: "t", Start: []byte("m"), Replicas: []string{"node-001"}, Ops: 700},
		{Namespace: "t", Start: nil, Replicas: []string{"node-001"}, Ops: 900},
		{Namespace: "u", Start: nil, Replicas: []string{"node-002"}, Ops: 50},
	}
	a := Plan(loads, nodes(3), Config{SplitFraction: 10})
	b := Plan(loads, nodes(3), Config{SplitFraction: 10})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("plans differ:\n%v\n%v", a, b)
	}
}

func TestPlanSingleNodeNoActions(t *testing.T) {
	loads := []RangeLoad{
		{Namespace: "t", Start: nil, Replicas: []string{"node-001"}, Ops: 10000},
	}
	if plan := Plan(loads, nodes(1), Config{}); plan != nil {
		t.Fatalf("single-node cluster produced plan: %v", plan)
	}
}

func TestPlanMovePreservesReplicationFactor(t *testing.T) {
	loads := []RangeLoad{
		{Namespace: "t", Start: nil, Replicas: []string{"node-001", "node-002"}, Ops: 900},
		{Namespace: "t", Start: []byte("m"), Replicas: []string{"node-001", "node-002"}, Ops: 800},
	}
	for _, a := range Plan(loads, nodes(3), Config{SplitFraction: 10}) {
		if a.Kind == ActionMove && len(a.Target) != 2 {
			t.Fatalf("move changed replication factor: %v", a)
		}
	}
}

func TestPlanNeverTargetsDuplicateReplicas(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%4) + 2
		var loads []RangeLoad
		for i := 0; i <= int(seed%8); i++ {
			loads = append(loads, RangeLoad{
				Namespace: "t", Start: []byte{byte(i)},
				Replicas: []string{
					fmt.Sprintf("node-%03d", int(seed+uint8(i))%n+1),
					fmt.Sprintf("node-%03d", int(seed+uint8(3*i))%n+1),
				},
				Ops: float64(50 * (i + 1)),
			})
		}
		for _, a := range Plan(loads, nodes(n), Config{}) {
			seen := map[string]bool{}
			for _, id := range a.Target {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRetarget(t *testing.T) {
	got := retarget([]string{"a", "b", "c"}, "b", "z")
	if !reflect.DeepEqual(got, []string{"a", "z", "c"}) {
		t.Fatalf("retarget = %v", got)
	}
	// Target already a secondary: swap roles, keep the factor.
	got = retarget([]string{"a", "b"}, "a", "b")
	if !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Fatalf("retarget swap = %v", got)
	}
	// from absent: to becomes primary.
	got = retarget([]string{"a", "b"}, "x", "z")
	if !reflect.DeepEqual(got, []string{"z", "b"}) {
		t.Fatalf("retarget absent = %v", got)
	}
	// from absent, to already a secondary: promote it.
	got = retarget([]string{"a", "b"}, "x", "b")
	if !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Fatalf("retarget promote = %v", got)
	}
}

func TestTrackerCountsAndSnapshot(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 10; i++ {
		tr.Record("tbl_users", nil, []byte(fmt.Sprintf("user%02d", i)))
	}
	tr.Record("tbl_users", []byte("m"), []byte("mary"))
	obs := tr.Snapshot()
	if len(obs) != 2 {
		t.Fatalf("snapshot ranges = %d, want 2", len(obs))
	}
	if obs[0].Ops != 10 || obs[1].Ops != 1 {
		t.Fatalf("ops = %v / %v", obs[0].Ops, obs[1].Ops)
	}
	if obs[0].MedianKey == nil {
		t.Fatal("10 distinct keys should yield a median split candidate")
	}
	if obs[1].MedianKey != nil {
		t.Fatal("single-key range must not propose a split")
	}
}

func TestTrackerMedianInsideRange(t *testing.T) {
	tr := NewTracker()
	// All keys equal to the range start: median == start -> no split.
	for i := 0; i < 5; i++ {
		tr.Record("t", []byte("k"), []byte("k"))
	}
	if obs := tr.Snapshot(); obs[0].MedianKey != nil {
		t.Fatalf("median %q not strictly inside range", obs[0].MedianKey)
	}
}

func TestTrackerReset(t *testing.T) {
	tr := NewTracker()
	tr.Record("t", nil, []byte("a"))
	tr.Reset()
	if tr.Len() != 0 || len(tr.Snapshot()) != 0 {
		t.Fatal("reset did not clear the window")
	}
}

func TestTrackerSampleBounded(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 10*sampleSize; i++ {
		tr.Record("t", nil, []byte(fmt.Sprintf("key%05d", i)))
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, st := range tr.ranges {
		if len(st.sample) > sampleSize {
			t.Fatalf("sample grew to %d > %d", len(st.sample), sampleSize)
		}
	}
}

func TestTrackerSnapshotDeterministic(t *testing.T) {
	build := func() []RangeObservation {
		tr := NewTracker()
		for i := 0; i < 100; i++ {
			tr.Record("b", []byte("x"), []byte(fmt.Sprintf("k%03d", i%7)))
			tr.Record("a", nil, []byte(fmt.Sprintf("k%03d", i%13)))
		}
		return tr.Snapshot()
	}
	if !reflect.DeepEqual(build(), build()) {
		t.Fatal("snapshots differ across identical runs")
	}
}

func TestActionString(t *testing.T) {
	split := Action{Kind: ActionSplit, Namespace: "t", At: []byte("m"), Reason: "hot"}
	move := Action{Kind: ActionMove, Namespace: "t", Target: []string{"n"}, Reason: "r"}
	if split.String() == "" || move.String() == "" {
		t.Fatal("empty action strings")
	}
	if ActionSplit.String() != "split" || ActionMove.String() != "move" {
		t.Fatal("kind strings")
	}
}
