package balancer

import (
	"bytes"
	"sort"
	"sync"
)

// Tracker accumulates the "current workload information" of §3.3.1:
// per-range request counts plus a deterministic sample of observed
// keys, from which the planner derives split points. The coordinator
// records every routed read and write; Snapshot drains a consistent
// view for planning and Reset starts the next window.
type Tracker struct {
	mu     sync.Mutex
	ranges map[rangeKey]*rangeStats
}

type rangeKey struct {
	namespace string
	start     string // range lower bound (raw bytes as string map key)
}

// sampleSize bounds the per-range key reservoir. Deterministic
// stride-based sampling (every Nth key once full) keeps the reservoir
// representative without randomness, so tests and simulations are
// reproducible.
const sampleSize = 64

type rangeStats struct {
	ops    float64
	seen   int
	sample [][]byte
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{ranges: make(map[rangeKey]*rangeStats)}
}

// Record notes one request against the range identified by
// (namespace, rangeStart) touching key.
func (t *Tracker) Record(namespace string, rangeStart, key []byte) {
	rk := rangeKey{namespace: namespace, start: string(rangeStart)}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.ranges[rk]
	if st == nil {
		st = &rangeStats{}
		t.ranges[rk] = st
	}
	st.ops++
	st.seen++
	if len(st.sample) < sampleSize {
		st.sample = append(st.sample, append([]byte(nil), key...))
	} else if st.seen%(st.seen/sampleSize+1) == 0 {
		// Overwrite a deterministic slot so long windows still reflect
		// recent keys.
		st.sample[st.seen%sampleSize] = append([]byte(nil), key...)
	}
}

// RangeObservation is one range's drained statistics.
type RangeObservation struct {
	Namespace string
	Start     []byte
	Ops       float64
	// MedianKey is the median of sampled keys — the planner's split
	// candidate. Nil when fewer than two distinct keys were seen (a
	// single-key range cannot be split).
	MedianKey []byte
}

// Snapshot returns the tracked window's observations in deterministic
// order.
func (t *Tracker) Snapshot() []RangeObservation {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RangeObservation, 0, len(t.ranges))
	for rk, st := range t.ranges {
		obs := RangeObservation{
			Namespace: rk.namespace,
			Start:     []byte(rk.start),
			Ops:       st.ops,
			MedianKey: medianKey(st.sample, []byte(rk.start)),
		}
		out = append(out, obs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Namespace != out[j].Namespace {
			return out[i].Namespace < out[j].Namespace
		}
		return bytes.Compare(out[i].Start, out[j].Start) < 0
	})
	return out
}

// Reset clears the window.
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ranges = make(map[rangeKey]*rangeStats)
}

// Len returns how many distinct ranges have been observed.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ranges)
}

// medianKey returns the median distinct sampled key, provided it falls
// strictly inside the range (splitting at the range start would create
// an empty left half).
func medianKey(sample [][]byte, start []byte) []byte {
	if len(sample) == 0 {
		return nil
	}
	keys := make([][]byte, len(sample))
	copy(keys, sample)
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	distinct := keys[:1]
	for _, k := range keys[1:] {
		if !bytes.Equal(k, distinct[len(distinct)-1]) {
			distinct = append(distinct, k)
		}
	}
	if len(distinct) < 2 {
		return nil
	}
	m := distinct[len(distinct)/2]
	if bytes.Compare(m, start) <= 0 {
		return nil
	}
	return append([]byte(nil), m...)
}
