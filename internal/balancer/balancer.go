// Package balancer turns observed per-range load into rebalancing
// plans — the partitioning half of §3.3.1's "performance and failure
// models combined with current workload information will be used to
// automatically configure system parameters such as partitioning and
// replication". The coordinator tracks where requests actually land
// (Tracker); the planner (Plan) proposes range splits for hot spots
// and range moves from overloaded to underloaded nodes; the
// coordinator executes the plan with its MoveRange/Split primitives.
package balancer

import (
	"bytes"
	"fmt"
	"sort"
)

// RangeLoad is the observed demand on one partition range.
type RangeLoad struct {
	Namespace string
	// Start identifies the range (its inclusive lower bound; nil for
	// the first range).
	Start []byte
	// Replicas currently serving the range; Replicas[0] is the
	// primary.
	Replicas []string
	// Ops is the observed request count over the tracking window.
	Ops float64
	// SplitKey is a candidate key strictly inside the range (the
	// tracker's median sample); nil when the range cannot be split.
	SplitKey []byte
}

// ActionKind discriminates plan actions.
type ActionKind int

// Plan actions.
const (
	// ActionSplit divides a hot range at Action.At so its halves can
	// be placed independently.
	ActionSplit ActionKind = iota
	// ActionMove reassigns a range to Action.Target.
	ActionMove
)

// String implements fmt.Stringer.
func (k ActionKind) String() string {
	switch k {
	case ActionSplit:
		return "split"
	case ActionMove:
		return "move"
	default:
		return fmt.Sprintf("action(%d)", int(k))
	}
}

// Action is one step of a rebalancing plan.
type Action struct {
	Kind      ActionKind
	Namespace string
	// Start identifies the affected range.
	Start []byte
	// At is the split point (ActionSplit).
	At []byte
	// Target is the new replica group (ActionMove).
	Target []string
	// Reason explains the step for operator logs.
	Reason string
}

// String renders the action.
func (a Action) String() string {
	switch a.Kind {
	case ActionSplit:
		return fmt.Sprintf("split %s[%q] at %q (%s)", a.Namespace, a.Start, a.At, a.Reason)
	default:
		return fmt.Sprintf("move %s[%q] -> %v (%s)", a.Namespace, a.Start, a.Target, a.Reason)
	}
}

// Config tunes the planner.
type Config struct {
	// ImbalanceRatio triggers moves when the most loaded node exceeds
	// the mean node load by this factor (default 1.5).
	ImbalanceRatio float64
	// SplitFraction proposes splitting any single range carrying more
	// than this fraction of the mean node load (default 0.5) — a range
	// that hot cannot be balanced by moving it whole.
	SplitFraction float64
	// MaxMoves bounds moves per plan so rebalancing is incremental
	// (default 4).
	MaxMoves int
	// MinOps is the total-operation floor below which no plan is made:
	// an idle window carries no signal (default 100).
	MinOps float64
}

func (c Config) withDefaults() Config {
	if c.ImbalanceRatio <= 1 {
		c.ImbalanceRatio = 1.5
	}
	if c.SplitFraction <= 0 {
		c.SplitFraction = 0.5
	}
	if c.MaxMoves <= 0 {
		c.MaxMoves = 4
	}
	if c.MinOps <= 0 {
		c.MinOps = 100
	}
	return c
}

// Plan proposes rebalancing actions for the observed loads across the
// serving nodes. It is deterministic: identical inputs produce the
// identical plan. Splits are proposed first (they unlock finer moves
// on the next round); moves then shift whole ranges from the most
// loaded node to the least loaded until the imbalance ratio is met or
// MaxMoves is exhausted.
func Plan(loads []RangeLoad, nodes []string, cfg Config) []Action {
	cfg = cfg.withDefaults()
	if len(nodes) < 2 {
		return nil
	}
	var total float64
	for _, rl := range loads {
		total += rl.Ops
	}
	if total < cfg.MinOps {
		return nil
	}
	mean := total / float64(len(nodes))

	// Deterministic order regardless of caller's map iteration.
	loads = append([]RangeLoad(nil), loads...)
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].Namespace != loads[j].Namespace {
			return loads[i].Namespace < loads[j].Namespace
		}
		return bytes.Compare(loads[i].Start, loads[j].Start) < 0
	})

	var plan []Action

	// 1. Split ranges too hot to balance by moving.
	for _, rl := range loads {
		if rl.Ops > cfg.SplitFraction*mean && rl.SplitKey != nil {
			plan = append(plan, Action{
				Kind: ActionSplit, Namespace: rl.Namespace,
				Start: rl.Start, At: rl.SplitKey,
				Reason: fmt.Sprintf("range carries %.0f ops > %.0f (%.0f%% of mean node load)",
					rl.Ops, cfg.SplitFraction*mean, 100*cfg.SplitFraction),
			})
		}
	}

	// 2. Move ranges off overloaded nodes. Load is attributed to the
	// primary: writes land there and reads rotate, so the primary is
	// the capacity bottleneck under skew.
	nodeLoad := make(map[string]float64, len(nodes))
	for _, n := range nodes {
		nodeLoad[n] = 0
	}
	byPrimary := make(map[string][]int)
	for i, rl := range loads {
		if len(rl.Replicas) == 0 {
			continue
		}
		p := rl.Replicas[0]
		if _, serving := nodeLoad[p]; !serving {
			// Primary not in the serving set (e.g. being
			// decommissioned): every range it holds is a move candidate
			// charged to a virtual overloaded node.
			nodeLoad[p] = 0
		}
		nodeLoad[p] += rl.Ops
		byPrimary[p] = append(byPrimary[p], i)
	}

	moved := make(map[int]bool)
	for moves := 0; moves < cfg.MaxMoves; moves++ {
		hot, cold := extremes(nodeLoad, nodes)
		if hot == "" || cold == "" || hot == cold {
			break
		}
		if nodeLoad[hot] <= cfg.ImbalanceRatio*mean {
			break
		}
		// Hottest unmoved range on the hot node whose transfer helps.
		best, bestOps := -1, 0.0
		for _, i := range byPrimary[hot] {
			if moved[i] {
				continue
			}
			ops := loads[i].Ops
			// Don't overshoot: moving the range must not make the cold
			// node hotter than the hot node was.
			if nodeLoad[cold]+ops >= nodeLoad[hot] {
				continue
			}
			if ops > bestOps {
				best, bestOps = i, ops
			}
		}
		if best < 0 {
			break
		}
		rl := loads[best]
		target := retarget(rl.Replicas, hot, cold)
		plan = append(plan, Action{
			Kind: ActionMove, Namespace: rl.Namespace,
			Start: rl.Start, Target: target,
			Reason: fmt.Sprintf("node %s at %.0f ops > %.1fx mean %.0f; %s at %.0f",
				hot, nodeLoad[hot], cfg.ImbalanceRatio, mean, cold, nodeLoad[cold]),
		})
		moved[best] = true
		nodeLoad[hot] -= rl.Ops
		nodeLoad[cold] += rl.Ops
	}
	return plan
}

// extremes returns the most and least loaded serving nodes
// (deterministic: ties break on node ID).
func extremes(load map[string]float64, nodes []string) (hot, cold string) {
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for _, n := range sorted {
		if hot == "" || load[n] > load[hot] {
			hot = n
		}
		if cold == "" || load[n] < load[cold] {
			cold = n
		}
	}
	// A non-serving primary (decommission case) outranks any serving
	// node as the move source.
	var extra []string
	for n := range load {
		if !contains(sorted, n) {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		if load[n] > 0 {
			hot = n
			break
		}
	}
	return hot, cold
}

// retarget shifts a range's load from one node to another while
// preserving the replication factor. If the target is already a
// secondary the two swap roles (the cheapest move: the secondary
// already holds the data); otherwise the target replaces the source in
// place. When the source is not in the group at all, the target takes
// over as primary.
func retarget(replicas []string, from, to string) []string {
	out := append([]string(nil), replicas...)
	fi, ti := -1, -1
	for i, id := range out {
		if id == from {
			fi = i
		}
		if id == to {
			ti = i
		}
	}
	switch {
	case fi >= 0 && ti >= 0:
		out[fi], out[ti] = out[ti], out[fi]
	case fi >= 0:
		out[fi] = to
	case ti >= 0:
		out[0], out[ti] = out[ti], out[0]
	default:
		out = append([]string{to}, out[1:]...)
	}
	return out
}

func contains(sorted []string, n string) bool {
	i := sort.SearchStrings(sorted, n)
	return i < len(sorted) && sorted[i] == n
}
