package keycodec

import (
	"bytes"
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	cases := [][]any{
		{nil},
		{true}, {false},
		{int64(0)}, {int64(-1)}, {int64(1)}, {int64(math.MinInt64)}, {int64(math.MaxInt64)},
		{3.14}, {-2.71}, {0.0},
		{"hello"}, {""}, {"with\x00null"},
		{[]byte{1, 2, 3}}, {[]byte{}}, {[]byte{0, 0xFF, 0}},
		{time.Date(2009, 1, 4, 12, 0, 0, 0, time.UTC)},
		{"user:42", int64(19840105), "friend:7"},
		{int64(5), "b", true, 1.5},
	}
	for _, in := range cases {
		enc, err := Encode(in...)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		if len(out) != len(in) {
			t.Fatalf("Decode(%v) = %v: length mismatch", in, out)
		}
		for i := range in {
			want := normalize(in[i])
			got := normalize(out[i])
			if !reflect.DeepEqual(got, want) {
				t.Errorf("element %d: got %#v want %#v", i, got, want)
			}
		}
	}
}

// normalize maps encoder-equivalent values onto their decoded forms.
func normalize(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case []byte:
		if len(x) == 0 {
			return []byte{}
		}
		return x
	default:
		return v
	}
}

func TestIntOrdering(t *testing.T) {
	vals := []int64{math.MinInt64, -1000, -1, 0, 1, 42, 5000, math.MaxInt64}
	var prev []byte
	for i, v := range vals {
		enc := AppendInt(nil, v)
		if i > 0 && bytes.Compare(prev, enc) >= 0 {
			t.Errorf("ordering broken at %d (%d)", i, v)
		}
		prev = enc
	}
}

func TestFloatOrdering(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1, -0.5, 0, 0.5, 1, 1e300, math.Inf(1)}
	var prev []byte
	for i, v := range vals {
		enc := AppendFloat(nil, v)
		if i > 0 && bytes.Compare(prev, enc) >= 0 {
			t.Errorf("float ordering broken at %d (%g)", i, v)
		}
		prev = enc
	}
}

func TestStringOrderingMatchesNative(t *testing.T) {
	strs := []string{"", "a", "aa", "ab", "b", "ba", "z", "a\x00b", "a\x00", "a\x01"}
	encoded := make([][]byte, len(strs))
	for i, s := range strs {
		encoded[i] = AppendString(nil, s)
	}
	sortedStrs := append([]string(nil), strs...)
	sort.Strings(sortedStrs)
	sort.Slice(encoded, func(i, j int) bool { return bytes.Compare(encoded[i], encoded[j]) < 0 })
	for i := range sortedStrs {
		dec, err := Decode(encoded[i])
		if err != nil {
			t.Fatal(err)
		}
		if dec[0].(string) != sortedStrs[i] {
			t.Errorf("position %d: encoded order gives %q, native order gives %q", i, dec[0], sortedStrs[i])
		}
	}
}

func TestTupleOrderingIsLexicographic(t *testing.T) {
	// (user, bday) tuples must sort by user then bday — the §3.2
	// birthday-index layout.
	a := MustEncode("alice", int64(100))
	b := MustEncode("alice", int64(200))
	c := MustEncode("bob", int64(50))
	if !(bytes.Compare(a, b) < 0 && bytes.Compare(b, c) < 0) {
		t.Fatal("tuple ordering is not lexicographic")
	}
}

func TestPrefixIsolation(t *testing.T) {
	// All keys with first element "alice" must be contiguous and
	// strictly between prefix and PrefixEnd(prefix).
	prefix := MustEncode("alice")
	inside := [][]byte{
		MustEncode("alice", int64(math.MinInt64)),
		MustEncode("alice", "zzzz"),
		MustEncode("alice", int64(math.MaxInt64)),
	}
	outside := [][]byte{
		MustEncode("alicf"),
		MustEncode("alic"),
		MustEncode("bob", int64(0)),
	}
	end := PrefixEnd(prefix)
	for _, k := range inside {
		if bytes.Compare(k, prefix) < 0 || bytes.Compare(k, end) >= 0 {
			t.Errorf("key %x not inside prefix range", k)
		}
	}
	for _, k := range outside {
		if bytes.HasPrefix(k, prefix) {
			t.Errorf("key %x unexpectedly has prefix", k)
		}
	}
}

func TestPrefixEnd(t *testing.T) {
	cases := []struct{ in, want []byte }{
		{[]byte{0x01}, []byte{0x02}},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{0x00, 0x01, 0xFE}, []byte{0x00, 0x01, 0xFF}},
	}
	for _, c := range cases {
		if got := PrefixEnd(c.in); !bytes.Equal(got, c.want) {
			t.Errorf("PrefixEnd(%x) = %x, want %x", c.in, got, c.want)
		}
	}
}

func TestCrossTypeOrderingStable(t *testing.T) {
	// null < bool < int < float < time < string < bytes
	seq := [][]byte{
		AppendNull(nil),
		AppendBool(nil, false),
		AppendBool(nil, true),
		AppendInt(nil, math.MaxInt64),
		AppendFloat(nil, math.Inf(1)),
		AppendTime(nil, time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)),
		AppendString(nil, "x"),
		AppendBytes(nil, []byte{0xFF}),
	}
	for i := 1; i < len(seq); i++ {
		if bytes.Compare(seq[i-1], seq[i]) >= 0 {
			t.Errorf("cross-type ordering broken between %d and %d", i-1, i)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	bad := [][]byte{
		{0x10, 1, 2},       // short int
		{0x30, 'a'},        // unterminated string
		{0x30, 0x00, 0x02}, // bad escape
		{0x7F},             // unknown tag
		{0x20, 1, 2, 3},    // short time
		{0x18, 1},          // short float
		{0x38, 0x00},       // truncated escape
	}
	for _, b := range bad {
		if _, err := Decode(b); err == nil {
			t.Errorf("Decode(%x) succeeded, want error", b)
		}
	}
}

func TestEncodeUnsupported(t *testing.T) {
	if _, err := Encode(struct{}{}); err == nil {
		t.Fatal("Encode(struct{}{}) should fail")
	}
	if _, err := Encode(uint64(math.MaxUint64)); err == nil {
		t.Fatal("Encode(MaxUint64) should fail")
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustEncode did not panic on bad input")
		}
	}()
	MustEncode(make(chan int))
}

// Property: integer order is preserved by encoding.
func TestQuickIntOrder(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := AppendInt(nil, a), AppendInt(nil, b)
		switch {
		case a < b:
			return bytes.Compare(ea, eb) < 0
		case a > b:
			return bytes.Compare(ea, eb) > 0
		default:
			return bytes.Equal(ea, eb)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: string order is preserved by encoding.
func TestQuickStringOrder(t *testing.T) {
	f := func(a, b string) bool {
		ea, eb := AppendString(nil, a), AppendString(nil, b)
		switch {
		case a < b:
			return bytes.Compare(ea, eb) < 0
		case a > b:
			return bytes.Compare(ea, eb) > 0
		default:
			return bytes.Equal(ea, eb)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: round trip through Encode/Decode is the identity on
// (int64, string, bool) tuples.
func TestQuickRoundTrip(t *testing.T) {
	f := func(i int64, s string, b bool) bool {
		enc := MustEncode(i, s, b)
		dec, err := Decode(enc)
		if err != nil || len(dec) != 3 {
			return false
		}
		return dec[0] == i && dec[1] == s && dec[2] == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: tuple encoding sorts lexicographically element-wise for
// same-shape (string,int64) tuples.
func TestQuickTupleOrder(t *testing.T) {
	f := func(s1 string, i1 int64, s2 string, i2 int64) bool {
		a := MustEncode(s1, i1)
		b := MustEncode(s2, i2)
		var want int
		switch {
		case s1 < s2:
			want = -1
		case s1 > s2:
			want = 1
		case i1 < i2:
			want = -1
		case i1 > i2:
			want = 1
		}
		got := bytes.Compare(a, b)
		if got > 0 {
			got = 1
		} else if got < 0 {
			got = -1
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeTuple(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = Encode("user:12345", int64(i), "friend:6789")
	}
}

func BenchmarkDecodeTuple(b *testing.B) {
	enc := MustEncode("user:12345", int64(42), "friend:6789")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Decode(enc)
	}
}

func TestAppendDescReversesOrder(t *testing.T) {
	// Ascending ints become descending byte order under AppendDesc.
	vals := []int64{math.MinInt64, -5, 0, 7, math.MaxInt64}
	var prev []byte
	for i, v := range vals {
		enc, err := AppendDesc(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && bytes.Compare(prev, enc) <= 0 {
			t.Fatalf("desc ordering broken at %d (%d)", i, v)
		}
		prev = enc
	}
	// Strings too, including the prefix case.
	strs := []string{"", "ab", "abc", "b"}
	prev = nil
	for i, s := range strs {
		enc, err := AppendDesc(nil, s)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && bytes.Compare(prev, enc) <= 0 {
			t.Fatalf("desc string ordering broken at %q", s)
		}
		prev = enc
	}
}

func TestQuickAppendDescReverses(t *testing.T) {
	f := func(a, b int64) bool {
		ea, _ := AppendDesc(nil, a)
		eb, _ := AppendDesc(nil, b)
		switch {
		case a < b:
			return bytes.Compare(ea, eb) > 0
		case a > b:
			return bytes.Compare(ea, eb) < 0
		default:
			return bytes.Equal(ea, eb)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendDescUnsupported(t *testing.T) {
	if _, err := AppendDesc(nil, struct{}{}); err == nil {
		t.Fatal("AppendDesc accepted unsupported type")
	}
}
