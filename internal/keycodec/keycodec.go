// Package keycodec implements an order-preserving binary encoding for
// composite keys. SCADS indices are "bounded contiguous ranges of an
// index" (paper §3.1), so every index key — for example
// (userID, friendBirthday, friendID) — must encode into bytes whose
// lexicographic order equals the tuple's natural order. That property
// is what makes a query a single bounded range scan.
//
// Encoding scheme (one byte of type tag per element, tags ordered so
// that values of different types still sort deterministically):
//
//	null:   0x01
//	false:  0x02, true: 0x03
//	int64:  0x10 + 8 bytes big-endian with sign bit flipped
//	float64:0x18 + 8 bytes order-normalised IEEE-754
//	time:   0x20 + int64 UnixNano encoding
//	string: 0x30 + escaped bytes + 0x00 0x01 terminator
//	bytes:  0x38 + escaped bytes + 0x00 0x01 terminator
//
// Strings/bytes escape embedded 0x00 as 0x00 0xFF so the terminator
// (0x00 0x01) sorts before any continuation, preserving prefix order.
package keycodec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Type tags. Their numeric order defines cross-type sort order.
const (
	tagNull   byte = 0x01
	tagFalse  byte = 0x02
	tagTrue   byte = 0x03
	tagInt    byte = 0x10
	tagFloat  byte = 0x18
	tagTime   byte = 0x20
	tagString byte = 0x30
	tagBytes  byte = 0x38
)

// ErrCorrupt is returned when a key cannot be decoded.
var ErrCorrupt = errors.New("keycodec: corrupt key encoding")

// AppendNull appends an encoded null to dst.
func AppendNull(dst []byte) []byte { return append(dst, tagNull) }

// AppendBool appends an encoded bool to dst.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, tagTrue)
	}
	return append(dst, tagFalse)
}

// AppendInt appends an encoded int64 to dst.
func AppendInt(dst []byte, v int64) []byte {
	dst = append(dst, tagInt)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v)^(1<<63))
	return append(dst, buf[:]...)
}

// AppendFloat appends an encoded float64 to dst. NaN encodes below all
// other floats so ordering stays total.
func AppendFloat(dst []byte, v float64) []byte {
	dst = append(dst, tagFloat)
	bits := math.Float64bits(v)
	if math.IsNaN(v) {
		bits = 0
	} else if bits&(1<<63) != 0 {
		bits = ^bits // negative: flip everything
	} else {
		bits |= 1 << 63 // non-negative: flip sign bit
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], bits)
	return append(dst, buf[:]...)
}

// AppendTime appends an encoded time (nanosecond precision, UTC) to dst.
func AppendTime(dst []byte, v time.Time) []byte {
	dst = append(dst, tagTime)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v.UnixNano())^(1<<63))
	return append(dst, buf[:]...)
}

// AppendString appends an encoded string to dst.
func AppendString(dst []byte, v string) []byte {
	dst = append(dst, tagString)
	return appendEscaped(dst, []byte(v))
}

// AppendBytes appends an encoded byte slice to dst.
func AppendBytes(dst []byte, v []byte) []byte {
	dst = append(dst, tagBytes)
	return appendEscaped(dst, v)
}

func appendEscaped(dst, v []byte) []byte {
	for _, b := range v {
		if b == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, b)
		}
	}
	return append(dst, 0x00, 0x01)
}

// Encode encodes the given tuple elements into a single ordered key.
// Supported element types: nil, bool, int, int32, int64, float64,
// time.Time, string, []byte.
func Encode(elems ...any) ([]byte, error) {
	return Append(nil, elems...)
}

// MustEncode is Encode but panics on unsupported element types. It is
// strictly for statically known tuples (test fixtures, compiled-in
// constants) — the regexp.MustCompile convention. Any path encoding
// caller- or wire-supplied values must use Encode/Append and return
// the error; no library code calls MustEncode.
func MustEncode(elems ...any) []byte {
	b, err := Encode(elems...)
	if err != nil {
		panic(err)
	}
	return b
}

// Append appends the encoding of the tuple elements to dst.
func Append(dst []byte, elems ...any) ([]byte, error) {
	for _, e := range elems {
		switch v := e.(type) {
		case nil:
			dst = AppendNull(dst)
		case bool:
			dst = AppendBool(dst, v)
		case int:
			dst = AppendInt(dst, int64(v))
		case int32:
			dst = AppendInt(dst, int64(v))
		case int64:
			dst = AppendInt(dst, v)
		case uint64:
			if v > math.MaxInt64 {
				return nil, fmt.Errorf("keycodec: uint64 %d overflows int64 key element", v)
			}
			dst = AppendInt(dst, int64(v))
		case float64:
			dst = AppendFloat(dst, v)
		case time.Time:
			dst = AppendTime(dst, v)
		case string:
			dst = AppendString(dst, v)
		case []byte:
			dst = AppendBytes(dst, v)
		default:
			return nil, fmt.Errorf("keycodec: unsupported key element type %T", e)
		}
	}
	return dst, nil
}

// Decode decodes all tuple elements from key.
func Decode(key []byte) ([]any, error) {
	var out []any
	for len(key) > 0 {
		v, rest, err := decodeOne(key)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		key = rest
	}
	return out, nil
}

func decodeOne(key []byte) (any, []byte, error) {
	if len(key) == 0 {
		return nil, nil, ErrCorrupt
	}
	tag, rest := key[0], key[1:]
	switch tag {
	case tagNull:
		return nil, rest, nil
	case tagFalse:
		return false, rest, nil
	case tagTrue:
		return true, rest, nil
	case tagInt:
		if len(rest) < 8 {
			return nil, nil, ErrCorrupt
		}
		u := binary.BigEndian.Uint64(rest[:8]) ^ (1 << 63)
		return int64(u), rest[8:], nil
	case tagFloat:
		if len(rest) < 8 {
			return nil, nil, ErrCorrupt
		}
		bits := binary.BigEndian.Uint64(rest[:8])
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return math.Float64frombits(bits), rest[8:], nil
	case tagTime:
		if len(rest) < 8 {
			return nil, nil, ErrCorrupt
		}
		u := binary.BigEndian.Uint64(rest[:8]) ^ (1 << 63)
		return time.Unix(0, int64(u)).UTC(), rest[8:], nil
	case tagString:
		raw, rest2, err := decodeEscaped(rest)
		if err != nil {
			return nil, nil, err
		}
		return string(raw), rest2, nil
	case tagBytes:
		raw, rest2, err := decodeEscaped(rest)
		if err != nil {
			return nil, nil, err
		}
		return raw, rest2, nil
	default:
		return nil, nil, fmt.Errorf("keycodec: unknown tag 0x%02x: %w", tag, ErrCorrupt)
	}
}

func decodeEscaped(b []byte) (raw, rest []byte, err error) {
	out := make([]byte, 0, len(b))
	for i := 0; i < len(b); i++ {
		if b[i] != 0x00 {
			out = append(out, b[i])
			continue
		}
		if i+1 >= len(b) {
			return nil, nil, ErrCorrupt
		}
		switch b[i+1] {
		case 0xFF:
			out = append(out, 0x00)
			i++
		case 0x01:
			return out, b[i+2:], nil
		default:
			return nil, nil, ErrCorrupt
		}
	}
	return nil, nil, ErrCorrupt
}

// AppendDesc appends the encoding of one element with every byte
// complemented, which reverses its sort order relative to other
// Desc-encoded elements of the same type. Indexes use this for ORDER BY
// ... DESC columns so that every scan stays a forward scan.
func AppendDesc(dst []byte, elem any) ([]byte, error) {
	tmp, err := Append(nil, elem)
	if err != nil {
		return nil, err
	}
	for _, b := range tmp {
		dst = append(dst, ^b)
	}
	return dst, nil
}

// PrefixEnd returns the smallest key greater than every key having the
// given prefix, suitable as an exclusive upper bound for a range scan.
// It returns nil when no such bound exists (prefix is all 0xFF).
func PrefixEnd(prefix []byte) []byte {
	end := make([]byte, len(prefix))
	copy(end, prefix)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] < 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
