// Package row defines the typed tuple layer of SCADS: schemas declare
// tables with typed columns, rows are column-name → value maps, and a
// binary codec turns rows into the opaque values the storage engine
// holds. Index keys are built from rows with the order-preserving
// keycodec, so "ORDER BY birthday" is just a byte-ordered scan.
package row

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"scads/internal/keycodec"
)

// Type enumerates column types.
type Type int

// Supported column types.
const (
	String Type = iota
	Int
	Float
	Bool
	Time
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Time:
		return "time"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// ParseType maps DDL type names to Types.
func ParseType(s string) (Type, error) {
	switch s {
	case "string", "text", "varchar":
		return String, nil
	case "int", "integer", "bigint":
		return Int, nil
	case "float", "double":
		return Float, nil
	case "bool", "boolean":
		return Bool, nil
	case "time", "timestamp", "datetime":
		return Time, nil
	default:
		return 0, fmt.Errorf("row: unknown type %q", s)
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Type Type
}

// Row is one tuple. Values must be string, int64, float64, bool or
// time.Time according to the column type.
type Row map[string]any

// Clone returns a shallow copy (values are immutable types).
func (r Row) Clone() Row {
	c := make(Row, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// CheckType validates that v matches t.
func CheckType(t Type, v any) error {
	ok := false
	switch t {
	case String:
		_, ok = v.(string)
	case Int:
		_, ok = v.(int64)
	case Float:
		_, ok = v.(float64)
	case Bool:
		_, ok = v.(bool)
	case Time:
		_, ok = v.(time.Time)
	}
	if !ok {
		return fmt.Errorf("row: value %v (%T) does not match column type %s", v, v, t)
	}
	return nil
}

// Normalize widens Go literals into canonical row values (int → int64,
// float32 → float64) so application code can pass natural types.
func Normalize(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case uint32:
		return int64(x)
	case float32:
		return float64(x)
	default:
		return v
	}
}

// ErrCorrupt is returned when an encoded row fails to decode.
var ErrCorrupt = errors.New("row: corrupt encoding")

// Value type tags of the binary row codec. Booleans encode their value
// into the tag itself.
const (
	valString byte = 0x01
	valInt    byte = 0x02
	valFloat  byte = 0x03
	valFalse  byte = 0x04
	valTrue   byte = 0x05
	valTime   byte = 0x06
)

// AppendEncode appends the binary encoding of r to dst and returns
// the extended slice:
//
//	columnCount uvarint
//	per column, in sorted name order:
//	  nameLen uvarint | name | tag byte | value
//
// where value is: uvarint length + bytes (string), zigzag varint
// (int), 8-byte little-endian IEEE-754 bits (float), nothing (bool —
// the tag carries it), or zigzag unix seconds + uvarint nanoseconds
// (time). Column order is canonicalised so equal rows encode
// identically, which the durability and contention layers rely on for
// byte-equality comparisons.
//
// Time codec contract: a time column stores the INSTANT only — the
// zone offset is not encoded, and Decode materialises the instant in
// UTC. Two encodings of the same instant in different zones are
// byte-identical (a feature for the equality uses above), and
// comparisons must use time.Time.Equal (as row.Equal does), never ==.
func AppendEncode(dst []byte, r Row) ([]byte, error) {
	names := make([]string, 0, len(r))
	for k := range r {
		names = append(names, k)
	}
	sort.Strings(names)
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, n := range names {
		dst = binary.AppendUvarint(dst, uint64(len(n)))
		dst = append(dst, n...)
		switch v := r[n].(type) {
		case string:
			dst = append(dst, valString)
			dst = binary.AppendUvarint(dst, uint64(len(v)))
			dst = append(dst, v...)
		case int64:
			dst = append(dst, valInt)
			dst = appendZigzag(dst, v)
		case float64:
			dst = append(dst, valFloat)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		case bool:
			if v {
				dst = append(dst, valTrue)
			} else {
				dst = append(dst, valFalse)
			}
		case time.Time:
			dst = append(dst, valTime)
			dst = appendZigzag(dst, v.Unix())
			dst = binary.AppendUvarint(dst, uint64(v.Nanosecond()))
		default:
			return nil, fmt.Errorf("row: encode: column %q has unsupported type %T", n, r[n])
		}
	}
	return dst, nil
}

// Encode serializes r. Column order is canonicalised so equal rows
// encode identically.
func Encode(r Row) ([]byte, error) {
	return AppendEncode(make([]byte, 0, encodedSizeHint(r)), r)
}

func encodedSizeHint(r Row) int {
	n := 2
	for k, v := range r {
		n += len(k) + 12
		if s, ok := v.(string); ok {
			n += len(s)
		}
	}
	return n
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v)<<1^uint64(v>>63))
}

// Decode deserializes a row produced by Encode. Every length and
// count is validated against the bytes present before use, so corrupt
// or truncated input returns ErrCorrupt rather than panicking or
// over-allocating.
func Decode(b []byte) (Row, error) {
	count, n := binary.Uvarint(b)
	// A column costs at least two bytes (name length + type tag), so a
	// count past remaining/2 is corrupt; the map size hint is capped so
	// a hostile count cannot drive a huge allocation either way.
	if n <= 0 || count > uint64(len(b)-n)/2 {
		return nil, fmt.Errorf("row: decode: bad column count: %w", ErrCorrupt)
	}
	b = b[n:]
	hint := count
	if hint > 4096 {
		hint = 4096
	}
	r := make(Row, hint)
	for i := uint64(0); i < count; i++ {
		nameLen, n := binary.Uvarint(b)
		if n <= 0 || nameLen > uint64(len(b)-n) {
			return nil, fmt.Errorf("row: decode: bad column name length: %w", ErrCorrupt)
		}
		b = b[n:]
		name := string(b[:nameLen])
		b = b[nameLen:]
		if len(b) == 0 {
			return nil, fmt.Errorf("row: decode: missing value tag for %q: %w", name, ErrCorrupt)
		}
		tag := b[0]
		b = b[1:]
		switch tag {
		case valString:
			slen, n := binary.Uvarint(b)
			if n <= 0 || slen > uint64(len(b)-n) {
				return nil, fmt.Errorf("row: decode: bad string length for %q: %w", name, ErrCorrupt)
			}
			b = b[n:]
			r[name] = string(b[:slen])
			b = b[slen:]
		case valInt:
			v, n, err := readZigzag(b)
			if err != nil {
				return nil, fmt.Errorf("row: decode: bad int for %q: %w", name, err)
			}
			b = b[n:]
			r[name] = v
		case valFloat:
			if len(b) < 8 {
				return nil, fmt.Errorf("row: decode: short float for %q: %w", name, ErrCorrupt)
			}
			r[name] = math.Float64frombits(binary.LittleEndian.Uint64(b))
			b = b[8:]
		case valFalse:
			r[name] = false
		case valTrue:
			r[name] = true
		case valTime:
			sec, n, err := readZigzag(b)
			if err != nil {
				return nil, fmt.Errorf("row: decode: bad time seconds for %q: %w", name, err)
			}
			b = b[n:]
			nsec, n2 := binary.Uvarint(b)
			if n2 <= 0 || nsec > 999999999 {
				return nil, fmt.Errorf("row: decode: bad time nanoseconds for %q: %w", name, ErrCorrupt)
			}
			b = b[n2:]
			r[name] = time.Unix(sec, int64(nsec)).UTC()
		default:
			return nil, fmt.Errorf("row: decode: unknown value tag 0x%02x for %q: %w", tag, name, ErrCorrupt)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("row: decode: %d trailing bytes: %w", len(b), ErrCorrupt)
	}
	return r, nil
}

func readZigzag(b []byte) (int64, int, error) {
	u, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, ErrCorrupt
	}
	return int64(u>>1) ^ -int64(u&1), n, nil
}

// EncodeKey builds an order-preserving key from the named columns of r.
func EncodeKey(r Row, cols []string) ([]byte, error) {
	vals := make([]any, len(cols))
	for i, c := range cols {
		v, ok := r[c]
		if !ok {
			return nil, fmt.Errorf("row: key column %q missing from row", c)
		}
		vals[i] = v
	}
	return keycodec.Encode(vals...)
}

// Project returns a new row with only the named columns (all columns
// when cols is empty).
func Project(r Row, cols []string) Row {
	if len(cols) == 0 {
		return r.Clone()
	}
	out := make(Row, len(cols))
	for _, c := range cols {
		if v, ok := r[c]; ok {
			out[c] = v
		}
	}
	return out
}

// Equal reports deep equality of two rows (time values compared with
// time.Time.Equal).
func Equal(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			return false
		}
		ta, aIsTime := va.(time.Time)
		tb, bIsTime := vb.(time.Time)
		if aIsTime || bIsTime {
			if !aIsTime || !bIsTime || !ta.Equal(tb) {
				return false
			}
			continue
		}
		if va != vb {
			return false
		}
	}
	return true
}
