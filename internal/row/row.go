// Package row defines the typed tuple layer of SCADS: schemas declare
// tables with typed columns, rows are column-name → value maps, and a
// binary codec turns rows into the opaque values the storage engine
// holds. Index keys are built from rows with the order-preserving
// keycodec, so "ORDER BY birthday" is just a byte-ordered scan.
package row

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"scads/internal/keycodec"
)

// Type enumerates column types.
type Type int

// Supported column types.
const (
	String Type = iota
	Int
	Float
	Bool
	Time
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Time:
		return "time"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// ParseType maps DDL type names to Types.
func ParseType(s string) (Type, error) {
	switch s {
	case "string", "text", "varchar":
		return String, nil
	case "int", "integer", "bigint":
		return Int, nil
	case "float", "double":
		return Float, nil
	case "bool", "boolean":
		return Bool, nil
	case "time", "timestamp", "datetime":
		return Time, nil
	default:
		return 0, fmt.Errorf("row: unknown type %q", s)
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Type Type
}

// Row is one tuple. Values must be string, int64, float64, bool or
// time.Time according to the column type.
type Row map[string]any

// Clone returns a shallow copy (values are immutable types).
func (r Row) Clone() Row {
	c := make(Row, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// CheckType validates that v matches t.
func CheckType(t Type, v any) error {
	ok := false
	switch t {
	case String:
		_, ok = v.(string)
	case Int:
		_, ok = v.(int64)
	case Float:
		_, ok = v.(float64)
	case Bool:
		_, ok = v.(bool)
	case Time:
		_, ok = v.(time.Time)
	}
	if !ok {
		return fmt.Errorf("row: value %v (%T) does not match column type %s", v, v, t)
	}
	return nil
}

// Normalize widens Go literals into canonical row values (int → int64,
// float32 → float64) so application code can pass natural types.
func Normalize(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case uint32:
		return int64(x)
	case float32:
		return float64(x)
	default:
		return v
	}
}

func init() {
	gob.Register(time.Time{})
}

// Encode serializes r. Column order is canonicalised so equal rows
// encode identically.
func Encode(r Row) ([]byte, error) {
	names := make([]string, 0, len(r))
	for k := range r {
		names = append(names, k)
	}
	sort.Strings(names)
	flat := make([]any, 0, len(r)*2)
	for _, n := range names {
		flat = append(flat, n, r[n])
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(flat); err != nil {
		return nil, fmt.Errorf("row: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a row produced by Encode.
func Decode(b []byte) (Row, error) {
	var flat []any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&flat); err != nil {
		return nil, fmt.Errorf("row: decode: %w", err)
	}
	if len(flat)%2 != 0 {
		return nil, fmt.Errorf("row: decode: odd element count %d", len(flat))
	}
	r := make(Row, len(flat)/2)
	for i := 0; i < len(flat); i += 2 {
		name, ok := flat[i].(string)
		if !ok {
			return nil, fmt.Errorf("row: decode: non-string column name %v", flat[i])
		}
		r[name] = flat[i+1]
	}
	return r, nil
}

// EncodeKey builds an order-preserving key from the named columns of r.
func EncodeKey(r Row, cols []string) ([]byte, error) {
	vals := make([]any, len(cols))
	for i, c := range cols {
		v, ok := r[c]
		if !ok {
			return nil, fmt.Errorf("row: key column %q missing from row", c)
		}
		vals[i] = v
	}
	return keycodec.Encode(vals...)
}

// Project returns a new row with only the named columns (all columns
// when cols is empty).
func Project(r Row, cols []string) Row {
	if len(cols) == 0 {
		return r.Clone()
	}
	out := make(Row, len(cols))
	for _, c := range cols {
		if v, ok := r[c]; ok {
			out[c] = v
		}
	}
	return out
}

// Equal reports deep equality of two rows (time values compared with
// time.Time.Equal).
func Equal(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			return false
		}
		ta, aIsTime := va.(time.Time)
		tb, bIsTime := vb.(time.Time)
		if aIsTime || bIsTime {
			if !aIsTime || !bIsTime || !ta.Equal(tb) {
				return false
			}
			continue
		}
		if va != vb {
			return false
		}
	}
	return true
}
