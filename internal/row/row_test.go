package row

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := Row{
		"id":     "user:42",
		"age":    int64(30),
		"score":  1.5,
		"active": true,
		"joined": time.Date(2008, 6, 1, 0, 0, 0, 0, time.UTC),
	}
	enc, err := Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(r, got) {
		t.Fatalf("round trip mismatch: %v vs %v", r, got)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	r1 := Row{"a": int64(1), "b": "x", "c": true}
	r2 := Row{"c": true, "b": "x", "a": int64(1)}
	e1, _ := Encode(r1)
	e2, _ := Encode(r2)
	if !bytes.Equal(e1, e2) {
		t.Fatal("equal rows encoded differently")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestCheckType(t *testing.T) {
	ok := []struct {
		t Type
		v any
	}{
		{String, "s"}, {Int, int64(1)}, {Float, 1.5}, {Bool, true}, {Time, time.Now()},
	}
	for _, c := range ok {
		if err := CheckType(c.t, c.v); err != nil {
			t.Errorf("CheckType(%v, %v): %v", c.t, c.v, err)
		}
	}
	bad := []struct {
		t Type
		v any
	}{
		{String, 1}, {Int, "1"}, {Int, 1}, {Float, int64(1)}, {Bool, "true"}, {Time, int64(0)},
	}
	for _, c := range bad {
		if err := CheckType(c.t, c.v); err == nil {
			t.Errorf("CheckType(%v, %T) accepted", c.t, c.v)
		}
	}
}

func TestNormalize(t *testing.T) {
	if Normalize(5).(int64) != 5 {
		t.Fatal("int not widened")
	}
	if Normalize(float32(1.5)).(float64) != 1.5 {
		t.Fatal("float32 not widened")
	}
	if Normalize("s").(string) != "s" {
		t.Fatal("string changed")
	}
}

func TestParseType(t *testing.T) {
	for s, want := range map[string]Type{
		"string": String, "text": String, "int": Int, "bigint": Int,
		"float": Float, "bool": Bool, "time": Time, "timestamp": Time,
	} {
		got, err := ParseType(s)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Fatal("unknown type parsed")
	}
}

func TestTypeString(t *testing.T) {
	for ty, want := range map[Type]string{String: "string", Int: "int", Float: "float", Bool: "bool", Time: "time"} {
		if ty.String() != want {
			t.Errorf("%v.String() = %q", ty, ty.String())
		}
	}
}

func TestEncodeKeyOrdering(t *testing.T) {
	mk := func(user string, bday int64) []byte {
		k, err := EncodeKey(Row{"user": user, "bday": bday}, []string{"user", "bday"})
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	a := mk("alice", 100)
	b := mk("alice", 200)
	c := mk("bob", 50)
	if !(bytes.Compare(a, b) < 0 && bytes.Compare(b, c) < 0) {
		t.Fatal("key ordering not lexicographic by column list")
	}
	if _, err := EncodeKey(Row{"user": "x"}, []string{"missing"}); err == nil {
		t.Fatal("missing key column accepted")
	}
}

func TestProject(t *testing.T) {
	r := Row{"a": int64(1), "b": "x", "c": true}
	p := Project(r, []string{"a", "c"})
	if len(p) != 2 || p["a"] != int64(1) || p["c"] != true {
		t.Fatalf("Project = %v", p)
	}
	all := Project(r, nil)
	if !Equal(all, r) {
		t.Fatal("empty projection is not identity")
	}
	// Projection is a copy.
	all["a"] = int64(9)
	if r["a"] != int64(1) {
		t.Fatal("Project shares storage")
	}
}

func TestEqualTimes(t *testing.T) {
	utc := time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)
	other := utc.In(time.FixedZone("X", 3600))
	if !Equal(Row{"t": utc}, Row{"t": other}) {
		t.Fatal("equal instants in different zones not Equal")
	}
	if Equal(Row{"t": utc}, Row{"t": utc.Add(time.Second)}) {
		t.Fatal("different instants Equal")
	}
	if Equal(Row{"t": utc}, Row{"t": "2009"}) {
		t.Fatal("time equal to string")
	}
	if Equal(Row{"a": int64(1)}, Row{"b": int64(1)}) {
		t.Fatal("different keys Equal")
	}
	if Equal(Row{"a": int64(1)}, Row{"a": int64(1), "b": int64(2)}) {
		t.Fatal("different sizes Equal")
	}
}

// Property: Encode/Decode round trip is identity for arbitrary typed
// rows.
func TestQuickRoundTrip(t *testing.T) {
	f := func(s string, i int64, fl float64, b bool) bool {
		r := Row{"s": s, "i": i, "f": fl, "b": b}
		enc, err := Encode(r)
		if err != nil {
			return false
		}
		got, err := Decode(enc)
		if err != nil {
			return false
		}
		return Equal(r, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	r := Row{"id": "user:12345", "name": "Alice Smith", "birthday": int64(19840105), "active": true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	r := Row{"id": "user:12345", "name": "Alice Smith", "birthday": int64(19840105), "active": true}
	enc, _ := Encode(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
