package storage

import (
	"fmt"
	"testing"

	"scads/internal/record"
)

func openMemNS(t *testing.T) *Namespace {
	t.Helper()
	e, err := Open(Options{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	ns, err := e.Namespace("tbl_users")
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

func TestApplyWatermarkAdvancesPerAcceptedRecord(t *testing.T) {
	ns := openMemNS(t)
	_, seq0 := ns.ApplyWatermark()
	if seq0 != 0 {
		t.Fatalf("fresh namespace watermark = %d", seq0)
	}
	for i := 0; i < 5; i++ {
		if _, err := ns.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	epoch, seq := ns.ApplyWatermark()
	if seq != 5 {
		t.Fatalf("watermark = %d, want 5", seq)
	}
	// A rejected (superseded) record does not advance the watermark.
	if err := ns.Apply(record.Record{Key: []byte("k00"), Value: []byte("old"), Version: 1}); err != nil {
		t.Fatal(err)
	}
	if _, after := ns.ApplyWatermark(); after != seq {
		t.Fatalf("superseded apply advanced watermark %d -> %d", seq, after)
	}
	if epoch == 0 {
		t.Fatal("epoch not assigned")
	}
}

func TestScanSinceReturnsChangesAfterWatermark(t *testing.T) {
	ns := openMemNS(t)
	for i := 0; i < 10; i++ {
		if _, err := ns.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v0")); err != nil {
			t.Fatal(err)
		}
	}
	epoch, wm := ns.ApplyWatermark()

	if _, err := ns.Put([]byte("k03"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Put([]byte("k99"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Delete([]byte("k07")); err != nil {
		t.Fatal(err)
	}

	recs, newWM, _, ok, err := ns.ScanSince(epoch, wm, nil, nil, 0)
	if err != nil || !ok {
		t.Fatalf("ScanSince: ok=%v err=%v", ok, err)
	}
	byKey := map[string]record.Record{}
	for _, r := range recs {
		byKey[string(r.Key)] = r
	}
	if len(byKey) != 3 {
		t.Fatalf("delta carries %d keys, want 3: %v", len(byKey), byKey)
	}
	if string(byKey["k03"].Value) != "v1" {
		t.Fatalf("k03 = %q", byKey["k03"].Value)
	}
	if !byKey["k07"].Tombstone {
		t.Fatal("delete missing its tombstone in the delta")
	}
	if _, there := byKey["k99"]; !there {
		t.Fatal("new key missing from delta")
	}
	if _, cur := ns.ApplyWatermark(); newWM != cur {
		t.Fatalf("returned watermark %d != current %d", newWM, cur)
	}

	// Nothing changed since: empty delta, watermark stable.
	recs, again, _, ok, err := ns.ScanSince(epoch, newWM, nil, nil, 0)
	if err != nil || !ok || len(recs) != 0 || again != newWM {
		t.Fatalf("idle delta: recs=%d wm=%d ok=%v err=%v", len(recs), again, ok, err)
	}
}

func TestScanSincePagesWithLimit(t *testing.T) {
	ns := openMemNS(t)
	epoch, wm := ns.ApplyWatermark()
	for i := 0; i < 9; i++ {
		if _, err := ns.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	pages := 0
	for {
		recs, newWM, _, ok, err := ns.ScanSince(epoch, wm, nil, nil, 4)
		if err != nil || !ok {
			t.Fatalf("page: ok=%v err=%v", ok, err)
		}
		if len(recs) == 0 {
			break
		}
		pages++
		for _, r := range recs {
			seen[string(r.Key)] = true
		}
		wm = newWM
	}
	if len(seen) != 9 || pages < 3 {
		t.Fatalf("paged delta saw %d keys in %d pages", len(seen), pages)
	}
}

func TestScanSinceRangeFilter(t *testing.T) {
	ns := openMemNS(t)
	epoch, wm := ns.ApplyWatermark()
	for _, k := range []string{"a", "b", "c", "d"} {
		if _, err := ns.Put([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	recs, newWM, _, ok, err := ns.ScanSince(epoch, wm, []byte("b"), []byte("d"), 0)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(recs) != 2 {
		t.Fatalf("range delta carries %d records, want 2", len(recs))
	}
	// Out-of-range entries still advance the watermark: the next call
	// must not resend anything.
	if recs2, _, _, _, _ := ns.ScanSince(epoch, newWM, []byte("b"), []byte("d"), 0); len(recs2) != 0 {
		t.Fatalf("watermark did not cover out-of-range entries: %d resent", len(recs2))
	}
}

func TestScanSinceRejectsUnusableBaselines(t *testing.T) {
	ns := openMemNS(t)
	epoch, _ := ns.ApplyWatermark()
	if _, err := ns.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Wrong epoch (node restarted between snapshot and delta).
	if _, _, _, ok, _ := ns.ScanSince(epoch+1, 0, nil, nil, 0); ok {
		t.Fatal("wrong epoch accepted")
	}
	// Future watermark.
	if _, _, _, ok, _ := ns.ScanSince(epoch, 99, nil, nil, 0); ok {
		t.Fatal("future watermark accepted")
	}
	// Watermark older than the retained log: overflow the apply log.
	big := make([]record.Record, 4096)
	for b := 0; b < (maxApplyLog/len(big))+2; b++ {
		for i := range big {
			big[i] = record.Record{
				Key:     []byte(fmt.Sprintf("k%05d", i)),
				Value:   []byte("v"),
				Version: uint64(b*len(big) + i + 10),
			}
		}
		if err := ns.ApplyBatch(big); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, ok, _ := ns.ScanSince(epoch, 1, nil, nil, 0); ok {
		t.Fatal("pre-floor watermark accepted after apply-log overflow")
	}
	// A current watermark still works.
	_, cur := ns.ApplyWatermark()
	if _, _, _, ok, err := ns.ScanSince(epoch, cur, nil, nil, 0); !ok || err != nil {
		t.Fatalf("current watermark rejected: ok=%v err=%v", ok, err)
	}
}

func TestTruncateRangeInMemory(t *testing.T) {
	ns := openMemNS(t)
	for i := 0; i < 20; i++ {
		if _, err := ns.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := ns.TruncateRange([]byte("k05"), []byte("k15"))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 10 {
		t.Fatalf("removed %d, want 10", removed)
	}
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		_, found, err := ns.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		wantFound := i < 5 || i >= 15
		if found != wantFound {
			t.Fatalf("k%02d found=%v want %v", i, found, wantFound)
		}
	}
	// Truncated records are gone, not tombstoned: a re-install with the
	// original (old) versions must land.
	if err := ns.Apply(record.Record{Key: []byte("k07"), Value: []byte("back"), Version: 2}); err != nil {
		t.Fatal(err)
	}
	if v, found, _ := ns.Get([]byte("k07")); !found || string(v) != "back" {
		t.Fatalf("re-install after truncate: found=%v v=%q", found, v)
	}
}

func TestTruncateRangePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ns, err := e.Namespace("tbl_users")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := ns.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Half the data in an SSTable, half in the memtable + WAL.
	if err := ns.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 60; i++ {
		if _, err := ns.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ns.TruncateRange([]byte("k10"), []byte("k40")); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery (SSTables + WAL) must not resurrect truncated records.
	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	ns2, err := e2.Namespace("tbl_users")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		_, found, err := ns2.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		wantFound := i < 10 || i >= 40
		if found != wantFound {
			t.Fatalf("after reopen: k%02d found=%v want %v", i, found, wantFound)
		}
	}
}

// TestScanSincePagesWithByteBudget: a delta page of large values must
// stop at the byte budget — not assemble a page past the RPC frame
// cap — while the advancing watermark lets callers page to completion
// exactly once per record.
func TestScanSincePagesWithByteBudget(t *testing.T) {
	ns := openMemNS(t)
	epoch, wm := ns.ApplyWatermark()
	const count, valSize = 30, 256 << 10 // ~7.5 MiB of values, budget 4 MiB
	big := make([]byte, valSize)
	for i := 0; i < count; i++ {
		if _, err := ns.Put([]byte(fmt.Sprintf("big%02d", i)), big); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	pages := 0
	for {
		recs, newWM, more, ok, err := ns.ScanSince(epoch, wm, nil, nil, count+10)
		if err != nil || !ok {
			t.Fatalf("page: ok=%v err=%v", ok, err)
		}
		pages++
		bytes := 0
		for _, r := range recs {
			if seen[string(r.Key)] {
				t.Fatalf("key %q served twice", r.Key)
			}
			seen[string(r.Key)] = true
			bytes += r.MarshaledSize()
		}
		// One record of grace past the budget is allowed (checked
		// between records); far more means the budget is not applied.
		if bytes > scanSinceByteBudget+2*valSize {
			t.Fatalf("page carries %d encoded bytes, budget %d", bytes, scanSinceByteBudget)
		}
		wm = newWM
		if !more {
			break
		}
	}
	if len(seen) != count || pages < 2 {
		t.Fatalf("byte-budget paging saw %d keys in %d pages", len(seen), pages)
	}
}

// TestScanSinceOutOfRangeChurnIsTerminal pins the delta termination
// contract: writes to *other* ranges of the namespace advance the
// returned watermark but must report more=false once the retained log
// is walked — the migration manager pages exactly while more is set,
// so anything else would spin the fenced final drain for as long as
// the namespace takes traffic anywhere.
func TestScanSinceOutOfRangeChurnIsTerminal(t *testing.T) {
	ns := openMemNS(t)
	epoch, wm := ns.ApplyWatermark()
	for i := 0; i < 200; i++ {
		if _, err := ns.Put([]byte(fmt.Sprintf("a%03d", i)), []byte("churn")); err != nil {
			t.Fatal(err)
		}
	}
	recs, newWM, more, ok, err := ns.ScanSince(epoch, wm, []byte("b"), []byte("d"), 10)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(recs) != 0 {
		t.Fatalf("out-of-range churn returned %d records", len(recs))
	}
	if more {
		t.Fatal("more=true with the retained log fully walked — delta paging would never terminate")
	}
	if newWM == wm {
		t.Fatal("watermark did not advance past out-of-range entries")
	}
}
