package storage

import (
	"errors"

	"scads/internal/record"
	"scads/internal/sstable"
)

// Size-tiered background compaction.
//
// A flush that pushes a namespace past Options.MaxTables no longer
// merges the whole stack inline: it kicks a background pass that picks
// contiguous runs of similar-sized tables ("tiers") and merges each
// run into one table, concurrently across independent runs, bounded by
// the engine-wide Options.CompactionParallelism semaphore and throttled
// by Options.CompactionRateBytes. Runs must be contiguous in the stack:
// the stack order is the last-write-wins tie-break between equal
// versions, and merging non-adjacent tables would reorder it.
//
// Foreground paths that need the table set to themselves — explicit
// Compact, TruncateRange, close — cancel in-flight tier merges (the
// merge polls a stop channel between records, even while rate-limited)
// and wait them out before proceeding, so a background merge can never
// stall a fence handoff for longer than one cancellation poll.

const (
	// tierSizeRatio bounds how dissimilar table sizes within one
	// selected run may be (max/min file size).
	tierSizeRatio = 4
	// maxTierRun caps how many tables one tier merge consumes, keeping
	// individual background merges short and cancellable cheaply.
	maxTierRun = 8
)

// tierJob is one background merge of a contiguous run of tables.
type tierJob struct {
	ns             *Namespace
	tables         []*sstable.Reader // contiguous run, newest first
	seq            uint64
	exclByIdx      map[int][]keyRange
	dropTombstones bool
	stop           chan struct{}
}

// kickCompaction starts a background pass that drains table-count
// pressure. Called after a flush; returns immediately.
func (ns *Namespace) kickCompaction() {
	go ns.compactTiers()
}

// compactTiers picks eligible tier runs and launches one merge
// goroutine per run until no further run is eligible (no pressure, or
// every candidate is already being compacted).
func (ns *Namespace) compactTiers() {
	for {
		job := ns.pickTierJob()
		if job == nil {
			return
		}
		go func(j *tierJob) {
			j.run()
			// Done strictly before re-checking pressure: the re-check's
			// pick blocks on compactMu, which a canceller may hold while
			// waiting on the WaitGroup.
			ns.tierWG.Done()
			ns.compactTiers()
		}(job)
	}
}

// pickTierJob selects and claims the next tier run under compactMu (so
// selection can never race a major compaction's whole-stack snapshot)
// and ns.mu. Returns nil when nothing is eligible.
func (ns *Namespace) pickTierJob() *tierJob {
	ns.compactMu.Lock()
	defer ns.compactMu.Unlock()
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.closed || ns.dir == "" {
		return nil
	}
	if len(ns.tables) <= ns.engine.opts.MaxTables {
		return nil
	}
	run := pickTierRun(ns.tables, ns.compacting)
	if run[1] < 2 {
		return nil
	}
	start := run[0]
	tables := append([]*sstable.Reader(nil), ns.tables[start:start+run[1]]...)
	job := &tierJob{
		ns:     ns,
		tables: tables,
		seq:    ns.tableSeq,
		stop:   make(chan struct{}),
		// Consuming the entire stack makes this a de-facto major merge:
		// no older table can hold a value a dropped tombstone shadows
		// (records flushed while we merge are strictly newer — a stale
		// arrival loses the LWW check against the still-visible stack).
		dropTombstones: len(tables) == len(ns.tables),
	}
	ns.tableSeq++
	for i, t := range tables {
		if ns.compacting == nil {
			ns.compacting = make(map[*sstable.Reader]bool)
		}
		ns.compacting[t] = true
		if rs := ns.excluded[t]; len(rs) > 0 {
			if job.exclByIdx == nil {
				job.exclByIdx = make(map[int][]keyRange)
			}
			job.exclByIdx[i] = append([]keyRange(nil), rs...)
		}
	}
	if ns.tierStops == nil {
		ns.tierStops = make(map[chan struct{}]struct{})
	}
	ns.tierStops[job.stop] = struct{}{}
	ns.tierWG.Add(1)
	return job
}

// pickTierRun returns {start index, length} of the best contiguous run
// of >=2 unmarked tables whose file sizes are within tierSizeRatio of
// each other, preferring the run with the smallest total bytes (the
// cheapest merge first, classic size-tiered policy). If no such run
// exists it falls back to the smallest adjacent unmarked pair, so a
// stack of pairwise-dissimilar tables still converges under pressure.
// Returns nil when no two adjacent tables are free.
func pickTierRun(tables []*sstable.Reader, marked map[*sstable.Reader]bool) [2]int {
	bestTotal := int64(-1)
	var best [2]int
	pairTotal := int64(-1)
	var pair [2]int
	for start := 0; start < len(tables)-1; start++ {
		if marked[tables[start]] {
			continue
		}
		minSz := tables[start].SizeBytes()
		maxSz := minSz
		total := minSz
		for end := start + 1; end < len(tables) && end-start < maxTierRun; end++ {
			if marked[tables[end]] {
				break
			}
			sz := tables[end].SizeBytes()
			if end == start+1 {
				if pairTotal < 0 || total+sz < pairTotal {
					pairTotal = total + sz
					pair = [2]int{start, 2}
				}
			}
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			if maxSz > minSz*tierSizeRatio {
				break
			}
			total += sz
			if bestTotal < 0 || total < bestTotal || (total == bestTotal && end-start+1 > best[1]) {
				bestTotal = total
				best = [2]int{start, end - start + 1}
			}
		}
	}
	if bestTotal >= 0 {
		return best
	}
	if pairTotal >= 0 {
		return pair
	}
	return [2]int{}
}

// run executes the merge and splices the result into the table stack.
func (j *tierJob) run() {
	ns := j.ns
	// Bounded engine-wide parallelism; give up promptly if cancelled
	// while queued behind other merges.
	select {
	case ns.engine.compactSem <- struct{}{}:
	case <-j.stop:
		j.abort(nil)
		return
	}
	defer func() { <-ns.engine.compactSem }()

	cancelled := func() bool {
		select {
		case <-j.stop:
			return true
		default:
			return false
		}
	}
	opts := sstable.MergeOptions{
		DropTombstones:       j.dropTombstones,
		RateLimitBytesPerSec: ns.engine.opts.CompactionRateBytes,
		Clock:                ns.engine.opts.Clock,
		Cancel:               cancelled,
	}
	if len(j.exclByIdx) > 0 {
		excl := j.exclByIdx
		opts.Drop = func(src int, rec record.Record) bool {
			for _, r := range excl[src] {
				if r.contains(rec.Key) {
					return true
				}
			}
			return false
		}
	}
	merged, err := sstable.Merge(ns.tablePath(j.seq), opts, j.tables...)
	if err != nil {
		j.abort(err)
		return
	}
	if bc := ns.engine.blockCache; bc != nil {
		merged.SetBlockCache(bc)
	}

	ns.mu.Lock()
	i := tableIndex(ns.tables, j.tables[0])
	if i < 0 || i+len(j.tables) > len(ns.tables) {
		// The run vanished from the stack — cannot happen while the
		// tables are marked, but fail safe rather than corrupt the
		// stack: drop the merge output and walk away.
		ns.mu.Unlock()
		j.abort(nil)
		merged.Remove()
		return
	}
	newTables := make([]*sstable.Reader, 0, len(ns.tables)-len(j.tables)+1)
	newTables = append(newTables, ns.tables[:i]...)
	newTables = append(newTables, merged)
	newTables = append(newTables, ns.tables[i+len(j.tables):]...)
	ns.tables = newTables
	for _, t := range j.tables {
		delete(ns.compacting, t)
		delete(ns.excluded, t)
	}
	delete(ns.tierStops, j.stop)
	ns.mu.Unlock()

	for _, t := range j.tables {
		if rerr := t.Remove(); rerr != nil {
			ns.recordBgErr(rerr)
		}
	}
}

// abort releases the job's claims without touching the table stack.
func (j *tierJob) abort(err error) {
	ns := j.ns
	ns.mu.Lock()
	for _, t := range j.tables {
		delete(ns.compacting, t)
	}
	delete(ns.tierStops, j.stop)
	ns.mu.Unlock()
	if err != nil && !errors.Is(err, sstable.ErrMergeCanceled) {
		ns.recordBgErr(err)
	}
}

func (ns *Namespace) recordBgErr(err error) {
	ns.mu.Lock()
	if ns.bgErr == nil {
		ns.bgErr = err
	}
	ns.mu.Unlock()
}

// takeBgErr returns and clears the first background compaction error.
func (ns *Namespace) takeBgErr() error {
	ns.mu.Lock()
	err := ns.bgErr
	ns.bgErr = nil
	ns.mu.Unlock()
	return err
}

// cancelTierMerges stops every in-flight background tier merge and
// waits for them to unwind. Callers hold compactMu (so no new job can
// be picked concurrently) but not ns.mu.
func (ns *Namespace) cancelTierMerges() {
	ns.mu.Lock()
	for ch := range ns.tierStops {
		close(ch)
	}
	ns.tierStops = nil
	ns.mu.Unlock()
	ns.tierWG.Wait()
}

// WaitCompaction blocks until every background tier merge in flight at
// call time has finished. Tests and benchmarks use it to observe a
// settled table stack; new merges may start afterwards.
func (ns *Namespace) WaitCompaction() {
	ns.tierWG.Wait()
}

func tableIndex(tables []*sstable.Reader, t *sstable.Reader) int {
	for i, cur := range tables {
		if cur == t {
			return i
		}
	}
	return -1
}
