package storage

import (
	"fmt"
	"sync"
	"testing"

	"scads/internal/record"
)

func blockRecs(tag string, n int) []record.Record {
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{
			Key:     []byte(fmt.Sprintf("%s-%04d", tag, i)),
			Value:   []byte(tag),
			Version: uint64(i + 1),
		}
	}
	return recs
}

func TestBlockCacheBasic(t *testing.T) {
	c := NewBlockCache(1<<20, 4)
	if _, ok := c.Get("a.sst", 0); ok {
		t.Fatal("hit on empty cache")
	}
	recs := blockRecs("a", 10)
	c.Put("a.sst", 0, recs, 512)
	got, ok := c.Get("a.sst", 0)
	if !ok || len(got) != 10 || string(got[0].Key) != "a-0000" {
		t.Fatalf("Get = %d recs, ok=%v", len(got), ok)
	}
	// Same path, different block: distinct entry.
	if _, ok := c.Get("a.sst", 1); ok {
		t.Fatal("hit on uncached block index")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Bytes <= 512 {
		t.Fatalf("Bytes = %d, want > raw block size (overhead charged)", st.Bytes)
	}
}

func TestBlockCacheLRUEviction(t *testing.T) {
	// Single shard so eviction order is globally observable. Each entry
	// charges ~size+path+overhead; budget fits two of the three.
	c := NewBlockCache(1200, 1)
	c.Put("t.sst", 0, blockRecs("b0", 1), 300)
	c.Put("t.sst", 1, blockRecs("b1", 1), 300)
	// Touch block 0 so block 1 is the LRU victim.
	if _, ok := c.Get("t.sst", 0); !ok {
		t.Fatal("block 0 missing before eviction")
	}
	c.Put("t.sst", 2, blockRecs("b2", 1), 300)
	if _, ok := c.Get("t.sst", 1); ok {
		t.Fatal("LRU victim (block 1) survived eviction")
	}
	if _, ok := c.Get("t.sst", 0); !ok {
		t.Fatal("recently used block 0 was evicted")
	}
	if _, ok := c.Get("t.sst", 2); !ok {
		t.Fatal("newly inserted block 2 missing")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
}

func TestBlockCacheNeverEvictsSoleEntry(t *testing.T) {
	// An entry bigger than the shard budget still caches (the cache
	// keeps at least one entry per shard rather than thrashing).
	c := NewBlockCache(64, 1)
	c.Put("t.sst", 0, blockRecs("big", 1), 4096)
	if _, ok := c.Get("t.sst", 0); !ok {
		t.Fatal("oversized sole entry was rejected")
	}
}

func TestBlockCacheUpdateExisting(t *testing.T) {
	c := NewBlockCache(1<<20, 1)
	c.Put("t.sst", 0, blockRecs("v1", 1), 100)
	before := c.Stats().Bytes
	c.Put("t.sst", 0, blockRecs("v2", 2), 200)
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("Entries = %d after re-put, want 1", st.Entries)
	}
	if st.Bytes != before+100 {
		t.Fatalf("Bytes = %d after re-put, want %d (size delta applied)", st.Bytes, before+100)
	}
	got, ok := c.Get("t.sst", 0)
	if !ok || len(got) != 2 {
		t.Fatalf("re-put not visible: %d recs, ok=%v", len(got), ok)
	}
}

func TestBlockCacheDropTable(t *testing.T) {
	c := NewBlockCache(1<<20, 4)
	for b := 0; b < 8; b++ {
		c.Put("dead.sst", b, blockRecs("d", 1), 64)
		c.Put("live.sst", b, blockRecs("l", 1), 64)
	}
	c.DropTable("dead.sst")
	for b := 0; b < 8; b++ {
		if _, ok := c.Get("dead.sst", b); ok {
			t.Fatalf("dead.sst block %d survived DropTable", b)
		}
		if _, ok := c.Get("live.sst", b); !ok {
			t.Fatalf("live.sst block %d evicted by unrelated DropTable", b)
		}
	}
	if st := c.Stats(); st.Entries != 8 {
		t.Fatalf("Entries = %d after DropTable, want 8", st.Entries)
	}
}

func TestBlockCacheConcurrent(t *testing.T) {
	c := NewBlockCache(64<<10, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			path := fmt.Sprintf("t%d.sst", g%4)
			for i := 0; i < 500; i++ {
				switch i % 3 {
				case 0:
					c.Put(path, i%16, blockRecs("c", 4), 256)
				case 1:
					c.Get(path, i%16)
				case 2:
					if i%100 == 0 {
						c.DropTable(path)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes < 0 {
		t.Fatalf("negative byte accounting after concurrent churn: %+v", st)
	}
}
