package storage

import (
	"fmt"
	"sync"
	"testing"

	"scads/internal/record"
)

func TestCacheHitAndInvalidateOnWrite(t *testing.T) {
	e, err := Open(Options{NodeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ns, err := e.Namespace("users")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Put([]byte("alice"), []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// First read fills, second read hits.
	if v, ok, _ := ns.Get([]byte("alice")); !ok || string(v) != "v1" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	before := e.Cache().Stats()
	if v, ok, _ := ns.Get([]byte("alice")); !ok || string(v) != "v1" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	after := e.Cache().Stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("expected a cache hit: before=%+v after=%+v", before, after)
	}

	// A write must invalidate: the very next read sees the new value.
	if _, err := ns.Put([]byte("alice"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := ns.Get([]byte("alice")); !ok || string(v) != "v2" {
		t.Fatalf("stale read after write: %q,%v", v, ok)
	}

	// Same for deletes.
	if _, err := ns.Delete([]byte("alice")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ns.Get([]byte("alice")); ok {
		t.Fatal("read served a deleted key from cache")
	}
}

func TestCacheNegativeLookupInvalidated(t *testing.T) {
	e, err := Open(Options{NodeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ns, err := e.Namespace("users")
	if err != nil {
		t.Fatal(err)
	}
	// Miss, cached negatively, then hit negatively.
	if _, ok, _ := ns.Get([]byte("bob")); ok {
		t.Fatal("phantom key")
	}
	before := e.Cache().Stats()
	if _, ok, _ := ns.Get([]byte("bob")); ok {
		t.Fatal("phantom key")
	}
	if after := e.Cache().Stats(); after.Hits != before.Hits+1 {
		t.Fatalf("negative lookup not cached: before=%+v after=%+v", before, after)
	}
	// The insert must invalidate the negative entry.
	if _, err := ns.Put([]byte("bob"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := ns.Get([]byte("bob")); !ok || string(v) != "v1" {
		t.Fatalf("insert hidden by cached negative entry: %q,%v", v, ok)
	}
}

func TestCacheDisabled(t *testing.T) {
	e, err := Open(Options{NodeID: 1, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Cache() != nil {
		t.Fatal("cache should be disabled")
	}
	ns, err := e.Namespace("users")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := ns.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("Get without cache = %q,%v", v, ok)
	}
}

func TestCacheEvictionBounded(t *testing.T) {
	c := NewCache(4<<10, 4)
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		c.Put("ns", key, record.Record{Key: key, Value: make([]byte, 64), Version: uint64(i + 1)}, true)
	}
	st := c.Stats()
	if st.Bytes > 4<<10 {
		t.Fatalf("cache bytes %d exceed budget %d", st.Bytes, 4<<10)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under pressure")
	}
	if st.Entries == 0 {
		t.Fatal("cache emptied itself")
	}
}

func TestCacheNamespacesIsolated(t *testing.T) {
	c := NewCache(1<<20, 4)
	key := []byte("k")
	c.Put("a", key, record.Record{Key: key, Value: []byte("va")}, true)
	c.Put("b", key, record.Record{Key: key, Value: []byte("vb")}, true)
	c.Invalidate("a", key)
	if _, _, hit := c.Get("a", key); hit {
		t.Fatal("namespace a key survived invalidation")
	}
	if rec, _, hit := c.Get("b", key); !hit || string(rec.Value) != "vb" {
		t.Fatalf("namespace b entry lost collaterally: hit=%v rec=%q", hit, rec.Value)
	}
}

func TestApplyBatchLWWAndRecovery(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, dir)
	ns, err := e.Namespace("users")
	if err != nil {
		t.Fatal(err)
	}
	// Pre-existing newer version must survive a batch carrying an
	// older record for the same key.
	if err := ns.Apply(record.Record{Key: []byte("a"), Value: []byte("new"), Version: 100}); err != nil {
		t.Fatal(err)
	}
	batch := []record.Record{
		{Key: []byte("a"), Value: []byte("old"), Version: 50},
		{Key: []byte("b"), Value: []byte("b1"), Version: 60},
		{Key: []byte("c"), Value: []byte("c1"), Version: 70},
	}
	if err := ns.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := ns.Get([]byte("a")); !ok || string(v) != "new" {
		t.Fatalf("LWW violated by batch: a=%q,%v", v, ok)
	}
	if v, ok, _ := ns.Get([]byte("b")); !ok || string(v) != "b1" {
		t.Fatalf("b=%q,%v", v, ok)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Batch-applied records must be recoverable like any other write.
	e2, err := Open(Options{Dir: dir, NodeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	ns2, err := e2.Namespace("users")
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{"a": "new", "b": "b1", "c": "c1"} {
		if v, ok, _ := ns2.Get([]byte(key)); !ok || string(v) != want {
			t.Fatalf("after recovery %s=%q,%v want %q", key, v, ok, want)
		}
	}
}

func TestSyncWritesGroupCommit(t *testing.T) {
	e, err := Open(Options{Dir: t.TempDir(), NodeID: 1, SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ns, err := e.Namespace("users")
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := []byte(fmt.Sprintf("w%d-%03d", w, i))
				if _, err := ns.Put(key, []byte("v")); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			key := []byte(fmt.Sprintf("w%d-%03d", w, i))
			if _, ok, _ := ns.Get(key); !ok {
				t.Fatalf("missing durable write %s", key)
			}
		}
	}
}

func TestCacheConcurrentReadWrite(t *testing.T) {
	e, err := Open(Options{NodeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ns, err := e.Namespace("users")
	if err != nil {
		t.Fatal(err)
	}
	const keys = 32
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				ns.Get([]byte(fmt.Sprintf("k%02d", i%keys)))
				i++
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("k%02d", i%keys))
		if _, err := ns.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		// Monotonicity through the cache: a read right after the
		// write must see it (the invalidation is in the write's
		// critical section).
		if v, ok, _ := ns.Get(key); !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("iteration %d: read %q,%v after write", i, v, ok)
		}
	}
	close(stop)
	wg.Wait()
}
