package storage

import (
	"bytes"
	"container/heap"
	"fmt"
	"sync"

	"scads/internal/memtable"
	"scads/internal/record"
	"scads/internal/sstable"
	"scads/internal/wal"
)

// Namespace is one ordered keyspace inside an Engine. All methods are
// safe for concurrent use.
type Namespace struct {
	name   string
	engine *Engine
	dir    string // "" when in-memory

	mu       sync.RWMutex
	mem      *memtable.Memtable
	flushing *memtable.Memtable // read-only during flush, else nil
	tables   []*sstable.Reader  // newest first
	log      *wal.Log           // nil when in-memory
	tableSeq uint64
	closed   bool

	// Apply-sequence watermark for online range migration: every
	// accepted record gets the next applySeq, and the (seq, key) pairs
	// of the most recent maxApplyLog accepted records are retained so
	// ScanSince can serve "what changed after watermark W" delta
	// queries. applyEpoch distinguishes process lifetimes — the log is
	// in-memory, so a watermark issued before a restart must not be
	// mistaken for a valid baseline afterwards.
	applyEpoch uint64
	applySeq   uint64
	applyFloor uint64 // highest seq no longer retained; log covers (floor, seq]
	applyLog   []applyEntry

	// maxVersion is the highest record version accepted this process
	// lifetime — a globally comparable freshness signal (versions are
	// coordinator HLC stamps), probed by the repair manager to rank
	// surviving replicas during primary failover. Not persisted: a
	// restarted node reports a conservative value until it takes
	// writes again.
	maxVersion uint64

	// excluded records pending range truncations per SSTable: reads
	// treat matching records as absent until the next compaction
	// rewrites the tables without them (see TruncateRange).
	excluded map[*sstable.Reader][]keyRange

	// Background size-tiered compaction state (see compaction.go).
	// compacting marks tables claimed by an in-flight tier merge;
	// tierStops holds the stop channel of each in-flight merge so
	// foreground paths can cancel them; bgErr is the first background
	// merge failure, surfaced on the next Flush or close.
	compacting map[*sstable.Reader]bool
	tierStops  map[chan struct{}]struct{}
	tierWG     sync.WaitGroup
	bgErr      error

	compactMu sync.Mutex // serialises flush+compaction
}

type keyRange struct {
	start, end []byte // start inclusive (nil = -inf), end exclusive (nil = +inf)
}

func (r keyRange) contains(key []byte) bool {
	if r.start != nil && bytes.Compare(key, r.start) < 0 {
		return false
	}
	if r.end != nil && bytes.Compare(key, r.end) >= 0 {
		return false
	}
	return true
}

type applyEntry struct {
	seq uint64
	key []byte
}

// maxApplyLog bounds the per-namespace delta log. When the log
// overflows, the oldest half is discarded and applyFloor advances;
// a ScanSince watermark older than the floor reports ok=false and the
// caller must restart from a fresh snapshot.
const maxApplyLog = 1 << 16

// Name returns the namespace name.
func (ns *Namespace) Name() string { return ns.name }

// Put stores value under key with a freshly generated version and
// returns that version.
func (ns *Namespace) Put(key, value []byte) (uint64, error) {
	ver := ns.engine.NextVersion()
	rec := record.Record{
		Key:     append([]byte(nil), key...),
		Value:   append([]byte(nil), value...),
		Version: ver,
	}
	if err := ns.Apply(rec); err != nil {
		return 0, err
	}
	return ver, nil
}

// Delete writes a tombstone for key with a fresh version and returns
// that version.
func (ns *Namespace) Delete(key []byte) (uint64, error) {
	ver := ns.engine.NextVersion()
	rec := record.Record{
		Key:       append([]byte(nil), key...),
		Version:   ver,
		Tombstone: true,
	}
	if err := ns.Apply(rec); err != nil {
		return 0, err
	}
	return ver, nil
}

// Apply merges an externally versioned record (for example one arriving
// through replication) with last-write-wins semantics across the whole
// LSM stack: a record older than what any layer already holds is
// dropped.
func (ns *Namespace) Apply(rec record.Record) error {
	return ns.ApplyBatch([]record.Record{rec})
}

// ApplyBatch applies a group of externally versioned records with the
// same last-write-wins semantics as Apply, but amortised: one lock
// acquisition, one WAL write for the whole group, and — when the
// engine runs with SyncWrites — one group-commit fsync shared with
// every other writer committing concurrently. This is the landing
// point of the batched RPC apply path (rpc.MethodBatch envelopes and
// multi-record MethodApply requests).
func (ns *Namespace) ApplyBatch(recs []record.Record) error {
	if len(recs) == 0 {
		return nil
	}
	cache := ns.engine.cache
	ns.mu.Lock()
	if ns.closed {
		ns.mu.Unlock()
		return ErrClosed
	}
	// Check deeper layers: the memtable's own LWW check only covers
	// itself, but a newer version may already have been flushed.
	accepted := make([]record.Record, 0, len(recs))
	for _, rec := range recs {
		if cur, ok := ns.getLocked(rec.Key); ok && cur.Supersedes(rec) {
			continue
		}
		accepted = append(accepted, rec)
	}
	if len(accepted) == 0 {
		ns.mu.Unlock()
		return nil
	}
	if ns.log != nil {
		if err := ns.log.AppendBatch(accepted); err != nil {
			ns.mu.Unlock()
			return err
		}
	}
	for _, rec := range accepted {
		ns.mem.Put(rec)
		ns.applySeq++
		ns.applyLog = append(ns.applyLog, applyEntry{seq: ns.applySeq, key: rec.Key})
		if rec.Version > ns.maxVersion {
			ns.maxVersion = rec.Version
		}
		if cache != nil {
			cache.Invalidate(ns.name, rec.Key)
		}
	}
	if len(ns.applyLog) > maxApplyLog {
		half := len(ns.applyLog) / 2
		ns.applyFloor = ns.applyLog[half-1].seq
		ns.applyLog = append([]applyEntry(nil), ns.applyLog[half:]...)
	}
	needFlush := ns.dir != "" && ns.mem.Bytes() >= ns.engine.opts.MemtableBytes && ns.flushing == nil
	ns.mu.Unlock()

	// Durability outside the namespace lock: the fsync is shared via
	// the WAL's commit group, so concurrent writers to this namespace
	// pay one sync per group instead of one each.
	if ns.log != nil && ns.engine.opts.SyncWrites {
		if err := ns.log.SyncGroup(); err != nil {
			return err
		}
	}
	if needFlush {
		return ns.Flush()
	}
	return nil
}

// GetRecord returns the current record for key, including tombstones.
// The engine's read cache answers repeat lookups without touching the
// memtable or SSTables; fills happen under the namespace read lock so
// a concurrent write's invalidation (under the write lock) can never
// be overwritten by a stale fill.
func (ns *Namespace) GetRecord(key []byte) (record.Record, bool, error) {
	cache := ns.engine.cache
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	if ns.closed {
		return record.Record{}, false, ErrClosed
	}
	if cache != nil {
		if rec, found, hit := cache.Get(ns.name, key); hit {
			return rec, found, nil
		}
	}
	rec, ok := ns.getLocked(key)
	if cache != nil {
		cache.Put(ns.name, key, rec, ok)
	}
	return rec, ok, nil
}

// Get returns the live value for key; deleted and absent keys report
// ok=false.
func (ns *Namespace) Get(key []byte) ([]byte, bool, error) {
	rec, ok, err := ns.GetRecord(key)
	if err != nil || !ok || rec.Tombstone {
		return nil, false, err
	}
	return rec.Value, true, nil
}

// getLocked resolves key across memtable, flushing memtable, and
// SSTables under last-write-wins. Caller holds ns.mu (read or write).
func (ns *Namespace) getLocked(key []byte) (record.Record, bool) {
	var best record.Record
	found := false
	consider := func(r record.Record, ok bool) {
		if !ok {
			return
		}
		if !found || r.Supersedes(best) {
			best, found = r, true
		}
	}
	consider(ns.mem.Get(key))
	if ns.flushing != nil {
		consider(ns.flushing.Get(key))
	}
	for _, t := range ns.tables {
		if ns.excludedFrom(t, key) {
			continue
		}
		r, ok, err := t.Get(key)
		if err == nil {
			consider(r, ok)
		}
	}
	return best, found
}

// excludedFrom reports whether key falls in a pending truncation of
// table t. Caller holds ns.mu.
func (ns *Namespace) excludedFrom(t *sstable.Reader, key []byte) bool {
	for _, r := range ns.excluded[t] {
		if r.contains(key) {
			return true
		}
	}
	return false
}

// ScanLive visits live (non-tombstone) records with start <= key < end
// in ascending key order until fn returns false or the range is
// exhausted. This is the engine's only read path besides point gets —
// callers are responsible for bounding the range (the analyzer
// guarantees every query plan does).
func (ns *Namespace) ScanLive(start, end []byte, fn func(record.Record) bool) error {
	return ns.scan(start, end, func(r record.Record) bool {
		if r.Tombstone {
			return true
		}
		return fn(r)
	})
}

// ScanAll visits records including tombstones; used by replication
// catch-up and partition moves.
func (ns *Namespace) ScanAll(start, end []byte, fn func(record.Record) bool) error {
	return ns.scan(start, end, fn)
}

// ApplyWatermark returns the namespace's apply epoch and the sequence
// number of the most recently accepted record. A migration captures
// the watermark before taking its snapshot; ScanSince then serves
// exactly the records accepted after it.
func (ns *Namespace) ApplyWatermark() (epoch, seq uint64) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return ns.applyEpoch, ns.applySeq
}

// MaxVersion returns the highest record version accepted this process
// lifetime. Record versions are coordinator HLC stamps, so the value
// is comparable across nodes: during primary failover the repair
// manager probes each surviving replica's MaxVersion and promotes the
// freshest. A freshly restarted node reports 0 (conservative: it ranks
// last) until it accepts a write.
func (ns *Namespace) MaxVersion() uint64 {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return ns.maxVersion
}

// ScanSince returns the current record (tombstones included) of every
// key in [start, end) modified after watermark `since`, up to limit
// distinct keys, together with the new watermark covering the returned
// changes. more reports that the page stopped at the count limit or
// byte budget with retained log entries still beyond the watermark —
// the caller's only reliable continuation signal: neither a short page
// (byte budget) nor an advancing watermark (out-of-range entries also
// advance it) distinguishes "keep paging" from "drained". ok=false
// means the baseline is unusable — wrong epoch (the node restarted) or
// older than the retained delta log — and the caller must restart from
// a full snapshot. Records reference internal storage; callers that
// retain them across writes must Clone.
func (ns *Namespace) ScanSince(epoch, since uint64, start, end []byte, limit int) (recs []record.Record, watermark uint64, more, ok bool, err error) {
	if limit <= 0 {
		limit = maxApplyLog
	}
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	if ns.closed {
		return nil, 0, false, false, ErrClosed
	}
	if epoch != ns.applyEpoch || since > ns.applySeq || since < ns.applyFloor {
		return nil, 0, false, false, nil
	}
	bounds := keyRange{start: start, end: end}
	watermark = since
	bytes := 0
	seen := make(map[string]bool)
	for _, e := range ns.applyLog {
		if e.seq <= since {
			continue
		}
		if !bounds.contains(e.key) || seen[string(e.key)] {
			// Nothing new to resend for this entry; the watermark still
			// advances past it.
			watermark = e.seq
			continue
		}
		if len(recs) >= limit || bytes >= scanSinceByteBudget {
			// Page full (by count or encoded bytes): later entries stay
			// beyond the watermark so the next call picks them up.
			// A full page always carries >=1 record, so the watermark
			// strictly advances and paging always makes progress.
			more = true
			break
		}
		seen[string(e.key)] = true
		if rec, found := ns.getLocked(e.key); found {
			recs = append(recs, rec)
			bytes += rec.MarshaledSize()
		}
		watermark = e.seq
	}
	return recs, watermark, more, true, nil
}

// scanSinceByteBudget bounds the encoded payload of one delta page,
// mirroring the scan/snapshot page budgets: a count limit alone would
// let a page of large values exceed the RPC frame cap.
const scanSinceByteBudget = 4 << 20

func (ns *Namespace) scan(start, end []byte, fn func(record.Record) bool) error {
	ns.mu.RLock()
	if ns.closed {
		ns.mu.RUnlock()
		return ErrClosed
	}
	// Snapshot the memtable range(s) and pin the table set. Tables are
	// immutable, so after the snapshot we can release the lock.
	var sources [][]record.Record
	memSnap := snapshotRange(ns.mem, start, end)
	sources = append(sources, memSnap)
	if ns.flushing != nil {
		sources = append(sources, snapshotRange(ns.flushing, start, end))
	}
	tables := append([]*sstable.Reader(nil), ns.tables...)
	// Pin the snapshot: a background tier merge may splice these
	// tables out and unlink their files while we stream blocks below.
	// The references keep the files open (and on disk) until released.
	for _, t := range tables {
		t.Retain()
	}
	defer func() {
		for _, t := range tables {
			t.Release()
		}
	}()
	var exclusions map[*sstable.Reader][]keyRange
	if len(ns.excluded) > 0 {
		exclusions = make(map[*sstable.Reader][]keyRange, len(ns.excluded))
		for t, rs := range ns.excluded {
			exclusions[t] = append([]keyRange(nil), rs...)
		}
	}
	ns.mu.RUnlock()

	for _, t := range tables {
		excl := exclusions[t]
		var recs []record.Record
		if err := t.Scan(start, end, func(r record.Record) bool {
			for _, x := range excl {
				if x.contains(r.Key) {
					return true
				}
			}
			recs = append(recs, r)
			return true
		}); err != nil {
			return fmt.Errorf("storage: scan table: %w", err)
		}
		sources = append(sources, recs)
	}
	mergeSources(sources, fn)
	return nil
}

func snapshotRange(m *memtable.Memtable, start, end []byte) []record.Record {
	var out []record.Record
	m.Scan(start, end, func(r record.Record) bool {
		out = append(out, r)
		return true
	})
	return out
}

// mergeSources performs a k-way merge over the sorted sources,
// resolving duplicate keys by last-write-wins (ties to the earlier,
// newer, source), and streams the winners to fn.
func mergeSources(sources [][]record.Record, fn func(record.Record) bool) {
	h := make(srcHeap, 0, len(sources))
	for i, src := range sources {
		if len(src) > 0 {
			h = append(h, srcCursor{recs: src, src: i})
		}
	}
	heap.Init(&h)

	var pending record.Record
	var pendingSrc int
	havePending := false
	for h.Len() > 0 {
		cur := &h[0]
		rec := cur.recs[cur.pos]
		cur.pos++
		if cur.pos == len(cur.recs) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}

		if havePending && bytes.Equal(rec.Key, pending.Key) {
			if rec.Supersedes(pending) || (!pending.Supersedes(rec) && cur.src < pendingSrc) {
				pending, pendingSrc = rec, cur.src
			}
			continue
		}
		if havePending && !fn(pending) {
			return
		}
		pending, pendingSrc, havePending = rec, cur.src, true
	}
	if havePending {
		fn(pending)
	}
}

type srcCursor struct {
	recs []record.Record
	pos  int
	src  int
}

type srcHeap []srcCursor

func (h srcHeap) Len() int { return len(h) }
func (h srcHeap) Less(i, j int) bool {
	c := bytes.Compare(h[i].recs[h[i].pos].Key, h[j].recs[h[j].pos].Key)
	if c != 0 {
		return c < 0
	}
	return h[i].src < h[j].src
}
func (h srcHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *srcHeap) Push(x any)   { *h = append(*h, x.(srcCursor)) }
func (h *srcHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// Flush persists the current memtable to a new SSTable and truncates
// the WAL. No-op for in-memory namespaces and empty memtables. A
// pending background-compaction failure is surfaced here (writes keep
// succeeding into the memtable, but the condition must not stay
// silent).
func (ns *Namespace) Flush() error {
	ns.compactMu.Lock()
	defer ns.compactMu.Unlock()
	if err := ns.flushLocked(); err != nil {
		return err
	}
	return ns.takeBgErr()
}

func (ns *Namespace) flushLocked() error {
	if ns.dir == "" {
		return nil
	}
	ns.mu.Lock()
	if ns.closed {
		ns.mu.Unlock()
		return ErrClosed
	}
	if ns.mem.Len() == 0 {
		ns.mu.Unlock()
		return nil
	}
	// Swap in a fresh memtable; the old one stays readable via
	// ns.flushing while we write it out.
	ns.flushing = ns.mem
	ns.mem = memtable.New(int64(ns.engine.opts.NodeID) + int64(ns.tableSeq) + 2)
	if err := ns.log.Rotate(); err != nil {
		ns.flushing = nil
		ns.mu.Unlock()
		return err
	}
	frozen := ns.flushing
	seq := ns.tableSeq
	ns.tableSeq++
	ns.mu.Unlock()

	path := ns.tablePath(seq)
	w, err := sstable.NewWriter(path)
	if err != nil {
		ns.clearFlushing()
		return err
	}
	for _, rec := range frozen.All() {
		if err := w.Add(rec); err != nil {
			w.Abort()
			ns.clearFlushing()
			return err
		}
	}
	if err := w.Finish(); err != nil {
		ns.clearFlushing()
		return err
	}
	rd, err := ns.openTable(path)
	if err != nil {
		ns.clearFlushing()
		return err
	}

	ns.mu.Lock()
	ns.tables = append([]*sstable.Reader{rd}, ns.tables...)
	ns.flushing = nil
	nTables := len(ns.tables)
	ns.mu.Unlock()

	// The flushed data is durable; older WAL segments are obsolete.
	if err := ns.log.Truncate(); err != nil {
		return err
	}
	if nTables > ns.engine.opts.MaxTables {
		// Size-tiered compaction drains the pressure in the background;
		// the write that triggered the flush is not stalled behind a
		// whole-stack merge.
		ns.kickCompaction()
	}
	return nil
}

// openTable opens a finished SSTable and attaches the engine's shared
// block cache. Every table the namespace serves reads from must be
// opened through here.
func (ns *Namespace) openTable(path string) (*sstable.Reader, error) {
	rd, err := sstable.Open(path)
	if err != nil {
		return nil, err
	}
	if bc := ns.engine.blockCache; bc != nil {
		rd.SetBlockCache(bc)
	}
	return rd, nil
}

func (ns *Namespace) clearFlushing() {
	ns.mu.Lock()
	if ns.flushing != nil {
		// Flush failed: merge frozen entries back so no write is lost.
		for _, rec := range ns.flushing.All() {
			ns.mem.Put(rec)
		}
		ns.flushing = nil
	}
	ns.mu.Unlock()
}

// TruncateRange physically removes every record with start <= key <
// end (nil bounds are infinite) and returns how many were unlinked
// from the memtable. Matching memtable entries are unlinked, matching
// SSTable records become invisible immediately (per-table exclusions)
// and are rewritten out by the compaction this triggers, and the WAL
// is reset past the truncated records. Unlike tombstoning, nothing
// versioned survives: if the range is later re-installed by a
// migration, the incoming records land on clean state instead of
// losing last-write-wins to teardown markers.
func (ns *Namespace) TruncateRange(start, end []byte) (int, error) {
	ns.compactMu.Lock()
	defer ns.compactMu.Unlock()
	// Stop in-flight tier merges before installing exclusions: a merge
	// selected before the exclusion existed would splice in an output
	// that still contains the truncated records while deleting the
	// consumed tables' exclusion entries — resurrecting the range.
	ns.cancelTierMerges()
	cache := ns.engine.cache
	ns.mu.Lock()
	if ns.closed {
		ns.mu.Unlock()
		return 0, ErrClosed
	}
	// compactMu is held, so no flush is in flight and ns.flushing is
	// nil: the memtable unlink covers all unflushed state.
	removed := ns.mem.DeleteRange(start, end)
	excl := keyRange{start: cloneBound(start), end: cloneBound(end)}
	hasTables := len(ns.tables) > 0
	for _, t := range ns.tables {
		if ns.excluded == nil {
			ns.excluded = make(map[*sstable.Reader][]keyRange)
		}
		ns.excluded[t] = append(ns.excluded[t], excl)
	}
	if cache != nil {
		// Truncation cannot enumerate affected keys cheaply; shed the
		// namespace's cache entries wholesale.
		cache.InvalidateNamespace(ns.name)
	}
	ns.mu.Unlock()

	if ns.dir == "" {
		return removed, nil
	}
	// The WAL still holds the truncated records; reset it so recovery
	// cannot resurrect them. A non-empty memtable is flushed first
	// (the surviving entries need a durable home before their log
	// segments go away); an empty one just rotates the log out. The
	// emptiness check and the rotate+truncate share one critical
	// section — a write accepted between them would lose its WAL
	// segment while still memtable-only.
	ns.mu.Lock()
	memEmpty := ns.mem.Len() == 0
	if memEmpty {
		err := ns.log.Rotate()
		if err == nil {
			err = ns.log.Truncate()
		}
		ns.mu.Unlock()
		if err != nil {
			return removed, err
		}
	} else {
		ns.mu.Unlock()
		// Concurrent writes can only add entries; flushLocked persists
		// everything present when it re-acquires the lock, rotating
		// before and truncating after, so no accepted write loses its
		// log segment.
		if err := ns.flushLocked(); err != nil {
			return removed, err
		}
	}
	if hasTables {
		// Rewrite the tables without the excluded records now, so the
		// truncation is durable rather than pending in memory.
		return removed, ns.compactLocked()
	}
	return removed, nil
}

func cloneBound(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Compact merges all SSTables into one, dropping tombstones.
func (ns *Namespace) Compact() error {
	ns.compactMu.Lock()
	defer ns.compactMu.Unlock()
	return ns.compactLocked()
}

func (ns *Namespace) compactLocked() error {
	// A major compaction consumes the whole stack; in-flight background
	// tier merges would race the snapshot below, so stop and drain them
	// first (they poll for cancellation between records, so this is
	// bounded by one poll interval, not by a merge's full runtime).
	ns.cancelTierMerges()
	ns.mu.RLock()
	tables := append([]*sstable.Reader(nil), ns.tables...)
	seq := ns.tableSeq
	exclByIdx := make(map[int][]keyRange)
	for i, t := range tables {
		if rs := ns.excluded[t]; len(rs) > 0 {
			exclByIdx[i] = append([]keyRange(nil), rs...)
		}
	}
	ns.mu.RUnlock()
	if len(tables) < 2 && len(exclByIdx) == 0 {
		return nil
	}
	if len(tables) == 0 {
		return nil
	}

	ns.mu.Lock()
	ns.tableSeq++
	ns.mu.Unlock()

	opts := sstable.MergeOptions{DropTombstones: true}
	if len(exclByIdx) > 0 {
		opts.Drop = func(src int, rec record.Record) bool {
			for _, r := range exclByIdx[src] {
				if r.contains(rec.Key) {
					return true
				}
			}
			return false
		}
	}
	merged, err := sstable.Merge(ns.tablePath(seq), opts, tables...)
	if err != nil {
		return fmt.Errorf("storage: compact %s: %w", ns.name, err)
	}
	if bc := ns.engine.blockCache; bc != nil {
		merged.SetBlockCache(bc)
	}

	ns.mu.Lock()
	// Tables flushed while we merged sit in front of the ones we
	// consumed; keep them, replace the rest. The consumed tables'
	// pending truncations were applied by the merge filter.
	keep := len(ns.tables) - len(tables)
	ns.tables = append(ns.tables[:keep:keep], merged)
	for _, t := range tables {
		delete(ns.excluded, t)
	}
	ns.mu.Unlock()

	for _, t := range tables {
		if err := t.Remove(); err != nil {
			return err
		}
	}
	return nil
}

// TableCount reports how many SSTables the namespace currently holds.
func (ns *Namespace) TableCount() int {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return len(ns.tables)
}

// MemLen reports the number of entries in the active memtable.
func (ns *Namespace) MemLen() int {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return ns.mem.Len()
}

func (ns *Namespace) tablePath(seq uint64) string {
	return fmt.Sprintf("%s/%09d.sst", ns.dir, seq)
}

func (ns *Namespace) close() error {
	ns.compactMu.Lock()
	defer ns.compactMu.Unlock()
	if err := ns.flushLocked(); err != nil && err != ErrClosed {
		return err
	}
	// The final flush may have kicked a background pass; its pick will
	// block on compactMu and bail on ns.closed, but merges already in
	// flight must unwind before their tables are closed under them.
	ns.cancelTierMerges()
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.closed {
		return nil
	}
	ns.closed = true
	firstErr := ns.bgErr
	ns.bgErr = nil
	if ns.log != nil {
		if err := ns.log.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, t := range ns.tables {
		if err := t.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
