package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scads/internal/record"
)

// Engine-level block cache: with the exact-key cache disabled, repeated
// point reads of flushed data are served from cached decoded blocks.
func TestEngineBlockCacheHits(t *testing.T) {
	e, err := Open(Options{
		Dir:             t.TempDir(),
		MemtableBytes:   1 << 20,
		MaxTables:       8,
		NodeID:          1,
		CacheBytes:      -1, // isolate the block cache from the exact-key cache
		BlockCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ns, _ := e.Namespace("b")
	const n = 300
	for i := 0; i < n; i++ {
		if _, err := ns.Put([]byte(fmt.Sprintf("k-%04d", i)), []byte(fmt.Sprintf("v-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ns.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, ok, err := ns.Get([]byte(fmt.Sprintf("k-%04d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v-%04d", i) {
			t.Fatalf("first pass Get(%d) = %q,%v,%v", i, v, ok, err)
		}
	}
	st := e.BlockCache().Stats()
	if st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("first pass filled nothing: %+v", st)
	}
	hitsAfterFill := st.Hits
	for i := 0; i < n; i++ {
		if _, ok, err := ns.Get([]byte(fmt.Sprintf("k-%04d", i))); !ok || err != nil {
			t.Fatalf("second pass Get(%d): ok=%v err=%v", i, ok, err)
		}
	}
	st = e.BlockCache().Stats()
	if got := st.Hits - hitsAfterFill; got != n {
		t.Fatalf("second pass block-cache hits = %d, want %d (every read cached)", got, n)
	}
	if es := e.Stats(); es.BlockCache.Hits != st.Hits {
		t.Fatalf("engine Stats.BlockCache out of sync: %+v vs %+v", es.BlockCache, st)
	}
}

// BlockCacheBytes: 0 is the ablation: no cache is constructed and reads
// take the raw block path.
func TestEngineBlockCacheAblation(t *testing.T) {
	e, err := Open(Options{Dir: t.TempDir(), MemtableBytes: 1 << 20, NodeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.BlockCache() != nil {
		t.Fatal("BlockCacheBytes=0 still built a block cache")
	}
	ns, _ := e.Namespace("b")
	if _, err := ns.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := ns.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := ns.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("uncached Get = %q,%v,%v", v, ok, err)
	}
}

// A scan started before background compaction splices the stack must
// finish against the tables it snapshotted, even though the merge
// unlinks them mid-scan (reference counting pins the files).
func TestScanSurvivesConcurrentCompaction(t *testing.T) {
	e, err := Open(Options{
		Dir:           t.TempDir(),
		MemtableBytes: 16 << 10,
		MaxTables:     3,
		NodeID:        1,
		// Throttle the background merges so they are reliably still
		// running while the slow scan below walks the doomed tables.
		CompactionRateBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ns, _ := e.Namespace("s")
	const rounds, perRound = 6, 40
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			key := fmt.Sprintf("k-%02d-%03d", r, i)
			if _, err := ns.Put([]byte(key), bytes.Repeat([]byte("v"), 64)); err != nil {
				t.Fatal(err)
			}
		}
		if err := ns.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[string]bool)
	err = ns.ScanLive(nil, nil, func(rec record.Record) bool {
		seen[string(rec.Key)] = true
		time.Sleep(200 * time.Microsecond)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			key := fmt.Sprintf("k-%02d-%03d", r, i)
			if !seen[key] {
				t.Fatalf("scan under compaction lost %q (saw %d keys)", key, len(seen))
			}
		}
	}
}

// Crash between the WAL rotate and the WAL truncate of a flush: the
// SSTable exists AND the pre-flush segments survive, so recovery
// replays records that are also in the table. Replay must be a no-op
// for correctness (same versions, LWW) — every key readable exactly
// once with its latest value.
func TestCrashBetweenWALRotateAndTruncate(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, dir)
	ns, err := e.Namespace("c")
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := ns.Put([]byte(fmt.Sprintf("k-%03d", i)), []byte(fmt.Sprintf("v1-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot the WAL segments that hold the unflushed records.
	walDir := filepath.Join(dir, "c", "wal")
	snap := map[string][]byte{}
	ents, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(walDir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		snap[ent.Name()] = data
	}
	if err := ns.Flush(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: resurrect the pre-flush segments, as
	// if the process died after writing the SSTable but before the
	// truncate's removals hit the disk. The old engine is abandoned
	// without Close, exactly like a crash.
	for name, data := range snap {
		if err := os.WriteFile(filepath.Join(walDir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	e2, err := Open(Options{Dir: dir, MemtableBytes: 16 << 10, MaxTables: 3, NodeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	ns2, err := e2.Namespace("c")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k-%03d", i)
		v, ok, err := ns2.Get([]byte(key))
		if err != nil || !ok || string(v) != fmt.Sprintf("v1-%03d", i) {
			t.Fatalf("after replayed flush window, Get(%q) = %q,%v,%v", key, v, ok, err)
		}
	}
	count := 0
	if err := ns2.ScanLive(nil, nil, func(record.Record) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan sees %d records after duplicate replay, want %d", count, n)
	}
	// Re-flushing the replayed memtable must not corrupt anything.
	if err := ns2.Flush(); err != nil {
		t.Fatal(err)
	}
	count = 0
	if err := ns2.ScanLive(nil, nil, func(record.Record) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan sees %d records after re-flush, want %d", count, n)
	}
}

// Race hammer: concurrent point reads, scans and range truncations
// while size-tiered background compaction churns the table stack.
// Invariants: a read of an acked key returns a value at least as new
// as the last acknowledged write, scans always see every live key
// exactly once, and truncated ranges stay empty until rewritten.
func TestCompactionTruncateRaceHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer: skipped in -short mode")
	}
	e, err := Open(Options{
		Dir:             t.TempDir(),
		MemtableBytes:   8 << 10, // flush constantly
		MaxTables:       3,
		NodeID:          1,
		CacheBytes:      -1,
		BlockCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	ns, err := e.Namespace("h")
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 64
	key := func(i int) []byte { return []byte(fmt.Sprintf("h-%03d", i)) }
	val := func(c int64) []byte { return []byte(fmt.Sprintf("%08d", c)) }
	var acked [nKeys]atomic.Int64
	for i := 0; i < nKeys; i++ {
		if _, err := ns.Put(key(i), val(1)); err != nil {
			t.Fatal(err)
		}
		acked[i].Store(1)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	// Writer: bump every key's counter, acknowledging after each write.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := int64(2); ; c++ {
			for i := 0; i < nKeys; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ns.Put(key(i), val(c)); err != nil {
					fail("writer: %v", err)
					return
				}
				acked[i].Store(c)
			}
		}
	}()

	// Point readers: value must be >= the counter acked before the read.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(nKeys)
				lo := acked[i].Load()
				v, ok, err := ns.Get(key(i))
				if err != nil || !ok {
					fail("reader: Get(%s) = ok=%v err=%v", key(i), ok, err)
					return
				}
				c, perr := strconv.ParseInt(string(v), 10, 64)
				if perr != nil || c < lo {
					fail("reader: Get(%s) = %q, want counter >= %d", key(i), v, lo)
					return
				}
			}
		}(int64(g) + 42)
	}

	// Scanner: every live key exactly once, each at least as new as its
	// ack floor captured before the scan.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var lo [nKeys]int64
			for i := range lo {
				lo[i] = acked[i].Load()
			}
			seen := 0
			err := ns.ScanLive([]byte("h-"), []byte("h."), func(rec record.Record) bool {
				var i int
				if _, serr := fmt.Sscanf(string(rec.Key), "h-%03d", &i); serr != nil {
					fail("scanner: bad key %q", rec.Key)
					return false
				}
				c, perr := strconv.ParseInt(string(rec.Value), 10, 64)
				if perr != nil || c < lo[i] {
					fail("scanner: key %q = %q, want counter >= %d", rec.Key, rec.Value, lo[i])
					return false
				}
				seen++
				return true
			})
			if err != nil {
				fail("scanner: %v", err)
				return
			}
			if seen != nKeys && !t.Failed() {
				fail("scanner: saw %d keys, want %d", seen, nKeys)
				return
			}
		}
	}()

	// Truncator: writes a disjoint prefix and erases it; after
	// TruncateRange returns, the range reads empty.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < 20; i++ {
				if _, err := ns.Put([]byte(fmt.Sprintf("t-%03d", i)), val(int64(round))); err != nil {
					fail("truncator put: %v", err)
					return
				}
			}
			if _, err := ns.TruncateRange([]byte("t-"), []byte("t.")); err != nil {
				fail("truncator: %v", err)
				return
			}
			for i := 0; i < 20; i++ {
				if _, ok, err := ns.Get([]byte(fmt.Sprintf("t-%03d", i))); ok || err != nil {
					fail("truncated key t-%03d still visible (ok=%v err=%v)", i, ok, err)
					return
				}
			}
		}
	}()

	time.Sleep(1200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		e.Close()
		t.FailNow()
	}

	// Final state: every hammered key holds its last acked counter.
	for i := 0; i < nKeys; i++ {
		v, ok, err := ns.Get(key(i))
		if err != nil || !ok {
			t.Fatalf("final Get(%s): ok=%v err=%v", key(i), ok, err)
		}
		c, _ := strconv.ParseInt(string(v), 10, 64)
		if want := acked[i].Load(); c != want {
			t.Fatalf("final Get(%s) = %d, want %d", key(i), c, want)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
