package storage

import (
	"container/list"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"

	"scads/internal/record"
)

// BlockCache is a sharded LRU of decoded SSTable blocks, shared across
// every namespace of an engine and keyed (table path, block index). It
// caches the *decoded* records rather than raw bytes, so a hit skips
// both the pread and the per-record CRC check and decode — the two
// costs that dominate an uncached point read.
//
// Invalidation contract: SSTables are immutable, so cached blocks can
// never go stale; entries only leave by LRU eviction or by DropTable
// when a compaction unlinks the table file. The exact-key read cache
// (Cache) sits in front and has its own write-invalidation story; this
// layer never needs one.
//
// BlockCache implements sstable.BlockCache.
type BlockCache struct {
	shards []blockShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type blockShard struct {
	mu       sync.Mutex
	lru      *list.List // front = most recently used
	entries  map[blockKey]*list.Element
	bytes    int64
	maxBytes int64
}

type blockKey struct {
	path  string
	block int
}

type blockEntry struct {
	key  blockKey
	recs []record.Record
	size int64
}

// blockEntryOverhead approximates per-entry bookkeeping (map slot,
// list element, entry struct) charged on top of the caller-reported
// block footprint.
const blockEntryOverhead = 128

// NewBlockCache returns a cache holding at most totalBytes of decoded
// blocks across shards (shard count rounded up to a power of two,
// minimum 1).
func NewBlockCache(totalBytes int64, shards int) *BlockCache {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := totalBytes / int64(n)
	if perShard < 1 {
		perShard = 1
	}
	c := &BlockCache{shards: make([]blockShard, n)}
	for i := range c.shards {
		c.shards[i] = blockShard{
			lru:      list.New(),
			entries:  make(map[blockKey]*list.Element),
			maxBytes: perShard,
		}
	}
	return c
}

func (c *BlockCache) shardFor(k blockKey) *blockShard {
	h := fnv.New32a()
	h.Write([]byte(k.path))
	h.Write([]byte(strconv.Itoa(k.block)))
	return &c.shards[h.Sum32()&uint32(len(c.shards)-1)]
}

// Get returns the cached decoded block, if present.
func (c *BlockCache) Get(path string, block int) ([]record.Record, bool) {
	k := blockKey{path: path, block: block}
	s := c.shardFor(k)
	s.mu.Lock()
	el, ok := s.entries[k]
	var recs []record.Record
	if ok {
		s.lru.MoveToFront(el)
		recs = el.Value.(*blockEntry).recs
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return recs, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores a decoded block. The slice and its records are shared
// with every future Get and must be treated as immutable.
func (c *BlockCache) Put(path string, block int, recs []record.Record, sizeBytes int) {
	k := blockKey{path: path, block: block}
	e := &blockEntry{key: k, recs: recs, size: int64(len(k.path)+sizeBytes) + blockEntryOverhead}
	s := c.shardFor(k)
	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		old := el.Value.(*blockEntry)
		s.bytes += e.size - old.size
		el.Value = e
		s.lru.MoveToFront(el)
	} else {
		s.entries[k] = s.lru.PushFront(e)
		s.bytes += e.size
	}
	evicted := int64(0)
	for s.bytes > s.maxBytes && s.lru.Len() > 1 {
		back := s.lru.Back()
		old := back.Value.(*blockEntry)
		s.lru.Remove(back)
		delete(s.entries, old.key)
		s.bytes -= old.size
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// DropTable evicts every cached block of the named table. Called when
// a compaction unlinks the table file; entries for the dead path would
// otherwise linger until LRU pressure finds them.
func (c *BlockCache) DropTable(path string) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, el := range s.entries {
			if k.path == path {
				e := el.Value.(*blockEntry)
				s.lru.Remove(el)
				delete(s.entries, k)
				s.bytes -= e.size
			}
		}
		s.mu.Unlock()
	}
}

// BlockCacheStats summarises block-cache effectiveness.
type BlockCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
}

// Stats returns a snapshot across all shards.
func (c *BlockCache) Stats() BlockCacheStats {
	st := BlockCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.lru.Len()
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
