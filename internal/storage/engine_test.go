package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"scads/internal/clock"
	"scads/internal/record"
)

func openTest(t testing.TB, dir string) *Engine {
	t.Helper()
	e, err := Open(Options{Dir: dir, MemtableBytes: 16 << 10, MaxTables: 3, NodeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPutGetDelete(t *testing.T) {
	e := openTest(t, t.TempDir())
	defer e.Close()
	ns, err := e.Namespace("users")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Put([]byte("alice"), []byte("profile-a")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := ns.Get([]byte("alice"))
	if err != nil || !ok || string(v) != "profile-a" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	if _, err := ns.Delete([]byte("alice")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ns.Get([]byte("alice")); ok {
		t.Fatal("deleted key still visible")
	}
	// The tombstone itself is visible through GetRecord.
	rec, ok, _ := ns.GetRecord([]byte("alice"))
	if !ok || !rec.Tombstone {
		t.Fatalf("tombstone not visible: %+v ok=%v", rec, ok)
	}
}

func TestInvalidNamespaceName(t *testing.T) {
	e := openTest(t, "")
	defer e.Close()
	for _, bad := range []string{"", "1abc", "with space", "../escape", "a/b"} {
		if _, err := e.Namespace(bad); err == nil {
			t.Errorf("Namespace(%q) accepted", bad)
		}
	}
	for _, good := range []string{"users", "friend_index", "idx.birthday", "A-1"} {
		if _, err := e.Namespace(good); err != nil {
			t.Errorf("Namespace(%q) rejected: %v", good, err)
		}
	}
}

func TestVersionsMonotonic(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC))
	e, err := Open(Options{Clock: vc, NodeID: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var last uint64
	for i := 0; i < 1000; i++ {
		v := e.NextVersion()
		if v <= last {
			t.Fatalf("version %d not monotonic after %d", v, last)
		}
		if v&0xFFFF != 7 {
			t.Fatalf("version %x lost node ID bits", v)
		}
		last = v
	}
	// Advancing the clock keeps monotonicity and tracks wall time.
	vc.Advance(time.Second)
	v := e.NextVersion()
	if v <= last {
		t.Fatal("version went backwards after clock advance")
	}
}

func TestFlushAndRecover(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, dir)
	ns, _ := e.Namespace("users")
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := ns.Put([]byte(fmt.Sprintf("user-%04d", i)), bytes.Repeat([]byte("x"), 128)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ns.Flush(); err != nil {
		t.Fatal(err)
	}
	if ns.TableCount() == 0 {
		t.Fatal("no SSTable after explicit flush")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything must be back.
	e2 := openTest(t, dir)
	defer e2.Close()
	ns2, err := e2.Namespace("users")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("user-%04d", i))
		if _, ok, err := ns2.Get(key); !ok || err != nil {
			t.Fatalf("lost key %q after recovery: ok=%v err=%v", key, ok, err)
		}
	}
}

func TestWALRecoveryWithoutFlush(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, dir)
	ns, _ := e.Namespace("users")
	if _, err := ns.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Simulate crash: close WAL file handles without flushing by
	// closing the engine (close flushes; instead reopen over the same
	// dir while the first engine still has data only in WAL).
	// To exercise WAL-only recovery we bypass Close: the WAL already
	// has the record on disk.
	e2 := openTest(t, dir)
	defer e2.Close()
	ns2, _ := e2.Namespace("users")
	if v, ok, _ := ns2.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("WAL-only recovery failed: %q %v", v, ok)
	}
	e.Close()
}

func TestAutoFlushOnThreshold(t *testing.T) {
	e := openTest(t, t.TempDir())
	defer e.Close()
	ns, _ := e.Namespace("big")
	// 16 KiB threshold; write ~64 KiB.
	for i := 0; i < 256; i++ {
		if _, err := ns.Put([]byte(fmt.Sprintf("k-%04d", i)), bytes.Repeat([]byte("v"), 256)); err != nil {
			t.Fatal(err)
		}
	}
	if ns.TableCount() == 0 {
		t.Fatal("memtable never auto-flushed")
	}
	// All data still readable.
	for i := 0; i < 256; i++ {
		if _, ok, err := ns.Get([]byte(fmt.Sprintf("k-%04d", i))); !ok || err != nil {
			t.Fatalf("key %d missing after auto-flush", i)
		}
	}
}

func TestCompactionBoundsTableCount(t *testing.T) {
	e := openTest(t, t.TempDir())
	defer e.Close()
	ns, _ := e.Namespace("c")
	for round := 0; round < 8; round++ {
		for i := 0; i < 50; i++ {
			ns.Put([]byte(fmt.Sprintf("k-%02d-%02d", round, i)), bytes.Repeat([]byte("v"), 64))
		}
		if err := ns.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction is a background size-tiered pass; wait for the stack
	// to converge under the MaxTables budget.
	deadline := time.Now().Add(5 * time.Second)
	for ns.TableCount() > 4 {
		ns.WaitCompaction()
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := ns.TableCount(); got > 4 {
		t.Fatalf("TableCount = %d after compaction, want <= 4", got)
	}
	// Every key from every round survives.
	for round := 0; round < 8; round++ {
		for i := 0; i < 50; i++ {
			key := []byte(fmt.Sprintf("k-%02d-%02d", round, i))
			if _, ok, err := ns.Get(key); !ok || err != nil {
				t.Fatalf("key %q lost in compaction: ok=%v err=%v", key, ok, err)
			}
		}
	}
}

func TestScanMergedAcrossLayers(t *testing.T) {
	e := openTest(t, t.TempDir())
	defer e.Close()
	ns, _ := e.Namespace("s")
	// Layer 1 (oldest, flushed): even keys v1.
	for i := 0; i < 20; i += 2 {
		ns.Put([]byte(fmt.Sprintf("k-%02d", i)), []byte("old"))
	}
	ns.Flush()
	// Layer 2 (flushed): odd keys.
	for i := 1; i < 20; i += 2 {
		ns.Put([]byte(fmt.Sprintf("k-%02d", i)), []byte("mid"))
	}
	ns.Flush()
	// Memtable: overwrite a few evens, delete one odd.
	ns.Put([]byte("k-04"), []byte("new"))
	ns.Delete([]byte("k-07"))

	var keys []string
	vals := map[string]string{}
	err := ns.ScanLive([]byte("k-00"), []byte("k-20"), func(r record.Record) bool {
		keys = append(keys, string(r.Key))
		vals[string(r.Key)] = string(r.Value)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 19 { // 20 keys minus 1 deleted
		t.Fatalf("scan returned %d keys, want 19: %v", len(keys), keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("scan out of order: %q >= %q", keys[i-1], keys[i])
		}
	}
	if vals["k-04"] != "new" {
		t.Fatalf("memtable overwrite not visible in scan: %q", vals["k-04"])
	}
	if _, ok := vals["k-07"]; ok {
		t.Fatal("deleted key visible in live scan")
	}
}

func TestScanEarlyStop(t *testing.T) {
	e := openTest(t, t.TempDir())
	defer e.Close()
	ns, _ := e.Namespace("s")
	for i := 0; i < 100; i++ {
		ns.Put([]byte(fmt.Sprintf("k-%03d", i)), []byte("v"))
	}
	n := 0
	ns.ScanLive(nil, nil, func(record.Record) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("visited %d, want 10", n)
	}
}

func TestApplyLWWAcrossFlushedLayers(t *testing.T) {
	e := openTest(t, t.TempDir())
	defer e.Close()
	ns, _ := e.Namespace("r")
	// Newer version lands and is flushed to an SSTable.
	if err := ns.Apply(record.Record{Key: []byte("k"), Value: []byte("new"), Version: 100}); err != nil {
		t.Fatal(err)
	}
	ns.Flush()
	// An older replicated write arrives late; it must not shadow the
	// flushed newer version even though the memtable is empty.
	if err := ns.Apply(record.Record{Key: []byte("k"), Value: []byte("stale"), Version: 50}); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := ns.Get([]byte("k"))
	if !ok || string(v) != "new" {
		t.Fatalf("stale replicated write won: %q", v)
	}
}

func TestInMemoryEngine(t *testing.T) {
	e := openTest(t, "")
	defer e.Close()
	ns, _ := e.Namespace("mem")
	for i := 0; i < 1000; i++ {
		ns.Put([]byte(fmt.Sprintf("k-%04d", i)), []byte("v"))
	}
	if ns.TableCount() != 0 {
		t.Fatal("in-memory namespace produced SSTables")
	}
	if err := ns.Flush(); err != nil {
		t.Fatal(err)
	}
	n := 0
	ns.ScanLive(nil, nil, func(record.Record) bool { n++; return true })
	if n != 1000 {
		t.Fatalf("scan saw %d records, want 1000", n)
	}
}

func TestClosedEngine(t *testing.T) {
	e := openTest(t, t.TempDir())
	ns, _ := e.Namespace("x")
	ns.Put([]byte("k"), []byte("v"))
	e.Close()
	if _, err := ns.Put([]byte("k2"), []byte("v")); err != ErrClosed {
		t.Fatalf("Put after close: %v", err)
	}
	if _, _, err := ns.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get after close: %v", err)
	}
	if _, err := e.Namespace("y"); err != ErrClosed {
		t.Fatalf("Namespace after close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestNamespacesListedSorted(t *testing.T) {
	e := openTest(t, "")
	defer e.Close()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		e.Namespace(n)
	}
	got := e.Namespaces()
	want := []string{"alpha", "mid", "zeta"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Namespaces = %v", got)
	}
}

func TestStats(t *testing.T) {
	e := openTest(t, t.TempDir())
	defer e.Close()
	ns, _ := e.Namespace("s")
	for i := 0; i < 10; i++ {
		ns.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	s := e.Stats()
	if s.Namespaces != 1 || s.RecordCount != 10 || s.MemtableBytes <= 0 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	e := openTest(t, t.TempDir())
	defer e.Close()
	ns, _ := e.Namespace("conc")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := []byte(fmt.Sprintf("w%d-%03d", w, i))
				if _, err := ns.Put(key, bytes.Repeat([]byte("p"), 64)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, _, err := ns.Get(key); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ns.ScanLive(nil, nil, func(record.Record) bool { return true })
			}
		}()
	}
	wg.Wait()
	n := 0
	ns.ScanLive(nil, nil, func(record.Record) bool { n++; return true })
	if n != 4*200 {
		t.Fatalf("final scan saw %d records, want 800", n)
	}
}

// Property: a random interleaving of puts and deletes across flush
// boundaries matches a model map.
func TestQuickEngineMatchesModel(t *testing.T) {
	type op struct {
		Key    uint8
		Del    bool
		FlushB bool
	}
	dir := t.TempDir()
	iter := 0
	f := func(ops []op) bool {
		iter++
		e, err := Open(Options{Dir: fmt.Sprintf("%s/run%d", dir, iter), MemtableBytes: 1 << 20, NodeID: 1})
		if err != nil {
			return false
		}
		defer e.Close()
		ns, err := e.Namespace("m")
		if err != nil {
			return false
		}
		model := map[string]string{}
		for i, o := range ops {
			key := fmt.Sprintf("k%02x", o.Key%16)
			if o.Del {
				if _, err := ns.Delete([]byte(key)); err != nil {
					return false
				}
				delete(model, key)
			} else {
				val := fmt.Sprintf("v%d", i)
				if _, err := ns.Put([]byte(key), []byte(val)); err != nil {
					return false
				}
				model[key] = val
			}
			if o.FlushB {
				if err := ns.Flush(); err != nil {
					return false
				}
			}
		}
		// Verify via gets.
		for k, v := range model {
			got, ok, err := ns.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				return false
			}
		}
		// Verify via scan.
		seen := map[string]string{}
		ns.ScanLive(nil, nil, func(r record.Record) bool {
			seen[string(r.Key)] = string(r.Value)
			return true
		})
		if len(seen) != len(model) {
			return false
		}
		for k, v := range model {
			if seen[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEnginePut(b *testing.B) {
	e := openTest(b, b.TempDir())
	defer e.Close()
	ns, _ := e.Namespace("bench")
	val := bytes.Repeat([]byte("v"), 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ns.Put([]byte(fmt.Sprintf("user-%08d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineGet(b *testing.B) {
	e := openTest(b, b.TempDir())
	defer e.Close()
	ns, _ := e.Namespace("bench")
	const n = 10000
	val := bytes.Repeat([]byte("v"), 256)
	for i := 0; i < n; i++ {
		ns.Put([]byte(fmt.Sprintf("user-%08d", i)), val)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := ns.Get([]byte(fmt.Sprintf("user-%08d", i%n))); !ok || err != nil {
			b.Fatal("miss")
		}
	}
}

func BenchmarkEngineScan50(b *testing.B) {
	e := openTest(b, b.TempDir())
	defer e.Close()
	ns, _ := e.Namespace("bench")
	for i := 0; i < 10000; i++ {
		ns.Put([]byte(fmt.Sprintf("user-%08d", i)), []byte("v"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		ns.ScanLive([]byte("user-00005000"), nil, func(record.Record) bool {
			n++
			return n < 50
		})
	}
}

// Property: abandoning the engine without Close (a crash) and
// reopening from the same directory never loses an acknowledged write.
func TestQuickCrashRecoveryDurability(t *testing.T) {
	type op struct {
		Key   uint8
		Del   bool
		Crash bool
	}
	dir := t.TempDir()
	iter := 0
	f := func(ops []op) bool {
		iter++
		runDir := fmt.Sprintf("%s/crash%d", dir, iter)
		e, err := Open(Options{Dir: runDir, MemtableBytes: 2 << 10, NodeID: 1})
		if err != nil {
			return false
		}
		ns, err := e.Namespace("m")
		if err != nil {
			return false
		}
		model := map[string]string{}
		for i, o := range ops {
			key := fmt.Sprintf("k%02x", o.Key%32)
			if o.Del {
				if _, err := ns.Delete([]byte(key)); err != nil {
					return false
				}
				delete(model, key)
			} else {
				val := fmt.Sprintf("v%d", i)
				if _, err := ns.Put([]byte(key), []byte(val)); err != nil {
					return false
				}
				model[key] = val
			}
			if o.Crash {
				// Crash: drop the engine without flushing or closing,
				// then recover from disk (WAL + SSTables).
				e2, err := Open(Options{Dir: runDir, MemtableBytes: 2 << 10, NodeID: 1})
				if err != nil {
					return false
				}
				e = e2
				ns, err = e.Namespace("m")
				if err != nil {
					return false
				}
			}
		}
		for k, v := range model {
			got, ok, err := ns.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				return false
			}
		}
		count := 0
		ns.ScanLive(nil, nil, func(record.Record) bool { count++; return true })
		return count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxVersionTracksFreshness: MaxVersion rises with the highest
// accepted record version — including externally versioned applies —
// and ignores stale records the LWW check rejects. It is the failover
// freshness probe, so the contract matters: a replica that accepted a
// newer write must always rank above one that did not.
func TestMaxVersionTracksFreshness(t *testing.T) {
	e := openTest(t, "")
	defer e.Close()
	ns, err := e.Namespace("users")
	if err != nil {
		t.Fatal(err)
	}
	if got := ns.MaxVersion(); got != 0 {
		t.Fatalf("fresh namespace MaxVersion = %d", got)
	}
	if err := ns.Apply(record.Record{Key: []byte("a"), Value: []byte("v"), Version: 500}); err != nil {
		t.Fatal(err)
	}
	if got := ns.MaxVersion(); got != 500 {
		t.Fatalf("MaxVersion = %d, want 500", got)
	}
	// A superseded (stale) apply is rejected and must not move the
	// watermark backwards or forwards.
	if err := ns.Apply(record.Record{Key: []byte("a"), Value: []byte("old"), Version: 100}); err != nil {
		t.Fatal(err)
	}
	if got := ns.MaxVersion(); got != 500 {
		t.Fatalf("MaxVersion after stale apply = %d, want 500", got)
	}
	// A newer record on a different key raises it; tombstones count.
	if err := ns.Apply(record.Record{Key: []byte("b"), Version: 900, Tombstone: true}); err != nil {
		t.Fatal(err)
	}
	if got := ns.MaxVersion(); got != 900 {
		t.Fatalf("MaxVersion after tombstone = %d, want 900", got)
	}
}
