package storage

import (
	"container/list"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"

	"scads/internal/record"
)

// Cache is a sharded, invalidation-aware read cache sitting in front
// of the LSM stack. Entries are keyed (namespace, key) and striped
// across shards by key hash so concurrent readers on different keys
// rarely contend on the same lock. Each shard is an LRU bounded by
// bytes; the engine invalidates a key whenever a write for it lands
// (under the namespace write lock, so a racing fill can never
// resurrect a stale value — fills happen under the read lock, which
// excludes the writer holding the invalidation).
//
// Both positive and negative lookups are cached: absent keys are the
// common case for social workloads (checking friendship pairs), and a
// negative entry is invalidated by the insert that makes it stale just
// like a positive one.
type Cache struct {
	shards []cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheShard struct {
	mu       sync.Mutex
	lru      *list.List // front = most recently used
	entries  map[string]*list.Element
	bytes    int64
	maxBytes int64
}

type cacheEntry struct {
	key   string // namespace + "\x00" + record key
	rec   record.Record
	found bool
	size  int64
}

// entryOverhead approximates per-entry bookkeeping (map slot, list
// element, struct) charged against the byte budget in addition to key
// and value payloads.
const entryOverhead = 96

// NewCache returns a cache holding at most totalBytes across shards
// (shard count rounded up to a power of two, minimum 1).
func NewCache(totalBytes int64, shards int) *Cache {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := totalBytes / int64(n)
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{shards: make([]cacheShard, n)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			lru:      list.New(),
			entries:  make(map[string]*list.Element),
			maxBytes: perShard,
		}
	}
	return c
}

func cacheKey(namespace string, key []byte) string {
	return namespace + "\x00" + string(key)
}

func (c *Cache) shardFor(k string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(k))
	return &c.shards[h.Sum32()&uint32(len(c.shards)-1)]
}

// Get returns the cached resolution for (namespace, key): the record,
// whether the store holds the key (found), and whether the cache had
// an answer at all (hit). A hit with found=false is a cached negative
// lookup.
func (c *Cache) Get(namespace string, key []byte) (rec record.Record, found, hit bool) {
	k := cacheKey(namespace, key)
	s := c.shardFor(k)
	s.mu.Lock()
	el, ok := s.entries[k]
	if ok {
		s.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		rec, found = e.rec, e.found
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return rec, found, true
	}
	c.misses.Add(1)
	return record.Record{}, false, false
}

// Put stores the resolution of (namespace, key). The record is stored
// as-is; callers must treat cached records as immutable (the engine's
// records already are).
func (c *Cache) Put(namespace string, key []byte, rec record.Record, found bool) {
	k := cacheKey(namespace, key)
	e := &cacheEntry{
		key:   k,
		rec:   rec,
		found: found,
		size:  int64(len(k)+len(rec.Value)) + entryOverhead,
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		old := el.Value.(*cacheEntry)
		s.bytes += e.size - old.size
		el.Value = e
		s.lru.MoveToFront(el)
	} else {
		s.entries[k] = s.lru.PushFront(e)
		s.bytes += e.size
	}
	evicted := int64(0)
	for s.bytes > s.maxBytes && s.lru.Len() > 1 {
		back := s.lru.Back()
		old := back.Value.(*cacheEntry)
		s.lru.Remove(back)
		delete(s.entries, old.key)
		s.bytes -= old.size
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Invalidate drops any cached resolution for (namespace, key). Called
// under the namespace write lock by every mutation path.
func (c *Cache) Invalidate(namespace string, key []byte) {
	k := cacheKey(namespace, key)
	s := c.shardFor(k)
	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		e := el.Value.(*cacheEntry)
		s.lru.Remove(el)
		delete(s.entries, k)
		s.bytes -= e.size
	}
	s.mu.Unlock()
}

// InvalidateNamespace drops every cached resolution for the
// namespace. Range truncation (migration teardown) cannot enumerate
// the affected keys cheaply, so it sheds the whole namespace; the
// cache refills on the next reads.
func (c *Cache) InvalidateNamespace(namespace string) {
	prefix := namespace + "\x00"
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, el := range s.entries {
			if strings.HasPrefix(k, prefix) {
				e := el.Value.(*cacheEntry)
				s.lru.Remove(el)
				delete(s.entries, k)
				s.bytes -= e.size
			}
		}
		s.mu.Unlock()
	}
}

// CacheStats summarises cache effectiveness.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
}

// Stats returns a snapshot across all shards.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.lru.Len()
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
