// Package storage implements the SCADS storage engine: a log-structured
// merge store with named keyspaces ("namespaces"). Each namespace is an
// independent LSM stack — skiplist memtable, write-ahead log, and a set
// of immutable SSTables — supporting exactly the access paths the paper
// allows: point gets, point puts/deletes, and bounded contiguous range
// scans (§3.1: "any query must be a lookup over a bounded contiguous
// range of an index").
//
// The engine substitutes for Cassandra in the paper's implementation
// plan (§3.4): SCADS needs an ordered, durable, replicable store with
// predictable per-operation cost, which this provides from scratch.
//
// Two cross-cutting layers wrap the per-namespace LSM stacks:
//
//   - A sharded, invalidation-aware read cache (Cache) in front of
//     every namespace, keyed (namespace, key) and striped to avoid
//     lock contention. Point reads consult it before touching the
//     memtable or any SSTable; every mutation invalidates its key
//     under the namespace write lock, so readers can never observe a
//     value older than the latest applied write. Sized by
//     Options.CacheBytes.
//
//   - A batched write path: ApplyBatch lands a whole record group with
//     one lock acquisition and one WAL write, and with
//     Options.SyncWrites the WAL's group commit (wal.AppendGroup /
//     SyncGroup) shares a single fsync across concurrent writers.
//     This is the storage half of the RPC-to-WAL batching pipeline —
//     rpc.Batcher coalesces requests per node, cluster.Node feeds them
//     here as batches.
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"scads/internal/clock"
	"scads/internal/memtable"
	"scads/internal/wal"
)

// Options configure an Engine.
type Options struct {
	// Dir is the data directory. Empty means fully in-memory (no WAL,
	// no SSTables), which the cluster simulator uses to run thousands
	// of nodes cheaply.
	Dir string
	// MemtableBytes is the flush threshold per namespace. Default 4 MiB.
	MemtableBytes int64
	// MaxTables triggers a major compaction when a namespace
	// accumulates more SSTables than this. Default 4.
	MaxTables int
	// Clock supplies version timestamps. Default: the real clock.
	Clock clock.Clock
	// NodeID is mixed into generated versions so writes from different
	// nodes never collide exactly. 16 bits are used.
	NodeID uint16
	// CacheBytes sizes the engine-wide sharded read cache. 0 selects
	// the default (32 MiB); negative disables caching entirely.
	CacheBytes int64
	// CacheShards stripes the read cache (rounded up to a power of
	// two). Default 16.
	CacheShards int
	// BlockCacheBytes sizes the engine-wide decoded-block cache shared
	// by every namespace's SSTables (see BlockCache). 0 disables it —
	// the raw block-read path, used by the e17 ablation — so callers
	// that want it (the cluster layer, scads-server) opt in explicitly.
	BlockCacheBytes int64
	// CompactionParallelism bounds how many background tier merges run
	// concurrently across the whole engine. Default 2.
	CompactionParallelism int
	// CompactionRateBytes throttles each background tier merge to this
	// many input bytes per second so compaction can never monopolise
	// the disk during a fence handoff. 0 means unlimited. Major
	// compactions (explicit Compact, TruncateRange) are never
	// throttled: they sit on the critical path of migration teardown.
	CompactionRateBytes int64
	// SyncWrites makes every accepted mutation durable before it is
	// acknowledged, using the WAL's group commit so concurrent writers
	// share fsyncs. Default false: SCADS acknowledges on replication
	// (§3.3.1), syncing at flush boundaries.
	SyncWrites bool
}

const defaultCacheBytes = 32 << 20

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.MaxTables <= 0 {
		o.MaxTables = 4
	}
	if o.Clock == nil {
		o.Clock = clock.NewReal()
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = defaultCacheBytes
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.CompactionParallelism <= 0 {
		o.CompactionParallelism = 2
	}
	return o
}

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("storage: engine closed")

var namespaceNameRE = regexp.MustCompile(`^[a-zA-Z][a-zA-Z0-9_.-]*$`)

// Engine owns a set of namespaces.
type Engine struct {
	opts       Options
	cache      *Cache      // nil when disabled
	blockCache *BlockCache // nil when disabled

	// compactSem bounds concurrent background tier merges engine-wide.
	compactSem chan struct{}

	mu         sync.RWMutex
	namespaces map[string]*Namespace
	closed     bool

	lastVersion atomic.Uint64 // hybrid logical clock state
}

// Open creates an Engine, recovering any namespaces present in the
// data directory.
func Open(opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	e := &Engine{
		opts:       opts,
		namespaces: make(map[string]*Namespace),
		compactSem: make(chan struct{}, opts.CompactionParallelism),
	}
	if opts.CacheBytes > 0 {
		e.cache = NewCache(opts.CacheBytes, opts.CacheShards)
	}
	if opts.BlockCacheBytes > 0 {
		e.blockCache = NewBlockCache(opts.BlockCacheBytes, opts.CacheShards)
	}
	if opts.Dir == "" {
		return e, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("storage: read dir: %w", err)
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		if _, err := e.Namespace(ent.Name()); err != nil {
			return nil, fmt.Errorf("storage: recover namespace %q: %w", ent.Name(), err)
		}
	}
	return e, nil
}

// Namespace returns the named namespace, creating (or recovering) it on
// first use.
func (e *Engine) Namespace(name string) (*Namespace, error) {
	if !namespaceNameRE.MatchString(name) {
		return nil, fmt.Errorf("storage: invalid namespace name %q", name)
	}
	e.mu.RLock()
	ns, ok := e.namespaces[name]
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if ok {
		return ns, nil
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if ns, ok := e.namespaces[name]; ok {
		return ns, nil
	}
	ns, err := e.openNamespace(name)
	if err != nil {
		return nil, err
	}
	e.namespaces[name] = ns
	return ns, nil
}

// Namespaces returns the names of all open namespaces, sorted.
func (e *Engine) Namespaces() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.namespaces))
	for n := range e.namespaces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NextVersion returns a monotonically increasing version: the node's
// clock in nanoseconds shifted left 16 bits, OR the node ID, bumped if
// the clock has not advanced since the previous call (a hybrid logical
// clock).
func (e *Engine) NextVersion() uint64 {
	for {
		now := uint64(e.opts.Clock.Now().UnixNano()) << 16
		candidate := now | uint64(e.opts.NodeID)
		last := e.lastVersion.Load()
		if candidate <= last {
			candidate = last + 1<<16 | uint64(e.opts.NodeID)
		}
		if e.lastVersion.CompareAndSwap(last, candidate) {
			return candidate
		}
	}
}

// Close flushes and closes every namespace.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	var firstErr error
	for _, ns := range e.namespaces {
		if err := ns.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (e *Engine) openNamespace(name string) (*Namespace, error) {
	ns := &Namespace{
		name:   name,
		engine: e,
		mem:    memtable.New(int64(e.opts.NodeID) + 1),
		// A fresh epoch per open: migration watermarks from a previous
		// process lifetime must not validate against the new (empty)
		// in-memory delta log. NextVersion is a hybrid logical clock,
		// so epochs are unique across restarts.
		applyEpoch: e.NextVersion(),
	}
	if e.opts.Dir == "" {
		return ns, nil
	}
	ns.dir = filepath.Join(e.opts.Dir, name)
	if err := os.MkdirAll(ns.dir, 0o755); err != nil {
		return nil, err
	}

	// Recover SSTables (sorted by sequence number, newest first).
	entries, err := os.ReadDir(ns.dir)
	if err != nil {
		return nil, err
	}
	var tableSeqs []uint64
	for _, ent := range entries {
		n := ent.Name()
		if !strings.HasSuffix(n, ".sst") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(n, ".sst"), 10, 64)
		if err != nil {
			continue
		}
		tableSeqs = append(tableSeqs, seq)
	}
	sort.Slice(tableSeqs, func(i, j int) bool { return tableSeqs[i] > tableSeqs[j] })
	for _, seq := range tableSeqs {
		r, err := ns.openTable(ns.tablePath(seq))
		if err != nil {
			return nil, err
		}
		ns.tables = append(ns.tables, r)
		if seq >= ns.tableSeq {
			ns.tableSeq = seq + 1
		}
	}

	// Recover the WAL into the memtable.
	log, recovered, err := wal.Open(filepath.Join(ns.dir, "wal"), nil)
	if err != nil {
		return nil, err
	}
	ns.log = log
	for _, rec := range recovered {
		ns.mem.Put(rec)
	}
	return ns, nil
}

// Cache exposes the engine's read cache (nil when disabled) for
// metrics and tests.
func (e *Engine) Cache() *Cache { return e.cache }

// BlockCache exposes the engine's decoded-block cache (nil when
// disabled) for metrics and tests.
func (e *Engine) BlockCache() *BlockCache { return e.blockCache }

// Stats summarises engine state for metrics and the director.
type Stats struct {
	Namespaces    int
	MemtableBytes int64
	TableCount    int
	RecordCount   int64
	Cache         CacheStats
	BlockCache    BlockCacheStats
}

// Stats returns aggregate statistics across namespaces.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var s Stats
	s.Namespaces = len(e.namespaces)
	if e.cache != nil {
		s.Cache = e.cache.Stats()
	}
	if e.blockCache != nil {
		s.BlockCache = e.blockCache.Stats()
	}
	for _, ns := range e.namespaces {
		ns.mu.RLock()
		s.MemtableBytes += ns.mem.Bytes()
		s.TableCount += len(ns.tables)
		s.RecordCount += int64(ns.mem.Len())
		for _, t := range ns.tables {
			s.RecordCount += int64(t.Count())
		}
		ns.mu.RUnlock()
	}
	return s
}
