package query

import (
	"strings"
	"testing"

	"scads/internal/row"
)

// socialSchema is the paper's §3.2 running example.
const socialSchema = `
-- The paper's social network schema.
ENTITY users (
    id string PRIMARY KEY,
    name string,
    birthday int
)
ENTITY friendships (
    f1 string,
    f2 string,
    PRIMARY KEY (f1, f2),
    CARDINALITY f1 5000,
    CARDINALITY f2 5000
)
QUERY findUser
SELECT * FROM users WHERE id = ?user LIMIT 1

QUERY friends
SELECT * FROM friendships WHERE f1 = ?user LIMIT 5000

QUERY friendsWithUpcomingBirthdays
SELECT p.* FROM friendships f JOIN users p ON f.f2 = p.id
WHERE f.f1 = ?user ORDER BY p.birthday LIMIT 50
`

func TestParseSocialSchema(t *testing.T) {
	s, err := Parse(socialSchema)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tables) != 2 || len(s.Queries) != 3 {
		t.Fatalf("tables=%d queries=%d", len(s.Tables), len(s.Queries))
	}

	users := s.Tables["users"]
	if users == nil || len(users.Columns) != 3 {
		t.Fatalf("users = %+v", users)
	}
	if c, ok := users.Column("birthday"); !ok || c.Type != row.Int {
		t.Fatalf("birthday column = %+v, %v", c, ok)
	}
	if !users.IsPrimaryKey([]string{"id"}) {
		t.Fatal("users PK wrong")
	}

	fr := s.Tables["friendships"]
	if !fr.IsPrimaryKey([]string{"f1", "f2"}) {
		t.Fatalf("friendships PK = %v", fr.PrimaryKey)
	}
	if fr.Cardinality["f1"] != 5000 || fr.Cardinality["f2"] != 5000 {
		t.Fatalf("cardinality = %v", fr.Cardinality)
	}

	q := s.Queries["friendsWithUpcomingBirthdays"]
	if q == nil {
		t.Fatal("join query missing")
	}
	if q.From.Table != "friendships" || q.From.Alias != "f" {
		t.Fatalf("From = %+v", q.From)
	}
	if q.Join == nil || q.Join.Right.Table != "users" || q.Join.Right.Alias != "p" {
		t.Fatalf("Join = %+v", q.Join)
	}
	if q.Join.LeftCol.String() != "f.f2" || q.Join.RightCol.String() != "p.id" {
		t.Fatalf("join cols = %s = %s", q.Join.LeftCol, q.Join.RightCol)
	}
	if len(q.Where) != 1 || !q.Where[0].IsParam || q.Where[0].Param != "user" {
		t.Fatalf("Where = %+v", q.Where)
	}
	if len(q.OrderBy) != 1 || q.OrderBy[0].Col.String() != "p.birthday" || q.OrderBy[0].Desc {
		t.Fatalf("OrderBy = %+v", q.OrderBy)
	}
	if q.Limit != 50 {
		t.Fatalf("Limit = %d", q.Limit)
	}
	if got := q.Params(); len(got) != 1 || got[0] != "user" {
		t.Fatalf("Params = %v", got)
	}
}

func TestParsePredicatesAndLiterals(t *testing.T) {
	src := `
ENTITY events (
    id string PRIMARY KEY,
    kind string,
    score float,
    at int,
    public bool
)
QUERY recentPublic
SELECT * FROM events
WHERE kind = 'party' AND public = true AND score >= 4.5 AND at > ?since
ORDER BY at DESC LIMIT 20
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q := s.Queries["recentPublic"]
	if len(q.Where) != 4 {
		t.Fatalf("Where = %+v", q.Where)
	}
	if q.Where[0].Literal != "party" {
		t.Fatalf("string literal = %v", q.Where[0].Literal)
	}
	if q.Where[1].Literal != true {
		t.Fatalf("bool literal = %v", q.Where[1].Literal)
	}
	if q.Where[2].Literal != 4.5 || q.Where[2].Op != OpGe {
		t.Fatalf("float literal = %+v", q.Where[2])
	}
	if !q.Where[3].IsParam || q.Where[3].Op != OpGt {
		t.Fatalf("param pred = %+v", q.Where[3])
	}
	if !q.OrderBy[0].Desc {
		t.Fatal("DESC not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty entity name", "ENTITY ( id string PRIMARY KEY )"},
		{"no primary key", "ENTITY t ( a string )"},
		{"unknown type", "ENTITY t ( a blob PRIMARY KEY )"},
		{"dup column", "ENTITY t ( a string PRIMARY KEY, a int )"},
		{"dup entity", "ENTITY t ( a string PRIMARY KEY ) ENTITY t ( b string PRIMARY KEY )"},
		{"bad pk column", "ENTITY t ( a string, PRIMARY KEY (zzz) )"},
		{"bad cardinality col", "ENTITY t ( a string PRIMARY KEY, CARDINALITY b 5 )"},
		{"zero cardinality", "ENTITY t ( a string PRIMARY KEY, CARDINALITY a 0 )"},
		{"dup cardinality", "ENTITY t ( a string PRIMARY KEY, CARDINALITY a 5, CARDINALITY a 6 )"},
		{"two pks", "ENTITY t ( a string PRIMARY KEY, b string PRIMARY KEY )"},
		{"missing limit", "ENTITY t ( a string PRIMARY KEY ) QUERY q SELECT * FROM t WHERE a = ?x"},
		{"zero limit", "ENTITY t ( a string PRIMARY KEY ) QUERY q SELECT * FROM t LIMIT 0"},
		{"unknown table", "ENTITY t ( a string PRIMARY KEY ) QUERY q SELECT * FROM ghost LIMIT 1"},
		{"unknown column", "ENTITY t ( a string PRIMARY KEY ) QUERY q SELECT * FROM t WHERE nope = ?x LIMIT 1"},
		{"unknown qualifier", "ENTITY t ( a string PRIMARY KEY ) QUERY q SELECT z.a FROM t LIMIT 1"},
		{"unqualified in join", "ENTITY t ( a string PRIMARY KEY ) ENTITY u ( b string PRIMARY KEY ) QUERY q SELECT * FROM t x JOIN u y ON x.a = y.b WHERE a = ?p LIMIT 1"},
		{"dup query", "ENTITY t ( a string PRIMARY KEY ) QUERY q SELECT * FROM t LIMIT 1 QUERY q SELECT * FROM t LIMIT 1"},
		{"bare question mark", "ENTITY t ( a string PRIMARY KEY ) QUERY q SELECT * FROM t WHERE a = ? LIMIT 1"},
		{"unterminated string", "ENTITY t ( a string PRIMARY KEY ) QUERY q SELECT * FROM t WHERE a = 'oops LIMIT 1"},
		{"join dup alias", "ENTITY t ( a string PRIMARY KEY ) QUERY q SELECT x.* FROM t x JOIN t x ON x.a = x.a LIMIT 1"},
		{"garbage", "HELLO WORLD"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: parsed without error", c.name)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	s := MustParse(socialSchema)
	for _, name := range s.QueryOrder {
		q := s.Queries[name]
		// Re-parse the rendered query against the same entities.
		src := `
ENTITY users ( id string PRIMARY KEY, name string, birthday int )
ENTITY friendships ( f1 string, f2 string, PRIMARY KEY (f1, f2), CARDINALITY f1 5000, CARDINALITY f2 5000 )
` + q.String()
		s2, err := Parse(src)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v\nrendered: %s", name, err, q.String())
		}
		q2 := s2.Queries[name]
		if q2.String() != q.String() {
			t.Fatalf("round trip changed query:\n%s\n%s", q.String(), q2.String())
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	src := `
entity t ( a string primary key )
query q select * from t where a = ?x limit 5
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Queries["q"].Limit != 5 {
		t.Fatal("lowercase keywords not accepted")
	}
}

func TestCommentsIgnored(t *testing.T) {
	src := `
-- a comment
ENTITY t ( a string PRIMARY KEY ) -- trailing
QUERY q SELECT * FROM t LIMIT 1
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestResolveTable(t *testing.T) {
	s := MustParse(socialSchema)
	q := s.Queries["friendsWithUpcomingBirthdays"]
	if tb, ok := s.ResolveTable(q, "f"); !ok || tb.Name != "friendships" {
		t.Fatalf("ResolveTable(f) = %v %v", tb, ok)
	}
	if tb, ok := s.ResolveTable(q, "p"); !ok || tb.Name != "users" {
		t.Fatalf("ResolveTable(p) = %v %v", tb, ok)
	}
	if _, ok := s.ResolveTable(q, "zzz"); ok {
		t.Fatal("ResolveTable resolved unknown alias")
	}
}

func TestNegativeNumberLiteral(t *testing.T) {
	src := `
ENTITY t ( a string PRIMARY KEY, n int )
QUERY q SELECT * FROM t WHERE a = ?x AND n > -5 LIMIT 3
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Queries["q"].Where[1].Literal != int64(-5) {
		t.Fatalf("negative literal = %v", s.Queries["q"].Where[1].Literal)
	}
}

func TestOpString(t *testing.T) {
	ops := map[CompareOp]string{OpEq: "=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v.String() = %q", op, op.String())
		}
	}
	if !strings.Contains(CompareOp(9).String(), "9") {
		t.Error("unknown op string")
	}
}

func BenchmarkParseSocialSchema(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(socialSchema); err != nil {
			b.Fatal(err)
		}
	}
}
