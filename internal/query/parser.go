package query

import (
	"fmt"
	"strconv"
	"strings"

	"scads/internal/row"
)

// Parse reads a scadsQL program (ENTITY and QUERY statements) and
// returns the declared schema. Table and column references are
// resolved and validated; scale-independence analysis happens later in
// the analyzer.
func Parse(src string) (*Schema, error) {
	toks, err := lexQL(src)
	if err != nil {
		return nil, err
	}
	p := &qlParser{toks: toks}
	s := &Schema{
		Tables:  make(map[string]*TableDef),
		Queries: make(map[string]*QueryDef),
	}
	for !p.at(tokEOF) {
		switch {
		case p.peek().isKeyword("ENTITY"):
			t, err := p.entity()
			if err != nil {
				return nil, err
			}
			if _, dup := s.Tables[t.Name]; dup {
				return nil, fmt.Errorf("query: entity %q declared twice", t.Name)
			}
			s.Tables[t.Name] = t
			s.TableOrder = append(s.TableOrder, t.Name)
		case p.peek().isKeyword("QUERY"):
			q, err := p.query()
			if err != nil {
				return nil, err
			}
			if _, dup := s.Queries[q.Name]; dup {
				return nil, fmt.Errorf("query: query %q declared twice", q.Name)
			}
			s.Queries[q.Name] = q
			s.QueryOrder = append(s.QueryOrder, q.Name)
		default:
			return nil, fmt.Errorf("query: line %d: expected ENTITY or QUERY, got %s", p.peek().line, p.peek())
		}
	}
	if err := s.resolve(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustParse is Parse for statically known programs; panics on error —
// the regexp.MustCompile convention. Schemas arriving from users go
// through Parse (DefineSchema does); no library code calls MustParse.
func MustParse(src string) *Schema {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type qlParser struct {
	toks []tokenQL
	pos  int
}

func (p *qlParser) peek() tokenQL { return p.toks[p.pos] }
func (p *qlParser) at(k tokenKind) bool {
	return p.peek().kind == k
}
func (p *qlParser) next() tokenQL {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *qlParser) expectPunct(text string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != text {
		return fmt.Errorf("query: line %d: expected %q, got %s", t.line, text, t)
	}
	return nil
}

func (p *qlParser) expectKeyword(kw string) error {
	t := p.next()
	if !t.isKeyword(kw) {
		return fmt.Errorf("query: line %d: expected %s, got %s", t.line, kw, t)
	}
	return nil
}

func (p *qlParser) ident() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("query: line %d: expected identifier, got %s", t.line, t)
	}
	return t.text, nil
}

// entity := ENTITY name ( item ("," item)* )
// item   := col type [PRIMARY KEY] | PRIMARY KEY (cols) | CARDINALITY col N
func (p *qlParser) entity() (*TableDef, error) {
	p.next() // ENTITY
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	t := &TableDef{Name: name, Cardinality: make(map[string]int)}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peek().isKeyword("PRIMARY"):
			p.next()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				t.PrimaryKey = append(t.PrimaryKey, col)
				if p.peek().kind == tokPunct && p.peek().text == "," {
					p.next()
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		case p.peek().isKeyword("CARDINALITY"):
			p.next()
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			numTok := p.next()
			if numTok.kind != tokNumber {
				return nil, fmt.Errorf("query: line %d: CARDINALITY needs a number, got %s", numTok.line, numTok)
			}
			n, err := strconv.Atoi(numTok.text)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("query: line %d: bad cardinality %q", numTok.line, numTok.text)
			}
			if _, dup := t.Cardinality[col]; dup {
				return nil, fmt.Errorf("query: line %d: duplicate CARDINALITY for %q", numTok.line, col)
			}
			t.Cardinality[col] = n
		default:
			colName, err := p.ident()
			if err != nil {
				return nil, err
			}
			typeName, err := p.ident()
			if err != nil {
				return nil, err
			}
			ty, err := row.ParseType(strings.ToLower(typeName))
			if err != nil {
				return nil, fmt.Errorf("query: entity %s, column %s: %w", name, colName, err)
			}
			if _, dup := t.Column(colName); dup {
				return nil, fmt.Errorf("query: entity %s: duplicate column %q", name, colName)
			}
			t.Columns = append(t.Columns, row.Column{Name: colName, Type: ty})
			if p.peek().isKeyword("PRIMARY") {
				p.next()
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				if len(t.PrimaryKey) > 0 {
					return nil, fmt.Errorf("query: entity %s: multiple primary keys", name)
				}
				t.PrimaryKey = []string{colName}
			}
		}
		if p.peek().kind == tokPunct && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if len(t.PrimaryKey) == 0 {
		return nil, fmt.Errorf("query: entity %s has no primary key", name)
	}
	for _, pk := range t.PrimaryKey {
		if _, ok := t.Column(pk); !ok {
			return nil, fmt.Errorf("query: entity %s: primary key column %q not declared", name, pk)
		}
	}
	for col := range t.Cardinality {
		if _, ok := t.Column(col); !ok {
			return nil, fmt.Errorf("query: entity %s: cardinality on unknown column %q", name, col)
		}
	}
	return t, nil
}

// query := QUERY name SELECT select FROM ref [JOIN ref ON col = col]
//
//	[WHERE pred (AND pred)*] [ORDER BY col [DESC] (, col [DESC])*]
//	LIMIT n
func (p *qlParser) query() (*QueryDef, error) {
	p.next() // QUERY
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	q := &QueryDef{Name: name}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if p.peek().kind == tokPunct && p.peek().text == "*" {
		p.next()
	} else {
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, c)
			if p.peek().kind == tokPunct && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	q.From, err = p.tableRef()
	if err != nil {
		return nil, err
	}
	if p.peek().isKeyword("JOIN") {
		p.next()
		right, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		left, err := p.colRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		rightCol, err := p.colRef()
		if err != nil {
			return nil, err
		}
		q.Join = &JoinClause{Right: right, LeftCol: left, RightCol: rightCol}
	}
	if p.peek().isKeyword("WHERE") {
		p.next()
		for {
			pred, err := p.predicate()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if p.peek().isKeyword("AND") {
				p.next()
				continue
			}
			break
		}
	}
	if p.peek().isKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			oc := OrderCol{Col: c}
			if p.peek().isKeyword("DESC") {
				p.next()
				oc.Desc = true
			} else if p.peek().isKeyword("ASC") {
				p.next()
			}
			q.OrderBy = append(q.OrderBy, oc)
			if p.peek().kind == tokPunct && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("LIMIT"); err != nil {
		return nil, fmt.Errorf("query %s: every query must declare a LIMIT (scale independence): %w", name, err)
	}
	limTok := p.next()
	if limTok.kind != tokNumber {
		return nil, fmt.Errorf("query: line %d: LIMIT needs a number", limTok.line)
	}
	lim, err := strconv.Atoi(limTok.text)
	if err != nil || lim <= 0 {
		return nil, fmt.Errorf("query: line %d: bad LIMIT %q", limTok.line, limTok.text)
	}
	q.Limit = lim
	return q, nil
}

func (p *qlParser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	// An optional alias is a bare identifier that is not a keyword
	// continuing the statement.
	if p.at(tokIdent) && !isReserved(p.peek().text) {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func isReserved(s string) bool {
	switch strings.ToUpper(s) {
	case "SELECT", "FROM", "JOIN", "ON", "WHERE", "AND", "ORDER", "BY",
		"LIMIT", "DESC", "ASC", "ENTITY", "QUERY", "PRIMARY", "KEY", "CARDINALITY":
		return true
	}
	return false
}

// colRef := ident [. (ident | *)]
func (p *qlParser) colRef() (ColRef, error) {
	first, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	if p.peek().kind == tokPunct && p.peek().text == "." {
		p.next()
		if p.peek().kind == tokPunct && p.peek().text == "*" {
			p.next()
			return ColRef{Qualifier: first, Column: "*"}, nil
		}
		col, err := p.ident()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Qualifier: first, Column: col}, nil
	}
	return ColRef{Column: first}, nil
}

func (p *qlParser) predicate() (Predicate, error) {
	col, err := p.colRef()
	if err != nil {
		return Predicate{}, err
	}
	opTok := p.next()
	var op CompareOp
	switch opTok.text {
	case "=":
		op = OpEq
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return Predicate{}, fmt.Errorf("query: line %d: expected comparison operator, got %s", opTok.line, opTok)
	}
	pred := Predicate{Col: col, Op: op}
	v := p.next()
	switch v.kind {
	case tokParam:
		pred.IsParam = true
		pred.Param = v.text
	case tokString:
		pred.Literal = v.text
	case tokNumber:
		if strings.Contains(v.text, ".") {
			f, err := strconv.ParseFloat(v.text, 64)
			if err != nil {
				return Predicate{}, fmt.Errorf("query: line %d: bad number %q", v.line, v.text)
			}
			pred.Literal = f
		} else {
			n, err := strconv.ParseInt(v.text, 10, 64)
			if err != nil {
				return Predicate{}, fmt.Errorf("query: line %d: bad number %q", v.line, v.text)
			}
			pred.Literal = n
		}
	case tokIdent:
		switch strings.ToLower(v.text) {
		case "true":
			pred.Literal = true
		case "false":
			pred.Literal = false
		default:
			return Predicate{}, fmt.Errorf("query: line %d: expected parameter or literal, got %s", v.line, v)
		}
	default:
		return Predicate{}, fmt.Errorf("query: line %d: expected parameter or literal, got %s", v.line, v)
	}
	return pred, nil
}

// resolve validates all table/column references in the schema's
// queries.
func (s *Schema) resolve() error {
	for _, qName := range s.QueryOrder {
		q := s.Queries[qName]
		scope := map[string]*TableDef{}
		from, ok := s.Tables[q.From.Table]
		if !ok {
			return fmt.Errorf("query %s: unknown table %q", q.Name, q.From.Table)
		}
		scope[q.From.Name()] = from
		if q.Join != nil {
			right, ok := s.Tables[q.Join.Right.Table]
			if !ok {
				return fmt.Errorf("query %s: unknown join table %q", q.Name, q.Join.Right.Table)
			}
			if _, dup := scope[q.Join.Right.Name()]; dup {
				return fmt.Errorf("query %s: duplicate table name/alias %q", q.Name, q.Join.Right.Name())
			}
			scope[q.Join.Right.Name()] = right
			for _, c := range []ColRef{q.Join.LeftCol, q.Join.RightCol} {
				if err := s.checkCol(q, scope, c, false); err != nil {
					return err
				}
			}
		}
		for _, c := range q.Select {
			if err := s.checkCol(q, scope, c, true); err != nil {
				return err
			}
		}
		for _, p := range q.Where {
			if err := s.checkCol(q, scope, p.Col, false); err != nil {
				return err
			}
		}
		for _, o := range q.OrderBy {
			if err := s.checkCol(q, scope, o.Col, false); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Schema) checkCol(q *QueryDef, scope map[string]*TableDef, c ColRef, allowStar bool) error {
	if c.Qualifier == "" {
		if len(scope) > 1 {
			return fmt.Errorf("query %s: column %q must be qualified in a join", q.Name, c.Column)
		}
		for _, t := range scope {
			if c.Column == "*" && allowStar {
				return nil
			}
			if _, ok := t.Column(c.Column); !ok {
				return fmt.Errorf("query %s: unknown column %q in table %q", q.Name, c.Column, t.Name)
			}
		}
		return nil
	}
	t, ok := scope[c.Qualifier]
	if !ok {
		return fmt.Errorf("query %s: unknown qualifier %q", q.Name, c.Qualifier)
	}
	if c.Column == "*" {
		if !allowStar {
			return fmt.Errorf("query %s: %s.* not allowed here", q.Name, c.Qualifier)
		}
		return nil
	}
	if _, ok := t.Column(c.Column); !ok {
		return fmt.Errorf("query %s: unknown column %q in table %q", q.Name, c.Column, t.Table())
	}
	return nil
}

// Table returns the table name (helper for error messages).
func (t *TableDef) Table() string { return t.Name }

// ResolveTable maps an effective name (alias or table) used in q to
// its TableDef.
func (s *Schema) ResolveTable(q *QueryDef, effectiveName string) (*TableDef, bool) {
	if q.From.Name() == effectiveName {
		t, ok := s.Tables[q.From.Table]
		return t, ok
	}
	if q.Join != nil && q.Join.Right.Name() == effectiveName {
		t, ok := s.Tables[q.Join.Right.Table]
		return t, ok
	}
	return nil, false
}
