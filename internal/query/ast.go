// Package query implements scadsQL, the restricted SQL of paper §3.2:
// developers declare entities (with the cardinality constraints that
// make update work bounded) and named, parameterised query templates
// ahead of time. The language deliberately cannot express ad-hoc
// queries — SELECTs must name a template's parameters, carry a LIMIT,
// and join along declared relationships, which is what lets the
// analyzer prove every query is a bounded contiguous index lookup.
//
// Example (the paper's social network):
//
//	ENTITY users (
//	    id string PRIMARY KEY,
//	    name string,
//	    birthday int
//	)
//	ENTITY friendships (
//	    f1 string,
//	    f2 string,
//	    PRIMARY KEY (f1, f2),
//	    CARDINALITY f1 5000,
//	    CARDINALITY f2 5000
//	)
//	QUERY friendsWithUpcomingBirthdays
//	SELECT p.* FROM friendships f JOIN users p ON f.f2 = p.id
//	WHERE f.f1 = ?user ORDER BY p.birthday LIMIT 50
package query

import (
	"fmt"
	"strings"

	"scads/internal/row"
)

// Schema holds everything a scadsQL program declares.
type Schema struct {
	Tables  map[string]*TableDef
	Queries map[string]*QueryDef
	// Order preserves declaration order for deterministic output.
	TableOrder []string
	QueryOrder []string
}

// TableDef declares one entity.
type TableDef struct {
	Name       string
	Columns    []row.Column
	PrimaryKey []string
	// Cardinality bounds the number of rows matching an equality on
	// the column — e.g. friendships.f1 ≤ 5000 encodes Facebook's
	// friend cap (§2.3). Columns without a bound are unbounded.
	Cardinality map[string]int
}

// Column returns the column definition by name.
func (t *TableDef) Column(name string) (row.Column, bool) {
	for _, c := range t.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return row.Column{}, false
}

// IsPrimaryKey reports whether cols exactly equals the primary key.
func (t *TableDef) IsPrimaryKey(cols []string) bool {
	if len(cols) != len(t.PrimaryKey) {
		return false
	}
	for i := range cols {
		if cols[i] != t.PrimaryKey[i] {
			return false
		}
	}
	return true
}

// ColRef references a (possibly alias-qualified) column. Column "*"
// means all columns of the qualifier.
type ColRef struct {
	Qualifier string // alias or table name; may be empty in single-table queries
	Column    string
}

// String renders the reference.
func (c ColRef) String() string {
	if c.Qualifier == "" {
		return c.Column
	}
	return c.Qualifier + "." + c.Column
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the effective name the query refers to this table by.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// CompareOp is a predicate operator.
type CompareOp int

// Supported operators.
const (
	OpEq CompareOp = iota
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// Predicate is one WHERE conjunct: column op (parameter | literal).
type Predicate struct {
	Col     ColRef
	Op      CompareOp
	IsParam bool
	Param   string // without the leading '?'
	Literal any    // normalised row value when !IsParam
}

// String renders the predicate.
func (p Predicate) String() string {
	rhs := fmt.Sprintf("%v", p.Literal)
	if p.IsParam {
		rhs = "?" + p.Param
	} else if s, ok := p.Literal.(string); ok {
		rhs = "'" + s + "'"
	}
	return fmt.Sprintf("%s %s %s", p.Col, p.Op, rhs)
}

// OrderCol is one ORDER BY term.
type OrderCol struct {
	Col  ColRef
	Desc bool
}

// JoinClause is the single supported join form: JOIN right ON
// left-col = right-col.
type JoinClause struct {
	Right    TableRef
	LeftCol  ColRef
	RightCol ColRef
}

// QueryDef is one declared query template.
type QueryDef struct {
	Name    string
	Select  []ColRef
	From    TableRef
	Join    *JoinClause
	Where   []Predicate
	OrderBy []OrderCol
	Limit   int
}

// Params returns the template's parameter names in WHERE order.
func (q *QueryDef) Params() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range q.Where {
		if p.IsParam && !seen[p.Param] {
			out = append(out, p.Param)
			seen[p.Param] = true
		}
	}
	return out
}

// String renders the query template in parseable form.
func (q *QueryDef) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "QUERY %s SELECT ", q.Name)
	if len(q.Select) == 0 {
		b.WriteString("*")
	} else {
		for i, c := range q.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	fmt.Fprintf(&b, " FROM %s", q.From.Table)
	if q.From.Alias != "" {
		fmt.Fprintf(&b, " %s", q.From.Alias)
	}
	if q.Join != nil {
		fmt.Fprintf(&b, " JOIN %s", q.Join.Right.Table)
		if q.Join.Right.Alias != "" {
			fmt.Fprintf(&b, " %s", q.Join.Right.Alias)
		}
		fmt.Fprintf(&b, " ON %s = %s", q.Join.LeftCol, q.Join.RightCol)
	}
	for i, p := range q.Where {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(p.String())
	}
	for i, o := range q.OrderBy {
		if i == 0 {
			b.WriteString(" ORDER BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(o.Col.String())
		if o.Desc {
			b.WriteString(" DESC")
		}
	}
	fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	return b.String()
}
