package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString // single-quoted literal, quotes stripped
	tokParam  // ?name, the '?' stripped
	tokPunct  // ( ) , . * = < <= > >= ;
)

type tokenQL struct {
	kind tokenKind
	text string
	line int
}

func (t tokenQL) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// isKeyword reports whether the token is the given keyword
// (case-insensitive).
func (t tokenQL) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func lexQL(src string) ([]tokenQL, error) {
	var toks []tokenQL
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '\'' {
				if src[j] == '\n' {
					return nil, fmt.Errorf("query: line %d: newline in string literal", line)
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("query: line %d: unterminated string literal", line)
			}
			toks = append(toks, tokenQL{tokString, sb.String(), line})
			i = j + 1
		case c == '?':
			j := i + 1
			for j < len(src) && isIdentChar(rune(src[j])) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("query: line %d: '?' must be followed by a parameter name", line)
			}
			toks = append(toks, tokenQL{tokParam, src[i+1 : j], line})
			i = j
		case c == '<' || c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, tokenQL{tokPunct, src[i : i+2], line})
				i += 2
			} else {
				toks = append(toks, tokenQL{tokPunct, string(c), line})
				i++
			}
		case strings.ContainsRune("(),.*=;", rune(c)):
			toks = append(toks, tokenQL{tokPunct, string(c), line})
			i++
		case c >= '0' && c <= '9' || c == '-':
			j := i
			if c == '-' {
				j++
			}
			hasDigit := false
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				if src[j] != '.' {
					hasDigit = true
				}
				j++
			}
			if !hasDigit {
				return nil, fmt.Errorf("query: line %d: stray %q", line, c)
			}
			toks = append(toks, tokenQL{tokNumber, src[i:j], line})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && isIdentChar(rune(src[j])) {
				j++
			}
			toks = append(toks, tokenQL{tokIdent, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("query: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, tokenQL{tokEOF, "", line})
	return toks, nil
}

func isIdentChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
