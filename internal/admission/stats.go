package admission

import (
	"fmt"
	"sort"
	"strings"
)

// TenantStats is one tenant's admission counters.
type TenantStats struct {
	Tenant   string
	Priority Priority

	// Admitted counts operations (by cost) let through; ShedQuota and
	// ShedOverload count rejections by cause.
	Admitted     uint64
	ShedQuota    uint64
	ShedOverload uint64

	// ScanBytes is the total scan result bytes debited post-paid.
	ScanBytes int64

	// Rate is the tenant's demand in ops/sec over the last completed
	// hot-detection window (admit attempts, shed or not).
	Rate float64
}

// Stats is a point-in-time snapshot of the controller.
type Stats struct {
	InFlight     int
	PeakInFlight int
	MaxInFlight  int

	Admitted  uint64
	ShedQuota uint64
	// ShedByClass counts overload sheds per shed class (index =
	// ShedClass; class 0 = committed writes, shed last).
	ShedByClass [NumShedClasses]uint64

	// Tenants is sorted by tenant name.
	Tenants []TenantStats
}

// ShedOverload is the total overload sheds across classes.
func (s Stats) ShedOverload() uint64 {
	var n uint64
	for _, v := range s.ShedByClass {
		n += v
	}
	return n
}

// Stats snapshots the controller. Deterministic: tenants are sorted
// by name.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		InFlight:     c.inFlight,
		PeakInFlight: c.peak,
		MaxInFlight:  c.maxInFlight,
		Admitted:     c.admitted,
		ShedQuota:    c.shedQuota,
		ShedByClass:  c.shedByClass,
	}
	names := make([]string, 0, len(c.tenants))
	for name := range c.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := c.tenants[name]
		s.Tenants = append(s.Tenants, TenantStats{
			Tenant:       name,
			Priority:     t.cfg.Priority,
			Admitted:     t.admitted,
			ShedQuota:    t.shedQuota,
			ShedOverload: t.shedOverload,
			ScanBytes:    t.debitedBytes,
			Rate:         t.rate,
		})
	}
	return s
}

// TenantDemand is one hot tenant's windowed demand rate.
type TenantDemand struct {
	Tenant string
	Rate   float64 // ops/sec over the last completed window
}

// HotTenants returns tenants whose windowed demand reaches HotFactor
// × the mean demand across the *other* active tenants, sorted by rate
// descending (ties by name). Excluding the candidate from the mean
// matters: against a self-inclusive mean a single dominant tenant can
// never exceed 2× with two tenants, so true skew would be invisible.
// The balancer polls this so sustained skew triggers rebalancing
// instead of permanent shedding. Requires at least two active tenants
// — a lone tenant is the workload, not a hot spot.
func (c *Controller) HotTenants() []TenantDemand {
	now := c.clk.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.tenants))
	for name := range c.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	var sum float64
	active := 0
	for _, name := range names {
		t := c.tenants[name]
		// Roll windows forward so a tenant that went silent decays.
		t.observe(now, 0, c.hotWindow)
		if t.rate > 0 {
			sum += t.rate
			active++
		}
	}
	if active < 2 {
		return nil
	}
	var hot []TenantDemand
	for _, name := range names {
		t := c.tenants[name]
		if t.rate <= 0 {
			continue
		}
		othersMean := (sum - t.rate) / float64(active-1)
		if t.rate >= c.hotFactor*othersMean {
			hot = append(hot, TenantDemand{Tenant: name, Rate: t.rate})
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Rate != hot[j].Rate {
			return hot[i].Rate > hot[j].Rate
		}
		return hot[i].Tenant < hot[j].Tenant
	})
	return hot
}

// Describe renders the snapshot as operator-readable lines (the
// scads-ctl tenants payload).
func (s Stats) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "admission: in-flight %d (peak %d, max %d), admitted %d, quota sheds %d, overload sheds %d\n",
		s.InFlight, s.PeakInFlight, s.MaxInFlight, s.Admitted, s.ShedQuota, s.ShedOverload())
	for class := NumShedClasses - 1; class >= 0; class-- {
		if s.ShedByClass[class] > 0 {
			fmt.Fprintf(&b, "  shed[%s]: %d\n", ClassNames[class], s.ShedByClass[class])
		}
	}
	for _, t := range s.Tenants {
		name := t.Tenant
		if name == "" {
			name = "(default)"
		}
		fmt.Fprintf(&b, "  tenant %s [%s]: admitted %d, quota-shed %d, overload-shed %d, scan-bytes %d, rate %.1f/s\n",
			name, t.Priority, t.Admitted, t.ShedQuota, t.ShedOverload, t.ScanBytes, t.Rate)
	}
	return b.String()
}
