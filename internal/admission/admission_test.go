package admission

import (
	"strings"
	"testing"
	"time"

	"scads/internal/clock"
	"scads/internal/rpc"
)

func newTestController(t *testing.T, cfg Config) (*Controller, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(1_000_000, 0))
	cfg.Clock = clk
	return New(cfg), clk
}

func mustAdmit(t *testing.T, c *Controller, tenant string, op Op, cost float64) func() {
	t.Helper()
	release, err := c.Admit(tenant, op, cost)
	if err != nil {
		t.Fatalf("Admit(%q, %v, %v): unexpected rejection: %v", tenant, op, cost, err)
	}
	return release
}

func mustReject(t *testing.T, c *Controller, tenant string, op Op, cost float64) error {
	t.Helper()
	release, err := c.Admit(tenant, op, cost)
	if err == nil {
		release()
		t.Fatalf("Admit(%q, %v, %v): expected rejection", tenant, op, cost)
	}
	if !rpc.IsOverloaded(err) {
		t.Fatalf("rejection not classified as overloaded: %v", err)
	}
	return err
}

// TestQuotaRefillBoundary pins the token-bucket refill math to exact
// virtual-clock boundaries: 10 ops/sec with burst 10 refills one
// token per 100ms, not a microsecond earlier.
func TestQuotaRefillBoundary(t *testing.T) {
	c, clk := newTestController(t, Config{
		Tenants: map[string]TenantConfig{
			"a": {OpsPerSec: 10, Burst: 10},
		},
	})
	for i := 0; i < 10; i++ {
		mustAdmit(t, c, "a", OpWrite, 1)()
	}
	err := mustReject(t, c, "a", OpWrite, 1)
	if got := rpc.RetryAfter(err); got != 100*time.Millisecond {
		t.Fatalf("retry-after at empty bucket = %v, want 100ms", got)
	}
	clk.Advance(99 * time.Millisecond)
	mustReject(t, c, "a", OpWrite, 1)
	clk.Advance(time.Millisecond) // exactly one full token now
	mustAdmit(t, c, "a", OpWrite, 1)()
	mustReject(t, c, "a", OpWrite, 1)

	// Burst cap: a long idle period refills to burst, never beyond.
	clk.Advance(time.Hour)
	for i := 0; i < 10; i++ {
		mustAdmit(t, c, "a", OpWrite, 1)()
	}
	mustReject(t, c, "a", OpWrite, 1)
}

// TestQuotaIsolation: one tenant exhausting its bucket never touches
// another tenant's tokens, and unconfigured tenants are unlimited.
func TestQuotaIsolation(t *testing.T) {
	c, _ := newTestController(t, Config{
		Tenants: map[string]TenantConfig{
			"noisy": {OpsPerSec: 5},
			"quiet": {OpsPerSec: 5},
		},
	})
	for i := 0; i < 5; i++ {
		mustAdmit(t, c, "noisy", OpWrite, 1)()
	}
	mustReject(t, c, "noisy", OpWrite, 1)
	for i := 0; i < 5; i++ {
		mustAdmit(t, c, "quiet", OpWrite, 1)()
	}
	for i := 0; i < 100; i++ {
		mustAdmit(t, c, "unconfigured", OpRead, 1)()
	}
	st := c.Stats()
	if st.ShedQuota != 1 {
		t.Fatalf("quota sheds = %d, want 1 (noisy only)", st.ShedQuota)
	}
}

// TestScanBytePostPaidDebit: scans admit while the byte bucket is
// positive, and an overdraw blocks the next scan until refill.
func TestScanBytePostPaidDebit(t *testing.T) {
	c, clk := newTestController(t, Config{
		Tenants: map[string]TenantConfig{
			"a": {ScanBytesPerSec: 1000, ScanBurst: 1000},
		},
	})
	mustAdmit(t, c, "a", OpScan, 1)()
	c.DebitScanBytes("a", 4000) // post-paid overdraw: balance -3000
	err := mustReject(t, c, "a", OpScan, 1)
	// The hint is the time until the bucket holds one full token:
	// 3001 units of deficit at 1000/s.
	if got := rpc.RetryAfter(err); got != 3001*time.Millisecond {
		t.Fatalf("retry-after for -3000 at 1000/s = %v, want 3.001s", got)
	}
	clk.Advance(3 * time.Second)
	mustReject(t, c, "a", OpScan, 1) // exactly zero is still not positive
	clk.Advance(time.Millisecond)
	mustAdmit(t, c, "a", OpScan, 1)()

	// Reads and writes never consult the scan-byte bucket.
	c.DebitScanBytes("a", 10_000)
	mustAdmit(t, c, "a", OpWrite, 1)()
	mustAdmit(t, c, "a", OpRead, 1)()
}

// TestShedPriorityOrder walks the in-flight watermark through every
// threshold and asserts the strict degradation order at each level:
// best-effort scans shed first, then best-effort writes, then
// committed scans; committed writes only at the ceiling.
func TestShedPriorityOrder(t *testing.T) {
	c, _ := newTestController(t, Config{
		MaxInFlight: 8,
		Tenants: map[string]TenantConfig{
			"be": {Priority: BestEffort},
			"co": {Priority: Committed},
		},
	})
	type probe struct {
		tenant string
		op     Op
		class  int
	}
	probes := []probe{
		{"co", OpWrite, 0},
		{"co", OpScan, 1},
		{"be", OpWrite, 2},
		{"be", OpScan, 3},
	}
	// shedFloor thresholds for max=8: floor 3 at 5 in flight, 2 at 6,
	// 1 at 7, 0 at 8.
	wantFloor := map[int]int{0: 4, 4: 4, 5: 3, 6: 2, 7: 1, 8: 0}
	// Fillers must be committed writes (class 0) so they stay
	// admittable up to the ceiling while we pin the watermark.
	var releases []func()
	raiseTo := func(n int) {
		for len(releases) < n {
			releases = append(releases, mustAdmit(t, c, "co", OpWrite, 1))
		}
	}
	defer func() {
		for _, r := range releases {
			r()
		}
	}()
	for _, inFlight := range []int{0, 4, 5, 6, 7} {
		raiseTo(inFlight)
		floor := wantFloor[inFlight]
		for _, p := range probes {
			if p.class >= floor {
				mustReject(t, c, p.tenant, p.op, 1)
			} else {
				mustAdmit(t, c, p.tenant, p.op, 1)()
			}
		}
	}
	// At the ceiling even committed writes shed ("committed writes
	// last" — nothing sheds later).
	raiseTo(8)
	for _, p := range probes {
		mustReject(t, c, p.tenant, p.op, 1)
	}
	st := c.Stats()
	for class := 1; class < NumShedClasses; class++ {
		if st.ShedByClass[class] < st.ShedByClass[class-1] {
			t.Fatalf("shed order violated: class %d shed %d times, class %d shed %d",
				class, st.ShedByClass[class], class-1, st.ShedByClass[class-1])
		}
	}
}

// TestReleaseDrainsInFlight: releasing admitted work reopens
// admission, and double-release is harmless.
func TestReleaseDrainsInFlight(t *testing.T) {
	c, _ := newTestController(t, Config{MaxInFlight: 2})
	r1 := mustAdmit(t, c, "", OpWrite, 1)
	r2 := mustAdmit(t, c, "", OpWrite, 1)
	mustReject(t, c, "", OpWrite, 1)
	r1()
	r1() // idempotent
	if st := c.Stats(); st.InFlight != 1 {
		t.Fatalf("in-flight after release = %d, want 1", st.InFlight)
	}
	mustAdmit(t, c, "", OpWrite, 1)()
	r2()
	if st := c.Stats(); st.InFlight != 0 || st.PeakInFlight != 2 {
		t.Fatalf("in-flight/peak = %d/%d, want 0/2", st.InFlight, st.PeakInFlight)
	}
}

// TestHotTenantDetection: a tenant whose windowed demand dominates
// the mean is reported (shed attempts count as demand), and detection
// needs at least two active tenants.
func TestHotTenantDetection(t *testing.T) {
	c, clk := newTestController(t, Config{
		HotWindow: time.Second,
		HotFactor: 4,
		Tenants: map[string]TenantConfig{
			"hot": {OpsPerSec: 10}, // quota-capped: most attempts shed
		},
	})
	// Window 1: hot fires 1000 attempts (mostly shed), cold fires 10.
	for i := 0; i < 1000; i++ {
		if release, err := c.Admit("hot", OpWrite, 1); err == nil {
			release()
		}
	}
	for i := 0; i < 10; i++ {
		mustAdmit(t, c, "cold", OpWrite, 1)()
	}
	if hot := c.HotTenants(); hot != nil {
		t.Fatalf("hot tenants before a completed window: %v", hot)
	}
	clk.Advance(time.Second)
	hot := c.HotTenants()
	if len(hot) != 1 || hot[0].Tenant != "hot" {
		t.Fatalf("hot tenants = %v, want exactly [hot]", hot)
	}
	if hot[0].Rate < 900 || hot[0].Rate > 1100 {
		t.Fatalf("hot rate = %v, want ~1000/s", hot[0].Rate)
	}
	// Two quiet windows later the demand signal decays.
	clk.Advance(2 * time.Second)
	if hot := c.HotTenants(); hot != nil {
		t.Fatalf("hot tenants after going quiet: %v", hot)
	}
}

// TestRejectionTaxonomy: rejections are classified rpc.ErrOverloaded
// and carry a parseable retry-after hint even across the string wire
// boundary.
func TestRejectionTaxonomy(t *testing.T) {
	c, _ := newTestController(t, Config{
		Tenants: map[string]TenantConfig{"a": {OpsPerSec: 1, Burst: 1}},
	})
	mustAdmit(t, c, "a", OpWrite, 1)()
	err := mustReject(t, c, "a", OpWrite, 1)
	wire := rpc.Response{Err: rpc.ErrString(err)}
	if e := wire.Error(); !rpc.IsOverloaded(e) {
		t.Fatalf("rehydrated wire error not classified overloaded: %v", e)
	} else if got := rpc.RetryAfter(e); got != time.Second {
		t.Fatalf("rehydrated retry-after = %v, want 1s", got)
	}
}

// TestStatsDescribe keeps the operator rendering stable enough for
// scads-ctl: every tenant appears, sorted, with its priority class.
func TestStatsDescribe(t *testing.T) {
	c, _ := newTestController(t, Config{
		Tenants: map[string]TenantConfig{
			"b": {Priority: Committed},
			"a": {Priority: BestEffort},
		},
	})
	mustAdmit(t, c, "b", OpWrite, 1)()
	st := c.Stats()
	if len(st.Tenants) != 2 || st.Tenants[0].Tenant != "a" || st.Tenants[1].Tenant != "b" {
		t.Fatalf("tenants not sorted: %+v", st.Tenants)
	}
	out := st.Describe()
	for _, want := range []string{"tenant a [besteffort]", "tenant b [committed]", "admitted 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe() missing %q:\n%s", want, out)
		}
	}
}
