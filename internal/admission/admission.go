// Package admission is the coordinator's front door: every public
// read, write and scan passes through a Controller before touching
// the data plane. It enforces three policies the paper's SLA story
// depends on once traffic is adversarial rather than friendly:
//
//   - Per-tenant token-bucket quotas (ops/sec, and scan-bytes/sec
//     debited post-paid) so one tenant's demand cannot consume the
//     coordinator. Buckets refill off an injected clock.Clock, so the
//     package sits inside the scads-vet determinism scope and the
//     unit suite replays refill boundaries exactly.
//   - Priority-aware shedding under measured overload. Overload is an
//     in-flight watermark (admitted ops currently executing), never a
//     wall-clock heuristic. As in-flight climbs toward MaxInFlight,
//     work is shed strictly by class: best-effort scans first, then
//     best-effort writes/reads, then committed scans; committed
//     writes are shed only at the hard ceiling.
//   - Backpressure as a classified error: every rejection wraps
//     rpc.ErrOverloaded with a retry-after hint, so client retry
//     budgets back off instead of hammering.
//
// The controller also tracks per-tenant demand rates over a rolling
// window; HotTenants surfaces sustained skew so the balancer can
// rebalance instead of the front door shedding the same tenant
// forever.
package admission

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scads/internal/clock"
	"scads/internal/rpc"
)

// Priority is a tenant's SLA class, mirroring the paper's split
// between committed traffic (carries a per-request SLO the system
// defends) and best-effort traffic (first to shed when capacity is
// momentarily short).
type Priority int

// Tenant SLA classes, in shed order: BestEffort work sheds first.
const (
	BestEffort Priority = iota
	Committed
)

// String names the priority for stats rendering.
func (p Priority) String() string {
	if p == Committed {
		return "committed"
	}
	return "besteffort"
}

// Op classifies a front-door operation for shed ordering. Scans shed
// before point ops within a priority class: a shed scan wastes no
// partial fan-out, while writes are the paper's "never lose acked
// work" contract.
type Op int

// Front-door operation kinds.
const (
	OpRead Op = iota
	OpWrite
	OpScan
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpScan:
		return "scan"
	default:
		return "read"
	}
}

// NumShedClasses is the number of distinct shed classes.
const NumShedClasses = 4

// Shed class names, indexed by ShedClass; class 0 sheds last.
var ClassNames = [NumShedClasses]string{
	"committed-write", "committed-scan", "besteffort-write", "besteffort-scan",
}

// ShedClass maps (priority, op) to its shed class. Higher classes
// shed earlier: 3 = best-effort scans, 2 = best-effort writes/reads,
// 1 = committed scans, 0 = committed writes/reads (shed only at the
// hard in-flight ceiling).
func ShedClass(pri Priority, op Op) int {
	if pri == Committed {
		if op == OpScan {
			return 1
		}
		return 0
	}
	if op == OpScan {
		return 3
	}
	return 2
}

// shedFloor returns the lowest shed class rejected at the given
// in-flight level: classes >= the floor are shed, classes below it
// are still admitted. NumShedClasses means nothing is shed. The
// thresholds are fractions of max so the degradation is strictly
// ordered at every instant: best-effort scans stop at 5/8 of the
// watermark, best-effort writes at 6/8, committed scans at 7/8, and
// committed writes only at the ceiling itself.
func shedFloor(inFlight, max int) int {
	switch {
	case inFlight >= max:
		return 0
	case inFlight*8 >= max*7:
		return 1
	case inFlight*8 >= max*6:
		return 2
	case inFlight*8 >= max*5:
		return 3
	default:
		return NumShedClasses
	}
}

// overloadRetryAfter is the retry-after hint attached to in-flight
// watermark sheds: the watermark clears as fast as admitted ops
// complete, so the hint is short.
const overloadRetryAfter = 5 * time.Millisecond

// TenantConfig is one tenant's quota and class. Zero-valued rates
// mean unlimited; the zero config admits everything at BestEffort.
type TenantConfig struct {
	// OpsPerSec refills the operation bucket (Get=1, GetMulti=len,
	// write=1, batch=len, scan=1). 0 = unlimited.
	OpsPerSec float64
	// Burst is the operation bucket capacity; 0 defaults to one
	// second's worth of refill (min 1).
	Burst float64

	// ScanBytesPerSec refills the scan-byte bucket. Scans are
	// admitted whenever the bucket is positive and debit their actual
	// result size afterwards (post-paid — the size isn't known up
	// front), so a huge scan can overdraw the bucket once and then
	// blocks further scans until it refills past zero. 0 = unlimited.
	ScanBytesPerSec float64
	// ScanBurst is the scan-byte bucket capacity; 0 defaults to one
	// second's worth of refill.
	ScanBurst float64

	// Priority is the tenant's SLA class (zero value: BestEffort).
	Priority Priority
}

// Config configures a Controller.
type Config struct {
	// Clock supplies time for bucket refill and demand windows; nil
	// defaults to the real clock.
	Clock clock.Clock

	// MaxInFlight is the in-flight watermark above which admission
	// sheds by priority class. 0 disables overload shedding (quotas
	// still apply).
	MaxInFlight int

	// Tenants seeds per-tenant configs; SetTenant adds or replaces
	// them later. Tenants never configured run with the zero config
	// at the DefaultPriority.
	Tenants map[string]TenantConfig

	// DefaultPriority is the class for tenants with no explicit
	// config — including the default (empty-name) tenant that plain,
	// sessionless API calls belong to. The zero value is BestEffort,
	// matching TenantConfig.Priority; set Committed to shield
	// unconfigured traffic until the hard ceiling. Priority only
	// matters once MaxInFlight is set, so a zero-config cluster is
	// unaffected either way.
	DefaultPriority Priority

	// HotWindow is the demand-rate measurement window for hot-tenant
	// detection (default 1s).
	HotWindow time.Duration
	// HotFactor marks a tenant hot when its windowed demand exceeds
	// HotFactor × the mean across active tenants (default 4).
	HotFactor float64
}

// bucket is a token bucket refilled off the controller's clock.
type bucket struct {
	rate   float64 // tokens per second; 0 = unlimited
	burst  float64
	tokens float64
	last   time.Time
}

func (b *bucket) advance(now time.Time) {
	if b.rate <= 0 {
		return
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// until returns how long until the bucket holds at least want tokens.
func (b *bucket) until(want float64) time.Duration {
	deficit := want - b.tokens
	if deficit <= 0 || b.rate <= 0 {
		return 0
	}
	return time.Duration(deficit / b.rate * float64(time.Second))
}

// tenantState is one tenant's runtime state, guarded by Controller.mu.
type tenantState struct {
	cfg       TenantConfig
	ops       bucket
	scanBytes bucket

	admitted     uint64
	shedQuota    uint64
	shedOverload uint64
	debitedBytes int64

	// Demand-rate window for hot-tenant detection: demand counts
	// every admit attempt (admitted or shed), because a shed tenant's
	// pressure is exactly the signal that should trigger rebalancing
	// rather than vanish.
	winStart time.Time
	winCount float64
	rate     float64 // ops/sec over the last completed window
}

func newTenantState(cfg TenantConfig, now time.Time) *tenantState {
	t := &tenantState{cfg: cfg, winStart: now}
	t.ops = bucket{rate: cfg.OpsPerSec, burst: cfg.Burst, last: now}
	if t.ops.burst <= 0 {
		t.ops.burst = cfg.OpsPerSec
		if t.ops.burst < 1 {
			t.ops.burst = 1
		}
	}
	t.ops.tokens = t.ops.burst
	t.scanBytes = bucket{rate: cfg.ScanBytesPerSec, burst: cfg.ScanBurst, last: now}
	if t.scanBytes.burst <= 0 {
		t.scanBytes.burst = cfg.ScanBytesPerSec
	}
	t.scanBytes.tokens = t.scanBytes.burst
	return t
}

// observe rolls the demand window and counts one attempt of the given
// cost.
func (t *tenantState) observe(now time.Time, cost float64, window time.Duration) {
	if elapsed := now.Sub(t.winStart); elapsed >= window {
		t.rate = t.winCount / elapsed.Seconds()
		t.winStart = now
		t.winCount = 0
	}
	t.winCount += cost
}

// Controller is the front-door admission gate. Safe for concurrent
// use.
type Controller struct {
	clk       clock.Clock
	hotWindow time.Duration
	hotFactor float64

	mu          sync.Mutex
	maxInFlight int
	tenants     map[string]*tenantState
	inFlight    int
	peak        int
	admitted    uint64
	shedQuota   uint64
	shedByClass [NumShedClasses]uint64
	defPriority Priority
}

// New builds a Controller from cfg.
func New(cfg Config) *Controller {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	c := &Controller{
		clk:         clk,
		maxInFlight: cfg.MaxInFlight,
		hotWindow:   cfg.HotWindow,
		hotFactor:   cfg.HotFactor,
		tenants:     make(map[string]*tenantState),
		defPriority: cfg.DefaultPriority,
	}
	if c.hotWindow <= 0 {
		c.hotWindow = time.Second
	}
	if c.hotFactor <= 0 {
		c.hotFactor = 4
	}
	now := clk.Now()
	names := make([]string, 0, len(cfg.Tenants))
	for name := range cfg.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c.tenants[name] = newTenantState(cfg.Tenants[name], now)
	}
	return c
}

// SetTenant installs or replaces a tenant's config, resetting its
// buckets to full.
func (c *Controller) SetTenant(name string, cfg TenantConfig) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tenants[name] = newTenantState(cfg, c.clk.Now())
}

// SetMaxInFlight changes the overload watermark at runtime.
func (c *Controller) SetMaxInFlight(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxInFlight = n
}

func (c *Controller) tenantLocked(name string, now time.Time) *tenantState {
	t := c.tenants[name]
	if t == nil {
		t = newTenantState(TenantConfig{Priority: c.defPriority}, now)
		c.tenants[name] = t
	}
	return t
}

// Admit gates one front-door operation for the named tenant (empty =
// default tenant). cost is the operation count it represents (a batch
// admits its length in one call). On admission it returns a release
// func the caller must invoke when the operation finishes — the
// release closes the in-flight accounting that overload shedding
// watches. On rejection the error wraps rpc.ErrOverloaded and carries
// a retry-after hint.
func (c *Controller) Admit(tenant string, op Op, cost float64) (func(), error) {
	if cost <= 0 {
		cost = 1
	}
	now := c.clk.Now()
	c.mu.Lock()
	t := c.tenantLocked(tenant, now)
	t.observe(now, cost, c.hotWindow)

	// Quota first: per-tenant fairness applies even when the
	// coordinator as a whole is idle.
	t.ops.advance(now)
	if t.ops.rate > 0 && t.ops.tokens < cost {
		wait := t.ops.until(cost)
		t.shedQuota++
		c.shedQuota++
		c.mu.Unlock()
		return nil, rpc.Overloaded(wait, fmt.Sprintf("tenant %q over ops quota", tenant))
	}
	if op == OpScan {
		t.scanBytes.advance(now)
		if t.scanBytes.rate > 0 && t.scanBytes.tokens <= 0 {
			// Post-paid scan bytes: a previous scan overdrew the
			// bucket; block scans until it refills past zero.
			wait := t.scanBytes.until(1)
			t.shedQuota++
			c.shedQuota++
			c.mu.Unlock()
			return nil, rpc.Overloaded(wait, fmt.Sprintf("tenant %q over scan-byte quota", tenant))
		}
	}

	// Overload: shed by class against the in-flight watermark.
	class := ShedClass(t.cfg.Priority, op)
	if c.maxInFlight > 0 && class >= shedFloor(c.inFlight, c.maxInFlight) {
		t.shedOverload++
		c.shedByClass[class]++
		inFlight, max := c.inFlight, c.maxInFlight
		c.mu.Unlock()
		return nil, rpc.Overloaded(overloadRetryAfter,
			fmt.Sprintf("coordinator overloaded (%d/%d in flight), shedding %s", inFlight, max, ClassNames[class]))
	}

	if t.ops.rate > 0 {
		t.ops.tokens -= cost
	}
	t.admitted++
	c.admitted++
	c.inFlight++
	if c.inFlight > c.peak {
		c.peak = c.inFlight
	}
	c.mu.Unlock()

	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.inFlight--
			c.mu.Unlock()
		})
	}, nil
}

// DebitScanBytes charges a completed scan's actual result size
// against the tenant's scan-byte bucket (post-paid; may drive it
// negative, which blocks the tenant's next scan until refill).
func (c *Controller) DebitScanBytes(tenant string, n int64) {
	if n <= 0 {
		return
	}
	now := c.clk.Now()
	c.mu.Lock()
	t := c.tenantLocked(tenant, now)
	t.debitedBytes += n
	if t.scanBytes.rate > 0 {
		t.scanBytes.advance(now)
		t.scanBytes.tokens -= float64(n)
	}
	c.mu.Unlock()
}
