package view

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"scads/internal/analyzer"
	"scads/internal/planner"
	"scads/internal/query"
	"scads/internal/row"
)

// mapStore is an in-memory Store for tests. It also applies mutations,
// playing the role of the coordinator's write path.
type mapStore struct {
	data map[string]map[string]row.Row // namespace -> key -> row
}

func newMapStore() *mapStore {
	return &mapStore{data: make(map[string]map[string]row.Row)}
}

func (s *mapStore) GetRow(ns string, key []byte) (row.Row, bool, error) {
	r, ok := s.data[ns][string(key)]
	return r, ok, nil
}

func (s *mapStore) ScanRows(ns string, start, end []byte, limit int) ([]row.Row, error) {
	keys := make([]string, 0)
	for k := range s.data[ns] {
		if k >= string(start) && (end == nil || k < string(end)) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var out []row.Row
	for _, k := range keys {
		if len(out) >= limit {
			break
		}
		out = append(out, s.data[ns][k])
	}
	return out, nil
}

func (s *mapStore) apply(muts []Mutation) {
	for _, m := range muts {
		ns := s.data[m.Namespace]
		if ns == nil {
			ns = make(map[string]row.Row)
			s.data[m.Namespace] = ns
		}
		if m.Value == nil {
			delete(ns, string(m.Key))
		} else {
			ns[string(m.Key)] = m.Value
		}
	}
}

// putBase stores a base-table row directly (simulating the
// coordinator's table write) and runs maintenance.
func (s *mapStore) putBase(t *testing.T, e *Engine, table *query.TableDef, oldRow, newRow row.Row) []Mutation {
	t.Helper()
	ns := planner.TableNamespace(table.Name)
	if s.data[ns] == nil {
		s.data[ns] = make(map[string]row.Row)
	}
	pkRow := newRow
	if pkRow == nil {
		pkRow = oldRow
	}
	key, err := row.EncodeKey(pkRow, table.PrimaryKey)
	if err != nil {
		t.Fatal(err)
	}
	if newRow == nil {
		delete(s.data[ns], string(key))
	} else {
		s.data[ns][string(key)] = newRow
	}
	muts, err := e.Mutations(table.Name, oldRow, newRow)
	if err != nil {
		t.Fatal(err)
	}
	s.apply(muts)
	return muts
}

const socialSchema = `
ENTITY users (
    id string PRIMARY KEY,
    name string,
    birthday int
)
ENTITY friendships (
    f1 string,
    f2 string,
    PRIMARY KEY (f1, f2),
    CARDINALITY f1 5000,
    CARDINALITY f2 5000
)
QUERY friendsWithUpcomingBirthdays
SELECT p.* FROM friendships f JOIN users p ON f.f2 = p.id
WHERE f.f1 = ?user ORDER BY p.birthday LIMIT 50

QUERY friendsOfFriends
SELECT b.* FROM friendships a JOIN friendships b ON a.f2 = b.f1
WHERE a.f1 = ?user LIMIT 200
`

func buildEngine(t testing.TB, store Store) (*query.Schema, *planner.Output, *Engine) {
	t.Helper()
	s := query.MustParse(socialSchema)
	results, err := analyzer.Analyze(s, analyzer.Config{MaxUpdateWork: 20000})
	if err != nil {
		t.Fatal(err)
	}
	out, err := planner.Compile(s, results)
	if err != nil {
		t.Fatal(err)
	}
	return s, out, NewEngine(s, out.Indexes, store)
}

func viewNS(out *planner.Output, q string) string {
	return out.Plans[q].Namespace
}

func TestFriendshipInsertPopulatesView(t *testing.T) {
	store := newMapStore()
	s, out, e := buildEngine(t, store)
	users, friendships := s.Tables["users"], s.Tables["friendships"]

	store.putBase(t, e, users, nil, row.Row{"id": "bob", "name": "Bob", "birthday": int64(321)})
	muts := store.putBase(t, e, friendships, nil, row.Row{"f1": "alice", "f2": "bob"})

	// Expect: one view entry (alice,321,bob), one reverse-index entry,
	// plus fof entries (none: bob has no friends yet... actually edge
	// (alice,bob) contributes a-side: b rows with f1=bob — none; and
	// b-side: a rows with f2=alice — none).
	bdNS := viewNS(out, "friendsWithUpcomingBirthdays")
	if len(store.data[bdNS]) != 1 {
		t.Fatalf("birthday view has %d entries, want 1 (muts: %d)", len(store.data[bdNS]), len(muts))
	}
	for _, v := range store.data[bdNS] {
		if v["name"] != "Bob" || v["birthday"] != int64(321) {
			t.Fatalf("view value = %v", v)
		}
	}
	revNS := "idx." + planner.ReverseIndexName("friendships", "f2")
	if len(store.data[revNS]) != 1 {
		t.Fatalf("reverse index has %d entries", len(store.data[revNS]))
	}
}

func TestBirthdayUpdateRewritesViewKey(t *testing.T) {
	store := newMapStore()
	s, out, e := buildEngine(t, store)
	users, friendships := s.Tables["users"], s.Tables["friendships"]

	bob := row.Row{"id": "bob", "name": "Bob", "birthday": int64(100)}
	store.putBase(t, e, users, nil, bob)
	store.putBase(t, e, friendships, nil, row.Row{"f1": "alice", "f2": "bob"})
	store.putBase(t, e, friendships, nil, row.Row{"f1": "carol", "f2": "bob"})

	bdNS := viewNS(out, "friendsWithUpcomingBirthdays")
	if len(store.data[bdNS]) != 2 {
		t.Fatalf("view entries = %d, want 2", len(store.data[bdNS]))
	}

	// Bob edits his birthday: both friends' view entries must move.
	newBob := row.Row{"id": "bob", "name": "Bob", "birthday": int64(777)}
	muts := store.putBase(t, e, users, bob, newBob)
	if len(muts) != 4 { // 2 deletes + 2 puts
		t.Fatalf("birthday update produced %d mutations, want 4", len(muts))
	}
	if len(store.data[bdNS]) != 2 {
		t.Fatalf("view entries after update = %d", len(store.data[bdNS]))
	}
	for _, v := range store.data[bdNS] {
		if v["birthday"] != int64(777) {
			t.Fatalf("stale birthday in view: %v", v)
		}
	}
}

func TestFriendshipDeleteRemovesViewEntry(t *testing.T) {
	store := newMapStore()
	s, out, e := buildEngine(t, store)
	users, friendships := s.Tables["users"], s.Tables["friendships"]

	store.putBase(t, e, users, nil, row.Row{"id": "bob", "name": "Bob", "birthday": int64(1)})
	edge := row.Row{"f1": "alice", "f2": "bob"}
	store.putBase(t, e, friendships, nil, edge)
	store.putBase(t, e, friendships, edge, nil)

	bdNS := viewNS(out, "friendsWithUpcomingBirthdays")
	if len(store.data[bdNS]) != 0 {
		t.Fatalf("view entries after unfriend = %d", len(store.data[bdNS]))
	}
	revNS := "idx." + planner.ReverseIndexName("friendships", "f2")
	if len(store.data[revNS]) != 0 {
		t.Fatalf("reverse entries after unfriend = %d", len(store.data[revNS]))
	}
}

func TestUserDeleteCleansView(t *testing.T) {
	store := newMapStore()
	s, out, e := buildEngine(t, store)
	users, friendships := s.Tables["users"], s.Tables["friendships"]

	bob := row.Row{"id": "bob", "name": "Bob", "birthday": int64(5)}
	store.putBase(t, e, users, nil, bob)
	store.putBase(t, e, friendships, nil, row.Row{"f1": "alice", "f2": "bob"})
	store.putBase(t, e, users, bob, nil)

	bdNS := viewNS(out, "friendsWithUpcomingBirthdays")
	if len(store.data[bdNS]) != 0 {
		t.Fatalf("view entries after user delete = %d", len(store.data[bdNS]))
	}
}

func TestFriendsOfFriendsCascade(t *testing.T) {
	store := newMapStore()
	s, out, e := buildEngine(t, store)
	friendships := s.Tables["friendships"]

	// alice -> bob, then bob -> carol: fof(alice) must contain carol.
	store.putBase(t, e, friendships, nil, row.Row{"f1": "alice", "f2": "bob"})
	store.putBase(t, e, friendships, nil, row.Row{"f1": "bob", "f2": "carol"})

	fofNS := viewNS(out, "friendsOfFriends")
	found := false
	for _, v := range store.data[fofNS] {
		if v["f1"] == "bob" && v["f2"] == "carol" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fof view missing alice->carol path: %v", store.data[fofNS])
	}

	// Removing bob->carol removes the path.
	store.putBase(t, e, friendships, row.Row{"f1": "bob", "f2": "carol"}, nil)
	for _, v := range store.data[fofNS] {
		if v["f2"] == "carol" {
			t.Fatalf("fof path survived edge removal: %v", store.data[fofNS])
		}
	}
}

func TestInsertBeforeJoinedRowExists(t *testing.T) {
	store := newMapStore()
	s, out, e := buildEngine(t, store)
	users, friendships := s.Tables["users"], s.Tables["friendships"]

	// Friendship lands before the user's profile exists (async world):
	// no view entry yet, and no error.
	store.putBase(t, e, friendships, nil, row.Row{"f1": "alice", "f2": "ghost"})
	bdNS := viewNS(out, "friendsWithUpcomingBirthdays")
	if len(store.data[bdNS]) != 0 {
		t.Fatal("view entry created for missing joined row")
	}
	// When the profile arrives, the looked-side trigger fills the view.
	store.putBase(t, e, users, nil, row.Row{"id": "ghost", "name": "Ghost", "birthday": int64(9)})
	if len(store.data[bdNS]) != 1 {
		t.Fatalf("view entries after late profile = %d, want 1", len(store.data[bdNS]))
	}
}

func TestUpdateSameKeyBecomesSinglePut(t *testing.T) {
	store := newMapStore()
	s, _, e := buildEngine(t, store)
	users := s.Tables["users"]

	bob := row.Row{"id": "bob", "name": "Bob", "birthday": int64(5)}
	store.putBase(t, e, users, nil, bob)
	store.putBase(t, e, s.Tables["friendships"], nil, row.Row{"f1": "alice", "f2": "bob"})

	// Name-only change: view key (f1, birthday, f2) is unchanged, so
	// the old-delete and new-put collapse into one put.
	newBob := row.Row{"id": "bob", "name": "Bobby", "birthday": int64(5)}
	muts, err := e.Mutations("users", bob, newBob)
	if err != nil {
		t.Fatal(err)
	}
	if len(muts) != 1 || muts[0].Value == nil {
		t.Fatalf("muts = %+v, want single put", muts)
	}
	if muts[0].Value["name"] != "Bobby" {
		t.Fatalf("value not refreshed: %v", muts[0].Value)
	}
}

func TestCardinalityViolationSurfaces(t *testing.T) {
	src := `
ENTITY users ( id string PRIMARY KEY, birthday int )
ENTITY friendships ( f1 string, f2 string, PRIMARY KEY (f1, f2), CARDINALITY f1 5000, CARDINALITY f2 2 )
QUERY q
SELECT p.* FROM friendships f JOIN users p ON f.f2 = p.id
WHERE f.f1 = ?user ORDER BY p.birthday LIMIT 50
`
	s := query.MustParse(src)
	results, err := analyzer.Analyze(s, analyzer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := planner.Compile(s, results)
	if err != nil {
		t.Fatal(err)
	}
	store := newMapStore()
	e := NewEngine(s, out.Indexes, store)

	celeb := row.Row{"id": "celeb", "birthday": int64(1)}
	store.putBase(t, e, s.Tables["users"], nil, celeb)
	// Three fans befriend the celebrity; declared bound is 2.
	for i := 0; i < 3; i++ {
		store.putBase(t, e, s.Tables["friendships"], nil, row.Row{"f1": fmt.Sprintf("fan%d", i), "f2": "celeb"})
	}
	_, err = e.Mutations("users", celeb, row.Row{"id": "celeb", "birthday": int64(2)})
	if !errors.Is(err, ErrCardinalityViolated) {
		t.Fatalf("cardinality violation not surfaced: %v", err)
	}
}

func TestMutationsForUnindexedTable(t *testing.T) {
	store := newMapStore()
	_, _, e := buildEngine(t, store)
	muts, err := e.Mutations("unrelated_table", nil, row.Row{"x": int64(1)})
	if err != nil || len(muts) != 0 {
		t.Fatalf("muts = %v, err = %v", muts, err)
	}
}

func TestIndexesAccessor(t *testing.T) {
	store := newMapStore()
	_, out, e := buildEngine(t, store)
	if len(e.Indexes()) != len(out.Indexes) {
		t.Fatal("Indexes() mismatch")
	}
	names := make([]string, 0)
	for _, d := range e.Indexes() {
		names = append(names, d.Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "view_friendsWithUpcomingBirthdays") {
		t.Fatalf("indexes = %v", names)
	}
}

func BenchmarkFriendshipInsertMaintenance(b *testing.B) {
	store := newMapStore()
	s, _, e := buildEngine(b, store)
	// Seed users.
	usersNS := planner.TableNamespace("users")
	store.data[usersNS] = make(map[string]row.Row)
	for i := 0; i < 1000; i++ {
		u := row.Row{"id": fmt.Sprintf("u%04d", i), "name": "x", "birthday": int64(i)}
		key, _ := row.EncodeKey(u, s.Tables["users"].PrimaryKey)
		store.data[usersNS][string(key)] = u
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		edge := row.Row{"f1": fmt.Sprintf("u%04d", i%1000), "f2": fmt.Sprintf("u%04d", (i+1)%1000)}
		muts, err := e.Mutations("friendships", nil, edge)
		if err != nil {
			b.Fatal(err)
		}
		store.apply(muts)
	}
}

// chatSchema drives the PK-prefix reverse-lookup path: the driving
// table's primary key starts with the join column, so looked-table
// changes find their driving rows by scanning the base table directly
// instead of through an auxiliary reverse index.
const chatSchema = `
ENTITY messages (
    room string,
    seq int,
    text string,
    PRIMARY KEY (room, seq),
    CARDINALITY room 100
)
ENTITY rooms (
    id string PRIMARY KEY,
    topic string
)
QUERY messageTopics
SELECT r.* FROM messages m JOIN rooms r ON m.room = r.id
WHERE m.room = ?room LIMIT 100
`

func buildChatEngine(t *testing.T, store Store) (*query.Schema, *planner.Output, *Engine) {
	t.Helper()
	s := query.MustParse(chatSchema)
	results, err := analyzer.Analyze(s, analyzer.Config{MaxUpdateWork: 20000})
	if err != nil {
		t.Fatal(err)
	}
	out, err := planner.Compile(s, results)
	if err != nil {
		t.Fatal(err)
	}
	return s, out, NewEngine(s, out.Indexes, store)
}

func TestReverseLookupViaPKPrefix(t *testing.T) {
	store := newMapStore()
	s, out, e := buildChatEngine(t, store)

	// No auxiliary reverse index should exist: the base table's PK
	// order already serves the reverse lookup.
	for _, def := range out.Indexes {
		if def.Aux {
			t.Fatalf("unexpected aux index %s for PK-prefix join", def.Name)
		}
	}

	msgs := s.Tables["messages"]
	rooms := s.Tables["rooms"]
	store.putBase(t, e, rooms, nil, row.Row{"id": "go", "topic": "gophers"})
	store.putBase(t, e, msgs, nil, row.Row{"room": "go", "seq": int64(1), "text": "hi"})
	store.putBase(t, e, msgs, nil, row.Row{"room": "go", "seq": int64(2), "text": "yo"})

	ns := viewNS(out, "messageTopics")
	if got := len(store.data[ns]); got != 2 {
		t.Fatalf("view entries = %d, want 2", got)
	}

	// Updating the looked row must rewrite both entries through the
	// PK-prefix scan of the driving table.
	muts := store.putBase(t, e, rooms,
		row.Row{"id": "go", "topic": "gophers"},
		row.Row{"id": "go", "topic": "generics"})
	if len(muts) == 0 {
		t.Fatal("room update produced no view mutations")
	}
	for k, r := range store.data[ns] {
		if r["topic"] != "generics" {
			t.Fatalf("entry %q kept stale topic %v", k, r["topic"])
		}
	}
}

func TestReverseLookupPKPrefixDelete(t *testing.T) {
	store := newMapStore()
	s, out, e := buildChatEngine(t, store)
	msgs := s.Tables["messages"]
	rooms := s.Tables["rooms"]
	store.putBase(t, e, rooms, nil, row.Row{"id": "go", "topic": "gophers"})
	store.putBase(t, e, msgs, nil, row.Row{"room": "go", "seq": int64(1), "text": "hi"})

	// Deleting the looked row removes the joined entries.
	store.putBase(t, e, rooms, row.Row{"id": "go", "topic": "gophers"}, nil)
	ns := viewNS(out, "messageTopics")
	if got := len(store.data[ns]); got != 0 {
		t.Fatalf("view entries after room delete = %d, want 0", got)
	}
}
