// Package view implements the index-maintenance engine of paper §3.2:
// when a base-table row changes, the engine consults the compiled
// index set (the Figure 3 table, in executable form) and produces the
// exact set of index-entry mutations required — each computed with a
// bounded number of lookups, honouring the O(K) update-work guarantee
// the analyzer proved. The coordinator versions these mutations and
// pushes them through the deadline-ordered replication pump, making
// index maintenance asynchronous exactly as the paper prescribes.
package view

import (
	"fmt"

	"scads/internal/keycodec"
	"scads/internal/planner"
	"scads/internal/query"
	"scads/internal/row"
)

// Store is the engine's read access to current data. The coordinator
// implements it over the router; tests implement it over maps.
type Store interface {
	// GetRow fetches one row by encoded key from a namespace.
	GetRow(namespace string, key []byte) (row.Row, bool, error)
	// ScanRows returns up to limit live rows with start <= key < end.
	ScanRows(namespace string, start, end []byte, limit int) ([]row.Row, error)
}

// Mutation is one index-entry change. A nil Value deletes the entry.
type Mutation struct {
	Namespace string
	Key       []byte
	Value     row.Row
}

// ErrCardinalityViolated is returned when a bounded lookup finds more
// rows than the schema's declared CARDINALITY permits — the data has
// broken the contract the analyzer's O(K) proof relied on.
var ErrCardinalityViolated = fmt.Errorf("view: declared cardinality bound exceeded")

// Engine computes index maintenance for one compiled schema.
type Engine struct {
	schema  *query.Schema
	indexes []*planner.IndexDef
	store   Store

	byDriving map[string][]*planner.IndexDef
	byLooked  map[string][]*planner.IndexDef
	auxFor    map[string]*planner.IndexDef // table+"."+col -> reverse index
}

// NewEngine returns an engine maintaining the given index set.
func NewEngine(schema *query.Schema, indexes []*planner.IndexDef, store Store) *Engine {
	e := &Engine{
		schema:    schema,
		indexes:   indexes,
		store:     store,
		byDriving: make(map[string][]*planner.IndexDef),
		byLooked:  make(map[string][]*planner.IndexDef),
		auxFor:    make(map[string]*planner.IndexDef),
	}
	for _, def := range indexes {
		e.byDriving[def.Driving] = append(e.byDriving[def.Driving], def)
		if def.Looked != "" {
			e.byLooked[def.Looked] = append(e.byLooked[def.Looked], def)
		}
		if def.Aux {
			e.auxFor[def.Driving+"."+def.KeyCols[0].Column] = def
		}
	}
	return e
}

// Indexes returns the maintained index definitions.
func (e *Engine) Indexes() []*planner.IndexDef { return e.indexes }

// Mutations computes every index-entry change implied by a base-table
// change. oldRow is nil for inserts, newRow nil for deletes; for
// updates the primary key of both rows must match.
func (e *Engine) Mutations(table string, oldRow, newRow row.Row) ([]Mutation, error) {
	acc := newMutationSet()
	for _, def := range e.byDriving[table] {
		if def.Looked == "" {
			if err := e.singleTable(def, oldRow, newRow, acc); err != nil {
				return nil, err
			}
		} else {
			if err := e.drivingSide(def, oldRow, newRow, acc); err != nil {
				return nil, err
			}
		}
	}
	for _, def := range e.byLooked[table] {
		if err := e.lookedSide(def, oldRow, newRow, acc); err != nil {
			return nil, err
		}
	}
	return acc.list(), nil
}

// singleTable maintains a plain secondary (or aux reverse) index.
func (e *Engine) singleTable(def *planner.IndexDef, oldRow, newRow row.Row, acc *mutationSet) error {
	if oldRow != nil {
		key, err := planner.EncodeEntryKey(def, map[string]row.Row{def.DrivingEff: oldRow})
		if err != nil {
			return err
		}
		acc.delete(def.Namespace, key)
	}
	if newRow != nil {
		key, err := planner.EncodeEntryKey(def, map[string]row.Row{def.DrivingEff: newRow})
		if err != nil {
			return err
		}
		val, err := planner.BuildEntryValue(def, map[string]row.Row{def.DrivingEff: newRow})
		if err != nil {
			return err
		}
		acc.put(def.Namespace, key, val)
	}
	return nil
}

// drivingSide maintains a join view when the driving (FROM) table
// changes: look up the joined row(s) for the old and new join values
// and rewrite the affected entries.
func (e *Engine) drivingSide(def *planner.IndexDef, oldRow, newRow row.Row, acc *mutationSet) error {
	if oldRow != nil {
		joined, err := e.lookupJoined(def, oldRow)
		if err != nil {
			return err
		}
		for _, lr := range joined {
			key, err := planner.EncodeEntryKey(def, map[string]row.Row{def.DrivingEff: oldRow, def.LookedEff: lr})
			if err != nil {
				return err
			}
			acc.delete(def.Namespace, key)
		}
	}
	if newRow != nil {
		joined, err := e.lookupJoined(def, newRow)
		if err != nil {
			return err
		}
		for _, lr := range joined {
			key, err := planner.EncodeEntryKey(def, map[string]row.Row{def.DrivingEff: newRow, def.LookedEff: lr})
			if err != nil {
				return err
			}
			val, err := planner.BuildEntryValue(def, map[string]row.Row{def.DrivingEff: newRow, def.LookedEff: lr})
			if err != nil {
				return err
			}
			acc.put(def.Namespace, key, val)
		}
	}
	return nil
}

// lookedSide maintains a join view when the looked-up (joined) table
// changes: find every driving row pointing at it (through the reverse
// index or a PK-prefix scan — both bounded) and rewrite those entries.
func (e *Engine) lookedSide(def *planner.IndexDef, oldRow, newRow row.Row, acc *mutationSet) error {
	pkRow := newRow
	if pkRow == nil {
		pkRow = oldRow
	}
	joinVal, ok := pkRow[def.JoinRightCol]
	if !ok {
		return fmt.Errorf("view: %s: looked row lacks join column %q", def.Name, def.JoinRightCol)
	}
	drivers, err := e.lookupDrivers(def, joinVal)
	if err != nil {
		return err
	}
	for _, dr := range drivers {
		if oldRow != nil {
			key, err := planner.EncodeEntryKey(def, map[string]row.Row{def.DrivingEff: dr, def.LookedEff: oldRow})
			if err != nil {
				return err
			}
			acc.delete(def.Namespace, key)
		}
		if newRow != nil {
			key, err := planner.EncodeEntryKey(def, map[string]row.Row{def.DrivingEff: dr, def.LookedEff: newRow})
			if err != nil {
				return err
			}
			val, err := planner.BuildEntryValue(def, map[string]row.Row{def.DrivingEff: dr, def.LookedEff: newRow})
			if err != nil {
				return err
			}
			acc.put(def.Namespace, key, val)
		}
	}
	return nil
}

// lookupJoined fetches the looked-table rows joining with the driving
// row: one row for a full-PK join, up to LookedFanout for a prefix
// join.
func (e *Engine) lookupJoined(def *planner.IndexDef, driving row.Row) ([]row.Row, error) {
	joinVal, ok := driving[def.JoinLeftCol]
	if !ok {
		return nil, fmt.Errorf("view: %s: driving row lacks join column %q", def.Name, def.JoinLeftCol)
	}
	ns := planner.TableNamespace(def.Looked)
	looked := e.schema.Tables[def.Looked]
	if def.LookedFanout <= 1 {
		key, err := row.EncodeKey(row.Row{def.JoinRightCol: joinVal}, looked.PrimaryKey)
		if err != nil {
			return nil, err
		}
		r, found, err := e.store.GetRow(ns, key)
		if err != nil || !found {
			return nil, err
		}
		return []row.Row{r}, nil
	}
	// Prefix join: bounded scan of the looked table.
	return e.boundedPrefixScan(ns, joinVal, def.LookedFanout, def.Name)
}

// lookupDrivers finds driving rows whose join column equals joinVal.
func (e *Engine) lookupDrivers(def *planner.IndexDef, joinVal any) ([]row.Row, error) {
	driving := e.schema.Tables[def.Driving]
	bound := driving.Cardinality[def.JoinLeftCol]
	if bound == 0 {
		if driving.IsPrimaryKey([]string{def.JoinLeftCol}) {
			bound = 1
		} else {
			return nil, fmt.Errorf("view: %s: no cardinality bound for reverse lookup on %s.%s",
				def.Name, def.Driving, def.JoinLeftCol)
		}
	}
	if len(driving.PrimaryKey) > 0 && driving.PrimaryKey[0] == def.JoinLeftCol {
		return e.boundedPrefixScan(planner.TableNamespace(def.Driving), joinVal, bound, def.Name)
	}
	aux, ok := e.auxFor[def.Driving+"."+def.JoinLeftCol]
	if !ok {
		return nil, fmt.Errorf("view: %s: reverse index %s missing", def.Name,
			planner.ReverseIndexName(def.Driving, def.JoinLeftCol))
	}
	return e.boundedPrefixScan(aux.Namespace, joinVal, bound, def.Name)
}

func (e *Engine) boundedPrefixScan(namespace string, prefixVal any, bound int, indexName string) ([]row.Row, error) {
	prefix, err := keycodec.Encode(prefixVal)
	if err != nil {
		return nil, err
	}
	rows, err := e.store.ScanRows(namespace, prefix, keycodec.PrefixEnd(prefix), bound+1)
	if err != nil {
		return nil, err
	}
	if len(rows) > bound {
		return nil, fmt.Errorf("%w: %s: more than %d rows match prefix in %s",
			ErrCardinalityViolated, indexName, bound, namespace)
	}
	return rows, nil
}

// mutationSet deduplicates mutations by (namespace, key); puts win
// over deletes so an update whose old and new rows share a key becomes
// a single overwrite.
type mutationSet struct {
	order []string
	byKey map[string]Mutation
}

func newMutationSet() *mutationSet {
	return &mutationSet{byKey: make(map[string]Mutation)}
}

func (ms *mutationSet) delete(ns string, key []byte) {
	id := ns + "\x00" + string(key)
	if _, ok := ms.byKey[id]; ok {
		return // existing put or delete stands
	}
	ms.byKey[id] = Mutation{Namespace: ns, Key: key}
	ms.order = append(ms.order, id)
}

func (ms *mutationSet) put(ns string, key []byte, val row.Row) {
	id := ns + "\x00" + string(key)
	if _, ok := ms.byKey[id]; !ok {
		ms.order = append(ms.order, id)
	}
	ms.byKey[id] = Mutation{Namespace: ns, Key: key, Value: val}
}

func (ms *mutationSet) list() []Mutation {
	out := make([]Mutation, 0, len(ms.order))
	for _, id := range ms.order {
		out = append(out, ms.byKey[id])
	}
	return out
}
