package planner

import (
	"bytes"
	"strings"
	"testing"

	"scads/internal/analyzer"
	"scads/internal/query"
	"scads/internal/row"
)

const socialSchema = `
ENTITY users (
    id string PRIMARY KEY,
    name string,
    birthday int
)
ENTITY friendships (
    f1 string,
    f2 string,
    since int,
    PRIMARY KEY (f1, f2),
    CARDINALITY f1 5000,
    CARDINALITY f2 5000
)
QUERY findUser
SELECT * FROM users WHERE id = ?user LIMIT 1

QUERY friends
SELECT * FROM friendships WHERE f1 = ?user LIMIT 5000

QUERY recentFriends
SELECT * FROM friendships WHERE f1 = ?user ORDER BY since DESC LIMIT 20

QUERY friendsWithUpcomingBirthdays
SELECT p.* FROM friendships f JOIN users p ON f.f2 = p.id
WHERE f.f1 = ?user ORDER BY p.birthday LIMIT 50

QUERY friendsOfFriends
SELECT b.* FROM friendships a JOIN friendships b ON a.f2 = b.f1
WHERE a.f1 = ?user LIMIT 200
`

func compile(t testing.TB) (*query.Schema, *Output) {
	t.Helper()
	s := query.MustParse(socialSchema)
	results, err := analyzer.Analyze(s, analyzer.Config{MaxUpdateWork: 20000})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Compile(s, results)
	if err != nil {
		t.Fatal(err)
	}
	return s, out
}

func TestCompileShapes(t *testing.T) {
	_, out := compile(t)
	if len(out.Plans) != 5 {
		t.Fatalf("plans = %d", len(out.Plans))
	}

	fu := out.Plans["findUser"]
	if fu.Access != AccessPKGet || fu.Namespace != "tbl.users" || fu.Index != nil {
		t.Fatalf("findUser = %+v", fu)
	}
	if len(fu.EqBindings) != 1 || fu.EqBindings[0].Param != "user" {
		t.Fatalf("findUser bindings = %+v", fu.EqBindings)
	}

	// friends: eq col f1 is a PK prefix — no index needed.
	fr := out.Plans["friends"]
	if fr.Access != AccessTableScan || fr.Namespace != "tbl.friendships" {
		t.Fatalf("friends = %+v", fr)
	}

	// recentFriends: DESC order on non-PK column forces an index.
	rf := out.Plans["recentFriends"]
	if rf.Access != AccessIndexScan || rf.Index == nil {
		t.Fatalf("recentFriends = %+v", rf)
	}
	wantKey := []KeyCol{
		{Source: "friendships", Column: "f1"},
		{Source: "friendships", Column: "since", Desc: true},
		{Source: "friendships", Column: "f2"},
	}
	for i, kc := range rf.Index.KeyCols {
		if kc != wantKey[i] {
			t.Fatalf("recentFriends key[%d] = %+v, want %+v", i, kc, wantKey[i])
		}
	}

	// Birthdays: join view keyed (f1, birthday, f2).
	bd := out.Plans["friendsWithUpcomingBirthdays"]
	if bd.Access != AccessIndexScan || bd.Index == nil || bd.Index.Looked != "users" {
		t.Fatalf("birthdays = %+v", bd)
	}
	gotCols := make([]string, len(bd.Index.KeyCols))
	for i, kc := range bd.Index.KeyCols {
		gotCols[i] = kc.Source + "." + kc.Column
	}
	want := []string{"f.f1", "p.birthday", "f.f2"}
	for i := range want {
		if gotCols[i] != want[i] {
			t.Fatalf("birthdays key = %v, want %v", gotCols, want)
		}
	}
	// Projection is users' columns.
	if len(bd.Index.Project) != 3 || bd.Index.Project[0].Source != "p" {
		t.Fatalf("birthdays project = %+v", bd.Index.Project)
	}

	// friends-of-friends: prefix join, key must include both PKs.
	fof := out.Plans["friendsOfFriends"]
	if fof.Index.LookedFanout != 5000 {
		t.Fatalf("fof LookedFanout = %d", fof.Index.LookedFanout)
	}
	gotCols = gotCols[:0]
	for _, kc := range fof.Index.KeyCols {
		gotCols = append(gotCols, kc.Source+"."+kc.Column)
	}
	joined := strings.Join(gotCols, ",")
	if !strings.Contains(joined, "a.f1") || !strings.Contains(joined, "a.f2") || !strings.Contains(joined, "b.f2") {
		t.Fatalf("fof key = %v", gotCols)
	}
}

func TestAuxReverseIndexCreated(t *testing.T) {
	_, out := compile(t)
	var rev *IndexDef
	for _, def := range out.Indexes {
		if def.Aux && def.Name == ReverseIndexName("friendships", "f2") {
			rev = def
		}
	}
	if rev == nil {
		t.Fatal("reverse index on friendships.f2 not created")
	}
	if rev.KeyCols[0].Column != "f2" || rev.KeyCols[1].Column != "f1" {
		t.Fatalf("reverse key = %+v", rev.KeyCols)
	}
	// Aux indexes are deduplicated and come after query indexes.
	count := 0
	sawQueryIndex := false
	for _, def := range out.Indexes {
		if def.Name == rev.Name {
			count++
			if !sawQueryIndex {
				t.Fatal("aux index sorted before query indexes")
			}
		}
		if !def.Aux {
			sawQueryIndex = true
		}
	}
	if count != 1 {
		t.Fatalf("reverse index appears %d times", count)
	}
}

func TestMaintenanceTableMatchesFigure3(t *testing.T) {
	_, out := compile(t)
	// Figure 3's structure: the birthday view updates on friendships *
	// and on users.birthday; friend-style indexes update on
	// friendships *.
	find := func(idx, table, field string) bool {
		for _, e := range out.Maintenance {
			if e.Index == idx && e.Table == table && e.Field == field {
				return true
			}
		}
		return false
	}
	if !find("view_friendsWithUpcomingBirthdays", "friendships", "*") {
		t.Error("missing: birthday view <- friendships *")
	}
	if !find("view_friendsWithUpcomingBirthdays", "users", "birthday") {
		t.Error("missing: birthday view <- users.birthday")
	}
	if find("view_friendsWithUpcomingBirthdays", "users", "*") {
		t.Error("birthday view should trigger on users.birthday, not users.*")
	}
	if !find("view_friendsOfFriends", "friendships", "*") {
		t.Error("missing: fof view <- friendships *")
	}
	if !find("idx_recentFriends", "friendships", "*") {
		t.Error("missing: recentFriends index <- friendships *")
	}
	rendered := FormatMaintenanceTable(out.Maintenance)
	if !strings.Contains(rendered, "Index") || !strings.Contains(rendered, "birthday") {
		t.Fatalf("rendered table:\n%s", rendered)
	}
}

func TestEncodeEntryKeyOrdering(t *testing.T) {
	_, out := compile(t)
	def := out.Plans["friendsWithUpcomingBirthdays"].Index

	mk := func(user, friend string, bday int64) []byte {
		key, err := EncodeEntryKey(def, map[string]row.Row{
			"f": {"f1": user, "f2": friend},
			"p": {"id": friend, "birthday": bday},
		})
		if err != nil {
			t.Fatal(err)
		}
		return key
	}
	// Same user: earlier birthday sorts first regardless of friend ID.
	a := mk("alice", "zed", 100)
	b := mk("alice", "bob", 200)
	c := mk("carol", "ann", 50)
	if !(bytes.Compare(a, b) < 0 && bytes.Compare(b, c) < 0) {
		t.Fatal("view key ordering wrong")
	}
}

func TestEncodeEntryKeyDesc(t *testing.T) {
	_, out := compile(t)
	def := out.Plans["recentFriends"].Index
	mk := func(since int64, f2 string) []byte {
		key, err := EncodeEntryKey(def, map[string]row.Row{
			"friendships": {"f1": "alice", "f2": f2, "since": since},
		})
		if err != nil {
			t.Fatal(err)
		}
		return key
	}
	newer := mk(200, "bob")
	older := mk(100, "carol")
	if bytes.Compare(newer, older) >= 0 {
		t.Fatal("DESC column does not sort newest-first")
	}
}

func TestEncodeEntryKeyErrors(t *testing.T) {
	_, out := compile(t)
	def := out.Plans["friendsWithUpcomingBirthdays"].Index
	if _, err := EncodeEntryKey(def, map[string]row.Row{"f": {"f1": "a"}}); err == nil {
		t.Fatal("missing source row accepted")
	}
	if _, err := EncodeEntryKey(def, map[string]row.Row{
		"f": {"f1": "a"}, "p": {"id": "b"},
	}); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestBuildEntryValue(t *testing.T) {
	_, out := compile(t)
	def := out.Plans["friendsWithUpcomingBirthdays"].Index
	val, err := BuildEntryValue(def, map[string]row.Row{
		"f": {"f1": "alice", "f2": "bob", "since": int64(1)},
		"p": {"id": "bob", "name": "Bob", "birthday": int64(321)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if val["id"] != "bob" || val["name"] != "Bob" || val["birthday"] != int64(321) {
		t.Fatalf("value = %v", val)
	}
	if _, ok := val["f1"]; ok {
		t.Fatal("driving columns leaked into p.* projection")
	}
}

func TestComputeBoundsEquality(t *testing.T) {
	_, out := compile(t)
	plan := out.Plans["friends"]
	start, end, err := ComputeBounds(plan, map[string]any{"user": "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if start == nil || end == nil || bytes.Compare(start, end) >= 0 {
		t.Fatalf("bounds = %x .. %x", start, end)
	}
	// A key for alice falls inside; bob outside.
	aliceKey, _ := EncodeEntryKey(&IndexDef{KeyCols: plan.KeyCols}, map[string]row.Row{
		"friendships": {"f1": "alice", "f2": "m"},
	})
	bobKey, _ := EncodeEntryKey(&IndexDef{KeyCols: plan.KeyCols}, map[string]row.Row{
		"friendships": {"f1": "bob", "f2": "a"},
	})
	if !(bytes.Compare(start, aliceKey) <= 0 && bytes.Compare(aliceKey, end) < 0) {
		t.Fatal("alice key outside bounds")
	}
	if bytes.Compare(bobKey, end) < 0 && bytes.Compare(bobKey, start) >= 0 {
		t.Fatal("bob key inside alice bounds")
	}
}

func TestComputeBoundsMissingParam(t *testing.T) {
	_, out := compile(t)
	if _, _, err := ComputeBounds(out.Plans["friends"], nil); err == nil {
		t.Fatal("missing param accepted")
	}
}

func TestComputeBoundsRangeOps(t *testing.T) {
	src := `
ENTITY msgs (
    channel string,
    ts int,
    PRIMARY KEY (channel, ts),
    CARDINALITY channel 10000
)
QUERY after SELECT * FROM msgs WHERE channel = ?c AND ts > ?since LIMIT 50
QUERY atLeast SELECT * FROM msgs WHERE channel = ?c AND ts >= ?since LIMIT 50
QUERY before SELECT * FROM msgs WHERE channel = ?c AND ts < ?until LIMIT 50
QUERY atMost SELECT * FROM msgs WHERE channel = ?c AND ts <= ?until LIMIT 50
`
	s := query.MustParse(src)
	results, err := analyzer.Analyze(s, analyzer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Compile(s, results)
	if err != nil {
		t.Fatal(err)
	}
	key := func(ts int64) []byte {
		k, _ := EncodeEntryKey(&IndexDef{KeyCols: out.Plans["after"].KeyCols},
			map[string]row.Row{"msgs": {"channel": "c1", "ts": ts}})
		return k
	}
	params := map[string]any{"c": "c1", "since": 100, "until": 100}
	contains := func(plan *Plan, ts int64) bool {
		start, end, err := ComputeBounds(plan, params)
		if err != nil {
			t.Fatal(err)
		}
		k := key(ts)
		return bytes.Compare(k, start) >= 0 && (end == nil || bytes.Compare(k, end) < 0)
	}
	cases := []struct {
		plan     string
		ts       int64
		expected bool
	}{
		{"after", 100, false}, {"after", 101, true},
		{"atLeast", 99, false}, {"atLeast", 100, true},
		{"before", 100, false}, {"before", 99, true},
		{"atMost", 100, true}, {"atMost", 101, false},
	}
	for _, c := range cases {
		if got := contains(out.Plans[c.plan], c.ts); got != c.expected {
			t.Errorf("%s contains ts=%d: %v, want %v", c.plan, c.ts, got, c.expected)
		}
	}
}

func TestComputeBoundsDescRange(t *testing.T) {
	src := `
ENTITY msgs (
    channel string,
    ts int,
    PRIMARY KEY (channel, ts),
    CARDINALITY channel 10000
)
QUERY recent SELECT * FROM msgs WHERE channel = ?c AND ts > ?since ORDER BY ts DESC LIMIT 50
`
	s := query.MustParse(src)
	results, err := analyzer.Analyze(s, analyzer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Compile(s, results)
	if err != nil {
		t.Fatal(err)
	}
	plan := out.Plans["recent"]
	if plan.Access != AccessIndexScan || !plan.Range.Desc {
		t.Fatalf("plan = %+v", plan)
	}
	start, end, err := ComputeBounds(plan, map[string]any{"c": "c1", "since": 100})
	if err != nil {
		t.Fatal(err)
	}
	key := func(ts int64) []byte {
		k, _ := EncodeEntryKey(plan.Index, map[string]row.Row{"msgs": {"channel": "c1", "ts": ts}})
		return k
	}
	in := func(k []byte) bool {
		return bytes.Compare(k, start) >= 0 && (end == nil || bytes.Compare(k, end) < 0)
	}
	if in(key(100)) {
		t.Error("ts=100 included by strict >")
	}
	if !in(key(101)) || !in(key(500)) {
		t.Error("ts>100 excluded")
	}
	// Descending order: larger ts sorts earlier.
	if bytes.Compare(key(500), key(101)) >= 0 {
		t.Error("desc index not newest-first")
	}
}

func TestSelectStarInJoinRejected(t *testing.T) {
	src := `
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY friendships ( f1 string, f2 string, PRIMARY KEY (f1, f2), CARDINALITY f1 5000, CARDINALITY f2 5000 )
QUERY q SELECT * FROM friendships f JOIN users p ON f.f2 = p.id WHERE f.f1 = ?u LIMIT 5
`
	s := query.MustParse(src)
	results, err := analyzer.Analyze(s, analyzer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(s, results); err == nil {
		t.Fatal("bare SELECT * in join accepted")
	}
}

func TestOutputColumnCollisionRejected(t *testing.T) {
	src := `
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY friendships ( f1 string, f2 string, name string, PRIMARY KEY (f1, f2), CARDINALITY f1 5000, CARDINALITY f2 5000 )
QUERY q SELECT f.name, p.name FROM friendships f JOIN users p ON f.f2 = p.id WHERE f.f1 = ?u LIMIT 5
`
	s := query.MustParse(src)
	results, err := analyzer.Analyze(s, analyzer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(s, results); err == nil {
		t.Fatal("colliding output columns accepted")
	}
}

func TestAccessKindString(t *testing.T) {
	if AccessPKGet.String() != "pk-get" || AccessTableScan.String() != "table-scan" || AccessIndexScan.String() != "index-scan" {
		t.Fatal("AccessKind strings")
	}
}

func BenchmarkCompileSocialSchema(b *testing.B) {
	s := query.MustParse(socialSchema)
	results, err := analyzer.Analyze(s, analyzer.Config{MaxUpdateWork: 20000})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(s, results); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeBounds(b *testing.B) {
	_, out := compile(b)
	plan := out.Plans["friendsWithUpcomingBirthdays"]
	params := map[string]any{"user": "alice"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ComputeBounds(plan, params); err != nil {
			b.Fatal(err)
		}
	}
}

const residualSchema = `
ENTITY posts (
    author string,
    ts int,
    score int,
    PRIMARY KEY (author, ts),
    CARDINALITY author 1000
)
QUERY hot
SELECT author, ts FROM posts WHERE author = ?a AND ts >= ?since AND score >= ?minscore LIMIT 10
QUERY topRecent
SELECT author, ts FROM posts WHERE author = ?a AND score >= ?minscore ORDER BY ts DESC LIMIT 5
`

func compileResidual(t testing.TB) *Output {
	t.Helper()
	s := query.MustParse(residualSchema)
	results, err := analyzer.Analyze(s, analyzer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Compile(s, results)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestResidualFilterCompiled(t *testing.T) {
	out := compileResidual(t)

	// "hot": ts folds into the key range (base-table scan), score is a
	// residual filter; base rows carry every column, so no widening and
	// the declared projection stands.
	hot := out.Plans["hot"]
	if hot == nil || hot.Access != AccessTableScan {
		t.Fatalf("hot plan = %+v", hot)
	}
	if len(hot.Residual) != 1 || hot.Residual[0].Column != "score" || hot.Residual[0].Op != query.OpGe {
		t.Fatalf("hot residual = %+v", hot.Residual)
	}
	if hot.Range == nil || hot.Range.Bind.Param != "since" {
		t.Fatalf("hot range = %+v", hot.Range)
	}

	// "topRecent": the score inequality conflicts with ORDER BY ts and
	// is demoted to a residual; the index projection is widened to
	// store score for node-side evaluation, and the plan narrows back
	// to the declared output.
	top := out.Plans["topRecent"]
	if top == nil || top.Access != AccessIndexScan {
		t.Fatalf("topRecent plan = %+v", top)
	}
	if len(top.Residual) != 1 || top.Residual[0].Column != "score" {
		t.Fatalf("topRecent residual = %+v", top.Residual)
	}
	stored := map[string]bool{}
	for _, pc := range top.Index.Project {
		stored[pc.Column] = true
	}
	if !stored["score"] {
		t.Fatalf("index projection not widened with filter column: %+v", top.Index.Project)
	}
	if len(top.Project) != 2 {
		t.Fatalf("plan projection should narrow back to declared output, got %+v", top.Project)
	}
	for _, pc := range top.Project {
		if pc.Column == "score" {
			t.Fatalf("declared output gained the filter column: %+v", top.Project)
		}
	}
}

func TestComputeFiltersEncodesComparably(t *testing.T) {
	out := compileResidual(t)
	hot := out.Plans["hot"]

	filters, err := ComputeFilters(hot, map[string]any{"a": "ann", "since": int64(3), "minscore": 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(filters) != 1 || filters[0].Column != "score" || filters[0].Op != query.OpGe {
		t.Fatalf("filters = %+v", filters)
	}
	// The encoded literal must compare correctly against encoded row
	// values: 16 < 17 <= 17 < 18 in byte order.
	for val, want := range map[int64]int{16: -1, 17: 0, 18: 1} {
		enc, err := row.EncodeKey(row.Row{"score": val}, []string{"score"})
		if err != nil {
			t.Fatal(err)
		}
		if got := bytes.Compare(enc, filters[0].Value); got != want {
			t.Fatalf("compare(enc(%d), filter) = %d, want %d", val, got, want)
		}
	}

	if _, err := ComputeFilters(hot, map[string]any{"a": "ann", "since": int64(3)}); err == nil {
		t.Fatal("missing filter parameter accepted")
	}
}
