// Package planner compiles analyzer-accepted query templates into
// physical artifacts (paper §3.2): the materialized indices/views each
// query reads, the bounded range-scan plan that executes it, and the
// table of index-maintenance triggers — Figure 3 of the paper — that
// tells the update path exactly which structures to refresh when a
// base table changes.
package planner

import (
	"fmt"
	"sort"
	"strings"

	"scads/internal/analyzer"
	"scads/internal/keycodec"
	"scads/internal/query"
	"scads/internal/row"
)

// Namespace naming conventions.
const (
	tablePrefix = "tbl."
	indexPrefix = "idx."
)

// TableNamespace returns the storage namespace holding a base table.
func TableNamespace(table string) string { return tablePrefix + table }

// KeyCol is one component of an index or table key.
type KeyCol struct {
	// Source is the effective table name within the query ("f", "p");
	// for table-scoped structures it is the table name itself.
	Source string
	Column string
	// Desc marks ORDER BY ... DESC columns, stored complement-encoded
	// so forward scans yield descending order.
	Desc bool
}

// ProjectCol names one stored/output column.
type ProjectCol struct {
	Source string
	Column string
}

// IndexDef describes one materialized index or join view.
type IndexDef struct {
	Name      string
	Namespace string
	// ServesQuery is the query this index answers ("" for auxiliary
	// reverse indexes shared by maintenance).
	ServesQuery string
	Aux         bool

	// Driving is the base table whose rows drive entries; DrivingEff
	// is its effective name inside the query.
	Driving    string
	DrivingEff string

	// Looked is the join's right table ("" for single-table indexes).
	Looked       string
	LookedEff    string
	JoinLeftCol  string // driving column equated to the looked key
	JoinRightCol string // looked PK (or PK-prefix) column
	LookedFanout int    // 1 = full-PK join

	KeyCols []KeyCol
	Project []ProjectCol
}

// AccessKind is how a plan reads data.
type AccessKind int

// Access paths. All of them touch a bounded contiguous key range.
const (
	AccessPKGet AccessKind = iota
	AccessTableScan
	AccessIndexScan
)

// String implements fmt.Stringer.
func (a AccessKind) String() string {
	switch a {
	case AccessPKGet:
		return "pk-get"
	case AccessTableScan:
		return "table-scan"
	case AccessIndexScan:
		return "index-scan"
	default:
		return fmt.Sprintf("access(%d)", int(a))
	}
}

// Binding supplies one key element at execution time: either a named
// template parameter or a literal fixed in the query text.
type Binding struct {
	Param   string
	Literal any
}

// RangeBinding is the optional inequality on the column right after
// the equality prefix.
type RangeBinding struct {
	Op   query.CompareOp
	Bind Binding
	Desc bool
}

// Plan is the executable form of one query template.
type Plan struct {
	Query string
	Shape analyzer.Shape

	Access    AccessKind
	Namespace string
	Index     *IndexDef // nil for base-table access
	Table     *query.TableDef

	// KeyCols is the key layout of the access path; EqBindings bind
	// its leading columns.
	KeyCols    []KeyCol
	EqBindings []Binding
	Range      *RangeBinding

	Limit int
	// Project applies to the stored row at read time (base accesses
	// store the full base row; index accesses store the pre-projected
	// output row, so Project is empty for them — unless residual
	// filter columns widened the stored row, in which case Project
	// narrows it back to the declared output).
	Project []ProjectCol
	// Residual holds the inequality conjuncts the key range cannot
	// express. The executor resolves them (ComputeFilters) and pushes
	// them down to storage nodes, which evaluate each visited row
	// before it crosses the wire.
	Residual []ResidualFilter
}

// ResidualFilter is one pushed-down filter conjunct: column, operator,
// and the binding supplying the comparison literal at execution time.
type ResidualFilter struct {
	Column string
	Op     query.CompareOp
	Bind   Binding
}

// Output groups everything compilation produces.
type Output struct {
	Plans   map[string]*Plan
	Indexes []*IndexDef // in deterministic order, aux indexes last
	// Maintenance is the Figure 3 table.
	Maintenance []MaintenanceEntry
}

// MaintenanceEntry is one row of the paper's Figure 3: when Field of
// Table changes, Index must be updated.
type MaintenanceEntry struct {
	Index string
	Table string
	Field string
}

// Compile plans every accepted query in the schema.
func Compile(s *query.Schema, results map[string]*analyzer.Result) (*Output, error) {
	out := &Output{Plans: make(map[string]*Plan)}
	indexByName := map[string]*IndexDef{}
	var order []string

	addIndex := func(def *IndexDef) {
		if _, ok := indexByName[def.Name]; ok {
			return
		}
		indexByName[def.Name] = def
		order = append(order, def.Name)
	}

	for _, name := range s.QueryOrder {
		res, ok := results[name]
		if !ok {
			continue // rejected by the analyzer
		}
		plan, defs, err := compileOne(s, res)
		if err != nil {
			return nil, err
		}
		out.Plans[name] = plan
		for _, d := range defs {
			addIndex(d)
		}
	}

	// Queries first, aux structures after, stable within each group.
	sort.SliceStable(order, func(i, j int) bool {
		return !indexByName[order[i]].Aux && indexByName[order[j]].Aux
	})
	for _, n := range order {
		out.Indexes = append(out.Indexes, indexByName[n])
	}
	out.Maintenance = maintenanceTable(out.Indexes)
	return out, nil
}

func compileOne(s *query.Schema, res *analyzer.Result) (*Plan, []*IndexDef, error) {
	q := res.Query
	switch res.Shape {
	case analyzer.ShapePKLookup:
		return compilePKLookup(res)
	case analyzer.ShapeIndexScan:
		return compileSingleTable(res)
	case analyzer.ShapeJoinView:
		return compileJoinView(s, res)
	default:
		return nil, nil, fmt.Errorf("planner: query %s: unknown shape %v", q.Name, res.Shape)
	}
}

func compilePKLookup(res *analyzer.Result) (*Plan, []*IndexDef, error) {
	q := res.Query
	t := res.Driving
	plan := &Plan{
		Query:     q.Name,
		Shape:     res.Shape,
		Access:    AccessPKGet,
		Namespace: TableNamespace(t.Name),
		Table:     t,
		Limit:     q.Limit,
		Project:   projectFor(q, q.From.Name(), t),
	}
	// Bind PK columns in PK order.
	byCol := predsByColumn(res.EqPreds)
	for _, pk := range t.PrimaryKey {
		p := byCol[pk]
		plan.KeyCols = append(plan.KeyCols, KeyCol{Source: q.From.Name(), Column: pk})
		plan.EqBindings = append(plan.EqBindings, bindingOf(p))
	}
	return plan, nil, nil
}

func compileSingleTable(res *analyzer.Result) (*Plan, []*IndexDef, error) {
	q := res.Query
	t := res.Driving
	eff := q.From.Name()

	// Can the base table serve it? The equality columns must be a PK
	// prefix (in some order), the range/first-order column must be the
	// next PK column, any further order columns must continue the PK,
	// and everything must be ascending.
	if plan, ok := tryBaseScan(res); ok {
		return plan, nil, nil
	}

	def := &IndexDef{
		Name:        "idx_" + q.Name,
		ServesQuery: q.Name,
		Driving:     t.Name,
		DrivingEff:  eff,
	}
	def.Namespace = indexPrefix + def.Name
	def.KeyCols = buildKeyCols(res, eff, t, nil, nil)
	def.Project = projectFor(q, eff, t)

	plan := &Plan{
		Query:     q.Name,
		Shape:     res.Shape,
		Access:    AccessIndexScan,
		Namespace: def.Namespace,
		Index:     def,
		Table:     t,
		KeyCols:   def.KeyCols,
		Limit:     q.Limit,
		Residual:  residualFilters(res),
	}
	// Node-side residual evaluation needs the filtered columns present
	// in the stored entry: widen the stored projection and narrow back
	// to the declared output at read time.
	if extra := residualColsMissing(def.Project, plan.Residual); len(extra) > 0 {
		plan.Project = def.Project
		for _, col := range extra {
			def.Project = append(def.Project, ProjectCol{Source: eff, Column: col})
		}
	}
	var err error
	plan.EqBindings, plan.Range, err = bindKey(res, plan.KeyCols)
	if err != nil {
		return nil, nil, err
	}
	return plan, []*IndexDef{def}, nil
}

func compileJoinView(s *query.Schema, res *analyzer.Result) (*Plan, []*IndexDef, error) {
	q := res.Query
	driving, looked := res.Driving, res.Looked
	dEff, lEff := q.From.Name(), q.Join.Right.Name()

	left, right := q.Join.LeftCol, q.Join.RightCol
	if left.Qualifier != dEff { // reversed spelling
		left, right = right, left
	}

	def := &IndexDef{
		Name:         "view_" + q.Name,
		ServesQuery:  q.Name,
		Driving:      driving.Name,
		DrivingEff:   dEff,
		Looked:       looked.Name,
		LookedEff:    lEff,
		JoinLeftCol:  left.Column,
		JoinRightCol: right.Column,
		LookedFanout: res.LookedFanout,
	}
	def.Namespace = indexPrefix + def.Name
	def.KeyCols = buildKeyCols(res, dEff, driving, looked, &lEff)
	var err error
	def.Project, err = joinProject(q, dEff, lEff, driving, looked)
	if err != nil {
		return nil, nil, err
	}

	defs := []*IndexDef{def}
	// Maintenance on a looked-table change needs all driving rows with
	// leftCol = key. If leftCol is not the driving PK's first column,
	// synthesize a reverse index.
	if len(driving.PrimaryKey) == 0 || driving.PrimaryKey[0] != left.Column {
		rev := reverseIndex(driving, left.Column)
		defs = append(defs, rev)
	}

	plan := &Plan{
		Query:     q.Name,
		Shape:     res.Shape,
		Access:    AccessIndexScan,
		Namespace: def.Namespace,
		Index:     def,
		Table:     driving,
		KeyCols:   def.KeyCols,
		Limit:     q.Limit,
	}
	plan.EqBindings, plan.Range, err = bindKey(res, plan.KeyCols)
	if err != nil {
		return nil, nil, err
	}
	return plan, defs, nil
}

// ReverseIndexName names the auxiliary reverse index for
// table.column.
func ReverseIndexName(table, column string) string {
	return "rev_" + table + "_" + column
}

func reverseIndex(t *query.TableDef, col string) *IndexDef {
	def := &IndexDef{
		Name:       ReverseIndexName(t.Name, col),
		Aux:        true,
		Driving:    t.Name,
		DrivingEff: t.Name,
	}
	def.Namespace = indexPrefix + def.Name
	def.KeyCols = []KeyCol{{Source: t.Name, Column: col}}
	for _, pk := range t.PrimaryKey {
		if pk != col {
			def.KeyCols = append(def.KeyCols, KeyCol{Source: t.Name, Column: pk})
		}
	}
	for _, c := range t.Columns {
		def.Project = append(def.Project, ProjectCol{Source: t.Name, Column: c.Name})
	}
	return def
}

// buildKeyCols assembles the key layout: equality prefix, then order
// (or range) columns, then whatever primary-key columns are needed for
// uniqueness.
func buildKeyCols(res *analyzer.Result, dEff string, driving *query.TableDef, looked *query.TableDef, lEff *string) []KeyCol {
	var key []KeyCol
	have := map[string]bool{}
	add := func(src, col string, desc bool) {
		id := src + "." + col
		if have[id] {
			return
		}
		have[id] = true
		key = append(key, KeyCol{Source: src, Column: col, Desc: desc})
	}
	for _, p := range res.EqPreds {
		add(dEff, p.Col.Column, false)
	}
	if len(res.OrderCols) > 0 {
		for _, o := range res.OrderCols {
			src := o.Col.Qualifier
			if src == "" {
				src = dEff
			}
			add(src, o.Col.Column, o.Desc)
		}
	} else if res.RangePred != nil {
		add(dEff, res.RangePred.Col.Column, false)
	}
	for _, pk := range driving.PrimaryKey {
		add(dEff, pk, false)
	}
	if looked != nil && res.LookedFanout > 1 {
		for _, pk := range looked.PrimaryKey {
			add(*lEff, pk, false)
		}
	}
	return key
}

// bindKey produces the equality bindings (and optional range binding)
// for the leading key columns.
func bindKey(res *analyzer.Result, keyCols []KeyCol) ([]Binding, *RangeBinding, error) {
	byCol := predsByColumn(res.EqPreds)
	var eq []Binding
	i := 0
	for ; i < len(keyCols); i++ {
		p, ok := byCol[keyCols[i].Column]
		if !ok {
			break
		}
		eq = append(eq, bindingOf(p))
	}
	if len(eq) != len(res.EqPreds) {
		return nil, nil, fmt.Errorf("planner: query %s: equality predicates do not form the key prefix", res.Query.Name)
	}
	var rb *RangeBinding
	if res.RangePred != nil {
		if i >= len(keyCols) || keyCols[i].Column != res.RangePred.Col.Column {
			return nil, nil, fmt.Errorf("planner: query %s: range column %s is not adjacent to the equality prefix",
				res.Query.Name, res.RangePred.Col)
		}
		rb = &RangeBinding{Op: res.RangePred.Op, Bind: bindingOf(*res.RangePred), Desc: keyCols[i].Desc}
	}
	return eq, rb, nil
}

// tryBaseScan checks whether the base table's PK order already serves
// the query.
func tryBaseScan(res *analyzer.Result) (*Plan, bool) {
	q := res.Query
	t := res.Driving
	eff := q.From.Name()
	byCol := predsByColumn(res.EqPreds)

	n := 0 // matched PK prefix length
	var eq []Binding
	for _, pk := range t.PrimaryKey {
		p, ok := byCol[pk]
		if !ok {
			break
		}
		eq = append(eq, bindingOf(p))
		n++
	}
	if n != len(res.EqPreds) {
		return nil, false // some equality column is not in the PK prefix
	}
	next := n
	var rng *RangeBinding
	if res.RangePred != nil {
		if next >= len(t.PrimaryKey) || t.PrimaryKey[next] != res.RangePred.Col.Column {
			return nil, false
		}
		rng = &RangeBinding{Op: res.RangePred.Op, Bind: bindingOf(*res.RangePred)}
		next++
	}
	for i, o := range res.OrderCols {
		if o.Desc {
			return nil, false // base rows are stored ascending
		}
		// The first order column may coincide with the range column.
		if res.RangePred != nil && i == 0 && o.Col.Column == res.RangePred.Col.Column {
			continue
		}
		if next >= len(t.PrimaryKey) || t.PrimaryKey[next] != o.Col.Column {
			return nil, false
		}
		next++
	}

	var keyCols []KeyCol
	for _, pk := range t.PrimaryKey {
		keyCols = append(keyCols, KeyCol{Source: eff, Column: pk})
	}
	return &Plan{
		Query:      q.Name,
		Shape:      res.Shape,
		Access:     AccessTableScan,
		Namespace:  TableNamespace(t.Name),
		Table:      t,
		KeyCols:    keyCols,
		EqBindings: eq,
		Range:      rng,
		Limit:      q.Limit,
		Project:    projectFor(q, eff, t),
		Residual:   residualFilters(res),
	}, true
}

// residualFilters compiles the analyzer's residual conjuncts into the
// plan's executable filter list.
func residualFilters(res *analyzer.Result) []ResidualFilter {
	if len(res.ResidualPreds) == 0 {
		return nil
	}
	out := make([]ResidualFilter, len(res.ResidualPreds))
	for i, p := range res.ResidualPreds {
		out[i] = ResidualFilter{Column: p.Col.Column, Op: p.Op, Bind: bindingOf(p)}
	}
	return out
}

// residualColsMissing lists filter columns absent from a stored
// projection (they must be widened in for node-side evaluation).
func residualColsMissing(project []ProjectCol, residual []ResidualFilter) []string {
	var out []string
	for _, rf := range residual {
		present := false
		for _, pc := range project {
			if pc.Column == rf.Column {
				present = true
				break
			}
		}
		for _, c := range out {
			if c == rf.Column {
				present = true
				break
			}
		}
		if !present {
			out = append(out, rf.Column)
		}
	}
	return out
}

func predsByColumn(preds []query.Predicate) map[string]query.Predicate {
	m := make(map[string]query.Predicate, len(preds))
	for _, p := range preds {
		m[p.Col.Column] = p
	}
	return m
}

func bindingOf(p query.Predicate) Binding {
	if p.IsParam {
		return Binding{Param: p.Param}
	}
	return Binding{Literal: p.Literal}
}

// projectFor expands a single-table SELECT list into concrete columns.
func projectFor(q *query.QueryDef, eff string, t *query.TableDef) []ProjectCol {
	if len(q.Select) == 0 {
		out := make([]ProjectCol, len(t.Columns))
		for i, c := range t.Columns {
			out[i] = ProjectCol{Source: eff, Column: c.Name}
		}
		return out
	}
	var out []ProjectCol
	for _, c := range q.Select {
		if c.Column == "*" {
			for _, col := range t.Columns {
				out = append(out, ProjectCol{Source: eff, Column: col.Name})
			}
			continue
		}
		src := c.Qualifier
		if src == "" {
			src = eff
		}
		out = append(out, ProjectCol{Source: src, Column: c.Column})
	}
	return out
}

// joinProject expands a join SELECT list, checking for output-name
// collisions.
func joinProject(q *query.QueryDef, dEff, lEff string, driving, looked *query.TableDef) ([]ProjectCol, error) {
	tableOf := func(eff string) *query.TableDef {
		if eff == dEff {
			return driving
		}
		return looked
	}
	var out []ProjectCol
	if len(q.Select) == 0 {
		return nil, fmt.Errorf("planner: query %s: SELECT * is ambiguous in a join; qualify as %s.* or %s.*", q.Name, dEff, lEff)
	}
	for _, c := range q.Select {
		if c.Column == "*" {
			t := tableOf(c.Qualifier)
			for _, col := range t.Columns {
				out = append(out, ProjectCol{Source: c.Qualifier, Column: col.Name})
			}
			continue
		}
		src := c.Qualifier
		out = append(out, ProjectCol{Source: src, Column: c.Column})
	}
	seen := map[string]string{}
	for _, pc := range out {
		if prev, dup := seen[pc.Column]; dup && prev != pc.Source {
			return nil, fmt.Errorf("planner: query %s: output column %q selected from both %s and %s",
				q.Name, pc.Column, prev, pc.Source)
		}
		seen[pc.Column] = pc.Source
	}
	return out, nil
}

// maintenanceTable derives the Figure 3 rows from the index set: for
// each index, which (table, field) changes trigger its maintenance.
// Fields are the key-contributing columns (matching the paper's
// pointer-style indices); the runtime additionally refreshes stored
// values on projected-field changes, which has identical asymptotics.
func maintenanceTable(indexes []*IndexDef) []MaintenanceEntry {
	var out []MaintenanceEntry
	seen := map[string]bool{}
	add := func(e MaintenanceEntry) {
		id := e.Index + "|" + e.Table + "|" + e.Field
		if !seen[id] {
			seen[id] = true
			out = append(out, e)
		}
	}
	for _, def := range indexes {
		// Driving side: inserts/deletes always restructure the index.
		add(MaintenanceEntry{Index: def.Name, Table: def.Driving, Field: "*"})
		if def.Looked == "" || def.Looked == def.Driving {
			// A self-join's looked side is already covered by the
			// driving side's "*" row.
			continue
		}
		// Looked side: key-affecting fields only.
		var fields []string
		for _, kc := range def.KeyCols {
			if kc.Source == def.LookedEff {
				fields = append(fields, kc.Column)
			}
		}
		if len(fields) == 0 {
			add(MaintenanceEntry{Index: def.Name, Table: def.Looked, Field: "*"})
			continue
		}
		for _, f := range fields {
			add(MaintenanceEntry{Index: def.Name, Table: def.Looked, Field: f})
		}
	}
	return out
}

// FormatMaintenanceTable renders the Figure 3 table.
func FormatMaintenanceTable(entries []MaintenanceEntry) string {
	var b strings.Builder
	wIdx, wTbl := len("Index"), len("Table")
	for _, e := range entries {
		if len(e.Index) > wIdx {
			wIdx = len(e.Index)
		}
		if len(e.Table) > wTbl {
			wTbl = len(e.Table)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-*s  %s\n", wIdx, "Index", wTbl, "Table", "Field")
	for _, e := range entries {
		fmt.Fprintf(&b, "%-*s  %-*s  %s\n", wIdx, e.Index, wTbl, e.Table, e.Field)
	}
	return b.String()
}

// --- key encoding shared by the executor and the view engine ---

// EncodeEntryKey builds an index entry's key from the source rows
// (effective name → row).
func EncodeEntryKey(def *IndexDef, rows map[string]row.Row) ([]byte, error) {
	var key []byte
	var err error
	for _, kc := range def.KeyCols {
		r, ok := rows[kc.Source]
		if !ok {
			return nil, fmt.Errorf("planner: index %s: no row for source %q", def.Name, kc.Source)
		}
		v, ok := r[kc.Column]
		if !ok {
			return nil, fmt.Errorf("planner: index %s: row for %q lacks column %q", def.Name, kc.Source, kc.Column)
		}
		if kc.Desc {
			key, err = keycodec.AppendDesc(key, v)
		} else {
			key, err = keycodec.Append(key, v)
		}
		if err != nil {
			return nil, err
		}
	}
	return key, nil
}

// BuildEntryValue materialises the index entry's stored row.
func BuildEntryValue(def *IndexDef, rows map[string]row.Row) (row.Row, error) {
	out := make(row.Row, len(def.Project))
	for _, pc := range def.Project {
		r, ok := rows[pc.Source]
		if !ok {
			return nil, fmt.Errorf("planner: index %s: no row for source %q", def.Name, pc.Source)
		}
		v, ok := r[pc.Column]
		if !ok {
			return nil, fmt.Errorf("planner: index %s: row for %q lacks column %q", def.Name, pc.Source, pc.Column)
		}
		out[pc.Column] = v
	}
	return out, nil
}

// ComputeBounds resolves a plan's bindings against the caller's
// parameters and returns the [start, end) scan range.
func ComputeBounds(p *Plan, params map[string]any) (start, end []byte, err error) {
	var prefix []byte
	for i, b := range p.EqBindings {
		v, err := resolveBinding(b, params)
		if err != nil {
			return nil, nil, fmt.Errorf("planner: query %s: %w", p.Query, err)
		}
		if p.KeyCols[i].Desc {
			prefix, err = keycodec.AppendDesc(prefix, v)
		} else {
			prefix, err = keycodec.Append(prefix, v)
		}
		if err != nil {
			return nil, nil, err
		}
	}
	if p.Range == nil {
		if len(prefix) == 0 {
			return nil, nil, nil // full (LIMIT-bounded) scan
		}
		return prefix, keycodec.PrefixEnd(prefix), nil
	}

	v, err := resolveBinding(p.Range.Bind, params)
	if err != nil {
		return nil, nil, fmt.Errorf("planner: query %s: %w", p.Query, err)
	}
	var bound []byte
	if p.Range.Desc {
		bound, err = keycodec.AppendDesc(append([]byte(nil), prefix...), v)
	} else {
		bound, err = keycodec.Append(append([]byte(nil), prefix...), v)
	}
	if err != nil {
		return nil, nil, err
	}

	op := p.Range.Op
	if p.Range.Desc {
		// Complement encoding flips the comparison direction.
		switch op {
		case query.OpLt:
			op = query.OpGt
		case query.OpLe:
			op = query.OpGe
		case query.OpGt:
			op = query.OpLt
		case query.OpGe:
			op = query.OpLe
		}
	}
	switch op {
	case query.OpGe:
		return bound, keycodec.PrefixEnd(prefix), nil
	case query.OpGt:
		return keycodec.PrefixEnd(bound), keycodec.PrefixEnd(prefix), nil
	case query.OpLt:
		return prefix, bound, nil
	case query.OpLe:
		return prefix, keycodec.PrefixEnd(bound), nil
	default:
		return nil, nil, fmt.Errorf("planner: query %s: unexpected range op %v", p.Query, op)
	}
}

// Filter is one resolved pushdown predicate: the named column compared
// against the keycodec encoding of the literal. Byte order equals
// value order, so storage nodes evaluate it with one bytes.Compare
// against the encoded row value.
type Filter struct {
	Column string
	Op     query.CompareOp
	Value  []byte
}

// ComputeFilters resolves a plan's residual filters against the
// caller's parameters.
func ComputeFilters(p *Plan, params map[string]any) ([]Filter, error) {
	if len(p.Residual) == 0 {
		return nil, nil
	}
	out := make([]Filter, len(p.Residual))
	for i, rf := range p.Residual {
		v, err := resolveBinding(rf.Bind, params)
		if err != nil {
			return nil, fmt.Errorf("planner: query %s: %w", p.Query, err)
		}
		enc, err := keycodec.Append(nil, row.Normalize(v))
		if err != nil {
			return nil, fmt.Errorf("planner: query %s: filter on %s: %w", p.Query, rf.Column, err)
		}
		out[i] = Filter{Column: rf.Column, Op: rf.Op, Value: enc}
	}
	return out, nil
}

func resolveBinding(b Binding, params map[string]any) (any, error) {
	if b.Param == "" {
		return b.Literal, nil
	}
	v, ok := params[b.Param]
	if !ok {
		return nil, fmt.Errorf("missing parameter %q", b.Param)
	}
	return row.Normalize(v), nil
}
