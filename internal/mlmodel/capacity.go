package mlmodel

import (
	"math"
	"sync"
)

// CapacityModel learns how many requests per second one server can
// sustain while meeting the latency SLA, from (per-server rate,
// observed latency) pairs. It fits the open-queueing curve
//
//	latency(ρ) = base + k · ρ/(1-ρ),   ρ = rate/capacity
//
// by profiling over candidate capacities, then inverts it: the highest
// per-server rate whose predicted latency stays under the SLA bound is
// the usable capacity. This is the "models of past performance"
// machinery §2.2 asks for, in its simplest defensible form.
type CapacityModel struct {
	mu   sync.Mutex
	rate []float64 // per-server request rate
	lat  []float64 // observed latency (seconds) at the SLA percentile

	fitted   bool
	capacity float64 // fitted saturation rate
	base     float64
	k        float64
}

// MinObservations before Fit will produce a model.
const MinObservations = 8

// Observe records one (per-server rate, latency) sample. Latency is
// the measured SLA-percentile latency in seconds at that rate.
func (c *CapacityModel) Observe(ratePerServer, latencySeconds float64) {
	if ratePerServer <= 0 || latencySeconds <= 0 || math.IsNaN(latencySeconds) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rate = append(c.rate, ratePerServer)
	c.lat = append(c.lat, latencySeconds)
	// Keep a bounded history: the most recent 4096 samples.
	if len(c.rate) > 4096 {
		c.rate = c.rate[len(c.rate)-4096:]
		c.lat = c.lat[len(c.lat)-4096:]
	}
	c.fitted = false
}

// Observations reports the sample count.
func (c *CapacityModel) Observations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.rate)
}

// Fit profiles candidate capacities and fits base and k by OLS on the
// transformed feature ρ/(1-ρ). Returns false until enough data.
func (c *CapacityModel) Fit() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fitLocked()
}

func (c *CapacityModel) fitLocked() bool {
	if c.fitted {
		return true
	}
	if len(c.rate) < MinObservations {
		return false
	}
	maxRate := 0.0
	for _, r := range c.rate {
		if r > maxRate {
			maxRate = r
		}
	}
	bestErr := math.Inf(1)
	found := false
	// Capacity must exceed every observed rate; profile a grid above
	// the max observed rate.
	for mult := 1.02; mult <= 4.0; mult *= 1.06 {
		cap := maxRate * mult
		xs := make([][]float64, len(c.rate))
		for i, r := range c.rate {
			rho := r / cap
			xs[i] = []float64{rho / (1 - rho)}
		}
		m, err := FitLinear(xs, c.lat)
		if err != nil {
			continue
		}
		var sse float64
		for i := range xs {
			d := c.lat[i] - m.Predict(xs[i])
			sse += d * d
		}
		if sse < bestErr && m.Coef[0] > 0 {
			bestErr = sse
			c.capacity = cap
			c.base = m.Intercept
			c.k = m.Coef[0]
			found = true
		}
	}
	c.fitted = found
	return found
}

// PredictLatency returns the modelled latency at a per-server rate.
// NaN when the model is not fit or the rate saturates the server.
func (c *CapacityModel) PredictLatency(ratePerServer float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.fitLocked() {
		return math.NaN()
	}
	rho := ratePerServer / c.capacity
	if rho >= 1 {
		return math.Inf(1)
	}
	if rho < 0 {
		return math.NaN()
	}
	return c.base + c.k*rho/(1-rho)
}

// UsableCapacity returns the highest per-server rate whose predicted
// latency stays at or below slaLatencySeconds, with the given headroom
// fraction (0.2 = keep 20% slack). Returns 0 until the model is fit.
func (c *CapacityModel) UsableCapacity(slaLatencySeconds, headroom float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.fitLocked() {
		return 0
	}
	if slaLatencySeconds <= c.base {
		return 0 // SLA unachievable even when idle
	}
	// Invert: lat = base + k·ρ/(1-ρ)  =>  ρ = d/(k+d), d = lat-base.
	d := slaLatencySeconds - c.base
	rho := d / (c.k + d)
	usable := rho * c.capacity * (1 - headroom)
	if usable < 0 {
		return 0
	}
	return usable
}

// ServersNeeded returns the number of servers required to serve
// totalRate under the SLA. Returns min 1; returns fallback when the
// model is not yet fit.
func (c *CapacityModel) ServersNeeded(totalRate, slaLatencySeconds, headroom float64, fallback int) int {
	per := c.UsableCapacity(slaLatencySeconds, headroom)
	if per <= 0 {
		if fallback < 1 {
			return 1
		}
		return fallback
	}
	n := int(math.Ceil(totalRate / per))
	if n < 1 {
		n = 1
	}
	return n
}

// Params returns the fitted parameters (capacity, base, k) and whether
// the model is fit.
func (c *CapacityModel) Params() (capacity, base, k float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.fitLocked() {
		return 0, 0, 0, false
	}
	return c.capacity, c.base, c.k, true
}
