package mlmodel

import (
	"math"
	"sync"
	"time"
)

// Forecaster predicts near-future workload from its recent history so
// the director can start instances *before* load arrives (boot delay
// makes purely reactive scaling violate SLAs — §2.1, §3.3.2). It
// combines a linear trend over a sliding window with an optional
// time-of-day periodic profile learned from longer history.
type Forecaster struct {
	// TrendWindow is how much history feeds the linear trend.
	// Default 30 minutes.
	TrendWindow time.Duration
	// Periodic enables the time-of-day component once at least one
	// full day of history exists.
	Periodic bool
	// BucketSize is the time-of-day resolution. Default 30 minutes.
	BucketSize time.Duration

	mu      sync.Mutex
	samples []loadSample
	daySum  []float64
	dayCnt  []int
}

type loadSample struct {
	t    time.Time
	load float64
}

// NewForecaster returns a forecaster with default windows.
func NewForecaster(periodic bool) *Forecaster {
	return &Forecaster{
		TrendWindow: 30 * time.Minute,
		Periodic:    periodic,
		BucketSize:  30 * time.Minute,
	}
}

// Observe records the workload level at time t.
func (f *Forecaster) Observe(t time.Time, load float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.samples = append(f.samples, loadSample{t, load})
	// Trim to 48h of history.
	cutoff := t.Add(-48 * time.Hour)
	i := 0
	for i < len(f.samples) && f.samples[i].t.Before(cutoff) {
		i++
	}
	f.samples = f.samples[i:]

	if f.Periodic {
		if f.daySum == nil {
			n := int(24 * time.Hour / f.bucket())
			f.daySum = make([]float64, n)
			f.dayCnt = make([]int, n)
		}
		b := f.bucketOf(t)
		f.daySum[b] += load
		f.dayCnt[b]++
	}
}

func (f *Forecaster) bucket() time.Duration {
	if f.BucketSize > 0 {
		return f.BucketSize
	}
	return 30 * time.Minute
}

func (f *Forecaster) bucketOf(t time.Time) int {
	n := int(24 * time.Hour / f.bucket())
	secs := t.Hour()*3600 + t.Minute()*60 + t.Second()
	b := secs / int(f.bucket().Seconds())
	if b >= n {
		b = n - 1
	}
	return b
}

// Forecast predicts the load at now+horizon. Falls back to the latest
// observation when history is too thin, and to 0 with no history.
func (f *Forecaster) Forecast(now time.Time, horizon time.Duration) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.samples) == 0 {
		return 0
	}
	last := f.samples[len(f.samples)-1]

	trend := f.trendForecast(now, horizon)
	if math.IsNaN(trend) {
		trend = last.load
	}
	if trend < 0 {
		trend = 0
	}

	if !f.Periodic {
		return trend
	}
	periodic, ok := f.periodicForecast(now.Add(horizon))
	if !ok {
		return trend
	}
	// Blend: periodic knows the daily shape, trend knows the current
	// deviation; scale the periodic profile by the current deviation
	// ratio.
	curPeriodic, okCur := f.periodicForecast(now)
	if okCur && curPeriodic > 0 {
		ratio := last.load / curPeriodic
		if ratio < 0.1 {
			ratio = 0.1
		}
		if ratio > 10 {
			ratio = 10
		}
		scaled := periodic * ratio
		// Never forecast below the short-term trend during a spike.
		if trend > scaled {
			return trend
		}
		return scaled
	}
	if trend > periodic {
		return trend
	}
	return periodic
}

func (f *Forecaster) trendForecast(now time.Time, horizon time.Duration) float64 {
	window := f.TrendWindow
	if window <= 0 {
		window = 30 * time.Minute
	}
	cutoff := now.Add(-window)
	var xs [][]float64
	var ys []float64
	for _, s := range f.samples {
		if s.t.Before(cutoff) {
			continue
		}
		xs = append(xs, []float64{s.t.Sub(cutoff).Seconds()})
		ys = append(ys, s.load)
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	m, err := FitLinear(xs, ys)
	if err != nil {
		return math.NaN()
	}
	return m.Predict([]float64{now.Add(horizon).Sub(cutoff).Seconds()})
}

func (f *Forecaster) periodicForecast(at time.Time) (float64, bool) {
	if f.daySum == nil {
		return 0, false
	}
	b := f.bucketOf(at)
	if f.dayCnt[b] == 0 {
		return 0, false
	}
	return f.daySum[b] / float64(f.dayCnt[b]), true
}

// HistoryLen reports the number of retained samples.
func (f *Forecaster) HistoryLen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.samples)
}
