package mlmodel

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestFitLinearExact(t *testing.T) {
	// y = 2x + 3 exactly.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 10; i++ {
		xs = append(xs, []float64{float64(i)})
		ys = append(ys, 2*float64(i)+3)
	}
	m, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-2) > 1e-9 || math.Abs(m.Intercept-3) > 1e-9 {
		t.Fatalf("fit = %+v", m)
	}
	if m.R2 < 0.9999 {
		t.Fatalf("R2 = %v", m.R2)
	}
	if got := m.Predict([]float64{100}); math.Abs(got-203) > 1e-6 {
		t.Fatalf("Predict(100) = %v", got)
	}
}

func TestFitLinearMultivariate(t *testing.T) {
	// y = 1.5a - 2b + 0.5 with noise.
	r := rand.New(rand.NewSource(7))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 500; i++ {
		a, b := r.Float64()*10, r.Float64()*10
		xs = append(xs, []float64{a, b})
		ys = append(ys, 1.5*a-2*b+0.5+r.NormFloat64()*0.01)
	}
	m, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-1.5) > 0.01 || math.Abs(m.Coef[1]+2) > 0.01 {
		t.Fatalf("coefs = %v", m.Coef)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if _, err := FitLinear([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("underdetermined fit accepted")
	}
	// Collinear features → singular.
	xs := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	ys := []float64{1, 2, 3, 4}
	if _, err := FitLinear(xs, ys); err == nil {
		t.Fatal("singular design accepted")
	}
	// Ragged rows.
	if _, err := FitLinear([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestP2MatchesExactQuantile(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	p99 := NewP2(0.99)
	var all []float64
	for i := 0; i < 20000; i++ {
		// Long-tailed latency-like distribution.
		x := math.Exp(r.NormFloat64())
		p99.Add(x)
		all = append(all, x)
	}
	sort.Float64s(all)
	exact := all[int(0.99*float64(len(all)))]
	got := p99.Quantile()
	if math.Abs(got-exact)/exact > 0.15 {
		t.Fatalf("P2 p99 = %v, exact = %v", got, exact)
	}
	if p99.Count() != 20000 {
		t.Fatalf("Count = %d", p99.Count())
	}
}

func TestP2SmallSamples(t *testing.T) {
	p := NewP2(0.5)
	if !math.IsNaN(p.Quantile()) {
		t.Fatal("empty estimator should return NaN")
	}
	p.Add(5)
	if p.Quantile() != 5 {
		t.Fatalf("1-sample quantile = %v", p.Quantile())
	}
	p.Add(1)
	p.Add(9)
	q := p.Quantile()
	if q != 5 {
		t.Fatalf("3-sample median = %v", q)
	}
}

func TestWindowQuantile(t *testing.T) {
	w := NewWindow(100)
	if !math.IsNaN(w.Quantile(0.5)) || !math.IsNaN(w.Max()) || !math.IsNaN(w.Mean()) {
		t.Fatal("empty window should be NaN")
	}
	for i := 1; i <= 100; i++ {
		w.Add(float64(i))
	}
	if got := w.Quantile(0.5); got != 50 {
		t.Fatalf("median = %v", got)
	}
	if got := w.Quantile(0.99); got != 99 {
		t.Fatalf("p99 = %v", got)
	}
	if got := w.Quantile(1.0); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := w.Max(); got != 100 {
		t.Fatalf("Max = %v", got)
	}
	if got := w.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("Mean = %v", got)
	}
	// Ring behaviour: adding 100 more evicts the old ones.
	for i := 101; i <= 200; i++ {
		w.Add(float64(i))
	}
	if got := w.Quantile(0.0); got != 101 {
		t.Fatalf("min after wrap = %v", got)
	}
	if w.Len() != 100 {
		t.Fatalf("Len = %d", w.Len())
	}
}

func TestWindowQuantileMonotone(t *testing.T) {
	f := func(vals []float64, q1, q2 float64) bool {
		if len(vals) == 0 {
			return true
		}
		q1 = math.Mod(math.Abs(q1), 1)
		q2 = math.Mod(math.Abs(q2), 1)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		w := NewWindow(len(vals))
		for _, v := range vals {
			if math.IsNaN(v) {
				return true
			}
			w.Add(v)
		}
		return w.Quantile(q1) <= w.Quantile(q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// synthLatency produces latency from a known queueing curve.
func synthLatency(rate, capacity, base, k float64) float64 {
	rho := rate / capacity
	return base + k*rho/(1-rho)
}

func TestCapacityModelRecoversCurve(t *testing.T) {
	const capacity, base, k = 1000.0, 0.005, 0.020
	m := &CapacityModel{}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		rate := 50 + r.Float64()*850 // up to 90% utilisation
		lat := synthLatency(rate, capacity, base, k) * (1 + r.NormFloat64()*0.02)
		m.Observe(rate, lat)
	}
	if !m.Fit() {
		t.Fatal("Fit failed")
	}
	gotCap, gotBase, _, ok := m.Params()
	if !ok {
		t.Fatal("Params not fit")
	}
	if math.Abs(gotCap-capacity)/capacity > 0.25 {
		t.Fatalf("capacity = %v, want ~%v", gotCap, capacity)
	}
	if math.Abs(gotBase-base) > 0.01 {
		t.Fatalf("base = %v, want ~%v", gotBase, base)
	}

	// Predicted latency increases with rate and blows up near capacity.
	l200 := m.PredictLatency(200)
	l800 := m.PredictLatency(800)
	if !(l200 < l800) {
		t.Fatalf("latency not increasing: %v vs %v", l200, l800)
	}
	if !math.IsInf(m.PredictLatency(gotCap*1.1), 1) {
		t.Fatal("saturated rate should predict +Inf")
	}

	// UsableCapacity at 100ms SLA should be below raw capacity but
	// positive; ServersNeeded scales linearly.
	usable := m.UsableCapacity(0.100, 0.2)
	if usable <= 0 || usable >= capacity {
		t.Fatalf("usable = %v", usable)
	}
	n1 := m.ServersNeeded(usable*3, 0.100, 0.2, 1)
	if n1 != 3 {
		t.Fatalf("ServersNeeded = %d, want 3", n1)
	}
}

func TestCapacityModelFallbacks(t *testing.T) {
	m := &CapacityModel{}
	if m.Fit() {
		t.Fatal("Fit with no data succeeded")
	}
	if !math.IsNaN(m.PredictLatency(10)) {
		t.Fatal("unfit PredictLatency should be NaN")
	}
	if got := m.ServersNeeded(1000, 0.1, 0.2, 7); got != 7 {
		t.Fatalf("fallback ServersNeeded = %d", got)
	}
	if got := m.ServersNeeded(1000, 0.1, 0.2, 0); got != 1 {
		t.Fatalf("fallback floor = %d", got)
	}
	// Bad samples are ignored.
	m.Observe(-5, 1)
	m.Observe(5, -1)
	m.Observe(5, math.NaN())
	if m.Observations() != 0 {
		t.Fatal("bad samples recorded")
	}
	// Unachievable SLA.
	for i := 0; i < 50; i++ {
		m.Observe(float64(i+1)*10, synthLatency(float64(i+1)*10, 1000, 0.5, 0.1))
	}
	if m.UsableCapacity(0.001, 0) != 0 {
		t.Fatal("unachievable SLA returned capacity")
	}
}

func TestForecasterTrend(t *testing.T) {
	f := NewForecaster(false)
	t0 := time.Date(2009, 1, 4, 12, 0, 0, 0, time.UTC)
	// Load ramps 100 req/s per minute.
	for i := 0; i <= 30; i++ {
		f.Observe(t0.Add(time.Duration(i)*time.Minute), float64(1000+100*i))
	}
	now := t0.Add(30 * time.Minute)
	got := f.Forecast(now, 10*time.Minute)
	want := 1000.0 + 100*40
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("Forecast = %v, want ~%v", got, want)
	}
}

func TestForecasterEmptyAndThin(t *testing.T) {
	f := NewForecaster(false)
	if got := f.Forecast(time.Now(), time.Minute); got != 0 {
		t.Fatalf("empty forecast = %v", got)
	}
	t0 := time.Date(2009, 1, 4, 12, 0, 0, 0, time.UTC)
	f.Observe(t0, 500)
	if got := f.Forecast(t0, time.Minute); got != 500 {
		t.Fatalf("single-sample forecast = %v", got)
	}
}

func TestForecasterNeverNegative(t *testing.T) {
	f := NewForecaster(false)
	t0 := time.Date(2009, 1, 4, 12, 0, 0, 0, time.UTC)
	// Steeply falling load.
	for i := 0; i <= 10; i++ {
		f.Observe(t0.Add(time.Duration(i)*time.Minute), float64(1000-100*i))
	}
	if got := f.Forecast(t0.Add(10*time.Minute), 30*time.Minute); got < 0 {
		t.Fatalf("negative forecast: %v", got)
	}
}

func TestForecasterPeriodic(t *testing.T) {
	f := NewForecaster(true)
	f.TrendWindow = 20 * time.Minute
	t0 := time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)
	// Two days of a diurnal pattern: peak at noon, trough at midnight.
	diurnal := func(tm time.Time) float64 {
		h := float64(tm.Hour()) + float64(tm.Minute())/60
		return 1000 + 800*math.Sin((h-6)/24*2*math.Pi)
	}
	for m := 0; m < 2*24*60; m += 10 {
		tm := t0.Add(time.Duration(m) * time.Minute)
		f.Observe(tm, diurnal(tm))
	}
	// At 9am on day 3, forecast 3 hours ahead (noon): the periodic
	// component should anticipate the rise toward the peak.
	now := t0.Add(48*time.Hour + 9*time.Hour)
	f.Observe(now, diurnal(now))
	got := f.Forecast(now, 3*time.Hour)
	want := diurnal(now.Add(3 * time.Hour))
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("periodic forecast = %v, want ~%v", got, want)
	}
	if f.HistoryLen() == 0 {
		t.Fatal("history empty")
	}
}

func TestForecasterHistoryTrimmed(t *testing.T) {
	f := NewForecaster(false)
	t0 := time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)
	for h := 0; h < 100; h++ {
		f.Observe(t0.Add(time.Duration(h)*time.Hour), 100)
	}
	if f.HistoryLen() > 49 {
		t.Fatalf("history not trimmed: %d", f.HistoryLen())
	}
}

func BenchmarkP2Add(b *testing.B) {
	p := NewP2(0.999)
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Add(r.Float64())
	}
}

func BenchmarkWindowQuantile(b *testing.B) {
	w := NewWindow(1000)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		w.Add(r.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Add(r.Float64())
		_ = w.Quantile(0.999)
	}
}

func BenchmarkCapacityFit(b *testing.B) {
	m := &CapacityModel{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		rate := 50 + r.Float64()*850
		m.Observe(rate, synthLatency(rate, 1000, 0.005, 0.02))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(500, 0.01) // invalidate
		if !m.Fit() {
			b.Fatal("fit failed")
		}
	}
}
