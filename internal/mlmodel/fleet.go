package mlmodel

import (
	"math"
	"sort"
	"sync"
)

// FleetModel derives fleet capacity analytically from measured per-op
// cost curves (the FleetOpt-style upgrade over the single aggregate
// curve CapacityModel fits). Each request class c — view-profile,
// update-profile, … — has an unknown service demand D_c in
// server-seconds per operation. The model never sees D_c directly;
// it learns it from aggregate telemetry: the per-class per-server
// request rates x_c of an interval and the interval's SLA-percentile
// latency L (the WindowQuantile output of the SLA monitor). Under the
// same open queueing model as CapacityModel,
//
//	L = D̄/(1-ρ),   ρ = Σ_c x_c·D_c,   D̄ = ρ/X,   X = Σ_c x_c
//
// so each observation implies its utilisation in closed form,
//
//	ρ = L·X / (1 + L·X)
//
// which turns the per-class demand fit into plain least squares with
// no intercept: ρ ≈ Σ_c x_c·D_c, linear in the unknown demands. From
// the fitted demands, capacity for any operation mix follows
// analytically — no grid profiling: with mix fractions f_c, mean
// demand D̄ = Σ f_c·D_c, the latency bound L_max admits utilisation
// ρ_max = 1 − D̄/L_max, hence a per-server sustainable rate
// ρ_max/D̄, shaved by the headroom fraction.
//
// The director feeds it the forecaster's projected demand when sizing,
// so the existing forecast/quantile models remain the inputs; this
// model replaces only the "how many servers for that demand" step.
type FleetModel struct {
	mu  sync.Mutex
	obs []fleetSample

	fitted  bool
	classes []string           // stable sorted feature order at fit time
	demand  map[string]float64 // fitted D_c (server-seconds per op)
}

type fleetSample struct {
	rates map[string]float64 // per-class per-server rate (ops/s)
	rho   float64            // implied utilisation
}

// Observe records one interval's telemetry: per-class per-server
// request rates and the measured SLA-percentile latency in seconds.
// Samples with no load or a non-positive latency are ignored, as are
// saturated intervals the caller filters before calling.
func (f *FleetModel) Observe(classRates map[string]float64, latencySeconds float64) {
	if latencySeconds <= 0 || math.IsNaN(latencySeconds) {
		return
	}
	total := 0.0
	rates := make(map[string]float64, len(classRates))
	for _, c := range sortedKeys(classRates) {
		x := classRates[c]
		if x <= 0 || math.IsNaN(x) {
			continue
		}
		rates[c] = x
		total += x
	}
	if total <= 0 {
		return
	}
	rho := latencySeconds * total / (1 + latencySeconds*total)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.obs = append(f.obs, fleetSample{rates: rates, rho: rho})
	if len(f.obs) > 4096 {
		f.obs = f.obs[len(f.obs)-4096:]
	}
	f.fitted = false
}

// Observations reports the sample count.
func (f *FleetModel) Observations() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.obs)
}

// Fit solves the no-intercept least-squares system for the per-class
// demands. Returns false until there are enough observations or when
// the system is degenerate (e.g. class rates perfectly collinear).
func (f *FleetModel) Fit() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fitLocked()
}

func (f *FleetModel) fitLocked() bool {
	if f.fitted {
		return true
	}
	if len(f.obs) < MinObservations {
		return false
	}
	seen := map[string]bool{}
	for _, s := range f.obs {
		for c := range s.rates {
			seen[c] = true
		}
	}
	classes := make([]string, 0, len(seen))
	for c := range seen {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	d := len(classes)
	if d == 0 || len(f.obs) < d+1 {
		return false
	}

	// Normal equations X'X·D = X'ρ, no intercept column.
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	row := make([]float64, d)
	for _, s := range f.obs {
		for i, c := range classes {
			row[i] = s.rates[c]
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * s.rho
		}
	}
	beta, err := solve(xtx, xty)
	if err != nil {
		return false
	}
	demand := make(map[string]float64, d)
	positive := false
	for i, c := range classes {
		if beta[i] < 0 {
			beta[i] = 0 // a class can be ~free, never negative-cost
		}
		if beta[i] > 0 {
			positive = true
		}
		demand[c] = beta[i]
	}
	if !positive {
		return false
	}
	f.classes = classes
	f.demand = demand
	f.fitted = true
	return true
}

// Demand returns the fitted service demand for one class in
// server-seconds per op, and whether the model is fit.
func (f *FleetModel) Demand(class string) (float64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.fitLocked() {
		return 0, false
	}
	d, ok := f.demand[class]
	return d, ok
}

// meanDemandLocked computes D̄ = Σ f_c·D_c for a mix given as relative
// class weights (normalised internally). Classes the model never saw
// cost the mean of the known demands — unknown work is not free.
func (f *FleetModel) meanDemandLocked(mix map[string]float64) float64 {
	mixClasses := sortedKeys(mix)
	var total float64
	for _, c := range mixClasses {
		if w := mix[c]; w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	var known, n float64
	for _, c := range sortedKeys(f.demand) {
		known += f.demand[c]
		n++
	}
	unknownCost := 0.0
	if n > 0 {
		unknownCost = known / n
	}
	var mean float64
	for _, c := range mixClasses {
		w := mix[c]
		if w <= 0 {
			continue
		}
		d, ok := f.demand[c]
		if !ok {
			d = unknownCost
		}
		mean += w / total * d
	}
	return mean
}

// PredictLatency returns the modelled latency for per-class per-server
// rates. NaN when unfit; +Inf when the implied utilisation saturates.
func (f *FleetModel) PredictLatency(classRates map[string]float64) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.fitLocked() {
		return math.NaN()
	}
	var rho, x float64
	for _, c := range sortedKeys(classRates) {
		r := classRates[c]
		if r <= 0 {
			continue
		}
		d, ok := f.demand[c]
		if !ok {
			d = f.meanDemandLocked(map[string]float64{c: 1})
		}
		rho += r * d
		x += r
	}
	if x <= 0 {
		return 0
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	return (rho / x) / (1 - rho)
}

// UsablePerServer returns the highest total per-server request rate of
// the given mix whose predicted latency stays at or below the SLA
// bound, shaved by the headroom fraction. 0 until fit or when the SLA
// is unachievable (a single op already costs more than the bound).
func (f *FleetModel) UsablePerServer(mix map[string]float64, slaLatencySeconds, headroom float64) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.fitLocked() || slaLatencySeconds <= 0 {
		return 0
	}
	mean := f.meanDemandLocked(mix)
	if mean <= 0 {
		return 0
	}
	rhoMax := 1 - mean/slaLatencySeconds
	if rhoMax <= 0 {
		return 0 // SLA below the bare service time: unachievable
	}
	usable := rhoMax / mean * (1 - headroom)
	if usable < 0 {
		return 0
	}
	return usable
}

// ServersNeeded sizes the fleet for totalRate requests/second of the
// given mix under the SLA: ceil(totalRate/usable), never below floor —
// the caller passes the capacity its currently committed ranges demand
// (replication factor × data footprint), so provisioning can never
// shrink under what the stored data itself requires. Returns
// max(floor, 1) when the model is not fit.
func (f *FleetModel) ServersNeeded(totalRate float64, mix map[string]float64, slaLatencySeconds, headroom float64, floor int) int {
	if floor < 1 {
		floor = 1
	}
	per := f.UsablePerServer(mix, slaLatencySeconds, headroom)
	if per <= 0 {
		return floor
	}
	n := int(math.Ceil(totalRate / per))
	if n < floor {
		n = floor
	}
	return n
}

// sortedKeys returns m's keys sorted, so per-class float aggregation
// iterates in a fixed order: map iteration order is randomized per
// run and float addition is not associative, so summing in map order
// would make the low mantissa bits run-dependent — exactly what the
// e16 bit-identical-metrics gate (and the determinism analyzer)
// forbids in the control plane.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Params returns the fitted per-class demands and whether the model is
// fit. The map is a copy.
func (f *FleetModel) Params() (map[string]float64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.fitLocked() {
		return nil, false
	}
	out := make(map[string]float64, len(f.demand))
	for c, d := range f.demand {
		out[c] = d
	}
	return out, true
}
