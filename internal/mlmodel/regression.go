// Package mlmodel implements the machine-learning performance models
// SCADS relies on (paper §1.1, §2.2, §3.3): predicting request-latency
// quantiles from load, estimating per-server capacity under an SLA,
// and forecasting near-future workload so the director can provision
// *before* requirements are violated. The model families — least
// squares regression, streaming quantile estimation, and a closed-form
// queueing curve — match the group's contemporaneous work the paper
// cites (Bodík et al., Ganapathi et al.).
package mlmodel

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the normal equations cannot be solved.
var ErrSingular = errors.New("mlmodel: singular design matrix")

// ErrNoData is returned when a model has insufficient observations.
var ErrNoData = errors.New("mlmodel: not enough observations")

// LinearRegression is an ordinary-least-squares model y = β·x + β0.
type LinearRegression struct {
	Coef      []float64 // feature coefficients
	Intercept float64
	R2        float64
	N         int
}

// FitLinear fits OLS on rows of features xs with targets ys, solving
// the normal equations by Gaussian elimination with partial pivoting.
func FitLinear(xs [][]float64, ys []float64) (*LinearRegression, error) {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return nil, ErrNoData
	}
	d := len(xs[0])
	for _, x := range xs {
		if len(x) != d {
			return nil, fmt.Errorf("mlmodel: ragged feature rows")
		}
	}
	if n < d+1 {
		return nil, fmt.Errorf("%w: %d rows for %d parameters", ErrNoData, n, d+1)
	}

	// Build X'X (with intercept column) and X'y.
	dim := d + 1
	xtx := make([][]float64, dim)
	for i := range xtx {
		xtx[i] = make([]float64, dim)
	}
	xty := make([]float64, dim)
	for r := 0; r < n; r++ {
		// augmented row: [1, x...]
		row := make([]float64, dim)
		row[0] = 1
		copy(row[1:], xs[r])
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * ys[r]
		}
	}
	beta, err := solve(xtx, xty)
	if err != nil {
		return nil, err
	}

	m := &LinearRegression{Intercept: beta[0], Coef: beta[1:], N: n}

	// R².
	var meanY float64
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(n)
	var ssRes, ssTot float64
	for r := 0; r < n; r++ {
		pred := m.Predict(xs[r])
		ssRes += (ys[r] - pred) * (ys[r] - pred)
		ssTot += (ys[r] - meanY) * (ys[r] - meanY)
	}
	if ssTot > 0 {
		m.R2 = 1 - ssRes/ssTot
	} else {
		m.R2 = 1
	}
	return m, nil
}

// Predict evaluates the model at feature vector x.
func (m *LinearRegression) Predict(x []float64) float64 {
	y := m.Intercept
	for i, c := range m.Coef {
		if i < len(x) {
			y += c * x[i]
		}
	}
	return y
}

// solve performs Gaussian elimination with partial pivoting on a copy
// of A, b.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][n] / m[i][i]
	}
	return out, nil
}
