package mlmodel

import (
	"math"
	"sort"
)

// P2Estimator tracks one quantile of a stream in O(1) memory using the
// P² algorithm (Jain & Chlamtac 1985). SCADS uses it for long-horizon
// latency percentiles where storing samples would be unbounded.
type P2Estimator struct {
	q       float64
	n       int
	heights [5]float64
	pos     [5]float64
	want    [5]float64
	inc     [5]float64
	initBuf []float64
}

// NewP2 returns an estimator for quantile q in (0,1), e.g. 0.999.
func NewP2(q float64) *P2Estimator {
	p := &P2Estimator{q: q}
	p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Add observes one sample.
func (p *P2Estimator) Add(x float64) {
	if p.n < 5 {
		p.initBuf = append(p.initBuf, x)
		p.n++
		if p.n == 5 {
			sort.Float64s(p.initBuf)
			copy(p.heights[:], p.initBuf)
			p.pos = [5]float64{1, 2, 3, 4, 5}
			p.initBuf = nil
		}
		return
	}
	p.n++

	// Find cell k.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.want[i] += p.inc[i]
	}
	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

func (p *P2Estimator) parabolic(i int, d float64) float64 {
	return p.heights[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2Estimator) linear(i int, d float64) float64 {
	return p.heights[i] + d*(p.heights[i+int(d)]-p.heights[i])/(p.pos[i+int(d)]-p.pos[i])
}

// Quantile returns the current estimate (exact until 5 samples).
func (p *P2Estimator) Quantile() float64 {
	if p.n == 0 {
		return math.NaN()
	}
	if p.n < 5 {
		buf := append([]float64(nil), p.initBuf...)
		sort.Float64s(buf)
		idx := int(p.q * float64(len(buf)))
		if idx >= len(buf) {
			idx = len(buf) - 1
		}
		return buf[idx]
	}
	return p.heights[2]
}

// Count returns the number of samples observed.
func (p *P2Estimator) Count() int { return p.n }

// WindowQuantile keeps the last N samples in a ring buffer and
// computes exact quantiles over them — the SLA monitor's sliding
// window.
type WindowQuantile struct {
	buf  []float64
	next int
	full bool
}

// NewWindow returns a window of size n (n >= 1).
func NewWindow(n int) *WindowQuantile {
	if n < 1 {
		n = 1
	}
	return &WindowQuantile{buf: make([]float64, n)}
}

// Add observes a sample.
func (w *WindowQuantile) Add(x float64) {
	w.buf[w.next] = x
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
}

// Len reports how many samples the window currently holds.
func (w *WindowQuantile) Len() int {
	if w.full {
		return len(w.buf)
	}
	return w.next
}

// Quantile returns the q-quantile (q in [0,1]) of the window, or NaN
// when empty. Uses the nearest-rank method: the value at ceil(q*n).
func (w *WindowQuantile) Quantile(q float64) float64 {
	n := w.Len()
	if n == 0 {
		return math.NaN()
	}
	tmp := make([]float64, n)
	copy(tmp, w.buf[:n])
	sort.Float64s(tmp)
	rank := int(math.Ceil(q*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return tmp[rank]
}

// Max returns the window maximum (NaN when empty).
func (w *WindowQuantile) Max() float64 {
	n := w.Len()
	if n == 0 {
		return math.NaN()
	}
	max := w.buf[0]
	for _, v := range w.buf[1:n] {
		if v > max {
			max = v
		}
	}
	return max
}

// Mean returns the window mean (NaN when empty).
func (w *WindowQuantile) Mean() float64 {
	n := w.Len()
	if n == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range w.buf[:n] {
		s += v
	}
	return s / float64(n)
}
