package mlmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthFleetLatency produces the closed-form queueing latency for
// per-class per-server rates under known per-class demands.
func synthFleetLatency(rates, demand map[string]float64) float64 {
	var rho, x float64
	for c, r := range rates {
		rho += r * demand[c]
		x += r
	}
	return (rho / x) / (1 - rho)
}

func trainFleet(f *FleetModel, demand map[string]float64, n int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		// Random mix and intensity, capped below saturation.
		rates := map[string]float64{
			"read":  50 + r.Float64()*250,
			"write": 5 + r.Float64()*45,
		}
		if ρ := rates["read"]*demand["read"] + rates["write"]*demand["write"]; ρ >= 0.9 {
			continue
		}
		f.Observe(rates, synthFleetLatency(rates, demand))
	}
}

func TestFleetModelRecoversPerClassDemand(t *testing.T) {
	// Known per-op cost curve: reads 2ms, writes 8ms of server time.
	demand := map[string]float64{"read": 0.002, "write": 0.008}
	f := &FleetModel{}
	trainFleet(f, demand, 100, 1)
	if !f.Fit() {
		t.Fatal("Fit failed")
	}
	got, ok := f.Params()
	if !ok {
		t.Fatal("Params not fit")
	}
	for c, want := range demand {
		if math.Abs(got[c]-want)/want > 0.05 {
			t.Fatalf("demand[%s] = %v, want ~%v", c, got[c], want)
		}
	}
	// Latency prediction matches the generating curve.
	rates := map[string]float64{"read": 200, "write": 25}
	if gotL, wantL := f.PredictLatency(rates), synthFleetLatency(rates, demand); math.Abs(gotL-wantL)/wantL > 0.05 {
		t.Fatalf("PredictLatency = %v, want ~%v", gotL, wantL)
	}
}

func TestFleetModelUsableClosedForm(t *testing.T) {
	// Single class: demand D → with SLA L and headroom h the usable
	// per-server rate is (1-h)·(1-D/L)/D, analytically.
	const D, L, h = 0.004, 0.100, 0.2
	f := &FleetModel{}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		x := 10 + r.Float64()*200
		f.Observe(map[string]float64{"op": x}, (x*D/x)/(1-x*D))
	}
	want := (1 - h) * (1 - D/L) / D
	got := f.UsablePerServer(map[string]float64{"op": 1}, L, h)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("UsablePerServer = %v, want ~%v", got, want)
	}
	// Unachievable SLA: bound below the bare service time.
	if f.UsablePerServer(map[string]float64{"op": 1}, D/2, 0) != 0 {
		t.Fatal("unachievable SLA returned capacity")
	}
}

func TestFleetModelServersMonotoneInLoad(t *testing.T) {
	demand := map[string]float64{"read": 0.002, "write": 0.008}
	f := &FleetModel{}
	trainFleet(f, demand, 100, 3)
	if !f.Fit() {
		t.Fatal("Fit failed")
	}
	mix := map[string]float64{"read": 9, "write": 1}
	prop := func(a, b float64) bool {
		ra := math.Abs(math.Mod(a, 1e6))
		rb := math.Abs(math.Mod(b, 1e6))
		if ra > rb {
			ra, rb = rb, ra
		}
		// Monotone: more offered load never needs fewer servers.
		return f.ServersNeeded(ra, mix, 0.1, 0.2, 1) <= f.ServersNeeded(rb, mix, 0.1, 0.2, 1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFleetModelNeverBelowCommittedFloor(t *testing.T) {
	demand := map[string]float64{"read": 0.002, "write": 0.008}
	f := &FleetModel{}
	trainFleet(f, demand, 100, 4)
	mix := map[string]float64{"read": 1}
	prop := func(rate float64, floor int) bool {
		rate = math.Abs(math.Mod(rate, 1e6))
		floor = floor % 64
		want := floor
		if want < 1 {
			want = 1
		}
		// Never below the committed-ranges floor, fit or not.
		return f.ServersNeeded(rate, mix, 0.1, 0.2, floor) >= want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Unfit model falls back to the floor exactly.
	unfit := &FleetModel{}
	if got := unfit.ServersNeeded(1e5, mix, 0.1, 0.2, 7); got != 7 {
		t.Fatalf("unfit fallback = %d, want 7", got)
	}
}

func TestFleetModelRejectsBadSamples(t *testing.T) {
	f := &FleetModel{}
	f.Observe(nil, 0.01)
	f.Observe(map[string]float64{"read": -5}, 0.01)
	f.Observe(map[string]float64{"read": 5}, -1)
	f.Observe(map[string]float64{"read": 5}, math.NaN())
	if f.Observations() != 0 {
		t.Fatalf("bad samples recorded: %d", f.Observations())
	}
	if f.Fit() {
		t.Fatal("Fit succeeded with no data")
	}
	if !math.IsNaN(f.PredictLatency(map[string]float64{"read": 5})) {
		t.Fatal("unfit PredictLatency should be NaN")
	}
}

func TestFleetModelUnknownClassNotFree(t *testing.T) {
	demand := map[string]float64{"read": 0.004}
	f := &FleetModel{}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		x := 10 + r.Float64()*180
		f.Observe(map[string]float64{"read": x}, synthFleetLatency(map[string]float64{"read": x}, demand))
	}
	known := f.ServersNeeded(10000, map[string]float64{"read": 1}, 0.1, 0.2, 1)
	novel := f.ServersNeeded(10000, map[string]float64{"scan": 1}, 0.1, 0.2, 1)
	if novel < known {
		t.Fatalf("unknown class sized cheaper than known: %d < %d", novel, known)
	}
}
