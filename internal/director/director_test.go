package director

import (
	"strings"
	"testing"
	"time"

	"scads/internal/clock"
)

var t0 = time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)

// fakeActuator tracks requested/released capacity with instant boot.
type fakeActuator struct {
	running int
	booting int
}

func (f *fakeActuator) Running() int { return f.running }
func (f *fakeActuator) Booting() int { return f.booting }
func (f *fakeActuator) Request(n int) {
	f.booting += n
}
func (f *fakeActuator) Release(n int) {
	f.running -= n
	if f.running < 0 {
		f.running = 0
	}
}
func (f *fakeActuator) finishBoot() {
	f.running += f.booting
	f.booting = 0
}

func cfg(policy Policy) Config {
	return Config{
		SLALatency:        100 * time.Millisecond,
		ForecastHorizon:   5 * time.Minute,
		MinServers:        1,
		ScaleDownCooldown: 10 * time.Minute,
		Policy:            policy,
	}
}

func TestReactiveScalesUpOnViolation(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 8}
	d := New(vc, act, cfg(Reactive))
	dec := d.Step(Observation{Rate: 1000, Latency: 500 * time.Millisecond, SuccessRate: 100, SLAMet: false})
	if dec.Added != 2 { // 25% of 8
		t.Fatalf("Added = %d, want 2", dec.Added)
	}
	if !strings.Contains(dec.Reason, "violation") {
		t.Fatalf("Reason = %q", dec.Reason)
	}
}

func TestReactiveScalesDownOnUnderload(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 20}
	d := New(vc, act, cfg(Reactive))
	vc.Advance(time.Hour) // past any cooldown
	dec := d.Step(Observation{Rate: 10, Latency: 5 * time.Millisecond, SuccessRate: 100, SLAMet: true})
	if dec.Removed != 2 { // 10% of 20
		t.Fatalf("Removed = %d, want 2: %+v", dec.Removed, dec)
	}
	if act.running != 18 {
		t.Fatalf("running = %d", act.running)
	}
}

func TestScaleDownCooldownPreventsThrash(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 20}
	d := New(vc, act, cfg(Reactive))
	vc.Advance(time.Hour)
	obs := Observation{Rate: 10, Latency: 5 * time.Millisecond, SuccessRate: 100, SLAMet: true}
	first := d.Step(obs)
	if first.Removed == 0 {
		t.Fatal("first scale-down blocked")
	}
	vc.Advance(time.Minute) // within cooldown
	second := d.Step(obs)
	if second.Removed != 0 {
		t.Fatalf("scale-down inside cooldown: %+v", second)
	}
	if !strings.Contains(second.Reason, "cooldown") {
		t.Fatalf("Reason = %q", second.Reason)
	}
	vc.Advance(11 * time.Minute)
	third := d.Step(obs)
	if third.Removed == 0 {
		t.Fatal("scale-down after cooldown blocked")
	}
}

func TestMinServersFloor(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 2}
	c := cfg(Reactive)
	c.MinServers = 2
	d := New(vc, act, c)
	vc.Advance(time.Hour)
	dec := d.Step(Observation{Rate: 0, Latency: time.Millisecond, SuccessRate: 100, SLAMet: true})
	if dec.Target < 2 || act.running < 2 {
		t.Fatalf("floor violated: %+v running=%d", dec, act.running)
	}
}

func TestMaxServersCap(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 10}
	c := cfg(Reactive)
	c.MaxServers = 12
	d := New(vc, act, c)
	dec := d.Step(Observation{Rate: 1e6, Latency: time.Second, SLAMet: false})
	if dec.Target > 12 {
		t.Fatalf("cap violated: %+v", dec)
	}
}

func TestReplicationBacklogBoost(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 4}
	d := New(vc, act, cfg(Reactive))
	dec := d.Step(Observation{Rate: 100, Latency: 10 * time.Millisecond, SuccessRate: 100, SLAMet: true,
		ReplicationAtRisk: 2500})
	// Steady reactive target would be ≤ running; the backlog boost of
	// 1+2500/1000 = 3 must push the target above the current size.
	if dec.Target <= 4 || dec.Added == 0 {
		t.Fatalf("backlog boost missing: %+v", dec)
	}
	if !strings.Contains(dec.Reason, "repl-backlog") {
		t.Fatalf("Reason = %q", dec.Reason)
	}
}

// trainModel feeds the director observations until the capacity model
// fits: rate per server r gives latency base+k·ρ/(1-ρ) with cap 1000.
func trainModel(t *testing.T, d *Director, act *fakeActuator, vc *clock.Virtual) {
	t.Helper()
	latency := func(ratePerServer float64) time.Duration {
		rho := ratePerServer / 1000
		return 5*time.Millisecond + time.Duration(float64(20*time.Millisecond)*rho/(1-rho))
	}
	for i := 0; i < 40; i++ {
		rate := 100 + float64(i)*20 // per server, ramping to 880
		total := rate * float64(act.running)
		d.Step(Observation{Rate: total, Latency: latency(rate), SuccessRate: 100, SLAMet: true})
		act.finishBoot()
		vc.Advance(30 * time.Second)
	}
	if _, _, _, ok := d.Capacity.Params(); !ok {
		t.Fatal("capacity model did not fit during training")
	}
}

func TestModelDrivenProvisionsAheadOfRamp(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 4}
	c := cfg(ModelDriven)
	c.ForecastHorizon = 10 * time.Minute
	d := New(vc, act, c)
	trainModel(t, d, act, vc)

	// Now drive a steep ramp: rate grows 20%/minute. The model-driven
	// director should provision for the *forecast* rate, i.e. target
	// more servers than current load alone would need.
	rate := 1000.0
	var lastDec Decision
	for i := 0; i < 15; i++ {
		lastDec = d.Step(Observation{Rate: rate, Latency: 50 * time.Millisecond, SuccessRate: 100, SLAMet: true})
		act.finishBoot()
		vc.Advance(time.Minute)
		rate *= 1.2
	}
	if lastDec.Forecast <= lastDec.Observed.Rate {
		t.Fatalf("forecast (%v) did not exceed current rate (%v) on a ramp", lastDec.Forecast, lastDec.Observed.Rate)
	}
	if !strings.Contains(lastDec.Reason, "forecast") {
		t.Fatalf("Reason = %q", lastDec.Reason)
	}
	// Target must cover the forecast at the learned per-server
	// capacity, not just current load.
	perServer := d.Capacity.UsableCapacity(0.1, 0.2)
	needCurrent := int(lastDec.Observed.Rate/perServer) + 1
	if lastDec.Target <= needCurrent {
		t.Fatalf("target %d does not provision ahead (current need %d)", lastDec.Target, needCurrent)
	}
}

func TestModelDrivenFallsBackWhenUnfit(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 4}
	d := New(vc, act, cfg(ModelDriven))
	dec := d.Step(Observation{Rate: 100, Latency: time.Second, SLAMet: false})
	if !strings.Contains(dec.Reason, "unfit") {
		t.Fatalf("Reason = %q", dec.Reason)
	}
	if dec.Added == 0 {
		t.Fatal("unfit director ignored a violation")
	}
}

func TestDecisionsLogged(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 1}
	d := New(vc, act, cfg(Reactive))
	for i := 0; i < 5; i++ {
		d.Step(Observation{Rate: 10, Latency: time.Millisecond, SuccessRate: 100, SLAMet: true})
	}
	if got := len(d.Decisions()); got != 5 {
		t.Fatalf("decisions = %d", got)
	}
}

func TestPolicyString(t *testing.T) {
	if ModelDriven.String() != "model-driven" || Reactive.String() != "reactive" {
		t.Fatal("Policy strings")
	}
}

func TestContentionSignalBoostsTargetAndIsNoted(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 4}
	d := New(vc, act, cfg(Reactive))
	// 50ms is inside the steady band (between SLALatency/3 and the
	// bound), so without the contention signal the target would stay
	// at running.
	dec := d.Step(Observation{
		Rate: 10, Latency: 50 * time.Millisecond, SuccessRate: 90, SLAMet: true,
		Contentions: 3,
	})
	if !strings.Contains(dec.Reason, "contention(3)") {
		t.Fatalf("Reason = %q, want contention annotation", dec.Reason)
	}
	if dec.Target <= 4 {
		t.Fatalf("Target = %d, want boost above running", dec.Target)
	}
	d.Step(Observation{Rate: 10, Latency: time.Millisecond, SLAMet: true, Contentions: 2})
	if got := d.ContentionsNoted(); got != 5 {
		t.Fatalf("ContentionsNoted = %d, want 5", got)
	}
}

func TestNoContentionNoAnnotation(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 4}
	d := New(vc, act, cfg(Reactive))
	dec := d.Step(Observation{Rate: 10, Latency: time.Millisecond, SuccessRate: 100, SLAMet: true})
	if strings.Contains(dec.Reason, "contention") {
		t.Fatalf("Reason = %q, want no contention annotation", dec.Reason)
	}
	if d.ContentionsNoted() != 0 {
		t.Fatal("noted contentions without any observed")
	}
}
