// Package director implements the provisioning feedback loop of
// Figure 2: observe workload and SLA compliance, update the
// performance models, forecast near-future demand, and add or remove
// capacity so requirements keep holding at minimum cost. Two policies
// are built in — the paper's model-driven policy (capacity model +
// forecast, provisioning *ahead* of demand) and a reactive
// threshold-rule baseline used as the ablation in experiments E1/E2.
package director

import (
	"fmt"
	"sync"
	"time"

	"scads/internal/clock"
	"scads/internal/mlmodel"
)

// Policy selects the provisioning strategy.
type Policy int

const (
	// ModelDriven uses the learned capacity model plus a workload
	// forecast at the boot-delay horizon (the SCADS design).
	ModelDriven Policy = iota
	// Reactive scales only on currently observed violations/underload
	// (the ablation baseline: no model, no forecast).
	Reactive
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case ModelDriven:
		return "model-driven"
	case Reactive:
		return "reactive"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Actuator is the director's lever on cluster size. The cloud
// simulator (plus node bootstrap glue) implements it; a real
// deployment would call a cloud API.
type Actuator interface {
	// Running returns the number of serving instances.
	Running() int
	// Booting returns the number of instances still starting.
	Booting() int
	// Request starts n new instances.
	Request(n int)
	// Release stops n running instances.
	Release(n int)
}

// Observation is one interval's telemetry, produced by the SLA monitor
// and replication pump.
type Observation struct {
	// Rate is the observed request rate (req/s).
	Rate float64
	// ClassRates breaks Rate down by request class (view-profile,
	// update-profile, …) when per-class SLO accounting is in place.
	// Feeds the fleet model's per-op cost curves; nil keeps the
	// single-curve capacity model in charge.
	ClassRates map[string]float64
	// CommittedServers is the capacity floor the currently committed
	// ranges demand (replication factor × data footprint): scale-down
	// may never size below what the stored data itself requires.
	CommittedServers int
	// Latency is the SLA-percentile latency.
	Latency time.Duration
	// SuccessRate is availability in percent.
	SuccessRate float64
	// SLAMet summarises whether the interval met the SLA.
	SLAMet bool
	// ReplicationAtRisk counts queued updates in danger of missing
	// their staleness deadline (§3.3.2's backlog signal).
	ReplicationAtRisk int
	// Contentions counts §3.3.1 requirement contentions this interval:
	// reads where the declared requirements were unsatisfiable at once
	// and the priority order had to sacrifice one. The paper requires
	// these failures be "noted and used as input to the manager
	// functions that re-provision the system".
	Contentions int
}

// Decision records what one control step decided, for logs and
// experiment output.
type Decision struct {
	At       time.Time
	Policy   Policy
	Observed Observation
	Forecast float64
	Target   int
	Running  int
	Booting  int
	Added    int
	Removed  int
	Reason   string
}

// Config tunes the director.
type Config struct {
	// SLALatency is the latency bound being defended.
	SLALatency time.Duration
	// Headroom is spare capacity fraction kept when sizing (default
	// 0.2).
	Headroom float64
	// ForecastHorizon is how far ahead demand is predicted; it should
	// cover instance boot delay plus a control interval (default 5m).
	ForecastHorizon time.Duration
	// MinServers floors the cluster size (default 1).
	MinServers int
	// MaxServers caps it (0 = uncapped).
	MaxServers int
	// ScaleDownCooldown is the minimum time between scale-down steps,
	// preventing thrash (default 10m).
	ScaleDownCooldown time.Duration
	// ScaleDownThreshold only releases servers when the target is
	// below running by at least this fraction (default 0.1).
	ScaleDownThreshold float64
	// Policy selects model-driven or reactive control.
	Policy Policy
	// Periodic enables the time-of-day forecast component.
	Periodic bool
}

func (c Config) withDefaults() Config {
	if c.Headroom <= 0 {
		c.Headroom = 0.2
	}
	if c.ForecastHorizon <= 0 {
		c.ForecastHorizon = 5 * time.Minute
	}
	if c.MinServers < 1 {
		c.MinServers = 1
	}
	if c.ScaleDownCooldown <= 0 {
		c.ScaleDownCooldown = 10 * time.Minute
	}
	if c.ScaleDownThreshold <= 0 {
		c.ScaleDownThreshold = 0.1
	}
	return c
}

// Director is the Figure 2 controller.
type Director struct {
	cfg      Config
	clk      clock.Clock
	actuator Actuator

	Capacity   *mlmodel.CapacityModel
	Fleet      *mlmodel.FleetModel
	Forecaster *mlmodel.Forecaster

	mu            sync.Mutex
	lastScaleDown time.Time
	decisions     []Decision
	contentions   int64
}

// New returns a director driving actuator under cfg.
func New(clk clock.Clock, actuator Actuator, cfg Config) *Director {
	cfg = cfg.withDefaults()
	return &Director{
		cfg:        cfg,
		clk:        clk,
		actuator:   actuator,
		Capacity:   &mlmodel.CapacityModel{},
		Fleet:      &mlmodel.FleetModel{},
		Forecaster: mlmodel.NewForecaster(cfg.Periodic),
	}
}

// Step runs one control interval: learn from obs, decide, actuate.
func (d *Director) Step(obs Observation) Decision {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clk.Now()
	running := d.actuator.Running()
	booting := d.actuator.Booting()

	// Learn — but never from saturated intervals: when the system is
	// shedding load, the observed (offered rate, timeout latency)
	// pair lies far off the queueing curve and would corrupt the
	// capacity fit (the same filtering the Bodík-style modelling work
	// applies to training data).
	if running > 0 && obs.Rate > 0 && obs.Latency > 0 {
		saturated := d.cfg.SLALatency > 0 && obs.Latency > 2*d.cfg.SLALatency
		if !saturated {
			d.Capacity.Observe(obs.Rate/float64(running), obs.Latency.Seconds())
			if len(obs.ClassRates) > 0 {
				perServer := make(map[string]float64, len(obs.ClassRates))
				for c, r := range obs.ClassRates {
					perServer[c] = r / float64(running)
				}
				d.Fleet.Observe(perServer, obs.Latency.Seconds())
			}
		}
	}
	d.Forecaster.Observe(now, obs.Rate)

	dec := Decision{
		At:       now,
		Policy:   d.cfg.Policy,
		Observed: obs,
		Running:  running,
		Booting:  booting,
	}

	var target int
	switch d.cfg.Policy {
	case Reactive:
		target, dec.Reason = d.reactiveTarget(obs, running)
		dec.Forecast = obs.Rate
	default:
		target, dec.Forecast, dec.Reason = d.modelTarget(obs, running)
	}

	// The replication backlog signal adds capacity regardless of
	// policy: a growing at-risk queue means propagation bandwidth is
	// short (§3.3.2).
	if obs.ReplicationAtRisk > 0 {
		boost := 1 + obs.ReplicationAtRisk/1000
		target += boost
		dec.Reason += fmt.Sprintf("+repl-backlog(%d)", obs.ReplicationAtRisk)
	}

	// Requirement contentions (§3.3.1) are noted and answered with
	// extra capacity: more replicas/bandwidth shortens the window in
	// which requirements are unsatisfiable. The cumulative count is an
	// operator-facing alarm either way.
	if obs.Contentions > 0 {
		d.contentions += int64(obs.Contentions)
		target++
		dec.Reason += fmt.Sprintf("+contention(%d)", obs.Contentions)
	}

	if target < d.cfg.MinServers {
		target = d.cfg.MinServers
	}
	if target < obs.CommittedServers {
		// Whatever the models say, never size below what the committed
		// ranges need to stay fully replicated.
		target = obs.CommittedServers
	}
	if d.cfg.MaxServers > 0 && target > d.cfg.MaxServers {
		target = d.cfg.MaxServers
	}
	dec.Target = target

	have := running + booting
	switch {
	case target > have:
		dec.Added = target - have
		d.actuator.Request(dec.Added)
	case target < running:
		// Scale down, rate-limited and hysteretic.
		if now.Sub(d.lastScaleDown) < d.cfg.ScaleDownCooldown {
			dec.Reason += "+cooldown-hold"
			break
		}
		slack := float64(running-target) / float64(running)
		if slack < d.cfg.ScaleDownThreshold {
			dec.Reason += "+hysteresis-hold"
			break
		}
		dec.Removed = running - target
		d.actuator.Release(dec.Removed)
		d.lastScaleDown = now
	}

	d.decisions = append(d.decisions, dec)
	if len(d.decisions) > 100000 {
		d.decisions = d.decisions[len(d.decisions)-50000:]
	}
	return dec
}

// modelTarget sizes the cluster from the learned models applied to the
// forecast demand. The fleet model's analytical per-class capacity is
// preferred once fit; the single-curve capacity model backs it up, and
// before either is fit the reactive baseline keeps the system
// controlled.
func (d *Director) modelTarget(obs Observation, running int) (int, float64, string) {
	now := d.clk.Now()
	forecast := d.Forecaster.Forecast(now, d.cfg.ForecastHorizon)
	demand := obs.Rate
	horizon := "current"
	if forecast > demand {
		demand = forecast
		horizon = "forecast"
	}
	if len(obs.ClassRates) > 0 && d.Fleet.Fit() {
		floor := obs.CommittedServers
		if floor < 1 {
			floor = 1
		}
		target := d.Fleet.ServersNeeded(demand, obs.ClassRates, d.cfg.SLALatency.Seconds(), d.cfg.Headroom, floor)
		return target, forecast, "fleet:" + horizon
	}
	target := d.Capacity.ServersNeeded(demand, d.cfg.SLALatency.Seconds(), d.cfg.Headroom, running)
	if _, _, _, ok := d.Capacity.Params(); !ok {
		t, r := d.reactiveTarget(obs, running)
		return t, forecast, "unfit:" + r
	}
	return target, forecast, "model:" + horizon
}

// reactiveTarget is the threshold baseline: scale up 25% on a
// violation, scale down 10% when latency is far under the bound.
func (d *Director) reactiveTarget(obs Observation, running int) (int, string) {
	switch {
	case !obs.SLAMet:
		step := running / 4
		if step < 1 {
			step = 1
		}
		return running + step, "reactive:violation"
	case d.cfg.SLALatency > 0 && obs.Latency > 0 && obs.Latency < d.cfg.SLALatency/3:
		step := (running + 9) / 10 // ceil(10%) so hysteresis can pass
		return running - step, "reactive:underload"
	default:
		return running, "reactive:steady"
	}
}

// ContentionsNoted returns the cumulative count of §3.3.1 requirement
// contentions reported to the director — the operator-notification
// side of "noted and used as input to the manager functions".
func (d *Director) ContentionsNoted() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.contentions
}

// Decisions returns a copy of the decision log.
func (d *Director) Decisions() []Decision {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Decision(nil), d.decisions...)
}
