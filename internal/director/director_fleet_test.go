package director

import (
	"strings"
	"testing"
	"time"

	"scads/internal/clock"
	"scads/internal/workload"
)

// fleetDemand is the ground-truth per-op cost curve the synthetic
// telemetry below is generated from: reads cost 2ms of server time,
// writes 8ms.
var fleetDemand = map[string]float64{"read": 0.002, "write": 0.008}

// fleetLatency produces the closed-form queueing latency for total
// per-class rates spread over `servers`.
func fleetLatency(classRates map[string]float64, servers int) time.Duration {
	var rho, x float64
	for c, r := range classRates {
		per := r / float64(servers)
		rho += per * fleetDemand[c]
		x += per
	}
	if x <= 0 {
		return 0
	}
	if rho >= 1 {
		return 10 * time.Second
	}
	return time.Duration((rho / x) / (1 - rho) * float64(time.Second))
}

// stepFleet feeds one interval of synthetic per-class telemetry.
func stepFleet(d *Director, act *fakeActuator, classRates map[string]float64, met bool) Decision {
	var total float64
	for _, r := range classRates {
		total += r
	}
	dec := d.Step(Observation{
		Rate:        total,
		ClassRates:  classRates,
		Latency:     fleetLatency(classRates, act.running),
		SuccessRate: 100,
		SLAMet:      met,
	})
	act.finishBoot()
	return dec
}

// trainFleetDirector drives varied mixes until the fleet model fits.
func trainFleetDirector(t *testing.T, d *Director, act *fakeActuator, vc *clock.Virtual) {
	t.Helper()
	for i := 0; i < 20; i++ {
		read := (50 + float64(i)*10) * float64(act.running)
		write := (5 + float64(i%5)*5) * float64(act.running)
		stepFleet(d, act, map[string]float64{"read": read, "write": write}, true)
		vc.Advance(30 * time.Second)
	}
	if !d.Fleet.Fit() {
		t.Fatal("fleet model did not fit during training")
	}
}

func TestFleetScaleUpOnForecastBreach(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 4}
	c := cfg(ModelDriven)
	c.ForecastHorizon = 10 * time.Minute
	d := New(vc, act, c)
	trainFleetDirector(t, d, act, vc)

	// Demand ramps 15%/minute. Every interval still meets the SLA —
	// the director must provision on the forecast breach, before the
	// violation materialises.
	read, write := 900.0, 100.0
	added := 0
	var last Decision
	for i := 0; i < 15; i++ {
		last = stepFleet(d, act, map[string]float64{"read": read, "write": write}, true)
		added += last.Added
		vc.Advance(time.Minute)
		read *= 1.15
		write *= 1.15
	}
	if added == 0 {
		t.Fatal("no capacity added ahead of the ramp")
	}
	if last.Forecast <= last.Observed.Rate {
		t.Fatalf("forecast %v did not lead the ramp (rate %v)", last.Forecast, last.Observed.Rate)
	}
	if !strings.Contains(last.Reason, "fleet:forecast") {
		t.Fatalf("Reason = %q, want fleet:forecast", last.Reason)
	}
	// The fleet sizing must cover the forecast at the learned per-op
	// costs: target ≥ forecast / usable-per-server.
	usable := d.Fleet.UsablePerServer(last.Observed.ClassRates, 0.1, 0.2)
	if need := int(last.Forecast / usable); last.Target < need {
		t.Fatalf("target %d below forecast need %d", last.Target, need)
	}
}

func TestFleetHysteresisNoFlapOnNoisyTrace(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 10}
	d := New(vc, act, cfg(ModelDriven))
	// A long trend window smooths symmetric noise out of the forecast;
	// what remains tests the scale-down hysteresis proper.
	d.Forecaster.TrendWindow = 30 * time.Minute
	trainFleetDirector(t, d, act, vc)

	// Pure read mix: usable per server = (1-0.2)·(1-0.002/0.1)/0.002
	// = 392/s. A ±5% noisy trace straddling the 10-server boundary
	// (3920/s) keeps nudging the target between 10 and 11; hysteresis
	// must absorb it — after the settle window (which also flushes the
	// training ramp from the forecaster), zero adds and removes.
	trace := workload.Noisy{T: workload.Constant(3920), Seed: 17, Frac: 0.05}
	settle := 0
	flaps, holds := 0, 0
	for i := 0; i < 240; i++ {
		rate := trace.Rate(vc.Now())
		dec := stepFleet(d, act, map[string]float64{"read": rate}, true)
		vc.Advance(time.Minute)
		if i < 45 {
			settle = act.running
			continue
		}
		if dec.Added > 0 || dec.Removed > 0 {
			flaps++
		}
		if strings.Contains(dec.Reason, "hysteresis-hold") {
			holds++
		}
	}
	if flaps > 0 {
		t.Fatalf("%d scale actions on a noisy steady trace (settled at %d servers)", flaps, settle)
	}
	if holds == 0 {
		t.Fatal("hysteresis never engaged — the trace did not test it")
	}
}

func TestFleetScaleDownCooldownRespected(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 12}
	d := New(vc, act, cfg(ModelDriven))
	d.Forecaster.TrendWindow = 5 * time.Minute
	trainFleetDirector(t, d, act, vc)

	// Demand collapses to ~2 servers' worth. Let the forecast adapt,
	// then expect exactly one release per cooldown window.
	low := map[string]float64{"read": 600}
	var first, inside, after Decision
	for i := 0; i < 10; i++ {
		first = stepFleet(d, act, low, true)
		if first.Removed > 0 {
			break
		}
		vc.Advance(time.Minute)
	}
	if first.Removed == 0 {
		t.Fatalf("no scale-down on collapsed demand: %+v", first)
	}
	vc.Advance(time.Minute)
	inside = stepFleet(d, act, low, true)
	if inside.Removed != 0 || !strings.Contains(inside.Reason, "cooldown-hold") {
		t.Fatalf("release inside cooldown: %+v", inside)
	}
	vc.Advance(11 * time.Minute)
	after = stepFleet(d, act, low, true)
	if after.Removed == 0 {
		t.Fatalf("release after cooldown blocked: %+v", after)
	}
}

func TestFleetCommittedFloorBlocksScaleDown(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 12}
	d := New(vc, act, cfg(ModelDriven))
	d.Forecaster.TrendWindow = 5 * time.Minute
	trainFleetDirector(t, d, act, vc)

	// Near-zero demand, but the committed ranges still need 5 nodes to
	// hold replication factor: the target may never go below 5.
	for i := 0; i < 30; i++ {
		dec := d.Step(Observation{
			Rate:             50,
			ClassRates:       map[string]float64{"read": 50},
			Latency:          fleetLatency(map[string]float64{"read": 50}, act.running),
			SuccessRate:      100,
			SLAMet:           true,
			CommittedServers: 5,
		})
		act.finishBoot()
		if dec.Target < 5 {
			t.Fatalf("target %d below committed floor at step %d", dec.Target, i)
		}
		vc.Advance(2 * time.Minute)
	}
	if act.running != 5 {
		t.Fatalf("running = %d, want exactly the committed floor 5", act.running)
	}
}

// TestFleetBootingPreventsDoubleProvision extends the PR 3 Booting()
// regression to the fleet path: while requested capacity is still
// booting, an identical forecast breach must not request again.
func TestFleetBootingPreventsDoubleProvision(t *testing.T) {
	vc := clock.NewVirtual(t0)
	act := &fakeActuator{running: 4}
	d := New(vc, act, cfg(ModelDriven))
	trainFleetDirector(t, d, act, vc)

	surge := map[string]float64{"read": 4000, "write": 400}
	obs := Observation{
		Rate:        4400,
		ClassRates:  surge,
		Latency:     fleetLatency(surge, act.running),
		SuccessRate: 100,
		SLAMet:      true,
	}
	first := d.Step(obs)
	if first.Added == 0 {
		t.Fatal("surge did not provision")
	}
	// Boot has not finished: booting counts toward `have`, so the same
	// surge must not double-provision.
	vc.Advance(time.Minute)
	second := d.Step(obs)
	if second.Added != 0 {
		t.Fatalf("double-provision while booting: %+v (booting=%d)", second, act.booting)
	}
	act.finishBoot()
}
