// Package migration implements lossless online range migration: the
// data-movement primitive behind every rebalance, spread, decommission
// and elastic scale action.
//
// The old primitive copied a range's pages from the donor and then
// flipped routing — every write acknowledged on the donor during the
// copy window was silently dropped. This package replaces it with the
// classic three-phase handoff:
//
//  1. Snapshot: page the range's records (tombstones included) from
//     the donor to every catch-up target, keeping the donor's apply
//     watermark captured before the first page.
//  2. Delta catch-up: repeatedly fetch "everything applied after the
//     watermark" and forward it, advancing the watermark, until a
//     round comes back small (the targets are nearly caught up).
//  3. Fence + final drain: install a write fence on the donor primary
//     (writes bounce with rpc.ErrFenced; coordinators re-route and
//     retry), drain the last delta to the targets, flip the partition
//     map, lift the fence from nodes that keep the range. The fence
//     pause is bounded by the size of one small delta.
//
// Nodes that lose the range keep their fence forever (a straggling
// in-flight write routed before the flip must bounce to the new
// primary, not land invisibly on the old one) and have their copy
// tombstoned. Cleanup failures are journaled and retried idempotently
// — a migration that dies after the routing flip leaves a pending
// cleanup, never a data-loss window.
package migration

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scads/internal/cluster"
	"scads/internal/partition"
	"scads/internal/record"
	"scads/internal/rpc"
)

// Phase identifies a step of the migration state machine, reported
// through Manager.OnPhase.
type Phase string

// Migration phases in execution order.
const (
	PhaseSnapshot Phase = "snapshot"
	PhaseDelta    Phase = "delta"
	PhaseFence    Phase = "fence"
	PhaseFlip     Phase = "flip"
	PhaseCleanup  Phase = "cleanup"
	PhaseDone     Phase = "done"
)

// Event is one observability callback: a phase is starting (or, for
// PhaseDone/PhaseCleanup with Err set, has finished) for the range.
type Event struct {
	Phase     Phase
	Namespace string
	Start     []byte
	End       []byte
	Target    []string
	Records   int   // records shipped by the phase, where meaningful
	Err       error // cleanup/terminal failure, when any
}

// Stats counts migration activity across the manager's lifetime.
type Stats struct {
	Started         int64
	Succeeded       int64
	Failed          int64
	SnapshotRecords int64 // records shipped by snapshot pages
	DeltaRecords    int64 // records shipped by delta rounds (incl. final drain)
	DeltaRounds     int64
	Resnapshots     int64 // snapshot restarts after a delta-baseline gap
	FencePauses     int64
	FenceNanos      int64 // total time ranges spent write-fenced
	CleanupRetries  int64
	CleanupPending  int // nodes still awaiting range teardown
}

// Manager drives online range migrations with bounded parallelism.
// Tuning fields follow the package convention of replication.Pump:
// set them before the first migration.
type Manager struct {
	transport rpc.Transport
	dir       *cluster.Directory

	// PageSize bounds records per snapshot page and per delta fetch.
	// Default 1024; capped at the nodes' per-request limit of 10000 —
	// a larger value would make the server's clamped reply look like
	// a final short page and silently truncate the snapshot.
	PageSize int
	// DeltaRounds bounds unfenced catch-up rounds before the fence is
	// taken regardless of delta size. Default 4.
	DeltaRounds int
	// DeltaThreshold fences as soon as an unfenced round returns this
	// many records or fewer — the targets are close enough that the
	// fenced drain is short. Default 64.
	DeltaThreshold int
	// OnPhase, when set, receives one Event per phase transition
	// (synchronously, on the migrating goroutine).
	OnPhase func(Event)
	// OnFlip, when set, is called synchronously after the routing flip
	// succeeds and *before* the donor's write fence lifts. While the
	// fence is still held no write can land on the donor, so this is
	// the one moment the coordinator can enumerate replication updates
	// the fenced drain provably did not cover (still queued at the
	// coordinator) and clone them to the replicas the flip added — see
	// replication.Pump.Rebind. Without it, an in-flight update that
	// lands on the donor after the handoff never reaches the new
	// replicas.
	OnFlip func(namespace string, start, end []byte, old, target []string)
	// Resolver, when set, returns the current partition map of a
	// namespace. Cleanup retries consult it so a journaled teardown
	// can never fence and truncate a range the node has since
	// regained — ownership wins over a stale journal entry.
	Resolver func(namespace string) (*partition.Map, bool)

	sem chan struct{} // bounds concurrently running migrations

	mu       sync.Mutex
	inflight map[string]*rangeLock // per-range serialisation
	pending  map[string]*cleanup   // ns+start -> nodes awaiting teardown

	started         atomic.Int64
	succeeded       atomic.Int64
	failed          atomic.Int64
	snapshotRecords atomic.Int64
	deltaRecords    atomic.Int64
	deltaRoundsRun  atomic.Int64
	resnapshots     atomic.Int64
	fencePauses     atomic.Int64
	fenceNanos      atomic.Int64
	cleanupRetries  atomic.Int64
}

type rangeLock struct {
	ch   chan struct{} // buffered(1): holds the lock token
	refs int
}

type cleanup struct {
	namespace  string
	start, end []byte
	nodes      map[string]bool
}

// NewManager returns a manager calling through transport and resolving
// node addresses through dir. parallelism bounds concurrently running
// migrations (default 4).
func NewManager(transport rpc.Transport, dir *cluster.Directory, parallelism int) *Manager {
	if parallelism <= 0 {
		parallelism = 4
	}
	return &Manager{
		transport:      transport,
		dir:            dir,
		PageSize:       1024,
		DeltaRounds:    4,
		DeltaThreshold: 64,
		sem:            make(chan struct{}, parallelism),
		inflight:       make(map[string]*rangeLock),
		pending:        make(map[string]*cleanup),
	}
}

// Stats returns a snapshot of migration counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	pending := 0
	for _, c := range m.pending {
		pending += len(c.nodes)
	}
	m.mu.Unlock()
	return Stats{
		Started:         m.started.Load(),
		Succeeded:       m.succeeded.Load(),
		Failed:          m.failed.Load(),
		SnapshotRecords: m.snapshotRecords.Load(),
		DeltaRecords:    m.deltaRecords.Load(),
		DeltaRounds:     m.deltaRoundsRun.Load(),
		Resnapshots:     m.resnapshots.Load(),
		FencePauses:     m.fencePauses.Load(),
		FenceNanos:      m.fenceNanos.Load(),
		CleanupRetries:  m.cleanupRetries.Load(),
		CleanupPending:  pending,
	}
}

// MoveRange migrates the range of pm containing key to the target
// replica group (target[0] becomes the primary), losslessly with
// respect to writes acknowledged at any point: snapshot, delta
// catch-up, brief write-fence drain, routing flip, teardown. Safe for
// concurrent use; migrations of distinct ranges run in parallel up to
// the manager's parallelism bound, migrations of the same range
// serialise. Re-invoking with the same arguments after a partial
// failure resumes idempotently (including pending teardown of old
// replicas after a post-flip failure).
func (m *Manager) MoveRange(pm *partition.Map, namespace string, key []byte, target []string) error {
	if len(target) == 0 {
		return partition.ErrNeedReplicas
	}
	m.sem <- struct{}{}
	defer func() { <-m.sem }()

	rng := pm.Lookup(key)
	unlock := m.lockRange(namespace, rng.Start)
	defer unlock()
	// Re-read under the range lock: a racing migration may have
	// already flipped the replicas.
	rng = pm.Lookup(key)

	m.started.Add(1)
	err := m.migrate(pm, namespace, key, rng, target)
	if err != nil {
		m.failed.Add(1)
		m.event(Event{Phase: PhaseDone, Namespace: namespace, Start: rng.Start, End: rng.End, Target: target, Err: err})
		return err
	}
	m.succeeded.Add(1)
	m.event(Event{Phase: PhaseDone, Namespace: namespace, Start: rng.Start, End: rng.End, Target: target})
	return nil
}

// RetryCleanups re-attempts every journaled post-flip teardown (for
// example after a donor that was unreachable at flip time comes back).
// Nodes that have left the directory entirely are forgotten. Returns
// how many nodes still await teardown.
func (m *Manager) RetryCleanups() int {
	m.mu.Lock()
	work := make([]*cleanup, 0, len(m.pending))
	for _, c := range m.pending {
		work = append(work, c)
	}
	m.mu.Unlock()
	for _, c := range work {
		m.cleanupRetries.Add(1)
		rng := partition.Range{Start: c.start, End: c.end}
		m.runCleanup(c.namespace, rng, c.pendingNodes())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, c := range m.pending {
		n += len(c.nodes)
	}
	return n
}

func (c *cleanup) pendingNodes() []string {
	out := make([]string, 0, len(c.nodes))
	for id := range c.nodes {
		out = append(out, id)
	}
	return out
}

// migrate runs the state machine for one range. rng is the range as
// looked up under the per-range lock.
func (m *Manager) migrate(pm *partition.Map, namespace string, key []byte, rng partition.Range, target []string) error {
	old := rng.Replicas

	// Idempotent re-entry: the routing already points at the target —
	// nothing to move, but a previous attempt may have left teardown
	// pending.
	if sameReplicas(old, target) {
		m.retryPendingFor(namespace, rng)
		return nil
	}

	// Catch-up targets: every target node without a full copy. A node
	// already in the replica set only has the (bounded-staleness)
	// replicated copy, so a node being *promoted to primary* catches
	// up too — after the handoff the new primary serves every
	// acknowledged write, not just the replicated prefix.
	catchup := diff(target, old)
	if target[0] != old[0] && !contains(catchup, target[0]) && contains(old, target[0]) {
		catchup = append([]string{target[0]}, catchup...)
	}

	var epoch, watermark uint64
	var donorAddr string
	var catchupTargets []nodeAddr
	if len(catchup) > 0 {
		donorID, addr, err := m.pickDonor(old)
		if err != nil {
			return fmt.Errorf("migration: %s %s: %w", namespace, rng, err)
		}
		donorAddr = addr
		// The donor itself never catches up from itself (it can end up
		// in the catch-up set when the primary is down and a promoted
		// secondary is the best remaining source).
		catchupTargets, err = m.resolveAll(diffOne(catchup, donorID))
		if err != nil {
			return fmt.Errorf("migration: %s %s: %w", namespace, rng, err)
		}
	}
	if len(catchupTargets) > 0 {
		for _, t := range catchupTargets {
			// Lift the residual fence on a node regaining the range (a
			// past donor keeps its fence when it loses a range).
			if err := m.fence(t.addr, namespace, rng, false); err != nil {
				return fmt.Errorf("migration: unfence target %s: %w", t.id, err)
			}
			// A pure addition holds no authoritative data for the range
			// — truncate whatever a past tenure (or an interrupted
			// teardown) left behind, so the snapshot lands on clean
			// state. A current replica being promoted is serving reads
			// and is left intact; the snapshot merges over it.
			if !contains(old, t.id) {
				resp, err := m.transport.Call(t.addr, rpc.Request{
					Method: rpc.MethodDropRange, Namespace: namespace,
					Start: rng.Start, End: rng.End,
				})
				if err == nil {
					err = resp.Error()
				}
				if err != nil {
					return fmt.Errorf("migration: reset target %s: %w", t.id, err)
				}
			}
		}
		var err error
		epoch, watermark, err = m.snapshot(namespace, rng, donorAddr, catchupTargets, target)
		if err != nil {
			return err
		}
		// Unfenced delta rounds: chase the donor's write stream until
		// a round comes back small enough to drain under the fence.
		// Resnapshots are bounded too — a namespace written faster
		// than a full snapshot can complete would otherwise loop here
		// forever, never fencing and never surfacing an error.
		const maxResnapshots = 3
		rounds, resnapshots := 0, 0
		for rounds < m.deltaRounds() {
			n, wm, err := m.deltaOnce(namespace, rng, donorAddr, catchupTargets, epoch, watermark)
			if rpc.IsSnapshotGap(err) {
				// The baseline aged out of the donor's delta log
				// (write burst): restart from a fresh snapshot.
				if resnapshots++; resnapshots > maxResnapshots {
					return fmt.Errorf("migration: %s %s: delta baseline aged out %d times under write load; retry when the namespace write rate subsides", namespace, rng, resnapshots)
				}
				m.resnapshots.Add(1)
				epoch, watermark, err = m.snapshot(namespace, rng, donorAddr, catchupTargets, target)
				if err != nil {
					return err
				}
				continue
			}
			if err != nil {
				return err
			}
			watermark = wm
			rounds++
			if n <= m.deltaThreshold() {
				break
			}
		}
	}

	// Fence the write primary for the handoff. If the primary is
	// unreachable no write can be acknowledged through it, so the
	// drain below already sees the final state.
	primaryAddr, primaryUp := m.addrOf(old[0])
	fenced := false
	var fencedAt time.Time
	if primaryUp {
		m.event(Event{Phase: PhaseFence, Namespace: namespace, Start: rng.Start, End: rng.End, Target: target})
		if err := m.fence(primaryAddr, namespace, rng, true); err != nil {
			return fmt.Errorf("migration: fence %s: %w", old[0], err)
		}
		fenced = true
		fencedAt = time.Now()
		m.fencePauses.Add(1)
	}
	// Any error between fence and flip must lift the fence — the old
	// primary still owns the range.
	unfencePrimary := func() {
		if fenced {
			_ = m.fence(primaryAddr, namespace, rng, false)
			m.fenceNanos.Add(time.Since(fencedAt).Nanoseconds())
			fenced = false
		}
	}

	if len(catchupTargets) > 0 {
		// Final drain under the fence: no new write can be accepted on
		// the donor, so this converges to an empty delta.
		for {
			n, wm, err := m.deltaOnce(namespace, rng, donorAddr, catchupTargets, epoch, watermark)
			if err != nil {
				unfencePrimary()
				return fmt.Errorf("migration: final drain %s %s: %w", namespace, rng, err)
			}
			watermark = wm
			if n == 0 {
				break
			}
		}
	}

	// Flip the routing: the single atomic step of the handoff. The
	// compare-and-set guards against a concurrent reconfiguration of
	// the same range — most importantly the repair manager's failover
	// promotion after the donor primary crashed mid-migration. Losing
	// the race aborts the migration (the caller re-reads and retries)
	// rather than silently reinstating a dead primary.
	m.event(Event{Phase: PhaseFlip, Namespace: namespace, Start: rng.Start, End: rng.End, Target: target})
	if err := pm.CompareAndSetReplicas(key, old, target); err != nil {
		unfencePrimary()
		return fmt.Errorf("migration: flip %s %s: %w", namespace, rng, err)
	}
	if m.OnFlip != nil {
		m.OnFlip(namespace, rng.Start, rng.End, old, target)
	}

	if contains(target, old[0]) {
		// The old primary keeps the range: writes may flow to it again
		// (possibly as a secondary via replication).
		unfencePrimary()
	} else if fenced {
		// The old primary lost the range. Its fence stays: a straggler
		// write routed before the flip must bounce to the new primary,
		// never land invisibly here. Account the pause as ending now —
		// writers were unblocked by the flip.
		m.fenceNanos.Add(time.Since(fencedAt).Nanoseconds())
	}

	// Teardown: tombstone the range on every node that lost it, plus
	// any nodes left over from an earlier failed attempt. Failures are
	// journaled and retried — the flip has happened, so the migration
	// itself has succeeded.
	drops := diff(old, target)
	m.event(Event{Phase: PhaseCleanup, Namespace: namespace, Start: rng.Start, End: rng.End, Target: target})
	// The new owners must drop out of any stale teardown journaled by
	// an earlier migration of this range — they hold live data now.
	for _, id := range target {
		m.forgetCleanup(namespace, rng, id)
	}
	m.journalCleanup(namespace, rng, drops)
	m.retryPendingFor(namespace, rng)
	return nil
}

// --- phases ---

// snapshot pages the full range from the donor to the targets and
// returns the delta baseline captured before the first page.
func (m *Manager) snapshot(namespace string, rng partition.Range, donorAddr string, targets []nodeAddr, replicaTarget []string) (epoch, watermark uint64, err error) {
	m.event(Event{Phase: PhaseSnapshot, Namespace: namespace, Start: rng.Start, End: rng.End, Target: replicaTarget})
	cur := rng.Start
	first := true
	page := m.pageSize()
	for {
		resp, err := m.transport.Call(donorAddr, rpc.Request{
			Method: rpc.MethodRangeSnapshot, Namespace: namespace,
			Start: cur, End: rng.End, Limit: page,
		})
		if err == nil {
			// A semantic error travels in resp.Err (storage failure,
			// frame-overflow substitute): it must fail the phase, not
			// read as a clean terminal page.
			err = resp.Error()
		}
		if err != nil {
			return 0, 0, fmt.Errorf("migration: snapshot %s %s: %w", namespace, rng, err)
		}
		if first {
			epoch, watermark = resp.Epoch, resp.Watermark
			first = false
		}
		if len(resp.Records) > 0 {
			if err := m.applyTo(targets, namespace, resp.Records); err != nil {
				return 0, 0, fmt.Errorf("migration: install snapshot %s %s: %w", namespace, rng, err)
			}
			m.snapshotRecords.Add(int64(len(resp.Records)))
		}
		// A page short of the count limit still continues when the node
		// flags More (it stopped at its byte budget, not the end of the
		// range); an empty page is always terminal — no key to advance
		// from means no progress is possible.
		if len(resp.Records) == 0 || (len(resp.Records) < page && !resp.More) {
			return epoch, watermark, nil
		}
		last := resp.Records[len(resp.Records)-1].Key
		cur = append(append([]byte(nil), last...), 0x00)
	}
}

// deltaOnce fetches and installs every record modified after the
// watermark (paging as needed) and returns how many were shipped plus
// the advanced watermark.
func (m *Manager) deltaOnce(namespace string, rng partition.Range, donorAddr string, targets []nodeAddr, epoch, since uint64) (int, uint64, error) {
	m.event(Event{Phase: PhaseDelta, Namespace: namespace, Start: rng.Start, End: rng.End})
	total := 0
	page := m.pageSize()
	wm := since
	for {
		resp, err := m.transport.Call(donorAddr, rpc.Request{
			Method: rpc.MethodRangeDelta, Namespace: namespace,
			Start: rng.Start, End: rng.End, Since: wm, Epoch: epoch, Limit: page,
		})
		if err == nil {
			// ErrSnapshotGap (and any other semantic failure) arrives
			// in resp.Err — materialise it so the caller's resnapshot
			// branch actually fires instead of mistaking the gap for a
			// converged delta.
			err = resp.Error()
		}
		if err != nil {
			return total, wm, err
		}
		if len(resp.Records) > 0 {
			if err := m.applyTo(targets, namespace, resp.Records); err != nil {
				return total, wm, err
			}
			m.deltaRecords.Add(int64(len(resp.Records)))
		}
		total += len(resp.Records)
		wm = resp.Watermark
		// Page exactly while the node reports retained log entries
		// beyond the watermark. A short page alone is not terminal (it
		// may have stopped at the byte budget — stopping there in the
		// fenced final drain would leave applied writes behind on the
		// donor), and raw watermark progress is not a termination
		// signal either: writes to *other* ranges of the namespace
		// advance it every round, which would spin this loop — with
		// the fence up — for as long as the namespace takes traffic.
		if !resp.More {
			m.deltaRoundsRun.Add(1)
			return total, wm, nil
		}
	}
}

// runCleanup fences and truncates the range on each node; nodes that
// fail stay journaled, nodes that left the directory are forgotten,
// and nodes that currently own any part of the range per the routing
// map are forgotten without teardown — a stale journal entry must
// never fence and truncate live data on a node that regained the
// range after the teardown was journaled.
func (m *Manager) runCleanup(namespace string, rng partition.Range, nodes []string) {
	for _, id := range nodes {
		if _, known := m.dir.Get(id); !known {
			// The node was removed from the cluster; its copy went
			// with it.
			m.forgetCleanup(namespace, rng, id)
			continue
		}
		if m.ownsPartOf(namespace, rng.Start, rng.End, id) {
			m.forgetCleanup(namespace, rng, id)
			continue
		}
		addr, up := m.addrOf(id)
		if !up {
			continue // stays journaled
		}
		// Permanent fence first: a straggling replicated write must not
		// re-materialise data on the dropped holder after the teardown.
		if err := m.fence(addr, namespace, rng, true); err != nil {
			m.event(Event{Phase: PhaseCleanup, Namespace: namespace, Start: rng.Start, End: rng.End, Err: err})
			continue
		}
		resp, err := m.transport.Call(addr, rpc.Request{
			Method: rpc.MethodDropRange, Namespace: namespace,
			Start: rng.Start, End: rng.End,
		})
		if err == nil {
			err = resp.Error()
		}
		if err != nil {
			m.event(Event{Phase: PhaseCleanup, Namespace: namespace, Start: rng.Start, End: rng.End, Err: err})
			continue
		}
		m.forgetCleanup(namespace, rng, id)
	}
}

// --- cleanup journal ---

func cleanupKey(namespace string, rng partition.Range) string {
	return namespace + "\x00" + string(rng.Start)
}

func (m *Manager) journalCleanup(namespace string, rng partition.Range, nodes []string) {
	if len(nodes) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := cleanupKey(namespace, rng)
	c := m.pending[k]
	if c == nil {
		c = &cleanup{
			namespace: namespace,
			start:     rng.Start,
			end:       rng.End,
			nodes:     make(map[string]bool),
		}
		m.pending[k] = c
	}
	for _, id := range nodes {
		c.nodes[id] = true
	}
}

func (m *Manager) forgetCleanup(namespace string, rng partition.Range, node string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := cleanupKey(namespace, rng)
	if c := m.pending[k]; c != nil {
		delete(c.nodes, node)
		if len(c.nodes) == 0 {
			delete(m.pending, k)
		}
	}
}

func (m *Manager) retryPendingFor(namespace string, rng partition.Range) {
	m.mu.Lock()
	c := m.pending[cleanupKey(namespace, rng)]
	var nodes []string
	var stored partition.Range
	if c != nil {
		nodes = c.pendingNodes()
		// Tear down exactly what the journal recorded: the live range
		// bounds may have shifted (split/merge) since the entry was
		// written.
		stored = partition.Range{Start: c.start, End: c.end}
	}
	m.mu.Unlock()
	if len(nodes) > 0 {
		m.runCleanup(namespace, stored, nodes)
	}
}

// ownsPartOf reports whether node currently serves any subrange of
// [start, end) according to the routing map (false when no Resolver
// is wired — then only the post-flip forgetCleanup protects regained
// ranges).
func (m *Manager) ownsPartOf(namespace string, start, end []byte, node string) bool {
	if m.Resolver == nil {
		return false
	}
	pm, ok := m.Resolver(namespace)
	if !ok {
		return false
	}
	for _, r := range pm.Overlapping(start, end) {
		if contains(r.Replicas, node) {
			return true
		}
	}
	return false
}

// --- plumbing ---

type nodeAddr struct {
	id   string
	addr string
}

func (m *Manager) pickDonor(replicas []string) (string, string, error) {
	// Prefer the primary: it holds every acknowledged write.
	for _, id := range replicas {
		if addr, ok := m.addrOf(id); ok {
			return id, addr, nil
		}
	}
	return "", "", errors.New("no reachable donor replica")
}

func (m *Manager) resolveAll(ids []string) ([]nodeAddr, error) {
	out := make([]nodeAddr, 0, len(ids))
	for _, id := range ids {
		addr, ok := m.addrOf(id)
		if !ok {
			return nil, fmt.Errorf("catch-up target %s is not serving", id)
		}
		out = append(out, nodeAddr{id: id, addr: addr})
	}
	return out, nil
}

func (m *Manager) addrOf(nodeID string) (string, bool) {
	mem, ok := m.dir.Get(nodeID)
	if !ok || mem.Status != cluster.StatusUp {
		return "", false
	}
	return mem.Addr, true
}

func (m *Manager) applyTo(targets []nodeAddr, namespace string, recs []record.Record) error {
	for _, t := range targets {
		resp, err := m.transport.Call(t.addr, rpc.Request{
			Method: rpc.MethodApply, Namespace: namespace, Records: recs,
		})
		if err == nil {
			err = resp.Error()
		}
		if err != nil {
			return fmt.Errorf("apply to %s: %w", t.id, err)
		}
	}
	return nil
}

func (m *Manager) fence(addr, namespace string, rng partition.Range, on bool) error {
	resp, err := m.transport.Call(addr, rpc.Request{
		Method: rpc.MethodRangeFence, Namespace: namespace,
		Start: rng.Start, End: rng.End, Fence: on,
	})
	if err != nil {
		return err
	}
	return resp.Error()
}

func (m *Manager) lockRange(namespace string, start []byte) func() {
	k := namespace + "\x00" + string(start)
	m.mu.Lock()
	l := m.inflight[k]
	if l == nil {
		l = &rangeLock{ch: make(chan struct{}, 1)}
		m.inflight[k] = l
	}
	l.refs++
	m.mu.Unlock()

	l.ch <- struct{}{} // acquire
	return func() {
		<-l.ch
		m.mu.Lock()
		l.refs--
		if l.refs == 0 {
			delete(m.inflight, k)
		}
		m.mu.Unlock()
	}
}

func (m *Manager) event(ev Event) {
	if m.OnPhase != nil {
		m.OnPhase(ev)
	}
}

// nodePageLimit mirrors the storage nodes' per-request record clamp.
// Snapshot pagination terminates on a short page, so the requested
// page size must never exceed what a node is willing to return.
const nodePageLimit = 10000

func (m *Manager) pageSize() int {
	if m.PageSize > 0 {
		return min(m.PageSize, nodePageLimit)
	}
	return 1024
}

func (m *Manager) deltaRounds() int {
	if m.DeltaRounds > 0 {
		return m.DeltaRounds
	}
	return 4
}

func (m *Manager) deltaThreshold() int {
	if m.DeltaThreshold >= 0 {
		return m.DeltaThreshold
	}
	return 64
}

// --- small set helpers ---

func sameReplicas(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func contains(ids []string, id string) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// diff returns the members of a not present in b, in a's order.
func diff(a, b []string) []string {
	var out []string
	for _, x := range a {
		if !contains(b, x) {
			out = append(out, x)
		}
	}
	return out
}

// diffOne returns ids without the given member.
func diffOne(ids []string, drop string) []string {
	var out []string
	for _, x := range ids {
		if x != drop {
			out = append(out, x)
		}
	}
	return out
}
