package migration

import (
	"fmt"
	"testing"
	"time"

	"scads/internal/clock"
	"scads/internal/cluster"
	"scads/internal/partition"
	"scads/internal/record"
	"scads/internal/rpc"
	"scads/internal/storage"
)

const testNS = "tbl_users"

// harness is a two-plus-node mini-cluster wired directly at the
// transport layer — the same pieces LocalCluster assembles, minus the
// coordinator.
type harness struct {
	t         *testing.T
	transport *rpc.LocalTransport
	dir       *cluster.Directory
	nodes     map[string]*cluster.Node
	pm        *partition.Map
	mgr       *Manager
}

func newHarness(t *testing.T, nodeIDs ...string) *harness {
	t.Helper()
	h := &harness{
		t:         t,
		transport: rpc.NewLocalTransport(),
		dir:       cluster.NewDirectory(clock.NewReal()),
		nodes:     make(map[string]*cluster.Node),
	}
	for i, id := range nodeIDs {
		engine, err := storage.Open(storage.Options{NodeID: uint16(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		n := cluster.NewNode(id, engine)
		h.nodes[id] = n
		h.transport.Register("local://"+id, n)
		h.dir.Join(id, "local://"+id)
		h.dir.MarkUp(id)
	}
	pm, err := partition.NewMap([]string{nodeIDs[0]})
	if err != nil {
		t.Fatal(err)
	}
	h.pm = pm
	h.mgr = NewManager(h.transport, h.dir, 2)
	h.mgr.Resolver = func(string) (*partition.Map, bool) { return h.pm, true }
	return h
}

func (h *harness) seed(node string, n int) {
	h.t.Helper()
	ns, err := h.nodes[node].Engine().Namespace(testNS)
	if err != nil {
		h.t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := ns.Put(key(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			h.t.Fatal(err)
		}
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("user%04d", i)) }

func (h *harness) liveCount(node string) int {
	h.t.Helper()
	ns, err := h.nodes[node].Engine().Namespace(testNS)
	if err != nil {
		h.t.Fatal(err)
	}
	n := 0
	if err := ns.ScanLive(nil, nil, func(record.Record) bool { n++; return true }); err != nil {
		h.t.Fatal(err)
	}
	return n
}

func (h *harness) get(node string, k []byte) ([]byte, bool) {
	h.t.Helper()
	ns, err := h.nodes[node].Engine().Namespace(testNS)
	if err != nil {
		h.t.Fatal(err)
	}
	v, ok, err := ns.Get(k)
	if err != nil {
		h.t.Fatal(err)
	}
	return v, ok
}

func TestMoveRangeCopiesFlipsAndTearsDown(t *testing.T) {
	h := newHarness(t, "a", "b")
	h.seed("a", 100)

	if err := h.mgr.MoveRange(h.pm, testNS, []byte{}, []string{"b"}); err != nil {
		t.Fatal(err)
	}

	rng := h.pm.Lookup([]byte{})
	if len(rng.Replicas) != 1 || rng.Replicas[0] != "b" {
		t.Fatalf("map not flipped: %v", rng.Replicas)
	}
	if got := h.liveCount("b"); got != 100 {
		t.Fatalf("target has %d live records, want 100", got)
	}
	if got := h.liveCount("a"); got != 0 {
		t.Fatalf("donor still has %d live records after teardown", got)
	}
	// The donor keeps a fence: a straggler write routed pre-flip must
	// bounce, not land invisibly.
	resp, err := h.transport.Call("local://a", rpc.Request{
		Method: rpc.MethodPut, Namespace: testNS, Key: key(1), Value: []byte("stray"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rpc.IsFenced(resp.Error()) {
		t.Fatalf("stray write to donor got %v, want fence rejection", resp.Error())
	}
	st := h.mgr.Stats()
	if st.Succeeded != 1 || st.SnapshotRecords != 100 || st.CleanupPending != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMoveRangeShipsWritesDuringCopy(t *testing.T) {
	h := newHarness(t, "a", "b")
	h.seed("a", 50)

	// Inject writes on the donor after the snapshot baseline is taken:
	// the first delta event fires after the snapshot completed.
	injected := false
	h.mgr.OnPhase = func(ev Event) {
		if ev.Phase == PhaseDelta && !injected {
			injected = true
			ns, err := h.nodes["a"].Engine().Namespace(testNS)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := ns.Put(key(7), []byte("updated-during-copy")); err != nil {
				t.Error(err)
			}
			if _, err := ns.Put(key(999), []byte("new-during-copy")); err != nil {
				t.Error(err)
			}
			if _, err := ns.Delete(key(3)); err != nil {
				t.Error(err)
			}
		}
	}
	if err := h.mgr.MoveRange(h.pm, testNS, []byte{}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	if !injected {
		t.Fatal("delta phase never ran")
	}
	if v, ok := h.get("b", key(7)); !ok || string(v) != "updated-during-copy" {
		t.Fatalf("update during copy lost: %q %v", v, ok)
	}
	if v, ok := h.get("b", key(999)); !ok || string(v) != "new-during-copy" {
		t.Fatalf("insert during copy lost: %q %v", v, ok)
	}
	if _, ok := h.get("b", key(3)); ok {
		t.Fatal("delete during copy resurrected on target")
	}
}

func TestMoveRangeFenceBouncesWritesBeforeFlip(t *testing.T) {
	h := newHarness(t, "a", "b")
	h.seed("a", 10)

	var fencedErr error
	h.mgr.OnPhase = func(ev Event) {
		if ev.Phase == PhaseFlip {
			// Fence is installed, routing not yet flipped: a write to
			// the old primary must bounce rather than be accepted and
			// lost.
			resp, err := h.transport.Call("local://a", rpc.Request{
				Method: rpc.MethodPut, Namespace: testNS, Key: key(2), Value: []byte("late"),
			})
			if err != nil {
				t.Error(err)
				return
			}
			fencedErr = resp.Error()
		}
	}
	if err := h.mgr.MoveRange(h.pm, testNS, []byte{}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	if !rpc.IsFenced(fencedErr) {
		t.Fatalf("write during handoff got %v, want fence rejection", fencedErr)
	}
}

func TestMoveRangeRetriesCleanupIdempotently(t *testing.T) {
	h := newHarness(t, "a", "b")
	h.seed("a", 30)

	// Fail the migration after the routing flip but before teardown:
	// the donor becomes unreachable at exactly the cleanup boundary.
	h.mgr.OnPhase = func(ev Event) {
		if ev.Phase == PhaseCleanup {
			h.transport.SetDown("local://a", true)
			h.dir.MarkDown("a")
		}
	}
	if err := h.mgr.MoveRange(h.pm, testNS, []byte{}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	h.mgr.OnPhase = nil

	// The flip held and no data was lost; only teardown is pending.
	if rng := h.pm.Lookup([]byte{}); rng.Replicas[0] != "b" {
		t.Fatalf("flip lost: %v", rng.Replicas)
	}
	if got := h.liveCount("b"); got != 30 {
		t.Fatalf("target has %d records, want 30", got)
	}
	if st := h.mgr.Stats(); st.CleanupPending != 1 {
		t.Fatalf("CleanupPending = %d, want 1", st.CleanupPending)
	}
	if got := h.liveCount("a"); got != 30 {
		t.Fatalf("donor unexpectedly torn down while unreachable: %d", got)
	}

	// Donor comes back: the retry completes the teardown.
	h.transport.SetDown("local://a", false)
	h.dir.MarkUp("a")
	if remaining := h.mgr.RetryCleanups(); remaining != 0 {
		t.Fatalf("RetryCleanups left %d pending", remaining)
	}
	if got := h.liveCount("a"); got != 0 {
		t.Fatalf("donor still has %d live records after retried cleanup", got)
	}

	// Re-running the same migration is a no-op.
	if err := h.mgr.MoveRange(h.pm, testNS, []byte{}, []string{"b"}); err != nil {
		t.Fatal(err)
	}

	// And the range can migrate back onto the former donor (its
	// residual fence lifts for the new copy).
	if err := h.mgr.MoveRange(h.pm, testNS, []byte{}, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if got := h.liveCount("a"); got != 30 {
		t.Fatalf("range did not migrate back cleanly: %d records", got)
	}
}

func TestMoveRangePrimarySwapCatchesUpNewPrimary(t *testing.T) {
	h := newHarness(t, "a", "b")
	h.seed("a", 20)
	// b is already a (stale, empty) secondary; promote it to primary.
	if err := h.pm.SetReplicas([]byte{}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}

	if err := h.mgr.MoveRange(h.pm, testNS, []byte{}, []string{"b", "a"}); err != nil {
		t.Fatal(err)
	}
	// The promoted primary holds every acknowledged write even though
	// replication never delivered them.
	if got := h.liveCount("b"); got != 20 {
		t.Fatalf("new primary has %d records, want 20", got)
	}
	rng := h.pm.Lookup([]byte{})
	if rng.Replicas[0] != "b" || len(rng.Replicas) != 2 {
		t.Fatalf("replicas = %v", rng.Replicas)
	}
	// Nobody lost the range: no fences remain anywhere.
	for _, id := range []string{"a", "b"} {
		resp, err := h.transport.Call("local://"+id, rpc.Request{Method: rpc.MethodStats})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Fenced != 0 {
			t.Fatalf("node %s still holds %d fences", id, resp.Fenced)
		}
	}
}

// TestRegainedRangeSurvivesStaleCleanup: a teardown journaled while
// the loser was unreachable must not fire against that node after it
// legitimately regains the range — ownership wins over the journal.
func TestRegainedRangeSurvivesStaleCleanup(t *testing.T) {
	h := newHarness(t, "a", "b")
	h.seed("a", 25)

	// Move a -> b with a crashing at the cleanup boundary: teardown of
	// a stays journaled.
	h.mgr.OnPhase = func(ev Event) {
		if ev.Phase == PhaseCleanup {
			h.transport.SetDown("local://a", true)
			h.dir.MarkDown("a")
		}
	}
	if err := h.mgr.MoveRange(h.pm, testNS, []byte{}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	h.mgr.OnPhase = nil
	if st := h.mgr.Stats(); st.CleanupPending != 1 {
		t.Fatalf("CleanupPending = %d, want 1", st.CleanupPending)
	}

	// a recovers and regains the range before the cleanup ever ran.
	h.transport.SetDown("local://a", false)
	h.dir.MarkUp("a")
	if err := h.mgr.MoveRange(h.pm, testNS, []byte{}, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if got := h.liveCount("a"); got != 25 {
		t.Fatalf("regained range torn down: %d live records, want 25", got)
	}
	// The stale journal entry for a is gone; retries must not touch it.
	if remaining := h.mgr.RetryCleanups(); remaining != 0 {
		t.Fatalf("RetryCleanups left %d pending", remaining)
	}
	if got := h.liveCount("a"); got != 25 {
		t.Fatalf("RetryCleanups truncated a regained range: %d live records", got)
	}
	// And writes to the regained range flow (no stale fence).
	resp, err := h.transport.Call("local://a", rpc.Request{
		Method: rpc.MethodPut, Namespace: testNS, Key: key(1), Value: []byte("post"),
	})
	if err != nil || resp.Error() != nil {
		t.Fatalf("write to regained range: %v %v", err, resp.Error())
	}
}

// TestRegainAfterSplitLiftsResidualFence: a node that lost [ -inf,
// +inf ) keeps a fence with those bounds; when it later regains only
// the left half of a since-split keyspace, the unfence-by-subtraction
// must open exactly that half.
func TestRegainAfterSplitLiftsResidualFence(t *testing.T) {
	h := newHarness(t, "a", "b")
	h.seed("a", 40)
	if err := h.mgr.MoveRange(h.pm, testNS, []byte{}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	// a now holds a permanent fence over the whole keyspace. Split,
	// then migrate only the left half back onto a.
	if err := h.pm.Split(key(20)); err != nil {
		t.Fatal(err)
	}
	if err := h.mgr.MoveRange(h.pm, testNS, []byte{}, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if got := h.liveCount("a"); got != 20 {
		t.Fatalf("left half not installed on a: %d live records, want 20", got)
	}
	// Writes to the regained left half flow; the right half (still
	// owned by b) stays fenced on a.
	left, err := h.transport.Call("local://a", rpc.Request{
		Method: rpc.MethodPut, Namespace: testNS, Key: key(5), Value: []byte("v"),
	})
	if err != nil || left.Error() != nil {
		t.Fatalf("write to regained left half: %v %v", err, left.Error())
	}
	right, err := h.transport.Call("local://a", rpc.Request{
		Method: rpc.MethodPut, Namespace: testNS, Key: key(30), Value: []byte("v"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rpc.IsFenced(right.Error()) {
		t.Fatalf("right half write on a = %v, want fence rejection", right.Error())
	}
}

// TestPageSizeClampedToNodeLimit: a PageSize above the nodes'
// per-request clamp must not make a clamped reply look like the final
// short page (which would silently truncate the snapshot).
func TestPageSizeClampedToNodeLimit(t *testing.T) {
	h := newHarness(t, "a", "b")
	h.mgr.PageSize = 50000
	const n = 12000 // more than one nodePageLimit page
	ns, err := h.nodes["a"].Engine().Namespace(testNS)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := ns.Put([]byte(fmt.Sprintf("user%06d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.mgr.MoveRange(h.pm, testNS, []byte{}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	if got := h.liveCount("b"); got != n {
		t.Fatalf("snapshot truncated: target has %d records, want %d", got, n)
	}
}

// seedBig installs n records of valSize bytes each on node, so the
// range totals well past the node-side 4 MiB page byte budgets.
func (h *harness) seedBig(node string, n, valSize int) {
	h.t.Helper()
	ns, err := h.nodes[node].Engine().Namespace(testNS)
	if err != nil {
		h.t.Fatal(err)
	}
	val := make([]byte, valSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < n; i++ {
		if _, err := ns.Put(key(i), val); err != nil {
			h.t.Fatal(err)
		}
	}
}

// TestMoveRangeBigValuesPagesByBytes: a range whose records are large
// forces the donor's snapshot (and any delta) pages to stop at the
// byte budget. The manager must keep paging on resp.More — mistaking
// a short-by-bytes page for the end of the range would truncate the
// copy and then tear down the donor.
func TestMoveRangeBigValuesPagesByBytes(t *testing.T) {
	h := newHarness(t, "a", "b")
	const count, valSize = 30, 256 << 10 // ~7.5 MiB, budget 4 MiB
	h.seedBig("a", count, valSize)

	if err := h.mgr.MoveRange(h.pm, testNS, []byte{}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	if got := h.liveCount("b"); got != count {
		t.Fatalf("target has %d live records, want %d (byte-budget paging lost the tail)", got, count)
	}
	ns, err := h.nodes["b"].Engine().Namespace(testNS)
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.ScanLive(nil, nil, func(r record.Record) bool {
		if len(r.Value) != valSize {
			t.Fatalf("record %q value %d bytes, want %d", r.Key, len(r.Value), valSize)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

// interceptor wraps a node's handler, letting a test rewrite the
// response of selected methods.
type interceptor struct {
	next rpc.Handler
	hook func(req rpc.Request, resp rpc.Response) rpc.Response
}

func (i *interceptor) Serve(req rpc.Request) rpc.Response {
	resp := i.next.Serve(req)
	if req.Method == rpc.MethodBatch {
		for j := range resp.Batch {
			resp.Batch[j] = i.hook(req.Batch[j], resp.Batch[j])
		}
		return resp
	}
	return i.hook(req, resp)
}

// TestDeltaSnapshotGapTriggersResnapshot: a donor whose delta log aged
// out answers MethodRangeDelta with ErrSnapshotGap *in resp.Err*. The
// manager must materialise that wire error and restart from a fresh
// snapshot — not mistake the empty errored page for a converged delta.
func TestDeltaSnapshotGapTriggersResnapshot(t *testing.T) {
	h := newHarness(t, "a", "b")
	h.seed("a", 50)

	gaps := 0
	h.transport.Register("local://a", &interceptor{
		next: h.nodes["a"],
		hook: func(req rpc.Request, resp rpc.Response) rpc.Response {
			if req.Method == rpc.MethodRangeDelta && gaps == 0 {
				gaps++
				return rpc.Response{ID: req.ID, Err: rpc.ErrString(rpc.ErrSnapshotGap)}
			}
			return resp
		},
	})

	if err := h.mgr.MoveRange(h.pm, testNS, []byte{}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	if gaps != 1 {
		t.Fatalf("gap hook fired %d times, want 1", gaps)
	}
	if got := h.liveCount("b"); got != 50 {
		t.Fatalf("target has %d live records after resnapshot, want 50", got)
	}
	if st := h.mgr.Stats(); st.Resnapshots != 1 {
		t.Fatalf("stats = %+v, want Resnapshots=1", st)
	}
}

// TestSnapshotErrorFailsMigration: a semantic error in a snapshot page
// response must abort the migration — before this check, an errored
// page decoded as empty and terminal, and the flip+teardown proceeded
// with a truncated copy.
func TestSnapshotErrorFailsMigration(t *testing.T) {
	h := newHarness(t, "a", "b")
	h.seed("a", 50)

	h.transport.Register("local://a", &interceptor{
		next: h.nodes["a"],
		hook: func(req rpc.Request, resp rpc.Response) rpc.Response {
			if req.Method == rpc.MethodRangeSnapshot && req.Limit >= 0 {
				return rpc.Response{ID: req.ID, Err: "storage: scan failed"}
			}
			return resp
		},
	})

	err := h.mgr.MoveRange(h.pm, testNS, []byte{}, []string{"b"})
	if err == nil {
		t.Fatal("migration succeeded over an erroring snapshot")
	}
	rng := h.pm.Lookup([]byte{})
	if len(rng.Replicas) != 1 || rng.Replicas[0] != "a" {
		t.Fatalf("map flipped despite failed snapshot: %v", rng.Replicas)
	}
	if got := h.liveCount("a"); got != 50 {
		t.Fatalf("donor lost records on failed migration: %d", got)
	}
}

// TestMoveRangeTerminatesUnderOtherRangeChurn: after a split, moving
// one range while the donor's *other* range of the same namespace
// takes continuous writes. Those writes advance the namespace delta
// watermark on every page, so any termination rule based on watermark
// progress (or on short pages alone, with byte-capped pages in play)
// would spin the delta loop — with the fence up — until the churn
// stops. The manager must page exactly while the node reports More.
func TestMoveRangeTerminatesUnderOtherRangeChurn(t *testing.T) {
	h := newHarness(t, "a", "b")
	h.seed("a", 40)
	if err := h.pm.Split(key(20)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	churned := make(chan struct{})
	go func() {
		defer close(churned)
		ns, err := h.nodes["a"].Engine().Namespace(testNS)
		if err != nil {
			return
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Writes stay in [user0000, user0020) — the range NOT
			// being moved — but share the namespace apply log.
			ns.Put(key(i%20), []byte("churn")) //nolint:errcheck
		}
	}()

	done := make(chan error, 1)
	go func() { done <- h.mgr.MoveRange(h.pm, testNS, key(20), []string{"b"}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("MoveRange still running after 30s under other-range churn (delta loop livelock)")
	}
	close(stop)
	<-churned

	rng := h.pm.Lookup(key(20))
	if len(rng.Replicas) != 1 || rng.Replicas[0] != "b" {
		t.Fatalf("map not flipped: %v", rng.Replicas)
	}
}
