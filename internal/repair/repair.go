// Package repair implements the self-healing crash-recovery loop: the
// missing half of the SCADS director's promise to keep data served
// "despite node failures".
//
// A Manager sweeps on a clock and, each sweep, walks three passes:
//
//  1. Failure detection. Every directory member is probed with a ping;
//     responsive members heartbeat into the directory, then
//     Directory.ExpireStale marks silent ones down. Status transitions
//     become node-down / node-up events. A node that returns is
//     compared against the replication pump's per-target drop counter:
//     if no delivery to it was abandoned while it was away, its parked
//     updates will still converge and it rejoins as-is; otherwise it
//     is irrecoverably stale and is demoted from every replica group
//     it serves as a secondary, to be re-added through the migration
//     protocol's truncate → snapshot → delta catch-up (compaction
//     garbage-collects tombstones, so merging over a stale copy could
//     resurrect deletes — a returned stale replica must be rebuilt,
//     not patched).
//
//  2. Primary failover. A range whose primary is down but which has a
//     live replica is flipped — atomically, via the partition map's
//     compare-and-set — to the surviving replicas ordered freshest
//     first. Freshness ranks each candidate by its probed maximum
//     accepted record version (a coordinator HLC stamp, comparable
//     across nodes) and breaks ties with the replication tracker's
//     staleness bound. Writes blocked on the dead primary are already
//     spinning in the coordinator's down-retry loop; the first retry
//     after the flip lands on the promoted replica. Nothing is copied:
//     failover is a metadata operation and completes in one sweep.
//
//  3. Replication-factor repair. Ranges left under-replicated (by a
//     failover, a demotion, or an operator action) are re-replicated
//     through migration.Manager — the donor is any live replica, the
//     fenced handoff guarantees the new copy is complete — with
//     bounded parallelism and an idempotent per-range job journal (a
//     sweep never double-schedules a range, and a failed job is simply
//     rescheduled by a later sweep). Anti-flap hysteresis: a brand-new
//     replica is only recruited after the range has been degraded for
//     ReplaceAfter, but a *former* member that heartbeats back is
//     re-added immediately (its pending replacement job re-targets it
//     — the node "cancels its own repairs and rejoins"), catching up
//     through the usual snapshot/delta protocol.
//
// The loop is level-triggered: every pass re-derives its work from the
// current directory and partition maps, so races with concurrent
// migrations (both sides flip with compare-and-set) or with operator
// actions converge within a sweep or two instead of corrupting state.
package repair

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scads/internal/clock"
	"scads/internal/cluster"
	"scads/internal/migration"
	"scads/internal/partition"
	"scads/internal/replication"
	"scads/internal/rpc"
)

// Config tunes the repair loop. The zero value selects the defaults.
type Config struct {
	// HeartbeatTimeout is how long a member may go without a
	// successful probe before ExpireStale marks it down. Default 3s.
	HeartbeatTimeout time.Duration
	// SweepInterval is the detector/repair cadence. Default 500ms.
	SweepInterval time.Duration
	// ReplaceAfter is the anti-flap grace: how long a range stays
	// degraded before a brand-new replica is recruited, and how long a
	// down member may stay in a replica group before being replaced. A
	// former member that returns within the grace rejoins instead.
	// Default 10s.
	ReplaceAfter time.Duration
	// Parallelism bounds concurrently running repair re-replications
	// (each is additionally bounded by the migration manager's own
	// semaphore). Default 2.
	Parallelism int
	// Disabled turns the background loop off (Cluster.StartBackground
	// will not start it); Sweep can still be driven manually.
	Disabled bool
}

func (c Config) withDefaults() Config {
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 3 * time.Second
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = 500 * time.Millisecond
	}
	if c.ReplaceAfter <= 0 {
		c.ReplaceAfter = 10 * time.Second
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 2
	}
	return c
}

// EventKind labels a repair phase event.
type EventKind string

// Event kinds, in rough lifecycle order.
const (
	EventNodeDown     EventKind = "node-down"
	EventNodeUp       EventKind = "node-up"
	EventFailover     EventKind = "failover"
	EventDemote       EventKind = "demote"
	EventUnavailable  EventKind = "unavailable"
	EventRepairStart  EventKind = "repair-start"
	EventRepairDone   EventKind = "repair-done"
	EventRepairFailed EventKind = "repair-failed"
)

// Event is one observability callback from the repair loop.
type Event struct {
	Kind      EventKind
	Node      string // the node the event concerns, where meaningful
	Namespace string
	Start     []byte
	End       []byte
	Replicas  []string // the replica set the event installed or targets
	Err       error
}

// Stats counts repair activity across the manager's lifetime.
type Stats struct {
	Sweeps            int64
	NodesDown         int64 // down transitions observed
	NodesUp           int64 // up transitions observed
	Failovers         int64 // primary promotions
	Demotions         int64 // stale returned replicas removed pending re-add
	RepairsStarted    int64
	RepairsDone       int64
	RepairsFailed     int64
	Rejoins           int64 // repairs that re-added a returned former member
	RangesUnavailable int   // gauge: ranges with no live replica, last sweep
	UnderReplicated   int   // gauge: ranges below target RF, last sweep
	PendingJobs       int   // repair jobs journaled as in flight
}

// Manager is the self-healing control loop. Create with NewManager,
// drive with Run (background) or Sweep (deterministic tests and
// operator tooling). Safe for concurrent use.
type Manager struct {
	cfg        Config
	clk        clock.Clock
	dir        *cluster.Directory
	transport  rpc.Transport
	router     *partition.Router
	migrations *migration.Manager
	pump       *replication.Pump
	rf         int

	// OnEvent, when set (before Run), receives one Event per phase
	// transition, synchronously on the sweeping or repairing
	// goroutine.
	OnEvent func(Event)

	sweepMu sync.Mutex // serialises sweeps

	mu         sync.Mutex
	known      map[string]cluster.Status // last observed member status
	downSince  map[string]time.Time
	dropMark   map[string]int64           // pump drop counter at down transition
	lost       map[string]map[string]bool // range key -> former members preferred for rejoin
	underSince map[string]time.Time       // range key -> first observed degraded
	jobs       map[string]bool            // range key -> repair job in flight
	jobTargets map[string][]string        // range key -> chosen target replica set
	unavail    map[string]bool            // ranges currently without any live replica

	runMu  sync.Mutex
	stopCh chan struct{}
	loopWg sync.WaitGroup
	jobWg  sync.WaitGroup
	sem    chan struct{}

	sweeps         atomic.Int64
	nodesDown      atomic.Int64
	nodesUp        atomic.Int64
	failovers      atomic.Int64
	demotions      atomic.Int64
	repairsStarted atomic.Int64
	repairsDone    atomic.Int64
	repairsFailed  atomic.Int64
	rejoins        atomic.Int64
	unavailGauge   atomic.Int64
	underGauge     atomic.Int64
}

// NewManager returns a repair manager over the given cluster plumbing.
// rf is the target replication factor (clamped per range to the number
// of serving nodes).
func NewManager(cfg Config, clk clock.Clock, dir *cluster.Directory, transport rpc.Transport, router *partition.Router, migrations *migration.Manager, pump *replication.Pump, rf int) *Manager {
	cfg = cfg.withDefaults()
	if rf < 1 {
		rf = 1
	}
	return &Manager{
		cfg:        cfg,
		clk:        clk,
		dir:        dir,
		transport:  transport,
		router:     router,
		migrations: migrations,
		pump:       pump,
		rf:         rf,
		known:      make(map[string]cluster.Status),
		downSince:  make(map[string]time.Time),
		dropMark:   make(map[string]int64),
		lost:       make(map[string]map[string]bool),
		underSince: make(map[string]time.Time),
		jobs:       make(map[string]bool),
		jobTargets: make(map[string][]string),
		unavail:    make(map[string]bool),
		sem:        make(chan struct{}, cfg.Parallelism),
	}
}

// Config returns the effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// Run starts the background sweep loop on the manager's clock. Safe to
// call once per Stop; redundant calls are no-ops.
func (m *Manager) Run() {
	m.runMu.Lock()
	defer m.runMu.Unlock()
	if m.stopCh != nil {
		return
	}
	stop := make(chan struct{})
	m.stopCh = stop
	m.loopWg.Add(1)
	go func() {
		defer m.loopWg.Done()
		for {
			select {
			case <-stop:
				return
			case <-m.clk.After(m.cfg.SweepInterval):
			}
			select {
			case <-stop:
				return
			default:
			}
			m.Sweep()
		}
	}()
}

// Stop halts the background loop and waits for it and any in-flight
// repair jobs to finish.
func (m *Manager) Stop() {
	m.runMu.Lock()
	if m.stopCh != nil {
		close(m.stopCh)
		m.stopCh = nil
	}
	m.runMu.Unlock()
	m.loopWg.Wait()
	m.jobWg.Wait()
}

// Sweep runs one full detector + failover + repair pass. Repair jobs
// it schedules run asynchronously (see Quiesce); everything else —
// probing, expiry, membership events, failover flips, demotions — is
// synchronous, so a test driving Sweep on a fake clock observes
// deterministic detection behavior.
func (m *Manager) Sweep() {
	m.sweepMu.Lock()
	defer m.sweepMu.Unlock()
	m.sweeps.Add(1)
	m.probe()
	m.dir.ExpireStale(m.cfg.HeartbeatTimeout)
	returned, stale := m.observeMembership()
	if len(returned) > 0 {
		// A returned node may hold ranges whose teardown was journaled
		// while it was unreachable; retry those in the background.
		m.jobWg.Add(1)
		go func() {
			defer m.jobWg.Done()
			m.migrations.RetryCleanups()
		}()
	}
	for _, id := range stale {
		m.demoteStale(id)
	}
	m.failoverPass()
	m.repairPass()
}

// Quiesce blocks until no repair job is in flight or timeout elapses,
// returning whether the manager went idle. Uses wall time: jobs run on
// real goroutines regardless of the configured clock.
func (m *Manager) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		idle := len(m.jobs) == 0
		m.mu.Unlock()
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// RangeInFlight reports whether a repair job for the range of ns
// starting at start is journaled as in flight. The elastic actuator
// consults it before decommissioning: tearing a replica group apart
// while a repair is rebuilding that same range would race the repair's
// replacement choice.
func (m *Manager) RangeInFlight(ns string, start []byte) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[rangeKey(ns, start)]
}

// InFlightOn reports whether any journaled repair job has chosen node
// in its target replica set — the window in which the partition map
// does not yet name the node but repair data is already flowing onto
// it. Decommissioning the node then would strand the repair's flip.
func (m *Manager) InFlightOn(node string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, target := range m.jobTargets {
		for _, id := range target {
			if id == node {
				return true
			}
		}
	}
	return false
}

// Stats returns a snapshot of repair counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	pending := len(m.jobs)
	m.mu.Unlock()
	return Stats{
		Sweeps:            m.sweeps.Load(),
		NodesDown:         m.nodesDown.Load(),
		NodesUp:           m.nodesUp.Load(),
		Failovers:         m.failovers.Load(),
		Demotions:         m.demotions.Load(),
		RepairsStarted:    m.repairsStarted.Load(),
		RepairsDone:       m.repairsDone.Load(),
		RepairsFailed:     m.repairsFailed.Load(),
		Rejoins:           m.rejoins.Load(),
		RangesUnavailable: int(m.unavailGauge.Load()),
		UnderReplicated:   int(m.underGauge.Load()),
		PendingJobs:       pending,
	}
}

// Describe renders the manager's state for operator tooling
// (scads-ctl repairs).
func (m *Manager) Describe() string {
	st := m.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "sweeps=%d nodes-down=%d nodes-up=%d failovers=%d demotions=%d\n",
		st.Sweeps, st.NodesDown, st.NodesUp, st.Failovers, st.Demotions)
	fmt.Fprintf(&b, "repairs: started=%d done=%d failed=%d rejoins=%d pending-jobs=%d\n",
		st.RepairsStarted, st.RepairsDone, st.RepairsFailed, st.Rejoins, st.PendingJobs)
	fmt.Fprintf(&b, "ranges: unavailable=%d under-replicated=%d\n",
		st.RangesUnavailable, st.UnderReplicated)
	m.mu.Lock()
	defer m.mu.Unlock()
	var keys []string
	for rk := range m.jobs {
		keys = append(keys, rk)
	}
	sort.Strings(keys)
	for _, rk := range keys {
		ns, start := splitRangeKey(rk)
		fmt.Fprintf(&b, "job: %s start=%q\n", ns, start)
	}
	keys = keys[:0]
	for rk, nodes := range m.lost {
		if len(nodes) > 0 {
			keys = append(keys, rk)
		}
	}
	sort.Strings(keys)
	for _, rk := range keys {
		ns, start := splitRangeKey(rk)
		ids := make([]string, 0, len(m.lost[rk]))
		for id := range m.lost[rk] {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintf(&b, "awaiting-rejoin: %s start=%q lost=%v\n", ns, start, ids)
	}
	return b.String()
}

// --- detection ---

// probe pings every directory member in parallel and heartbeats the
// responsive ones. This is an active failure detector: it needs no
// cooperation from the nodes beyond answering ping, works identically
// over the in-process and TCP transports, and doubles as resurrection
// — a down member that answers is marked up again by the heartbeat.
func (m *Manager) probe() {
	members := m.dir.Members()
	var wg sync.WaitGroup
	for _, mem := range members {
		wg.Add(1)
		go func(mem cluster.Member) {
			defer wg.Done()
			resp, err := m.transport.Call(mem.Addr, rpc.Request{Method: rpc.MethodPing})
			if err == nil && resp.Error() == nil {
				m.dir.Heartbeat(mem.ID)
			}
		}(mem)
	}
	wg.Wait()
}

// observeMembership diffs member statuses against the previous sweep,
// emitting node-down/node-up events. It returns the members that
// transitioned down→up, and every *serving* member that has become
// irrecoverably stale — the pump abandoned deliveries to it. The
// staleness audit runs every sweep, not just on a down→up transition:
// a replica whose replication link is severed while it still answers
// pings (an asymmetric partition) accumulates drops without ever
// leaving the up state, and must be demoted and rebuilt all the same —
// otherwise a later failover onto it would permanently lose the
// dropped acknowledged writes. Down members are never demoted (a dead
// tail member is the failover pass's last-resort copy); their drop
// mark is frozen while they are away, so the evidence survives until
// the return sweep and the rebuild happens then.
func (m *Manager) observeMembership() (returned, stale []string) {
	now := m.clk.Now()
	members := m.dir.Members()
	var events []Event
	m.mu.Lock()
	seen := make(map[string]bool, len(members))
	for _, mem := range members {
		seen[mem.ID] = true
		prev, knew := m.known[mem.ID]
		m.known[mem.ID] = mem.Status
		drops := m.pump.DroppedTo(mem.ID)
		mark, marked := m.dropMark[mem.ID]
		if mem.Status == cluster.StatusUp {
			if marked && drops != mark {
				stale = append(stale, mem.ID)
			}
			m.dropMark[mem.ID] = drops
		} else if !marked {
			m.dropMark[mem.ID] = drops
		}
		if !knew {
			if mem.Status == cluster.StatusDown {
				// First sighting and already down (crashed before any
				// sweep recorded it as up): that is still a down
				// observation — count it and tell listeners, or a
				// crash in the sweep loop's startup window would be
				// acted on (failover, repair) without ever being
				// reported.
				m.downSince[mem.ID] = now
				m.nodesDown.Add(1)
				events = append(events, Event{Kind: EventNodeDown, Node: mem.ID})
			}
			continue
		}
		if prev == mem.Status {
			continue
		}
		switch {
		case mem.Status == cluster.StatusDown:
			m.downSince[mem.ID] = now
			m.nodesDown.Add(1)
			events = append(events, Event{Kind: EventNodeDown, Node: mem.ID})
		case mem.Status == cluster.StatusUp && prev == cluster.StatusDown:
			delete(m.downSince, mem.ID)
			m.nodesUp.Add(1)
			returned = append(returned, mem.ID)
			events = append(events, Event{Kind: EventNodeUp, Node: mem.ID})
		}
	}
	for id := range m.known {
		if !seen[id] {
			delete(m.known, id)
			delete(m.downSince, id)
			delete(m.dropMark, id)
		}
	}
	m.mu.Unlock()
	for _, ev := range events {
		m.emit(ev)
	}
	return returned, stale
}

// demoteStale removes a returned-but-stale node from every replica
// group where it serves as a secondary (never from a primary slot: a
// primary is authoritative by definition). The removal is recorded as
// a lost membership, so the repair pass re-adds the node immediately
// — via the migration protocol's truncate + snapshot + delta, which
// rebuilds the copy instead of merging over it.
func (m *Manager) demoteStale(node string) {
	now := m.clk.Now()
	for _, ns := range m.router.Namespaces() {
		pm, ok := m.router.Map(ns)
		if !ok {
			continue
		}
		for _, rng := range pm.Ranges() {
			idx := indexOf(rng.Replicas, node)
			if idx <= 0 {
				continue
			}
			target := without(rng.Replicas, node)
			if !m.anyUp(target) {
				// Never leave a range with no live member: serving
				// stale data beats serving nothing (§3.3.1's
				// availability arbitration).
				continue
			}
			key := keyFor(rng)
			if err := pm.CompareAndSetReplicas(key, rng.Replicas, target); err != nil {
				continue // racing reconfiguration; next sweep re-derives
			}
			rk := rangeKey(ns, rng.Start)
			m.mu.Lock()
			m.noteLostLocked(rk, node)
			if _, ok := m.underSince[rk]; !ok {
				m.underSince[rk] = now
			}
			m.mu.Unlock()
			m.demotions.Add(1)
			m.emit(Event{Kind: EventDemote, Node: node, Namespace: ns, Start: rng.Start, End: rng.End, Replicas: target})
		}
	}
}

// --- failover ---

// failoverPass promotes the freshest live replica of every range whose
// primary is down. Pure metadata: one compare-and-set flip per range.
// Down members are kept at the tail of the group, not dropped: they
// still hold a copy (the dead ex-primary in fact holds the freshest
// one), so if the promoted survivor also dies and a dead member
// returns, the next sweep can promote it instead of declaring the
// range permanently unavailable. Replacement of long-dead tail members
// is the repair pass's job, after the grace; convergence of a
// briefly-dead tail member is the pump's (parked deliveries flush on
// return, and abandoned ones trigger the demote-and-rebuild audit).
func (m *Manager) failoverPass() {
	probes := make(map[string]uint64) // freshness probe memo for this sweep
	unavailable := 0
	for _, ns := range m.router.Namespaces() {
		pm, ok := m.router.Map(ns)
		if !ok {
			continue
		}
		for _, rng := range pm.Ranges() {
			rk := rangeKey(ns, rng.Start)
			if m.isUp(rng.Replicas[0]) {
				m.mu.Lock()
				delete(m.unavail, rk)
				m.mu.Unlock()
				continue
			}
			var live, dead []string
			for _, id := range rng.Replicas {
				if m.isUp(id) {
					live = append(live, id)
				} else {
					dead = append(dead, id)
				}
			}
			if len(live) == 0 {
				unavailable++
				m.mu.Lock()
				first := !m.unavail[rk]
				m.unavail[rk] = true
				m.mu.Unlock()
				if first {
					m.emit(Event{Kind: EventUnavailable, Node: rng.Replicas[0], Namespace: ns, Start: rng.Start, End: rng.End, Replicas: rng.Replicas})
				}
				continue
			}
			ordered := append(m.rankByFreshness(ns, live, probes), dead...)
			if err := pm.CompareAndSetReplicas(keyFor(rng), rng.Replicas, ordered); err != nil {
				continue // racing flip; re-derived next sweep
			}
			m.mu.Lock()
			delete(m.unavail, rk)
			m.mu.Unlock()
			m.failovers.Add(1)
			m.emit(Event{Kind: EventFailover, Node: rng.Replicas[0], Namespace: ns, Start: rng.Start, End: rng.End, Replicas: ordered})
		}
	}
	m.unavailGauge.Store(int64(unavailable))
}

// rankByFreshness orders candidate replicas freshest first: highest
// probed max record version (coordinator HLC stamps — globally
// comparable), then lowest tracked replication staleness, then the
// existing order. Probe failures rank the candidate last. probes
// memoizes the (namespace, node) probe across one sweep — the value
// is namespace-wide, so a crashed node that was primary of many
// ranges costs one RPC per candidate, not one per range.
//
// Granularity caveat: both signals are namespace-wide, not per-range —
// a candidate kept hot by writes to *other* ranges of the namespace
// can outrank one holding newer data for the failing range.
// Correctness never depends on the pick (the pump's queued deliveries
// converge whichever survivor is promoted, and acknowledged data lives
// on at least the surviving enqueue targets); the ranking only
// shortens the stale-read window, so the approximation is acceptable
// until storage tracks per-range versions.
func (m *Manager) rankByFreshness(ns string, ids []string, probes map[string]uint64) []string {
	out := append([]string(nil), ids...)
	if len(out) < 2 {
		return out
	}
	type rank struct {
		version uint64
		stale   time.Duration
	}
	ranks := make(map[string]rank, len(out))
	tracker := m.pump.Tracker()
	for _, id := range out {
		r := rank{stale: tracker.Staleness(ns, id)}
		pk := ns + "\x00" + id
		if v, ok := probes[pk]; ok {
			r.version = v
		} else if mem, ok := m.dir.Get(id); ok {
			resp, err := m.transport.Call(mem.Addr, rpc.Request{
				Method: rpc.MethodRangeSnapshot, Namespace: ns, Limit: -1,
			})
			if err == nil && resp.Error() == nil {
				r.version = resp.Version
			}
			probes[pk] = r.version
		}
		ranks[id] = r
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := ranks[out[i]], ranks[out[j]]
		if a.version != b.version {
			return a.version > b.version
		}
		return a.stale < b.stale
	})
	return out
}

// --- RF repair ---

// repairPass schedules re-replication jobs for degraded ranges:
// under-replicated (below the target RF) or carrying a down member
// past the replacement grace. One journaled job per range; jobs run
// asynchronously under the parallelism bound.
func (m *Manager) repairPass() {
	now := m.clk.Now()
	upTotal := len(m.dir.Up())
	under := 0
	for _, ns := range m.router.Namespaces() {
		pm, ok := m.router.Map(ns)
		if !ok {
			continue
		}
		for _, rng := range pm.Ranges() {
			rk := rangeKey(ns, rng.Start)
			rf := m.rf
			if rf > upTotal {
				rf = upTotal
			}
			if rf < 1 {
				continue
			}
			var liveCount int
			var pastGrace bool
			m.mu.Lock()
			for _, id := range rng.Replicas {
				if m.isUp(id) {
					liveCount++
					continue
				}
				ds, ok := m.downSince[id]
				if !ok {
					ds = now
					m.downSince[id] = ds
				}
				if now.Sub(ds) >= m.cfg.ReplaceAfter {
					pastGrace = true
				}
			}
			needAdd := len(rng.Replicas) < rf
			if needAdd {
				under++
			}
			if liveCount == 0 || (!needAdd && !pastGrace) {
				// Forget degraded-state bookkeeping only at the true
				// (unclamped) target RF: a range shrunk by failover is
				// "satisfied" while the cluster is short of nodes, but
				// its lost-member memory must survive until the range
				// is fully replicated again — it is what lets the old
				// primary rejoin instead of being treated as a spare.
				if liveCount == len(rng.Replicas) && len(rng.Replicas) >= m.rf {
					delete(m.underSince, rk)
					delete(m.lost, rk)
				}
				m.mu.Unlock()
				continue
			}
			if needAdd && !pastGrace {
				us, ok := m.underSince[rk]
				if !ok {
					us = now
					m.underSince[rk] = us
				}
				// Anti-flap: recruit a brand-new replica only after the
				// grace; a returned former member rejoins immediately.
				if !m.hasRejoinCandidateLocked(rk, rng.Replicas) && now.Sub(us) < m.cfg.ReplaceAfter {
					m.mu.Unlock()
					continue
				}
			}
			if m.jobs[rk] {
				m.mu.Unlock()
				continue
			}
			m.jobs[rk] = true
			m.mu.Unlock()
			m.jobWg.Add(1)
			go m.runJob(ns, pm, rk, keyFor(rng))
		}
	}
	m.underGauge.Store(int64(under))
}

// runJob executes one journaled repair: it re-derives the target
// replica set from current state (so a node that returned since the
// job was scheduled re-targets the repair at itself — the rejoin path)
// and moves the range through the migration manager.
func (m *Manager) runJob(ns string, pm *partition.Map, rk string, key []byte) {
	defer m.jobWg.Done()
	m.sem <- struct{}{}
	defer func() { <-m.sem }()
	defer func() {
		m.mu.Lock()
		delete(m.jobs, rk)
		delete(m.jobTargets, rk)
		m.mu.Unlock()
	}()

	rng := pm.Lookup(key)
	target, rejoined := m.reconcileTarget(ns, rk, rng)
	if target == nil || partition.EqualIDs(target, rng.Replicas) {
		return
	}
	m.mu.Lock()
	m.jobTargets[rk] = target
	m.mu.Unlock()
	m.repairsStarted.Add(1)
	m.emit(Event{Kind: EventRepairStart, Namespace: ns, Start: rng.Start, End: rng.End, Replicas: target})
	if err := m.migrations.MoveRange(pm, ns, key, target); err != nil {
		m.repairsFailed.Add(1)
		m.emit(Event{Kind: EventRepairFailed, Namespace: ns, Start: rng.Start, End: rng.End, Replicas: target, Err: err})
		return
	}
	m.repairsDone.Add(1)
	m.rejoins.Add(int64(len(rejoined)))
	m.mu.Lock()
	if lost := m.lost[rk]; lost != nil {
		for _, id := range target {
			delete(lost, id)
		}
		if len(lost) == 0 {
			delete(m.lost, rk)
		}
	}
	delete(m.underSince, rk)
	m.mu.Unlock()
	m.emit(Event{Kind: EventRepairDone, Namespace: ns, Start: rng.Start, End: rng.End, Replicas: target})
}

// reconcileTarget computes the replica set a repair should install:
// live members first (preserving order, so a failover's
// freshest-first primary stays primary), down members still within
// grace kept at the tail, then additions up to the target RF —
// preferring returned former members (rejoins), then the least-loaded
// serving spares. Returns nil when the range has no live member.
func (m *Manager) reconcileTarget(ns, rk string, rng partition.Range) (target, rejoined []string) {
	now := m.clk.Now()
	m.mu.Lock()
	lost := make([]string, 0, len(m.lost[rk]))
	for id := range m.lost[rk] {
		lost = append(lost, id)
	}
	sort.Strings(lost)
	var live, inGrace []string
	for _, id := range rng.Replicas {
		if m.isUp(id) {
			live = append(live, id)
			continue
		}
		ds, ok := m.downSince[id]
		if ok && now.Sub(ds) < m.cfg.ReplaceAfter {
			inGrace = append(inGrace, id)
		}
	}
	m.mu.Unlock()
	if len(live) == 0 {
		return nil, nil
	}
	target = append(append([]string(nil), live...), inGrace...)
	rf := m.rf
	if up := len(m.dir.Up()); rf > up {
		rf = up
	}
	for _, id := range lost {
		if len(target) >= rf {
			break
		}
		if m.isUp(id) && indexOf(target, id) < 0 {
			target = append(target, id)
			rejoined = append(rejoined, id)
		}
	}
	if len(target) < rf {
		for _, id := range m.sparesByLoad(target) {
			target = append(target, id)
			if len(target) >= rf {
				break
			}
		}
	}
	// A down member past its grace is dropped only when a replacement
	// actually backfilled: if the cluster has no spare, keeping the
	// (stale, torn down on return) copy in the group is still better
	// than journaling its destruction — it remains the range's only
	// other copy should the survivors fail too.
	for _, id := range rng.Replicas {
		if len(target) >= m.rf {
			break
		}
		if indexOf(target, id) < 0 && !m.isUp(id) {
			target = append(target, id)
		}
	}
	return target, rejoined
}

// sparesByLoad returns serving nodes not in exclude, least-loaded
// first (by how many ranges they already carry across all namespaces).
func (m *Manager) sparesByLoad(exclude []string) []string {
	load := make(map[string]int)
	for _, ns := range m.router.Namespaces() {
		if pm, ok := m.router.Map(ns); ok {
			for _, rng := range pm.Ranges() {
				for _, id := range rng.Replicas {
					load[id]++
				}
			}
		}
	}
	var out []string
	for _, mem := range m.dir.Up() {
		if indexOf(exclude, mem.ID) < 0 {
			out = append(out, mem.ID)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if load[out[i]] != load[out[j]] {
			return load[out[i]] < load[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// --- helpers ---

func (m *Manager) hasRejoinCandidateLocked(rk string, current []string) bool {
	for id := range m.lost[rk] {
		if indexOf(current, id) < 0 && m.isUp(id) {
			return true
		}
	}
	return false
}

func (m *Manager) noteLostLocked(rk, node string) {
	set := m.lost[rk]
	if set == nil {
		set = make(map[string]bool)
		m.lost[rk] = set
	}
	set[node] = true
}

func (m *Manager) isUp(id string) bool {
	mem, ok := m.dir.Get(id)
	return ok && mem.Status == cluster.StatusUp
}

func (m *Manager) anyUp(ids []string) bool {
	for _, id := range ids {
		if m.isUp(id) {
			return true
		}
	}
	return false
}

func (m *Manager) emit(ev Event) {
	if h := m.OnEvent; h != nil {
		h(ev)
	}
}

func rangeKey(ns string, start []byte) string {
	return ns + "\x00" + string(start)
}

func splitRangeKey(rk string) (ns, start string) {
	if i := strings.IndexByte(rk, 0); i >= 0 {
		return rk[:i], rk[i+1:]
	}
	return rk, ""
}

func keyFor(rng partition.Range) []byte {
	if rng.Start == nil {
		return []byte{}
	}
	return rng.Start
}

func indexOf(ids []string, id string) int {
	for i, x := range ids {
		if x == id {
			return i
		}
	}
	return -1
}

func without(ids []string, drop string) []string {
	out := make([]string, 0, len(ids))
	for _, x := range ids {
		if x != drop {
			out = append(out, x)
		}
	}
	return out
}
