package repair_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"scads/internal/clock"
	"scads/internal/cluster"
	"scads/internal/migration"
	"scads/internal/partition"
	"scads/internal/record"
	"scads/internal/repair"
	"scads/internal/replication"
	"scads/internal/rpc"
	"scads/internal/storage"
)

var t0 = time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)

// fixture is a miniature coordinator: real directory, transport,
// router, migration manager and replication pump over in-memory
// storage nodes — everything the repair manager touches, none of the
// public API (the root package imports repair, so tests here cannot
// import it back).
type fixture struct {
	t      *testing.T
	clk    *clock.Virtual
	lt     *rpc.LocalTransport
	dir    *cluster.Directory
	router *partition.Router
	mig    *migration.Manager
	pump   *replication.Pump
	mgr    *repair.Manager
	nodes  map[string]*cluster.Node

	mu     sync.Mutex
	events []repair.Event
}

func newFixture(t *testing.T, n, rf int, cfg repair.Config) *fixture {
	t.Helper()
	f := &fixture{t: t, clk: clock.NewVirtual(t0), nodes: make(map[string]*cluster.Node)}
	f.lt = rpc.NewLocalTransport()
	f.dir = cluster.NewDirectory(f.clk)
	f.router = partition.NewRouter(f.lt, f.dir)
	f.mig = migration.NewManager(f.lt, f.dir, 2)
	f.mig.Resolver = f.router.Map
	queue := replication.NewQueue(replication.ByDeadline)
	f.pump = replication.NewPump(queue, f.router.Apply, f.clk)
	var ids []string
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("n%d", i)
		engine, err := storage.Open(storage.Options{NodeID: uint16(i), Clock: f.clk})
		if err != nil {
			t.Fatal(err)
		}
		node := cluster.NewNode(id, engine)
		f.nodes[id] = node
		f.lt.Register("local://"+id, node)
		f.dir.Join(id, "local://"+id)
		f.dir.MarkUp(id)
		ids = append(ids, id)
	}
	if rf > n {
		rf = n
	}
	m, err := partition.NewMap(ids[:rf])
	if err != nil {
		t.Fatal(err)
	}
	f.router.SetMap("ns", m)
	f.mgr = repair.NewManager(cfg, f.clk, f.dir, f.lt, f.router, f.mig, f.pump, rf)
	f.mgr.OnEvent = func(ev repair.Event) {
		f.mu.Lock()
		f.events = append(f.events, ev)
		f.mu.Unlock()
	}
	return f
}

func (f *fixture) crash(id string)   { f.lt.SetDown("local://"+id, true) }
func (f *fixture) recover(id string) { f.lt.SetDown("local://"+id, false) }

func (f *fixture) replicas() []string {
	m, _ := f.router.Map("ns")
	return m.Ranges()[0].Replicas
}

// put applies a record with the given version to each named node.
func (f *fixture) put(key string, version uint64, nodes ...string) {
	f.t.Helper()
	rec := record.Record{Key: []byte(key), Value: []byte("v"), Version: version}
	for _, id := range nodes {
		if err := f.router.Apply("ns", id, []record.Record{rec}); err != nil {
			f.t.Fatalf("apply %s to %s: %v", key, id, err)
		}
	}
}

func (f *fixture) eventKinds() []repair.EventKind {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]repair.EventKind, len(f.events))
	for i, ev := range f.events {
		out[i] = ev.Kind
	}
	return out
}

func (f *fixture) countKind(k repair.EventKind) int {
	n := 0
	for _, got := range f.eventKinds() {
		if got == k {
			n++
		}
	}
	return n
}

// TestDetectorFlapping drives down → heartbeat-back → down through
// ExpireStale on the fake clock and checks each transition is observed
// exactly once.
func TestDetectorFlapping(t *testing.T) {
	f := newFixture(t, 2, 1, repair.Config{HeartbeatTimeout: 10 * time.Second})
	f.mgr.Sweep() // baseline: everyone heartbeats, no events
	if st := f.mgr.Stats(); st.NodesDown != 0 || st.NodesUp != 0 {
		t.Fatalf("baseline transitions: %+v", st)
	}

	// n2 goes silent: after the timeout the sweep expires it.
	f.crash("n2")
	f.clk.Advance(11 * time.Second)
	f.mgr.Sweep()
	if st := f.mgr.Stats(); st.NodesDown != 1 {
		t.Fatalf("NodesDown = %d after expiry, want 1", st.NodesDown)
	}
	if m, _ := f.dir.Get("n2"); m.Status != cluster.StatusDown {
		t.Fatalf("n2 status = %v, want down", m.Status)
	}

	// It heartbeats back: the probe resurrects it.
	f.recover("n2")
	f.mgr.Sweep()
	if st := f.mgr.Stats(); st.NodesUp != 1 {
		t.Fatalf("NodesUp = %d after return, want 1", st.NodesUp)
	}
	if m, _ := f.dir.Get("n2"); m.Status != cluster.StatusUp {
		t.Fatalf("n2 status = %v, want up", m.Status)
	}

	// And goes silent again.
	f.crash("n2")
	f.clk.Advance(11 * time.Second)
	f.mgr.Sweep()
	if st := f.mgr.Stats(); st.NodesDown != 2 || st.NodesUp != 1 {
		t.Fatalf("after flap: down=%d up=%d, want 2/1", st.NodesDown, st.NodesUp)
	}
}

// TestExpireBoundary pins the sweep-interval edge case: a heartbeat
// exactly timeout-old is NOT expired (ExpireStale is strictly older
// than), one instant past it is.
func TestExpireBoundary(t *testing.T) {
	f := newFixture(t, 1, 1, repair.Config{HeartbeatTimeout: 10 * time.Second})
	f.mgr.Sweep() // heartbeat at t0
	f.crash("n1") // silence the probe without marking anything

	f.clk.Advance(10 * time.Second)
	f.mgr.Sweep()
	if m, _ := f.dir.Get("n1"); m.Status != cluster.StatusUp {
		t.Fatalf("expired at exactly the timeout; want up")
	}
	f.clk.Advance(1)
	f.mgr.Sweep()
	if m, _ := f.dir.Get("n1"); m.Status != cluster.StatusDown {
		t.Fatalf("not expired just past the timeout")
	}
}

// TestRunSweepsOnFakeClock checks the background loop paces itself on
// the injected clock: sweeps fire only as virtual time crosses the
// interval, and Stop halts them.
func TestRunSweepsOnFakeClock(t *testing.T) {
	f := newFixture(t, 1, 1, repair.Config{SweepInterval: 100 * time.Millisecond})
	f.mgr.Run()

	// Less than one interval of virtual time never fires, no matter
	// how much real time passes.
	f.clk.Advance(99 * time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	if got := f.mgr.Stats().Sweeps; got != 0 {
		t.Fatalf("sweeps after partial interval = %d, want 0", got)
	}

	// Advancing virtual time drives sweeps.
	deadline := time.Now().Add(5 * time.Second)
	for f.mgr.Stats().Sweeps < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("sweeps = %d, want >= 3", f.mgr.Stats().Sweeps)
		}
		f.clk.Advance(100 * time.Millisecond)
		time.Sleep(2 * time.Millisecond)
	}

	// Stop halts the loop: further advances never sweep again.
	f.mgr.Stop()
	n := f.mgr.Stats().Sweeps
	f.clk.Advance(time.Second)
	time.Sleep(30 * time.Millisecond)
	if got := f.mgr.Stats().Sweeps; got != n {
		t.Fatalf("swept after Stop: %d -> %d", n, got)
	}
}

// TestFailoverPromotesFreshestSurvivor crashes a primary and checks
// the promoted replica is the one with the highest accepted record
// version, not simply the next in line.
func TestFailoverPromotesFreshestSurvivor(t *testing.T) {
	f := newFixture(t, 3, 3, repair.Config{HeartbeatTimeout: 10 * time.Second})
	f.put("a", 100, "n1", "n2", "n3")
	f.put("b", 200, "n1", "n3") // n3 is fresher than n2

	f.crash("n1")
	f.dir.MarkDown("n1")
	f.mgr.Sweep()

	// Freshest survivor first; the dead ex-primary is kept at the tail
	// (it still holds a copy — if both survivors die and it returns, it
	// must be promotable rather than the range going dark).
	got := f.replicas()
	if len(got) != 3 || got[0] != "n3" || got[1] != "n2" || got[2] != "n1" {
		t.Fatalf("replicas after failover = %v, want [n3 n2 n1]", got)
	}
	if st := f.mgr.Stats(); st.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", st.Failovers)
	}
	if f.countKind(repair.EventFailover) != 1 {
		t.Fatalf("events: %v", f.eventKinds())
	}
}

// TestUnavailableRangeReported: no live replica → one unavailable
// event, gauge set; recovery clears it and resurrects service.
func TestUnavailableRangeReported(t *testing.T) {
	f := newFixture(t, 1, 1, repair.Config{HeartbeatTimeout: 10 * time.Second})
	f.crash("n1")
	f.dir.MarkDown("n1")
	f.mgr.Sweep()
	f.mgr.Sweep() // second sweep must not re-emit
	if st := f.mgr.Stats(); st.RangesUnavailable != 1 {
		t.Fatalf("RangesUnavailable = %d, want 1", st.RangesUnavailable)
	}
	if n := f.countKind(repair.EventUnavailable); n != 1 {
		t.Fatalf("unavailable events = %d, want 1 (deduplicated)", n)
	}
	f.recover("n1")
	f.mgr.Sweep()
	if st := f.mgr.Stats(); st.RangesUnavailable != 0 {
		t.Fatalf("RangesUnavailable after recovery = %d, want 0", st.RangesUnavailable)
	}
}

// TestRFRepairReplacesDeadReplicaAfterGrace: a down secondary is
// replaced with a spare only after ReplaceAfter, and the spare holds a
// complete copy.
func TestRFRepairReplacesDeadReplicaAfterGrace(t *testing.T) {
	f := newFixture(t, 3, 2, repair.Config{
		HeartbeatTimeout: 10 * time.Second,
		ReplaceAfter:     5 * time.Second,
	})
	f.put("a", 100, "n1", "n2")
	f.put("b", 200, "n1", "n2")

	f.crash("n2")
	f.dir.MarkDown("n2")
	f.mgr.Sweep()
	if !f.mgr.Quiesce(5 * time.Second) {
		t.Fatal("repair did not quiesce")
	}
	if got := f.replicas(); len(got) != 2 || got[1] != "n2" {
		t.Fatalf("replaced before grace: %v", got)
	}

	f.clk.Advance(6 * time.Second)
	f.mgr.Sweep()
	if !f.mgr.Quiesce(5 * time.Second) {
		t.Fatal("repair did not quiesce")
	}
	got := f.replicas()
	if len(got) != 2 || got[0] != "n1" || got[1] != "n3" {
		t.Fatalf("replicas after replacement = %v, want [n1 n3]", got)
	}
	// The replacement holds every record.
	for _, key := range []string{"a", "b"} {
		ns, err := f.nodes["n3"].Engine().Namespace("ns")
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := ns.GetRecord([]byte(key)); !ok {
			t.Fatalf("replacement n3 missing %q", key)
		}
	}
	if st := f.mgr.Stats(); st.RepairsDone != 1 || st.Rejoins != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAntiFlapHoldsBeforeGrace: a node that returns before the grace
// triggers no repair at all — membership is untouched and no migration
// ran.
func TestAntiFlapHoldsBeforeGrace(t *testing.T) {
	f := newFixture(t, 3, 2, repair.Config{
		HeartbeatTimeout: 10 * time.Second,
		ReplaceAfter:     5 * time.Second,
	})
	f.crash("n2")
	f.dir.MarkDown("n2")
	f.mgr.Sweep()
	f.clk.Advance(2 * time.Second) // still inside the grace
	f.mgr.Sweep()
	f.recover("n2")
	f.mgr.Sweep()
	f.mgr.Quiesce(time.Second)
	if got := f.replicas(); len(got) != 2 || got[0] != "n1" || got[1] != "n2" {
		t.Fatalf("flap changed membership: %v", got)
	}
	if st := f.mgr.Stats(); st.RepairsStarted != 0 || st.Demotions != 0 {
		t.Fatalf("flap triggered repairs: %+v", st)
	}
}

// TestStaleReturnDemotedAndRejoins: deliveries to a down secondary are
// abandoned (pump drops), so on return it is demoted and immediately
// re-added through a full catch-up — and ends up holding the write it
// missed.
func TestStaleReturnDemotedAndRejoins(t *testing.T) {
	f := newFixture(t, 2, 2, repair.Config{
		HeartbeatTimeout: 10 * time.Second,
		ReplaceAfter:     time.Hour, // rejoin must not wait for any grace
	})
	f.pump.MaxAttempts = 1
	f.put("a", 100, "n1", "n2")

	f.crash("n2")
	f.dir.MarkDown("n2")
	f.mgr.Sweep()

	// A write lands on the primary; its replication to n2 is dropped.
	f.put("b", 200, "n1")
	f.pump.Enqueue("ns", record.Record{Key: []byte("b"), Value: []byte("v"), Version: 200}, []string{"n2"}, time.Second)
	if n := f.pump.Drain(10); n != 1 {
		t.Fatalf("drained %d", n)
	}
	if f.pump.DroppedTo("n2") != 1 {
		t.Fatalf("expected a dropped delivery to n2")
	}

	f.recover("n2")
	f.mgr.Sweep()
	if !f.mgr.Quiesce(5 * time.Second) {
		t.Fatal("rejoin did not quiesce")
	}
	if st := f.mgr.Stats(); st.Demotions != 1 || st.Rejoins != 1 || st.RepairsDone != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := f.replicas(); len(got) != 2 || got[0] != "n1" || got[1] != "n2" {
		t.Fatalf("replicas after rejoin = %v", got)
	}
	ns, err := f.nodes["n2"].Engine().Namespace("ns")
	if err != nil {
		t.Fatal(err)
	}
	rec, ok, _ := ns.GetRecord([]byte("b"))
	if !ok || rec.Version != 200 {
		t.Fatalf("rejoined n2 missing the dropped write: ok=%v rec=%+v", ok, rec)
	}
}

// TestResurrectionMidRepair: the down secondary heartbeats back while
// its replacement migration is mid-flight. The migration commits to
// its target; the loop then treats the returned node as a spare, and
// its stale copy is torn down by the journaled cleanup — no wrong
// membership, no stranded data.
func TestResurrectionMidRepair(t *testing.T) {
	f := newFixture(t, 3, 2, repair.Config{
		HeartbeatTimeout: 10 * time.Second,
		ReplaceAfter:     time.Millisecond,
	})
	f.put("a", 100, "n1", "n2")

	var once sync.Once
	f.mig.OnPhase = func(ev migration.Event) {
		if ev.Phase == migration.PhaseSnapshot {
			once.Do(func() {
				f.recover("n2")
				f.dir.Heartbeat("n2")
			})
		}
	}

	f.crash("n2")
	f.dir.MarkDown("n2")
	f.mgr.Sweep()              // observe the down transition
	f.clk.Advance(time.Second) // past the tiny grace
	f.mgr.Sweep()              // schedules the replacement
	if !f.mgr.Quiesce(5 * time.Second) {
		t.Fatal("repair did not quiesce")
	}
	got := f.replicas()
	if len(got) != 2 || got[0] != "n1" || got[1] != "n3" {
		t.Fatalf("replicas = %v, want [n1 n3]", got)
	}
	// Subsequent sweeps settle: n2's up transition is observed, the
	// journaled teardown of its copy retries now that it is reachable.
	f.mgr.Sweep()
	f.mgr.Quiesce(5 * time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for {
		ns, err := f.nodes["n2"].Engine().Namespace("ns")
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := ns.GetRecord([]byte("a")); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale copy on resurrected n2 never torn down")
		}
		f.mgr.Sweep()
		time.Sleep(5 * time.Millisecond)
	}
	if st := f.mgr.Stats(); st.RepairsDone < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFailoverThenRejoin: the crashed primary returns after failover.
// Deliveries to it were abandoned while it was away, so the staleness
// audit demotes it and the rejoin path rebuilds its copy — which ends
// up holding the write it missed.
func TestFailoverThenRejoin(t *testing.T) {
	f := newFixture(t, 2, 2, repair.Config{
		HeartbeatTimeout: 10 * time.Second,
		ReplaceAfter:     time.Hour,
	})
	f.pump.MaxAttempts = 1
	f.put("a", 100, "n1", "n2")

	f.crash("n1")
	f.dir.MarkDown("n1")
	f.mgr.Sweep()
	// Promoted survivor first, dead ex-primary kept at the tail.
	if got := f.replicas(); len(got) != 2 || got[0] != "n2" || got[1] != "n1" {
		t.Fatalf("replicas after failover = %v, want [n2 n1]", got)
	}

	// A write lands on the promoted primary while n1 is away; its
	// replication to the dead tail member is abandoned.
	f.put("b", 200, "n2")
	f.pump.Enqueue("ns", record.Record{Key: []byte("b"), Value: []byte("v"), Version: 200}, []string{"n1"}, time.Second)
	if n := f.pump.Drain(10); n != 1 {
		t.Fatalf("drained %d", n)
	}
	if f.pump.DroppedTo("n1") != 1 {
		t.Fatal("expected the delivery to dead n1 to be dropped")
	}

	f.recover("n1")
	f.mgr.Sweep()
	if !f.mgr.Quiesce(5 * time.Second) {
		t.Fatal("rejoin did not quiesce")
	}
	got := f.replicas()
	if len(got) != 2 || got[0] != "n2" || got[1] != "n1" {
		t.Fatalf("replicas after rejoin = %v, want [n2 n1]", got)
	}
	ns, err := f.nodes["n1"].Engine().Namespace("ns")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ns.GetRecord([]byte("b")); !ok {
		t.Fatal("rejoined n1 missing the write it was away for")
	}
	if st := f.mgr.Stats(); st.Failovers != 1 || st.Demotions != 1 || st.Rejoins != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPartitionedReplicaDemotedWhileUp covers the asymmetric-fault
// audit: a secondary whose replication link is severed keeps answering
// pings (never leaves the up state) while the pump abandons deliveries
// to it. The per-sweep drop audit must demote and rebuild it anyway —
// otherwise a later failover onto it would lose the dropped writes.
func TestPartitionedReplicaDemotedWhileUp(t *testing.T) {
	f := newFixture(t, 2, 2, repair.Config{
		HeartbeatTimeout: 10 * time.Second,
		ReplaceAfter:     time.Hour,
	})
	f.pump.MaxAttempts = 1
	f.put("a", 100, "n1", "n2")
	f.mgr.Sweep() // baseline drop marks

	// Sever only the replication link: pings still answer.
	f.lt.SetApplyDown("local://n2", true)
	f.put("b", 200, "n1")
	f.pump.Enqueue("ns", record.Record{Key: []byte("b"), Value: []byte("v"), Version: 200}, []string{"n2"}, time.Second)
	if n := f.pump.Drain(10); n != 1 {
		t.Fatalf("drained %d", n)
	}
	f.lt.SetApplyDown("local://n2", false)

	f.mgr.Sweep()
	if !f.mgr.Quiesce(5 * time.Second) {
		t.Fatal("rebuild did not quiesce")
	}
	if m, _ := f.dir.Get("n2"); m.Status != cluster.StatusUp {
		t.Fatalf("n2 went %v; the fault was replication-only", m.Status)
	}
	if st := f.mgr.Stats(); st.NodesDown != 0 || st.Demotions != 1 || st.Rejoins != 1 {
		t.Fatalf("stats = %+v", st)
	}
	ns, err := f.nodes["n2"].Engine().Namespace("ns")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ns.GetRecord([]byte("b")); !ok {
		t.Fatal("rebuilt n2 missing the dropped write")
	}
	if got := f.replicas(); len(got) != 2 || got[0] != "n1" || got[1] != "n2" {
		t.Fatalf("replicas = %v", got)
	}
}

// TestSurvivorDiesAndOldPrimaryReturns: after failover the promoted
// survivor also dies; when the original (dead, tail-retained) primary
// returns, the next sweep promotes it instead of leaving the range
// permanently unavailable.
func TestSurvivorDiesAndOldPrimaryReturns(t *testing.T) {
	f := newFixture(t, 2, 2, repair.Config{
		HeartbeatTimeout: 10 * time.Second,
		ReplaceAfter:     time.Hour,
	})
	f.put("a", 100, "n1", "n2")

	f.crash("n1")
	f.dir.MarkDown("n1")
	f.mgr.Sweep() // failover to [n2 n1]
	f.crash("n2")
	f.dir.MarkDown("n2")
	f.mgr.Sweep()
	if st := f.mgr.Stats(); st.RangesUnavailable != 1 {
		t.Fatalf("expected unavailable range, stats %+v", st)
	}

	f.recover("n1")
	f.mgr.Sweep()
	got := f.replicas()
	if got[0] != "n1" {
		t.Fatalf("returned old primary not promoted: %v", got)
	}
	if st := f.mgr.Stats(); st.RangesUnavailable != 0 || st.Failovers != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Its data still serves.
	ns, err := f.nodes["n1"].Engine().Namespace("ns")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ns.GetRecord([]byte("a")); !ok {
		t.Fatal("promoted returnee missing data")
	}
}

func TestDescribeRendersState(t *testing.T) {
	f := newFixture(t, 2, 2, repair.Config{})
	f.mgr.Sweep()
	out := f.mgr.Describe()
	for _, want := range []string{"sweeps=1", "repairs:", "ranges:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe missing %q:\n%s", want, out)
		}
	}
}
