package clock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC) // CIDR 2009 opening day

func TestVirtualNow(t *testing.T) {
	v := NewVirtual(epoch)
	if !v.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", v.Now(), epoch)
	}
	v.Advance(time.Hour)
	if got, want := v.Now(), epoch.Add(time.Hour); !got.Equal(want) {
		t.Fatalf("Now after advance = %v, want %v", got, want)
	}
}

func TestVirtualAdvanceToBackwardsIsNoop(t *testing.T) {
	v := NewVirtual(epoch)
	v.Advance(time.Hour)
	v.AdvanceTo(epoch) // in the past
	if got, want := v.Now(), epoch.Add(time.Hour); !got.Equal(want) {
		t.Fatalf("Now = %v, want unchanged %v", got, want)
	}
}

func TestVirtualAfterFiresInOrder(t *testing.T) {
	v := NewVirtual(epoch)
	c1 := v.After(1 * time.Minute)
	c2 := v.After(2 * time.Minute)
	c3 := v.After(3 * time.Minute)

	v.Advance(2 * time.Minute)

	if got := <-c1; !got.Equal(epoch.Add(1 * time.Minute)) {
		t.Errorf("c1 fired at %v, want %v", got, epoch.Add(time.Minute))
	}
	if got := <-c2; !got.Equal(epoch.Add(2 * time.Minute)) {
		t.Errorf("c2 fired at %v, want %v", got, epoch.Add(2*time.Minute))
	}
	select {
	case <-c3:
		t.Error("c3 fired before its deadline")
	default:
	}
	v.Advance(time.Minute)
	if got := <-c3; !got.Equal(epoch.Add(3 * time.Minute)) {
		t.Errorf("c3 fired at %v, want %v", got, epoch.Add(3*time.Minute))
	}
}

func TestVirtualAfterZeroFiresImmediately(t *testing.T) {
	v := NewVirtual(epoch)
	select {
	case got := <-v.After(0):
		if !got.Equal(epoch) {
			t.Errorf("fired at %v, want %v", got, epoch)
		}
	default:
		t.Error("After(0) did not fire immediately")
	}
}

func TestVirtualSleepWakesOnAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	done := make(chan struct{})
	go func() {
		v.Sleep(10 * time.Second)
		close(done)
	}()
	// Wait for the sleeper to register.
	for v.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(10 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not wake after Advance")
	}
}

func TestVirtualSameDeadlineFIFO(t *testing.T) {
	v := NewVirtual(epoch)
	const n = 8
	chans := make([]<-chan time.Time, n)
	for i := range chans {
		chans[i] = v.After(time.Second)
	}
	v.Advance(time.Second)
	for i, ch := range chans {
		select {
		case <-ch:
		default:
			t.Fatalf("timer %d did not fire", i)
		}
	}
}

func TestVirtualNextDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("NextDeadline should report none pending")
	}
	v.After(5 * time.Second)
	v.After(2 * time.Second)
	dl, ok := v.NextDeadline()
	if !ok || !dl.Equal(epoch.Add(2*time.Second)) {
		t.Fatalf("NextDeadline = %v,%v; want %v,true", dl, ok, epoch.Add(2*time.Second))
	}
}

func TestVirtualConcurrentAfter(t *testing.T) {
	v := NewVirtual(epoch)
	const n = 64
	var wg sync.WaitGroup
	fired := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-v.After(time.Duration(i%7+1) * time.Second)
			fired <- struct{}{}
		}(i)
	}
	for v.PendingTimers() < n {
		time.Sleep(time.Millisecond)
	}
	v.Advance(10 * time.Second)
	wg.Wait()
	if len(fired) != n {
		t.Fatalf("fired %d timers, want %d", len(fired), n)
	}
}

func TestVirtualSince(t *testing.T) {
	v := NewVirtual(epoch)
	start := v.Now()
	v.Advance(90 * time.Minute)
	if got := v.Since(start); got != 90*time.Minute {
		t.Fatalf("Since = %v, want 90m", got)
	}
}

func TestRealClockBasics(t *testing.T) {
	r := NewReal()
	before := time.Now()
	now := r.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Real.Now too far in past: %v < %v", now, before)
	}
	start := r.Now()
	r.Sleep(time.Millisecond)
	if r.Since(start) <= 0 {
		t.Fatal("Real.Since not positive after Sleep")
	}
	select {
	case <-r.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("Real.After never fired")
	}
}

func TestBlockUntilWaiters(t *testing.T) {
	v := NewVirtual(time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC))
	done := make(chan time.Time, 1)
	go func() {
		ch := v.After(time.Second)
		done <- <-ch
	}()
	v.BlockUntilWaiters(1) // returns once the goroutine has registered
	if v.PendingTimers() < 1 {
		t.Fatal("no pending timer after BlockUntilWaiters")
	}
	v.Advance(time.Second)
	if fired := <-done; !fired.Equal(v.Now()) {
		t.Fatalf("fired at %v, clock at %v", fired, v.Now())
	}
	v.BlockUntilWaiters(0) // zero waiters: returns immediately
}
