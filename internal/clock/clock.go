// Package clock provides a time source abstraction so that every
// simulation, staleness bound, and SLA window in SCADS can run against
// either the wall clock or a deterministic virtual clock.
//
// The virtual clock is the backbone of the reproduction: experiments
// such as the Animoto scale-up (three simulated days) complete in
// milliseconds of real time while preserving the exact ordering of
// timer events.
package clock

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout SCADS.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that receives the then-current time once
	// d has elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
	// Since returns the time elapsed since t on this clock.
	Since(t time.Time) time.Duration
}

// Real is a Clock backed by the operating system clock.
type Real struct{}

// NewReal returns a Clock that reads the wall clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() } //lint:wallclock-ok Real IS the sanctioned wall-clock adapter every other package injects

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) } //lint:wallclock-ok Real IS the sanctioned wall-clock adapter every other package injects

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) } //lint:wallclock-ok Real IS the sanctioned wall-clock adapter every other package injects

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) } //lint:wallclock-ok Real IS the sanctioned wall-clock adapter every other package injects

// Virtual is a deterministic, manually advanced Clock. Time moves only
// when Advance or AdvanceTo is called; timer channels fire in deadline
// order during the advance. Virtual is safe for concurrent use.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     int64
}

// NewVirtual returns a Virtual clock starting at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration {
	return v.Now().Sub(t)
}

// After implements Clock. The returned channel has capacity 1 so the
// advancing goroutine never blocks on delivery.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	defer v.mu.Unlock()
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.seq++
	heap.Push(&v.waiters, &waiter{at: v.now.Add(d), ch: ch, seq: v.seq})
	return ch
}

// Sleep implements Clock. It blocks until another goroutine advances
// the clock past the deadline.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// Advance moves the clock forward by d, firing every timer whose
// deadline falls within the window, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.AdvanceTo(v.Now().Add(d))
}

// AdvanceTo moves the clock forward to t (no-op if t is not after the
// current time), firing timers in deadline order.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.Before(v.now) {
		return
	}
	for len(v.waiters) > 0 && !v.waiters[0].at.After(t) {
		w := heap.Pop(&v.waiters).(*waiter)
		if w.at.After(v.now) {
			v.now = w.at
		}
		w.ch <- v.now
	}
	v.now = t
}

// BlockUntilWaiters spins until at least n timers are pending on the
// clock — the synchronisation point for tests that must let another
// goroutine reach its Sleep/After before calling Advance.
func (v *Virtual) BlockUntilWaiters(n int) {
	for v.PendingTimers() < n {
		runtime.Gosched()
	}
}

// PendingTimers reports how many timers are waiting to fire.
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}

// NextDeadline returns the earliest pending timer deadline and true,
// or the zero time and false when no timers are pending.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.waiters) == 0 {
		return time.Time{}, false
	}
	return v.waiters[0].at, true
}

type waiter struct {
	at  time.Time
	ch  chan time.Time
	seq int64
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h waiterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)   { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}
