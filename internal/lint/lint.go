package lint

import "scads/internal/lint/analysis"

// Production scope for the determinism pass: the packages whose
// outputs the e16 gate requires to be bit-identical across runs (the
// elastic control plane runs entirely on the virtual clock), plus the
// root-package files that host the hybrid elastic harness — their
// control-plane halves must stay deterministic, and their deliberate
// wall-clock data-plane uses carry reasoned suppressions.
var (
	DeterminismPackages = []string{
		"scads/internal/director",
		"scads/internal/mlmodel",
		"scads/internal/sla",
		"scads/internal/workload",
		"scads/internal/cloudsim",
		"scads/internal/sim",
		"scads/internal/clock",
		// The experiment-grid harness: fixed-seed rows must replay to
		// bit-identical runs.csv / summary_grouped.csv bytes, so no
		// wall-clock or unseeded randomness in parse/aggregate/report
		// paths (the Runner times repeats through an injected Clock).
		"scads/internal/expgrid",
		// The front-door admission controller: token-bucket refill and
		// hot-tenant windows run off the injected clock so the e18
		// shed-order gates replay deterministically.
		"scads/internal/admission",
	}
	DeterminismFiles = []string{
		"scads:autoscale.go",
		"scads:elastic.go",
	}

	// GobAllowedPackages is where encoding/gob survives: the e15
	// lockstep ablation that measures what the binary wire replaced.
	GobAllowedPackages = []string{"scads/cmd/scads-bench"}

	// RetryCheckedPackages are the coordinator packages bound by the
	// fence/unreachable retry contract (write.go, read.go,
	// rebalance.go live in the root package; router and scan paths in
	// internal/partition).
	RetryCheckedPackages = []string{"scads", "scads/internal/partition"}
)

// Analyzers returns the production-configured scads-vet suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NewDeterminism(DeterminismPackages, DeterminismFiles),
		NewNoGob(GobAllowedPackages),
		NewRPCRetry(RetryCheckedPackages),
		NewPanicDiscipline(),
		NewLockSafety(),
	}
}
