package lint

import (
	"testing"

	"scads/internal/lint/analysis"
	"scads/internal/lint/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, NewDeterminism([]string{"determ"}, nil), "determ")
}

// TestDeterminismFileScope checks the "pkgpath:basename" scoping used
// for the root package's elastic control-loop files: only scoped.go
// is examined.
func TestDeterminismFileScope(t *testing.T) {
	analysistest.Run(t, NewDeterminism(nil, []string{"determfiles:scoped.go"}), "determfiles")
}

func TestNoGob(t *testing.T) {
	analysistest.Run(t, NewNoGob([]string{"goballowed"}), "gobuser", "goballowed")
}

func TestRPCRetry(t *testing.T) {
	analysistest.Run(t, NewRPCRetry([]string{"retry"}), "retry")
}

func TestPanicDiscipline(t *testing.T) {
	analysistest.Run(t, NewPanicDiscipline(), "panics")
}

func TestLockSafety(t *testing.T) {
	analysistest.Run(t, NewLockSafety(), "locks")
}

// TestTreeClean runs every production analyzer over the whole module:
// the scads-vet gate enforced from go test itself, so a violation
// fails tier-1 even before CI runs the binary.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{}, "scads/...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, a := range Analyzers() {
		for _, pkg := range pkgs {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				t.Fatalf("%s: %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				t.Errorf("%s", d)
			}
		}
	}
}
