package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"scads/internal/lint/analysis"
)

// NewPanicDiscipline builds the panicdiscipline analyzer. The repo's
// contract (PR 2's panic audit): library code never panics on dynamic
// data — a panic is legal only when its argument is a compile-time
// constant (programmer-error assertions like "unreachable") or inside
// a Must* function, the regexp.MustCompile convention for statically
// known inputs (keycodec.MustEncode, consistency.MustParse,
// query.MustParse). Everything reached by caller- or wire-supplied
// values must return an error. Re-panicking a recovered value is
// allowed (the goroutine-join idiom).
//
// Suppression key: "panic".
func NewPanicDiscipline() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "panicdiscipline",
		Doc:  "panic on non-constant data is only legal inside Must* functions",
		Keys: []string{"panic"},
	}
	a.Run = func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				fd, ok := n.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					return true
				}
				checkPanics(pass, fd)
				return true
			})
		}
		pass.CheckUnusedSuppressions(pass.Files)
		return nil
	}
	return a
}

func checkPanics(pass *analysis.Pass, fd *ast.FuncDecl) {
	if strings.HasPrefix(fd.Name.Name, "Must") {
		return
	}
	// Objects assigned from recover(): re-panicking them propagates a
	// failure that already happened, it does not originate one.
	recovered := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "recover" {
			return true
		}
		if obj := assignedObject(pass, as.Lhs[0]); obj != nil {
			recovered[obj] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
			return true
		}
		arg := call.Args[0]
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
			return true // compile-time constant: a static assertion
		}
		if argID, ok := arg.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[argID]; obj != nil && recovered[obj] {
				return true // re-panic of a recovered value
			}
		}
		pass.Report(call.Pos(), "panic",
			"panic on non-constant data outside a Must* function: return an error (dynamic inputs must never panic library code)")
		return true
	})
}
