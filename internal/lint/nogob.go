package lint

import (
	"strconv"

	"scads/internal/lint/analysis"
)

// NewNoGob builds the nogob analyzer: encoding/gob must not be
// imported anywhere except the packages in allowed. PR 5 removed gob
// from every hot path (reflection-driven encode/decode, per-stream
// type dictionaries, lockstep framing); the only survivor is the e15
// lockstep ablation in cmd/scads-bench, kept as the measured
// baseline the binary wire codec is gated against. A gob import
// creeping back in anywhere else silently reintroduces the exact
// bottleneck e15 exists to prevent.
//
// Suppression key: "gob".
func NewNoGob(allowed []string) *analysis.Analyzer {
	allowedSet := stringSet(allowed)
	a := &analysis.Analyzer{
		Name: "nogob",
		Doc:  "forbids encoding/gob imports outside the e15 lockstep ablation (cmd/scads-bench)",
		Keys: []string{"gob"},
	}
	a.Run = func(pass *analysis.Pass) error {
		if allowedSet[pass.Pkg.Path()] {
			return nil
		}
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || path != "encoding/gob" {
					continue
				}
				pass.Report(imp.Pos(), "gob",
					"encoding/gob import outside the e15 lockstep ablation: use the binary wire codec (internal/rpc/wire.go) or the row/record codecs")
			}
		}
		pass.CheckUnusedSuppressions(pass.Files)
		return nil
	}
	return a
}
