package determfiles

import "time"

// unscopedNow sits outside the analyzer's file scope: not examined,
// not flagged.
func unscopedNow() time.Time {
	return time.Now()
}
