// Package determfiles is scoped file-by-file: only scoped.go is in
// the determinism analyzer's file list.
package determfiles

import "time"

func scopedNow() time.Time {
	return time.Now() // want `time\.Now in a deterministic control-plane package`
}
