// Package locks exercises the locksafety analyzer: copies of
// lock-bearing values and Lock calls with no same-function release.
package locks

import "sync"

// Guarded couples a mutex with the data it guards.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// RW guards with a read-write lock.
type RW struct {
	mu sync.RWMutex
	n  int
}

// A value receiver copies the mutex on every call.
func (g Guarded) byValue() int { // want `receiver passes lock-bearing`
	return g.n
}

// The pointer receiver is the correct shape, and the lock/defer pair
// satisfies deferunlock.
func (g *Guarded) byPointer() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// A by-value parameter copies the caller's mutex into the frame.
func param(g Guarded) int { // want `parameter passes lock-bearing`
	return g.n
}

// Dereferencing into a new variable copies the lock.
func deref(g *Guarded) int {
	cp := *g // want `assignment copies lock-bearing`
	return cp.n
}

// Ranging by value copies each element's mutex per iteration.
func rangeCopy(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want `range copies a lock-bearing value per iteration`
		total += g.n
	}
	return total
}

// Ranging over indices touches no lock.
func rangeIndex(gs []Guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

// A composite literal is a birth, not a copy.
func fresh() *Guarded {
	g := Guarded{n: 1}
	return &g
}

// leak takes the lock with no release path in this function.
func (g *Guarded) leak() {
	g.mu.Lock() // want `g\.mu\.Lock\(\) with no g\.mu\.Unlock\(\)`
	g.n++
}

// rleak releases the wrong side of the RWMutex.
func (r *RW) rleak() int {
	r.mu.RLock() // want `r\.mu\.RLock\(\) with no r\.mu\.RUnlock\(\)`
	n := r.n
	r.mu.Unlock()
	return n
}

// read pairs RLock with a deferred RUnlock: fine.
func (r *RW) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}

// handoff deliberately leaves the lock held; the suppression reason
// says who releases it.
func (g *Guarded) handoff() {
	g.mu.Lock() //lint:deferunlock-ok fixture: released by the caller via byPointer's defer
	g.n++
}
