// Package goballowed stands in for cmd/scads-bench: it is on the
// nogob allowlist, so its gob import is legal.
package goballowed

import (
	"bytes"
	"encoding/gob"
)

// Encode round-trips v through gob so the import is used.
func Encode(v int) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
