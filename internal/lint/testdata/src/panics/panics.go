// Package panics exercises the panicdiscipline analyzer.
package panics

import "fmt"

// A constant panic is a static programmer-error assertion: legal
// anywhere.
func unreachable(x int) int {
	switch x {
	case 0:
		return 1
	default:
		panic("unreachable")
	}
}

// A dynamic panic outside Must* puts caller data on the panic path.
func parse(s string) int {
	if s == "" {
		panic(fmt.Sprintf("bad input %q", s)) // want `panic on non-constant data outside a Must\* function`
	}
	return len(s)
}

// MustParse follows the regexp.MustCompile convention: panicking on
// dynamic data is its contract.
func MustParse(s string) int {
	if s == "" {
		panic(fmt.Sprintf("bad input %q", s))
	}
	return len(s)
}

// rethrow re-panics a recovered value: propagation of a failure that
// already happened, not origination.
func rethrow(f func()) {
	defer func() {
		if r := recover(); r != nil {
			panic(r)
		}
	}()
	f()
}
