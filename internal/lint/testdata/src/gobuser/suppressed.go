package gobuser

import (
	gob2 "encoding/gob" //lint:gob-ok fixture: a reasoned suppression keeps this import
)

var _ = gob2.NewEncoder
