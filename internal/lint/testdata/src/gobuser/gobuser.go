// Package gobuser imports encoding/gob outside the allowlist.
package gobuser

import (
	"bytes"
	"encoding/gob" // want `encoding/gob import outside the e15 lockstep ablation`
)

// Encode round-trips v through gob so the import is used.
func Encode(v int) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
