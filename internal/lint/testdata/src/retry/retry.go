// Package retry exercises the rpcretry analyzer against the real
// scads/internal/rpc types: transport errors and fence-capable node
// errors must flow through the shared classifiers before escaping.
package retry

import (
	"errors"

	"scads/internal/rpc"
)

// Result mimics a coordinator result struct carrying an error field.
type Result struct {
	Err error
}

// rawReturn surfaces a transport error unclassified.
func rawReturn(t rpc.Transport, addr string) error {
	_, err := t.Call(addr, rpc.Request{Method: rpc.MethodGet})
	return err // want `transport Call error "err" escapes via return`
}

// classifiedReturn tests the error through the shared taxonomy; the
// default branch may then surface it raw (the retry-loop idiom).
func classifiedReturn(t rpc.Transport, addr string) error {
	for i := 0; i < 3; i++ {
		_, err := t.Call(addr, rpc.Request{Method: rpc.MethodPut})
		if err == nil {
			return nil
		}
		if !rpc.IsUnreachable(err) {
			return err
		}
	}
	return errors.New("out of retries")
}

// structEscape leaks the raw transport error through a result field.
func structEscape(t rpc.Transport, addr string) Result {
	_, err := t.Call(addr, rpc.Request{Method: rpc.MethodPut})
	return Result{Err: err} // want `transport Call error "err" escapes via a struct field`
}

// respErrorFenced returns a fence-capable node error verbatim: the
// caller sees ErrFenced instead of the handoff being waited out.
func respErrorFenced(t rpc.Transport, addr string, key, val []byte) error {
	resp, _ := t.Call(addr, rpc.Request{Method: rpc.MethodPut, Key: key, Value: val})
	return resp.Error() // want `raw Response\.Error\(\) returned from a fence-capable path`
}

// assignedRespError binds the node error first; still an escape.
func assignedRespError(t rpc.Transport, addr string, key []byte) error {
	resp, _ := t.Call(addr, rpc.Request{Method: rpc.MethodDelete, Key: key})
	nerr := resp.Error()
	return nerr // want `node response error from a fence-capable method "nerr" escapes via return`
}

// dynamicMethod carries a caller-chosen method: assumed the worst,
// fence-capable.
func dynamicMethod(t rpc.Transport, addr, method string) error {
	resp, _ := t.Call(addr, rpc.Request{Method: method})
	return resp.Error() // want `raw Response\.Error\(\) returned from a fence-capable path`
}

// fenceOnlyClassified routes the node error through the fence family
// but never the overload family: a node shedding under its handler
// bound would surface as a raw failure instead of a retry-after wait.
func fenceOnlyClassified(t rpc.Transport, addr string, key []byte) error {
	resp, _ := t.Call(addr, rpc.Request{Method: rpc.MethodPut, Key: key})
	nerr := resp.Error()
	if nerr == nil || rpc.IsFenced(nerr) {
		return nil
	}
	return nerr // want `node response error from a fence-capable method "nerr" escapes via return without overload classification`
}

// fullyClassified tests the node error through both families; the
// default branch may then surface it raw (the retry-loop idiom).
func fullyClassified(t rpc.Transport, addr string, key []byte) error {
	resp, _ := t.Call(addr, rpc.Request{Method: rpc.MethodPut, Key: key})
	nerr := resp.Error()
	if nerr == nil || rpc.IsFenced(nerr) || rpc.IsOverloaded(nerr) {
		return nil
	}
	return nerr
}

// respErrorGet surfaces a point-get's semantic error verbatim: point
// gets are never fenced, so the node error is the real answer.
func respErrorGet(t rpc.Transport, addr string, key []byte) error {
	resp, _ := t.Call(addr, rpc.Request{Method: rpc.MethodGet, Key: key})
	return resp.Error()
}

// suppressedPrimitive is a delivery primitive whose callers own the
// retry budget; the suppression says so.
func suppressedPrimitive(t rpc.Transport, addr string) error {
	_, err := t.Call(addr, rpc.Request{Method: rpc.MethodPut})
	return err //lint:rpcretry-ok fixture: the caller owns the retry budget
}
