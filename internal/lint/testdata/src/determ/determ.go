// Package determ exercises the determinism analyzer: wall-clock
// reads, ambient randomness, and map-order-dependent accumulation.
package determ

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now in a deterministic control-plane package`
}

func sleeper(d time.Duration) {
	time.Sleep(d) // want `time\.Sleep in a deterministic control-plane package`
}

// Methods that merely share a forbidden name (time.Time.After, an
// injected clock's Now) are fine: only the package-level time
// functions read the wall clock.
func methodOK(t, u time.Time) bool {
	return t.After(u)
}

func randGlobal() float64 {
	return rand.Float64() // want `global math/rand state \(rand\.Float64\)`
}

// A caller-seeded generator is the sanctioned route, both the
// constructors and the draws on the instance.
func randSeeded() float64 {
	r := rand.New(rand.NewSource(1))
	return r.Float64()
}

func orderedOutput(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order reaches ordered output \(append to "out"`
		out = append(out, k)
	}
	return out
}

// A later sort imposes the order explicitly, absolving the append.
func sortedAfter(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `float accumulation \(sum \+=\) inside map iteration is order-dependent`
		sum += v
	}
	return sum
}

// Integer accumulation is associative: any order sums the same.
func intSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func stringConcat(m map[string]string) string {
	out := ""
	for _, v := range m { // want `string accumulation \(out \+=\) inside map iteration is order-dependent`
		out += v
	}
	return out
}

// An accumulator local to one iteration never sees the map order.
func perKeySums(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		total := 0.0
		for _, v := range vs {
			total += v
		}
		if total > 1 {
			n++
		}
	}
	return n
}
