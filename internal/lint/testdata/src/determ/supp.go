package determ

import "time"

// A reasoned suppression silences the finding outright.
func suppressedWithReason() time.Time {
	return time.Now() //lint:wallclock-ok fixture: deliberately wall-clock
}

// A bare suppression is itself a finding: the gate stays red until
// the reason is written down.
func suppressedBare() time.Time {
	return time.Now() //lint:wallclock-ok // want `bare //lint:wallclock-ok suppression: state the reason`
}

// A suppression that silences nothing is stale and flagged where it
// stands.
func nothingToSilence() int {
	//lint:wallclock-ok stale: the line below never reads the clock // want `unused //lint:wallclock-ok suppression`
	return 1
}
