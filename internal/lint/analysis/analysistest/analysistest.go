// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its diagnostics against `// want` comments,
// mirroring golang.org/x/tools/go/analysis/analysistest (which the
// offline build environment cannot fetch).
//
// A fixture line expecting diagnostics carries a trailing comment
//
//	time.Now() // want `time\.Now`
//
// with one Go-quoted (backquoted or double-quoted) regexp per
// expected diagnostic on that line. Every diagnostic must be matched
// by a want pattern on its line and every want pattern must match a
// diagnostic: unexpected and missing findings both fail the test.
// Fixture packages may import the real module ("scads/internal/rpc")
// so analyzers that key on its types are tested against the genuine
// articles.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"scads/internal/lint/analysis"
)

// Run loads each fixture package (a directory name under
// testdata/src) with the analyzer's production loader, runs the
// analyzer, and diffs diagnostics against the fixtures' want
// comments.
func Run(t *testing.T, a *analysis.Analyzer, fixturePkgs ...string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	fixtureRoot := filepath.Join(cwd, "testdata", "src")
	modRoot, modPath, err := findModuleFrom(cwd)
	if err != nil {
		t.Fatal(err)
	}
	cfg := analysis.LoadConfig{ModPath: modPath, ModRoot: modRoot, FixtureRoot: fixtureRoot}
	for _, fixture := range fixturePkgs {
		dir := filepath.Join(fixtureRoot, fixture)
		pkgs, err := analysis.Load(cfg, dir)
		if err != nil {
			t.Fatalf("%s: load: %v", fixture, err)
		}
		if len(pkgs) != 1 {
			t.Fatalf("%s: loaded %d packages, want 1", fixture, len(pkgs))
		}
		diags, err := analysis.Run(a, pkgs[0])
		if err != nil {
			t.Fatalf("%s: run: %v", fixture, err)
		}
		checkWants(t, fixture, dir, diags)
	}
}

func findModuleFrom(dir string) (root, path string, err error) {
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

type wantEntry struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

// checkWants parses want comments from every fixture file and diffs.
func checkWants(t *testing.T, fixture, dir string, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*wantEntry) // "file:line" -> expectations
	fset := token.NewFileSet()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fname := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, fname, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", fname, pos.Line)
				for _, raw := range splitQuoted(t, fname, pos.Line, m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", fname, pos.Line, raw, err)
					}
					wants[key] = append(wants[key], &wantEntry{re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s: %s", fixture, d.Pos, d.Message)
		}
	}
	for key, entries := range wants {
		for _, w := range entries {
			if !w.matched {
				t.Errorf("%s: no diagnostic at %s matching %q", fixture, key, w.raw)
			}
		}
	}
}

// splitQuoted parses the sequence of Go-quoted strings after `// want`:
// `rx` "rx" `rx2` ...
func splitQuoted(t *testing.T, fname string, line int, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s:%d: want arguments must be quoted or backquoted regexps, got %q", fname, line, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want regexp: %s", fname, line, s)
		}
		token := s[:end+2]
		if quote == '"' {
			unq, err := strconv.Unquote(token)
			if err != nil {
				t.Fatalf("%s:%d: bad quoted want regexp %s: %v", fname, line, token, err)
			}
			out = append(out, unq)
		} else {
			out = append(out, token[1:len(token)-1])
		}
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}
