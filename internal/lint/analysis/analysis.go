// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: enough Analyzer / Pass /
// Diagnostic machinery to write typed static checks against this
// module without any dependency outside the standard library (the
// build environment is offline, so x/tools itself is not available).
//
// The shape deliberately mirrors the real framework — an Analyzer is
// a named Run function over a Pass carrying the package's syntax,
// type information, and a Report method — so the analyzers in
// internal/lint port mechanically to x/tools if the dependency ever
// becomes available.
//
// Suppressions. A finding can be silenced in place with a line
// comment of the form
//
//	rec.process() //lint:KEY-ok the reason this is deliberate
//
// on the flagged line or alone on the line directly above it, where
// KEY is the finding's suppression key (each analyzer documents its
// keys). The reason string is mandatory: a bare suppression is itself
// reported as a finding, so the vet gate fails on any suppression
// that does not explain why the invariant may be broken there. A
// suppression that silences nothing is reported as unused, so stale
// escapes cannot accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph description printed by scads-vet -list.
	Doc string
	// Keys lists the suppression keys this analyzer honours (for most
	// analyzers a single key equal to Name).
	Keys []string
	// Run executes the check against one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned and ready to print.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	suppressions map[suppKey]*suppression
	diags        []Diagnostic
}

type suppKey struct {
	file string
	line int
}

type suppression struct {
	key    string // "wallclock" in //lint:wallclock-ok
	reason string
	pos    token.Position
	used   bool
}

var suppRe = regexp.MustCompile(`^//lint:([a-z]+)-ok(?:[ \t]+(.*))?$`)

// newPass builds a Pass and indexes its suppression comments.
func newPass(a *Analyzer, pkg *Package) *Pass {
	p := &Pass{
		Analyzer:     a,
		Fset:         pkg.Fset,
		Files:        pkg.Files,
		Pkg:          pkg.Types,
		TypesInfo:    pkg.TypesInfo,
		suppressions: make(map[suppKey]*suppression),
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := suppRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				reason := strings.TrimSpace(m[2])
				// A trailing line comment after the suppression (the
				// fixture idiom `//lint:gob-ok x // want "..."`)
				// belongs to the next reader, not to the reason.
				if i := strings.Index(reason, "//"); i >= 0 {
					reason = strings.TrimSpace(reason[:i])
				}
				pos := p.Fset.Position(c.Pos())
				p.suppressions[suppKey{pos.Filename, pos.Line}] = &suppression{
					key:    m[1],
					reason: reason,
					pos:    pos,
				}
			}
		}
	}
	return p
}

// Report records a finding with suppression key key at pos. If the
// flagged line (or the line above) carries a matching reasoned
// //lint:KEY-ok comment the finding is silenced; a matching bare
// suppression turns the finding into a missing-reason finding
// instead, so it still fails the gate.
func (p *Pass) Report(pos token.Pos, key, format string, args ...any) {
	where := p.Fset.Position(pos)
	if s := p.suppressionFor(where, key); s != nil {
		s.used = true
		if s.reason == "" {
			p.diags = append(p.diags, Diagnostic{
				Pos:      where,
				Analyzer: p.Analyzer.Name,
				Message: fmt.Sprintf(
					"bare //lint:%s-ok suppression: state the reason the invariant may be broken here (suppressed finding: %s)",
					key, fmt.Sprintf(format, args...)),
			})
		}
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      where,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) suppressionFor(where token.Position, key string) *suppression {
	for _, line := range []int{where.Line, where.Line - 1} {
		if s, ok := p.suppressions[suppKey{where.Filename, line}]; ok && s.key == key {
			return s
		}
	}
	return nil
}

// CheckUnusedSuppressions reports every suppression comment in files
// that carries one of the analyzer's keys but silenced nothing.
// Analyzers call it at the end of Run with the files they actually
// examined (scoped analyzers skip files, and a suppression in a
// skipped file is not stale — it is simply out of scope).
func (p *Pass) CheckUnusedSuppressions(files []*ast.File) {
	keys := make(map[string]bool, len(p.Analyzer.Keys))
	for _, k := range p.Analyzer.Keys {
		keys[k] = true
	}
	examined := make(map[string]bool, len(files))
	for _, f := range files {
		examined[p.Fset.Position(f.Package).Filename] = true
	}
	var stale []*suppression
	for _, s := range p.suppressions {
		if keys[s.key] && !s.used && examined[s.pos.Filename] {
			stale = append(stale, s)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return posLess(stale[i].pos, stale[j].pos) })
	for _, s := range stale {
		p.diags = append(p.diags, Diagnostic{
			Pos:      s.pos,
			Analyzer: p.Analyzer.Name,
			Message:  fmt.Sprintf("unused //lint:%s-ok suppression: nothing to silence here, delete it", s.key),
		})
	}
}

// Run executes one analyzer over one loaded package and returns its
// findings sorted by position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	p := newPass(a, pkg)
	if err := a.Run(p); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sort.Slice(p.diags, func(i, j int) bool { return posLess(p.diags[i].Pos, p.diags[j].Pos) })
	return p.diags, nil
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}
