package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string // import path ("scads/internal/rpc")
	Dir       string // absolute directory
	Fset      *token.FileSet
	Files     []*ast.File // non-test files, in stable filename order
	Types     *types.Package
	TypesInfo *types.Info
}

// LoadConfig locates source for the importer. The zero value is
// completed by Load: ModRoot defaults to the enclosing module of the
// working directory and ModPath to its module path.
type LoadConfig struct {
	ModPath string // module path of the primary module
	ModRoot string // its root directory
	// FixtureRoot, when set, resolves single-segment import paths
	// ("a", "retryfix") against this directory — the analysistest
	// testdata/src universe. The primary module and the standard
	// library stay importable from fixtures.
	FixtureRoot string
}

// Load type-checks the packages matched by patterns and returns them
// in stable import-path order. Patterns are directories relative to
// the working directory ("./internal/rpc"), recursive forms
// ("./...", "./internal/..."), or import paths within the module.
// Test files are not loaded: the vet gate covers shipped code.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if cfg.ModRoot == "" {
		root, path, err := findModule()
		if err != nil {
			return nil, err
		}
		cfg.ModRoot, cfg.ModPath = root, path
	}
	l := newLoader(cfg)
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil { // directories with no non-test Go files are skipped
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// findModule walks up from the working directory to go.mod.
func findModule() (root, path string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

type loader struct {
	cfg  LoadConfig
	fset *token.FileSet
	std  types.Importer            // source-based stdlib importer
	pkgs map[string]*Package       // import path -> loaded module/fixture package
	busy map[string]bool           // import cycle guard
	stdc map[string]*types.Package // stdlib cache
}

func newLoader(cfg LoadConfig) *loader {
	fset := token.NewFileSet()
	return &loader{
		cfg:  cfg,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*Package),
		busy: make(map[string]bool),
		stdc: make(map[string]*types.Package),
	}
}

// expand resolves patterns to package directories (absolute, deduped,
// sorted).
func (l *loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			if l.cfg.ModPath != "" && (pat == l.cfg.ModPath || strings.HasPrefix(pat, l.cfg.ModPath+"/")) {
				dir = filepath.Join(l.cfg.ModRoot, strings.TrimPrefix(strings.TrimPrefix(pat, l.cfg.ModPath), "/"))
			} else {
				dir = filepath.Join(cwd, pat)
			}
		}
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("pattern %q: no such directory %s", pat, dir)
		}
		if !recursive {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// goFiles lists the directory's non-test Go files in sorted order,
// honouring build constraints (//go:build lines and GOOS/GOARCH
// filename suffixes) for the host platform — without this, paired
// files like writev_linux.go / writev_other.go would both load and
// redeclare each other's symbols.
func goFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// pathForDir maps a directory under a known root to its import path.
func (l *loader) pathForDir(dir string) (string, error) {
	// FixtureRoot first: testdata/src lives inside the module, and a
	// fixture package's identity is its single-segment path.
	for _, root := range []struct{ prefix, dir string }{
		{"", l.cfg.FixtureRoot},
		{l.cfg.ModPath, l.cfg.ModRoot},
	} {
		if root.dir == "" {
			continue
		}
		rel, err := filepath.Rel(root.dir, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		if rel == "." {
			return root.prefix, nil
		}
		return strings.TrimPrefix(root.prefix+"/"+filepath.ToSlash(rel), "/"), nil
	}
	return "", fmt.Errorf("directory %s is outside the module", dir)
}

func (l *loader) dirForPath(path string) (string, bool) {
	if l.cfg.ModPath != "" && (path == l.cfg.ModPath || strings.HasPrefix(path, l.cfg.ModPath+"/")) {
		return filepath.Join(l.cfg.ModRoot, strings.TrimPrefix(strings.TrimPrefix(path, l.cfg.ModPath), "/")), true
	}
	if l.cfg.FixtureRoot != "" && !strings.Contains(path, ".") {
		dir := filepath.Join(l.cfg.FixtureRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// loadDir parses and type-checks the package in dir (nil if the
// directory holds no non-test Go files).
func (l *loader) loadDir(dir string) (*Package, error) {
	path, err := l.pathForDir(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPath(path, dir)
}

func (l *loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, nil
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importerFunc(l.importPath)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, TypesInfo: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importPath resolves an import for the type checker: module and
// fixture packages are type-checked from source recursively; anything
// else is treated as standard library and handed to the source
// importer.
func (l *loader) importPath(path string) (*types.Package, error) {
	if dir, ok := l.dirForPath(path); ok {
		pkg, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("no Go files in %s", dir)
		}
		return pkg.Types, nil
	}
	if p, ok := l.stdc[path]; ok {
		return p, nil
	}
	p, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.stdc[path] = p
	return p, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
