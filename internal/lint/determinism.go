// Package lint holds the scads-vet analyzers: mechanical enforcement
// of the correctness invariants earlier PRs established by
// convention. See ARCHITECTURE.md "Static invariants" for the
// contract each analyzer guards and how to suppress a finding.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"scads/internal/lint/analysis"
)

// Wall-clock and ambient-randomness functions forbidden in the
// deterministic control-plane packages. Everything time-dependent
// there must flow through an injected clock.Clock (virtual in
// simulations and experiments) and every random draw through a
// caller-seeded *rand.Rand, or the e16 bit-identical-metrics gate is
// one innocent call away from flaking.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// NewDeterminism builds the determinism analyzer. packages are the
// import paths checked in full; files are additional "pkgpath:base"
// entries for individual files of otherwise-unscoped packages (the
// root package's elastic control-loop files).
//
// Suppression keys: "wallclock" for time/randomness findings
// (the sanctioned real-clock adapter and deliberately wall-clock data
// planes), "maporder" for map-iteration-order findings.
func NewDeterminism(packages, files []string) *analysis.Analyzer {
	pkgSet := stringSet(packages)
	fileSet := stringSet(files)
	a := &analysis.Analyzer{
		Name: "determinism",
		Doc: "forbids wall-clock reads (time.Now/Since/Sleep/After/...), global math/rand state, " +
			"and map iteration feeding ordered or floating-point-accumulated output " +
			"in the deterministic control-plane packages",
		Keys: []string{"wallclock", "maporder"},
	}
	a.Run = func(pass *analysis.Pass) error {
		var examined []*ast.File
		for _, f := range pass.Files {
			base := pass.Fset.Position(f.Package).Filename
			if i := strings.LastIndexByte(base, '/'); i >= 0 {
				base = base[i+1:]
			}
			if !pkgSet[pass.Pkg.Path()] && !fileSet[pass.Pkg.Path()+":"+base] {
				continue
			}
			examined = append(examined, f)
			checkWallClock(pass, f)
			checkMapOrder(pass, f)
		}
		pass.CheckUnusedSuppressions(examined)
		return nil
	}
	return a
}

func stringSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

// checkWallClock flags every use (call or value reference) of a
// forbidden time function or of math/rand package-level state.
func checkWallClock(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return true // methods (time.Time.After, clock.Clock.Now) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			if forbiddenTimeFuncs[fn.Name()] {
				pass.Report(sel.Pos(), "wallclock",
					"time.%s in a deterministic control-plane package: inject a clock.Clock instead", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			// Constructors for explicitly seeded generators are the
			// sanctioned route; everything else draws from ambient
			// process-global state.
			if !strings.HasPrefix(fn.Name(), "New") {
				pass.Report(sel.Pos(), "wallclock",
					"global math/rand state (rand.%s) in a deterministic control-plane package: draw from a caller-seeded *rand.Rand", fn.Name())
			}
		}
		return true
	})
}

// checkMapOrder flags range-over-map loops whose iteration order
// leaks into results: appending to a slice declared outside the loop
// (ordered output) unless the function later sorts it, and compound
// float/string accumulation (neither is associative, so the sum or
// concatenation is bit-dependent on map order).
func checkMapOrder(pass *analysis.Pass, f *ast.File) {
	// Walk function by function so absolution (a later sort call) can
	// be resolved within the enclosing function body.
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil {
			checkMapOrderFunc(pass, body)
		}
		return true
	})
}

func checkMapOrderFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	sorted := sortedObjects(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		reported := false
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			if reported {
				return false
			}
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch as.Tok {
			case token.ASSIGN, token.DEFINE:
				// s = append(s, ...) where s outlives the loop: the
				// element order is the map's iteration order.
				for i, rhs := range as.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass, call) || len(call.Args) == 0 || i >= len(as.Lhs) {
						continue
					}
					obj := exprObject(pass, as.Lhs[i])
					if obj == nil || !declaredOutside(obj, rs) {
						continue
					}
					if sorted[obj] {
						continue // function sorts it afterwards
					}
					pass.Report(rs.Pos(), "maporder",
						"map iteration order reaches ordered output (append to %q with no later sort): iterate sorted keys or sort the result", obj.Name())
					reported = true
					return false
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				// Float accumulation is not associative: summing in map
				// order makes the low bits run-dependent. String +=
				// concatenates in map order outright.
				lhs := as.Lhs[0]
				bt, ok := pass.TypesInfo.TypeOf(lhs).(*types.Basic)
				if !ok {
					return true
				}
				info := bt.Info()
				if info&types.IsFloat == 0 && (as.Tok != token.ADD_ASSIGN || info&types.IsString == 0) {
					return true
				}
				if obj := exprObject(pass, lhs); obj != nil && !declaredOutside(obj, rs) {
					return true // accumulator local to one iteration
				}
				kind := "float"
				if info&types.IsString != 0 {
					kind = "string"
				}
				pass.Report(rs.Pos(), "maporder",
					"%s accumulation (%s) inside map iteration is order-dependent: iterate sorted keys", kind, exprString(pass.Fset, lhs)+" "+as.Tok.String())
				reported = true
				return false
			}
			return true
		})
		return true
	})
}

// sortedObjects collects objects passed to a sort.*/slices.Sort* call
// anywhere in the function: their final order is imposed explicitly,
// so map-order appends into them are fine.
func sortedObjects(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
				arg = u.X
			}
			if obj := exprObject(pass, arg); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// exprObject resolves the variable object a simple lvalue refers to
// (x, s.f — resolved to the root identifier's object for field
// selectors so `up.Rate += v` tracks `up`).
func exprObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[v]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration lies outside the
// range statement (so writes to it survive the loop).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}
