package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"scads/internal/lint/analysis"
)

// rpcPkgPath is the transport package whose Request/Response/error
// taxonomy the retry contract is written against.
const rpcPkgPath = "scads/internal/rpc"

// fenceCapableMethods are the RPC methods a storage node may answer
// with ErrFenced (writes, applies, scans, and the migration verbs) or
// whose failure the coordinator must wait out under the shared
// down-retry budget. Point gets are never fenced (fences gate writes
// and range scans only), so read-only helpers may surface a node's
// semantic error verbatim.
var fenceCapableMethods = map[string]bool{
	"put": true, "delete": true, "apply": true, "scan": true,
	"droprange": true, "rangesnap": true, "rangedelta": true, "rangefence": true,
}

// classifierNames are the shared helpers that consume or classify a
// transport error (fence/unreachable taxonomy + retry budgets). A
// function that tests its transport error with one of these is
// considered to route the error through the shared contract.
var classifierNames = map[string]bool{
	"IsFenced":      true,
	"IsUnreachable": true,
	"IsUnavailable": true,
	"Is":            true, // errors.Is(err, rpc.ErrFenced) etc.
}

// overloadClassifierNames are the helpers that classify backpressure
// (rpc.ErrOverloaded with its retry-after hint). Wherever ErrFenced
// classification is required — node response errors on fence-capable
// paths — the overload taxonomy is required too: a node that sheds
// under its handler bound answers exactly where a fence would, and an
// unclassified shed turns backpressure into a client-visible failure.
var overloadClassifierNames = map[string]bool{
	"IsOverloaded": true,
	"Is":           true, // errors.Is(err, rpc.ErrOverloaded)
}

// NewRPCRetry builds the rpcretry analyzer for the coordinator
// packages in packages. The invariant (PRs 2–3): coordinator
// write/read/scan paths must never surface a raw transport error —
// ErrFenced means "wait out the handoff under rpc.FenceRetryLimit",
// unreachable means "wait out failure detection + failover under
// rpc.DownRetryBudget". A call site that can observe those errors and
// returns them unclassified turns a delay-only contract into a
// client-visible failure.
//
// Mechanically: inside the scoped packages, an error born from a
// transport Call (signature func(string, rpc.Request) (rpc.Response,
// error)) — or from Response.Error() in a function that builds
// fence-capable requests — must be passed to one of the shared
// classifiers (rpc.IsFenced / rpc.IsUnreachable /
// partition.IsUnavailable / errors.Is) somewhere in the same function
// before it may escape through a return statement or a struct field.
//
// Suppression key: "rpcretry" (for delivery primitives whose callers
// own the budget — say so in the reason).
func NewRPCRetry(packages []string) *analysis.Analyzer {
	pkgSet := stringSet(packages)
	a := &analysis.Analyzer{
		Name: "rpcretry",
		Doc: "coordinator paths must classify transport errors (ErrFenced/unreachable/ErrOverloaded) through " +
			"the shared retry-budget helpers instead of returning them raw",
		Keys: []string{"rpcretry"},
	}
	a.Run = func(pass *analysis.Pass) error {
		if !pkgSet[pass.Pkg.Path()] {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				fd, ok := n.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					return true
				}
				checkRetryFunc(pass, fd)
				return true
			})
		}
		pass.CheckUnusedSuppressions(pass.Files)
		return nil
	}
	return a
}

func checkRetryFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	fenceCapable := buildsFenceCapableRequest(pass, fd.Body)

	// Pass 1: find the tracked error variables — transport-call errors
	// always, Response.Error() results only where fence-capable
	// requests are built in this function.
	tracked := make(map[types.Object]string) // object -> birth description
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isTransportCall(pass, call) && len(as.Lhs) == 2:
			if obj := assignedObject(pass, as.Lhs[1]); obj != nil {
				tracked[obj] = "transport Call error"
			}
		case fenceCapable && isResponseError(pass, call) && len(as.Lhs) == 1:
			if obj := assignedObject(pass, as.Lhs[0]); obj != nil {
				tracked[obj] = trackedRespError
			}
		}
		return true
	})

	// Pass 2: a classifier call anywhere in the function absolves the
	// variable it inspects (the retry-loop idiom tests the error and
	// loops; the default branch may then return it raw). Fence and
	// overload are separate families: node response errors on
	// fence-capable paths must be routed through both.
	classified := make(map[types.Object]bool)
	overloadClassified := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		legacy := isClassifierCall(pass, call, classifierNames)
		overload := isClassifierCall(pass, call, overloadClassifierNames)
		if !legacy && !overload {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && tracked[obj] != "" {
					if legacy {
						classified[obj] = true
					}
					if overload {
						overloadClassified[obj] = true
					}
				}
			}
		}
		return true
	})

	// Pass 3: report escapes of unclassified tracked errors. Overload
	// classification is demanded only of node response errors on
	// fence-capable paths — that is where ErrOverloaded arrives
	// (transport-level failures are the unreachable taxonomy).
	escape := func(id *ast.Ident, obj types.Object, how string) {
		needsOverload := tracked[obj] == trackedRespError
		switch {
		case classified[obj] && (!needsOverload || overloadClassified[obj]):
			return
		case classified[obj]:
			pass.Report(id.Pos(), "rpcretry",
				"%s %q escapes %s without overload classification: fence-capable paths must also route it through rpc.IsOverloaded and honor the retry-after hint (or suppress with the reason callers own the budget)",
				tracked[obj], obj.Name(), how)
		default:
			pass.Report(id.Pos(), "rpcretry",
				"%s %q escapes %s without fence/unreachable classification: route it through rpc.IsFenced/rpc.IsUnreachable/rpc.IsOverloaded/partition.IsUnavailable and the shared retry budgets (or suppress with the reason callers own the budget)",
				tracked[obj], obj.Name(), how)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				if id, ok := res.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil && tracked[obj] != "" {
						escape(id, obj, "via return")
					}
				}
				// `return resp.Error()` in a fence-capable function:
				// the raw node error goes straight out.
				if call, ok := res.(*ast.CallExpr); ok && fenceCapable && isResponseError(pass, call) {
					pass.Report(call.Pos(), "rpcretry",
						"raw Response.Error() returned from a fence-capable path: classify it (rpc.IsFenced/rpc.IsOverloaded/partition.IsUnavailable) before surfacing (or suppress with the reason callers own the budget)")
				}
			}
		case *ast.KeyValueExpr:
			// GetResult{Err: e} and friends: the raw error escapes
			// through a result struct.
			if id, ok := v.Value.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && tracked[obj] != "" {
					escape(id, obj, "via a struct field")
				}
			}
		}
		return true
	})
}

// buildsFenceCapableRequest reports whether the function constructs
// an rpc.Request whose Method is (or may be) fence-capable. A
// non-constant Method is treated as fence-capable: helpers
// parameterised over the method (router.write) carry writes.
func buildsFenceCapableRequest(pass *analysis.Pass, body *ast.BlockStmt) bool {
	capable := false
	ast.Inspect(body, func(n ast.Node) bool {
		if capable {
			return false
		}
		cl, ok := n.(*ast.CompositeLit)
		if !ok || !isRPCNamed(pass.TypesInfo.TypeOf(cl), "Request") {
			return true
		}
		for _, el := range cl.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Method" {
				continue
			}
			tv, ok := pass.TypesInfo.Types[kv.Value]
			if !ok || tv.Value == nil {
				capable = true // dynamic method: assume the worst
				return false
			}
			if tv.Value.Kind() == constant.String && fenceCapableMethods[constant.StringVal(tv.Value)] {
				capable = true
				return false
			}
		}
		return true
	})
	return capable
}

// isTransportCall reports whether call invokes a method named Call
// with the transport signature func(string, rpc.Request)
// (rpc.Response, error) — the rpc.Transport interface or any concrete
// transport.
func isTransportCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Call" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 2 {
		return false
	}
	if b, ok := sig.Params().At(0).Type().(*types.Basic); !ok || b.Kind() != types.String {
		return false
	}
	return isRPCNamed(sig.Params().At(1).Type(), "Request") &&
		isRPCNamed(sig.Results().At(0).Type(), "Response")
}

// isResponseError reports whether call is resp.Error() on an
// rpc.Response.
func isResponseError(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isRPCNamed(t, "Response")
}

// trackedRespError is the birth description of a node response error
// on a fence-capable path — the tracked kind that must pass both the
// fence/unreachable and the overload classifier families.
const trackedRespError = "node response error from a fence-capable method"

func isClassifierCall(pass *analysis.Pass, call *ast.CallExpr, names map[string]bool) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return names[fun.Sel.Name]
	case *ast.Ident:
		return names[fun.Name]
	}
	return false
}

func isRPCNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == rpcPkgPath
}

// assignedObject resolves the object an assignment LHS binds or
// writes (Defs for :=, Uses for =; blank gives nil).
func assignedObject(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}
