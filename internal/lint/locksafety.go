package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"scads/internal/lint/analysis"
)

// NewLockSafety builds the locksafety analyzer, two checks in one
// pass over every package:
//
//   - lockcopy: a value containing a sync lock (Mutex, RWMutex, Once,
//     WaitGroup, Cond — directly or via embedded fields/arrays) must
//     never be copied: by-value parameters, receivers and results,
//     range-value copies, and plain value assignments/returns of
//     existing lock-bearing values are flagged. A copied mutex guards
//     nothing.
//
//   - deferunlock: a mu.Lock()/mu.RLock() call whose function body
//     contains no matching mu.Unlock()/mu.RUnlock() (deferred or
//     inline, same receiver expression) leaks the lock on every
//     return path.
//
// Suppression keys: "lockcopy", "deferunlock" (a lock deliberately
// handed off across functions must say where it is released).
func NewLockSafety() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "locksafety",
		Doc:  "flags copies of lock-bearing values and Lock() calls with no same-function Unlock path",
		Keys: []string{"lockcopy", "deferunlock"},
	}
	a.Run = func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			checkLockCopies(pass, f)
			checkDeferUnlock(pass, f)
		}
		pass.CheckUnusedSuppressions(pass.Files)
		return nil
	}
	return a
}

// --- lockcopy ---

func checkLockCopies(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			if v.Recv != nil {
				reportLockFields(pass, v.Recv, "receiver")
			}
			reportLockFields(pass, v.Type.Params, "parameter")
			reportLockFields(pass, v.Type.Results, "result")
		case *ast.FuncLit:
			reportLockFields(pass, v.Type.Params, "parameter")
			reportLockFields(pass, v.Type.Results, "result")
		case *ast.RangeStmt:
			if v.Value != nil && containsLock(pass.TypesInfo.TypeOf(v.Value)) {
				pass.Report(v.Value.Pos(), "lockcopy",
					"range copies a lock-bearing value per iteration (%s): range over indices or pointers", typeName(pass.TypesInfo.TypeOf(v.Value)))
			}
		case *ast.AssignStmt:
			for _, rhs := range v.Rhs {
				reportLockValueRead(pass, rhs, "assignment copies")
			}
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				reportLockValueRead(pass, res, "return copies")
			}
		case *ast.CallExpr:
			if isBuiltinAppend(pass, v) {
				return true // append's first arg is the slice itself
			}
			for _, arg := range v.Args {
				reportLockValueRead(pass, arg, "call argument copies")
			}
		}
		return true
	})
}

func reportLockFields(pass *analysis.Pass, fl *ast.FieldList, what string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if containsLock(t) {
			pass.Report(field.Type.Pos(), "lockcopy",
				"%s passes lock-bearing %s by value: use a pointer", what, typeName(t))
		}
	}
}

// reportLockValueRead flags expressions that read an existing
// lock-bearing value as a copy source: identifiers, field selections,
// index expressions and pointer dereferences. Fresh values (composite
// literals, function calls) are births, not copies.
func reportLockValueRead(pass *analysis.Pass, e ast.Expr, what string) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := pass.TypesInfo.TypeOf(e)
	if !containsLock(t) {
		return
	}
	// Method values / package selectors have no copyable value.
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if _, isVar := pass.TypesInfo.Uses[sel.Sel].(*types.Var); !isVar {
			if pass.TypesInfo.Selections[sel] == nil {
				return
			}
		}
	}
	pass.Report(e.Pos(), "lockcopy", "%s lock-bearing %s: use a pointer", what, typeName(t))
}

// containsLock reports whether t (by value) carries a sync lock.
func containsLock(t types.Type) bool {
	return containsLockRec(t, make(map[types.Type]bool))
}

var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "Once": true, "WaitGroup": true, "Cond": true, "Map": true, "Pool": true,
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch v := t.(type) {
	case *types.Named:
		obj := v.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return true
		}
		return containsLockRec(v.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			if containsLockRec(v.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(v.Elem(), seen)
	}
	return false
}

func typeName(t types.Type) string {
	if t == nil {
		return "<unknown>"
	}
	return t.String()
}

// --- deferunlock ---

// lockSite is one mu.Lock()/mu.RLock() call, keyed by the printed
// receiver expression so `s.mu` in two statements matches.
type lockSite struct {
	pos    token.Pos
	recv   string // printed receiver expression
	unlock string // the matching release method name
	lockFn string
}

func checkDeferUnlock(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		var locks []lockSite
		unlocks := make(map[string]bool) // recv + "." + method
		ast.Inspect(body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || len(call.Args) != 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isLockReceiver(pass, sel.X) {
				return true
			}
			recv := exprString(pass.Fset, sel.X)
			switch sel.Sel.Name {
			case "Lock":
				locks = append(locks, lockSite{pos: call.Pos(), recv: recv, unlock: "Unlock", lockFn: "Lock"})
			case "RLock":
				locks = append(locks, lockSite{pos: call.Pos(), recv: recv, unlock: "RUnlock", lockFn: "RLock"})
			case "Unlock", "RUnlock":
				unlocks[recv+"."+sel.Sel.Name] = true
			}
			return true
		})
		for _, ls := range locks {
			if !unlocks[ls.recv+"."+ls.unlock] {
				pass.Report(ls.pos, "deferunlock",
					"%s.%s() with no %s.%s() (deferred or inline) in this function: every return path leaks the lock",
					ls.recv, ls.lockFn, ls.recv, ls.unlock)
			}
		}
		return true
	})
}

// isLockReceiver reports whether expr is a sync lock (or pointer to
// one), including types embedding one — anything whose Lock/Unlock
// come from a sync primitive.
func isLockReceiver(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			return true // Mutex, RWMutex, Locker values
		}
	}
	return containsLock(t)
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}
