package workload

import (
	"fmt"
	"math/rand"
	"time"

	"scads/internal/row"
)

// OpKind enumerates the social-application request classes (the
// CloudStone-style mix of §3.4).
type OpKind int

// Request classes. Read-heavy by default, matching social sites.
const (
	OpViewProfile OpKind = iota
	OpViewFriends
	OpViewBirthdays
	OpAddFriend
	OpRemoveFriend
	OpUpdateProfile
	OpNewUser
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpViewProfile:
		return "view-profile"
	case OpViewFriends:
		return "view-friends"
	case OpViewBirthdays:
		return "view-birthdays"
	case OpAddFriend:
		return "add-friend"
	case OpRemoveFriend:
		return "remove-friend"
	case OpUpdateProfile:
		return "update-profile"
	case OpNewUser:
		return "new-user"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one generated request.
type Op struct {
	Kind   OpKind
	UserID string
	Friend string // for friend ops
	Row    row.Row
}

// Mix is a weighted operation distribution.
type Mix struct {
	ViewProfile   int
	ViewFriends   int
	ViewBirthdays int
	AddFriend     int
	RemoveFriend  int
	UpdateProfile int
	NewUser       int
}

// ReadHeavyMix is the default social mix (~90% reads).
var ReadHeavyMix = Mix{
	ViewProfile:   45,
	ViewFriends:   25,
	ViewBirthdays: 20,
	AddFriend:     4,
	RemoveFriend:  1,
	UpdateProfile: 4,
	NewUser:       1,
}

// WriteHeavyMix models spike events like post-Halloween photo uploads
// (§2.1): a significant percentage of writes.
var WriteHeavyMix = Mix{
	ViewProfile:   25,
	ViewFriends:   15,
	ViewBirthdays: 10,
	AddFriend:     10,
	RemoveFriend:  2,
	UpdateProfile: 35,
	NewUser:       3,
}

func (m Mix) total() int {
	return m.ViewProfile + m.ViewFriends + m.ViewBirthdays +
		m.AddFriend + m.RemoveFriend + m.UpdateProfile + m.NewUser
}

// WriteFraction reports the fraction of operations that mutate data.
func (m Mix) WriteFraction() float64 {
	t := m.total()
	if t == 0 {
		return 0
	}
	return float64(m.AddFriend+m.RemoveFriend+m.UpdateProfile+m.NewUser) / float64(t)
}

// Social generates a deterministic synthetic social graph and request
// stream over it. Degrees are bounded by MaxFriends — the Facebook
// 5000-friend cap the paper leans on for the O(K) argument.
type Social struct {
	rnd        *rand.Rand
	users      int
	maxFriends int
	mix        Mix
	// degree tracks current friend counts to respect the cap.
	degree []int
	nextID int
}

// NewSocial returns a generator over `users` initial users with
// degrees capped at maxFriends.
func NewSocial(seed int64, users, maxFriends int, mix Mix) *Social {
	if users < 2 {
		users = 2
	}
	if maxFriends < 1 {
		maxFriends = 5000
	}
	if mix.total() == 0 {
		mix = ReadHeavyMix
	}
	return &Social{
		rnd:        rand.New(rand.NewSource(seed)),
		users:      users,
		maxFriends: maxFriends,
		mix:        mix,
		degree:     make([]int, users),
		nextID:     users,
	}
}

// Users returns the current user count.
func (s *Social) Users() int { return s.users }

// UserID formats the i-th user's ID.
func UserID(i int) string { return fmt.Sprintf("user%08d", i) }

// ProfileRow synthesizes the i-th user's profile row. Birthdays are
// day-of-year (1..365) so the birthday index has realistic collisions.
func (s *Social) ProfileRow(i int) row.Row {
	return row.Row{
		"id":       UserID(i),
		"name":     fmt.Sprintf("User %d", i),
		"birthday": int64(i%365 + 1),
	}
}

// SeedGraph produces an initial friendship edge list with a skewed
// (preferential-attachment-flavoured) degree distribution capped at
// MaxFriends. Edges are emitted in both directions, matching the
// symmetric friendships of the paper's example.
func (s *Social) SeedGraph(avgFriends int) [][2]string {
	if avgFriends < 1 {
		avgFriends = 1
	}
	var edges [][2]string
	seen := make(map[[2]int]bool)
	target := s.users * avgFriends / 2
	attempts := 0
	for len(edges)/2 < target && attempts < target*20 {
		attempts++
		a := s.rnd.Intn(s.users)
		// Preferential: half the time pick a neighbour-of-popular node.
		b := s.rnd.Intn(s.users)
		if s.rnd.Intn(2) == 0 {
			b = s.rnd.Intn(s.users/10 + 1) // popular cluster
		}
		if a == b || seen[[2]int{a, b}] || seen[[2]int{b, a}] {
			continue
		}
		if s.degree[a] >= s.maxFriends || s.degree[b] >= s.maxFriends {
			continue
		}
		seen[[2]int{a, b}] = true
		s.degree[a]++
		s.degree[b]++
		edges = append(edges, [2]string{UserID(a), UserID(b)}, [2]string{UserID(b), UserID(a)})
	}
	return edges
}

// Next generates one operation according to the mix.
func (s *Social) Next() Op {
	pick := s.rnd.Intn(s.mix.total())
	user := s.rnd.Intn(s.users)
	uid := UserID(user)
	take := func(n int) bool {
		if pick < n {
			return true
		}
		pick -= n
		return false
	}
	switch {
	case take(s.mix.ViewProfile):
		return Op{Kind: OpViewProfile, UserID: uid}
	case take(s.mix.ViewFriends):
		return Op{Kind: OpViewFriends, UserID: uid}
	case take(s.mix.ViewBirthdays):
		return Op{Kind: OpViewBirthdays, UserID: uid}
	case take(s.mix.AddFriend):
		other := s.rnd.Intn(s.users)
		if other == user {
			other = (other + 1) % s.users
		}
		if s.degree[user] >= s.maxFriends || s.degree[other] >= s.maxFriends {
			return Op{Kind: OpViewFriends, UserID: uid} // cap reached: degrade to a read
		}
		s.degree[user]++
		s.degree[other]++
		return Op{Kind: OpAddFriend, UserID: uid, Friend: UserID(other)}
	case take(s.mix.RemoveFriend):
		other := s.rnd.Intn(s.users)
		if other == user {
			other = (other + 1) % s.users
		}
		if s.degree[user] > 0 {
			s.degree[user]--
		}
		if s.degree[other] > 0 {
			s.degree[other]--
		}
		return Op{Kind: OpRemoveFriend, UserID: uid, Friend: UserID(other)}
	case take(s.mix.UpdateProfile):
		r := s.ProfileRow(user)
		r["birthday"] = int64(s.rnd.Intn(365) + 1)
		return Op{Kind: OpUpdateProfile, UserID: uid, Row: r}
	default:
		id := s.nextID
		s.nextID++
		s.users++
		s.degree = append(s.degree, 0)
		return Op{Kind: OpNewUser, UserID: UserID(id), Row: row.Row{
			"id":       UserID(id),
			"name":     fmt.Sprintf("User %d", id),
			"birthday": int64(id%365 + 1),
		}}
	}
}

// OpsForTick converts a trace rate into an op count for a tick of the
// given length.
func OpsForTick(tr Trace, at time.Time, tick time.Duration) int {
	return int(tr.Rate(at) * tick.Seconds())
}
