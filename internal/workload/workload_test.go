package workload

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)

func TestConstant(t *testing.T) {
	c := Constant(500)
	if c.Rate(t0) != 500 || c.Rate(t0.Add(time.Hour)) != 500 {
		t.Fatal("Constant not constant")
	}
}

func TestDiurnalShape(t *testing.T) {
	d := Diurnal{Base: 1000, Amplitude: 500, PeakHour: 14}
	peak := d.Rate(time.Date(2009, 1, 4, 14, 0, 0, 0, time.UTC))
	trough := d.Rate(time.Date(2009, 1, 4, 2, 0, 0, 0, time.UTC))
	if math.Abs(peak-1500) > 1 {
		t.Fatalf("peak = %v", peak)
	}
	if math.Abs(trough-500) > 1 {
		t.Fatalf("trough = %v", trough)
	}
	// Never negative even with amplitude > base.
	d2 := Diurnal{Base: 100, Amplitude: 500}
	for h := 0; h < 24; h++ {
		if d2.Rate(time.Date(2009, 1, 4, h, 0, 0, 0, time.UTC)) < 0 {
			t.Fatal("negative rate")
		}
	}
}

func TestSpikeEnvelope(t *testing.T) {
	at := t0.Add(12 * time.Hour)
	s := Spike{
		Baseline:  Constant(1000),
		At:        at,
		Rise:      10 * time.Minute,
		Duration:  2 * time.Hour,
		Magnitude: 5,
	}
	if got := s.Rate(at.Add(-time.Hour)); got != 1000 {
		t.Fatalf("pre-spike = %v", got)
	}
	if got := s.Rate(at.Add(10 * time.Minute)); math.Abs(got-5000) > 1 {
		t.Fatalf("peak = %v", got)
	}
	mid := s.Rate(at.Add(10*time.Minute + time.Hour))
	if !(1000 < mid && mid < 5000) {
		t.Fatalf("decay = %v", mid)
	}
	if got := s.Rate(at.Add(3 * time.Hour)); got != 1000 {
		t.Fatalf("post-spike = %v", got)
	}
	// Half-way up the rise.
	if got := s.Rate(at.Add(5 * time.Minute)); math.Abs(got-3000) > 1 {
		t.Fatalf("mid-rise = %v", got)
	}
}

func TestViralDoubles(t *testing.T) {
	v := Viral{Start: t0, InitialRate: 100, DoublingTime: 12 * time.Hour}
	if got := v.Rate(t0.Add(-time.Hour)); got != 100 {
		t.Fatalf("pre-start = %v", got)
	}
	if got := v.Rate(t0.Add(12 * time.Hour)); math.Abs(got-200) > 0.1 {
		t.Fatalf("one doubling = %v", got)
	}
	if got := v.Rate(t0.Add(24 * time.Hour)); math.Abs(got-400) > 0.1 {
		t.Fatalf("two doublings = %v", got)
	}
	capped := Viral{Start: t0, InitialRate: 100, DoublingTime: time.Hour, Saturation: 1000}
	if got := capped.Rate(t0.Add(100 * time.Hour)); got != 1000 {
		t.Fatalf("saturation = %v", got)
	}
}

func TestAnimotoTraceMatchesFigure1(t *testing.T) {
	const perServer = 1000.0
	tr := AnimotoTrace(t0, perServer)
	// At t0: enough load for ~50 servers at 70% utilisation.
	servers := func(at time.Time) float64 {
		return tr.Rate(at) / (perServer * 0.7)
	}
	if got := servers(t0); math.Abs(got-50) > 2 {
		t.Fatalf("initial servers = %v, want ~50", got)
	}
	// Three days later: ~3400 servers (the Figure 1 endpoint).
	if got := servers(t0.Add(72 * time.Hour)); math.Abs(got-3400)/3400 > 0.05 {
		t.Fatalf("72h servers = %v, want ~3400", got)
	}
	// Monotone non-decreasing ramp.
	prev := 0.0
	for h := 0; h <= 72; h++ {
		r := tr.Rate(t0.Add(time.Duration(h) * time.Hour))
		if r < prev {
			t.Fatalf("ramp decreased at hour %d", h)
		}
		prev = r
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{T: Constant(100), F: 2.5}
	if s.Rate(t0) != 250 {
		t.Fatal("Scaled wrong")
	}
}

func TestOpsForTick(t *testing.T) {
	if got := OpsForTick(Constant(100), t0, 30*time.Second); got != 3000 {
		t.Fatalf("OpsForTick = %d", got)
	}
}

func TestMixWriteFraction(t *testing.T) {
	if f := ReadHeavyMix.WriteFraction(); f > 0.15 {
		t.Fatalf("read-heavy write fraction = %v", f)
	}
	if f := WriteHeavyMix.WriteFraction(); f < 0.4 {
		t.Fatalf("write-heavy write fraction = %v", f)
	}
	if (Mix{}).WriteFraction() != 0 {
		t.Fatal("empty mix")
	}
}

func TestSocialDeterministic(t *testing.T) {
	a := NewSocial(42, 100, 50, ReadHeavyMix)
	b := NewSocial(42, 100, 50, ReadHeavyMix)
	for i := 0; i < 200; i++ {
		opA, opB := a.Next(), b.Next()
		if opA.Kind != opB.Kind || opA.UserID != opB.UserID || opA.Friend != opB.Friend {
			t.Fatalf("divergence at op %d: %+v vs %+v", i, opA, opB)
		}
	}
}

func TestSeedGraphRespectsCap(t *testing.T) {
	s := NewSocial(7, 200, 10, ReadHeavyMix)
	edges := s.SeedGraph(8)
	if len(edges) == 0 {
		t.Fatal("no edges")
	}
	deg := map[string]int{}
	seen := map[[2]string]bool{}
	for _, e := range edges {
		if e[0] == e[1] {
			t.Fatal("self edge")
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
		deg[e[0]]++
	}
	for u, d := range deg {
		if d > 10 {
			t.Fatalf("user %s degree %d exceeds cap 10", u, d)
		}
	}
	// Symmetric: reverse edge present.
	for _, e := range edges {
		if !seen[[2]string{e[1], e[0]}] {
			t.Fatalf("edge %v missing reverse", e)
		}
	}
}

func TestSocialOpDistribution(t *testing.T) {
	s := NewSocial(3, 1000, 5000, ReadHeavyMix)
	counts := map[OpKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[s.Next().Kind]++
	}
	frac := func(k OpKind) float64 { return float64(counts[k]) / n }
	if f := frac(OpViewProfile); math.Abs(f-0.45) > 0.05 {
		t.Fatalf("view-profile fraction = %v", f)
	}
	writes := frac(OpAddFriend) + frac(OpRemoveFriend) + frac(OpUpdateProfile) + frac(OpNewUser)
	if math.Abs(writes-ReadHeavyMix.WriteFraction()) > 0.05 {
		t.Fatalf("write fraction = %v, want ~%v", writes, ReadHeavyMix.WriteFraction())
	}
}

func TestSocialNewUserGrowsPopulation(t *testing.T) {
	s := NewSocial(9, 10, 100, Mix{NewUser: 1})
	before := s.Users()
	for i := 0; i < 50; i++ {
		op := s.Next()
		if op.Kind != OpNewUser {
			t.Fatalf("op = %v, want new-user", op.Kind)
		}
		if op.Row["id"] != op.UserID {
			t.Fatal("row id mismatch")
		}
	}
	if s.Users() != before+50 {
		t.Fatalf("users = %d", s.Users())
	}
}

func TestSocialFriendCapDegradesToRead(t *testing.T) {
	// Cap 1: after each user has one friend, add-friend ops degrade to
	// reads rather than violating the cap.
	s := NewSocial(5, 4, 1, Mix{AddFriend: 1})
	adds := 0
	for i := 0; i < 100; i++ {
		if s.Next().Kind == OpAddFriend {
			adds++
		}
	}
	if adds > 2*4/2+2 { // at most ~degree capacity worth of adds
		t.Fatalf("adds = %d with cap 1", adds)
	}
}

func TestProfileRowShape(t *testing.T) {
	s := NewSocial(1, 10, 10, ReadHeavyMix)
	r := s.ProfileRow(7)
	if r["id"] != UserID(7) {
		t.Fatal("id mismatch")
	}
	bd := r["birthday"].(int64)
	if bd < 1 || bd > 365 {
		t.Fatalf("birthday = %d", bd)
	}
}

func TestOpKindString(t *testing.T) {
	kinds := []OpKind{OpViewProfile, OpViewFriends, OpViewBirthdays, OpAddFriend, OpRemoveFriend, OpUpdateProfile, OpNewUser}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad/dup string for %d: %q", k, s)
		}
		seen[s] = true
	}
}
