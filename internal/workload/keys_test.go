package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestHotspotDeterministic(t *testing.T) {
	h := Hotspot{Users: 1000, HotFraction: 0.1, HotWeight: 0.9, ShiftPeriod: time.Hour, Start: t0}
	ra := rand.New(rand.NewSource(11))
	rb := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		at := t0.Add(time.Duration(i) * time.Minute)
		if ka, kb := h.Key(ra, at), h.Key(rb, at); ka != kb {
			t.Fatalf("divergence at draw %d: %d vs %d", i, ka, kb)
		}
	}
}

func TestHotspotShiftMovesHotKeyspace(t *testing.T) {
	h := Hotspot{Users: 1000, HotFraction: 0.1, HotWeight: 0.9, ShiftPeriod: time.Hour, Start: t0}
	rnd := rand.New(rand.NewSource(7))
	histogram := func(at time.Time) []int {
		const buckets = 10
		counts := make([]int, buckets)
		for i := 0; i < 5000; i++ {
			counts[h.Key(rnd, at)*buckets/h.Users]++
		}
		return counts
	}
	argmax := func(c []int) int {
		best := 0
		for i, v := range c {
			if v > c[best] {
				best = i
			}
		}
		return best
	}
	early := histogram(t0.Add(time.Minute))
	late := histogram(t0.Add(3*time.Hour + time.Minute))
	if argmax(early) == argmax(late) {
		t.Fatalf("hot bucket did not drift: early=%v late=%v", early, late)
	}
	// The hot bucket holds roughly HotWeight of the mass (plus its
	// uniform share); the drift is a real mass migration, not noise.
	if frac := float64(early[argmax(early)]) / 5000; frac < 0.7 {
		t.Fatalf("hot bucket mass = %v, want ≥0.7", frac)
	}
	if frac := float64(late[argmax(late)]) / 5000; frac < 0.7 {
		t.Fatalf("late hot bucket mass = %v, want ≥0.7", frac)
	}
	// Known positions: width 100, so at +1m the window is [0,100) and
	// after 3 periods it is [300,400).
	if lo, _ := h.HotRange(t0.Add(time.Minute)); lo != 0 {
		t.Fatalf("initial hot lo = %d", lo)
	}
	if lo, _ := h.HotRange(t0.Add(3*time.Hour + time.Minute)); lo != 300 {
		t.Fatalf("shifted hot lo = %d", lo)
	}
}

func TestHotspotWrapsAroundKeyspace(t *testing.T) {
	h := Hotspot{Users: 100, HotFraction: 0.25, ShiftPeriod: time.Minute, Start: t0}
	// Width 25: after 4 shifts the window wraps back to 0.
	if lo, _ := h.HotRange(t0.Add(4*time.Minute + time.Second)); lo != 0 {
		t.Fatalf("wrap lo = %d", lo)
	}
	// Keys always in range, even for degenerate configs.
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		k := h.Key(rnd, t0.Add(time.Duration(i)*time.Second))
		if k < 0 || k >= h.Users {
			t.Fatalf("key %d out of range", k)
		}
	}
	if (Hotspot{}).Key(rnd, t0) != 0 {
		t.Fatal("empty keyspace should yield 0")
	}
}

func TestNoisyDeterministicAndBounded(t *testing.T) {
	n := Noisy{T: Constant(1000), Seed: 42, Frac: 0.1}
	var forward []float64
	for i := 0; i < 500; i++ {
		forward = append(forward, n.Rate(t0.Add(time.Duration(i)*time.Minute)))
	}
	// Re-sampling in reverse order reproduces the same values: the
	// noise is a pure function of time, not of call order.
	for i := 499; i >= 0; i-- {
		if got := n.Rate(t0.Add(time.Duration(i) * time.Minute)); got != forward[i] {
			t.Fatalf("order-dependent noise at minute %d", i)
		}
	}
	varied := false
	for i, v := range forward {
		if math.Abs(v-1000) > 100.000001 {
			t.Fatalf("noise out of ±10%% bound: %v", v)
		}
		if i > 0 && v != forward[i-1] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("noise never varied")
	}
	// Different seeds give different traces.
	n2 := Noisy{T: Constant(1000), Seed: 43, Frac: 0.1}
	same := true
	for i := 0; i < 50; i++ {
		if n2.Rate(t0.Add(time.Duration(i)*time.Minute)) != forward[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical noise")
	}
}

// TestScenarioTracesDeterministic pins the reproducibility the e16
// scenarios rely on: sampling each scenario's trace twice — including
// out of order — yields identical series.
func TestScenarioTracesDeterministic(t *testing.T) {
	scenarios := map[string]Trace{
		"diurnal": Diurnal{Base: 2000, Amplitude: 1500, PeakHour: 14},
		"flash-crowd": Spike{
			Baseline:  Constant(1500),
			At:        t0.Add(6 * time.Hour),
			Rise:      10 * time.Minute,
			Duration:  2 * time.Hour,
			Magnitude: 4,
		},
		"noisy-diurnal": Noisy{T: Diurnal{Base: 2000, Amplitude: 1500}, Seed: 9, Frac: 0.05},
	}
	for name, tr := range scenarios {
		var first []float64
		for i := 0; i < 24*60; i += 5 {
			first = append(first, tr.Rate(t0.Add(time.Duration(i)*time.Minute)))
		}
		for pass := 0; pass < 2; pass++ {
			for j := len(first) - 1; j >= 0; j-- {
				if got := tr.Rate(t0.Add(time.Duration(j*5) * time.Minute)); got != first[j] {
					t.Fatalf("%s: non-deterministic at sample %d", name, j)
				}
			}
		}
	}
}
