package workload

import (
	"math/rand"
	"time"
)

// Hotspot draws user indexes with a skewed access distribution whose
// hot range drifts across the keyspace over time — the hotspot-shift
// scenario: a celebrity cohort goes quiet while another lights up, so
// the ranges that need replicas keep moving even when the aggregate
// rate is flat. HotWeight of the draws land uniformly inside a window
// HotFraction wide; the rest spread over the whole keyspace. Every
// ShiftPeriod the window advances by its own width (wrapping), so
// after a full cycle every range has taken a turn being hot.
//
// Randomness comes from the caller's *rand.Rand, so two generators
// driven by equally-seeded sources at the same instants produce the
// same key stream.
type Hotspot struct {
	Users       int
	HotFraction float64       // hot window width as a keyspace fraction (default 0.1)
	HotWeight   float64       // probability a draw lands in the window (default 0.9)
	ShiftPeriod time.Duration // window advance interval (0 = static hotspot)
	Start       time.Time
}

func (h Hotspot) width() int {
	f := h.HotFraction
	if f <= 0 || f > 1 {
		f = 0.1
	}
	w := int(float64(h.Users) * f)
	if w < 1 {
		w = 1
	}
	return w
}

// HotRange returns the hot window [lo, hi) at the given instant. hi
// may exceed Users by wrapping: callers use Key, which reduces modulo
// the keyspace.
func (h Hotspot) HotRange(at time.Time) (lo, hi int) {
	w := h.width()
	shift := 0
	if h.ShiftPeriod > 0 && at.After(h.Start) {
		shift = int(at.Sub(h.Start) / h.ShiftPeriod)
	}
	lo = (shift * w) % h.Users
	return lo, lo + w
}

// Key draws one user index for an op at the given instant.
func (h Hotspot) Key(rnd *rand.Rand, at time.Time) int {
	if h.Users <= 0 {
		return 0
	}
	weight := h.HotWeight
	if weight <= 0 || weight > 1 {
		weight = 0.9
	}
	lo, hi := h.HotRange(at)
	if rnd.Float64() < weight {
		return (lo + rnd.Intn(hi-lo)) % h.Users
	}
	return rnd.Intn(h.Users)
}

// Noisy perturbs a base trace with seeded multiplicative noise — a
// pure function of (Seed, time), so the trace stays deterministic no
// matter how often or in what order Rate is sampled. Used to prove
// the director's hysteresis holds on a jittery signal.
type Noisy struct {
	T       Trace
	Seed    int64
	Frac    float64       // max fractional perturbation, e.g. 0.1 = ±10%
	Quantum time.Duration // noise re-rolls per quantum (default 1m)
}

// Rate implements Trace.
func (n Noisy) Rate(t time.Time) float64 {
	base := n.T.Rate(t)
	if n.Frac <= 0 {
		return base
	}
	q := n.Quantum
	if q <= 0 {
		q = time.Minute
	}
	bucket := t.UnixNano() / int64(q)
	u := unitHash(uint64(n.Seed) ^ uint64(bucket)*0x9e3779b97f4a7c15)
	v := base * (1 + n.Frac*(2*u-1))
	if v < 0 {
		return 0
	}
	return v
}

// unitHash maps a 64-bit value to [0,1) via a splitmix64 finalizer.
func unitHash(x uint64) float64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
