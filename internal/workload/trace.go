// Package workload generates the load shapes and social-network
// request mixes the paper's experiments need: the Animoto viral ramp
// (Figure 1), diurnal cycles, the post-Halloween write spike (§2.1),
// and a CloudStone-style social application workload (§3.4) over a
// synthetic user/friendship graph with bounded degree.
package workload

import (
	"math"
	"time"
)

// Trace maps time to an aggregate request rate (requests/second).
type Trace interface {
	Rate(t time.Time) float64
}

// Constant is a flat trace.
type Constant float64

// Rate implements Trace.
func (c Constant) Rate(time.Time) float64 { return float64(c) }

// Diurnal models the daily cycle: Base + Amplitude·sin phased so the
// peak lands at PeakHour.
type Diurnal struct {
	Base      float64
	Amplitude float64
	PeakHour  float64 // 0..24, default 14 (2pm)
}

// Rate implements Trace.
func (d Diurnal) Rate(t time.Time) float64 {
	peak := d.PeakHour
	if peak == 0 {
		peak = 14
	}
	h := float64(t.Hour()) + float64(t.Minute())/60 + float64(t.Second())/3600
	v := d.Base + d.Amplitude*math.Sin((h-peak+6)/24*2*math.Pi)
	if v < 0 {
		return 0
	}
	return v
}

// Spike models a sudden event (the paper's day-after-Halloween photo
// uploads): baseline, then a fast ramp to Magnitude× baseline at At,
// decaying back over Duration.
type Spike struct {
	Baseline  Trace
	At        time.Time
	Rise      time.Duration // ramp-up time, default 10m
	Duration  time.Duration // time above baseline after peak
	Magnitude float64       // peak multiple of baseline, e.g. 5
}

// Rate implements Trace.
func (s Spike) Rate(t time.Time) float64 {
	base := s.Baseline.Rate(t)
	rise := s.Rise
	if rise <= 0 {
		rise = 10 * time.Minute
	}
	switch {
	case t.Before(s.At):
		return base
	case t.Before(s.At.Add(rise)):
		frac := float64(t.Sub(s.At)) / float64(rise)
		return base * (1 + (s.Magnitude-1)*frac)
	case t.Before(s.At.Add(rise).Add(s.Duration)):
		frac := float64(t.Sub(s.At.Add(rise))) / float64(s.Duration)
		return base * (s.Magnitude - (s.Magnitude-1)*frac)
	default:
		return base
	}
}

// Viral models exponential organic growth: Rate doubles every
// DoublingTime from Start until Saturation. This is Figure 1's Animoto
// curve: ~68× growth over three days ≈ doubling every 12 hours.
type Viral struct {
	Start        time.Time
	InitialRate  float64
	DoublingTime time.Duration
	Saturation   float64 // cap (0 = unbounded)
}

// Rate implements Trace.
func (v Viral) Rate(t time.Time) float64 {
	if t.Before(v.Start) {
		return v.InitialRate
	}
	doublings := float64(t.Sub(v.Start)) / float64(v.DoublingTime)
	r := v.InitialRate * math.Pow(2, doublings)
	if v.Saturation > 0 && r > v.Saturation {
		return v.Saturation
	}
	return r
}

// AnimotoTrace reproduces the Figure 1 anecdote at request-rate level:
// the service needed ~50 servers before going viral and 3400+ three
// days later. With capacityPerServer req/s per machine, that is a ramp
// from 50·c to 3400·c over 72 hours.
func AnimotoTrace(start time.Time, capacityPerServer float64) Viral {
	// 50 → 3400 servers over 72h: 2^(72/T) = 68 → T ≈ 11.83h.
	doubling := time.Duration(72 / math.Log2(3400.0/50.0) * float64(time.Hour))
	return Viral{
		Start:        start,
		InitialRate:  50 * capacityPerServer * 0.7, // running at 70% utilisation pre-spike
		DoublingTime: doubling,
		Saturation:   3400 * capacityPerServer * 0.7,
	}
}

// Scaled multiplies a trace by a constant factor.
type Scaled struct {
	T Trace
	F float64
}

// Rate implements Trace.
func (s Scaled) Rate(t time.Time) float64 { return s.T.Rate(t) * s.F }
