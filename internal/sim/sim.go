// Package sim is the experiment harness for the paper's elasticity
// story: it wires a workload trace, the utility-computing simulator,
// the SLA monitor, and the director's feedback loop (Figure 2) into a
// deterministic virtual-time simulation. Experiments E1 (Animoto
// scale-up), E2 (feedback-loop reaction), and E7 (diurnal scale-down
// economics) are parameterisations of this harness.
package sim

import (
	"fmt"
	"math"
	"time"

	"scads/internal/clock"
	"scads/internal/cloudsim"
	"scads/internal/consistency"
	"scads/internal/director"
	"scads/internal/sla"
	"scads/internal/workload"
)

// Mode selects the provisioning strategy under test.
type Mode int

// Modes: the SCADS director (model-driven), the reactive ablation, or
// a fixed-size baseline.
const (
	ModeModelDriven Mode = iota
	ModeReactive
	ModeStatic
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeModelDriven:
		return "model-driven"
	case ModeReactive:
		return "reactive"
	case ModeStatic:
		return "static"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterises one run.
type Config struct {
	Start    time.Time
	Duration time.Duration
	// Tick is the control interval (default 1m).
	Tick time.Duration

	Trace   workload.Trace
	Service cloudsim.ServiceModel
	SLA     consistency.PerformanceSLA
	Cloud   cloudsim.Options

	Mode Mode
	// StaticServers sizes the fixed cluster in ModeStatic.
	StaticServers int
	// InitialServers seeds the elastic modes (default 2).
	InitialServers int
	// Director tunes the controller (SLALatency etc. filled from SLA).
	Director director.Config
	// Warmup pre-trains the capacity model from the service curve
	// before the run, modelling "models of past performance" (§2.2).
	Warmup bool
}

// TickStat is one control interval's record.
type TickStat struct {
	T           time.Time
	Rate        float64
	Running     int
	Booting     int
	Target      int
	Latency     time.Duration
	SuccessRate float64
	Met         bool
}

// Result summarises one run.
type Result struct {
	Mode         Mode
	Ticks        []TickStat
	MachineHours float64
	CostUSD      float64
	Violations   int
	Intervals    int
	PeakServers  int
	FinalServers int
}

// ViolationRate is the fraction of intervals that missed the SLA.
func (r Result) ViolationRate() float64 {
	if r.Intervals == 0 {
		return 0
	}
	return float64(r.Violations) / float64(r.Intervals)
}

// Run executes the simulation.
func Run(cfg Config) Result {
	if cfg.Tick <= 0 {
		cfg.Tick = time.Minute
	}
	if cfg.InitialServers <= 0 {
		cfg.InitialServers = 2
	}
	clk := clock.NewVirtual(cfg.Start)
	cloud := cloudsim.New(clk, cfg.Cloud)
	// The latency window covers exactly one tick's batched samples
	// (RecordBatch feeds ≤64 per call, two calls per tick), so each
	// interval's percentile reflects that interval, not stale
	// overload samples from minutes ago.
	monitor := sla.NewMonitor(clk, cfg.SLA, 128)

	// Seed capacity.
	initial := cfg.InitialServers
	if cfg.Mode == ModeStatic {
		initial = cfg.StaticServers
	}
	cloud.Request(initial)
	clk.Advance(cfg.Cloud.BootDelay)
	cloud.Poll()
	monitor.Roll() // discard the boot period so interval rates are true

	var dir *director.Director
	if cfg.Mode != ModeStatic {
		dcfg := cfg.Director
		dcfg.SLALatency = cfg.SLA.LatencyBound
		if cfg.Mode == ModeReactive {
			dcfg.Policy = director.Reactive
		} else {
			dcfg.Policy = director.ModelDriven
		}
		if dcfg.ForecastHorizon <= 0 {
			// Provision ahead by boot delay plus two control ticks.
			dcfg.ForecastHorizon = cfg.Cloud.BootDelay + 2*cfg.Tick
		}
		dir = director.New(clk, &cloudActuator{cloud: cloud}, dcfg)
		if cfg.Warmup && cfg.Mode == ModeModelDriven {
			warmCapacityModel(dir, cfg.Service)
		}
	}

	res := Result{Mode: cfg.Mode}
	end := cfg.Start.Add(cfg.Duration)
	for clk.Now().Before(end) {
		now := clk.Now()
		cloud.Poll()
		running := len(cloud.Running())
		rate := cfg.Trace.Rate(now)

		latency := cfg.Service.Latency(rate, running)
		successPct := cfg.Service.SuccessRate(rate, running)
		total := int64(rate * cfg.Tick.Seconds())
		succeeded := int64(float64(total) * successPct / 100)
		monitor.RecordBatch(succeeded, latency, true)
		monitor.RecordBatch(total-succeeded, latency, false)

		clk.Advance(cfg.Tick)
		iv := monitor.Roll()

		stat := TickStat{
			T: now, Rate: rate, Running: running,
			Booting: len(cloud.Booting()),
			Latency: iv.Latency, SuccessRate: iv.SuccessRate, Met: iv.Met,
		}
		if dir != nil {
			dec := dir.Step(director.Observation{
				Rate:        iv.Rate,
				Latency:     iv.Latency,
				SuccessRate: iv.SuccessRate,
				SLAMet:      iv.Met,
			})
			stat.Target = dec.Target
		} else {
			stat.Target = running
		}
		res.Ticks = append(res.Ticks, stat)
		res.Intervals++
		if !iv.Met {
			res.Violations++
		}
		if running > res.PeakServers {
			res.PeakServers = running
		}
		res.FinalServers = running
	}
	res.MachineHours = cloud.MachineHours()
	res.CostUSD = cloud.CostUSD()
	return res
}

// warmCapacityModel feeds the director's capacity model observations
// drawn from the service curve — the "past workload" the paper's
// models train on.
func warmCapacityModel(d *director.Director, svc cloudsim.ServiceModel) {
	for frac := 0.05; frac < 0.95; frac += 0.05 {
		rate := svc.CapacityPerServer * frac
		lat := svc.Latency(rate, 1)
		d.Capacity.Observe(rate, lat.Seconds())
	}
	d.Capacity.Fit()
}

// cloudActuator adapts the simulated cloud to the director's Actuator.
type cloudActuator struct {
	cloud *cloudsim.Cloud
}

func (a *cloudActuator) Running() int { return len(a.cloud.Running()) }
func (a *cloudActuator) Booting() int { return len(a.cloud.Booting()) }
func (a *cloudActuator) Request(n int) {
	a.cloud.Request(n)
}
func (a *cloudActuator) Release(n int) {
	running := a.cloud.Running()
	// Terminate the newest instances first (cheapest under hourly
	// billing: they have the least sunk partial hour — and it keeps
	// the oldest, warmest nodes serving).
	for i := 0; i < n && i < len(running); i++ {
		a.cloud.Terminate(running[len(running)-1-i])
	}
}

// ReactionStats measures how the loop responds to a load step: when
// the violation began, when the SLA was re-established, and the
// recovery duration. Used by E2.
type ReactionStats struct {
	ViolatedAt   time.Time
	RecoveredAt  time.Time
	Recovery     time.Duration
	EverViolated bool
	Recovered    bool
}

// MeasureReaction extracts reaction timing from a run's ticks after
// stepAt.
func MeasureReaction(res Result, stepAt time.Time) ReactionStats {
	var rs ReactionStats
	for _, tk := range res.Ticks {
		if tk.T.Before(stepAt) {
			continue
		}
		if !tk.Met && !rs.EverViolated {
			rs.EverViolated = true
			rs.ViolatedAt = tk.T
		}
		if rs.EverViolated && !rs.Recovered && tk.Met {
			rs.Recovered = true
			rs.RecoveredAt = tk.T
			rs.Recovery = tk.T.Sub(rs.ViolatedAt)
		}
	}
	return rs
}

// ServerSeries renders (hours-from-start, servers) pairs — the Figure 1
// reproduction series.
func ServerSeries(res Result, start time.Time) [][2]float64 {
	out := make([][2]float64, 0, len(res.Ticks))
	for _, tk := range res.Ticks {
		out = append(out, [2]float64{tk.T.Sub(start).Hours(), float64(tk.Running)})
	}
	return out
}

// MaxServers returns the peak of the server series.
func MaxServers(res Result) int { return res.PeakServers }

// RequiredServers computes the ideal (oracle) server count for a rate
// under the service model at the SLA bound — the ground-truth curve
// experiments compare against.
func RequiredServers(svc cloudsim.ServiceModel, slaBound time.Duration, rate float64) int {
	if rate <= 0 {
		return 1
	}
	// Invert latency(ρ) = base + k·ρ/(1-ρ) at the SLA bound.
	d := slaBound.Seconds() - svc.Base.Seconds()
	if d <= 0 {
		return math.MaxInt32
	}
	k := svc.K.Seconds()
	rho := d / (k + d)
	per := rho * svc.CapacityPerServer
	n := int(math.Ceil(rate / per))
	if n < 1 {
		n = 1
	}
	return n
}
