package sim

import (
	"testing"
	"time"

	"scads/internal/cloudsim"
	"scads/internal/consistency"
	"scads/internal/replication"
	"scads/internal/workload"
)

var t0 = time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)

func paperSLA() consistency.PerformanceSLA {
	return consistency.PerformanceSLA{Percentile: 99.9, LatencyBound: 100 * time.Millisecond, SuccessRate: 99.9}
}

func svc() cloudsim.ServiceModel {
	return cloudsim.ServiceModel{
		CapacityPerServer: 1000,
		Base:              5 * time.Millisecond,
		K:                 30 * time.Millisecond,
	}
}

func baseConfig(tr workload.Trace, mode Mode) Config {
	return Config{
		Start:    t0,
		Duration: 6 * time.Hour,
		Tick:     time.Minute,
		Trace:    tr,
		Service:  svc(),
		SLA:      paperSLA(),
		Cloud:    cloudsim.Options{BootDelay: 90 * time.Second, PricePerHour: 0.10, BillingGranularity: time.Hour},
		Mode:     mode,
		Warmup:   true,
	}
}

func TestStaticModeHoldsSize(t *testing.T) {
	cfg := baseConfig(workload.Constant(2000), ModeStatic)
	cfg.StaticServers = 5
	res := Run(cfg)
	if res.PeakServers != 5 || res.FinalServers != 5 {
		t.Fatalf("static run changed size: peak=%d final=%d", res.PeakServers, res.FinalServers)
	}
	if res.ViolationRate() > 0.01 {
		t.Fatalf("well-provisioned static cluster violated %.1f%%", 100*res.ViolationRate())
	}
}

func TestUnderprovisionedStaticViolates(t *testing.T) {
	cfg := baseConfig(workload.Constant(5000), ModeStatic)
	cfg.StaticServers = 2 // 2500 req/s per server >> capacity
	res := Run(cfg)
	if res.ViolationRate() < 0.9 {
		t.Fatalf("overloaded cluster only violated %.1f%%", 100*res.ViolationRate())
	}
}

func TestModelDrivenTracksViralRamp(t *testing.T) {
	// A compressed Animoto-style ramp: load doubles every 45 minutes
	// for 6 hours (64x growth).
	tr := workload.Viral{Start: t0, InitialRate: 1000, DoublingTime: 45 * time.Minute}
	cfg := baseConfig(tr, ModeModelDriven)
	cfg.InitialServers = 3
	res := Run(cfg)

	finalRate := tr.Rate(t0.Add(6 * time.Hour))
	need := RequiredServers(svc(), paperSLA().LatencyBound, finalRate)
	if res.FinalServers < need*7/10 {
		t.Fatalf("final servers %d nowhere near required %d", res.FinalServers, need)
	}
	// The defining claim: the elastic cluster follows the ramp with a
	// low violation rate despite 64x growth.
	if res.ViolationRate() > 0.15 {
		t.Fatalf("model-driven violation rate %.1f%%", 100*res.ViolationRate())
	}
	// Server count grew monotonically-ish: peak >> initial.
	if res.PeakServers < 10*cfg.InitialServers {
		t.Fatalf("peak %d did not track 64x load growth", res.PeakServers)
	}
}

func TestModelDrivenBeatsReactiveOnRamp(t *testing.T) {
	tr := workload.Viral{Start: t0, InitialRate: 1000, DoublingTime: 45 * time.Minute}
	md := Run(baseConfig(tr, ModeModelDriven))
	re := Run(baseConfig(tr, ModeReactive))
	// The paper's argument for ML-driven provisioning: predicting
	// demand at the boot-delay horizon avoids the violations a purely
	// reactive controller eats while instances boot.
	if md.ViolationRate() >= re.ViolationRate() {
		t.Fatalf("model-driven (%.1f%%) not better than reactive (%.1f%%)",
			100*md.ViolationRate(), 100*re.ViolationRate())
	}
}

func TestScaleDownSavesMoney(t *testing.T) {
	// Diurnal day: elastic vs static-peak provisioning (E7's shape).
	tr := workload.Diurnal{Base: 3000, Amplitude: 2500, PeakHour: 14}
	cfg := baseConfig(tr, ModeModelDriven)
	cfg.Duration = 24 * time.Hour
	cfg.Cloud.BillingGranularity = time.Minute
	cfg.Director.ScaleDownCooldown = 5 * time.Minute
	elastic := Run(cfg)

	peakNeed := RequiredServers(svc(), paperSLA().LatencyBound, 5500)
	scfg := baseConfig(tr, ModeStatic)
	scfg.Duration = 24 * time.Hour
	scfg.Cloud.BillingGranularity = time.Minute
	scfg.StaticServers = peakNeed
	static := Run(scfg)

	if elastic.CostUSD >= static.CostUSD {
		t.Fatalf("elastic ($%.2f) not cheaper than static peak ($%.2f)",
			elastic.CostUSD, static.CostUSD)
	}
	if elastic.ViolationRate() > 0.15 {
		t.Fatalf("elastic violations %.1f%% too high", 100*elastic.ViolationRate())
	}
	// Cluster actually shrank at night.
	minServers := elastic.PeakServers
	for _, tk := range elastic.Ticks {
		if tk.Running > 0 && tk.Running < minServers {
			minServers = tk.Running
		}
	}
	if minServers >= elastic.PeakServers {
		t.Fatal("cluster never scaled down")
	}
}

func TestMeasureReaction(t *testing.T) {
	// A 4x step at hour 2: reactive mode must violate then recover.
	stepAt := t0.Add(2 * time.Hour)
	tr := workload.Spike{
		Baseline:  workload.Constant(1500),
		At:        stepAt,
		Rise:      time.Minute,
		Duration:  3 * time.Hour,
		Magnitude: 4,
	}
	cfg := baseConfig(tr, ModeReactive)
	cfg.InitialServers = 3
	res := Run(cfg)
	rs := MeasureReaction(res, stepAt)
	if !rs.EverViolated {
		t.Fatal("4x step caused no violation in reactive mode")
	}
	if !rs.Recovered {
		t.Fatal("reactive mode never recovered")
	}
	if rs.Recovery <= 0 || rs.Recovery > 2*time.Hour {
		t.Fatalf("recovery = %v", rs.Recovery)
	}
}

func TestServerSeries(t *testing.T) {
	cfg := baseConfig(workload.Constant(1000), ModeStatic)
	cfg.StaticServers = 2
	cfg.Duration = time.Hour
	res := Run(cfg)
	series := ServerSeries(res, t0)
	if len(series) != len(res.Ticks) {
		t.Fatal("series length mismatch")
	}
	if series[0][0] < 0 || series[len(series)-1][0] > 1.01 {
		t.Fatalf("series time range wrong: %v..%v", series[0][0], series[len(series)-1][0])
	}
	if MaxServers(res) != 2 {
		t.Fatalf("MaxServers = %d", MaxServers(res))
	}
}

func TestRequiredServers(t *testing.T) {
	s := svc()
	if RequiredServers(s, 100*time.Millisecond, 0) != 1 {
		t.Fatal("zero rate needs 1 server")
	}
	// Asymptotically linear (ceil effects dominate at small n).
	n10 := RequiredServers(s, 100*time.Millisecond, 10_000)
	n100 := RequiredServers(s, 100*time.Millisecond, 100_000)
	ratio := float64(n100) / float64(n10)
	if ratio < 9 || ratio > 11 {
		t.Fatalf("scaling not linear: %d vs %d", n10, n100)
	}
	// Impossible SLA.
	if RequiredServers(s, time.Millisecond, 1000) < 1<<30 {
		t.Fatal("impossible SLA should need effectively infinite servers")
	}
}

func TestModeString(t *testing.T) {
	if ModeModelDriven.String() != "model-driven" || ModeReactive.String() != "reactive" || ModeStatic.String() != "static" {
		t.Fatal("Mode strings")
	}
}

func TestRunE8DeadlineProtectsTightBounds(t *testing.T) {
	start := time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)
	dl := RunE8(replication.ByDeadline, start)
	ff := RunE8(replication.FIFO, start)

	// Both disciplines deliver the same volume; only lateness differs.
	if dl.Delivered == 0 || dl.Delivered != ff.Delivered {
		t.Fatalf("delivered: deadline=%d fifo=%d", dl.Delivered, ff.Delivered)
	}
	// The deadline queue protects the tight class entirely; FIFO,
	// blind to deadlines, burns thousands of tight-bound deadlines.
	if dl.TightViolations != 0 {
		t.Fatalf("deadline discipline violated %d tight bounds", dl.TightViolations)
	}
	if ff.TightViolations == 0 {
		t.Fatal("FIFO should violate tight bounds under overload")
	}
	// Neither class's 60s bound is violated: the burst backlog drains
	// well within a minute.
	if dl.LooseViolations != 0 || ff.LooseViolations != 0 {
		t.Fatalf("loose violations: deadline=%d fifo=%d", dl.LooseViolations, ff.LooseViolations)
	}
	if ff.MaxTightStale <= dl.MaxTightStale {
		t.Fatalf("max tight staleness: fifo %v should exceed deadline %v",
			ff.MaxTightStale, dl.MaxTightStale)
	}
	// Determinism: a rerun is bit-identical.
	if again := RunE8(replication.ByDeadline, start); again != dl {
		t.Fatalf("RunE8 not deterministic: %+v vs %+v", again, dl)
	}
}
