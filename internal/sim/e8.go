package sim

import (
	"time"

	"scads/internal/clock"
	"scads/internal/record"
	"scads/internal/replication"
)

// E8Result carries the per-staleness-class violation counts of one E8
// run (§3.3.2's deadline-queue experiment).
type E8Result struct {
	TightViolations int64 // 1s-bound updates delivered late
	LooseViolations int64 // 60s-bound updates delivered late
	Delivered       int64
	MaxTightStale   time.Duration
}

// RunE8 drives the §3.3.2 experiment: 100 writes/s for 60 seconds —
// half with a 1s staleness bound, half with 60s — against a pump that
// can deliver only 80/s. Demand (100/s) exceeds capacity (80/s) during
// the burst, so something must be late: the deadline discipline
// sacrifices loose bounds to protect tight ones, while FIFO treats
// them alike and violates both.
func RunE8(order replication.Order, start time.Time) E8Result {
	vc := clock.NewVirtual(start)
	q := replication.NewQueue(order)
	pump := replication.NewPump(q, func(ns, node string, recs []record.Record) error {
		return nil
	}, vc)
	var res E8Result
	ver := uint64(0)
	for tick := 0; tick < 180; tick++ {
		if tick < 60 {
			for w := 0; w < 50; w++ {
				ver++
				pump.Enqueue("tight", record.Record{Key: []byte{1}, Version: ver}, []string{"r"}, time.Second)
				ver++
				pump.Enqueue("loose", record.Record{Key: []byte{2}, Version: ver}, []string{"r"}, time.Minute)
			}
		}
		pump.Drain(80)
		if st := pump.Tracker().Staleness("tight", "r"); st > res.MaxTightStale {
			res.MaxTightStale = st
		}
		vc.Advance(time.Second)
	}
	for pump.Drain(1000) > 0 {
	}
	res.TightViolations = pump.ViolationsFor("tight")
	res.LooseViolations = pump.ViolationsFor("loose")
	res.Delivered = pump.Stats().Delivered
	return res
}
