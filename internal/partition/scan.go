package partition

import (
	"errors"
	"sync/atomic"
	"time"

	"scads/internal/record"
	"scads/internal/rpc"
)

// DefaultScanParallelism bounds how many per-range sub-scans one scan
// fans out concurrently when neither the router nor the caller says
// otherwise.
const DefaultScanParallelism = 8

// ScanOptions tunes one scatter-gather scan.
type ScanOptions struct {
	// Limit caps the number of returned records. Required (> 0): scale
	// independence forbids unbounded scans.
	Limit int
	// Policy selects which replica serves each sub-scan.
	Policy ReadPolicy
	// Projection names the columns storage nodes should narrow each
	// row to before returning it (empty = full stored rows).
	Projection []string
	// Preds are conjunctive filters evaluated node-side; rows failing
	// them never cross the wire and do not count against Limit.
	Preds []rpc.ScanPred
	// Parallelism bounds concurrent per-range sub-scans. 0 uses the
	// router's configured default; 1 degenerates to the sequential
	// range-at-a-time path (the ablation baseline).
	Parallelism int
	// Tenant is the admission-control identity the scan is accounted
	// to; it rides each sub-scan's request envelope so node-side
	// accounting can attribute the bytes.
	Tenant string
}

// scanSub is one fixed sub-interval of the scan, assigned to a worker.
// The interval never changes after fan-out — retries re-resolve which
// range currently serves it, so a concurrent split or migration moves
// the request, not the bounds — which keeps sub-results disjoint and
// their concatenation in fan-out order globally key-sorted.
type scanSub struct {
	start, end []byte

	done chan struct{} // closed once the first page is in
	page scanPage
}

// scanPage is one node round-trip's worth of a sub-interval.
type scanPage struct {
	recs   []record.Record
	more   bool
	resume []byte
	err    error
}

// Scan performs a bounded range read across however many partitions
// [start, end) spans, in key order, up to limit records. It is
// ScanOpts with default options; see there for the execution model.
func (r *Router) Scan(namespace string, start, end []byte, limit int, policy ReadPolicy) ([]record.Record, error) {
	return r.ScanOpts(namespace, start, end, ScanOptions{Limit: limit, Policy: policy})
}

// ScanOpts executes one bounded range read as a parallel
// scatter-gather pipeline:
//
//   - scatter: the overlapping ranges of the partition map become
//     fixed sub-intervals, fanned out to at most Parallelism
//     concurrent sub-scans, each with a proportional share of the
//     limit pushed down (plus slack for skew);
//   - per-range resilience: a sub-scan that hits a write fence
//     (mid-migration handoff) or an unreachable replica retries
//     against a freshly read partition map under the same shared
//     wall-clock budgets the write path uses, failing over across
//     replicas via the read policy's replica order;
//   - gather: sub-results are merged in keyspace order — the
//     sub-intervals partition [start, end), so the k-way merge
//     degenerates to ordered concatenation — and the merge cuts off
//     exactly at Limit, marking still-unstarted sub-scans skipped;
//   - adaptive re-fetch: when an early range under-fills the global
//     limit and a sub-scan's page was cut short (pushed-down limit
//     filled, node raw-visit cap, or a concurrent split shrank the
//     serving range), the gather loop pages on from the node's resume
//     cursor with the remaining limit.
func (r *Router) ScanOpts(namespace string, start, end []byte, o ScanOptions) ([]record.Record, error) {
	if o.Limit <= 0 {
		return nil, errors.New("partition: scan requires a positive limit (scale independence)")
	}
	m, err := r.mapFor(namespace)
	if err != nil {
		return nil, err
	}
	ranges := m.Overlapping(start, end)
	deadline := time.Now().Add(rpc.DownRetryBudget)

	if len(ranges) <= 1 {
		// Single-range fast path: no fan-out machinery.
		return r.gatherInterval(namespace, start, end, o, deadline, nil)
	}

	subs := make([]*scanSub, len(ranges))
	for i, rng := range ranges {
		subs[i] = &scanSub{
			start: maxKey(start, rng.Start),
			end:   minKey(end, rng.End),
			done:  make(chan struct{}),
		}
	}
	// Push a proportional share of the limit into each sub-scan, with
	// half a share of slack so mild skew doesn't force a second round
	// trip; the gather loop's re-fetch covers the rest.
	perLimit := o.Limit/len(subs) + o.Limit/(2*len(subs)) + 1
	if perLimit > o.Limit {
		perLimit = o.Limit
	}

	par := o.Parallelism
	if par == 0 {
		par = r.scanParallelism()
	}
	if par < 1 {
		par = 1
	}
	if par > len(subs) {
		par = len(subs)
	}

	// Workers claim sub-intervals in keyspace order, so the gather
	// loop's next-needed interval is always the earliest one in
	// flight; cutoff marks the rest skipped without paying for them.
	var next atomic.Int64
	var cutoff atomic.Bool
	for w := 0; w < par; w++ {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(subs) {
					return
				}
				sub := subs[i]
				if cutoff.Load() {
					// The gather loop has already returned (limit filled
					// or error) and will never read this sub — just don't
					// pay for the fetch.
					close(sub.done)
					continue
				}
				sub.page = r.scanInterval(namespace, sub.start, sub.end, perLimit, o, deadline)
				close(sub.done)
			}
		}()
	}

	out := make([]record.Record, 0, min(o.Limit, 1024))
	for _, sub := range subs {
		if len(out) >= o.Limit {
			cutoff.Store(true)
			break
		}
		<-sub.done
		if sub.page.err != nil {
			cutoff.Store(true)
			return nil, sub.page.err
		}
		out, err = r.gatherPages(namespace, sub, o, deadline, out)
		if err != nil {
			cutoff.Store(true)
			return nil, err
		}
	}
	cutoff.Store(true)
	return out, nil
}

// gatherPages drains one sub-interval into out: the prefetched first
// page, then adaptive re-fetches from the node's resume cursor while
// the global limit still has room.
func (r *Router) gatherPages(namespace string, sub *scanSub, o ScanOptions, deadline time.Time, out []record.Record) ([]record.Record, error) {
	page := sub.page
	for {
		need := o.Limit - len(out)
		if need <= 0 {
			return out, nil
		}
		if len(page.recs) > need {
			page.recs = page.recs[:need]
		}
		out = append(out, page.recs...)
		if !page.more || len(out) >= o.Limit {
			return out, nil
		}
		page = r.scanInterval(namespace, page.resume, sub.end, o.Limit-len(out), o, deadline)
		if page.err != nil {
			return nil, page.err
		}
	}
}

// gatherInterval runs a whole interval through scanInterval pages
// sequentially (the single-range fast path).
func (r *Router) gatherInterval(namespace string, start, end []byte, o ScanOptions, deadline time.Time, out []record.Record) ([]record.Record, error) {
	sub := &scanSub{start: start, end: end}
	sub.page = r.scanInterval(namespace, start, end, o.Limit, o, deadline)
	if sub.page.err != nil {
		return nil, sub.page.err
	}
	return r.gatherPages(namespace, sub, o, deadline, out)
}

// scanInterval fetches one page of [start, end) from whichever range
// currently serves its first key, with the shared resilience contract:
// replica failover within an attempt, and map re-read plus retry on
// fences (rpc.FenceRetryLimit attempts) and unreachable replica sets
// (wall-clock deadline), exactly like the write path. When a
// concurrent split means the serving range covers only a prefix of the
// interval, the page reports a resume cursor at the range boundary so
// the caller continues into the successor range.
func (r *Router) scanInterval(namespace string, start, end []byte, limit int, o ScanOptions, deadline time.Time) scanPage {
	if limit <= 0 {
		return scanPage{}
	}
	fenceAttempts := 0
	for {
		m, err := r.mapFor(namespace)
		if err != nil {
			return scanPage{err: err}
		}
		rng := m.Lookup(start)
		subEnd := minKey(end, rng.End)
		req := rpc.Request{
			Method: rpc.MethodScan, Namespace: namespace, Tenant: o.Tenant,
			Start: start, End: subEnd, Limit: limit,
			Projection: o.Projection, Preds: o.Preds,
		}
		var fenced, overloaded bool
		var retryAfter time.Duration
		for _, id := range r.replicaOrder(rng.Replicas, o.Policy) {
			addr, ok := r.addrOf(id)
			if !ok {
				continue
			}
			resp, err := r.transport.Call(addr, req)
			if err != nil {
				continue // failover to the next replica
			}
			if e := resp.Error(); e != nil {
				if rpc.IsFenced(e) {
					// Mid-handoff: every replica of this range is about
					// to flip, so re-read the map rather than trying the
					// others.
					fenced = true
					break
				}
				if rpc.IsOverloaded(e) {
					// The replica shed this sub-scan under its handler
					// bound: honor its retry-after hint, but first give
					// the remaining replicas a chance — they may have
					// headroom.
					overloaded = true
					retryAfter = rpc.RetryAfter(e)
					continue
				}
				return scanPage{err: e}
			}
			page := scanPage{recs: resp.Records, more: resp.More, resume: resp.Resume}
			if !page.more && !boundsEqual(subEnd, end) {
				// The serving range ended before the interval does (a
				// split landed between fan-out and now): continue from
				// the boundary.
				page.more = true
				page.resume = subEnd
			}
			return page
		}
		if fenced {
			fenceAttempts++
			if fenceAttempts > rpc.FenceRetryLimit {
				return scanPage{err: rpc.ErrFenced}
			}
			time.Sleep(rpc.FenceRetryPause)
			continue
		}
		if overloaded {
			// Every reachable replica shed the sub-scan: back off for
			// the hinted interval under the scan's shared wall-clock
			// budget instead of hammering a saturated node.
			if time.Now().After(deadline) {
				return scanPage{err: rpc.Overloaded(retryAfter, "scan retry budget exhausted")}
			}
			time.Sleep(retryAfter)
			continue
		}
		// Every replica unreachable: likely a crash window the repair
		// manager is resolving with a failover flip. The budget is
		// wall-clock, shared across the whole scan.
		if time.Now().After(deadline) {
			return scanPage{err: ErrNoReplicaAvailable}
		}
		time.Sleep(rpc.DownRetryPause)
	}
}

func boundsEqual(a, b []byte) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return string(a) == string(b)
}
