package partition

import (
	"sync/atomic"
	"testing"
	"time"

	"scads/internal/rpc"
)

// shedTransport rejects the first n calls of a given method with a
// classified overload response (a node whose handler bound is
// saturated), then delegates — the shape of a transient shed that a
// retry-after wait should absorb.
type shedTransport struct {
	next   rpc.Transport
	method string
	left   atomic.Int64
	sheds  atomic.Int64
}

func (s *shedTransport) Call(addr string, req rpc.Request) (rpc.Response, error) {
	if req.Method == s.method && s.left.Add(-1) >= 0 {
		s.sheds.Add(1)
		return rpc.Response{
			ID:  req.ID,
			Err: rpc.ErrString(rpc.Overloaded(time.Millisecond, "test shed")),
		}, nil
	}
	return s.next.Call(addr, req)
}

// TestWriteWaitsOutOverloadedPrimary: a write whose primary sheds the
// first attempts must honor the retry-after hint and land, not
// surface ErrOverloaded to the caller.
func TestWriteWaitsOutOverloadedPrimary(t *testing.T) {
	tc := newTestCluster(t, "n1")
	shed := &shedTransport{next: tc.transport, method: rpc.MethodPut}
	shed.left.Store(3)
	r := NewRouter(shed, tc.dir)
	m, _ := NewMap([]string{"n1"})
	r.SetMap("ns", m)

	if _, _, err := r.Put("ns", []byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put through transient overload: %v", err)
	}
	if got := shed.sheds.Load(); got != 3 {
		t.Fatalf("sheds consumed = %d, want 3", got)
	}
	if _, _, found, err := r.Get("ns", []byte("k"), ReadPrimary); err != nil || !found {
		t.Fatalf("write lost after overload retries: found=%v err=%v", found, err)
	}
}

// TestScanWaitsOutOverloadedReplica: a scan whose only replica sheds
// the first attempts retries under its budget and completes.
func TestScanWaitsOutOverloadedReplica(t *testing.T) {
	tc := newTestCluster(t, "n1")
	m, _ := NewMap([]string{"n1"})
	tc.router.SetMap("ns", m)
	loadScanData(t, tc, "ns", 20)

	shed := &shedTransport{next: tc.transport, method: rpc.MethodScan}
	shed.left.Store(2)
	r := NewRouter(shed, tc.dir)
	r.SetMap("ns", m)

	recs, err := r.ScanOpts("ns", nil, nil, ScanOptions{Limit: 100, Policy: ReadPrimary})
	if err != nil {
		t.Fatalf("scan through transient overload: %v", err)
	}
	if len(recs) != 20 {
		t.Fatalf("scan returned %d records, want 20", len(recs))
	}
	if shed.sheds.Load() == 0 {
		t.Fatal("shed transport never fired")
	}
}

// TestGetFailsOverFromOverloadedReplica: a point read against a shed
// replica fails over to the next replica instead of erroring — an
// overloaded node is treated like a down one for replica selection.
func TestGetFailsOverFromOverloadedReplica(t *testing.T) {
	tc := newTestCluster(t, "n1", "n2")
	m, _ := NewMap([]string{"n1", "n2"})
	tc.router.SetMap("ns", m)
	if _, _, err := tc.router.Put("ns", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Router writes land on the primary only (replication is the
	// coordinator pump's job); seed the replica directly so failover
	// has somewhere to go.
	resp, err := tc.transport.Call("addr-n2", rpc.Request{
		Method: rpc.MethodPut, Namespace: "ns", Key: []byte("k"), Value: []byte("v"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := resp.Error(); e != nil {
		t.Fatal(e)
	}

	// Shed every get aimed at the primary: only failover to the
	// second replica can succeed. ReadPrimary orders the shed replica
	// first deterministically.
	shed := &shedGetFirstReplica{next: tc.transport, shedAddr: "addr-n1"}
	r := NewRouter(shed, tc.dir)
	r.SetMap("ns", m)

	val, _, found, err := r.Get("ns", []byte("k"), ReadPrimary)
	if err != nil || !found {
		t.Fatalf("read did not fail over from overloaded replica: found=%v err=%v", found, err)
	}
	if string(val) != "v" {
		t.Fatalf("read returned %q, want v", val)
	}
	if shed.sheds.Load() == 0 {
		t.Fatal("first replica was never tried")
	}
}

// shedGetFirstReplica permanently sheds gets aimed at one address.
type shedGetFirstReplica struct {
	next     rpc.Transport
	shedAddr string
	sheds    atomic.Int64
}

func (s *shedGetFirstReplica) Call(addr string, req rpc.Request) (rpc.Response, error) {
	if req.Method == rpc.MethodGet && addr == s.shedAddr {
		s.sheds.Add(1)
		return rpc.Response{
			ID:  req.ID,
			Err: rpc.ErrString(rpc.Overloaded(time.Millisecond, "test shed")),
		}, nil
	}
	return s.next.Call(addr, req)
}
