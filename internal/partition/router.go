package partition

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scads/internal/cluster"
	"scads/internal/record"
	"scads/internal/rpc"
)

// ReadPolicy selects which replica serves reads.
type ReadPolicy int

const (
	// ReadAny rotates across replicas — the default relaxed-consistency
	// read path (stale reads possible within the declared bound).
	ReadAny ReadPolicy = iota
	// ReadPrimary always reads the primary — used when the
	// consistency spec demands read-your-writes without session state
	// or serializable access.
	ReadPrimary
)

// ErrNoReplicaAvailable is returned when every replica of the target
// range is down or unreachable.
var ErrNoReplicaAvailable = errors.New("partition: no replica available")

// IsUnavailable reports whether err means the operation's target nodes
// could not be reached (as opposed to a semantic failure from a node
// that answered). Coordinator write paths treat these like fence
// rejections: re-read the partition map and retry, so a crash-failover
// flip by the repair manager un-sticks the writer.
func IsUnavailable(err error) bool {
	return err != nil && (errors.Is(err, ErrNoReplicaAvailable) || rpc.IsUnreachable(err))
}

// Router maps (namespace, key) to replica groups and performs the
// client-side request fan-out. Safe for concurrent use.
type Router struct {
	transport rpc.Transport
	dir       *cluster.Directory

	mu   sync.RWMutex
	maps map[string]*Map

	rr      atomic.Uint64 // round-robin counter for ReadAny
	scanPar atomic.Int64  // scatter-gather fan-out bound (0 = default)
}

// NewRouter returns a Router resolving node addresses through dir and
// calling through transport.
func NewRouter(transport rpc.Transport, dir *cluster.Directory) *Router {
	return &Router{transport: transport, dir: dir, maps: make(map[string]*Map)}
}

// SetMap installs the partition map for a namespace.
func (r *Router) SetMap(namespace string, m *Map) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maps[namespace] = m
}

// Map returns the partition map for a namespace.
func (r *Router) Map(namespace string) (*Map, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.maps[namespace]
	return m, ok
}

// Namespaces lists namespaces with installed maps.
func (r *Router) Namespaces() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.maps))
	for ns := range r.maps {
		out = append(out, ns)
	}
	return out
}

func (r *Router) mapFor(namespace string) (*Map, error) {
	m, ok := r.Map(namespace)
	if !ok {
		return nil, fmt.Errorf("partition: no map for namespace %q", namespace)
	}
	return m, nil
}

// addrOf resolves a node ID to its address if the node is serving.
func (r *Router) addrOf(nodeID string) (string, bool) {
	m, ok := r.dir.Get(nodeID)
	if !ok || m.Status != cluster.StatusUp {
		return "", false
	}
	return m.Addr, true
}

// Get reads key, trying replicas according to policy with failover.
// It returns the value, its version, and whether it was found. When no
// replica at all is reachable the lookup is retried against a freshly
// read partition map (up to the shared down-retry budget), so reads —
// including the primary reads the write path depends on — ride through
// a crash window that the repair manager resolves with a failover
// flip.
func (r *Router) Get(namespace string, key []byte, policy ReadPolicy) ([]byte, uint64, bool, error) {
	m, err := r.mapFor(namespace)
	if err != nil {
		return nil, 0, false, err
	}
	return r.getUntil(m, namespace, key, policy, time.Now().Add(rpc.DownRetryBudget))
}

// getUntil is Get with an explicit retry deadline, so batched
// fallbacks can share one budget across many keys instead of paying
// it per key.
func (r *Router) getUntil(m *Map, namespace string, key []byte, policy ReadPolicy, deadline time.Time) ([]byte, uint64, bool, error) {
	req := rpc.Request{Method: rpc.MethodGet, Namespace: namespace, Key: key}
	for {
		rng := m.Lookup(key)
		for _, id := range r.replicaOrder(rng.Replicas, policy) {
			addr, ok := r.addrOf(id)
			if !ok {
				continue
			}
			resp, err := r.transport.Call(addr, req)
			if err != nil {
				continue // failover to the next replica
			}
			if e := resp.Error(); e != nil {
				if rpc.IsOverloaded(e) {
					// The replica shed the read under its handler
					// bound: fail over to the next replica; if every
					// replica sheds, the outer loop backs off for the
					// hinted interval under the shared budget.
					continue
				}
				return nil, 0, false, e
			}
			return resp.Value, resp.Version, resp.Found, nil
		}
		// The budget is wall-clock, not attempt-counted: over TCP one
		// attempt can burn a whole dial timeout.
		if time.Now().After(deadline) {
			return nil, 0, false, ErrNoReplicaAvailable
		}
		time.Sleep(rpc.DownRetryPause)
	}
}

// GetResult is one key's outcome from GetBatch.
type GetResult struct {
	Value   []byte
	Version uint64
	Found   bool
	Err     error
}

// GetBatch reads many keys with at most one request per storage node:
// keys are grouped by the replica the policy selects and fetched
// through one MethodBatch envelope per node, so a coordinator-side
// multi-get costs a handful of round-trips instead of one per key.
// Keys whose batched read fails (node unreachable, malformed reply)
// fall back to the single-key path with its usual replica failover.
// The returned slice matches keys positionally; per-key failures are
// reported in GetResult.Err rather than aborting the batch.
func (r *Router) GetBatch(namespace string, keys [][]byte, policy ReadPolicy) ([]GetResult, error) {
	m, err := r.mapFor(namespace)
	if err != nil {
		return nil, err
	}
	out := make([]GetResult, len(keys))
	groups := make(map[string][]int) // addr -> indices into keys
	var unrouted []int               // keys with no reachable replica right now
	for i, key := range keys {
		rng := m.Lookup(key)
		addr := ""
		for _, id := range r.replicaOrder(rng.Replicas, policy) {
			if a, ok := r.addrOf(id); ok {
				addr = a
				break
			}
		}
		if addr == "" {
			// No replica is reachable at this instant — likely a crash
			// window the repair manager is about to resolve. Fall back
			// to the single-key path, which re-reads the map and waits
			// out the failover.
			unrouted = append(unrouted, i)
			continue
		}
		groups[addr] = append(groups[addr], i)
	}
	// One flight per node, all in parallel; each goroutine writes a
	// disjoint set of out indices.
	var wg sync.WaitGroup
	for addr, idxs := range groups {
		wg.Add(1)
		go func(addr string, idxs []int) {
			defer wg.Done()
			subs := make([]rpc.Request, len(idxs))
			for j, i := range idxs {
				subs[j] = rpc.Request{Method: rpc.MethodGet, Namespace: namespace, Key: keys[i]}
			}
			var resps []rpc.Response
			if len(subs) == 1 {
				if resp, err := r.transport.Call(addr, subs[0]); err == nil {
					resps = []rpc.Response{resp}
				}
			} else {
				resp, err := r.transport.Call(addr, rpc.Request{Method: rpc.MethodBatch, Batch: subs})
				if err == nil && len(resp.Batch) == len(subs) {
					resps = resp.Batch
				}
			}
			if resps == nil {
				for _, i := range idxs {
					v, ver, found, err := r.Get(namespace, keys[i], policy)
					out[i] = GetResult{Value: v, Version: ver, Found: found, Err: err}
				}
				return
			}
			for j, i := range idxs {
				resp := resps[j]
				if e := resp.Error(); e != nil {
					out[i] = GetResult{Err: e}
					continue
				}
				out[i] = GetResult{Value: resp.Value, Version: resp.Version, Found: resp.Found}
			}
		}(addr, idxs)
	}
	if len(unrouted) > 0 {
		// One goroutine and one shared down-retry budget for ALL
		// unrouted keys: they typically share the same crashed range,
		// and a permanent configuration error must cost one budget per
		// batch, not one per key.
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(rpc.DownRetryBudget)
			for _, i := range unrouted {
				v, ver, found, err := r.getUntil(m, namespace, keys[i], policy, deadline)
				out[i] = GetResult{Value: v, Version: ver, Found: found, Err: err}
			}
		}()
	}
	wg.Wait()
	return out, nil
}

// GetFrom reads key from one specific replica (used by session
// guarantees to pin reads and by experiments that measure staleness).
// Failing over to another replica would break the pinning, so an
// unreachable node is classified as ErrNoReplicaAvailable — exactly
// like a node the directory already marked down — and the caller
// decides whether its session floor lets it try elsewhere.
func (r *Router) GetFrom(namespace, nodeID string, key []byte) ([]byte, uint64, bool, error) {
	addr, ok := r.addrOf(nodeID)
	if !ok {
		return nil, 0, false, ErrNoReplicaAvailable
	}
	resp, err := r.transport.Call(addr, rpc.Request{Method: rpc.MethodGet, Namespace: namespace, Key: key})
	if err != nil {
		if rpc.IsUnreachable(err) {
			return nil, 0, false, fmt.Errorf("%w: %s: %v", ErrNoReplicaAvailable, nodeID, err)
		}
		return nil, 0, false, err
	}
	if e := resp.Error(); e != nil {
		if rpc.IsOverloaded(e) {
			// The pinned replica shed the read: classify like a down
			// node so the session read path fails over to the next
			// replica instead of surfacing raw backpressure.
			return nil, 0, false, fmt.Errorf("%w: %s shed the read: %v", ErrNoReplicaAvailable, nodeID, e)
		}
		return nil, 0, false, e
	}
	return resp.Value, resp.Version, resp.Found, nil
}

// Put writes to the primary replica of key's range and returns the
// assigned version together with the replica group, so the caller can
// schedule asynchronous propagation to the remaining replicas.
func (r *Router) Put(namespace string, key, value []byte) (version uint64, replicas []string, err error) {
	return r.write(namespace, key, value, rpc.MethodPut)
}

// Delete tombstones key on the primary replica.
func (r *Router) Delete(namespace string, key []byte) (version uint64, replicas []string, err error) {
	return r.write(namespace, key, nil, rpc.MethodDelete)
}

func (r *Router) write(namespace string, key, value []byte, method string) (uint64, []string, error) {
	m, err := r.mapFor(namespace)
	if err != nil {
		return 0, nil, err
	}
	// Fence retries are counted separately from the wall-clock down
	// budget: a write that waited out a crash failover must still get
	// its full fence allowance when the promoted primary is briefly
	// fenced by the ensuing RF-repair handoff.
	downDeadline := time.Now().Add(rpc.DownRetryBudget)
	fenceAttempts := 0
	for {
		rng := m.Lookup(key)
		primary := rng.Replicas[0]
		addr, ok := r.addrOf(primary)
		if !ok {
			// The primary is marked down. Each retry re-reads the
			// partition map, so the first attempt after the repair
			// manager's failover flip lands on the promoted replica.
			// The budget is wall-clock (over TCP one attempt can burn
			// a whole dial timeout).
			if time.Now().Before(downDeadline) {
				time.Sleep(rpc.DownRetryPause)
				continue
			}
			return 0, nil, fmt.Errorf("%w: primary %s down", ErrNoReplicaAvailable, primary)
		}
		resp, err := r.transport.Call(addr, rpc.Request{Method: method, Namespace: namespace, Key: key, Value: value})
		if err != nil {
			// Unreachable before the directory noticed: same failover
			// wait as a down primary.
			if rpc.IsUnreachable(err) && time.Now().Before(downDeadline) {
				time.Sleep(rpc.DownRetryPause)
				continue
			}
			return 0, nil, err
		}
		if e := resp.Error(); e != nil {
			if rpc.IsFenced(e) && fenceAttempts < rpc.FenceRetryLimit {
				// The range is mid-handoff: each retry re-reads the
				// partition map, so the first attempt after the flip
				// lands on the new primary.
				fenceAttempts++
				time.Sleep(rpc.FenceRetryPause)
				continue
			}
			if rpc.IsOverloaded(e) && time.Now().Before(downDeadline) {
				// The primary shed the write under its handler bound:
				// honor the retry-after hint under the shared
				// wall-clock budget — backpressure delays the write,
				// it does not fail it.
				time.Sleep(rpc.RetryAfter(e))
				continue
			}
			return 0, nil, e
		}
		return resp.Version, rng.Replicas, nil
	}
}

// Apply delivers pre-versioned records to one specific node — the
// delivery primitive under the replication pump and the coordinator
// retry loops. It deliberately returns transport and node errors
// unclassified: the callers own the retry budgets (applyToPrimary
// waits out fences and failovers under rpc.FenceRetryLimit /
// rpc.DownRetryBudget; the pump reparks undelivered records), and
// classifying here would double-charge a budget per attempt.
func (r *Router) Apply(namespace, nodeID string, recs []record.Record) error {
	addr, ok := r.addrOf(nodeID)
	if !ok {
		return ErrNoReplicaAvailable
	}
	resp, err := r.transport.Call(addr, rpc.Request{Method: rpc.MethodApply, Namespace: namespace, Records: recs})
	if err != nil {
		return err //lint:rpcretry-ok delivery primitive: applyToPrimary/write-path loops and the pump classify this and own the retry budgets
	}
	return resp.Error() //lint:rpcretry-ok delivery primitive: callers classify fence/unreachable and own the retry budgets
}

// SetScanParallelism bounds how many per-range sub-scans one scan fans
// out concurrently (see ScanOpts). n <= 0 restores the default;
// n == 1 makes every scan sequential.
func (r *Router) SetScanParallelism(n int) {
	if n <= 0 {
		n = DefaultScanParallelism
	}
	r.scanPar.Store(int64(n))
}

func (r *Router) scanParallelism() int {
	if n := r.scanPar.Load(); n > 0 {
		return int(n)
	}
	return DefaultScanParallelism
}

// replicaOrder returns the replica IDs in the order reads should try
// them.
func (r *Router) replicaOrder(replicas []string, policy ReadPolicy) []string {
	if policy == ReadPrimary || len(replicas) == 1 {
		return replicas
	}
	n := len(replicas)
	off := int(r.rr.Add(1)) % n
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, replicas[(off+i)%n])
	}
	return out
}

func maxKey(a, b []byte) []byte {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if string(a) >= string(b) {
		return a
	}
	return b
}

func minKey(a, b []byte) []byte {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if string(a) <= string(b) {
		return a
	}
	return b
}
