package partition

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"scads/internal/clock"
	"scads/internal/cluster"
	"scads/internal/record"
	"scads/internal/rpc"
	"scads/internal/storage"
)

func TestNewMapCoversEverything(t *testing.T) {
	m, err := NewMap([]string{"n1", "n2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "a", "zzz", "\xff\xff"} {
		rng := m.Lookup([]byte(k))
		if !rng.Contains([]byte(k)) {
			t.Fatalf("Lookup(%q) returned non-containing range %v", k, rng)
		}
	}
	if _, err := NewMap(nil); err != ErrNeedReplicas {
		t.Fatalf("NewMap(nil) = %v", err)
	}
}

func TestSplitAndLookup(t *testing.T) {
	m, _ := NewMap([]string{"n1"})
	if err := m.Split([]byte("m")); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	left := m.Lookup([]byte("a"))
	right := m.Lookup([]byte("z"))
	if left.End == nil || !bytes.Equal(left.End, []byte("m")) {
		t.Fatalf("left = %v", left)
	}
	if right.Start == nil || !bytes.Equal(right.Start, []byte("m")) {
		t.Fatalf("right = %v", right)
	}
	// Boundary key belongs to the right range (start inclusive).
	if got := m.Lookup([]byte("m")); !bytes.Equal(got.Start, []byte("m")) {
		t.Fatalf("Lookup(m) = %v", got)
	}
	// Splitting at an existing boundary fails.
	if err := m.Split([]byte("m")); err != ErrBadSplit {
		t.Fatalf("double split = %v", err)
	}
	if err := m.Split(nil); err != ErrBadSplit {
		t.Fatalf("nil split = %v", err)
	}
}

func TestMerge(t *testing.T) {
	m, _ := NewMap([]string{"n1"})
	m.Split([]byte("g"))
	m.Split([]byte("p"))
	if m.Len() != 3 {
		t.Fatal("setup failed")
	}
	if err := m.Merge([]byte("g")); err != nil { // merges [g,p) with [p,inf)
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("Len after merge = %d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Merging the last range fails.
	if err := m.Merge([]byte("z")); err != ErrNoSuchRange {
		t.Fatalf("merge last = %v", err)
	}
}

func TestSetReplicasAndReplaceNode(t *testing.T) {
	m, _ := NewMap([]string{"n1", "n2"})
	m.Split([]byte("m"))
	if err := m.SetReplicas([]byte("z"), []string{"n3"}); err != nil {
		t.Fatal(err)
	}
	if got := m.Lookup([]byte("z")).Replicas; len(got) != 1 || got[0] != "n3" {
		t.Fatalf("replicas = %v", got)
	}
	if err := m.SetReplicas([]byte("z"), nil); err != ErrNeedReplicas {
		t.Fatal("empty replica set accepted")
	}
	changed := m.ReplaceNode("n1", "n9")
	if changed != 1 {
		t.Fatalf("ReplaceNode changed %d ranges, want 1", changed)
	}
	if got := m.Lookup([]byte("a")).Replicas[0]; got != "n9" {
		t.Fatalf("primary after replace = %q", got)
	}
	nodes := m.NodesInUse()
	if !nodes["n9"] || !nodes["n2"] || !nodes["n3"] || nodes["n1"] {
		t.Fatalf("NodesInUse = %v", nodes)
	}
}

func TestOverlapping(t *testing.T) {
	m, _ := NewMap([]string{"n1"})
	m.Split([]byte("g"))
	m.Split([]byte("p"))
	// [nil,g) [g,p) [p,nil)
	cases := []struct {
		start, end string
		want       int
	}{
		{"a", "b", 1},
		{"a", "h", 2},
		{"a", "z", 3},
		{"h", "i", 1},
		{"q", "z", 1},
		{"g", "p", 1},
	}
	for _, c := range cases {
		got := m.Overlapping([]byte(c.start), []byte(c.end))
		if len(got) != c.want {
			t.Errorf("Overlapping(%q,%q) = %d ranges, want %d", c.start, c.end, len(got), c.want)
		}
	}
	if got := m.Overlapping(nil, nil); len(got) != 3 {
		t.Errorf("Overlapping(nil,nil) = %d, want 3", len(got))
	}
}

func TestVersionBumpsOnMutation(t *testing.T) {
	m, _ := NewMap([]string{"n1"})
	v0 := m.Version()
	m.Split([]byte("m"))
	if m.Version() <= v0 {
		t.Fatal("Split did not bump version")
	}
	v1 := m.Version()
	m.SetReplicas([]byte("a"), []string{"n2"})
	if m.Version() <= v1 {
		t.Fatal("SetReplicas did not bump version")
	}
}

// Property: after any sequence of splits, the map stays valid and
// every key maps to exactly one range that contains it.
func TestQuickSplitsPreserveInvariants(t *testing.T) {
	f := func(points [][]byte, probes [][]byte) bool {
		m, _ := NewMap([]string{"n1"})
		for _, p := range points {
			if len(p) == 0 {
				continue
			}
			m.Split(p) // errors (duplicate boundary) are fine
		}
		if m.Validate() != nil {
			return false
		}
		for _, k := range probes {
			rng := m.Lookup(k)
			if !rng.Contains(k) {
				return false
			}
			// Exactly one range must contain k.
			n := 0
			for _, r := range m.Ranges() {
				if r.Contains(k) {
					n++
				}
			}
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- router tests ---

type testCluster struct {
	transport *rpc.LocalTransport
	dir       *cluster.Directory
	router    *Router
	nodes     map[string]*cluster.Node
}

func newTestCluster(t testing.TB, ids ...string) *testCluster {
	t.Helper()
	tc := &testCluster{
		transport: rpc.NewLocalTransport(),
		dir:       cluster.NewDirectory(clock.NewVirtual(time.Unix(0, 0))),
		nodes:     make(map[string]*cluster.Node),
	}
	tc.router = NewRouter(tc.transport, tc.dir)
	for i, id := range ids {
		e, err := storage.Open(storage.Options{NodeID: uint16(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		n := cluster.NewNode(id, e)
		tc.nodes[id] = n
		tc.transport.Register("addr-"+id, n)
		tc.dir.Join(id, "addr-"+id)
		tc.dir.MarkUp(id)
	}
	return tc
}

func TestRouterPutGet(t *testing.T) {
	tc := newTestCluster(t, "n1", "n2")
	m, _ := NewMap([]string{"n1", "n2"})
	tc.router.SetMap("users", m)

	ver, replicas, err := tc.router.Put("users", []byte("alice"), []byte("profile"))
	if err != nil || ver == 0 {
		t.Fatalf("Put: %v ver=%d", err, ver)
	}
	if len(replicas) != 2 || replicas[0] != "n1" {
		t.Fatalf("replicas = %v", replicas)
	}
	// Write landed only on the primary.
	v, _, found, err := tc.router.GetFrom("users", "n1", []byte("alice"))
	if err != nil || !found || string(v) != "profile" {
		t.Fatalf("GetFrom primary: %q %v %v", v, found, err)
	}
	_, _, found, _ = tc.router.GetFrom("users", "n2", []byte("alice"))
	if found {
		t.Fatal("write synchronously appeared on secondary (should be async)")
	}
	// Primary reads see it.
	v, _, found, err = tc.router.Get("users", []byte("alice"), ReadPrimary)
	if err != nil || !found || string(v) != "profile" {
		t.Fatalf("Get primary: %q %v %v", v, found, err)
	}
}

func TestRouterApplyPropagates(t *testing.T) {
	tc := newTestCluster(t, "n1", "n2")
	m, _ := NewMap([]string{"n1", "n2"})
	tc.router.SetMap("users", m)

	ver, _, err := tc.router.Put("users", []byte("k"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	recs := []record.Record{{Key: []byte("k"), Value: []byte("v"), Version: ver}}
	if err := tc.router.Apply("users", "n2", recs); err != nil {
		t.Fatal(err)
	}
	v, gotVer, found, err := tc.router.GetFrom("users", "n2", []byte("k"))
	if err != nil || !found || string(v) != "v" || gotVer != ver {
		t.Fatalf("after apply: %q ver=%d found=%v err=%v", v, gotVer, found, err)
	}
}

func TestRouterFailover(t *testing.T) {
	tc := newTestCluster(t, "n1", "n2")
	m, _ := NewMap([]string{"n1", "n2"})
	tc.router.SetMap("users", m)
	ver, _, _ := tc.router.Put("users", []byte("k"), []byte("v"))
	// Replicate so both hold it.
	tc.router.Apply("users", "n2", []record.Record{{Key: []byte("k"), Value: []byte("v"), Version: ver}})

	// Kill the primary: ReadAny must fail over to n2.
	tc.transport.SetDown("addr-n1", true)
	v, _, found, err := tc.router.Get("users", []byte("k"), ReadAny)
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("failover read: %q %v %v", v, found, err)
	}
	// Writes need the primary: they must fail... unless the directory
	// still lists it up but transport unreachable.
	if _, _, err := tc.router.Put("users", []byte("k2"), []byte("v2")); err == nil {
		t.Fatal("write succeeded with primary down")
	}
	// Down in the directory too: skip without calling.
	tc.dir.MarkDown("n1")
	if _, _, err := tc.router.Put("users", []byte("k3"), []byte("v3")); err == nil {
		t.Fatal("write succeeded with primary marked down")
	}
	// Both replicas down: reads fail.
	tc.dir.MarkDown("n2")
	if _, _, _, err := tc.router.Get("users", []byte("k"), ReadAny); err == nil {
		t.Fatal("read succeeded with all replicas down")
	}
}

func TestRouterScanAcrossPartitions(t *testing.T) {
	tc := newTestCluster(t, "n1", "n2")
	m, _ := NewMap([]string{"n1"})
	m.Split([]byte("k-50"))
	m.SetReplicas([]byte("k-99"), []string{"n2"})
	tc.router.SetMap("ns", m)

	// Load each partition's node with its share.
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("k-%02d", i))
		if _, _, err := tc.router.Put("ns", key, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := tc.router.Scan("ns", []byte("k-40"), []byte("k-60"), 100, ReadPrimary)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("scan returned %d records, want 20", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if bytes.Compare(recs[i-1].Key, recs[i].Key) >= 0 {
			t.Fatal("cross-partition scan out of order")
		}
	}
	// Limit is respected across partitions.
	recs, err = tc.router.Scan("ns", []byte("k-40"), []byte("k-60"), 7, ReadPrimary)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 {
		t.Fatalf("limited scan returned %d records, want 7", len(recs))
	}
	// Unbounded scans are rejected.
	if _, err := tc.router.Scan("ns", nil, nil, 0, ReadPrimary); err == nil {
		t.Fatal("unbounded scan accepted")
	}
}

func TestRouterUnknownNamespace(t *testing.T) {
	tc := newTestCluster(t, "n1")
	if _, _, _, err := tc.router.Get("ghost", []byte("k"), ReadAny); err == nil {
		t.Fatal("unknown namespace accepted")
	}
}

func TestReplicaOrderRotates(t *testing.T) {
	tc := newTestCluster(t, "n1", "n2", "n3")
	replicas := []string{"n1", "n2", "n3"}
	seenFirst := map[string]bool{}
	for i := 0; i < 20; i++ {
		order := tc.router.replicaOrder(replicas, ReadAny)
		if len(order) != 3 {
			t.Fatal("order lost replicas")
		}
		seenFirst[order[0]] = true
	}
	if len(seenFirst) != 3 {
		t.Fatalf("ReadAny never rotated: %v", seenFirst)
	}
	order := tc.router.replicaOrder(replicas, ReadPrimary)
	if order[0] != "n1" {
		t.Fatal("ReadPrimary does not start at primary")
	}
}

func TestCompareAndSetReplicas(t *testing.T) {
	m, _ := NewMap([]string{"n1", "n2"})
	// Wrong expectation: rejected, map untouched.
	if err := m.CompareAndSetReplicas([]byte("k"), []string{"n2", "n1"}, []string{"n3"}); err != ErrReplicasChanged {
		t.Fatalf("stale CAS = %v, want ErrReplicasChanged", err)
	}
	if got := m.Lookup([]byte("k")).Replicas; got[0] != "n1" {
		t.Fatalf("stale CAS mutated the map: %v", got)
	}
	// Matching expectation: applied, version bumped.
	v := m.Version()
	if err := m.CompareAndSetReplicas([]byte("k"), []string{"n1", "n2"}, []string{"n3", "n1"}); err != nil {
		t.Fatal(err)
	}
	got := m.Lookup([]byte("k")).Replicas
	if len(got) != 2 || got[0] != "n3" || got[1] != "n1" {
		t.Fatalf("replicas after CAS = %v", got)
	}
	if m.Version() <= v {
		t.Fatal("CAS did not bump the map version")
	}
	// Empty replica set still rejected.
	if err := m.CompareAndSetReplicas([]byte("k"), []string{"n3", "n1"}, nil); err != ErrNeedReplicas {
		t.Fatalf("empty CAS = %v", err)
	}
	// A second actor expecting the pre-flip set loses.
	if err := m.CompareAndSetReplicas([]byte("k"), []string{"n1", "n2"}, []string{"n2"}); err != ErrReplicasChanged {
		t.Fatalf("concurrent-loser CAS = %v", err)
	}
}

// TestGetBatchFallbackUnderCrashedNode covers the per-node-envelope
// fallback: the directory still lists the primary as up, but its
// transport is dead, so the batched read fails and every key must fall
// back to the single-key path with replica failover.
func TestGetBatchFallbackUnderCrashedNode(t *testing.T) {
	tc := newTestCluster(t, "n1", "n2")
	m, _ := NewMap([]string{"n1", "n2"})
	tc.router.SetMap("ns", m)
	keys := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	for i, k := range keys {
		ver, _, err := tc.router.Put("ns", k, []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		// Replicate so the secondary can answer the failover read.
		if err := tc.router.Apply("ns", "n2", []record.Record{{Key: k, Value: []byte("v"), Version: ver}}); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	// Crash the primary's transport without telling the directory: the
	// batch envelope to n1 errors and the fallback must recover every
	// key from n2.
	tc.transport.SetDown("addr-n1", true)
	res, err := tc.router.GetBatch("ns", keys, ReadPrimary)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil || !r.Found || string(r.Value) != "v" {
			t.Fatalf("key %d after fallback: %+v", i, r)
		}
	}
}

// TestGetBatchUnroutedKeysRetryThroughGet covers the other fallback
// entry: no replica is reachable at grouping time (directory marks
// everything down), but the down-retry loop inside Get rides through a
// concurrent recovery.
func TestGetBatchUnroutedKeysRetryThroughGet(t *testing.T) {
	tc := newTestCluster(t, "n1")
	m, _ := NewMap([]string{"n1"})
	tc.router.SetMap("ns", m)
	if _, _, err := tc.router.Put("ns", []byte("a"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	tc.dir.MarkDown("n1")
	go func() {
		time.Sleep(30 * time.Millisecond)
		tc.dir.MarkUp("n1")
	}()
	res, err := tc.router.GetBatch("ns", [][]byte{[]byte("a")}, ReadAny)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || !res[0].Found {
		t.Fatalf("unrouted key did not recover: %+v", res[0])
	}
}

// TestWriteRetriesAcrossFailoverFlip pins the coordinator-side crash
// contract: a Put against a down primary stalls in the down-retry loop
// and succeeds as soon as a failover flip re-points the range.
func TestWriteRetriesAcrossFailoverFlip(t *testing.T) {
	tc := newTestCluster(t, "n1", "n2")
	m, _ := NewMap([]string{"n1", "n2"})
	tc.router.SetMap("ns", m)
	tc.transport.SetDown("addr-n1", true)
	tc.dir.MarkDown("n1")
	go func() {
		time.Sleep(30 * time.Millisecond)
		if err := m.CompareAndSetReplicas([]byte("k"), []string{"n1", "n2"}, []string{"n2"}); err != nil {
			t.Error(err)
		}
	}()
	ver, replicas, err := tc.router.Put("ns", []byte("k"), []byte("v"))
	if err != nil {
		t.Fatalf("write across failover: %v", err)
	}
	if ver == 0 || len(replicas) != 1 || replicas[0] != "n2" {
		t.Fatalf("write landed on %v", replicas)
	}
	if v, _, found, err := tc.router.Get("ns", []byte("k"), ReadPrimary); err != nil || !found || string(v) != "v" {
		t.Fatalf("read-back: %q %v %v", v, found, err)
	}
}
