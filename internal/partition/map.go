// Package partition implements range partitioning of a namespace's
// keyspace across storage nodes, and the router that sends each
// operation to the right replica group.
//
// SCADS queries are bounded contiguous index scans (§3.1), so range
// partitioning guarantees any query touches at most a small constant
// number of adjacent partitions — the property behind the paper's
// "at most one read from a small constant number of computers".
package partition

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
)

// Range is one contiguous slice of the keyspace assigned to a replica
// group. Start is inclusive (nil = beginning of keyspace), End is
// exclusive (nil = end of keyspace).
type Range struct {
	Start    []byte
	End      []byte
	Replicas []string // node IDs; Replicas[0] is the primary
}

// Contains reports whether key falls inside r.
func (r Range) Contains(key []byte) bool {
	if r.Start != nil && bytes.Compare(key, r.Start) < 0 {
		return false
	}
	if r.End != nil && bytes.Compare(key, r.End) >= 0 {
		return false
	}
	return true
}

// Overlaps reports whether r intersects [start, end) (nil bounds are
// infinite).
func (r Range) Overlaps(start, end []byte) bool {
	if r.End != nil && start != nil && bytes.Compare(r.End, start) <= 0 {
		return false
	}
	if r.Start != nil && end != nil && bytes.Compare(end, r.Start) <= 0 {
		return false
	}
	return true
}

func (r Range) clone() Range {
	c := Range{Replicas: append([]string(nil), r.Replicas...)}
	if r.Start != nil {
		c.Start = append([]byte(nil), r.Start...)
	}
	if r.End != nil {
		c.End = append([]byte(nil), r.End...)
	}
	return c
}

// String renders the range for logs.
func (r Range) String() string {
	s, e := "-inf", "+inf"
	if r.Start != nil {
		s = fmt.Sprintf("%x", r.Start)
	}
	if r.End != nil {
		e = fmt.Sprintf("%x", r.End)
	}
	return fmt.Sprintf("[%s,%s)->%v", s, e, r.Replicas)
}

// Errors returned by map mutations.
var (
	ErrNoSuchRange  = errors.New("partition: no range contains that key")
	ErrBadSplit     = errors.New("partition: split point at range boundary")
	ErrNeedReplicas = errors.New("partition: replica set must be non-empty")
	// ErrReplicasChanged is returned by CompareAndSetReplicas when the
	// range's replica group no longer matches the caller's expectation
	// — another actor (a concurrent migration flip, or the repair
	// manager's failover) got there first. Callers re-read and retry.
	ErrReplicasChanged = errors.New("partition: replica set changed concurrently")
)

// Map is the partition map of one namespace: an ordered list of
// contiguous ranges covering the whole keyspace. Safe for concurrent
// use.
type Map struct {
	mu     sync.RWMutex
	ranges []Range
	ver    uint64 // bumped on every mutation, for cache invalidation
}

// NewMap returns a map with a single range covering everything,
// assigned to the given replica group.
func NewMap(replicas []string) (*Map, error) {
	if len(replicas) == 0 {
		return nil, ErrNeedReplicas
	}
	return &Map{ranges: []Range{{Replicas: append([]string(nil), replicas...)}}, ver: 1}, nil
}

// Version returns the mutation counter.
func (m *Map) Version() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ver
}

// Lookup returns the range containing key.
func (m *Map) Lookup(key []byte) Range {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ranges[m.indexOf(key)].clone()
}

// indexOf returns the index of the range containing key. Caller holds
// the lock. The map invariant (total coverage) guarantees a hit.
func (m *Map) indexOf(key []byte) int {
	lo, hi := 0, len(m.ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		r := m.ranges[mid]
		if r.Start != nil && bytes.Compare(key, r.Start) < 0 {
			hi = mid
		} else if r.End != nil && bytes.Compare(key, r.End) >= 0 {
			lo = mid + 1
		} else {
			return mid
		}
	}
	return len(m.ranges) - 1
}

// Overlapping returns the ranges intersecting [start, end) in keyspace
// order.
func (m *Map) Overlapping(start, end []byte) []Range {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []Range
	for _, r := range m.ranges {
		if r.Overlaps(start, end) {
			out = append(out, r.clone())
		}
	}
	return out
}

// Ranges returns a copy of all ranges in keyspace order.
func (m *Map) Ranges() []Range {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Range, len(m.ranges))
	for i, r := range m.ranges {
		out[i] = r.clone()
	}
	return out
}

// Len returns the number of ranges.
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.ranges)
}

// Split divides the range containing at into [start, at) and
// [at, end), both initially assigned to the same replica group.
func (m *Map) Split(at []byte) error {
	if at == nil {
		return ErrBadSplit
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	i := m.indexOf(at)
	r := m.ranges[i]
	if r.Start != nil && bytes.Equal(r.Start, at) {
		return ErrBadSplit
	}
	left := r.clone()
	right := r.clone()
	left.End = append([]byte(nil), at...)
	right.Start = append([]byte(nil), at...)
	m.ranges = append(m.ranges[:i:i], append([]Range{left, right}, m.ranges[i+1:]...)...)
	m.ver++
	return nil
}

// Merge joins the range containing at with its successor.
func (m *Map) Merge(at []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := m.indexOf(at)
	if i+1 >= len(m.ranges) {
		return ErrNoSuchRange
	}
	merged := m.ranges[i].clone()
	merged.End = m.ranges[i+1].End
	m.ranges = append(m.ranges[:i:i], append([]Range{merged}, m.ranges[i+2:]...)...)
	m.ver++
	return nil
}

// SetReplicas reassigns the replica group of the range containing key.
func (m *Map) SetReplicas(key []byte, replicas []string) error {
	if len(replicas) == 0 {
		return ErrNeedReplicas
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	i := m.indexOf(key)
	m.ranges[i].Replicas = append([]string(nil), replicas...)
	m.ver++
	return nil
}

// CompareAndSetReplicas reassigns the replica group of the range
// containing key only if its current group equals expect. Both the
// migration manager's routing flip and the repair manager's failover
// promotion go through this, so two concurrent reconfigurations of the
// same range can never silently overwrite each other: the loser gets
// ErrReplicasChanged and must re-read the map.
func (m *Map) CompareAndSetReplicas(key []byte, expect, replicas []string) error {
	if len(replicas) == 0 {
		return ErrNeedReplicas
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	i := m.indexOf(key)
	if !EqualIDs(m.ranges[i].Replicas, expect) {
		return ErrReplicasChanged
	}
	m.ranges[i].Replicas = append([]string(nil), replicas...)
	m.ver++
	return nil
}

// EqualIDs reports whether two replica sets are identical (same nodes,
// same order — order is meaningful: Replicas[0] is the primary). This
// is the comparison CompareAndSetReplicas uses, exported so callers
// deciding whether a reconfiguration is a no-op agree with the CAS.
func EqualIDs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ReplaceNode substitutes newID for oldID in every replica group that
// contains oldID, returning how many ranges changed. Used when the
// director replaces a failed or decommissioned node.
func (m *Map) ReplaceNode(oldID, newID string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	changed := 0
	for i := range m.ranges {
		for j, id := range m.ranges[i].Replicas {
			if id == oldID {
				m.ranges[i].Replicas[j] = newID
				changed++
				break
			}
		}
	}
	if changed > 0 {
		m.ver++
	}
	return changed
}

// NodesInUse returns the set of node IDs referenced by any range.
func (m *Map) NodesInUse() map[string]bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]bool)
	for _, r := range m.ranges {
		for _, id := range r.Replicas {
			out[id] = true
		}
	}
	return out
}

// Validate checks the map invariants: non-empty, contiguous, totally
// covering, every range has replicas.
func (m *Map) Validate() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.ranges) == 0 {
		return errors.New("partition: empty map")
	}
	if m.ranges[0].Start != nil {
		return errors.New("partition: first range does not start at -inf")
	}
	if m.ranges[len(m.ranges)-1].End != nil {
		return errors.New("partition: last range does not end at +inf")
	}
	for i, r := range m.ranges {
		if len(r.Replicas) == 0 {
			return fmt.Errorf("partition: range %d has no replicas", i)
		}
		if i > 0 {
			prev := m.ranges[i-1]
			if prev.End == nil || r.Start == nil || !bytes.Equal(prev.End, r.Start) {
				return fmt.Errorf("partition: gap or overlap between range %d and %d", i-1, i)
			}
			if r.End != nil && bytes.Compare(r.Start, r.End) >= 0 {
				return fmt.Errorf("partition: range %d is empty or inverted", i)
			}
		}
	}
	return nil
}
