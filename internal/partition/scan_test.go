package partition

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"scads/internal/record"
	"scads/internal/rpc"
)

// loadScanData writes n sequential keys through the router so each
// lands on its range's primary, then returns the sorted key list.
func loadScanData(t *testing.T, tc *testCluster, namespace string, n int) [][]byte {
	t.Helper()
	keys := make([][]byte, n)
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("k-%04d", i))
		keys[i] = key
		if _, _, err := tc.router.Put(namespace, key, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func checkOrdered(t *testing.T, recs []record.Record) {
	t.Helper()
	for i := 1; i < len(recs); i++ {
		if bytes.Compare(recs[i-1].Key, recs[i].Key) >= 0 {
			t.Fatalf("scan out of order at %d: %q >= %q", i, recs[i-1].Key, recs[i].Key)
		}
	}
}

func TestScanParallelMatchesSequential(t *testing.T) {
	tc := newTestCluster(t, "n1", "n2", "n3")
	m, _ := NewMap([]string{"n1"})
	for _, at := range []string{"k-0100", "k-0200", "k-0300", "k-0400", "k-0500", "k-0600", "k-0700"} {
		if err := m.Split([]byte(at)); err != nil {
			t.Fatal(err)
		}
	}
	nodes := []string{"n1", "n2", "n3"}
	for i, rng := range m.Ranges() {
		key := rng.Start
		if key == nil {
			key = []byte{}
		}
		m.SetReplicas(key, []string{nodes[i%3]})
	}
	tc.router.SetMap("ns", m)
	loadScanData(t, tc, "ns", 800)

	for _, limit := range []int{1, 37, 100, 101, 799, 800, 4000} {
		seq, err := tc.router.ScanOpts("ns", nil, nil, ScanOptions{Limit: limit, Policy: ReadPrimary, Parallelism: 1})
		if err != nil {
			t.Fatalf("sequential limit=%d: %v", limit, err)
		}
		par, err := tc.router.ScanOpts("ns", nil, nil, ScanOptions{Limit: limit, Policy: ReadPrimary, Parallelism: 8})
		if err != nil {
			t.Fatalf("parallel limit=%d: %v", limit, err)
		}
		want := limit
		if want > 800 {
			want = 800
		}
		if len(seq) != want || len(par) != want {
			t.Fatalf("limit=%d: sequential %d, parallel %d, want %d", limit, len(seq), len(par), want)
		}
		checkOrdered(t, par)
		for i := range seq {
			if !bytes.Equal(seq[i].Key, par[i].Key) {
				t.Fatalf("limit=%d: results diverge at %d: %q vs %q", limit, i, seq[i].Key, par[i].Key)
			}
		}
	}
}

func TestScanLimitCutoffAtRangeBoundaries(t *testing.T) {
	tc := newTestCluster(t, "n1", "n2")
	m, _ := NewMap([]string{"n1"})
	if err := m.Split([]byte("k-0050")); err != nil {
		t.Fatal(err)
	}
	m.SetReplicas([]byte("k-0099"), []string{"n2"})
	tc.router.SetMap("ns", m)
	keys := loadScanData(t, tc, "ns", 100)

	// Limits landing exactly on, just before, and just after the range
	// boundary must return exactly that many records, in order.
	for _, limit := range []int{49, 50, 51} {
		recs, err := tc.router.ScanOpts("ns", nil, nil, ScanOptions{Limit: limit, Policy: ReadPrimary})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != limit {
			t.Fatalf("limit=%d returned %d records", limit, len(recs))
		}
		checkOrdered(t, recs)
		if !bytes.Equal(recs[limit-1].Key, keys[limit-1]) {
			t.Fatalf("limit=%d last key %q, want %q", limit, recs[limit-1].Key, keys[limit-1])
		}
	}
}

func TestScanAdaptiveRefetchOnSkew(t *testing.T) {
	// Two ranges with heavily skewed population: the proportional
	// pushed-down limit truncates the first range's page, and the
	// gather loop must page on from the node's resume cursor instead of
	// silently under-filling.
	tc := newTestCluster(t, "n1", "n2")
	m, _ := NewMap([]string{"n1"})
	if err := m.Split([]byte("k-0500")); err != nil {
		t.Fatal(err)
	}
	m.SetReplicas([]byte("k-0999"), []string{"n2"})
	tc.router.SetMap("ns", m)
	loadScanData(t, tc, "ns", 600) // 500 rows in range 1, 100 in range 2

	recs, err := tc.router.ScanOpts("ns", nil, nil, ScanOptions{Limit: 550, Policy: ReadPrimary, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 550 {
		t.Fatalf("skewed scan returned %d records, want 550", len(recs))
	}
	checkOrdered(t, recs)
}

func TestScanFenceRetryRidesThroughHandoff(t *testing.T) {
	tc := newTestCluster(t, "n1", "n2")
	m, _ := NewMap([]string{"n1"})
	tc.router.SetMap("ns", m)
	loadScanData(t, tc, "ns", 50)

	// Fence the whole keyspace on n1 (as a migration's final drain
	// would), then lift it shortly after from another goroutine: the
	// scan must stall and then complete, never error.
	fence := func(on bool) {
		resp, err := tc.transport.Call("addr-n1", rpc.Request{
			Method: rpc.MethodRangeFence, Namespace: "ns", Fence: on,
		})
		if err != nil || resp.Error() != nil {
			t.Errorf("fence(%v): %v %v", on, err, resp.Error())
		}
	}
	fence(true)
	go func() {
		time.Sleep(30 * time.Millisecond)
		fence(false)
	}()
	start := time.Now()
	recs, err := tc.router.ScanOpts("ns", nil, nil, ScanOptions{Limit: 100, Policy: ReadAny})
	if err != nil {
		t.Fatalf("scan across fenced range: %v", err)
	}
	if len(recs) != 50 {
		t.Fatalf("scan returned %d records, want 50", len(recs))
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatalf("scan returned in %v — did not wait for the fence to lift", time.Since(start))
	}
}

func TestScanFenceRetryFollowsFlip(t *testing.T) {
	// The donor stays fenced forever (it lost the range); the scan's
	// retry must pick up the flipped partition map and land on the new
	// holder.
	tc := newTestCluster(t, "n1", "n2")
	m, _ := NewMap([]string{"n1"})
	tc.router.SetMap("ns", m)
	keys := loadScanData(t, tc, "ns", 40)

	// Copy the data to n2 (the migration recipient).
	var recs []record.Record
	for _, key := range keys {
		v, ver, found, err := tc.router.GetFrom("ns", "n1", key)
		if err != nil || !found {
			t.Fatalf("seed read: %v", err)
		}
		recs = append(recs, record.Record{Key: key, Value: v, Version: ver})
	}
	if err := tc.router.Apply("ns", "n2", recs); err != nil {
		t.Fatal(err)
	}

	resp, err := tc.transport.Call("addr-n1", rpc.Request{Method: rpc.MethodRangeFence, Namespace: "ns", Fence: true})
	if err != nil || resp.Error() != nil {
		t.Fatalf("fence: %v %v", err, resp.Error())
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		m.SetReplicas([]byte{}, []string{"n2"}) // the routing flip
	}()
	out, err := tc.router.ScanOpts("ns", nil, nil, ScanOptions{Limit: 100, Policy: ReadAny})
	if err != nil {
		t.Fatalf("scan across flipping range: %v", err)
	}
	if len(out) != 40 {
		t.Fatalf("scan returned %d records, want 40", len(out))
	}
}

func TestScanCrashedPrimaryFailsOverToReplica(t *testing.T) {
	tc := newTestCluster(t, "n1", "n2")
	m, _ := NewMap([]string{"n1", "n2"})
	tc.router.SetMap("ns", m)
	keys := loadScanData(t, tc, "ns", 30)

	// Replicate to the secondary, then kill the primary: scans (even
	// primary-preferring ones) must fail over.
	var recs []record.Record
	for _, key := range keys {
		v, ver, _, err := tc.router.GetFrom("ns", "n1", key)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, record.Record{Key: key, Value: v, Version: ver})
	}
	if err := tc.router.Apply("ns", "n2", recs); err != nil {
		t.Fatal(err)
	}
	tc.transport.SetDown("addr-n1", true)

	for _, policy := range []ReadPolicy{ReadAny, ReadPrimary} {
		out, err := tc.router.ScanOpts("ns", nil, nil, ScanOptions{Limit: 100, Policy: policy})
		if err != nil {
			t.Fatalf("policy %v: scan with crashed primary: %v", policy, err)
		}
		if len(out) != 30 {
			t.Fatalf("policy %v: scan returned %d records, want 30", policy, len(out))
		}
	}
}

func TestScanPushdownReachesNodes(t *testing.T) {
	// Wire-level check that projection and predicates travel with the
	// sub-scan requests: a recording transport inspects every
	// MethodScan.
	tc := newTestCluster(t, "n1", "n2")
	m, _ := NewMap([]string{"n1"})
	m.Split([]byte("k-0015"))
	m.SetReplicas([]byte("k-0020"), []string{"n2"})

	var scans atomic.Int64
	rec := &recordingTransport{next: tc.transport, onScan: func(req rpc.Request) {
		scans.Add(1)
		if len(req.Projection) != 1 || req.Projection[0] != "name" {
			t.Errorf("scan request projection = %v", req.Projection)
		}
		if len(req.Preds) != 1 || req.Preds[0].Column != "age" {
			t.Errorf("scan request preds = %v", req.Preds)
		}
	}}
	router := NewRouter(rec, tc.dir)
	router.SetMap("ns", m)
	tc.router.SetMap("ns", m)
	loadScanData(t, tc, "ns", 30) // via the plain router path

	opts := ScanOptions{
		Limit:      100,
		Policy:     ReadPrimary,
		Projection: []string{"name"},
		Preds:      []rpc.ScanPred{{Column: "age", Op: rpc.PredGe, Value: []byte{0x10}}},
	}
	// Values are opaque bytes (not encoded rows), so the nodes will
	// fail to decode them — the point here is only the request shape;
	// error content is checked at the cluster layer.
	_, _ = router.ScanOpts("ns", nil, nil, opts)
	if scans.Load() < 2 {
		t.Fatalf("expected >=2 sub-scans, saw %d", scans.Load())
	}
}

type recordingTransport struct {
	next   rpc.Transport
	onScan func(rpc.Request)
}

func (r *recordingTransport) Call(addr string, req rpc.Request) (rpc.Response, error) {
	if req.Method == rpc.MethodScan {
		r.onScan(req)
	}
	if req.Method == rpc.MethodBatch {
		for _, sub := range req.Batch {
			if sub.Method == rpc.MethodScan {
				r.onScan(sub)
			}
		}
	}
	return r.next.Call(addr, req)
}

func TestScanRejectsUnboundedLimit(t *testing.T) {
	tc := newTestCluster(t, "n1")
	m, _ := NewMap([]string{"n1"})
	tc.router.SetMap("ns", m)
	if _, err := tc.router.ScanOpts("ns", nil, nil, ScanOptions{Limit: 0}); err == nil {
		t.Fatal("unbounded scan accepted")
	}
}
