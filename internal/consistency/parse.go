package consistency

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// Parse reads the declarative consistency DSL and returns the specs it
// declares, in file order. The syntax follows the paper's examples
// (§3.3.1, Figure 4):
//
//	# comments run to end of line
//	namespace profiles {
//	  performance: 99.9% reads < 100ms, 99.99% success;
//	  write: last-write-wins;          # or serializable, merge(name)
//	  staleness: 10m;
//	  session: read-your-writes;       # or monotonic-reads, none
//	  durability: 99.999%;
//	  priority: availability > read-consistency;
//	}
func Parse(src string) ([]Spec, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var specs []Spec
	for !p.done() {
		spec, err := p.block()
		if err != nil {
			return nil, err
		}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("%w (namespace %q)", err, spec.Namespace)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("consistency: no namespace blocks in input")
	}
	return specs, nil
}

// MustParse is Parse for statically known specs; it panics on error —
// the regexp.MustCompile convention. Specs arriving from operators or
// config files must go through Parse; no library code calls MustParse.
func MustParse(src string) []Spec {
	specs, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return specs
}

type token struct {
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case strings.ContainsRune("{}:;<>(),%", rune(c)):
			toks = append(toks, token{string(c), line})
			i++
		case isWordChar(rune(c)):
			j := i
			for j < len(src) && isWordChar(rune(src[j])) {
				j++
			}
			toks = append(toks, token{src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("consistency: line %d: unexpected character %q", line, c)
		}
	}
	return toks, nil
}

func isWordChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '.' || r == '-' || r == '_'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.done() {
		return token{"", -1}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("consistency: line %d: expected %q, got %q", t.line, text, t.text)
	}
	return nil
}

func (p *parser) block() (Spec, error) {
	var spec Spec
	if err := p.expect("namespace"); err != nil {
		return spec, err
	}
	name := p.next()
	if name.text == "" || strings.ContainsAny(name.text, "{};:") {
		return spec, fmt.Errorf("consistency: line %d: bad namespace name %q", name.line, name.text)
	}
	spec.Namespace = name.text
	if err := p.expect("{"); err != nil {
		return spec, err
	}
	seen := map[string]bool{}
	for p.peek().text != "}" {
		if p.done() {
			return spec, fmt.Errorf("consistency: unterminated namespace block %q", spec.Namespace)
		}
		key := p.next()
		if seen[key.text] {
			return spec, fmt.Errorf("consistency: line %d: duplicate %q clause", key.line, key.text)
		}
		seen[key.text] = true
		if err := p.expect(":"); err != nil {
			return spec, err
		}
		var err error
		switch key.text {
		case "performance":
			err = p.performance(&spec)
		case "write":
			err = p.write(&spec)
		case "staleness":
			err = p.staleness(&spec)
		case "session":
			err = p.session(&spec)
		case "durability":
			err = p.durability(&spec)
		case "priority":
			err = p.priority(&spec)
		default:
			err = fmt.Errorf("consistency: line %d: unknown clause %q", key.line, key.text)
		}
		if err != nil {
			return spec, err
		}
		if err := p.expect(";"); err != nil {
			return spec, err
		}
	}
	if err := p.expect("}"); err != nil {
		return spec, err
	}
	return spec, nil
}

// performance: 99.9% reads < 100ms [, 99.99% success]
func (p *parser) performance(spec *Spec) error {
	pct, err := p.percent()
	if err != nil {
		return err
	}
	kind := p.next()
	if kind.text != "reads" && kind.text != "requests" && kind.text != "writes" {
		return fmt.Errorf("consistency: line %d: expected reads/writes/requests, got %q", kind.line, kind.text)
	}
	if err := p.expect("<"); err != nil {
		return err
	}
	dur, err := p.duration()
	if err != nil {
		return err
	}
	spec.Performance.Percentile = pct
	spec.Performance.LatencyBound = dur
	if p.peek().text == "," {
		p.next()
		sr, err := p.percent()
		if err != nil {
			return err
		}
		if err := p.expect("success"); err != nil {
			return err
		}
		spec.Performance.SuccessRate = sr
	}
	return nil
}

func (p *parser) write(spec *Spec) error {
	t := p.next()
	switch t.text {
	case "last-write-wins":
		spec.Write = LastWriteWins
	case "serializable":
		spec.Write = Serializable
	case "merge":
		if err := p.expect("("); err != nil {
			return err
		}
		fn := p.next()
		if fn.text == "" || fn.text == ")" {
			return fmt.Errorf("consistency: line %d: merge() requires a function name", t.line)
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		spec.Write = MergeFunction
		spec.MergeName = fn.text
	default:
		return fmt.Errorf("consistency: line %d: unknown write mode %q", t.line, t.text)
	}
	return nil
}

func (p *parser) staleness(spec *Spec) error {
	d, err := p.duration()
	if err != nil {
		return err
	}
	spec.Staleness = d
	return nil
}

func (p *parser) session(spec *Spec) error {
	t := p.next()
	switch t.text {
	case "read-your-writes":
		spec.Session = ReadYourWrites
	case "monotonic-reads":
		spec.Session = MonotonicReads
	case "none":
		spec.Session = SessionNone
	default:
		return fmt.Errorf("consistency: line %d: unknown session level %q", t.line, t.text)
	}
	return nil
}

func (p *parser) durability(spec *Spec) error {
	pct, err := p.percent()
	if err != nil {
		return err
	}
	spec.Durability = pct / 100
	return nil
}

func (p *parser) priority(spec *Spec) error {
	for {
		t := p.next()
		spec.Priorities = append(spec.Priorities, Axis(t.text))
		if p.peek().text != ">" {
			return nil
		}
		p.next()
	}
}

func (p *parser) percent() (float64, error) {
	t := p.next()
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("consistency: line %d: bad number %q", t.line, t.text)
	}
	if err := p.expect("%"); err != nil {
		return 0, err
	}
	return v, nil
}

func (p *parser) duration() (time.Duration, error) {
	t := p.next()
	d, err := time.ParseDuration(t.text)
	if err != nil {
		return 0, fmt.Errorf("consistency: line %d: bad duration %q", t.line, t.text)
	}
	if d < 0 {
		return 0, fmt.Errorf("consistency: line %d: negative duration %q", t.line, t.text)
	}
	return d, nil
}
