package consistency

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

const fullSpec = `
# The paper's Figure 4 example, as one namespace.
namespace profiles {
  performance: 99.9% reads < 100ms, 99.99% success;
  write: last-write-wins;
  staleness: 10m;
  session: read-your-writes;
  durability: 99.999%;
  priority: availability > read-consistency;
}
`

func TestParseFullSpec(t *testing.T) {
	specs, err := Parse(fullSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("got %d specs", len(specs))
	}
	s := specs[0]
	if s.Namespace != "profiles" {
		t.Errorf("Namespace = %q", s.Namespace)
	}
	if s.Performance.Percentile != 99.9 || s.Performance.LatencyBound != 100*time.Millisecond || s.Performance.SuccessRate != 99.99 {
		t.Errorf("Performance = %+v", s.Performance)
	}
	if s.Write != LastWriteWins {
		t.Errorf("Write = %v", s.Write)
	}
	if s.Staleness != 10*time.Minute {
		t.Errorf("Staleness = %v", s.Staleness)
	}
	if s.Session != ReadYourWrites {
		t.Errorf("Session = %v", s.Session)
	}
	if math.Abs(s.Durability-0.99999) > 1e-9 {
		t.Errorf("Durability = %v", s.Durability)
	}
	if len(s.Priorities) != 2 || s.Priorities[0] != AxisAvailability || s.Priorities[1] != AxisReadConsistency {
		t.Errorf("Priorities = %v", s.Priorities)
	}
}

func TestParseMultipleBlocksAndModes(t *testing.T) {
	src := `
namespace wallposts {
  write: merge(union);
  staleness: 30s;
}
namespace accounts {
  write: serializable;
  session: monotonic-reads;
  priority: read-consistency > availability > durability;
}
`
	specs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].Write != MergeFunction || specs[0].MergeName != "union" {
		t.Errorf("wallposts = %+v", specs[0])
	}
	if specs[1].Write != Serializable || specs[1].Session != MonotonicReads {
		t.Errorf("accounts = %+v", specs[1])
	}
	if !specs[1].Prefers(AxisReadConsistency, AxisAvailability) {
		t.Error("priority order not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"namespace {}",
		"namespace x { write: bogus-mode; }",
		"namespace x { write: merge(); }",
		"namespace x { staleness: sideways; }",
		"namespace x { durability: high; }",
		"namespace x { performance: 99% reads 100ms; }",
		"namespace x { session: psychic; }",
		"namespace x { priority: availability > availability; }",
		"namespace x { priority: availability > made-up-axis; }",
		"namespace x { write: last-write-wins; write: serializable; }",
		"namespace x { write: last-write-wins ",
		"namespace x { unknownclause: 5; }",
		"namespace x { staleness: 10m } ", // missing semicolon
		"namespace x { write: last-write-wins; } trailing",
		"namespace x { performance: 150% reads < 1s; }",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSpecRoundTripThroughString(t *testing.T) {
	specs := MustParse(fullSpec)
	re, err := Parse(specs[0].String())
	if err != nil {
		t.Fatalf("re-parse of String() failed: %v\n%s", err, specs[0].String())
	}
	if re[0].Namespace != specs[0].Namespace ||
		re[0].Staleness != specs[0].Staleness ||
		re[0].Session != specs[0].Session ||
		re[0].Write != specs[0].Write ||
		math.Abs(re[0].Durability-specs[0].Durability) > 1e-9 {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", specs[0], re[0])
	}
}

func TestPrefersUnlistedAxes(t *testing.T) {
	s := Spec{Namespace: "x", Priorities: []Axis{AxisAvailability}}
	if !s.Prefers(AxisAvailability, AxisReadConsistency) {
		t.Error("listed axis must outrank unlisted")
	}
	if s.Prefers(AxisReadConsistency, AxisDurability) || s.Prefers(AxisDurability, AxisReadConsistency) {
		t.Error("two unlisted axes must have no preference")
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Spec{
		{},
		{Namespace: "x", Write: MergeFunction},
		{Namespace: "x", MergeName: "union"},
		{Namespace: "x", Staleness: -time.Second},
		{Namespace: "x", Durability: 1.5},
		{Namespace: "x", Performance: PerformanceSLA{Percentile: -1}},
		{Namespace: "x", Priorities: []Axis{"nope"}},
		{Namespace: "x", Priorities: []Axis{AxisDurability, AxisDurability}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d (%+v) validated", i, s)
		}
	}
}

func TestRequiredReplicas(t *testing.T) {
	// 1% chance a node dies within a repair window; five nines target.
	r, err := RequiredReplicas(0.01, 0.99999)
	if err != nil {
		t.Fatal(err)
	}
	// 0.01^r <= 1e-5  =>  r >= 2.5  =>  3 replicas.
	if r != 3 {
		t.Fatalf("RequiredReplicas = %d, want 3", r)
	}
	// Relaxing durability (old comments, §3.3.1) saves replicas.
	r2, _ := RequiredReplicas(0.01, 0.99)
	if r2 >= r {
		t.Fatalf("relaxed target should need fewer replicas: %d vs %d", r2, r)
	}
	if _, err := RequiredReplicas(0, 0.5); err == nil {
		t.Error("pFail=0 accepted")
	}
	if _, err := RequiredReplicas(0.5, 1); err == nil {
		t.Error("target=1 accepted")
	}
}

func TestSurvivalProbability(t *testing.T) {
	if got := SurvivalProbability(0.1, 2); math.Abs(got-0.99) > 1e-12 {
		t.Fatalf("SurvivalProbability = %v", got)
	}
	if SurvivalProbability(0.1, 0) != 0 {
		t.Fatal("zero replicas must have zero survival")
	}
}

// Property: RequiredReplicas always achieves the target and is minimal.
func TestQuickRequiredReplicasTightness(t *testing.T) {
	f := func(pf, tgt float64) bool {
		pFail := 0.001 + math.Mod(math.Abs(pf), 0.998)
		target := 0.5 + math.Mod(math.Abs(tgt), 0.4999)
		r, err := RequiredReplicas(pFail, target)
		if err != nil {
			return false
		}
		if SurvivalProbability(pFail, r) < target {
			return false
		}
		return r == 1 || SurvivalProbability(pFail, r-1) < target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRegistryBuiltins(t *testing.T) {
	r := NewMergeRegistry()
	union, err := r.Lookup("union")
	if err != nil {
		t.Fatal(err)
	}
	got := union([]byte("b\na"), []byte("c\na"))
	if string(got) != "a\nb\nc" {
		t.Fatalf("union = %q", got)
	}
	max, _ := r.Lookup("max")
	if string(max([]byte("3"), []byte("11"))) != "11" {
		t.Fatal("numeric max failed")
	}
	min, _ := r.Lookup("min")
	if string(min([]byte("3"), []byte("11"))) != "3" {
		t.Fatal("numeric min failed")
	}
	if _, err := r.Lookup("nope"); err == nil {
		t.Fatal("unknown merge found")
	}
	r.Register("custom", func(a, b []byte) []byte { return a })
	if _, err := r.Lookup("custom"); err != nil {
		t.Fatal(err)
	}
}

// Property: UnionMerge is commutative, associative, and idempotent —
// the convergence conditions for merge-mode replication.
func TestQuickUnionMergeConvergence(t *testing.T) {
	f := func(a, b, c string) bool {
		A, B, C := []byte(a), []byte(b), []byte(c)
		comm := string(UnionMerge(A, B)) == string(UnionMerge(B, A))
		assoc := string(UnionMerge(UnionMerge(A, B), C)) == string(UnionMerge(A, UnionMerge(B, C)))
		idem := string(UnionMerge(A, A)) == string(UnionMerge(A, UnionMerge(A, A)))
		return comm && assoc && idem
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSerializerExcludesConcurrentRMW(t *testing.T) {
	s := NewSerializer(8)
	counter := 0
	var wg sync.WaitGroup
	const workers, iters = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.Do("counters", []byte("hits"), func() error {
					counter++ // data race unless serialized
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d (lost updates)", counter, workers*iters)
	}
}

func TestSerializerDifferentKeysDontBlock(t *testing.T) {
	s := NewSerializer(1024)
	release := make(chan struct{})
	holding := make(chan struct{})
	go s.Do("ns", []byte("key-a"), func() error {
		close(holding)
		<-release
		return nil
	})
	<-holding
	done := make(chan struct{})
	go func() {
		s.Do("ns", []byte("key-b"), func() error { return nil })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("different key blocked (and not by stripe collision at 1024 stripes... unlucky hash?)")
	}
	close(release)
}

func TestWriteModeAndSessionStrings(t *testing.T) {
	if LastWriteWins.String() != "last-write-wins" || Serializable.String() != "serializable" || MergeFunction.String() != "merge" {
		t.Fatal("WriteMode strings")
	}
	if SessionNone.String() != "none" || MonotonicReads.String() != "monotonic-reads" || ReadYourWrites.String() != "read-your-writes" {
		t.Fatal("SessionLevel strings")
	}
	if !strings.Contains(WriteMode(42).String(), "42") {
		t.Fatal("unknown write mode string")
	}
}

func TestMonteCarloMatchesClosedForm(t *testing.T) {
	for _, r := range []int{1, 2, 3, 5} {
		mc := MonteCarloSurvival(0.05, r, 200000, 42)
		cf := SurvivalProbability(0.05, r)
		if math.Abs(mc-cf) > 0.005 {
			t.Fatalf("r=%d: MC %v vs closed form %v", r, mc, cf)
		}
	}
	if MonteCarloSurvival(0.5, 0, 100, 1) != 0 || MonteCarloSurvival(0.5, 1, 0, 1) != 0 {
		t.Fatal("degenerate inputs")
	}
}
