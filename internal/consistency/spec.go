// Package consistency implements the paper's declarative
// consistency-performance specification (§3.3, Figure 4). Developers
// state what correctness means per namespace along five axes —
// performance SLA, write consistency, read consistency (staleness
// bound), session guarantees, and a durability SLA — plus a priority
// ordering that tells the system which requirement to sacrifice when
// real-world conditions make them contend.
package consistency

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// WriteMode selects how write conflicts are handled (Figure 4, row 2).
type WriteMode int

const (
	// LastWriteWins applies eventual consistency with version-ordered
	// convergence — the relaxed end of the spectrum.
	LastWriteWins WriteMode = iota
	// MergeFunction resolves conflicting writes through a
	// developer-supplied merge function.
	MergeFunction
	// Serializable forces writes to a key through an exclusive
	// critical section on the primary, as in a traditional RDBMS.
	Serializable
)

// String implements fmt.Stringer.
func (m WriteMode) String() string {
	switch m {
	case LastWriteWins:
		return "last-write-wins"
	case MergeFunction:
		return "merge"
	case Serializable:
		return "serializable"
	default:
		return fmt.Sprintf("writemode(%d)", int(m))
	}
}

// SessionLevel selects Terry-style session guarantees (Figure 4, row 4).
type SessionLevel int

const (
	// SessionNone applies no per-session guarantee.
	SessionNone SessionLevel = iota
	// MonotonicReads: successive reads never go backwards in time.
	MonotonicReads
	// ReadYourWrites: a session always observes its own writes (and,
	// in this implementation, is also monotonic).
	ReadYourWrites
)

// String implements fmt.Stringer.
func (s SessionLevel) String() string {
	switch s {
	case SessionNone:
		return "none"
	case MonotonicReads:
		return "monotonic-reads"
	case ReadYourWrites:
		return "read-your-writes"
	default:
		return fmt.Sprintf("session(%d)", int(s))
	}
}

// Axis names one of the five consistency axes for priority ordering.
type Axis string

// The orderable axes (§3.3.1's example orders availability against
// read consistency).
const (
	AxisAvailability    Axis = "availability"
	AxisReadConsistency Axis = "read-consistency"
	AxisDurability      Axis = "durability"
	AxisPerformance     Axis = "performance"
)

// PerformanceSLA is the latency/availability requirement (Figure 4,
// row 1): "99.9% of requests succeed in <100ms".
type PerformanceSLA struct {
	// Percentile of requests that must meet the latency bound,
	// e.g. 99.9.
	Percentile float64
	// LatencyBound each request at the percentile must beat.
	LatencyBound time.Duration
	// SuccessRate is the availability floor in percent, e.g. 99.99.
	SuccessRate float64
}

// Zero reports whether the SLA is unset.
func (p PerformanceSLA) Zero() bool {
	return p.Percentile == 0 && p.LatencyBound == 0 && p.SuccessRate == 0
}

// Spec is one namespace's declared consistency contract.
type Spec struct {
	Namespace string

	Performance PerformanceSLA

	Write WriteMode
	// MergeName names the registered merge function when Write is
	// MergeFunction.
	MergeName string

	// Staleness is the read-consistency bound: "stale data gone within
	// 10 minutes". Zero means no bound was declared.
	Staleness time.Duration

	Session SessionLevel

	// Durability is the probability committed writes persist,
	// e.g. 0.99999. Zero means no durability SLA declared.
	Durability float64

	// Priorities orders axes from most to least important; when
	// requirements contend (e.g. a partition makes both availability
	// and the staleness bound unsatisfiable), the higher axis wins.
	Priorities []Axis
}

// Validate checks internal coherence of the spec.
func (s Spec) Validate() error {
	if s.Namespace == "" {
		return errors.New("consistency: spec has no namespace")
	}
	if p := s.Performance.Percentile; p < 0 || p > 100 {
		return fmt.Errorf("consistency: percentile %v out of range", p)
	}
	if s.Performance.SuccessRate < 0 || s.Performance.SuccessRate > 100 {
		return fmt.Errorf("consistency: success rate %v out of range", s.Performance.SuccessRate)
	}
	if s.Write == MergeFunction && s.MergeName == "" {
		return errors.New("consistency: merge write mode requires a merge function name")
	}
	if s.Write != MergeFunction && s.MergeName != "" {
		return errors.New("consistency: merge function given but write mode is not merge")
	}
	if s.Staleness < 0 {
		return errors.New("consistency: negative staleness bound")
	}
	if s.Durability < 0 || s.Durability >= 1 {
		return fmt.Errorf("consistency: durability %v must be a probability in [0,1)", s.Durability)
	}
	seen := map[Axis]bool{}
	for _, a := range s.Priorities {
		switch a {
		case AxisAvailability, AxisReadConsistency, AxisDurability, AxisPerformance:
		default:
			return fmt.Errorf("consistency: unknown axis %q", a)
		}
		if seen[a] {
			return fmt.Errorf("consistency: axis %q repeated in priorities", a)
		}
		seen[a] = true
	}
	return nil
}

// Prefers reports whether axis a outranks axis b under the spec's
// declared priorities. Axes not listed rank below all listed axes;
// between two unlisted axes the result is false (no preference).
func (s Spec) Prefers(a, b Axis) bool {
	ia, ib := s.axisRank(a), s.axisRank(b)
	return ia < ib
}

func (s Spec) axisRank(a Axis) int {
	for i, x := range s.Priorities {
		if x == a {
			return i
		}
	}
	return len(s.Priorities) + 1
}

// String renders the spec in the DSL syntax (parseable by Parse).
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "namespace %s {\n", s.Namespace)
	if !s.Performance.Zero() {
		fmt.Fprintf(&b, "  performance: %g%% reads < %s, %g%% success;\n",
			s.Performance.Percentile, s.Performance.LatencyBound, s.Performance.SuccessRate)
	}
	switch s.Write {
	case MergeFunction:
		fmt.Fprintf(&b, "  write: merge(%s);\n", s.MergeName)
	default:
		fmt.Fprintf(&b, "  write: %s;\n", s.Write)
	}
	if s.Staleness > 0 {
		fmt.Fprintf(&b, "  staleness: %s;\n", s.Staleness)
	}
	if s.Session != SessionNone {
		fmt.Fprintf(&b, "  session: %s;\n", s.Session)
	}
	if s.Durability > 0 {
		fmt.Fprintf(&b, "  durability: %.6g%%;\n", s.Durability*100)
	}
	if len(s.Priorities) > 0 {
		parts := make([]string, len(s.Priorities))
		for i, a := range s.Priorities {
			parts[i] = string(a)
		}
		fmt.Fprintf(&b, "  priority: %s;\n", strings.Join(parts, " > "))
	}
	b.WriteString("}\n")
	return b.String()
}

// --- durability SLA math (Figure 4, row 5) ---

// RequiredReplicas returns the smallest replication factor r such that
// the probability of losing all r replicas within one repair window is
// at most 1-target, assuming independent per-node failure probability
// pFail within that window. This is the calculation the system runs
// when a developer declares "data must persist with 99.999%
// probability" and the failure model estimates pFail.
func RequiredReplicas(pFail, target float64) (int, error) {
	if pFail <= 0 || pFail >= 1 {
		return 0, fmt.Errorf("consistency: node failure probability %v out of (0,1)", pFail)
	}
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("consistency: durability target %v out of (0,1)", target)
	}
	// Loss requires all r replicas to fail before repair: pFail^r.
	// Want pFail^r <= 1-target  =>  r >= log(1-target)/log(pFail).
	r := int(math.Ceil(math.Log(1-target) / math.Log(pFail)))
	if r < 1 {
		r = 1
	}
	return r, nil
}

// SurvivalProbability returns 1 - pFail^replicas: the probability at
// least one replica survives a repair window.
func SurvivalProbability(pFail float64, replicas int) float64 {
	if replicas <= 0 {
		return 0
	}
	return 1 - math.Pow(pFail, float64(replicas))
}

// SortSpecs orders specs by namespace for stable output.
func SortSpecs(specs []Spec) {
	sort.Slice(specs, func(i, j int) bool { return specs[i].Namespace < specs[j].Namespace })
}

// MonteCarloSurvival estimates the probability that at least one of
// `replicas` replicas survives a repair window by simulation: each
// trial fails each replica independently with probability pFail. It
// cross-checks the closed-form SurvivalProbability in experiment E4e.
func MonteCarloSurvival(pFail float64, replicas, trials int, seed int64) float64 {
	if replicas <= 0 || trials <= 0 {
		return 0
	}
	rnd := rand.New(rand.NewSource(seed))
	survived := 0
	for t := 0; t < trials; t++ {
		for r := 0; r < replicas; r++ {
			if rnd.Float64() >= pFail {
				survived++
				break
			}
		}
	}
	return float64(survived) / float64(trials)
}
