package consistency

import (
	"hash/fnv"
	"sync"
)

// Serializer provides the Serializable write mode: it funnels every
// read-modify-write for a given (namespace, key) through an exclusive
// critical section, so updates interleave as if executed one at a time
// — "writes to a given document type must be serializable, as in a
// traditional RDBMS" (§3.3.1).
//
// Lock striping bounds memory: the per-key guarantee holds because two
// equal keys always hash to the same stripe (unequal keys may share a
// stripe, which affects only throughput, never correctness).
type Serializer struct {
	stripes []sync.Mutex
}

// NewSerializer returns a serializer with the given number of lock
// stripes (rounded up to at least 1; 1024 is a reasonable default).
func NewSerializer(stripes int) *Serializer {
	if stripes < 1 {
		stripes = 1
	}
	return &Serializer{stripes: make([]sync.Mutex, stripes)}
}

// Do runs fn while holding the stripe lock for (namespace, key). fn
// typically reads the current value, computes, and writes back.
func (s *Serializer) Do(namespace string, key []byte, fn func() error) error {
	i := s.stripeFor(namespace, key)
	s.stripes[i].Lock()
	defer s.stripes[i].Unlock()
	return fn()
}

func (s *Serializer) stripeFor(namespace string, key []byte) int {
	h := fnv.New32a()
	h.Write([]byte(namespace))
	h.Write([]byte{0})
	h.Write(key)
	return int(h.Sum32() % uint32(len(s.stripes)))
}
