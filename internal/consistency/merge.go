package consistency

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MergeFunc combines two conflicting values into one. Implementations
// should be commutative and associative so replicas converge no matter
// the delivery order (the paper's "if conflicts are acceptable and can
// be intelligently resolved, the developer may specify a function that
// will merge conflicting writes").
type MergeFunc func(a, b []byte) []byte

// MergeRegistry maps names (referenced by merge(...) clauses in specs)
// to functions. Safe for concurrent use.
type MergeRegistry struct {
	mu  sync.RWMutex
	fns map[string]MergeFunc
}

// NewMergeRegistry returns a registry pre-populated with the built-in
// merges: "union" (newline-separated set union), "max" and "min"
// (numeric), and "concat-sets" (alias of union).
func NewMergeRegistry() *MergeRegistry {
	r := &MergeRegistry{fns: make(map[string]MergeFunc)}
	r.Register("union", UnionMerge)
	r.Register("concat-sets", UnionMerge)
	r.Register("max", MaxMerge)
	r.Register("min", MinMerge)
	return r
}

// Register binds name to fn, replacing any previous binding.
func (r *MergeRegistry) Register(name string, fn MergeFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fns[name] = fn
}

// Lookup returns the function bound to name.
func (r *MergeRegistry) Lookup(name string) (MergeFunc, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.fns[name]
	if !ok {
		return nil, fmt.Errorf("consistency: merge function %q not registered", name)
	}
	return fn, nil
}

// UnionMerge treats values as newline-separated sets and returns their
// sorted union — the canonical convergent merge for "append-ish" data
// like tags or attendee lists.
func UnionMerge(a, b []byte) []byte {
	set := map[string]bool{}
	for _, part := range strings.Split(string(a), "\n") {
		if part != "" {
			set[part] = true
		}
	}
	for _, part := range strings.Split(string(b), "\n") {
		if part != "" {
			set[part] = true
		}
	}
	items := make([]string, 0, len(set))
	for s := range set {
		items = append(items, s)
	}
	sort.Strings(items)
	return []byte(strings.Join(items, "\n"))
}

// MaxMerge keeps the numerically larger value; non-numeric values fall
// back to byte comparison.
func MaxMerge(a, b []byte) []byte {
	if cmpNumericOrBytes(a, b) >= 0 {
		return a
	}
	return b
}

// MinMerge keeps the numerically smaller value.
func MinMerge(a, b []byte) []byte {
	if cmpNumericOrBytes(a, b) <= 0 {
		return a
	}
	return b
}

func cmpNumericOrBytes(a, b []byte) int {
	fa, errA := strconv.ParseFloat(string(a), 64)
	fb, errB := strconv.ParseFloat(string(b), 64)
	if errA == nil && errB == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return bytes.Compare(a, b)
}
