package session

import (
	"sync"
	"testing"
	"testing/quick"

	"scads/internal/consistency"
)

func TestReadYourWritesFloor(t *testing.T) {
	s := New(consistency.ReadYourWrites)
	key := []byte("wall:alice")

	// Before any write, anything is acceptable.
	if !s.Acceptable("posts", key, 0, false) {
		t.Fatal("fresh session rejected a miss")
	}
	s.ObserveWrite("posts", key, 100, false)
	if s.Acceptable("posts", key, 99, true) {
		t.Fatal("stale version accepted after own write")
	}
	if s.Acceptable("posts", key, 0, false) {
		t.Fatal("miss accepted after own write")
	}
	if !s.Acceptable("posts", key, 100, true) || !s.Acceptable("posts", key, 101, true) {
		t.Fatal("fresh version rejected")
	}
	if s.Floor("posts", key) != 100 {
		t.Fatalf("Floor = %d", s.Floor("posts", key))
	}
}

func TestReadYourWritesDelete(t *testing.T) {
	s := New(consistency.ReadYourWrites)
	key := []byte("k")
	s.ObserveWrite("ns", key, 50, true) // session deleted the key
	if !s.Acceptable("ns", key, 0, false) {
		t.Fatal("miss rejected after own delete")
	}
	if s.Acceptable("ns", key, 40, true) {
		t.Fatal("pre-delete value accepted after own delete")
	}
	if !s.Acceptable("ns", key, 60, true) {
		t.Fatal("newer re-creation rejected")
	}
}

func TestMonotonicReads(t *testing.T) {
	s := New(consistency.MonotonicReads)
	key := []byte("k")
	// Writes do not create floors at this level.
	s.ObserveWrite("ns", key, 100, false)
	if !s.Acceptable("ns", key, 1, true) {
		t.Fatal("monotonic-reads session raised floor on write")
	}
	// Reads do.
	s.ObserveRead("ns", key, 70, true)
	if s.Acceptable("ns", key, 69, true) {
		t.Fatal("read went backwards")
	}
	if !s.Acceptable("ns", key, 70, true) {
		t.Fatal("same version rejected")
	}
	// Misses never lower or set floors.
	s.ObserveRead("ns", key, 0, false)
	if s.Acceptable("ns", key, 69, true) {
		t.Fatal("floor lost after observing a miss")
	}
}

func TestSessionNoneAcceptsEverything(t *testing.T) {
	s := New(consistency.SessionNone)
	s.ObserveWrite("ns", []byte("k"), 100, false)
	s.ObserveRead("ns", []byte("k"), 100, true)
	if !s.Acceptable("ns", []byte("k"), 1, true) || !s.Acceptable("ns", []byte("k"), 0, false) {
		t.Fatal("SessionNone rejected a read")
	}
	if s.Len() != 0 {
		t.Fatal("SessionNone tracked floors")
	}
}

func TestNilSessionSafe(t *testing.T) {
	var s *Session
	s.ObserveWrite("ns", []byte("k"), 1, false)
	s.ObserveRead("ns", []byte("k"), 1, true)
	if !s.Acceptable("ns", []byte("k"), 0, false) {
		t.Fatal("nil session rejected")
	}
	if s.Floor("ns", []byte("k")) != 0 || s.Len() != 0 {
		t.Fatal("nil session has state")
	}
	s.Reset()
}

func TestFloorsArekeyAndNamespaceScoped(t *testing.T) {
	s := New(consistency.ReadYourWrites)
	s.ObserveWrite("ns1", []byte("k"), 100, false)
	if !s.Acceptable("ns2", []byte("k"), 1, true) {
		t.Fatal("floor leaked across namespaces")
	}
	if !s.Acceptable("ns1", []byte("other"), 1, true) {
		t.Fatal("floor leaked across keys")
	}
}

func TestReset(t *testing.T) {
	s := New(consistency.ReadYourWrites)
	s.ObserveWrite("ns", []byte("k"), 100, false)
	if s.Len() != 1 {
		t.Fatal("floor not tracked")
	}
	s.Reset()
	if s.Len() != 0 || !s.Acceptable("ns", []byte("k"), 1, true) {
		t.Fatal("Reset did not clear floors")
	}
}

func TestConcurrentSessionUse(t *testing.T) {
	s := New(consistency.ReadYourWrites)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []byte{byte(w)}
			for i := uint64(1); i <= 100; i++ {
				s.ObserveWrite("ns", key, i, false)
				if !s.Acceptable("ns", key, i, true) {
					t.Errorf("own write rejected")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Fatalf("Len = %d", s.Len())
	}
}

// Property: floors are monotone — observing any sequence of writes,
// the floor equals the max version written, and any read at or above
// the floor is acceptable.
func TestQuickFloorIsMaxWrite(t *testing.T) {
	f := func(versions []uint32) bool {
		s := New(consistency.ReadYourWrites)
		var max uint64
		for _, v := range versions {
			ver := uint64(v) + 1
			s.ObserveWrite("ns", []byte("k"), ver, false)
			if ver > max {
				max = ver
			}
		}
		if len(versions) == 0 {
			return s.Floor("ns", []byte("k")) == 0
		}
		return s.Floor("ns", []byte("k")) == max &&
			s.Acceptable("ns", []byte("k"), max, true) &&
			!s.Acceptable("ns", []byte("k"), max-1, true)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
