// Package session implements Terry-style session guarantees (paper
// §3.3.1): read-your-writes and monotonic reads, the "two most common
// cases required by web applications". A Session records version
// floors from the client's own activity; the coordinator uses them to
// decide whether a replica's answer is acceptable or whether it must
// fail over to a fresher replica (ultimately the primary, which always
// has the session's own writes).
package session

import (
	"sync"

	"scads/internal/consistency"
)

// Session carries one client's consistency context. Safe for
// concurrent use by the handlers serving that client.
type Session struct {
	level consistency.SessionLevel

	mu     sync.Mutex
	tenant string
	floors map[floorKey]floor
}

type floorKey struct {
	namespace string
	key       string
}

type floor struct {
	version uint64
	// deleted records that the session's own latest write was a
	// tombstone, so a miss is the *expected* read.
	deleted bool
}

// New returns a session enforcing the given guarantee level.
func New(level consistency.SessionLevel) *Session {
	return &Session{level: level, floors: make(map[floorKey]floor)}
}

// Level returns the session's guarantee level.
func (s *Session) Level() consistency.SessionLevel { return s.level }

// BindTenant attaches an admission-control tenant identity to the
// session; every operation issued through the session is accounted to
// that tenant's quotas and priority class. Nil-safe no-op.
func (s *Session) BindTenant(tenant string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tenant = tenant
	s.mu.Unlock()
}

// Tenant returns the bound tenant identity ("" = default tenant).
func (s *Session) Tenant() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenant
}

// ObserveWrite records that this session wrote key at version.
// Relevant only for read-your-writes.
func (s *Session) ObserveWrite(namespace string, key []byte, version uint64, deleted bool) {
	if s == nil || s.level != consistency.ReadYourWrites {
		return
	}
	s.raise(namespace, key, version, deleted)
}

// ObserveRead records that this session read key at version (found
// reports whether the key existed). Maintains monotonic reads, which
// read-your-writes subsumes here.
func (s *Session) ObserveRead(namespace string, key []byte, version uint64, found bool) {
	if s == nil || s.level == consistency.SessionNone {
		return
	}
	if !found {
		return // a miss imposes no floor
	}
	s.raise(namespace, key, version, false)
}

func (s *Session) raise(namespace string, key []byte, version uint64, deleted bool) {
	k := floorKey{namespace, string(key)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.floors[k]; !ok || version > cur.version {
		s.floors[k] = floor{version: version, deleted: deleted}
	}
}

// Acceptable reports whether a read result (version, found) satisfies
// the session's floor for key. Nil sessions accept everything.
func (s *Session) Acceptable(namespace string, key []byte, version uint64, found bool) bool {
	if s == nil || s.level == consistency.SessionNone {
		return true
	}
	s.mu.Lock()
	f, ok := s.floors[floorKey{namespace, string(key)}]
	s.mu.Unlock()
	if !ok {
		return true
	}
	if !found {
		// A miss is acceptable only when the session's own latest
		// write was a delete.
		return f.deleted
	}
	return version >= f.version
}

// Floor returns the current version floor for key (0 when none).
func (s *Session) Floor(namespace string, key []byte) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floors[floorKey{namespace, string(key)}].version
}

// Reset clears all floors (e.g. on logout).
func (s *Session) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.floors = make(map[floorKey]floor)
}

// Len reports how many floors the session is tracking.
func (s *Session) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.floors)
}
