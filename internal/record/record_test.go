package record

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAppendDecodeRoundTrip(t *testing.T) {
	cases := []Record{
		{Key: []byte("k"), Value: []byte("v"), Version: 1},
		{Key: []byte("key2"), Value: nil, Version: 42, Tombstone: true},
		{Key: []byte{}, Value: []byte{}, Version: 0},
		{Key: bytes.Repeat([]byte{0xAB}, 300), Value: bytes.Repeat([]byte{0xCD}, 5000), Version: 1 << 60},
	}
	for i, r := range cases {
		enc := r.AppendBinary(nil)
		if len(enc) != r.EncodedSize() {
			t.Errorf("case %d: EncodedSize = %d, actual %d", i, r.EncodedSize(), len(enc))
		}
		got, rest, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(rest) != 0 {
			t.Errorf("case %d: %d leftover bytes", i, len(rest))
		}
		if !bytes.Equal(got.Key, r.Key) || !bytes.Equal(got.Value, r.Value) ||
			got.Version != r.Version || got.Tombstone != r.Tombstone {
			t.Errorf("case %d: round trip mismatch: got %+v want %+v", i, got, r)
		}
	}
}

func TestDecodeMultiple(t *testing.T) {
	var buf []byte
	recs := []Record{
		{Key: []byte("a"), Value: []byte("1"), Version: 1},
		{Key: []byte("b"), Value: []byte("2"), Version: 2},
		{Key: []byte("c"), Version: 3, Tombstone: true},
	}
	for _, r := range recs {
		buf = r.AppendBinary(buf)
	}
	for i := 0; len(buf) > 0; i++ {
		r, rest, err := DecodeBinary(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r.Key, recs[i].Key) {
			t.Errorf("record %d: key %q want %q", i, r.Key, recs[i].Key)
		}
		buf = rest
	}
}

func TestDecodeCorruption(t *testing.T) {
	r := Record{Key: []byte("key"), Value: []byte("value"), Version: 7}
	enc := r.AppendBinary(nil)

	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 0xFF
	if _, _, err := DecodeBinary(bad); err == nil {
		t.Error("bit flip not detected")
	}

	// Truncations at every length must fail, never panic.
	for n := 0; n < len(enc); n++ {
		if _, _, err := DecodeBinary(enc[:n]); err == nil {
			t.Errorf("truncation to %d bytes not detected", n)
		}
	}
}

func TestSupersedes(t *testing.T) {
	a := Record{Key: []byte("k"), Value: []byte("a"), Version: 1}
	b := Record{Key: []byte("k"), Value: []byte("b"), Version: 2}
	if !b.Supersedes(a) || a.Supersedes(b) {
		t.Error("higher version must supersede")
	}
	// Tie: tombstone wins.
	del := Record{Key: []byte("k"), Version: 2, Tombstone: true}
	if !del.Supersedes(b) || b.Supersedes(del) {
		t.Error("tombstone must win version ties")
	}
	// Tie without tombstone: larger value for determinism.
	c := Record{Key: []byte("k"), Value: []byte("c"), Version: 2}
	if !c.Supersedes(b) || b.Supersedes(c) {
		t.Error("deterministic tie-break failed")
	}
	// Identical records do not supersede themselves.
	if a.Supersedes(a) {
		t.Error("record supersedes itself")
	}
}

func TestClone(t *testing.T) {
	r := Record{Key: []byte("k"), Value: []byte("v"), Version: 9, Tombstone: true}
	c := r.Clone()
	c.Key[0] = 'x'
	c.Value[0] = 'y'
	if r.Key[0] != 'k' || r.Value[0] != 'v' {
		t.Error("Clone shares backing arrays")
	}
	if c.Version != 9 || !c.Tombstone {
		t.Error("Clone dropped fields")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(key, value []byte, version uint64, tomb bool) bool {
		r := Record{Key: key, Value: value, Version: version, Tombstone: tomb}
		got, rest, err := DecodeBinary(r.AppendBinary(nil))
		if err != nil || len(rest) != 0 {
			return false
		}
		return bytes.Equal(got.Key, key) && bytes.Equal(got.Value, value) &&
			got.Version == version && got.Tombstone == tomb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(junk []byte) bool {
		_, _, _ = DecodeBinary(junk) // must not panic
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendBinary(b *testing.B) {
	r := Record{Key: []byte("user:12345:profile"), Value: bytes.Repeat([]byte("x"), 256), Version: 99}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.AppendBinary(nil)
	}
}

func BenchmarkDecodeBinary(b *testing.B) {
	r := Record{Key: []byte("user:12345:profile"), Value: bytes.Repeat([]byte("x"), 256), Version: 99}
	enc := r.AppendBinary(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = DecodeBinary(enc)
	}
}

// --- wire codec (MarshalTo / Unmarshal) -----------------------------

func TestMarshalToRoundTrip(t *testing.T) {
	cases := []Record{
		{},
		{Key: []byte("k"), Value: []byte("v"), Version: 1},
		{Key: []byte("key2"), Version: 42, Tombstone: true},
		{Key: bytes.Repeat([]byte{0xAB}, 300), Value: bytes.Repeat([]byte{0xCD}, 5000), Version: 1 << 60},
	}
	for i, r := range cases {
		enc := r.MarshalTo(nil)
		if len(enc) != r.MarshaledSize() {
			t.Errorf("case %d: MarshaledSize = %d, encoded %d bytes", i, r.MarshaledSize(), len(enc))
		}
		var got Record
		rest, err := got.Unmarshal(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("case %d: %d leftover bytes", i, len(rest))
		}
		if !reflect.DeepEqual(r, got) {
			t.Fatalf("case %d: round trip %+v != %+v", i, got, r)
		}
	}
}

// TestMarshalToConcatenation: records marshal back-to-back and
// unmarshal sequentially, as on the wire.
func TestMarshalToConcatenation(t *testing.T) {
	var buf []byte
	var want []Record
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		r := Record{Version: rng.Uint64(), Tombstone: rng.Intn(2) == 0}
		if n := rng.Intn(20); n > 0 {
			r.Key = make([]byte, n)
			rng.Read(r.Key)
		}
		if n := rng.Intn(200); n > 0 {
			r.Value = make([]byte, n)
			rng.Read(r.Value)
		}
		buf = r.MarshalTo(buf)
		want = append(want, r)
	}
	rest := buf
	for i, w := range want {
		var got Record
		var err error
		rest, err = got.Unmarshal(rest)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(w, got) {
			t.Fatalf("record %d: %+v != %+v", i, got, w)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d leftover bytes", len(rest))
	}
}

// TestUnmarshalTruncated: every prefix of a valid encoding errors.
func TestUnmarshalTruncated(t *testing.T) {
	r := Record{Key: []byte("some-key"), Value: bytes.Repeat([]byte("v"), 64), Version: 1 << 33}
	enc := r.MarshalTo(nil)
	for n := 0; n < len(enc); n++ {
		var got Record
		if _, err := got.Unmarshal(enc[:n]); err == nil {
			t.Fatalf("truncated record at %d/%d unmarshalled", n, len(enc))
		}
	}
}

// TestUnmarshalOversizedClaims: corrupt lengths claiming more bytes
// than present must error without allocating.
func TestUnmarshalOversizedClaims(t *testing.T) {
	// flags + version + keyLen claiming 2^40.
	b := []byte{0, 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0x1f}
	var r Record
	if _, err := r.Unmarshal(b); err == nil {
		t.Fatal("absurd key length unmarshalled")
	}
	// Overlong varint for version.
	b2 := append([]byte{0}, bytes.Repeat([]byte{0x80}, 11)...)
	if _, err := r.Unmarshal(b2); err == nil {
		t.Fatal("overlong version varint unmarshalled")
	}
}

func FuzzUnmarshal(f *testing.F) {
	f.Add(Record{Key: []byte("k"), Value: []byte("v"), Version: 9}.MarshalTo(nil))
	f.Add(Record{Tombstone: true}.MarshalTo(nil))
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{0x80}, 16))
	f.Fuzz(func(t *testing.T, b []byte) {
		var r Record
		rest, err := r.Unmarshal(b)
		if err != nil {
			return
		}
		consumed := len(b) - len(rest)
		again := r.MarshalTo(nil)
		var r2 Record
		if _, err := r2.Unmarshal(again); err != nil {
			t.Fatalf("re-decode of re-encoded record failed: %v", err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("re-encode not stable: %+v != %+v", r2, r)
		}
		if r.MarshaledSize() != consumed && r.MarshaledSize() != len(again) {
			t.Fatalf("MarshaledSize %d inconsistent (consumed %d, re-encoded %d)", r.MarshaledSize(), consumed, len(again))
		}
	})
}

func BenchmarkMarshalTo(b *testing.B) {
	r := Record{Key: []byte("user:000000000001"), Value: bytes.Repeat([]byte("v"), 128), Version: 1 << 40}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = r.MarshalTo(buf[:0])
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	enc := Record{Key: []byte("user:000000000001"), Value: bytes.Repeat([]byte("v"), 128), Version: 1 << 40}.MarshalTo(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var r Record
		if _, err := r.Unmarshal(enc); err != nil {
			b.Fatal(err)
		}
	}
}
