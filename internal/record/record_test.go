package record

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAppendDecodeRoundTrip(t *testing.T) {
	cases := []Record{
		{Key: []byte("k"), Value: []byte("v"), Version: 1},
		{Key: []byte("key2"), Value: nil, Version: 42, Tombstone: true},
		{Key: []byte{}, Value: []byte{}, Version: 0},
		{Key: bytes.Repeat([]byte{0xAB}, 300), Value: bytes.Repeat([]byte{0xCD}, 5000), Version: 1 << 60},
	}
	for i, r := range cases {
		enc := r.AppendBinary(nil)
		if len(enc) != r.EncodedSize() {
			t.Errorf("case %d: EncodedSize = %d, actual %d", i, r.EncodedSize(), len(enc))
		}
		got, rest, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(rest) != 0 {
			t.Errorf("case %d: %d leftover bytes", i, len(rest))
		}
		if !bytes.Equal(got.Key, r.Key) || !bytes.Equal(got.Value, r.Value) ||
			got.Version != r.Version || got.Tombstone != r.Tombstone {
			t.Errorf("case %d: round trip mismatch: got %+v want %+v", i, got, r)
		}
	}
}

func TestDecodeMultiple(t *testing.T) {
	var buf []byte
	recs := []Record{
		{Key: []byte("a"), Value: []byte("1"), Version: 1},
		{Key: []byte("b"), Value: []byte("2"), Version: 2},
		{Key: []byte("c"), Version: 3, Tombstone: true},
	}
	for _, r := range recs {
		buf = r.AppendBinary(buf)
	}
	for i := 0; len(buf) > 0; i++ {
		r, rest, err := DecodeBinary(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r.Key, recs[i].Key) {
			t.Errorf("record %d: key %q want %q", i, r.Key, recs[i].Key)
		}
		buf = rest
	}
}

func TestDecodeCorruption(t *testing.T) {
	r := Record{Key: []byte("key"), Value: []byte("value"), Version: 7}
	enc := r.AppendBinary(nil)

	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 0xFF
	if _, _, err := DecodeBinary(bad); err == nil {
		t.Error("bit flip not detected")
	}

	// Truncations at every length must fail, never panic.
	for n := 0; n < len(enc); n++ {
		if _, _, err := DecodeBinary(enc[:n]); err == nil {
			t.Errorf("truncation to %d bytes not detected", n)
		}
	}
}

func TestSupersedes(t *testing.T) {
	a := Record{Key: []byte("k"), Value: []byte("a"), Version: 1}
	b := Record{Key: []byte("k"), Value: []byte("b"), Version: 2}
	if !b.Supersedes(a) || a.Supersedes(b) {
		t.Error("higher version must supersede")
	}
	// Tie: tombstone wins.
	del := Record{Key: []byte("k"), Version: 2, Tombstone: true}
	if !del.Supersedes(b) || b.Supersedes(del) {
		t.Error("tombstone must win version ties")
	}
	// Tie without tombstone: larger value for determinism.
	c := Record{Key: []byte("k"), Value: []byte("c"), Version: 2}
	if !c.Supersedes(b) || b.Supersedes(c) {
		t.Error("deterministic tie-break failed")
	}
	// Identical records do not supersede themselves.
	if a.Supersedes(a) {
		t.Error("record supersedes itself")
	}
}

func TestClone(t *testing.T) {
	r := Record{Key: []byte("k"), Value: []byte("v"), Version: 9, Tombstone: true}
	c := r.Clone()
	c.Key[0] = 'x'
	c.Value[0] = 'y'
	if r.Key[0] != 'k' || r.Value[0] != 'v' {
		t.Error("Clone shares backing arrays")
	}
	if c.Version != 9 || !c.Tombstone {
		t.Error("Clone dropped fields")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(key, value []byte, version uint64, tomb bool) bool {
		r := Record{Key: key, Value: value, Version: version, Tombstone: tomb}
		got, rest, err := DecodeBinary(r.AppendBinary(nil))
		if err != nil || len(rest) != 0 {
			return false
		}
		return bytes.Equal(got.Key, key) && bytes.Equal(got.Value, value) &&
			got.Version == version && got.Tombstone == tomb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(junk []byte) bool {
		_, _, _ = DecodeBinary(junk) // must not panic
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendBinary(b *testing.B) {
	r := Record{Key: []byte("user:12345:profile"), Value: bytes.Repeat([]byte("x"), 256), Version: 99}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.AppendBinary(nil)
	}
}

func BenchmarkDecodeBinary(b *testing.B) {
	r := Record{Key: []byte("user:12345:profile"), Value: bytes.Repeat([]byte("x"), 256), Version: 99}
	enc := r.AppendBinary(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = DecodeBinary(enc)
	}
}
