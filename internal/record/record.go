// Package record defines the versioned key-value record that flows
// through every layer of the SCADS storage stack (memtable, WAL,
// SSTable, replication). A record carries a logical version used for
// last-write-wins resolution and staleness accounting, and a tombstone
// flag so deletions propagate through lazy replication like any other
// write (paper §3.3).
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record is a single versioned key-value entry.
type Record struct {
	// Key is the order-preserving encoded key (see internal/keycodec).
	Key []byte
	// Value is the opaque payload; empty for tombstones.
	Value []byte
	// Version is a logical timestamp. Higher versions win under
	// last-write-wins. SCADS uses hybrid versions: wall-clock
	// nanoseconds from the node's clock, tie-broken by node ID bits.
	Version uint64
	// Tombstone marks a deletion.
	Tombstone bool
}

// Clone returns a deep copy of r.
func (r Record) Clone() Record {
	c := Record{Version: r.Version, Tombstone: r.Tombstone}
	if r.Key != nil {
		c.Key = append([]byte(nil), r.Key...)
	}
	if r.Value != nil {
		c.Value = append([]byte(nil), r.Value...)
	}
	return c
}

// Supersedes reports whether r should replace other under
// last-write-wins (strictly newer version wins; ties favour the
// tombstone so deletes are sticky, then larger value for determinism).
func (r Record) Supersedes(other Record) bool {
	if r.Version != other.Version {
		return r.Version > other.Version
	}
	if r.Tombstone != other.Tombstone {
		return r.Tombstone
	}
	return string(r.Value) > string(other.Value)
}

// ErrCorrupt is returned when a serialized record fails validation.
var ErrCorrupt = errors.New("record: corrupt encoding")

const (
	flagTombstone byte = 1 << 0
)

// AppendBinary serializes r to dst in the framed format used by the
// WAL and SSTable blocks:
//
//	crc32(payload) uint32 | payloadLen uint32 | payload
//	payload = flags byte | version uint64 | keyLen uvarint | key |
//	          valLen uvarint | value
func (r Record) AppendBinary(dst []byte) []byte {
	payload := make([]byte, 0, 1+8+2*binary.MaxVarintLen64+len(r.Key)+len(r.Value))
	var flags byte
	if r.Tombstone {
		flags |= flagTombstone
	}
	payload = append(payload, flags)
	payload = binary.BigEndian.AppendUint64(payload, r.Version)
	payload = binary.AppendUvarint(payload, uint64(len(r.Key)))
	payload = append(payload, r.Key...)
	payload = binary.AppendUvarint(payload, uint64(len(r.Value)))
	payload = append(payload, r.Value...)

	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// DecodeBinary decodes one framed record from b, returning the record
// and the remaining bytes. Key and Value are copies, safe to retain
// after b is reused.
func DecodeBinary(b []byte) (Record, []byte, error) {
	r, rest, err := DecodeBinaryAlias(b)
	if err != nil {
		return Record{}, nil, err
	}
	if r.Key != nil {
		r.Key = append([]byte(nil), r.Key...)
	}
	if r.Value != nil {
		r.Value = append([]byte(nil), r.Value...)
	}
	return r, rest, nil
}

// DecodeBinaryAlias decodes one framed record from b without copying:
// Key and Value alias b, so callers that retain the record beyond the
// buffer's lifetime must Clone it. This is the SSTable block decoder —
// a block is decoded once into a buffer owned by the decoded records,
// so the per-record copy DecodeBinary pays would be pure waste there.
func DecodeBinaryAlias(b []byte) (Record, []byte, error) {
	if len(b) < 8 {
		return Record{}, nil, fmt.Errorf("record: short frame header (%d bytes): %w", len(b), ErrCorrupt)
	}
	wantCRC := binary.BigEndian.Uint32(b[:4])
	n := binary.BigEndian.Uint32(b[4:8])
	if uint32(len(b)-8) < n {
		return Record{}, nil, fmt.Errorf("record: truncated payload (want %d have %d): %w", n, len(b)-8, ErrCorrupt)
	}
	payload := b[8 : 8+n]
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return Record{}, nil, fmt.Errorf("record: checksum mismatch: %w", ErrCorrupt)
	}
	rest := b[8+n:]

	if len(payload) < 9 {
		return Record{}, nil, ErrCorrupt
	}
	var r Record
	r.Tombstone = payload[0]&flagTombstone != 0
	r.Version = binary.BigEndian.Uint64(payload[1:9])
	p := payload[9:]

	klen, m := binary.Uvarint(p)
	if m <= 0 || uint64(len(p)-m) < klen {
		return Record{}, nil, ErrCorrupt
	}
	p = p[m:]
	if klen > 0 {
		r.Key = p[:klen:klen]
	}
	p = p[klen:]

	vlen, m := binary.Uvarint(p)
	if m <= 0 || uint64(len(p)-m) < vlen {
		return Record{}, nil, ErrCorrupt
	}
	p = p[m:]
	if uint64(len(p)) != vlen {
		return Record{}, nil, ErrCorrupt
	}
	if vlen > 0 {
		r.Value = p[:vlen:vlen]
	}
	return r, rest, nil
}

// MarshalTo appends the unframed wire encoding of r to dst and
// returns the extended slice:
//
//	flags byte | version uvarint | keyLen uvarint | key |
//	valLen uvarint | value
//
// It is the allocation-free codec the RPC layer uses for the records a
// request or response carries: no CRC (TCP already checksums the
// stream and the frame length bounds the read) and no per-record
// allocation. The WAL and SSTables keep the CRC-framed AppendBinary,
// where torn writes and bit rot are real.
func (r Record) MarshalTo(dst []byte) []byte {
	var flags byte
	if r.Tombstone {
		flags |= flagTombstone
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, r.Version)
	dst = binary.AppendUvarint(dst, uint64(len(r.Key)))
	dst = append(dst, r.Key...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Value)))
	return append(dst, r.Value...)
}

// Unmarshal decodes one MarshalTo-encoded record from b, returning the
// remaining bytes. Key and Value alias b — callers that retain the
// record beyond the buffer's lifetime must Clone it. Every length is
// validated against the bytes present before use, so truncated or
// corrupt input returns ErrCorrupt and never panics or over-allocates.
func (r *Record) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("record: empty wire record: %w", ErrCorrupt)
	}
	r.Tombstone = b[0]&flagTombstone != 0
	b = b[1:]
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("record: bad version varint: %w", ErrCorrupt)
	}
	r.Version = v
	b = b[n:]
	klen, n := binary.Uvarint(b)
	if n <= 0 || klen > uint64(len(b)-n) {
		return nil, fmt.Errorf("record: bad key length: %w", ErrCorrupt)
	}
	b = b[n:]
	if klen > 0 {
		r.Key = b[:klen:klen]
	} else {
		r.Key = nil
	}
	b = b[klen:]
	vlen, n := binary.Uvarint(b)
	if n <= 0 || vlen > uint64(len(b)-n) {
		return nil, fmt.Errorf("record: bad value length: %w", ErrCorrupt)
	}
	b = b[n:]
	if vlen > 0 {
		r.Value = b[:vlen:vlen]
	} else {
		r.Value = nil
	}
	return b[vlen:], nil
}

// MarshaledSize returns the number of bytes MarshalTo will emit for r.
func (r Record) MarshaledSize() int {
	return 1 + uvarintLen(r.Version) +
		uvarintLen(uint64(len(r.Key))) + len(r.Key) +
		uvarintLen(uint64(len(r.Value))) + len(r.Value)
}

// EncodedSize returns the number of bytes AppendBinary will emit for r.
func (r Record) EncodedSize() int {
	payload := 1 + 8 +
		uvarintLen(uint64(len(r.Key))) + len(r.Key) +
		uvarintLen(uint64(len(r.Value))) + len(r.Value)
	return 8 + payload
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// MemSize estimates the in-memory footprint of r, used for memtable
// flush thresholds.
func (r Record) MemSize() int {
	return len(r.Key) + len(r.Value) + 32
}
