// Package rpc implements the SCADS wire protocol: length-prefixed
// binary frames carrying hand-rolled, zero-reflection request/response
// encodings over a pipelined multiplexed TCP transport (see wire.go
// for the frame layout), plus an in-process transport with injectable
// latency used by the cluster simulator.
//
// The protocol is deliberately small — the paper's storage interface is
// point get/put/delete, bounded range scan, and the replication apply
// path. Every storage node, the router, and the replication pump speak
// through the Transport interface, so experiments can swap real sockets
// for simulated ones without touching any other layer.
//
// Request coalescing: MethodBatch is an envelope carrying independent
// sub-requests (Request.Batch) answered positionally (Response.Batch).
// Handlers support it by delegating to ServeBatch. The Batcher type
// wraps any Transport and transparently coalesces concurrent calls to
// the same address into one batch round-trip, so the per-call network
// and dispatch overhead is amortised across however many coordinator
// goroutines are in flight — the request-aggregation lever that turns
// per-node capacity into fleet throughput. A lone call passes through
// unwrapped, so sequential workloads pay nothing.
package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"time"

	"scads/internal/record"
)

// Method names understood by storage nodes.
const (
	MethodPing      = "ping"
	MethodGet       = "get"
	MethodPut       = "put"
	MethodDelete    = "delete"
	MethodScan      = "scan"
	MethodApply     = "apply"     // replication: apply pre-versioned records
	MethodDropRange = "droprange" // partition move cleanup
	MethodStats     = "stats"
	MethodBatch     = "batch" // envelope: independent sub-requests answered positionally

	// Online range migration (snapshot → delta catch-up → fence):
	// MethodRangeSnapshot pages a range's records (tombstones included)
	// together with the donor's apply watermark; MethodRangeDelta
	// returns the records modified after a watermark; MethodRangeFence
	// installs or lifts a write fence over a range. All three travel
	// through MethodBatch envelopes like any other method.
	MethodRangeSnapshot = "rangesnap"
	MethodRangeDelta    = "rangedelta"
	MethodRangeFence    = "rangefence"

	// MethodRepairs is served by a coordinator's admin handler (not by
	// storage nodes): it reports the self-healing repair subsystem's
	// counters and in-flight jobs for operator tooling (scads-ctl
	// repairs).
	MethodRepairs = "repairs"

	// MethodTenants is served by a coordinator's admin handler: it
	// reports the admission controller's per-tenant quota/shed/admit
	// counters for operator tooling (scads-ctl tenants).
	MethodTenants = "tenants"
)

// controlMethods are the cheap control-plane probes (failure
// detection, operator tooling) that must never queue behind bulk
// data-plane work: the server keeps dedicated handler headroom for
// them, and the Batcher never coalesces them into data batches.
var controlMethods = map[string]bool{
	MethodPing:    true,
	MethodStats:   true,
	MethodRepairs: true,
	MethodTenants: true,
}

// IsControlMethod reports whether method is a control-plane probe
// entitled to the server's reserved handler headroom.
func IsControlMethod(method string) bool { return controlMethods[method] }

// Request is the single request envelope for all methods. Unused
// fields stay at their zero values; the wire codec encodes a zero
// field as a single byte.
type Request struct {
	// ID is the transport-assigned correlation ID. Callers leave it
	// zero; transports stamp their own per-connection IDs on the wire
	// without mutating the caller's value.
	ID        uint64
	Method    string
	Namespace string

	// Tenant is the admission-control identity of the session that
	// originated the request (empty for the default tenant). It rides
	// the envelope so per-tenant accounting survives coordinator →
	// node fan-out (scans debit the tenant's scan-byte quota).
	Tenant string

	Key   []byte
	Value []byte

	Start []byte
	End   []byte
	Limit int

	// Projection and Preds are MethodScan pushdown: when Projection is
	// non-empty the node decodes each matching row, narrows it to the
	// named columns, and returns the re-encoded projection instead of
	// the full base row; Preds are conjunctive filters evaluated
	// node-side, so non-matching rows never cross the wire and do not
	// count against Limit.
	Projection []string
	Preds      []ScanPred

	// Records carries pre-versioned writes for MethodApply.
	Records []record.Record

	// Since and Epoch carry the delta baseline for MethodRangeDelta:
	// "everything applied after sequence Since of epoch Epoch".
	Since uint64
	Epoch uint64

	// Fence selects install (true) or lift (false) for
	// MethodRangeFence.
	Fence bool

	// Batch carries the sub-requests of a MethodBatch envelope.
	Batch []Request
}

// Response is the reply envelope.
type Response struct {
	ID    uint64
	Err   string
	Found bool

	Value   []byte
	Version uint64
	Records []record.Record

	// Stats payload (MethodStats).
	RecordCount int64
	QueueDepth  int

	// Watermark and Epoch report the node's apply position for
	// MethodRangeSnapshot (captured before the snapshot scan) and
	// MethodRangeDelta (covering the returned records).
	Watermark uint64
	Epoch     uint64

	// Fenced reports the node's installed fence count (MethodStats).
	Fenced int

	// More and Resume are the MethodScan continuation cursor: More is
	// set when the node stopped before exhausting [Start, End) — the
	// per-request limit filled, or the raw-visit cap was hit while
	// filters were rejecting rows — and Resume is the key the caller
	// should restart from to continue exactly where this page ended.
	More   bool
	Resume []byte

	// Batch carries the sub-responses of a MethodBatch envelope,
	// positionally matching Request.Batch.
	Batch []Response
}

// ErrString converts an error to the wire representation.
func ErrString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Error materialises the wire error, or nil.
func (r *Response) Error() error {
	if r.Err == "" {
		return nil
	}
	return errors.New(r.Err)
}

// Handler processes one request. Implementations must be safe for
// concurrent use.
type Handler interface {
	Serve(req Request) Response
}

// HandlerFunc adapts a function to a Handler.
type HandlerFunc func(Request) Response

// Serve implements Handler.
func (f HandlerFunc) Serve(req Request) Response { return f(req) }

// Transport delivers a request to the node at addr and returns its
// response.
type Transport interface {
	Call(addr string, req Request) (Response, error)
}

// ErrUnreachable is returned when the destination node cannot be
// reached (connection refused, node down in simulation, etc.).
var ErrUnreachable = errors.New("rpc: node unreachable")

// ErrFenced is the wire error a node returns for a write landing in a
// range fenced for migration handoff. Coordinators react by re-reading
// the partition map and retrying against the (possibly new) primary —
// the write is delayed by the fence pause, never dropped.
var ErrFenced = errors.New("rpc: range fenced for migration")

// ErrSnapshotGap is the wire error MethodRangeDelta returns when the
// supplied watermark predates the node's retained delta log (or names
// a previous process lifetime). The migration must restart from a
// fresh snapshot.
var ErrSnapshotGap = errors.New("rpc: delta watermark outside retained apply log")

// IsFenced reports whether err is a fence rejection, across the wire
// boundary (errors arrive re-materialised from strings).
func IsFenced(err error) bool {
	return err != nil && strings.Contains(err.Error(), "range fenced for migration")
}

// FenceRetryLimit and FenceRetryPause are the shared policy for
// writers that hit a fence: re-read the partition map and retry, up to
// this many attempts with this pause between them. A fence pause
// covers one final delta drain plus the routing flip, so the bound is
// generous; every fenced write path (coordinator applies, router
// put/delete) uses the same policy so migration-time write behavior is
// uniform.
const (
	FenceRetryLimit = 400
	FenceRetryPause = time.Millisecond
)

// DownRetryPause and DownRetryBudget are the shared policy for writers
// whose target node is unreachable or marked down: re-read the
// partition map and retry, so a write stalls through a crash-failover
// window (failure detection plus the repair manager's primary flip)
// instead of failing. The budget is a wall-clock bound, not an attempt
// count — over TCP a single attempt against a half-dead node can burn
// a full dial timeout, so attempt-counting alone would stretch the
// stall to minutes. The 4s budget deliberately covers the repair
// loop's *default* detection window (3s heartbeat timeout + one 500ms
// sweep) with margin, so an out-of-the-box cluster keeps the "writes
// stall through failover, never fail" contract; tune both together if
// you lengthen the heartbeat timeout.
const (
	DownRetryPause  = 5 * time.Millisecond
	DownRetryBudget = 4 * time.Second
)

// IsUnreachable reports whether err means the target node could not be
// reached at all (crash, partition, refused connection, connection
// torn down mid-request), across error wrapping and across the wire
// boundary (errors arrive re-materialised from strings). The transport
// layer is responsible for wrapping its own failures in ErrUnreachable
// (TCPTransport wraps dial, send, and receive errors); the substring
// checks are deliberately narrow so a node-side semantic error whose
// message happens to mention I/O is never mistaken for a dead node.
func IsUnreachable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrUnreachable) {
		return true
	}
	s := err.Error()
	return strings.Contains(s, "node unreachable") ||
		strings.Contains(s, "connection refused") ||
		strings.Contains(s, "connection reset")
}

// ErrOverloaded is the wire error returned when a server sheds a
// request instead of queueing it: the node's per-connection handler
// bound is saturated, or the coordinator's admission controller
// rejected the tenant (quota exhausted or priority shed under
// measured overload). It is backpressure, not failure — the work was
// never started, so the caller should wait the retry-after hint and
// try again under its normal retry budget instead of hammering.
var ErrOverloaded = errors.New("rpc: overloaded")

// DefaultRetryAfter is the retry-after hint used when an overload
// rejection carries none (or the hint failed to parse off the wire).
const DefaultRetryAfter = 10 * time.Millisecond

// Overloaded builds a classified overload rejection carrying a
// retry-after hint and a human-readable reason. The hint travels
// inside the message so it survives the string-typed wire boundary;
// RetryAfter recovers it on the far side.
func Overloaded(retryAfter time.Duration, reason string) error {
	if retryAfter <= 0 {
		retryAfter = DefaultRetryAfter
	}
	if reason == "" {
		return fmt.Errorf("%w, retry after %s", ErrOverloaded, retryAfter)
	}
	return fmt.Errorf("%w, retry after %s: %s", ErrOverloaded, retryAfter, reason)
}

// IsOverloaded reports whether err is an overload shed, across error
// wrapping and across the wire boundary (errors arrive
// re-materialised from strings).
func IsOverloaded(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrOverloaded) {
		return true
	}
	return strings.Contains(err.Error(), "rpc: overloaded")
}

// RetryAfter extracts the retry-after hint from an overload
// rejection, across the wire boundary. Non-overload errors and
// rejections without a parseable hint yield DefaultRetryAfter, so
// callers can sleep the result unconditionally.
func RetryAfter(err error) time.Duration {
	if err == nil {
		return DefaultRetryAfter
	}
	s := err.Error()
	i := strings.Index(s, "retry after ")
	if i < 0 {
		return DefaultRetryAfter
	}
	s = s[i+len("retry after "):]
	if j := strings.IndexAny(s, ":,; "); j >= 0 {
		s = s[:j]
	}
	d, perr := time.ParseDuration(s)
	if perr != nil || d <= 0 {
		return DefaultRetryAfter
	}
	return d
}

// IsSnapshotGap reports whether err is a delta-baseline gap, across
// the wire boundary.
func IsSnapshotGap(err error) bool {
	return err != nil && strings.Contains(err.Error(), "delta watermark outside retained apply log")
}

// Unimplemented is a convenience response for unknown methods.
func Unimplemented(req Request) Response {
	return Response{ID: req.ID, Err: fmt.Sprintf("rpc: unknown method %q", req.Method)}
}

// ScanPredOp enumerates the comparison operators a pushed-down scan
// filter supports.
type ScanPredOp int

// Supported pushdown comparison operators.
const (
	PredEq ScanPredOp = iota
	PredLt
	PredLe
	PredGt
	PredGe
)

// ScanPred is one conjunct of a pushed-down scan filter: the named row
// column, compared against Value. Value holds the keycodec encoding of
// the literal, and the node compares it against the keycodec encoding
// of the row's column — byte order equals value order, so one
// bytes.Compare implements every operator for every column type
// without the wire format knowing about row value types at all.
type ScanPred struct {
	Column string
	Op     ScanPredOp
	Value  []byte
}

// Match reports whether a keycodec-encoded column value satisfies the
// predicate.
func (p ScanPred) Match(encoded []byte) bool {
	c := bytes.Compare(encoded, p.Value)
	switch p.Op {
	case PredEq:
		return c == 0
	case PredLt:
		return c < 0
	case PredLe:
		return c <= 0
	case PredGt:
		return c > 0
	case PredGe:
		return c >= 0
	default:
		return false
	}
}

// ServeBatch dispatches each sub-request of a MethodBatch envelope
// through h and assembles the positionally matched replies. Handlers
// add batch support with a single `case MethodBatch: return
// rpc.ServeBatch(h, req)`.
func ServeBatch(h Handler, req Request) Response {
	out := Response{ID: req.ID, Found: true, Batch: make([]Response, len(req.Batch))}
	for i, sub := range req.Batch {
		resp := h.Serve(sub)
		resp.ID = sub.ID
		out.Batch[i] = resp
	}
	return out
}
