package rpc

import (
	"sync"
	"time"

	"scads/internal/clock"
)

// LocalTransport is an in-process Transport used by the cluster
// simulator: handlers register under logical addresses, calls dispatch
// directly (optionally charging simulated latency against a virtual
// clock), and nodes can be partitioned or crashed for failure
// experiments.
type LocalTransport struct {
	// Clock charges Latency per call when set (nil disables).
	Clock clock.Clock
	// Latency is the simulated one-way network + service delay added
	// per call when Clock is non-nil.
	Latency time.Duration

	mu        sync.RWMutex
	handlers  map[string]Handler
	down      map[string]bool
	applyDown map[string]bool
}

// NewLocalTransport returns an empty registry.
func NewLocalTransport() *LocalTransport {
	return &LocalTransport{
		handlers:  make(map[string]Handler),
		down:      make(map[string]bool),
		applyDown: make(map[string]bool),
	}
}

// Register binds addr to h. Re-registering replaces the handler.
func (t *LocalTransport) Register(addr string, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[addr] = h
	delete(t.down, addr)
}

// Unregister removes addr entirely (simulates decommissioning).
func (t *LocalTransport) Unregister(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.handlers, addr)
	delete(t.down, addr)
}

// SetDown marks addr unreachable without removing it (simulates a
// crash or partition).
func (t *LocalTransport) SetDown(addr string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down[addr] = down
}

// SetApplyDown severs only the replication link to addr: MethodApply
// calls fail while reads still reach the node. This models the §3.3.1
// datacenter disconnect, where a replica keeps serving clients on its
// side of the partition but no longer receives updates — so its data
// grows stale.
func (t *LocalTransport) SetApplyDown(addr string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.applyDown[addr] = down
}

// Addrs returns all registered addresses.
func (t *LocalTransport) Addrs() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.handlers))
	for a := range t.handlers {
		out = append(out, a)
	}
	return out
}

// Call implements Transport.
func (t *LocalTransport) Call(addr string, req Request) (Response, error) {
	t.mu.RLock()
	h, ok := t.handlers[addr]
	down := t.down[addr] || (t.applyDown[addr] && carriesApply(req))
	t.mu.RUnlock()
	if !ok || down {
		return Response{}, ErrUnreachable
	}
	if t.Clock != nil && t.Latency > 0 {
		t.Clock.Sleep(t.Latency)
	}
	resp := h.Serve(req)
	resp.ID = req.ID
	return resp, nil
}

// carriesApply reports whether req is replication traffic, looking
// through a MethodBatch envelope so a severed apply link (SetApplyDown)
// also stops batched applies.
func carriesApply(req Request) bool {
	if req.Method == MethodApply {
		return true
	}
	if req.Method != MethodBatch {
		return false
	}
	for _, sub := range req.Batch {
		if carriesApply(sub) {
			return true
		}
	}
	return false
}
