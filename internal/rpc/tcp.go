package rpc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Server serves a Handler over TCP. One goroutine per connection;
// requests on a connection are handled sequentially (clients pool
// connections for parallelism, matching the simple 2009-era design).
type Server struct {
	handler Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a Server dispatching to handler.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting connections on addr ("host:port"; use
// ":0" for an ephemeral port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("rpc: server closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken peer
		}
		resp := s.handler.Serve(req)
		resp.ID = req.ID
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Close stops the listener and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// TCPTransport is a Transport over real sockets with a per-address
// connection pool.
type TCPTransport struct {
	// Timeout bounds each call (dial + write + read). Default 5s.
	Timeout time.Duration
	// PoolSize bounds idle connections kept per address. Default 4.
	PoolSize int

	mu    sync.Mutex
	pools map[string][]*tcpConn
}

type tcpConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	id   uint64
}

// NewTCPTransport returns a ready transport.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{Timeout: 5 * time.Second, PoolSize: 4, pools: make(map[string][]*tcpConn)}
}

// Call implements Transport.
func (t *TCPTransport) Call(addr string, req Request) (Response, error) {
	c, err := t.acquire(addr)
	if err != nil {
		return Response{}, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	deadline := time.Now().Add(t.timeout())
	c.conn.SetDeadline(deadline)

	c.id++
	req.ID = c.id
	// Send/receive failures are transport-level by definition — the
	// connection died or timed out mid-request — so they wrap
	// ErrUnreachable and writers enter the shared down-retry loop
	// (safe: applies are idempotent under last-write-wins versions).
	// Semantic errors from a node that answered travel in
	// Response.Err and are never classified as unreachable.
	if err := c.enc.Encode(&req); err != nil {
		c.conn.Close()
		return Response{}, fmt.Errorf("%w: send: %v", ErrUnreachable, err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		c.conn.Close()
		if errors.Is(err, io.EOF) {
			return Response{}, ErrUnreachable
		}
		return Response{}, fmt.Errorf("%w: receive: %v", ErrUnreachable, err)
	}
	if resp.ID != req.ID {
		c.conn.Close()
		return Response{}, errors.New("rpc: response ID mismatch")
	}
	t.release(addr, c)
	return resp, nil
}

func (t *TCPTransport) timeout() time.Duration {
	if t.Timeout > 0 {
		return t.Timeout
	}
	return 5 * time.Second
}

func (t *TCPTransport) acquire(addr string) (*tcpConn, error) {
	t.mu.Lock()
	pool := t.pools[addr]
	if n := len(pool); n > 0 {
		c := pool[n-1]
		t.pools[addr] = pool[:n-1]
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	conn, err := net.DialTimeout("tcp", addr, t.timeout())
	if err != nil {
		return nil, err
	}
	return &tcpConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

func (t *TCPTransport) release(addr string, c *tcpConn) {
	c.conn.SetDeadline(time.Time{})
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.PoolSize
	if size <= 0 {
		size = 4
	}
	if len(t.pools[addr]) < size {
		t.pools[addr] = append(t.pools[addr], c)
		return
	}
	c.conn.Close()
}

// Close closes every pooled connection.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, pool := range t.pools {
		for _, c := range pool {
			c.conn.Close()
		}
	}
	t.pools = make(map[string][]*tcpConn)
	return nil
}
