package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// maxConnHandlers bounds concurrently dispatched handlers per server
// connection. Data-plane requests past the bound are shed with an
// ErrOverloaded response carrying a retry-after hint — explicit
// backpressure the caller's retry budget understands — instead of
// blocking the read loop, which would silently queue every method
// (including failure-detection pings) behind bulk work via TCP.
const maxConnHandlers = 256

// controlHandlerReserve is the slice of maxConnHandlers held back for
// control-plane methods (MethodPing, MethodStats, MethodRepairs …):
// however saturated the data plane is, a heartbeat probe always finds
// a free handler, so the repair detector cannot false-positive a node
// that is merely busy.
const controlHandlerReserve = 8

// shedRetryAfter is the retry-after hint attached to handler-bound
// sheds. One hint fits all: the bound clears as fast as the slowest
// in-flight handler, which is ~ms for everything but bulk scans.
const shedRetryAfter = 5 * time.Millisecond

// serverWriteTimeout bounds one response write. It exists for the
// half-open case — a client host that vanished without FIN/RST would
// otherwise block handler goroutines in conn.Write forever once the
// kernel send buffer fills, pinning up to maxConnHandlers goroutines
// (plus the read loop) per dead connection until Server.Close. It is
// deliberately generous: a live-but-slow client hitting it merely
// loses the connection and redials.
const serverWriteTimeout = 2 * time.Minute

// Server serves a Handler over TCP. Frames are dispatched to
// concurrent handler goroutines as they arrive, so a connection with
// many pipelined requests in flight — the normal state under the
// multiplexed TCPTransport — is serviced in parallel and one slow
// scan never head-of-line-blocks the calls behind it. Responses are
// written as handlers complete, in completion order; the correlation
// ID ties each one back to its request.
type Server struct {
	handler Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	// wg tracks the accept loop and every serveConn; each serveConn
	// joins its own handler goroutines before exiting, so Close
	// returns only after all in-flight handlers have finished.
	wg sync.WaitGroup
}

// NewServer returns a Server dispatching to handler.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting connections on addr ("host:port"; use
// ":0" for an ephemeral port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("rpc: server closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	var handlers sync.WaitGroup
	defer func() {
		// Join in-flight handlers before releasing the connection so
		// Server.Close never races handler completion: when wg.Wait
		// returns, no handler goroutine is left running.
		handlers.Wait()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	var wmu sync.Mutex // serialises response frames onto the socket
	// Two pools: data-plane handlers take from dataSem and are shed
	// (never queued) when it is empty; control-plane probes take from
	// ctrlSem, a reserve the data plane cannot consume. The blocking
	// acquire on ctrlSem is safe — only cheap probes hold it.
	dataSem := make(chan struct{}, maxConnHandlers-controlHandlerReserve)
	ctrlSem := make(chan struct{}, controlHandlerReserve)
	writeResp := func(resp *Response) {
		bp := encodeResponseFrame(resp)
		wmu.Lock()
		conn.SetWriteDeadline(time.Now().Add(serverWriteTimeout))
		_, werr := conn.Write(*bp)
		wmu.Unlock()
		putFrameBuf(bp)
		if werr != nil {
			// Unblock the read loop; remaining handlers drain
			// against the closed socket.
			conn.Close()
		}
	}
	var scratch []byte // reusable: request decode detaches every retained byte
	for {
		payload, err := readFrameInto(conn, &scratch)
		if err != nil {
			return // EOF or broken peer
		}
		req, err := decodeRequest(payload)
		if err != nil {
			// A desynchronised or hostile byte stream cannot be
			// recovered; drop the connection.
			return
		}
		sem := dataSem
		if IsControlMethod(req.Method) {
			sem = ctrlSem
			sem <- struct{}{}
		} else {
			select {
			case sem <- struct{}{}:
			default:
				// Handler bound saturated: shed instead of blocking
				// the read loop, so control frames behind this one
				// still reach their reserved headroom promptly.
				shed := Response{ID: req.ID, Err: ErrString(Overloaded(shedRetryAfter, "server handler bound saturated"))}
				writeResp(&shed)
				continue
			}
		}
		handlers.Add(1)
		go func() {
			defer func() {
				<-sem
				handlers.Done()
			}()
			resp := s.handler.Serve(req)
			resp.ID = req.ID
			writeResp(&resp)
		}()
	}
}

// Close stops the listener, closes all connections, and waits for
// every in-flight handler to return.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// errBrokenConn classifies a call failure as connection-level — the
// multiplexed connection died under the call (send failure, peer
// reset, EOF mid-stream) as opposed to a per-call timeout on a live
// connection. Connection-level failures on a previously healthy
// pooled connection trigger one transparent redial before the peer is
// classified unreachable: a node that merely restarted between calls
// must not surface as a spurious ErrUnreachable and burn the caller's
// down-retry budget.
var errBrokenConn = errors.New("rpc: connection broken")

// TCPTransport is a Transport over real sockets: one multiplexed
// connection per address, with pipelined calls correlated by
// transport-internal IDs. A single writer goroutine serialises frames
// onto the socket and a single reader goroutine dispatches response
// frames to the waiting callers, so any number of calls can be in
// flight on one connection at once and responses may return in any
// order. Per-call deadlines are enforced at the caller; a broken
// connection fails every in-flight call with ErrUnreachable and the
// next call redials.
type TCPTransport struct {
	// Timeout bounds each call (dial + send + server processing +
	// receive). Default 5s.
	Timeout time.Duration

	mu     sync.Mutex
	conns  map[string]*muxConn
	closed bool
}

// NewTCPTransport returns a ready transport.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{Timeout: 5 * time.Second, conns: make(map[string]*muxConn)}
}

// callResult is what a waiting caller receives: the matched response
// or the call's terminal error.
type callResult struct {
	resp Response
	err  error
}

// resultChanPool recycles the buffered channels calls wait on. A
// channel is returned to the pool only after its exactly-one result
// has been received, so a pooled channel is always empty.
var resultChanPool = sync.Pool{
	New: func() any { return make(chan callResult, 1) },
}

// pendingCall is one in-flight call: where to deliver its result and
// when it expires.
type pendingCall struct {
	ch       chan callResult
	deadline time.Time
}

// muxConn is one multiplexed connection: correlation state, a write
// queue drained by the writer goroutine, the reader goroutine matching
// response frames to pending calls, and a deadline sweeper enforcing
// per-call timeouts (one ticker per connection instead of one timer
// per call keeps the per-call allocation count down).
//
// Delivery invariant: every registered pendingCall receives exactly
// one callResult, sent by whichever of the reader (response arrived),
// the sweeper (deadline passed), or fail (connection died) removes it
// from the pending map under pmu. Callers therefore block on a single
// receive, and the channel is safely poolable afterwards.
type muxConn struct {
	t    *TCPTransport
	addr string
	conn net.Conn

	nextID atomic.Uint64

	pmu     sync.Mutex
	pending map[uint64]pendingCall
	broken  bool
	err     error // terminal error; set under pmu before closed is closed

	writeCh chan *[]byte
	closed  chan struct{}
}

func (t *TCPTransport) timeout() time.Duration {
	if t.Timeout > 0 {
		return t.Timeout
	}
	return 5 * time.Second
}

// Call implements Transport. The request's ID field is ignored and
// never mutated: correlation IDs are transport-internal, assigned per
// attempt on the connection that carries it.
func (t *TCPTransport) Call(addr string, req Request) (Response, error) {
	c, fresh, err := t.getConn(addr)
	if err != nil {
		return Response{}, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	resp, err := c.do(&req, t.timeout())
	if err == nil || fresh || !errors.Is(err, errBrokenConn) {
		return resp, err
	}
	// The pooled connection was stale (typical cause: the node
	// restarted since the last call, silently invalidating the
	// socket). Redial once and retry transparently — safe because a
	// request that died with its connection was either never processed
	// or is idempotent under last-write-wins versions — before letting
	// the failure classify the peer as unreachable.
	c2, err2 := t.dial(addr)
	if err2 != nil {
		return Response{}, fmt.Errorf("%w: redial: %v", ErrUnreachable, err2)
	}
	return c2.do(&req, t.timeout())
}

// getConn returns the live multiplexed connection for addr, dialing
// one if needed. fresh reports that this call dialed it (a failure on
// a fresh connection is a genuinely unreachable peer, not a stale
// socket).
func (t *TCPTransport) getConn(addr string) (c *muxConn, fresh bool, err error) {
	t.mu.Lock()
	if c := t.conns[addr]; c != nil && !c.isBroken() {
		t.mu.Unlock()
		return c, false, nil
	}
	t.mu.Unlock()
	c, err = t.dial(addr)
	return c, true, err
}

func (t *TCPTransport) dial(addr string) (*muxConn, error) {
	conn, err := net.DialTimeout("tcp", addr, t.timeout())
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &muxConn{
		t:       t,
		addr:    addr,
		conn:    conn,
		pending: make(map[uint64]pendingCall),
		writeCh: make(chan *[]byte, 256),
		closed:  make(chan struct{}),
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, errors.New("rpc: transport closed")
	}
	if existing := t.conns[addr]; existing != nil && !existing.isBroken() {
		// Lost a dial race; use the winner.
		t.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	t.conns[addr] = c
	t.mu.Unlock()
	go c.readLoop()
	go c.writeLoop(t.timeout())
	go c.sweepLoop(sweepInterval(t.timeout()))
	return c, nil
}

// sweepInterval picks the deadline-sweep period for a call timeout:
// fine enough that short timeouts stay meaningful, coarse enough to
// cost nothing.
func sweepInterval(timeout time.Duration) time.Duration {
	iv := timeout / 8
	if iv < 10*time.Millisecond {
		return 10 * time.Millisecond
	}
	if iv > 250*time.Millisecond {
		return 250 * time.Millisecond
	}
	return iv
}

// do runs one call on this connection: register a correlation ID,
// enqueue the encoded frame, await the single result the delivery
// invariant guarantees.
func (c *muxConn) do(req *Request, timeout time.Duration) (Response, error) {
	id := c.nextID.Add(1)
	ch := resultChanPool.Get().(chan callResult)
	c.pmu.Lock()
	if c.broken {
		err := c.err
		c.pmu.Unlock()
		resultChanPool.Put(ch)
		return Response{}, err
	}
	c.pending[id] = pendingCall{ch: ch, deadline: time.Now().Add(timeout)}
	c.pmu.Unlock()

	wireReq := *req
	wireReq.ID = id
	bp, err := encodeRequestFrame(&wireReq)
	if err != nil {
		// Semantic failure (payload too big for the wire): resolve our
		// own pending entry if nothing else already has.
		c.pmu.Lock()
		_, mine := c.pending[id]
		if mine {
			delete(c.pending, id)
		}
		c.pmu.Unlock()
		if !mine {
			// fail() raced us and delivered; drain so the channel is
			// empty before pooling.
			<-ch
		}
		resultChanPool.Put(ch)
		return Response{}, err
	}

	select {
	case c.writeCh <- bp:
	case <-c.closed:
		// fail() already delivered (or is delivering) this call's
		// result; fall through to the receive.
		putFrameBuf(bp)
	case res := <-ch:
		// The write queue stayed full past this call's deadline (peer
		// backpressure) and the sweeper delivered the timeout while we
		// were still parked on the enqueue — without this arm the call
		// would overstay its Timeout for as long as the queue is full.
		putFrameBuf(bp)
		resultChanPool.Put(ch)
		return res.resp, res.err
	}
	// The sweeper bounds this wait: if the response never arrives the
	// call's deadline expires and the sweeper delivers the timeout.
	res := <-ch
	resultChanPool.Put(ch)
	return res.resp, res.err
}

func (c *muxConn) isBroken() bool {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.broken
}

// fail tears the connection down once: records the terminal error,
// delivers it to every in-flight call, closes the socket, and removes
// the connection from the transport's pool so the next call redials.
func (c *muxConn) fail(cause error) {
	c.pmu.Lock()
	if c.broken {
		c.pmu.Unlock()
		return
	}
	c.broken = true
	c.err = fmt.Errorf("%w: %w: %v", ErrUnreachable, errBrokenConn, cause)
	err := c.err
	pend := c.pending
	c.pending = nil
	c.pmu.Unlock()
	for _, pc := range pend {
		pc.ch <- callResult{err: err}
	}
	close(c.closed)
	c.conn.Close()
	c.t.remove(c.addr, c)
}

// sweepLoop enforces per-call deadlines: expired calls are removed
// from the pending map and handed their timeout. A timed-out call on
// a live connection is abandoned — if its response arrives later the
// reader drops it — but the connection stays up for the calls still
// in flight; the timeout error is unreachable-classified (the shared
// retry contract) but not errBrokenConn, so it never triggers the
// stale-conn redial.
func (c *muxConn) sweepLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			var expired []pendingCall
			c.pmu.Lock()
			for id, pc := range c.pending {
				if now.After(pc.deadline) {
					delete(c.pending, id)
					expired = append(expired, pc)
				}
			}
			c.pmu.Unlock()
			for _, pc := range expired {
				pc.ch <- callResult{err: fmt.Errorf("%w: call timed out", ErrUnreachable)}
			}
		case <-c.closed:
			return
		}
	}
}

func (t *TCPTransport) remove(addr string, c *muxConn) {
	t.mu.Lock()
	if t.conns[addr] == c {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
}

// writeLoop is the connection's single writer: it drains the frame
// queue onto the socket. The write deadline is deliberately a
// multiple of the call timeout: a peer whose read loop is briefly
// saturated (maxConnHandlers slow handlers — the server's intended
// TCP backpressure) stalls writes without being dead, and tearing the
// shared multiplexed connection down would spuriously fail every
// in-flight call on it. Only a stall long past any call's deadline is
// treated as a wedged socket.
func (c *muxConn) writeLoop(timeout time.Duration) {
	for {
		select {
		case bp := <-c.writeCh:
			c.conn.SetWriteDeadline(time.Now().Add(4 * timeout))
			_, err := c.conn.Write(*bp)
			putFrameBuf(bp)
			if err != nil {
				c.fail(fmt.Errorf("send: %v", err))
				return
			}
		case <-c.closed:
			return
		}
	}
}

// readLoop is the connection's single reader: it decodes response
// frames and hands each to the caller registered under its
// correlation ID. Responses without a waiter (the caller timed out)
// are dropped.
func (c *muxConn) readLoop() {
	for {
		payload, err := readFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("receive: %v", err))
			return
		}
		resp, err := decodeResponse(payload)
		if err != nil {
			c.fail(err)
			return
		}
		c.pmu.Lock()
		pc, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.pmu.Unlock()
		if ok {
			pc.ch <- callResult{resp: resp}
		}
	}
}

// numConns reports live pooled connections (test hook).
func (t *TCPTransport) numConns() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.conns)
}

// Close tears down every pooled connection, failing their in-flight
// calls, and rejects future dials.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	conns := make([]*muxConn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	for _, c := range conns {
		c.fail(errors.New("transport closed"))
	}
	return nil
}
