package rpc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// echoTransport answers every request (and every sub-request of an
// envelope) with Value = Key, optionally blocking the first call so a
// test can pile followers into the batcher deterministically.
type echoTransport struct {
	mu    sync.Mutex
	calls []Request

	arrived chan struct{} // closed when the first call is in flight
	release chan struct{} // first call blocks until closed
	once    sync.Once
}

func (t *echoTransport) Call(addr string, req Request) (Response, error) {
	t.mu.Lock()
	t.calls = append(t.calls, req)
	first := len(t.calls) == 1
	t.mu.Unlock()
	if first && t.release != nil {
		t.once.Do(func() { close(t.arrived) })
		<-t.release
	}
	if req.Method == MethodBatch {
		resp := Response{Found: true, Batch: make([]Response, len(req.Batch))}
		for i, sub := range req.Batch {
			resp.Batch[i] = Response{ID: sub.ID, Found: true, Value: sub.Key}
		}
		return resp, nil
	}
	return Response{Found: true, Value: req.Key}, nil
}

func (t *echoTransport) transportCalls() []Request {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Request(nil), t.calls...)
}

// TestBatcherCoalesces parks the leader's flight in the transport,
// piles follower calls into the queue, and verifies they travel as
// one MethodBatch envelope with positionally correct answers.
func TestBatcherCoalesces(t *testing.T) {
	const followers = 4
	et := &echoTransport{arrived: make(chan struct{}), release: make(chan struct{})}
	b := NewBatcher(et)

	leaderDone := make(chan Response, 1)
	go func() {
		resp, err := b.Call("node", Request{Method: MethodGet, Key: []byte("leader")})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		leaderDone <- resp
	}()
	<-et.arrived

	followerDone := make(chan error, followers)
	for i := 0; i < followers; i++ {
		go func(i int) {
			key := []byte(fmt.Sprintf("f%d", i))
			resp, err := b.Call("node", Request{Method: MethodGet, Key: key})
			if err == nil && string(resp.Value) != string(key) {
				err = fmt.Errorf("follower %d got %q", i, resp.Value)
			}
			followerDone <- err
		}(i)
	}
	// Wait until all followers are queued behind the in-flight leader.
	deadline := time.Now().Add(2 * time.Second)
	for {
		b.mu.Lock()
		q := b.pending[batchKey{addr: "node", method: MethodGet}]
		queued := 0
		if q != nil {
			queued = len(q.calls)
		}
		b.mu.Unlock()
		if queued == followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers queued", queued, followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(et.release)

	if resp := <-leaderDone; string(resp.Value) != "leader" {
		t.Fatalf("leader got %q", resp.Value)
	}
	for i := 0; i < followers; i++ {
		if err := <-followerDone; err != nil {
			t.Fatal(err)
		}
	}

	calls := et.transportCalls()
	if len(calls) != 2 {
		t.Fatalf("transport saw %d calls, want 2 (single + envelope)", len(calls))
	}
	if calls[0].Method != MethodGet {
		t.Fatalf("first flight method %q, want unwrapped get", calls[0].Method)
	}
	if calls[1].Method != MethodBatch || len(calls[1].Batch) != followers {
		t.Fatalf("second flight %q with %d subs, want batch of %d",
			calls[1].Method, len(calls[1].Batch), followers)
	}
	st := b.Stats()
	if st.Calls != followers+1 || st.Envelopes != 1 || st.Batched != followers {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBatcherSequentialUnwrapped: without concurrency the batcher
// must not change the wire shape at all.
func TestBatcherSequentialUnwrapped(t *testing.T) {
	et := &echoTransport{}
	b := NewBatcher(et)
	for i := 0; i < 10; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		resp, err := b.Call("node", Request{Method: MethodGet, Key: key})
		if err != nil || string(resp.Value) != string(key) {
			t.Fatalf("call %d: %q, %v", i, resp.Value, err)
		}
	}
	for _, req := range et.transportCalls() {
		if req.Method == MethodBatch {
			t.Fatal("sequential call travelled in an envelope")
		}
	}
	if st := b.Stats(); st.Envelopes != 0 || st.Calls != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

type failingTransport struct{ err error }

func (t *failingTransport) Call(addr string, req Request) (Response, error) {
	return Response{}, t.err
}

func TestBatcherErrorFansOut(t *testing.T) {
	want := errors.New("boom")
	b := NewBatcher(&failingTransport{err: want})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Call("node", Request{Method: MethodGet, Key: []byte("k")}); !errors.Is(err, want) {
				t.Errorf("got %v, want %v", err, want)
			}
		}()
	}
	wg.Wait()
}

// TestLocalTransportBatchApplyDown: a severed replication link must
// stop MethodBatch envelopes carrying applies while pure read
// envelopes still pass.
func TestLocalTransportBatchApplyDown(t *testing.T) {
	lt := NewLocalTransport()
	lt.Register("node", HandlerFunc(func(req Request) Response {
		if req.Method == MethodBatch {
			return ServeBatch(HandlerFunc(func(sub Request) Response {
				return Response{Found: true, Value: sub.Key}
			}), req)
		}
		return Response{Found: true, Value: req.Key}
	}))
	lt.SetApplyDown("node", true)

	applyBatch := Request{Method: MethodBatch, Batch: []Request{
		{Method: MethodApply, Namespace: "ns"},
		{Method: MethodApply, Namespace: "ns"},
	}}
	if _, err := lt.Call("node", applyBatch); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("apply envelope crossed a severed link: %v", err)
	}
	getBatch := Request{Method: MethodBatch, Batch: []Request{
		{Method: MethodGet, Key: []byte("a")},
		{Method: MethodGet, Key: []byte("b")},
	}}
	resp, err := lt.Call("node", getBatch)
	if err != nil {
		t.Fatalf("read envelope blocked: %v", err)
	}
	if len(resp.Batch) != 2 || string(resp.Batch[1].Value) != "b" {
		t.Fatalf("batch response = %+v", resp)
	}
}

func TestServeBatchPositional(t *testing.T) {
	h := HandlerFunc(func(req Request) Response {
		return Response{Found: true, Value: append([]byte("v:"), req.Key...)}
	})
	req := Request{ID: 9, Method: MethodBatch, Batch: []Request{
		{ID: 1, Method: MethodGet, Key: []byte("a")},
		{ID: 2, Method: MethodGet, Key: []byte("b")},
	}}
	resp := ServeBatch(h, req)
	if resp.ID != 9 || len(resp.Batch) != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Batch[0].ID != 1 || string(resp.Batch[0].Value) != "v:a" {
		t.Fatalf("sub 0 = %+v", resp.Batch[0])
	}
	if resp.Batch[1].ID != 2 || string(resp.Batch[1].Value) != "v:b" {
		t.Fatalf("sub 1 = %+v", resp.Batch[1])
	}
}
