package rpc

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"scads/internal/clock"
	"scads/internal/record"
)

// echoHandler implements a tiny in-memory KV for exercising the wire.
type echoHandler struct {
	mu sync.Mutex
	kv map[string][]byte
}

func newEchoHandler() *echoHandler { return &echoHandler{kv: make(map[string][]byte)} }

func (h *echoHandler) Serve(req Request) Response {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch req.Method {
	case MethodPing:
		return Response{Found: true}
	case MethodPut:
		h.kv[string(req.Key)] = append([]byte(nil), req.Value...)
		return Response{Found: true, Version: 1}
	case MethodGet:
		v, ok := h.kv[string(req.Key)]
		return Response{Found: ok, Value: v}
	case MethodApply:
		for _, r := range req.Records {
			h.kv[string(r.Key)] = r.Value
		}
		return Response{Found: true}
	default:
		return Unimplemented(req)
	}
}

func startServer(t *testing.T) (addr string, h *echoHandler, cleanup func()) {
	t.Helper()
	h = newEchoHandler()
	s := NewServer(h)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr, h, func() { s.Close() }
}

func TestTCPRoundTrip(t *testing.T) {
	addr, _, cleanup := startServer(t)
	defer cleanup()
	tr := NewTCPTransport()
	defer tr.Close()

	resp, err := tr.Call(addr, Request{Method: MethodPut, Namespace: "ns", Key: []byte("k"), Value: []byte("v")})
	if err != nil || resp.Error() != nil {
		t.Fatalf("put: %v / %v", err, resp.Error())
	}
	resp, err = tr.Call(addr, Request{Method: MethodGet, Key: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Found || !bytes.Equal(resp.Value, []byte("v")) {
		t.Fatalf("get = %+v", resp)
	}
}

func TestTCPRecordsPayload(t *testing.T) {
	addr, h, cleanup := startServer(t)
	defer cleanup()
	tr := NewTCPTransport()
	defer tr.Close()

	recs := []record.Record{
		{Key: []byte("a"), Value: []byte("1"), Version: 10},
		{Key: []byte("b"), Value: []byte("2"), Version: 20, Tombstone: true},
	}
	if _, err := tr.Call(addr, Request{Method: MethodApply, Records: recs}); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if string(h.kv["a"]) != "1" || string(h.kv["b"]) != "2" {
		t.Fatalf("apply did not land: %v", h.kv)
	}
}

func TestTCPUnknownMethod(t *testing.T) {
	addr, _, cleanup := startServer(t)
	defer cleanup()
	tr := NewTCPTransport()
	defer tr.Close()
	resp, err := tr.Call(addr, Request{Method: "bogus"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error() == nil || !strings.Contains(resp.Err, "unknown method") {
		t.Fatalf("want unknown-method error, got %+v", resp)
	}
}

func TestTCPConnectionReuse(t *testing.T) {
	addr, _, cleanup := startServer(t)
	defer cleanup()
	tr := NewTCPTransport()
	defer tr.Close()
	for i := 0; i < 20; i++ {
		if _, err := tr.Call(addr, Request{Method: MethodPing}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if n := tr.numConns(); n != 1 {
		t.Fatalf("live conns = %d, want 1 (sequential calls reuse one multiplexed conn)", n)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	addr, _, cleanup := startServer(t)
	defer cleanup()
	tr := NewTCPTransport()
	defer tr.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("k%d", i))
			if _, err := tr.Call(addr, Request{Method: MethodPut, Key: key, Value: key}); err != nil {
				errs <- err
				return
			}
			resp, err := tr.Call(addr, Request{Method: MethodGet, Key: key})
			if err != nil {
				errs <- err
				return
			}
			if !resp.Found || !bytes.Equal(resp.Value, key) {
				errs <- fmt.Errorf("get %q = %+v", key, resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPUnreachable(t *testing.T) {
	tr := NewTCPTransport()
	tr.Timeout = 200 * time.Millisecond
	defer tr.Close()
	// Port 1 on localhost should refuse immediately.
	if _, err := tr.Call("127.0.0.1:1", Request{Method: MethodPing}); err == nil {
		t.Fatal("call to closed port succeeded")
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	addr, _, cleanup := startServer(t)
	tr := NewTCPTransport()
	tr.Timeout = time.Second
	defer tr.Close()
	if _, err := tr.Call(addr, Request{Method: MethodPing}); err != nil {
		t.Fatal(err)
	}
	cleanup()
	if _, err := tr.Call(addr, Request{Method: MethodPing}); err == nil {
		t.Fatal("call after server close succeeded")
	}
}

func TestLocalTransportBasics(t *testing.T) {
	lt := NewLocalTransport()
	h := newEchoHandler()
	lt.Register("node-1", h)

	resp, err := lt.Call("node-1", Request{Method: MethodPut, Key: []byte("k"), Value: []byte("v")})
	if err != nil || resp.Error() != nil {
		t.Fatalf("put: %v / %v", err, resp.Error())
	}
	resp, err = lt.Call("node-1", Request{Method: MethodGet, Key: []byte("k")})
	if err != nil || !resp.Found {
		t.Fatalf("get: %v %+v", err, resp)
	}
	if _, err := lt.Call("node-2", Request{Method: MethodPing}); err != ErrUnreachable {
		t.Fatalf("missing node: %v, want ErrUnreachable", err)
	}
}

func TestLocalTransportDownAndRecovery(t *testing.T) {
	lt := NewLocalTransport()
	lt.Register("n", newEchoHandler())
	lt.SetDown("n", true)
	if _, err := lt.Call("n", Request{Method: MethodPing}); err != ErrUnreachable {
		t.Fatalf("down node reachable: %v", err)
	}
	lt.SetDown("n", false)
	if _, err := lt.Call("n", Request{Method: MethodPing}); err != nil {
		t.Fatalf("recovered node unreachable: %v", err)
	}
	lt.Unregister("n")
	if _, err := lt.Call("n", Request{Method: MethodPing}); err != ErrUnreachable {
		t.Fatalf("unregistered node reachable: %v", err)
	}
}

func TestLocalTransportSimulatedLatency(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	lt := NewLocalTransport()
	lt.Clock = vc
	lt.Latency = 3 * time.Millisecond
	lt.Register("n", newEchoHandler())

	done := make(chan Response, 1)
	go func() {
		resp, _ := lt.Call("n", Request{Method: MethodPing})
		done <- resp
	}()
	for vc.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	vc.Advance(3 * time.Millisecond)
	select {
	case resp := <-done:
		if !resp.Found {
			t.Fatalf("resp = %+v", resp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("latency-charged call never completed")
	}
}

func TestLocalTransportAddrs(t *testing.T) {
	lt := NewLocalTransport()
	lt.Register("a", newEchoHandler())
	lt.Register("b", newEchoHandler())
	if got := len(lt.Addrs()); got != 2 {
		t.Fatalf("Addrs = %d, want 2", got)
	}
}

func BenchmarkTCPPing(b *testing.B) {
	h := newEchoHandler()
	s := NewServer(h)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	tr := NewTCPTransport()
	defer tr.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Call(addr, Request{Method: MethodPing}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalCall(b *testing.B) {
	lt := NewLocalTransport()
	lt.Register("n", newEchoHandler())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lt.Call("n", Request{Method: MethodPing}); err != nil {
			b.Fatal(err)
		}
	}
}
