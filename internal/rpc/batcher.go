package rpc

import (
	"errors"
	"sync"
	"sync/atomic"
)

// DefaultMaxBatch bounds how many sub-requests a Batcher packs into
// one MethodBatch envelope.
const DefaultMaxBatch = 128

// Batcher wraps a Transport and coalesces concurrent calls to the
// same (address, method) pair into a single MethodBatch round-trip.
//
// It uses the leader/follower discipline of group commit rather than a
// timer: the first caller to find no flush in progress for its key
// becomes the leader and sends immediately, and every call that
// arrives while that flight is outstanding is packed into the next
// envelope. A call that finds nothing to share travels unwrapped, so
// sequential traffic has zero added latency and an unchanged wire
// shape; batching kicks in exactly when concurrency makes it pay.
//
// Batches are homogeneous per method so transport-level failure
// modelling (for example LocalTransport.SetApplyDown severing only
// replication traffic) keeps working on the envelope.
type Batcher struct {
	next Transport

	// MaxBatch bounds sub-requests per envelope (DefaultMaxBatch when
	// zero). Set before first use.
	MaxBatch int

	mu      sync.Mutex
	pending map[batchKey]*batchQueue

	calls     atomic.Int64 // logical calls through the batcher
	envelopes atomic.Int64 // MethodBatch envelopes sent
	batched   atomic.Int64 // calls that travelled inside an envelope
}

type batchKey struct {
	addr   string
	method string
}

type batchQueue struct {
	calls  []*batchCall
	leader bool
}

type batchCall struct {
	req  Request
	resp Response
	err  error
	done chan struct{}
}

// NewBatcher wraps next with request coalescing.
func NewBatcher(next Transport) *Batcher {
	return &Batcher{next: next, pending: make(map[batchKey]*batchQueue)}
}

// BatcherStats counts coalescing activity: Batched/Envelopes is the
// mean envelope size; Calls-Batched calls travelled alone.
type BatcherStats struct {
	Calls     int64
	Envelopes int64
	Batched   int64
}

// Stats returns a snapshot of the batcher's counters.
func (b *Batcher) Stats() BatcherStats {
	return BatcherStats{
		Calls:     b.calls.Load(),
		Envelopes: b.envelopes.Load(),
		Batched:   b.batched.Load(),
	}
}

func (b *Batcher) maxBatch() int {
	if b.MaxBatch > 0 {
		return b.MaxBatch
	}
	return DefaultMaxBatch
}

// Call implements Transport. MethodBatch requests built by the caller
// pass straight through.
func (b *Batcher) Call(addr string, req Request) (Response, error) {
	b.calls.Add(1)
	if req.Method == MethodBatch {
		return b.next.Call(addr, req)
	}
	if IsControlMethod(req.Method) {
		// Control-plane probes bypass coalescing: wrapped in a
		// MethodBatch envelope they would lose their control
		// classification and queue behind data-plane work at a
		// saturated server instead of using its reserved headroom.
		return b.next.Call(addr, req)
	}
	key := batchKey{addr: addr, method: req.Method}
	c := &batchCall{req: req, done: make(chan struct{})}

	b.mu.Lock()
	q := b.pending[key]
	if q == nil {
		q = &batchQueue{}
		b.pending[key] = q
	}
	q.calls = append(q.calls, c)
	if q.leader {
		// A leader is flushing this key; it will pick us up.
		b.mu.Unlock()
		<-c.done
		return c.resp, c.err
	}
	q.leader = true
	b.mu.Unlock()

	for {
		b.mu.Lock()
		batch := q.calls
		q.calls = nil
		if len(batch) == 0 {
			q.leader = false
			delete(b.pending, key)
			b.mu.Unlock()
			break
		}
		if max := b.maxBatch(); len(batch) > max {
			q.calls = batch[max:]
			batch = batch[:max]
		}
		b.mu.Unlock()
		b.flush(addr, batch)
	}
	<-c.done
	return c.resp, c.err
}

func (b *Batcher) flush(addr string, batch []*batchCall) {
	if len(batch) == 1 {
		c := batch[0]
		c.resp, c.err = b.next.Call(addr, c.req)
		close(c.done)
		return
	}
	subs := make([]Request, len(batch))
	for i, c := range batch {
		subs[i] = c.req
	}
	resp, err := b.next.Call(addr, Request{Method: MethodBatch, Batch: subs})
	if err == nil && len(resp.Batch) != len(batch) {
		if e := resp.Error(); e != nil {
			err = e
		} else {
			err = errors.New("rpc: batch response arity mismatch")
		}
	}
	if err != nil {
		for _, c := range batch {
			c.err = err
			close(c.done)
		}
		return
	}
	b.envelopes.Add(1)
	b.batched.Add(int64(len(batch)))
	for i, c := range batch {
		c.resp = resp.Batch[i]
		close(c.done)
	}
}
