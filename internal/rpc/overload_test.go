package rpc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestControlHeadroomUnderScanFlood is the regression test for the
// handler-bound split: a scan flood that saturates every data-plane
// handler slot on a connection must leave the control reserve free, so
// a failure-detection ping still answers promptly (the repair detector
// stays quiet for a node that is merely busy) and the overflow is shed
// with a classified, retry-after-carrying overload error rather than
// queued behind the flood.
func TestControlHeadroomUnderScanFlood(t *testing.T) {
	dataSlots := maxConnHandlers - controlHandlerReserve
	flood := dataSlots + 52

	var blocked atomic.Int64
	release := make(chan struct{})
	handler := HandlerFunc(func(req Request) Response {
		switch req.Method {
		case MethodScan:
			blocked.Add(1)
			<-release
			return Response{Found: true}
		case MethodPing:
			return Response{Found: true}
		default:
			return Unimplemented(req)
		}
	})

	srv := NewServer(handler)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tr := NewTCPTransport()
	tr.Timeout = 30 * time.Second
	defer tr.Close()

	errs := make([]error, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := tr.Call(addr, Request{Method: MethodScan, Namespace: "ns"})
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = resp.Error()
		}(i)
	}

	// Wait for the flood to occupy every data slot; everything past
	// the bound is shed as it arrives, never parked.
	deadline := time.Now().Add(10 * time.Second)
	for blocked.Load() < int64(dataSlots) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d data handlers blocked", blocked.Load(), dataSlots)
		}
		time.Sleep(time.Millisecond)
	}

	// The data plane is fully saturated. A ping must still get through
	// the control reserve immediately — pre-split, the read loop would
	// park on handler dispatch and the ping would sit unread until the
	// flood drained, tripping the failure detector.
	start := time.Now()
	resp, err := tr.Call(addr, Request{Method: MethodPing})
	pingLatency := time.Since(start)
	if err != nil {
		t.Fatalf("ping during scan flood: %v", err)
	}
	if e := resp.Error(); e != nil {
		t.Fatalf("ping shed during scan flood: %v", e)
	}
	if pingLatency > 5*time.Second {
		t.Fatalf("ping took %v under scan flood; control reserve not honored", pingLatency)
	}

	close(release)
	wg.Wait()

	var ok, shed int
	for _, e := range errs {
		switch {
		case e == nil:
			ok++
		case IsOverloaded(e):
			shed++
			if RetryAfter(e) != shedRetryAfter {
				t.Fatalf("shed retry-after hint = %v, want %v", RetryAfter(e), shedRetryAfter)
			}
		default:
			t.Fatalf("unexpected flood error: %v", e)
		}
	}
	if ok != dataSlots || shed != flood-dataSlots {
		t.Fatalf("flood outcome ok=%d shed=%d, want %d/%d", ok, shed, dataSlots, flood-dataSlots)
	}
	if got := blocked.Load(); got != int64(dataSlots) {
		t.Fatalf("handlers dispatched = %d, want exactly %d (sheds must not dispatch)", got, dataSlots)
	}
}
