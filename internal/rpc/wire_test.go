package rpc

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"scads/internal/record"
)

// fullRequest exercises every Request field, including one level of
// batch nesting.
func fullRequest() Request {
	return Request{
		ID:         42,
		Method:     MethodScan,
		Namespace:  "users",
		Key:        []byte("k"),
		Value:      []byte("v"),
		Start:      []byte("a"),
		End:        []byte("z"),
		Limit:      -7, // negative limits are meaningful (MaxVersion probe)
		Projection: []string{"id", "name"},
		Preds: []ScanPred{
			{Column: "birthday", Op: PredGe, Value: []byte{0x10, 1}},
			{Column: "name", Op: PredEq, Value: []byte("bob")},
		},
		Records: []record.Record{
			{Key: []byte("rk"), Value: []byte("rv"), Version: 99},
			{Key: []byte("dead"), Version: 100, Tombstone: true},
		},
		Since: 12345,
		Epoch: 6789,
		Fence: true,
		Batch: []Request{
			{Method: MethodGet, Namespace: "ns", Key: []byte("bk")},
			{Method: MethodPut, Key: []byte("bk2"), Value: []byte("bv2")},
		},
	}
}

func fullResponse() Response {
	return Response{
		ID:          42,
		Err:         "some failure",
		Found:       true,
		Value:       []byte("payload"),
		Version:     77,
		Records:     []record.Record{{Key: []byte("k"), Value: []byte("v"), Version: 3}},
		RecordCount: -1,
		QueueDepth:  9,
		Watermark:   1 << 40,
		Epoch:       2,
		Fenced:      3,
		More:        true,
		Resume:      []byte("resume-key"),
		Batch: []Response{
			{Found: true, Value: []byte("b1")},
			{Err: "sub failure"},
		},
	}
}

func roundTripRequest(t *testing.T, req Request) Request {
	t.Helper()
	bp, err := encodeRequestFrame(&req)
	if err != nil {
		t.Fatalf("encodeRequestFrame: %v", err)
	}
	frame := append([]byte(nil), *bp...)
	putFrameBuf(bp)
	payload, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	got, err := decodeRequest(payload)
	if err != nil {
		t.Fatalf("decodeRequest: %v", err)
	}
	return got
}

func roundTripResponse(t *testing.T, resp Response) Response {
	t.Helper()
	bp := encodeResponseFrame(&resp)
	frame := append([]byte(nil), *bp...)
	putFrameBuf(bp)
	payload, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	got, err := decodeResponse(payload)
	if err != nil {
		t.Fatalf("decodeResponse: %v", err)
	}
	return got
}

func TestWireRequestRoundTrip(t *testing.T) {
	req := fullRequest()
	got := roundTripRequest(t, req)
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("request round trip mismatch:\n have %+v\n want %+v", got, req)
	}
}

func TestWireResponseRoundTrip(t *testing.T) {
	resp := fullResponse()
	got := roundTripResponse(t, resp)
	if !reflect.DeepEqual(resp, got) {
		t.Fatalf("response round trip mismatch:\n have %+v\n want %+v", got, resp)
	}
}

func TestWireZeroValueRoundTrip(t *testing.T) {
	if got := roundTripRequest(t, Request{Method: MethodPing}); !reflect.DeepEqual(got, Request{Method: MethodPing}) {
		t.Fatalf("zero request mismatch: %+v", got)
	}
	if got := roundTripResponse(t, Response{}); !reflect.DeepEqual(got, Response{}) {
		t.Fatalf("zero response mismatch: %+v", got)
	}
}

// TestWireUnknownMethodString covers the code-0 string escape for
// methods outside the static table (coordinator admin methods).
func TestWireUnknownMethodString(t *testing.T) {
	req := Request{Method: "custom/admin-method"}
	if got := roundTripRequest(t, req); got.Method != req.Method {
		t.Fatalf("method = %q, want %q", got.Method, req.Method)
	}
}

// randomRequest builds a randomized request; depth bounds batch
// nesting.
func randomRequest(rng *rand.Rand, depth int) Request {
	blob := func() []byte {
		n := rng.Intn(16)
		if n == 0 {
			return nil
		}
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	req := Request{
		Method:    []string{MethodGet, MethodPut, MethodScan, MethodApply, "weird"}[rng.Intn(5)],
		Namespace: string(rune('a' + rng.Intn(26))),
		Key:       blob(),
		Value:     blob(),
		Start:     blob(),
		End:       blob(),
		Limit:     rng.Intn(2000) - 1000,
		Since:     rng.Uint64(),
		Epoch:     rng.Uint64(),
		Fence:     rng.Intn(2) == 0,
	}
	for i := rng.Intn(3); i > 0; i-- {
		req.Projection = append(req.Projection, string(rune('p'+i)))
	}
	for i := rng.Intn(3); i > 0; i-- {
		req.Preds = append(req.Preds, ScanPred{Column: "c", Op: ScanPredOp(rng.Intn(5)), Value: blob()})
	}
	for i := rng.Intn(4); i > 0; i-- {
		req.Records = append(req.Records, record.Record{
			Key: blob(), Value: blob(), Version: rng.Uint64(), Tombstone: rng.Intn(2) == 0,
		})
	}
	if depth > 0 {
		for i := rng.Intn(3); i > 0; i-- {
			req.Batch = append(req.Batch, randomRequest(rng, depth-1))
		}
	}
	return req
}

// TestWireRequestPropertyRoundTrip: encode/decode is identity over
// randomized requests.
func TestWireRequestPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		req := randomRequest(rng, 2)
		got := roundTripRequest(t, req)
		if !reflect.DeepEqual(req, got) {
			t.Fatalf("iteration %d mismatch:\n have %+v\n want %+v", i, got, req)
		}
	}
}

// TestWireTruncatedFrames: every prefix of a valid message must decode
// with an error, never panic.
func TestWireTruncatedFrames(t *testing.T) {
	req := fullRequest()
	bp, err := encodeRequestFrame(&req)
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte(nil), (*bp)[4:]...) // strip length prefix
	putFrameBuf(bp)
	for n := 0; n < len(payload); n++ {
		if _, err := decodeRequest(payload[:n]); err == nil {
			t.Fatalf("truncated request at %d/%d decoded without error", n, len(payload))
		}
	}
	resp := fullResponse()
	rp := encodeResponseFrame(&resp)
	rpayload := append([]byte(nil), (*rp)[4:]...)
	putFrameBuf(rp)
	for n := 0; n < len(rpayload); n++ {
		if _, err := decodeResponse(rpayload[:n]); err == nil {
			t.Fatalf("truncated response at %d/%d decoded without error", n, len(rpayload))
		}
	}
}

// TestWireOversizedClaims: corrupt lengths and counts claiming more
// than the frame holds must error without allocating for the claim.
func TestWireOversizedClaims(t *testing.T) {
	// A blob length of 2^40 inside a tiny frame.
	msg := []byte{wireVersion}
	msg = binary.AppendUvarint(msg, 1)        // ID
	msg = append(msg, methodCodes[MethodGet]) // method
	msg = binary.AppendUvarint(msg, 1<<40)    // namespace length: absurd
	msg = append(msg, 'x')
	if _, err := decodeRequest(msg); err == nil {
		t.Fatal("absurd blob length decoded")
	}

	// A record count of 2^40.
	msg2 := []byte{wireVersion}
	msg2 = binary.AppendUvarint(msg2, 1)
	msg2 = append(msg2, methodCodes[MethodApply])
	msg2 = binary.AppendUvarint(msg2, 0) // namespace
	msg2 = binary.AppendUvarint(msg2, 0) // key
	msg2 = binary.AppendUvarint(msg2, 0) // value
	msg2 = binary.AppendUvarint(msg2, 0) // start
	msg2 = binary.AppendUvarint(msg2, 0) // end
	msg2 = binary.AppendUvarint(msg2, 0) // limit
	msg2 = binary.AppendUvarint(msg2, 0) // projection count
	msg2 = binary.AppendUvarint(msg2, 0) // pred count
	msg2 = binary.AppendUvarint(msg2, 1<<40)
	if _, err := decodeRequest(msg2); err == nil {
		t.Fatal("absurd record count decoded")
	}

	// A frame header claiming more than maxFrameSize.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], maxFrameSize+1)
	if _, err := readFrame(bytes.NewReader(hdr[:])); err == nil ||
		!strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame header accepted: %v", err)
	}

	// A zero-length frame.
	if _, err := readFrame(bytes.NewReader(make([]byte, 4))); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

// TestWireCorruptVarints: 10 bytes of 0x80 is an overlong varint.
func TestWireCorruptVarints(t *testing.T) {
	over := bytes.Repeat([]byte{0x80}, 11)
	msg := append([]byte{wireVersion}, over...)
	if _, err := decodeRequest(msg); err == nil {
		t.Fatal("overlong varint decoded")
	}
	if _, err := decodeResponse(msg); err == nil {
		t.Fatal("overlong varint decoded as response")
	}
}

// TestWireBatchDepthLimit: a frame nesting batches past maxBatchDepth
// must be rejected (stack-exhaustion guard).
func TestWireBatchDepthLimit(t *testing.T) {
	req := Request{Method: MethodPing}
	for i := 0; i < maxBatchDepth+2; i++ {
		req = Request{Method: MethodBatch, Batch: []Request{req}}
	}
	bp, err := encodeRequestFrame(&req)
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte(nil), (*bp)[4:]...)
	putFrameBuf(bp)
	if _, err := decodeRequest(payload); err == nil {
		t.Fatal("over-deep batch nesting decoded")
	}
}

// TestWireVersionMismatch: a frame with the wrong version byte fails
// fast with a version error, not a garbled decode.
func TestWireVersionMismatch(t *testing.T) {
	if _, err := decodeRequest([]byte{wireVersion + 1, 0}); err == nil ||
		!strings.Contains(err.Error(), "wire version") {
		t.Fatalf("version mismatch not flagged: %v", err)
	}
}

// TestWireTrailingJunk: extra bytes after a complete message are a
// protocol error, not silently ignored.
func TestWireTrailingJunk(t *testing.T) {
	req := Request{Method: MethodPing}
	bp, err := encodeRequestFrame(&req)
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte(nil), (*bp)[4:]...)
	putFrameBuf(bp)
	payload = append(payload, 0xff)
	if _, err := decodeRequest(payload); err == nil {
		t.Fatal("trailing junk accepted")
	}
}

func FuzzDecodeRequest(f *testing.F) {
	for _, req := range []Request{fullRequest(), {Method: MethodPing}, {Method: "x"}} {
		bp, err := encodeRequestFrame(&req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), (*bp)[4:]...))
		putFrameBuf(bp)
	}
	f.Add([]byte{wireVersion})
	f.Add(bytes.Repeat([]byte{0x80}, 16))
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := decodeRequest(b)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same value.
		bp, err := encodeRequestFrame(&req)
		if err != nil {
			t.Fatalf("re-encode of decoded request failed: %v", err)
		}
		payload := append([]byte(nil), (*bp)[4:]...)
		putFrameBuf(bp)
		again, err := decodeRequest(payload)
		if err != nil {
			t.Fatalf("re-decode of re-encoded request failed: %v", err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("re-encode not stable:\n have %+v\n want %+v", again, req)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	for _, resp := range []Response{fullResponse(), {}} {
		bp := encodeResponseFrame(&resp)
		f.Add(append([]byte(nil), (*bp)[4:]...))
		putFrameBuf(bp)
	}
	f.Add([]byte{wireVersion, 0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		resp, err := decodeResponse(b)
		if err != nil {
			return
		}
		bp := encodeResponseFrame(&resp)
		payload := append([]byte(nil), (*bp)[4:]...)
		putFrameBuf(bp)
		again, err := decodeResponse(payload)
		if err != nil {
			t.Fatalf("re-decode of re-encoded response failed: %v", err)
		}
		if !reflect.DeepEqual(resp, again) {
			t.Fatalf("re-encode not stable:\n have %+v\n want %+v", again, resp)
		}
	})
}

func BenchmarkEncodeRequestFrame(b *testing.B) {
	req := fullRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bp, err := encodeRequestFrame(&req)
		if err != nil {
			b.Fatal(err)
		}
		putFrameBuf(bp)
	}
}

func BenchmarkDecodeScanResponse(b *testing.B) {
	resp := Response{ID: 1, Found: true}
	for i := 0; i < 64; i++ {
		resp.Records = append(resp.Records, record.Record{
			Key:     []byte("user:0000000000"),
			Value:   bytes.Repeat([]byte("v"), 100),
			Version: uint64(i),
		})
	}
	bp := encodeResponseFrame(&resp)
	payload := append([]byte(nil), (*bp)[4:]...)
	putFrameBuf(bp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeResponse(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWireRequestDecodeDetaches: request byte fields must not alias
// the frame buffer — the server reuses its read buffer across frames
// and storage retains applied records indefinitely.
func TestWireRequestDecodeDetaches(t *testing.T) {
	req := fullRequest()
	bp, err := encodeRequestFrame(&req)
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte(nil), (*bp)[4:]...)
	putFrameBuf(bp)
	got, err := decodeRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		payload[i] = 0xAA // scribble over the frame, as buffer reuse would
	}
	want := fullRequest()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded request shares memory with the frame buffer:\n have %+v\n want %+v", got, want)
	}
}

// TestWireResponseDecodeAliases pins the other half of the ownership
// contract: response byte fields alias the exactly-sized frame buffer
// (that is what makes scan pages O(1) allocations), so the buffer
// must not be reused.
func TestWireResponseDecodeAliases(t *testing.T) {
	resp := Response{ID: 1, Found: true, Value: []byte("alias-me")}
	bp := encodeResponseFrame(&resp)
	payload := append([]byte(nil), (*bp)[4:]...)
	putFrameBuf(bp)
	got, err := decodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	at := bytes.Index(payload, []byte("alias-me"))
	if at < 0 {
		t.Fatal("value bytes not found in frame")
	}
	payload[at] ^= 0xFF
	if string(got.Value) == "alias-me" {
		t.Fatal("response decode copied; expected aliasing of the frame buffer")
	}
}

// TestWireEncodeOverflow: an encoding past the frame limit must fail
// the request cleanly (semantic error, not unreachable) and replace
// the response with an error response under the same correlation ID.
func TestWireEncodeOverflow(t *testing.T) {
	req := Request{Method: MethodPut, Value: bytes.Repeat([]byte("x"), 4096)}
	if _, err := encodeRequestFrameLimit(&req, 1024); err == nil {
		t.Fatal("oversized request encoded")
	} else if IsUnreachable(err) {
		t.Fatalf("overflow misclassified as unreachable: %v", err)
	}

	resp := Response{ID: 77, Found: true, Value: bytes.Repeat([]byte("y"), 4096)}
	bp := encodeResponseFrameLimit(&resp, 1024)
	payload := append([]byte(nil), (*bp)[4:]...)
	putFrameBuf(bp)
	got, err := decodeResponse(payload)
	if err != nil {
		t.Fatalf("substituted error response did not decode: %v", err)
	}
	if got.ID != 77 {
		t.Fatalf("substituted response lost correlation ID: %+v", got)
	}
	if got.Error() == nil || !strings.Contains(got.Err, "exceeds size limit") {
		t.Fatalf("substituted response error = %q", got.Err)
	}
}

// TestWireFramePoolDropsHugeBuffers: a buffer that ballooned past
// maxPooledFrame must not come back from the pool.
func TestWireFramePoolDropsHugeBuffers(t *testing.T) {
	huge := make([]byte, 0, maxPooledFrame+1)
	putFrameBuf(&huge)
	small := make([]byte, 0, 16)
	putFrameBuf(&small)
	for i := 0; i < 64; i++ {
		bp := getFrameBuf()
		if cap(*bp) > maxPooledFrame {
			t.Fatalf("pool returned a %d-cap buffer (limit %d)", cap(*bp), maxPooledFrame)
		}
	}
}
